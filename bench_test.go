// Benchmarks regenerating each paper artifact (Tables 1-2, Figs. 4-15) in
// reduced "quick" configurations, plus ablations and micro-benchmarks of
// the pipeline's hot paths. Full-size regeneration is the job of the cmd/
// tools (qcbench -full, fidsweep); these benches keep each iteration small
// enough for routine `go test -bench=.` runs on one core.
package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/decomp"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/gates"
	"repro/internal/optimize"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transpile"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// ---- Tables ----

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 7 {
			b.Fatal("bad table")
		}
	}
}

// runSweep executes a reduced sweep spec as a benchmark body.
func runSweep(b *testing.B, spec experiments.SweepSpec, workloadSubset []string) {
	b.Helper()
	spec.Workloads = workloadSubset
	for i := 0; i < b.N; i++ {
		series, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// ---- Figures 4, 11, 12: SWAP-count sweeps ----

func BenchmarkFig4(b *testing.B) {
	runSweep(b, experiments.Fig4Spec(true), []string{"QuantumVolume", "GHZ"})
}

func BenchmarkFig11(b *testing.B) {
	runSweep(b, experiments.Fig11Spec(true), []string{"QuantumVolume", "QFT", "GHZ"})
}

func BenchmarkFig12(b *testing.B) {
	runSweep(b, experiments.Fig12Spec(true), []string{"QuantumVolume", "GHZ"})
}

// BenchmarkFig11WarmCache is the sweep-level cache benchmark: after the
// first iteration, every cell is a content-addressed hit, so the loop
// measures cache-service latency for a full figure regeneration. Hit/miss
// counts land in the bench JSON (scripts/bench.sh).
func BenchmarkFig11WarmCache(b *testing.B) {
	spec := experiments.Fig11Spec(true)
	spec.Workloads = []string{"QuantumVolume", "QFT", "GHZ"}
	spec.Parallelism = 1
	store, err := core.NewMetricsCache(0, "")
	if err != nil {
		b.Fatal(err)
	}
	spec.Cache = store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(); err != nil {
			b.Fatal(err)
		}
	}
	st := store.Stats()
	b.ReportMetric(float64(st.Hits())/float64(b.N), "cache_hits/op")
	b.ReportMetric(float64(st.Misses)/float64(b.N), "cache_misses/op")
}

// ---- Figures 13, 14: co-design sweeps ----

func BenchmarkFig13(b *testing.B) {
	runSweep(b, experiments.Fig13Spec(true), []string{"QuantumVolume", "QFT", "GHZ"})
}

func BenchmarkFig14(b *testing.B) {
	runSweep(b, experiments.Fig14Spec(true), []string{"QuantumVolume", "GHZ"})
}

// ---- Figure 6: chevron ----

func BenchmarkFig6(b *testing.B) {
	m := dynamics.ExchangeModel{G: 2 * math.Pi * 0.5, T1: 40}
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.ChevronMap(m, 2.0, 48, 2*math.Pi*1.5, 33); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 15: n√iSWAP fidelity study (reduced) ----

func BenchmarkFig15(b *testing.B) {
	cfg := decomp.Config{Restarts: 2, Adam: optimize.AdamConfig{MaxIter: 150, LearningRate: 0.08}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig15(2, 7, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §1/§6 headline ratios ----

// headlineBenchConfig is the quick serial Headlines configuration the
// benchmarks share, with an optional store.
func headlineBenchConfig(store *core.MetricsCache) experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Parallelism = 1
	cfg.Cache = store
	return cfg
}

func BenchmarkHeadlines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := experiments.Headlines(headlineBenchConfig(nil))
		if err != nil {
			b.Fatal(err)
		}
		if h.Total2QRatio <= 1 {
			b.Fatalf("co-design advantage vanished: %+v", h)
		}
	}
}

// BenchmarkHeadlinesWarmCache measures Headlines served from a shared
// content-addressed store: every iteration after the first is pure cache
// hits, so ns/op approaches the non-routing overhead. The custom
// cache_hits/op and cache_misses/op metrics land in the bench JSON via
// scripts/bench.sh.
func BenchmarkHeadlinesWarmCache(b *testing.B) {
	store, err := core.NewMetricsCache(0, "")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		h, err := experiments.Headlines(headlineBenchConfig(store))
		if err != nil {
			b.Fatal(err)
		}
		if h.Total2QRatio <= 1 {
			b.Fatalf("co-design advantage vanished: %+v", h)
		}
	}
	st := store.Stats()
	b.ReportMetric(float64(st.Hits())/float64(b.N), "cache_hits/op")
	b.ReportMetric(float64(st.Misses)/float64(b.N), "cache_misses/op")
}

// ---- Profile-guided routing (ISSUE 3 tentpole) ----

// BenchmarkProfileGuided compares baseline and profile-guided routing on
// the SNAIL corral/tree machines with a 16-qubit QuantumVolume circuit.
// The swaps metric lands in the bench JSON (scripts/bench.sh) so the
// profile-guided SWAP advantage is tracked across PRs; guided mode keeps
// the cheaper of pilot and re-weighted routing, so its count can never
// exceed the baseline's.
func BenchmarkProfileGuided(b *testing.B) {
	machines := []core.Machine{
		core.Corral11SqrtISwap(),
		core.Corral12SqrtISwap(),
		core.Tree20SqrtISwap(),
		core.TreeRR20SqrtISwap(),
	}
	c, err := workloads.Generate("QuantumVolume", 16, rand.New(rand.NewSource(22)))
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range machines {
		for _, mode := range []string{"baseline", "profiled"} {
			b.Run(m.Graph.Name+"/"+mode, func(b *testing.B) {
				opt := core.Options{Seed: 2022, Trials: 5, ProfileGuided: mode == "profiled"}
				var swaps int
				for i := 0; i < b.N; i++ {
					met, err := m.Evaluate(c, opt)
					if err != nil {
						b.Fatal(err)
					}
					swaps = met.TotalSwaps
				}
				b.ReportMetric(float64(swaps), "swaps")
			})
		}
	}
}

// BenchmarkTranspilePassShares attributes default-pipeline wall-clock to
// its passes: the layout_share/route_share/translate_share metrics are each
// pass's fraction of total pipeline time (summing to ~1), recorded in the
// bench JSON by scripts/bench.sh so pass-level perf regressions show up
// between PRs even when end-to-end time moves.
func BenchmarkTranspilePassShares(b *testing.B) {
	m := core.Tree20SqrtISwap()
	c, err := workloads.Generate("QuantumVolume", 16, rand.New(rand.NewSource(24)))
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Seed: 2022, Trials: 5}
	perPass := map[string]time.Duration{}
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := m.Transpile(c, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range tr.Timings {
			perPass[pt.Name] += pt.Duration
			total += pt.Duration
		}
	}
	if total > 0 {
		for _, name := range []string{"layout", "route", "translate"} {
			b.ReportMetric(float64(perPass[name])/float64(total), name+"_share")
		}
	}
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationRouters compares StochasticSwap with the SABRE lookahead
// router on the same workload/topology, reporting their swap counts.
func BenchmarkAblationRouters(b *testing.B) {
	g := topology.HeavyHex84()
	c, _ := workloads.Generate("QuantumVolume", 24, rand.New(rand.NewSource(9)))
	layout, err := transpile.DenseLayout(g, c)
	if err != nil {
		b.Fatal(err)
	}
	for _, router := range []string{"stochastic", "sabre"} {
		b.Run(router, func(b *testing.B) {
			var swaps int
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				var res *transpile.RouteResult
				var err error
				if router == "stochastic" {
					res, err = transpile.StochasticSwap(g, c, layout, rng, 10)
				} else {
					res, err = transpile.SabreSwap(g, c, layout, rng)
				}
				if err != nil {
					b.Fatal(err)
				}
				swaps = res.SwapCount
			}
			b.ReportMetric(float64(swaps), "swaps")
		})
	}
}

// BenchmarkAblationSNAILParallelism quantifies the value of the SNAIL's
// simultaneous in-neighborhood drives (paper §4.1) by scheduling the same
// routed circuit with and without per-SNAIL serialization.
func BenchmarkAblationSNAILParallelism(b *testing.B) {
	hw, err := Tree84Hardware()
	if err != nil {
		b.Fatal(err)
	}
	m := core.Tree84SqrtISwap()
	c, _ := workloads.Generate("QuantumVolume", 32, rand.New(rand.NewSource(10)))
	tr, err := m.Transpile(c, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	dur := map[string]float64{"siswap": 0.5, "swap": 1.5, "su4": 1.0}
	for _, mode := range []string{"parallel", "serialized"} {
		b.Run(mode, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				ms, err := hw.Schedule(tr.Routed, dur, mode == "serialized")
				if err != nil {
					b.Fatal(err)
				}
				makespan = ms
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// ---- Micro-benchmarks of the pipeline's hot paths ----

func BenchmarkKAK(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	us := make([]*Matrix, 64)
	for i := range us {
		us[i] = gates.RandomSU4(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weyl.KAK(us[i%len(us)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeylCoordinates(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	us := make([]*Matrix, 64)
	for i := range us {
		us[i] = gates.RandomSU4(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weyl.Coordinates(us[i%len(us)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeCX(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	us := make([]*Matrix, 16)
	for i := range us {
		us[i] = gates.RandomSU4(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weyl.SynthesizeCX(us[i%len(us)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStochasticSwapQV(b *testing.B) {
	for _, size := range []int{16, 32} {
		b.Run(fmt.Sprintf("qv%d", size), func(b *testing.B) {
			g := topology.Hypercube84()
			c, _ := workloads.Generate("QuantumVolume", size, rand.New(rand.NewSource(14)))
			layout, err := transpile.DenseLayout(g, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := transpile.StochasticSwap(g, c, layout, rand.New(rand.NewSource(int64(i))), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDenseLayout(b *testing.B) {
	g := topology.Hypercube84()
	c, _ := workloads.Generate("QFT", 60, rand.New(rand.NewSource(15)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transpile.DenseLayout(g, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatevector16(b *testing.B) {
	c := workloads.QFT(16, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCircuit(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatevectorFusion measures the gate-fusion scheduler (ISSUE 5
// tentpole) on a 16-qubit circuit shaped like real workloads after
// transpilation: per-layer 1Q dressing runs (h/rz/rx), diagonal cz/cp
// ladders, and su4 blocks preceded by 1Q frames. The fused variant runs
// sim.Run's default schedule; "unfused" forces the historical op-by-op
// path, so the pair quantifies fusion end to end.
func BenchmarkStatevectorFusion(b *testing.B) {
	const n = 16
	rng := rand.New(rand.NewSource(31))
	c := NewCircuit(n)
	for layer := 0; layer < 24; layer++ {
		for q := 0; q < n; q++ {
			c.H(q)
			c.RZ(q, rng.Float64())
			c.RX(q, rng.Float64())
		}
		for q := 0; q < n-1; q += 2 {
			c.CP(q, q+1, rng.Float64())
			c.CZ(q, q+1)
		}
		a := rng.Intn(n - 1)
		c.SU4(a, a+1, gates.RandomSU4(rng))
	}
	stats := sim.Schedule(c).Stats()
	for _, tc := range []struct {
		name string
		run  func(s *sim.State) error
	}{
		{"fused", func(s *sim.State) error { return s.Run(c) }},
		{"unfused", func(s *sim.State) error { return s.RunUnfused(c) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := sim.NewState(n)
				if err != nil {
					b.Fatal(err)
				}
				if err := tc.run(s); err != nil {
					b.Fatal(err)
				}
			}
			if tc.name == "fused" {
				// Layer-batching shape of the schedule under test (ISSUE 9):
				// how many fkLayer steps the circuit compiled to, the mean
				// members per layer, and the fraction of kernel applications
				// that run inside layers. Constant per circuit; recorded so
				// BENCH snapshots catch scheduler drift.
				b.ReportMetric(float64(stats.Layers), "layers_per_circuit")
				b.ReportMetric(stats.AvgWidth, "batch_width_avg")
				b.ReportMetric(stats.LayerShare, "fused_layer_share")
			}
		})
	}
}

// BenchmarkStatevectorISwapKernel measures the iSWAP-family inner-block mix
// kernel on a 16-qubit circuit of interleaved iswap/siswap gates — the gate
// mix of a translated SNAIL circuit. The "generic" variant forces the same
// ops through Apply2Q by attaching explicit unitaries, so the pair
// quantifies the kernel specialization.
func BenchmarkStatevectorISwapKernel(b *testing.B) {
	const n = 16
	rng := rand.New(rand.NewSource(23))
	fast := NewCircuit(n)
	for i := 0; i < 256; i++ {
		a := rng.Intn(n)
		c := rng.Intn(n - 1)
		if c >= a {
			c++
		}
		if i%2 == 0 {
			fast.ISwap(a, c)
		} else {
			fast.SqrtISwap(a, c)
		}
	}
	generic := NewCircuit(n)
	for _, op := range fast.Ops {
		u, err := OpUnitary(op)
		if err != nil {
			b.Fatal(err)
		}
		generic.Append(Op{Name: op.Name, Qubits: op.Qubits, U: u})
	}
	for _, tc := range []struct {
		name string
		c    *Circuit
	}{{"mix2q", fast}, {"generic", generic}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunCircuit(tc.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecomposeSqrtISwapK3(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	target := gates.RandomSU4(rng)
	cfg := decomp.Config{Restarts: 1, Adam: optimize.AdamConfig{MaxIter: 200, LearningRate: 0.08}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.Decompose(target, 2, 3, rng, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Robustness: disk-tier fault absorption ----

// BenchmarkCacheDiskFaultRetry measures the two-tier cache's disk layer
// under a deterministic 10% injected read/write fault rate with retries
// enabled. disk_retries/op is how many backoff retries the tier absorbed
// per operation; degraded is 1 if the error budget ever quarantined the
// disk tier (expected 0 here: absorbed transients never charge the
// budget). The memory LRU is kept tiny so gets actually reach the disk.
func BenchmarkCacheDiskFaultRetry(b *testing.B) {
	ffs := faultinject.NewFaultFS(cache.OSFS{}, 1)
	ffs.ReadFail, ffs.WriteFail = 0.1, 0.1
	store, err := cache.New[int](2, b.TempDir(),
		cache.WithFS(ffs), cache.WithRetry(4, 0), cache.WithJitterSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]cache.Key, 64)
	for i := range keys {
		h := cache.NewHasher("bench/disk-fault")
		h.WriteInt(int64(i))
		keys[i] = h.Sum()
	}
	for i, k := range keys {
		store.Put(k, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if v, ok := store.Get(k); ok && v != i%len(keys) {
			b.Fatalf("corrupted value %d for key %d", v, i%len(keys))
		}
	}
	b.StopTimer()
	st := store.Stats()
	b.ReportMetric(float64(st.Retries)/float64(b.N), "disk_retries/op")
	degraded := 0.0
	if st.Degraded {
		degraded = 1
	}
	b.ReportMetric(degraded, "degraded")
}

// BenchmarkNoisyEvaluate measures one noise-aware evaluation end to end —
// error-weighted routing plus Monte-Carlo trajectory sampling — on the
// heterogeneous 4×4 grid the routing acceptance test pins. est_fidelity is
// the (deterministic, seeded) fidelity estimate so bench snapshots catch a
// silent model drift; noisy_eval_ns/op mirrors ns/op under a stable name
// for the JSON schema (scripts/bench.sh).
func BenchmarkNoisyEvaluate(b *testing.B) {
	m, err := core.FromSpec("grid:rows=4,cols=4,basis=syc,e2q=0.001,e2q-5-6=0.3")
	if err != nil {
		b.Fatal(err)
	}
	c, err := workloads.Generate("QFT", 10, rand.New(rand.NewSource(77)))
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{
		Seed:       2022,
		Trials:     5,
		Fidelity:   core.FidelityMonteCarlo,
		NoiseShots: 64,
		NoiseRoute: core.NoiseRoutePure,
	}
	var met core.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met, err = m.Evaluate(c, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if met.EstFidelity <= 0 || met.EstFidelity >= 1 {
		b.Fatalf("est fidelity %g out of range", met.EstFidelity)
	}
	b.ReportMetric(met.EstFidelity, "est_fidelity")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "noisy_eval_ns/op")
}

// ---- Evaluation service (qcbenchd) ----

// BenchmarkDaemonWarmEvaluate measures the evaluation service's serving
// overhead end to end: an in-process qcbenchd takes one cold batch of 32
// identical concurrent requests (collapsing to a single evaluation via
// cross-client dedup), then the timed loop measures warm request latency —
// HTTP round trip plus memory-tier cache hit, no routing. Reports
// daemon_warm_eval_us (microseconds per warm request) and
// daemon_dedup_per_op (dedup-or-hit joins per cold request; ~31/32 means
// the whole batch cost one evaluation). Both land in the bench JSON
// (scripts/bench.sh).
func BenchmarkDaemonWarmEvaluate(b *testing.B) {
	srv, err := daemon.New(daemon.Config{Logf: func(format string, args ...any) {}})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			b.Error(err)
		}
	}()
	base := "http://" + addr
	req := daemon.EvaluateRequest{
		Machine:  "grid:rows=2,cols=2,name=bench",
		Workload: "GHZ",
		Size:     4,
		Seed:     1,
		Trials:   1,
	}
	const cold = 32
	var wg sync.WaitGroup
	errs := make([]error, cold)
	for i := 0; i < cold; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := daemon.NewClient(base)
			c.JitterSeed = uint64(i + 1)
			_, errs[i] = c.Evaluate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	st := srv.Store().Snapshot()
	if st.Fills != 1 {
		b.Fatalf("cold batch cost %d evaluations, want 1", st.Fills)
	}
	dedup := float64(st.Dedups+st.MemHits+st.DiskHits) / float64(cold)
	client := daemon.NewClient(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Evaluate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N), "daemon_warm_eval_us")
	b.ReportMetric(dedup, "daemon_dedup_per_op")
}
