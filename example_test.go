package repro_test

import (
	"fmt"

	"repro"
)

// ExampleWeylCoordinates classifies standard gates into Weyl-chamber
// classes — the foundation of the paper's basis-gate counting.
func ExampleWeylCoordinates() {
	coordCX, _ := repro.WeylCoordinates(mustUnitary("cx"))
	coordSwap, _ := repro.WeylCoordinates(mustUnitary("swap"))
	fmt.Println("CX:  ", coordCX)
	fmt.Println("SWAP:", coordSwap)
	// Output:
	// CX:   (0.250000π, 0.000000π, 0.000000π)
	// SWAP: (0.250000π, 0.250000π, 0.250000π)
}

// ExampleBasis_NumGates shows the analytic decomposition counts behind the
// paper's Observation 1.
func ExampleBasis_NumGates() {
	swap, _ := repro.WeylCoordinates(mustUnitary("swap"))
	fmt.Println("SWAP as CNOTs:     ", repro.BasisCX.NumGates(swap))
	fmt.Println("SWAP as sqrtISWAPs:", repro.BasisSqrtISwap.NumGates(swap))
	fmt.Println("SWAP as SYCs:      ", repro.BasisSYC.NumGates(swap))
	// Output:
	// SWAP as CNOTs:      3
	// SWAP as sqrtISWAPs: 3
	// SWAP as SYCs:       4
}

// ExampleSynthesizeCX produces an exact minimal-CNOT circuit for iSWAP.
func ExampleSynthesizeCX() {
	syn, _ := repro.SynthesizeCX(mustUnitary("iswap"))
	fmt.Println("CNOTs used:", syn.NumCX)
	fmt.Println("exact:     ", syn.Unitary().EqualUpToPhase(mustUnitary("iswap"), 1e-8))
	// Output:
	// CNOTs used: 2
	// exact:      true
}

// ExampleGHZ runs a workload through the simulator.
func ExampleGHZ() {
	st, _ := repro.RunCircuit(repro.GHZ(4))
	fmt.Printf("P(|0000>) = %.2f\n", st.Probability(0))
	fmt.Printf("P(|1111>) = %.2f\n", st.Probability(15))
	// Output:
	// P(|0000>) = 0.50
	// P(|1111>) = 0.50
}

// ExampleGraph_Stats reproduces a Table 1 row.
func ExampleGraph_Stats() {
	s := repro.Corral12().Stats()
	fmt.Printf("%s: %d qubits, diameter %d, avgD %.2f, avgC %.1f\n",
		s.Name, s.Qubits, s.Diameter, s.AvgDist, s.AvgConn)
	// Output:
	// Corral(1,2): 16 qubits, diameter 2, avgD 1.50, avgC 6.0
}

// mustUnitary resolves a named two-qubit gate via the circuit IR.
func mustUnitary(name string) *repro.Matrix {
	c := repro.NewCircuit(2)
	switch name {
	case "cx":
		c.CX(0, 1)
	case "swap":
		c.Swap(0, 1)
	case "iswap":
		c.ISwap(0, 1)
	}
	u, err := repro.OpUnitary(c.Ops[0])
	if err != nil {
		panic(err)
	}
	return u
}
