package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// randUnitary produces a Haar-ish random unitary via QR of a Ginibre matrix.
func randUnitary(rng *rand.Rand, n int) *Matrix {
	g := randMatrix(rng, n, n)
	q, r, err := g.QR()
	if err != nil {
		panic(err)
	}
	// Fix column phases so the distribution is Haar.
	for j := 0; j < n; j++ {
		d := r.At(j, j)
		ph := d / complex(cmplx.Abs(d), 0)
		for i := 0; i < n; i++ {
			q.Set(i, j, q.At(i, j)*ph)
		}
	}
	return q
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 4, 4)
	if !Identity(4).Mul(m).EqualWithin(m, 1e-12) {
		t.Fatal("I*m != m")
	}
	if !m.Mul(Identity(4)).EqualWithin(m, 1e-12) {
		t.Fatal("m*I != m")
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		a := randMatrix(rng, 3, 4)
		b := randMatrix(rng, 4, 5)
		c := randMatrix(rng, 5, 2)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.EqualWithin(right, 1e-10) {
			t.Fatalf("trial %d: (ab)c != a(bc), diff %g", trial, left.MaxAbsDiff(right))
		}
	}
}

func TestDaggerReversesProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 4, 4)
		b := randMatrix(r, 4, 4)
		return a.Mul(b).Dagger().EqualWithin(b.Dagger().Mul(a.Dagger()), 1e-10)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 2, 2)
		b := randMatrix(rng, 2, 2)
		c := randMatrix(rng, 2, 2)
		d := randMatrix(rng, 2, 2)
		left := a.Kron(b).Mul(c.Kron(d))
		right := a.Mul(c).Kron(b.Mul(d))
		if !left.EqualWithin(right, 1e-10) {
			t.Fatalf("trial %d: mixed-product property failed", trial)
		}
	}
}

func TestKronShapeAndValues(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	k := a.Kron(b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("kron shape = %dx%d", k.Rows, k.Cols)
	}
	want := FromRows([][]complex128{
		{0, 1, 0, 2},
		{1, 0, 2, 0},
		{0, 3, 0, 4},
		{3, 0, 4, 0},
	})
	if !k.EqualWithin(want, 0) {
		t.Fatalf("kron values wrong:\n%v", k)
	}
}

func TestTraceCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 4, 4)
	b := randMatrix(rng, 4, 4)
	t1 := a.Mul(b).Trace()
	t2 := b.Mul(a).Trace()
	if cmplx.Abs(t1-t2) > 1e-10 {
		t.Fatalf("tr(AB) != tr(BA): %v vs %v", t1, t2)
	}
}

func TestDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 4, 4)
		b := randMatrix(rng, 4, 4)
		lhs := a.Mul(b).Det()
		rhs := a.Det() * b.Det()
		if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(rhs)) {
			t.Fatalf("trial %d: det(AB)=%v det(A)det(B)=%v", trial, lhs, rhs)
		}
	}
}

func TestDetKnown(t *testing.T) {
	m := FromRows([][]complex128{{2, 0}, {0, 3}})
	if d := m.Det(); cmplx.Abs(d-6) > 1e-14 {
		t.Fatalf("det diag(2,3) = %v", d)
	}
	s := FromRows([][]complex128{{0, 1}, {1, 0}})
	if d := s.Det(); cmplx.Abs(d+1) > 1e-14 {
		t.Fatalf("det swap = %v, want -1", d)
	}
	sing := FromRows([][]complex128{{1, 2}, {2, 4}})
	if d := sing.Det(); cmplx.Abs(d) > 1e-12 {
		t.Fatalf("det singular = %v, want 0", d)
	}
}

func TestSolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 5, 5)
		b := make([]complex128, 5)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := a.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := a.MulVec(x)
		for i := range b {
			if cmplx.Abs(got[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %g at %d", trial, cmplx.Abs(got[i]-b[i]), i)
			}
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: inverse: %v", trial, err)
		}
		if !a.Mul(inv).EqualWithin(Identity(5), 1e-8) {
			t.Fatalf("trial %d: a*inv(a) != I", trial)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := a.Solve([]complex128{1, 2}); err == nil {
		t.Fatal("expected error for singular system")
	}
}

func TestQRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 6, 4)
		q, r, err := a.QR()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !q.Mul(r).EqualWithin(a, 1e-9) {
			t.Fatalf("trial %d: QR != A", trial)
		}
		if !q.Dagger().Mul(q).EqualWithin(Identity(4), 1e-9) {
			t.Fatalf("trial %d: Q columns not orthonormal", trial)
		}
		// R upper triangular.
		for i := 1; i < 4; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(r.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: R not upper triangular at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestUnitaryChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u := randUnitary(rng, 4)
	if !u.IsUnitary(1e-9) {
		t.Fatal("random unitary failed IsUnitary")
	}
	if d := cmplx.Abs(u.Det()); math.Abs(d-1) > 1e-9 {
		t.Fatalf("|det(U)| = %g, want 1", d)
	}
	m := randMatrix(rng, 4, 4)
	if m.IsUnitary(1e-6) {
		t.Fatal("random matrix passed IsUnitary")
	}
}

func TestGlobalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := randUnitary(rng, 4)
	phased := u.Scale(cmplx.Exp(complex(0, 1.234)))
	if !u.EqualUpToPhase(phased, 1e-10) {
		t.Fatal("EqualUpToPhase failed for phased copy")
	}
	v := randUnitary(rng, 4)
	if u.EqualUpToPhase(v, 1e-6) {
		t.Fatal("EqualUpToPhase matched distinct unitaries")
	}
}

func TestHermitianSymmetricChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 4, 4)
	h := a.Add(a.Dagger()) // Hermitian
	if !h.IsHermitian(1e-12) {
		t.Fatal("A+A† not Hermitian")
	}
	s := a.Add(a.Transpose()) // complex symmetric
	if !s.IsSymmetric(1e-12) {
		t.Fatal("A+Aᵀ not symmetric")
	}
	if h.IsSymmetric(1e-9) && h.MaxImagAbs() > 1e-9 {
		t.Fatal("complex Hermitian should not be symmetric in general")
	}
}

func TestHSInnerAndNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 4, 4)
	n1 := a.FrobeniusNorm()
	n2 := math.Sqrt(real(a.HSInner(a)))
	if math.Abs(n1-n2) > 1e-10 {
		t.Fatalf("Frobenius %g != sqrt(HS) %g", n1, n2)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).Mul(New(3, 3))
}

func TestExpHermitianUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 4, 4)
	h := a.Add(a.Dagger()).Scale(0.5)
	u, err := ExpHermitian(h, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsUnitary(1e-8) {
		t.Fatal("exp(i s H) not unitary")
	}
	// exp(i*0*H) = I
	id, err := ExpHermitian(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !id.EqualWithin(Identity(4), 1e-9) {
		t.Fatal("exp(0) != I")
	}
	// Group property exp(i(s+t)H) = exp(isH) exp(itH).
	u2, _ := ExpHermitian(h, 0.3)
	u3, _ := ExpHermitian(h, 1.0)
	if !u.Mul(u2).EqualWithin(u3, 1e-8) {
		t.Fatal("exp group property failed")
	}
}
