package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// jacobiSweeps is the iteration cap for the cyclic Jacobi eigensolver. Small
// dense symmetric matrices converge in a handful of sweeps; 100 is a deep
// safety margin.
const jacobiSweeps = 100

// EigSymmetricReal diagonalizes a real symmetric matrix given as a *Matrix
// whose imaginary parts are negligible. It returns the eigenvalues and a real
// orthogonal matrix of column eigenvectors such that m = V * diag(vals) * Vᵀ.
// Eigenvalues are returned in ascending order.
func EigSymmetricReal(m *Matrix) ([]float64, *Matrix, error) {
	m.mustSquare("EigSymmetricReal")
	if m.MaxImagAbs() > 1e-9 {
		return nil, nil, fmt.Errorf("linalg: EigSymmetricReal: matrix has imaginary parts up to %g", m.MaxImagAbs())
	}
	n := m.Rows
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = real(m.At(i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-8*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("linalg: EigSymmetricReal: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	jacobi(a, v)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool { return vals[idx[p]] < vals[idx[q]] })
	outVals := make([]float64, n)
	vecs := New(n, n)
	for c, k := range idx {
		outVals[c] = vals[k]
		for r := 0; r < n; r++ {
			vecs.Set(r, c, complex(v[r][k], 0))
		}
	}
	return outVals, vecs, nil
}

// jacobi runs cyclic Jacobi rotations on symmetric a in place, accumulating
// rotations into v (so that original = v * diag * vᵀ at convergence).
func jacobi(a, v [][]float64) {
	n := len(a)
	for sweep := 0; sweep < jacobiSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-28 {
			return
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				app, aqq := a[p][p], a[q][q]
				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q], a[q][p] = 0, 0
				for k := 0; k < n; k++ {
					if k != p && k != q {
						akp, akq := a[k][p], a[k][q]
						a[k][p] = c*akp - s*akq
						a[p][k] = a[k][p]
						a[k][q] = s*akp + c*akq
						a[q][k] = a[k][q]
					}
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
}

// SimultaneousDiagonalize finds a single real orthogonal P diagonalizing two
// commuting real symmetric matrices A and B: Pᵀ A P and Pᵀ B P both diagonal.
// This is the core primitive for diagonalizing the complex symmetric unitary
// that appears in the magic-basis Cartan decomposition (its real and
// imaginary parts commute).
//
// The algorithm diagonalizes A, then within each (near-)degenerate eigenspace
// of A diagonalizes the projection of B.
func SimultaneousDiagonalize(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("linalg: SimultaneousDiagonalize shape mismatch")
	}
	valsA, p, err := EigSymmetricReal(a)
	if err != nil {
		return nil, fmt.Errorf("diagonalizing A: %w", err)
	}
	n := a.Rows
	// Group near-equal eigenvalues of A into clusters; rotate within each
	// cluster to diagonalize B's projection.
	const degTol = 1e-7
	start := 0
	for start < n {
		end := start + 1
		for end < n && math.Abs(valsA[end]-valsA[start]) < degTol {
			end++
		}
		if k := end - start; k > 1 {
			// Projected block Bk = Psubᵀ B Psub (k x k, symmetric).
			sub := New(n, k)
			for r := 0; r < n; r++ {
				for c := 0; c < k; c++ {
					sub.Set(r, c, p.At(r, start+c))
				}
			}
			bk := sub.Transpose().Mul(b).Mul(sub)
			_, w, err := EigSymmetricReal(bk)
			if err != nil {
				return nil, fmt.Errorf("diagonalizing degenerate block: %w", err)
			}
			rot := sub.Mul(w)
			for r := 0; r < n; r++ {
				for c := 0; c < k; c++ {
					p.Set(r, start+c, rot.At(r, c))
				}
			}
		}
		start = end
	}
	// Verify both are now diagonal within tolerance.
	pt := p.Transpose()
	for _, m := range []*Matrix{pt.Mul(a).Mul(p), pt.Mul(b).Mul(p)} {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && cmplx.Abs(m.At(i, j)) > 1e-6 {
					return nil, fmt.Errorf("linalg: SimultaneousDiagonalize failed: off-diagonal %g at (%d,%d); matrices may not commute", cmplx.Abs(m.At(i, j)), i, j)
				}
			}
		}
	}
	return p, nil
}

// EigHermitian diagonalizes a complex Hermitian matrix, returning ascending
// real eigenvalues and a unitary matrix of column eigenvectors with
// h = V * diag(vals) * V†.
//
// It embeds H = A + iB into the real symmetric matrix [[A, -B], [B, A]],
// whose spectrum is that of H doubled, and lifts real eigenvectors (x; y)
// back to complex ones x + iy, orthonormalizing within eigenvalue clusters.
func EigHermitian(h *Matrix) ([]float64, *Matrix, error) {
	h.mustSquare("EigHermitian")
	if !h.IsHermitian(1e-9) {
		return nil, nil, fmt.Errorf("linalg: EigHermitian requires Hermitian input")
	}
	n := h.Rows
	big := New(2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re, im := real(h.At(i, j)), imag(h.At(i, j))
			big.Set(i, j, complex(re, 0))
			big.Set(i+n, j+n, complex(re, 0))
			big.Set(i, j+n, complex(-im, 0))
			big.Set(i+n, j, complex(im, 0))
		}
	}
	vals, vecs, err := EigSymmetricReal(big)
	if err != nil {
		return nil, nil, err
	}
	outVals := make([]float64, 0, n)
	out := New(n, n)
	kept := make([]([]complex128), 0, n)
	for c := 0; c < 2*n && len(kept) < n; c++ {
		z := make([]complex128, n)
		for r := 0; r < n; r++ {
			z[r] = complex(real(vecs.At(r, c)), real(vecs.At(r+n, c)))
		}
		// Orthogonalize against eigenvectors already kept in the same
		// eigenvalue cluster (duplicates appear as i-rotated copies).
		for k := len(kept) - 1; k >= 0; k-- {
			if math.Abs(outVals[k]-vals[c]) > 1e-7 {
				break
			}
			var dot complex128
			for r := 0; r < n; r++ {
				dot += cmplx.Conj(kept[k][r]) * z[r]
			}
			for r := 0; r < n; r++ {
				z[r] -= dot * kept[k][r]
			}
		}
		var norm float64
		for _, v := range z {
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-7 {
			continue // duplicate of an already-kept eigenvector
		}
		for r := range z {
			z[r] /= complex(norm, 0)
		}
		kept = append(kept, z)
		outVals = append(outVals, vals[c])
	}
	if len(kept) != n {
		return nil, nil, fmt.Errorf("linalg: EigHermitian recovered %d of %d eigenvectors", len(kept), n)
	}
	for c, z := range kept {
		for r := 0; r < n; r++ {
			out.Set(r, c, z[r])
		}
	}
	return outVals, out, nil
}
