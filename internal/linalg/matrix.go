// Package linalg provides dense complex linear algebra for small matrices.
//
// It is the numeric substrate for the quantum-gate algebra used throughout
// this repository: complex matrices with multiplication, Kronecker products,
// adjoints, traces and inner products, plus the eigensolvers needed by the
// Cartan (KAK) decomposition in package weyl. Matrices are row-major dense
// complex128 and sized for quantum work (2x2, 4x4, and statevector-scale
// rectangular matrices); the algorithms favor clarity and numerical
// robustness over asymptotic performance.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: got %d want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(d ...complex128) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b, "Add")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b, "Sub")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m * b. The 2x2 and 4x4 square cases —
// the gate-algebra hot path — dispatch to unrolled kernels (see small.go).
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	switch {
	case m.Rows == 2 && m.Cols == 2 && b.Cols == 2:
		return Mul2x2(m, b)
	case m.Rows == 4 && m.Cols == 4 && b.Cols == 4:
		return Mul4x4(m, b)
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := b.Data[k*b.Cols : (k+1)*b.Cols]
			outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range row {
				outRow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Kron returns the Kronecker (tensor) product m ⊗ b.
func (m *Matrix) Kron(b *Matrix) *Matrix {
	out := New(m.Rows*b.Rows, m.Cols*b.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for p := 0; p < b.Rows; p++ {
				for q := 0; q < b.Cols; q++ {
					out.Set(i*b.Rows+p, j*b.Cols+q, a*b.At(p, q))
				}
			}
		}
	}
	return out
}

// Transpose returns the (non-conjugating) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Conj returns the element-wise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Dagger returns the conjugate transpose (Hermitian adjoint) of m.
func (m *Matrix) Dagger() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Trace returns the sum of diagonal elements. Panics if m is not square.
func (m *Matrix) Trace() complex128 {
	m.mustSquare("Trace")
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// HSInner returns the Hilbert-Schmidt inner product Tr(m† b).
func (m *Matrix) HSInner(b *Matrix) complex128 {
	m.mustSameShape(b, "HSInner")
	var t complex128
	for i, v := range m.Data {
		t += cmplx.Conj(v) * b.Data[i]
	}
	return t
}

// FrobeniusNorm returns sqrt(Tr(m† m)).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest element-wise absolute difference |m - b|.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	m.mustSameShape(b, "MaxAbsDiff")
	var worst float64
	for i, v := range m.Data {
		if d := cmplx.Abs(v - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// EqualWithin reports whether every element of m is within tol of b.
func (m *Matrix) EqualWithin(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	return m.MaxAbsDiff(b) <= tol
}

// IsUnitary reports whether m† m = I within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	return m.Dagger().Mul(m).EqualWithin(Identity(m.Rows), tol)
}

// IsHermitian reports whether m = m† within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	return m.EqualWithin(m.Dagger(), tol)
}

// IsSymmetric reports whether m = mᵀ within tol (no conjugation).
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	return m.EqualWithin(m.Transpose(), tol)
}

// MaxImagAbs returns the largest |imag(element)|, a realness check.
func (m *Matrix) MaxImagAbs() float64 {
	var worst float64
	for _, v := range m.Data {
		if a := math.Abs(imag(v)); a > worst {
			worst = a
		}
	}
	return worst
}

// RealPart returns a matrix holding real(m) as complex entries.
func (m *Matrix) RealPart() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = complex(real(v), 0)
	}
	return out
}

// ImagPart returns a matrix holding imag(m) as complex entries.
func (m *Matrix) ImagPart() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = complex(imag(v), 0)
	}
	return out
}

// GlobalPhaseAligned returns m scaled by a unit phase so that its largest-
// magnitude element is real positive. Useful for comparing unitaries that are
// equal up to global phase.
func (m *Matrix) GlobalPhaseAligned() *Matrix {
	var best complex128
	var bestAbs float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > bestAbs {
			bestAbs = a
			best = v
		}
	}
	if bestAbs == 0 {
		return m.Copy()
	}
	phase := best / complex(bestAbs, 0)
	return m.Scale(cmplx.Conj(phase))
}

// EqualUpToPhase reports whether m = e^{iφ} b for some φ, within tol.
// The candidate phase is recovered from Tr(m† b), which is exact when the
// matrices are phase-equal and avoids unstable element-pivot choices.
func (m *Matrix) EqualUpToPhase(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	g := m.HSInner(b) // = e^{-iφ}·‖b‖² when m = e^{iφ}b
	if cmplx.Abs(g) < 1e-14 {
		return m.FrobeniusNorm() < tol && b.FrobeniusNorm() < tol
	}
	p := g / complex(cmplx.Abs(g), 0)
	return m.Scale(p).EqualWithin(b, tol)
}

// String renders the matrix with aligned fixed-point entries.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&sb, "%7.4f%+7.4fi", real(v), imag(v))
			if j != m.Cols-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (m *Matrix) mustSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

func (m *Matrix) mustSquare(op string) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: %s requires square matrix, got %dx%d", op, m.Rows, m.Cols))
	}
}
