package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func randRealSymmetric(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := complex(rng.NormFloat64(), 0)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigSymmetricRealReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		m := randRealSymmetric(rng, n)
		vals, v, err := EigSymmetricReal(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sort.Float64sAreSorted(vals) {
			t.Fatalf("trial %d: eigenvalues not ascending: %v", trial, vals)
		}
		d := New(n, n)
		for i, lam := range vals {
			d.Set(i, i, complex(lam, 0))
		}
		recon := v.Mul(d).Mul(v.Transpose())
		if !recon.EqualWithin(m, 1e-9) {
			t.Fatalf("trial %d: V D Vᵀ != M (diff %g)", trial, recon.MaxAbsDiff(m))
		}
		if !v.Mul(v.Transpose()).EqualWithin(Identity(n), 1e-9) {
			t.Fatalf("trial %d: V not orthogonal", trial)
		}
	}
}

func TestEigSymmetricRealKnown(t *testing.T) {
	// Pauli X has eigenvalues ±1.
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	vals, _, err := EigSymmetricReal(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]+1) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("Pauli X eigenvalues = %v, want [-1, 1]", vals)
	}
}

func TestEigSymmetricRejectsAsymmetric(t *testing.T) {
	m := FromRows([][]complex128{{0, 1}, {2, 0}})
	if _, _, err := EigSymmetricReal(m); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
	c := FromRows([][]complex128{{0, 1i}, {-1i, 0}})
	if _, _, err := EigSymmetricReal(c); err == nil {
		t.Fatal("expected error for complex input")
	}
}

func TestSimultaneousDiagonalizeCommutingPair(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 4
		// Build commuting pair sharing an eigenbasis with degeneracies:
		// A has repeated eigenvalues so B distinguishes within blocks.
		q := randRealSymmetric(rng, n)
		_, basis, err := EigSymmetricReal(q)
		if err != nil {
			t.Fatal(err)
		}
		da := Diag(1, 1, 2, 2) // deliberately degenerate
		db := Diag(complex(rng.NormFloat64(), 0), complex(rng.NormFloat64(), 0),
			complex(rng.NormFloat64(), 0), complex(rng.NormFloat64(), 0))
		a := basis.Mul(da).Mul(basis.Transpose())
		b := basis.Mul(db).Mul(basis.Transpose())
		p, err := SimultaneousDiagonalize(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, m := range []*Matrix{p.Transpose().Mul(a).Mul(p), p.Transpose().Mul(b).Mul(p)} {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && cmplx.Abs(m.At(i, j)) > 1e-7 {
						t.Fatalf("trial %d: residual off-diagonal %g", trial, cmplx.Abs(m.At(i, j)))
					}
				}
			}
		}
	}
}

func TestSimultaneousDiagonalizeRejectsNonCommuting(t *testing.T) {
	a := FromRows([][]complex128{{1, 0}, {0, -1}}) // Z
	b := FromRows([][]complex128{{0, 1}, {1, 0}})  // X — does not commute with Z
	if _, err := SimultaneousDiagonalize(a, b); err == nil {
		t.Fatal("expected failure for non-commuting pair")
	}
}

func TestEigHermitianReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		a := randMatrix(rng, n, n)
		h := a.Add(a.Dagger()).Scale(0.5)
		vals, v, err := EigHermitian(h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := New(n, n)
		for i, lam := range vals {
			d.Set(i, i, complex(lam, 0))
		}
		if recon := v.Mul(d).Mul(v.Dagger()); !recon.EqualWithin(h, 1e-8) {
			t.Fatalf("trial %d: V D V† != H (diff %g)", trial, recon.MaxAbsDiff(h))
		}
		if !v.IsUnitary(1e-8) {
			t.Fatalf("trial %d: eigenvector matrix not unitary", trial)
		}
	}
}

func TestEigHermitianDegenerate(t *testing.T) {
	// Identity: fully degenerate spectrum.
	vals, v, err := EigHermitian(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range vals {
		if math.Abs(lam-1) > 1e-10 {
			t.Fatalf("identity eigenvalue %g != 1", lam)
		}
	}
	if !v.IsUnitary(1e-9) {
		t.Fatal("degenerate eigenvectors not unitary")
	}
	// Pauli Y: complex Hermitian with eigenvalues ±1.
	y := FromRows([][]complex128{{0, -1i}, {1i, 0}})
	vals, v, err = EigHermitian(y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]+1) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("Pauli Y eigenvalues = %v", vals)
	}
	if !v.IsUnitary(1e-9) {
		t.Fatal("Pauli Y eigenvectors not unitary")
	}
}

func TestPolyRootsKnown(t *testing.T) {
	// x² - 1 → ±1
	roots, err := PolyRoots([]complex128{-1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(roots, func(i, j int) bool { return real(roots[i]) < real(roots[j]) })
	if cmplx.Abs(roots[0]+1) > 1e-9 || cmplx.Abs(roots[1]-1) > 1e-9 {
		t.Fatalf("roots of x²-1 = %v", roots)
	}
	// (x-1)(x-2)(x-3) = x³ -6x² +11x -6
	roots, err = PolyRoots([]complex128{-6, 11, -6, 1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(roots, func(i, j int) bool { return real(roots[i]) < real(roots[j]) })
	for i, want := range []float64{1, 2, 3} {
		if cmplx.Abs(roots[i]-complex(want, 0)) > 1e-8 {
			t.Fatalf("cubic roots = %v", roots)
		}
	}
}

func TestPolyRootsRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		deg := 2 + rng.Intn(5)
		c := make([]complex128, deg+1)
		for i := range c {
			c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if cmplx.Abs(c[deg]) < 0.1 {
			c[deg] = 1
		}
		roots, err := PolyRoots(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, r := range roots {
			v := c[deg]
			for i := deg - 1; i >= 0; i-- {
				v = v*r + c[i]
			}
			if cmplx.Abs(v) > 1e-6 {
				t.Fatalf("trial %d: residual %g at root %v", trial, cmplx.Abs(v), r)
			}
		}
	}
}

func TestEigenvalues4Unitary(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	u := randUnitary(rng, 4)
	vals, err := Eigenvalues4(u)
	if err != nil {
		t.Fatal(err)
	}
	var prod complex128 = 1
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-7 {
			t.Fatalf("unitary eigenvalue off unit circle: %v", v)
		}
		prod *= v
	}
	if cmplx.Abs(prod-u.Det()) > 1e-6 {
		t.Fatalf("product of eigenvalues %v != det %v", prod, u.Det())
	}
}
