package linalg

// Small-matrix fast paths. The 2x2 and 4x4 complex products below are the
// innermost operations of the KAK/Weyl synthesis and the decomp Adam loop;
// the generic triple loop in Mul plus its per-product allocation dominated
// those paths. mul2x2Into/mul4x4Into are fully unrolled and, because they
// buffer into locals before storing, safe when dst aliases a or b.

// Mul2x2 returns a·b for 2x2 matrices via the unrolled kernel.
func Mul2x2(a, b *Matrix) *Matrix {
	out := New(2, 2)
	mul2x2Into(out, a, b)
	return out
}

// Mul4x4 returns a·b for 4x4 matrices via the unrolled kernel.
func Mul4x4(a, b *Matrix) *Matrix {
	out := New(4, 4)
	mul4x4Into(out, a, b)
	return out
}

// MulInto computes dst = a·b without allocating, dispatching to the
// unrolled 2x2/4x4 kernels when shapes allow. dst may alias a or b for the
// unrolled sizes; for other shapes dst must be distinct storage. Returns
// dst for chaining.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MulInto shape mismatch")
	}
	switch {
	case a.Rows == 2 && a.Cols == 2 && b.Cols == 2:
		mul2x2Into(dst, a, b)
	case a.Rows == 4 && a.Cols == 4 && b.Cols == 4:
		mul4x4Into(dst, a, b)
	default:
		mulGenericInto(dst, a, b)
	}
	return dst
}

// KronInto computes dst = a ⊗ b without allocating; dst must not alias the
// operands. The 2x2⊗2x2 case (single-qubit layer pairs) is unrolled.
func KronInto(dst, a, b *Matrix) *Matrix {
	if dst.Rows != a.Rows*b.Rows || dst.Cols != a.Cols*b.Cols {
		panic("linalg: KronInto shape mismatch")
	}
	if a.Rows == 2 && a.Cols == 2 && b.Rows == 2 && b.Cols == 2 {
		a00, a01, a10, a11 := a.Data[0], a.Data[1], a.Data[2], a.Data[3]
		b00, b01, b10, b11 := b.Data[0], b.Data[1], b.Data[2], b.Data[3]
		d := dst.Data
		d[0], d[1], d[2], d[3] = a00*b00, a00*b01, a01*b00, a01*b01
		d[4], d[5], d[6], d[7] = a00*b10, a00*b11, a01*b10, a01*b11
		d[8], d[9], d[10], d[11] = a10*b00, a10*b01, a11*b00, a11*b01
		d[12], d[13], d[14], d[15] = a10*b10, a10*b11, a11*b10, a11*b11
		return dst
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.Data[i*a.Cols+j]
			for p := 0; p < b.Rows; p++ {
				row := dst.Data[(i*b.Rows+p)*dst.Cols+j*b.Cols:]
				brow := b.Data[p*b.Cols : (p+1)*b.Cols]
				for q, bv := range brow {
					row[q] = av * bv
				}
			}
		}
	}
	return dst
}

func mul2x2Into(dst, a, b *Matrix) {
	a00, a01, a10, a11 := a.Data[0], a.Data[1], a.Data[2], a.Data[3]
	b00, b01, b10, b11 := b.Data[0], b.Data[1], b.Data[2], b.Data[3]
	c00 := a00*b00 + a01*b10
	c01 := a00*b01 + a01*b11
	c10 := a10*b00 + a11*b10
	c11 := a10*b01 + a11*b11
	dst.Data[0], dst.Data[1], dst.Data[2], dst.Data[3] = c00, c01, c10, c11
}

func mul4x4Into(dst, a, b *Matrix) {
	var c [16]complex128
	ad, bd := a.Data, b.Data
	for i := 0; i < 4; i++ {
		ar := ad[i*4 : i*4+4]
		a0, a1, a2, a3 := ar[0], ar[1], ar[2], ar[3]
		c[i*4+0] = a0*bd[0] + a1*bd[4] + a2*bd[8] + a3*bd[12]
		c[i*4+1] = a0*bd[1] + a1*bd[5] + a2*bd[9] + a3*bd[13]
		c[i*4+2] = a0*bd[2] + a1*bd[6] + a2*bd[10] + a3*bd[14]
		c[i*4+3] = a0*bd[3] + a1*bd[7] + a2*bd[11] + a3*bd[15]
	}
	copy(dst.Data, c[:])
}

// mulGenericInto is the generic triple loop writing into dst (which must
// not alias a or b — aliasing is detected and worked around via a copy).
func mulGenericInto(dst, a, b *Matrix) {
	if len(dst.Data) > 0 && len(a.Data) > 0 &&
		(&dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0]) {
		tmp := a.Mul(b)
		copy(dst.Data, tmp.Data)
		return
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			row := b.Data[k*b.Cols : (k+1)*b.Cols]
			outRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range row {
				outRow[j] += av * bv
			}
		}
	}
}
