package linalg

import (
	"fmt"
	"math/cmplx"
)

// PolyRoots returns all complex roots of the polynomial
//
//	c[0] + c[1] x + ... + c[n] xⁿ
//
// using Durand–Kerner (Weierstrass) iteration. The leading coefficient must
// be nonzero. Roots are returned in no particular order.
//
// This is used for characteristic-polynomial spot checks of the 4x4 matrices
// appearing in gate invariants; it is robust for the low degrees (≤ 8) used
// in this repository.
func PolyRoots(c []complex128) ([]complex128, error) {
	n := len(c) - 1
	if n < 1 {
		return nil, fmt.Errorf("linalg: PolyRoots needs degree >= 1")
	}
	if c[n] == 0 {
		return nil, fmt.Errorf("linalg: PolyRoots leading coefficient is zero")
	}
	// Normalize to monic.
	monic := make([]complex128, n+1)
	for i := range monic {
		monic[i] = c[i] / c[n]
	}
	eval := func(x complex128) complex128 {
		v := monic[n]
		for i := n - 1; i >= 0; i-- {
			v = v*x + monic[i]
		}
		return v
	}
	// Initial guesses on a non-real circle (avoids symmetric stagnation).
	roots := make([]complex128, n)
	seed := complex(0.4, 0.9)
	p := seed
	for i := range roots {
		roots[i] = p
		p *= seed
	}
	next := make([]complex128, n)
	for iter := 0; iter < 500; iter++ {
		var worst float64
		for i := range roots {
			num := eval(roots[i])
			den := complex128(1)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				den = complex(1e-18, 0)
			}
			delta := num / den
			next[i] = roots[i] - delta
			if d := cmplx.Abs(delta); d > worst {
				worst = d
			}
		}
		copy(roots, next)
		if worst < 1e-13 {
			return roots, nil
		}
	}
	// Accept if residuals are small even without step convergence.
	for _, r := range roots {
		if cmplx.Abs(eval(r)) > 1e-8 {
			return nil, fmt.Errorf("linalg: PolyRoots did not converge")
		}
	}
	return roots, nil
}

// CharPoly4 returns the coefficients (constant term first) of the
// characteristic polynomial det(xI - m) of a 4x4 matrix, computed with the
// Faddeev–LeVerrier recurrence.
func CharPoly4(m *Matrix) ([]complex128, error) {
	if m.Rows != 4 || m.Cols != 4 {
		return nil, fmt.Errorf("linalg: CharPoly4 requires 4x4, got %dx%d", m.Rows, m.Cols)
	}
	n := 4
	coeff := make([]complex128, n+1)
	coeff[n] = 1
	mk := Identity(n)
	for k := 1; k <= n; k++ {
		mk = m.Mul(mk)
		ck := -mk.Trace() / complex(float64(k), 0)
		coeff[n-k] = ck
		for i := 0; i < n; i++ {
			mk.Set(i, i, mk.At(i, i)+ck)
		}
	}
	return coeff, nil
}

// Eigenvalues4 returns the four eigenvalues of a 4x4 complex matrix via its
// characteristic polynomial. Intended for unitary-invariant computations
// where eigenvectors are not needed.
func Eigenvalues4(m *Matrix) ([]complex128, error) {
	cp, err := CharPoly4(m)
	if err != nil {
		return nil, err
	}
	return PolyRoots(cp)
}
