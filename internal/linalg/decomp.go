package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Det returns the determinant of a square matrix via LU factorization with
// partial pivoting.
func (m *Matrix) Det() complex128 {
	m.mustSquare("Det")
	n := m.Rows
	a := m.Copy()
	det := complex128(1)
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below diag.
		pivot, pivotAbs := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pivotAbs {
				pivot, pivotAbs = r, v
			}
		}
		if pivotAbs == 0 {
			return 0
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	return det
}

// Solve returns x with m*x = b for square nonsingular m, via Gaussian
// elimination with partial pivoting.
func (m *Matrix) Solve(b []complex128) ([]complex128, error) {
	m.mustSquare("Solve")
	n := m.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), n)
	}
	a := m.Copy()
	x := make([]complex128, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		pivot, pivotAbs := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pivotAbs {
				pivot, pivotAbs = r, v
			}
		}
		if pivotAbs < 1e-14 {
			return nil, fmt.Errorf("linalg: Solve singular matrix (pivot %g at col %d)", pivotAbs, col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		p := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ for a square nonsingular matrix.
func (m *Matrix) Inverse() (*Matrix, error) {
	m.mustSquare("Inverse")
	n := m.Rows
	out := New(n, n)
	e := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := m.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

// QR returns the thin QR factorization m = Q*R using modified Gram-Schmidt,
// with Q having orthonormal columns. Requires Rows >= Cols and full column
// rank.
func (m *Matrix) QR() (q, r *Matrix, err error) {
	if m.Rows < m.Cols {
		return nil, nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m.Rows, m.Cols)
	}
	n, k := m.Rows, m.Cols
	q = m.Copy()
	r = New(k, k)
	for j := 0; j < k; j++ {
		// Orthogonalize column j against earlier columns (twice for stability).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				var dot complex128
				for t := 0; t < n; t++ {
					dot += cmplx.Conj(q.At(t, i)) * q.At(t, j)
				}
				r.Set(i, j, r.At(i, j)+dot)
				for t := 0; t < n; t++ {
					q.Set(t, j, q.At(t, j)-dot*q.At(t, i))
				}
			}
		}
		var norm float64
		for t := 0; t < n; t++ {
			norm += real(q.At(t, j))*real(q.At(t, j)) + imag(q.At(t, j))*imag(q.At(t, j))
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, nil, fmt.Errorf("linalg: QR rank deficient at column %d", j)
		}
		r.Set(j, j, complex(norm, 0))
		inv := complex(1/norm, 0)
		for t := 0; t < n; t++ {
			q.Set(t, j, q.At(t, j)*inv)
		}
	}
	return q, r, nil
}

// ExpHermitian returns exp(i*s*H) for a Hermitian matrix H, computed via the
// eigendecomposition of H. The result is unitary.
func ExpHermitian(h *Matrix, s float64) (*Matrix, error) {
	if !h.IsHermitian(1e-10) {
		return nil, fmt.Errorf("linalg: ExpHermitian requires a Hermitian matrix")
	}
	vals, vecs, err := EigHermitian(h)
	if err != nil {
		return nil, err
	}
	n := h.Rows
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, cmplx.Exp(complex(0, s*vals[i])))
	}
	return vecs.Mul(d).Mul(vecs.Dagger()), nil
}
