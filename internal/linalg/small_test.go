package linalg

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// mulReference is the plain triple loop, kept as the oracle for the
// unrolled kernels.
func mulReference(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s complex128
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestSmallMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const tol = 1e-12
	for rep := 0; rep < 20; rep++ {
		for _, n := range []int{2, 4} {
			a, b := randMat(rng, n, n), randMat(rng, n, n)
			want := mulReference(a, b)
			if got := a.Mul(b); got.MaxAbsDiff(want) > tol {
				t.Fatalf("%dx%d Mul diverges by %g", n, n, got.MaxAbsDiff(want))
			}
			dst := New(n, n)
			if got := MulInto(dst, a, b); got.MaxAbsDiff(want) > tol {
				t.Fatalf("%dx%d MulInto diverges by %g", n, n, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestMulIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4} {
		a, b := randMat(rng, n, n), randMat(rng, n, n)
		want := mulReference(a, b)
		aCopy := a.Copy()
		MulInto(aCopy, aCopy, b) // dst aliases left operand
		if aCopy.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("%dx%d MulInto with dst==a wrong", n, n)
		}
		bCopy := b.Copy()
		MulInto(bCopy, a, bCopy) // dst aliases right operand
		if bCopy.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("%dx%d MulInto with dst==b wrong", n, n)
		}
	}
}

func TestMulIntoGenericShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 3, 5), randMat(rng, 5, 2)
	want := mulReference(a, b)
	got := MulInto(New(3, 2), a, b)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("generic MulInto wrong")
	}
}

func TestKronIntoMatchesKron(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := [][4]int{{2, 2, 2, 2}, {2, 3, 3, 2}, {4, 4, 2, 2}}
	for _, c := range cases {
		a, b := randMat(rng, c[0], c[1]), randMat(rng, c[2], c[3])
		want := a.Kron(b)
		got := KronInto(New(want.Rows, want.Cols), a, b)
		if got.MaxAbsDiff(want) > 0 {
			t.Fatalf("KronInto %v diverges", c)
		}
	}
}

func TestMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MulInto(New(2, 2), New(2, 3), New(2, 2))
}
