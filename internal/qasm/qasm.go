// Package qasm provides OpenQASM 2.0 interoperability for the circuit IR:
// an exporter (with optional exact expansion of non-qelib gates — the
// SNAIL's iSWAP family, SYC, Haar SU(4) blocks — into u3+cx via the
// repository's minimal-CNOT synthesis) and an importer for the emitted
// subset. Round-tripping preserves circuit semantics up to global phase.
package qasm

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/weyl"
)

// qelib gates we can emit directly, with their parameter counts.
var direct = map[string]int{
	"h": 0, "x": 0, "y": 0, "z": 0, "s": 0, "sdg": 0, "t": 0, "tdg": 0, "sx": 0,
	"rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3,
	"cx": 0, "cz": 0, "cp": 1, "swap": 0, "rzz": 1, "rxx": 1, "id": 0,
}

// Options controls export behavior.
type Options struct {
	// ExpandNonStandard synthesizes gates outside qelib1 (iswap, siswap,
	// syc, su4, can, explicit-unitary "u") into exact u3 + cx sequences.
	// When false, such gates are an error.
	ExpandNonStandard bool
}

// Export renders a circuit as OpenQASM 2.0.
func Export(c *circuit.Circuit, opt Options) (string, error) {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.N)
	for _, op := range c.Ops {
		if err := writeOp(&sb, op, opt); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

func writeOp(sb *strings.Builder, op circuit.Op, opt Options) error {
	if nparams, ok := direct[op.Name]; ok && op.U == nil {
		if len(op.Params) != nparams {
			return fmt.Errorf("qasm: gate %q has %d params, want %d", op.Name, len(op.Params), nparams)
		}
		sb.WriteString(op.Name)
		if nparams > 0 {
			sb.WriteString("(")
			for i, p := range op.Params {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(sb, "%.17g", p)
			}
			sb.WriteString(")")
		}
		sb.WriteString(" ")
		for i, q := range op.Qubits {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(sb, "q[%d]", q)
		}
		sb.WriteString(";\n")
		return nil
	}
	if !opt.ExpandNonStandard {
		return fmt.Errorf("qasm: gate %q is not in qelib1 (set ExpandNonStandard)", op.Name)
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return err
	}
	switch len(op.Qubits) {
	case 1:
		th, ph, lm := ZYZAngles(u)
		return writeOp(sb, circuit.Op{Name: "u3", Qubits: op.Qubits, Params: []float64{th, ph, lm}}, opt)
	case 2:
		syn, err := weyl.SynthesizeCX(u)
		if err != nil {
			return fmt.Errorf("qasm: expanding %q: %w", op.Name, err)
		}
		a, b := op.Qubits[0], op.Qubits[1]
		for _, g := range syn.Gates {
			if g.CX {
				if err := writeOp(sb, circuit.Op{Name: "cx", Qubits: []int{a, b}}, opt); err != nil {
					return err
				}
				continue
			}
			for i, m := range []*linalg.Matrix{g.L, g.R} {
				if m.EqualUpToPhase(linalg.Identity(2), 1e-12) {
					continue
				}
				th, ph, lm := ZYZAngles(m)
				q := a
				if i == 1 {
					q = b
				}
				if err := writeOp(sb, circuit.Op{Name: "u3", Qubits: []int{q}, Params: []float64{th, ph, lm}}, opt); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("qasm: unsupported arity for %q", op.Name)
}

// ZYZAngles extracts (θ, φ, λ) with U ≡ u3(θ,φ,λ) up to global phase.
func ZYZAngles(u *linalg.Matrix) (theta, phi, lambda float64) {
	// Normalize to SU(2): su = u / sqrt(det).
	det := u.Det()
	s := cmplx.Sqrt(det)
	a := u.At(0, 0) / s
	b := u.At(1, 0) / s
	absA, absB := cmplx.Abs(a), cmplx.Abs(b)
	theta = 2 * math.Atan2(absB, absA)
	switch {
	case absB < 1e-12: // diagonal: only φ+λ matters
		phi = -2 * cmplx.Phase(a)
		lambda = 0
	case absA < 1e-12: // anti-diagonal: only φ−λ matters
		phi = 2 * cmplx.Phase(b)
		lambda = 0
	default:
		phi = cmplx.Phase(b) - cmplx.Phase(a)
		lambda = -cmplx.Phase(a) - cmplx.Phase(b)
	}
	return theta, phi, lambda
}
