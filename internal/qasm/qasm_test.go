package qasm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func roundTrip(t *testing.T, c *circuit.Circuit, opt Options) {
	t.Helper()
	src, err := Export(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(src)
	if err != nil {
		t.Fatalf("import failed: %v\nsource:\n%s", err, src)
	}
	if back.N != c.N {
		t.Fatalf("width changed: %d vs %d", back.N, c.N)
	}
	want, err := sim.RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunCircuit(back)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := want.Inner(got)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(ip)-1) > 1e-8 {
		t.Fatalf("round trip changed semantics: overlap %g\nsource:\n%s", cmplx.Abs(ip), src)
	}
}

func TestRoundTripWorkloads(t *testing.T) {
	roundTrip(t, workloads.GHZ(6), Options{})
	roundTrip(t, workloads.QFT(5, true), Options{})
	roundTrip(t, workloads.Adder(2), Options{})
	roundTrip(t, workloads.TIMHamiltonian(5, 2), Options{})
}

func TestRoundTripNonStandardGates(t *testing.T) {
	c := circuit.New(3)
	c.ISwap(0, 1)
	c.SqrtISwap(1, 2)
	c.Append(circuit.Op{Name: "syc", Qubits: []int{0, 2}})
	c.SU4(0, 1, gates.RandomSU4(rand.New(rand.NewSource(1))))
	// Without expansion these must fail...
	if _, err := Export(c, Options{}); err == nil {
		t.Fatal("non-standard gates exported without expansion")
	}
	// ...with expansion they round-trip exactly.
	roundTrip(t, c, Options{ExpandNonStandard: true})
}

func TestExportFormat(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.RZ(1, math.Pi/4)
	src, err := Export(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[2];", "h q[0];", "cx q[0],q[1];", "rz("} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestImportAliasesAndExpressions(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
u1(pi/2) q[0];      // alias for p
cu1(-pi/4) q[0],q[1];
u3(pi/2, 0, pi) q[1];
rz(2*pi/8) q[0];
rx(1.5e-1) q[1];
`
	c, err := Import(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 5 {
		t.Fatalf("parsed %d ops, want 5", len(c.Ops))
	}
	if c.Ops[0].Name != "p" || math.Abs(c.Ops[0].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("u1 alias wrong: %v", c.Ops[0])
	}
	if c.Ops[1].Name != "cp" || math.Abs(c.Ops[1].Params[0]+math.Pi/4) > 1e-12 {
		t.Errorf("cu1 alias wrong: %v", c.Ops[1])
	}
	if math.Abs(c.Ops[3].Params[0]-math.Pi/4) > 1e-12 {
		t.Errorf("expression 2*pi/8 = %g", c.Ops[3].Params[0])
	}
	if math.Abs(c.Ops[4].Params[0]-0.15) > 1e-12 {
		t.Errorf("scientific literal = %g", c.Ops[4].Params[0])
	}
}

func TestImportErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":      `OPENQASM 2.0; h q[0];`,
		"unknown gate": "qreg q[2];\nmagic q[0];",
		"bad register": "qreg q[2];\nh r[0];",
		"bad expr":     "qreg q[1];\nrz(pi+) q[0];",
		"double qreg":  "qreg q[2];\nqreg r[2];",
	}
	for name, src := range cases {
		if _, err := Import(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEvalExprEdgeCases exercises the parameter-expression parser directly:
// π token boundaries (the old parser read any "pi"-prefixed token as π, so
// "pix" silently evaluated to π), unary minus, scientific notation, nested
// parens, and malformed input.
func TestEvalExprEdgeCases(t *testing.T) {
	good := map[string]float64{
		"pi":          math.Pi,
		"-pi/2":       -math.Pi / 2,
		"2*pi/8":      math.Pi / 4,
		"(pi)":        math.Pi,
		"pi*pi":       math.Pi * math.Pi,
		"--1":         1,
		"-(2+3)":      -5,
		"1.5e-1":      0.15,
		"2E+3":        2000,
		"1e3/4":       250,
		" 1 + 2 * 3 ": 7,
		"3-pi":        3 - math.Pi,
	}
	for expr, want := range good {
		got, err := evalExpr(expr)
		if err != nil {
			t.Errorf("%q: %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %g, want %g", expr, got, want)
		}
	}
	bad := []string{
		"pix",     // identifier, not π with trailing 'x'
		"pi2",     // likewise
		"pi_half", // likewise
		"2*pix",
		"",
		"1/0",
		"(pi",
		"pi+",
		"1..2",
		"e5", // exponent with no mantissa
		"1 2",
	}
	for _, expr := range bad {
		if v, err := evalExpr(expr); err == nil {
			t.Errorf("%q: accepted as %g", expr, v)
		}
	}
}

// TestImportPiBoundaryRegression pins the fix end-to-end: a gate parameter
// spelled "pix" must fail the import instead of parsing as π.
func TestImportPiBoundaryRegression(t *testing.T) {
	if _, err := Import("qreg q[1];\nrz(pix) q[0];"); err == nil {
		t.Fatal("rz(pix) accepted — 'pi' needs a token boundary")
	}
	// The boundary must not break legitimate uses where 'pi' ends at a
	// non-identifier character.
	c, err := Import("qreg q[1];\nrz(pi/2) q[0];\nrz(-pi) q[0];\nrz(pi) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Ops[2].Params[0]-math.Pi) > 1e-12 {
		t.Fatalf("rz(pi) = %g", c.Ops[2].Params[0])
	}
}

func TestZYZAnglesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := gates.RandomSU2(r)
		th, ph, lm := ZYZAngles(u)
		return gates.U3(th, ph, lm).EqualUpToPhase(u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	// Edge cases: diagonal and anti-diagonal unitaries.
	diag := gates.RZ(0.7)
	th, ph, lm := ZYZAngles(diag)
	if !gates.U3(th, ph, lm).EqualUpToPhase(diag, 1e-9) {
		t.Error("ZYZ failed on diagonal")
	}
	anti := gates.X()
	th, ph, lm = ZYZAngles(anti)
	if !gates.U3(th, ph, lm).EqualUpToPhase(anti, 1e-9) {
		t.Error("ZYZ failed on anti-diagonal")
	}
}
