package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Import parses the OpenQASM 2.0 subset this package emits (plus common
// aliases: u1→p, cu1→cp, u→u3). Unsupported statements (creg, measure,
// barrier, comments) are skipped or rejected with a clear error.
func Import(src string) (*circuit.Circuit, error) {
	var c *circuit.Circuit
	regName := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(stmt, &c, &regName); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo+1, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func parseStatement(stmt string, c **circuit.Circuit, regName *string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"),
		strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"),
		strings.HasPrefix(stmt, "barrier"),
		strings.HasPrefix(stmt, "measure"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
		open := strings.Index(rest, "[")
		closeB := strings.Index(rest, "]")
		if open < 0 || closeB < open {
			return fmt.Errorf("malformed qreg %q", stmt)
		}
		n, err := strconv.Atoi(rest[open+1 : closeB])
		if err != nil || n < 1 {
			return fmt.Errorf("bad qreg size in %q", stmt)
		}
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		*regName = strings.TrimSpace(rest[:open])
		*c = circuit.New(n)
		return nil
	}
	if *c == nil {
		return fmt.Errorf("gate before qreg: %q", stmt)
	}
	// gate[(params)] qubits
	name := stmt
	params := ""
	if i := strings.Index(stmt, "("); i >= 0 {
		j := strings.LastIndex(stmt, ")")
		if j < i {
			return fmt.Errorf("unbalanced parens in %q", stmt)
		}
		name = strings.TrimSpace(stmt[:i])
		params = stmt[i+1 : j]
		stmt = name + " " + strings.TrimSpace(stmt[j+1:])
	}
	fields := strings.Fields(stmt)
	if len(fields) < 2 {
		return fmt.Errorf("missing operands in %q", stmt)
	}
	name = fields[0]
	// Aliases.
	switch name {
	case "u1":
		name = "p"
	case "cu1":
		name = "cp"
	case "u", "U":
		name = "u3"
	case "CX":
		name = "cx"
	}
	var pvals []float64
	if params != "" {
		for _, expr := range splitTopLevel(params) {
			v, err := evalExpr(expr)
			if err != nil {
				return err
			}
			pvals = append(pvals, v)
		}
	}
	var qubits []int
	for _, qref := range splitTopLevel(strings.Join(fields[1:], "")) {
		qref = strings.TrimSpace(qref)
		open := strings.Index(qref, "[")
		closeB := strings.Index(qref, "]")
		if open < 0 || closeB < open {
			return fmt.Errorf("malformed qubit ref %q", qref)
		}
		if got := strings.TrimSpace(qref[:open]); got != *regName {
			return fmt.Errorf("unknown register %q", got)
		}
		q, err := strconv.Atoi(qref[open+1 : closeB])
		if err != nil {
			return fmt.Errorf("bad qubit index in %q", qref)
		}
		qubits = append(qubits, q)
	}
	want, ok := direct[name]
	if !ok {
		return fmt.Errorf("unsupported gate %q", name)
	}
	if len(pvals) != want {
		return fmt.Errorf("gate %q: %d params, want %d", name, len(pvals), want)
	}
	(*c).Append(circuit.Op{Name: name, Qubits: qubits, Params: pvals})
	return nil
}

// splitTopLevel splits on commas not nested in parentheses.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// evalExpr evaluates the arithmetic subset appearing in QASM parameters:
// floats, pi, + - * /, unary minus, parentheses.
func evalExpr(s string) (float64, error) {
	p := &exprParser{src: strings.TrimSpace(s)}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parseSum() (float64, error) {
	v, err := p.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			p.pos++
			w, err := p.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseProduct() (float64, error) {
	v, err := p.parseAtom()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '*':
			p.pos++
			w, err := p.parseAtom()
			if err != nil {
				return 0, err
			}
			v *= w
		case '/':
			p.pos++
			w, err := p.parseAtom()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseAtom() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch {
	case p.src[p.pos] == '-':
		p.pos++
		v, err := p.parseAtom()
		return -v, err
	case p.src[p.pos] == '(':
		p.pos++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing closing paren")
		}
		p.pos++
		return v, nil
	case p.atPi():
		p.pos += 2
		return math.Pi, nil
	default:
		start := p.pos
		for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.' ||
			p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
			((p.src[p.pos] == '+' || p.src[p.pos] == '-') && p.pos > start &&
				(p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E'))) {
			p.pos++
		}
		if start == p.pos {
			return 0, fmt.Errorf("unexpected character %q", p.src[p.pos])
		}
		return strconv.ParseFloat(p.src[start:p.pos], 64)
	}
}

// atPi reports whether the cursor sits on the constant "pi" as a complete
// token: "pi" followed by an identifier character ("pix", "pi2", "pi_")
// is an unknown identifier, not π with trailing garbage.
func (p *exprParser) atPi() bool {
	if !strings.HasPrefix(p.src[p.pos:], "pi") {
		return false
	}
	if p.pos+2 >= len(p.src) {
		return true
	}
	return !isIdentChar(p.src[p.pos+2])
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentChar(b byte) bool {
	return isDigit(b) || b == '_' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
