package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotConcurrentWithFills hammers every mutating path — Put, Get,
// Do fills and dedups — while another goroutine takes Snapshots, so the
// race detector proves the snapshot read is safe against concurrent
// counter updates. The final snapshot must balance: every Do call is
// accounted as exactly one of hit/dedup/fill.
func TestSnapshotConcurrentWithFills(t *testing.T) {
	s := NewMemory[payload](64)
	const (
		workers = 8
		ops     = 200
	)
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := s.Snapshot()
				if st.Entries < 0 || st.Entries > 64 {
					panic(fmt.Sprintf("snapshot entries out of bounds: %+v", st))
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := key(fmt.Sprintf("k%d", i%32))
				switch i % 3 {
				case 0:
					s.Put(k, payload{A: i})
				case 1:
					s.Get(k)
				default:
					if _, err := s.Do(k, func() (payload, error) {
						return payload{A: i}, nil
					}); err != nil {
						panic(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	st := s.Snapshot()
	total := st.Hits() + st.Dedups + st.Fills + st.Misses
	if total == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if st.DegradedServes != 0 {
		t.Fatalf("memory-only store counted degraded serves: %+v", st)
	}
}

// TestSnapshotCountsDegradedServes quarantines the disk tier (error budget
// 1, dead disk) and checks that memory hits and fresh fills served during
// the quarantine are counted — the traffic a fail-hard design would have
// refused — and that Stats remains an alias of Snapshot.
func TestSnapshotCountsDegradedServes(t *testing.T) {
	bfs := &brokenFS{}
	s, err := New[payload](0, t.TempDir(),
		WithFS(bfs), WithRetry(0, 0), WithErrorBudget(1), WithProbeInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	bfs.broken.Store(true)
	// First Put's disk write fails, trips the one-failure budget, and
	// quarantines the tier; the value still lands in memory.
	s.Put(key("a"), payload{A: 1})
	if st := s.Snapshot(); !st.Degraded || st.DegradedServes != 0 {
		t.Fatalf("expected quarantined tier before any degraded serve: %+v", st)
	}
	// A memory hit and a fresh fill while degraded both count as serves.
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("memory tier lost the value")
	}
	if _, err := s.Do(key("b"), func() (payload, error) { return payload{A: 2}, nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.DegradedServes != 2 {
		t.Fatalf("DegradedServes = %d, want 2 (one hit + one fill): %+v", st.DegradedServes, st)
	}
	if st != s.Stats() {
		t.Fatalf("Stats diverged from Snapshot: %+v vs %+v", s.Stats(), st)
	}
}
