package cache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(s string) Key {
	h := NewHasher("test")
	h.WriteString(s)
	return h.Sum()
}

// TestHasherFieldBoundaries pins the anti-ambiguity property: shifting
// bytes between adjacent fields must change the key.
func TestHasherFieldBoundaries(t *testing.T) {
	a := NewHasher("d")
	a.WriteString("ab")
	a.WriteString("c")
	b := NewHasher("d")
	b.WriteString("a")
	b.WriteString("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("field boundaries are ambiguous")
	}
	c := NewHasher("other")
	c.WriteString("ab")
	c.WriteString("c")
	if a.Sum() == c.Sum() {
		t.Fatal("domain separation failed")
	}
	d1 := NewHasher("d")
	d1.WriteInt(-1)
	d2 := NewHasher("d")
	d2.WriteUint(^uint64(0))
	if d1.Sum() == d2.Sum() {
		t.Fatal("int/uint tags collide")
	}
	f1 := NewHasher("d")
	f1.WriteFloat(0.5)
	f2 := NewHasher("d")
	f2.WriteFloat(0.25)
	if f1.Sum() == f2.Sum() {
		t.Fatal("distinct floats collide")
	}
}

func TestGetPutAndCounters(t *testing.T) {
	s := NewMemory[int](0)
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(key("a"), 7)
	v, ok := s.Get(key("a"))
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewMemory[int](2)
	s.Put(key("a"), 1)
	s.Put(key("b"), 2)
	// Touch "a" so "b" is the eviction victim when "c" arrives.
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("lost a")
	}
	s.Put(key("c"), 3)
	if _, ok := s.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoFillsOnceAndCachesValue(t *testing.T) {
	s := NewMemory[string](0)
	calls := 0
	fn := func() (string, error) { calls++; return "v", nil }
	for i := 0; i < 3; i++ {
		v, err := s.Do(key("k"), fn)
		if err != nil || v != "v" {
			t.Fatalf("Do = (%q, %v)", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if st := s.Stats(); st.Fills != 1 || st.MemHits != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	s := NewMemory[int](0)
	boom := errors.New("boom")
	calls := 0
	_, err := s.Do(key("k"), func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := s.Do(key("k"), func() (int, error) { calls++; return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("Do after error = (%d, %v)", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
}

// TestDoSingleflight runs many concurrent Do calls on one key through a
// gate so they all arrive before the first fill completes: exactly one
// computation must run and everyone shares its value.
func TestDoSingleflight(t *testing.T) {
	s := NewMemory[int](0)
	const waiters = 16
	gate := make(chan struct{})
	var calls int
	var start, done sync.WaitGroup
	start.Add(waiters)
	done.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer done.Done()
			start.Done()
			v, err := s.Do(key("k"), func() (int, error) {
				calls++ // safe: singleflight admits one fn at a time for this key
				<-gate
				return 99, nil
			})
			if err != nil || v != 99 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	start.Wait()
	close(gate)
	done.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Fills != 1 {
		t.Fatalf("fills = %d, want 1", st.Fills)
	}
	if st.Dedups+st.MemHits != waiters-1 {
		t.Fatalf("dedups(%d)+memHits(%d) != %d", st.Dedups, st.MemHits, waiters-1)
	}
}

// TestDoPanicReleasesWaiters: a panicking compute fn must propagate the
// panic to its caller, hand concurrent waiters either an error or a clean
// recompute (never the zero value posing as success), and unregister the
// flight entry so the key stays usable — without the deferred cleanup,
// every later Do on the key would block forever (this test would time out).
func TestDoPanicReleasesWaiters(t *testing.T) {
	s := NewMemory[int](0)
	entered := make(chan struct{})
	release := make(chan struct{})
	type res struct {
		v   int
		err error
	}
	waiter := make(chan res, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the filler")
			}
		}()
		s.Do(key("k"), func() (int, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered
	go func() {
		v, err := s.Do(key("k"), func() (int, error) { return 55, nil })
		waiter <- res{v, err}
	}()
	close(release)
	// Two legitimate outcomes for the concurrent caller: it joined the
	// panicked fill (error), or it arrived after cleanup and recomputed
	// (55, nil). The zero value with a nil error would mean a panicked fill
	// leaked as success.
	if r := <-waiter; r.err == nil && r.v != 55 {
		t.Fatalf("waiter got (%d, nil) from a panicked fill", r.v)
	}
	// The key must not be wedged: a fresh Do soon completes cleanly. (A
	// first attempt may still join the panicked call before its deferred
	// cleanup finishes deleting the flight entry — that returns the panic
	// error promptly, which is released-not-wedged, so retry.)
	for attempt := 0; ; attempt++ {
		v, err := s.Do(key("k"), func() (int, error) { return 7, nil })
		if err == nil {
			if v != 7 && v != 55 {
				t.Fatalf("Do after panic = (%d, nil)", v)
			}
			break
		}
		if attempt > 1000 {
			t.Fatalf("key still wedged after %d attempts: %v", attempt, err)
		}
	}
}

type payload struct {
	A int
	B float64
	C string
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := New[payload](0, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := payload{A: 3, B: 0.1 + 0.2, C: "x"}
	s1.Put(key("k"), want)

	// A fresh store over the same directory serves the value from disk.
	s2, err := New[payload](0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key("k"))
	if !ok || got != want {
		t.Fatalf("disk get = (%+v, %v), want (%+v, true)", got, ok, want)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v (disk hit should promote to memory)", st)
	}
	// Second read is a memory hit.
	if _, ok := s2.Get(key("k")); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskTierCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := New[payload](0, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("k")
	if err := os.WriteFile(filepath.Join(dir, k.String()+".json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt file served as a hit")
	}
	if st := s.Stats(); st.DiskErrs != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The slot heals: Put then Get round-trips.
	s.Put(k, payload{A: 1})
	s2, _ := New[payload](0, dir)
	if v, ok := s2.Get(k); !ok || v.A != 1 {
		t.Fatalf("healed slot = (%+v, %v)", v, ok)
	}
}

func TestNewRejectsUnusableDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New[int](0, filepath.Join(file, "sub")); err == nil {
		t.Fatal("New accepted a directory under a regular file")
	}
}

// TestNilStoreIsNoop verifies the nil-store convention callers rely on to
// thread an optional cache without branching.
func TestNilStoreIsNoop(t *testing.T) {
	var s *Store[int]
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("nil store hit")
	}
	s.Put(key("a"), 1)
	v, err := s.Do(key("a"), func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("nil Do = (%d, %v)", v, err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
}

// TestFillPanicErrorCarriesValue pins the waiter-side contract of a
// panicked fill: the error handed to waiters includes the recovered panic
// value (so they can diagnose what killed the computation), the panic
// itself re-propagates unchanged, and the flight entry is unregistered.
// Driving fill directly keeps the test deterministic — no racing goroutine
// needed to guarantee a waiter joined before the panic.
func TestFillPanicErrorCarriesValue(t *testing.T) {
	s := NewMemory[int](0)
	k := key("k")
	c := &call[int]{done: make(chan struct{})}
	s.flightMu.Lock()
	s.flight[k] = c
	s.flightMu.Unlock()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("re-panic value %v, want \"boom\" unchanged", r)
			}
		}()
		s.fill(k, c, func() (int, error) { panic("boom") })
	}()
	<-c.done
	if c.err == nil || !strings.Contains(c.err.Error(), "panicked: boom") {
		t.Fatalf("waiter error %v, want it to contain the panic value", c.err)
	}
	s.flightMu.Lock()
	_, still := s.flight[k]
	s.flightMu.Unlock()
	if still {
		t.Fatal("flight entry leaked after panicked fill")
	}
}

// flakyFS fails the first failReads/failWrites operations of each kind with
// a transient error, then delegates to the real disk — the shape of a disk
// that recovers under retry.
type flakyFS struct {
	failReads  atomic.Int64
	failWrites atomic.Int64
	inner      OSFS
}

func (f *flakyFS) ReadFile(path string) ([]byte, error) {
	if f.failReads.Add(-1) >= 0 {
		return nil, errors.New("injected transient read fault")
	}
	return f.inner.ReadFile(path)
}

func (f *flakyFS) WriteFile(dir, path string, data []byte) error {
	if f.failWrites.Add(-1) >= 0 {
		return errors.New("injected transient write fault")
	}
	return f.inner.WriteFile(dir, path, data)
}

func (f *flakyFS) Remove(path string) error { return f.inner.Remove(path) }

// TestDiskRetryRecoversTransientFault: one injected failure per op is
// absorbed by the retry budget — the op succeeds, Retries counts the extra
// attempt, and DiskErrs stays zero because nothing failed post-retries.
func TestDiskRetryRecoversTransientFault(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{}
	ffs.failWrites.Store(1)
	s, err := New[payload](0, dir, WithFS(ffs), WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := payload{A: 9, C: "retry"}
	s.Put(key("k"), want)
	if st := s.Stats(); st.Retries != 1 || st.DiskErrs != 0 || st.Degraded {
		t.Fatalf("after flaky put: stats %+v", st)
	}

	// Fresh store over the same dir, first read injected to fail once.
	ffs2 := &flakyFS{}
	ffs2.failReads.Store(1)
	s2, err := New[payload](0, dir, WithFS(ffs2), WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key("k"))
	if !ok || got != want {
		t.Fatalf("flaky get = (%+v, %v), want (%+v, true)", got, ok, want)
	}
	if st := s2.Stats(); st.Retries != 1 || st.DiskErrs != 0 || st.DiskHits != 1 {
		t.Fatalf("after flaky get: stats %+v", st)
	}
}

// brokenFS fails every operation while broken is set — a disk that has
// gone away entirely, then comes back.
type brokenFS struct {
	broken atomic.Bool
	inner  OSFS
}

func (f *brokenFS) ReadFile(path string) ([]byte, error) {
	if f.broken.Load() {
		return nil, errors.New("injected dead disk")
	}
	return f.inner.ReadFile(path)
}

func (f *brokenFS) WriteFile(dir, path string, data []byte) error {
	if f.broken.Load() {
		return errors.New("injected dead disk")
	}
	return f.inner.WriteFile(dir, path, data)
}

func (f *brokenFS) Remove(path string) error {
	if f.broken.Load() {
		return errors.New("injected dead disk")
	}
	return f.inner.Remove(path)
}

// TestDiskQuarantineAndRecovery walks the full degradation lifecycle: the
// error budget trips after consecutive failures, the store keeps serving
// memory-only (no evaluation ever fails), and once the disk heals the
// health probe lifts the quarantine and persistence resumes.
func TestDiskQuarantineAndRecovery(t *testing.T) {
	dir := t.TempDir()
	bfs := &brokenFS{}
	bfs.broken.Store(true)
	s, err := New[payload](0, dir,
		WithFS(bfs), WithRetry(0, 0), WithErrorBudget(2), WithProbeInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key("a"), payload{A: 1}) // failure 1 of 2
	if st := s.Stats(); st.Degraded || st.DiskErrs != 1 {
		t.Fatalf("before budget trips: stats %+v", st)
	}
	s.Put(key("b"), payload{A: 2}) // failure 2 of 2 → quarantine
	st := s.Stats()
	if !st.Degraded || st.Quarantines != 1 || st.DiskErrs != 2 {
		t.Fatalf("after budget trips: stats %+v", st)
	}

	// Degraded = memory-only, not broken: both entries still serve from the
	// LRU and Do still computes and returns values.
	if v, ok := s.Get(key("a")); !ok || v.A != 1 {
		t.Fatalf("degraded mem get = (%+v, %v)", v, ok)
	}
	if v, err := s.Do(key("c"), func() (payload, error) { return payload{A: 3}, nil }); err != nil || v.A != 3 {
		t.Fatalf("degraded Do = (%+v, %v)", v, err)
	}

	// While the disk is still dead, probes fail and the quarantine holds.
	if _, ok := s.Get(key("zz")); ok {
		t.Fatal("hit on a key never stored")
	}
	if st := s.Stats(); !st.Degraded {
		t.Fatal("quarantine lifted while the disk is still dead")
	}

	// Disk comes back: the next access probes, the probe passes, and the
	// tier re-enables — writes reach the real directory again.
	bfs.broken.Store(false)
	s.Put(key("d"), payload{A: 4})
	if st := s.Stats(); st.Degraded {
		t.Fatalf("quarantine not lifted after heal: stats %+v", st)
	}
	fresh, err := New[payload](0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Get(key("d")); !ok || v.A != 4 {
		t.Fatalf("post-recovery persistence = (%+v, %v), want A=4", v, ok)
	}
}

// TestStaleTmpSwept: New removes hour-old "tmp-*" staging debris from an
// interrupted diskPut, and nothing else — fresh temp files (a concurrent
// writer mid-publish) and real cache entries survive.
func TestStaleTmpSwept(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "tmp-orphan")
	fresh := filepath.Join(dir, "tmp-live")
	entry := filepath.Join(dir, "deadbeef.json")
	for _, p := range []string{old, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * time.Hour)
	for _, p := range []string{old, entry} {
		if err := os.Chtimes(p, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := New[int](0, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("stale tmp file not swept")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh tmp file swept — could be a live writer's staging file")
	}
	if _, err := os.Stat(entry); err != nil {
		t.Error("real cache entry swept")
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	s := NewMemory[int](8) // small bound so eviction races with use
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("k%d", i%16))
				v, err := s.Do(k, func() (int, error) { return i % 16, nil })
				if err != nil || v != i%16 {
					t.Errorf("Do = (%d, %v), want (%d, nil)", v, err, i%16)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
