// Package cache provides the content-addressed result cache behind the
// sweep engine: repeated figure regenerations and overlapping sweeps
// (Figs. 4/11/12 share workloads and machines) re-issue byte-identical
// Evaluate calls, and because every cell's routing seed is a pure function
// of its coordinates (the FNV task-seed scheme in internal/experiments),
// the result of such a call is fully determined by its inputs. A cache
// entry therefore never needs invalidation — the key is a cryptographic
// hash of everything the value depends on, so a stale hit is impossible by
// construction; a changed input is a different key.
//
// Store layers two tiers: a bounded in-memory LRU (always on) and an
// optional on-disk JSON tier (one file per key, written atomically), so a
// warm directory can serve repeated qcbench runs across processes. Do adds
// singleflight-style deduplication: concurrent callers of the same key
// under the parallel sweep engine compute the value once and share it.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key is a content hash identifying one cached computation. Equal keys mean
// equal inputs (up to SHA-256 collisions), so values never expire.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the disk-tier file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates the inputs of a computation into a Key. Every write is
// tagged and length-delimited, so field boundaries are unambiguous:
// WriteString("ab")+WriteString("c") and WriteString("a")+WriteString("bc")
// produce different keys.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key derivation under a domain label (e.g.
// "core.Evaluate/v1"); distinct domains can never collide.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.WriteString(domain)
	return h
}

func (h *Hasher) tag(t byte, payload uint64) {
	var buf [9]byte
	buf[0] = t
	binary.BigEndian.PutUint64(buf[1:], payload)
	h.h.Write(buf[:])
}

// WriteString hashes a length-prefixed string field.
func (h *Hasher) WriteString(s string) {
	h.tag('s', uint64(len(s)))
	h.h.Write([]byte(s))
}

// WriteInt hashes a signed integer field.
func (h *Hasher) WriteInt(v int64) { h.tag('i', uint64(v)) }

// WriteUint hashes an unsigned integer field.
func (h *Hasher) WriteUint(v uint64) { h.tag('u', v) }

// WriteFloat hashes a float field by its exact bit pattern.
func (h *Hasher) WriteFloat(f float64) { h.tag('f', math.Float64bits(f)) }

// Sum finalizes the key. The Hasher may keep accumulating afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// Stats is a snapshot of a Store's counters. MemHits+DiskHits+Dedups are
// requests served without computing; Fills counts computations actually run
// by Do — a warm cache serving a repeated sweep shows a Fills delta of zero.
type Stats struct {
	MemHits   uint64 // Get served from the in-memory LRU
	DiskHits  uint64 // Get served from the disk tier (then promoted)
	Misses    uint64 // Get found nothing in either tier
	Dedups    uint64 // Do calls that joined an in-flight computation
	Fills     uint64 // Do calls that ran the compute function
	Evictions uint64 // entries dropped by the LRU bound
	DiskErrs  uint64 // disk-tier read/write failures (cache stays best-effort)
	Entries   int    // current in-memory entry count
}

// Hits is the total number of requests served from cache.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// DefaultMaxEntries bounds the in-memory tier when New is given 0.
const DefaultMaxEntries = 1 << 16

// Store is a two-tier content-addressed cache. The zero value is not
// usable; construct with New. A nil *Store is a valid no-op cache: Get
// always misses, Put discards, and Do always computes, so callers can
// thread an optional cache without nil checks at every site.
type Store[V any] struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	items map[Key]*list.Element
	max   int
	dir   string // "" = memory-only

	flightMu sync.Mutex
	flight   map[Key]*call[V]

	memHits, diskHits, misses atomic.Uint64
	dedups, fills             atomic.Uint64
	evictions, diskErrs       atomic.Uint64
}

type lruEntry[V any] struct {
	key Key
	val V
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a store bounded to maxEntries in memory (0 = DefaultMaxEntries)
// with an optional disk tier rooted at dir ("" disables it). The directory
// is created if missing; an unusable directory is an error because a caller
// asking for persistence should not silently lose it.
func New[V any](maxEntries int, dir string) (*Store[V], error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating disk tier: %w", err)
		}
	}
	return &Store[V]{
		lru:    list.New(),
		items:  make(map[Key]*list.Element),
		max:    maxEntries,
		dir:    dir,
		flight: make(map[Key]*call[V]),
	}, nil
}

// NewMemory builds a memory-only store and never fails.
func NewMemory[V any](maxEntries int) *Store[V] {
	s, err := New[V](maxEntries, "")
	if err != nil {
		panic("cache: memory-only New cannot fail: " + err.Error())
	}
	return s
}

// Get looks k up in the memory tier, then the disk tier (promoting a disk
// hit into memory). The counters record which tier answered.
func (s *Store[V]) Get(k Key) (V, bool) {
	if s == nil {
		var zero V
		return zero, false
	}
	return s.get(k, true)
}

// get is Get with miss accounting optional, so internal re-checks don't
// double-count a single cold lookup.
func (s *Store[V]) get(k Key, countMiss bool) (V, bool) {
	if v, ok := s.getMem(k); ok {
		return v, true
	}
	if s.dir != "" {
		if v, ok := s.diskGet(k); ok {
			s.diskHits.Add(1)
			s.putMem(k, v)
			return v, true
		}
	}
	if countMiss {
		s.misses.Add(1)
	}
	var zero V
	return zero, false
}

// getMem consults only the in-memory LRU (counted as a memory hit).
func (s *Store[V]) getMem(k Key) (V, bool) {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		s.memHits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	var zero V
	return zero, false
}

// Put stores k→v in both tiers. Disk failures are counted, not returned:
// the cache is an accelerator, never a correctness dependency.
func (s *Store[V]) Put(k Key, v V) {
	if s == nil {
		return
	}
	s.putMem(k, v)
	if s.dir != "" {
		s.diskPut(k, v)
	}
}

func (s *Store[V]) putMem(k Key, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*lruEntry[V]).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.items[k] = s.lru.PushFront(&lruEntry[V]{key: k, val: v})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry[V]).key)
		s.evictions.Add(1)
	}
}

// Do returns the cached value for k, or computes it with fn exactly once —
// concurrent Do calls on the same key (identical sweep cells fanned out by
// internal/par) block on the first caller's computation and share its
// result. Errors are returned to every waiter and never cached.
func (s *Store[V]) Do(k Key, fn func() (V, error)) (V, error) {
	if s == nil {
		return fn()
	}
	if v, ok := s.Get(k); ok {
		return v, nil
	}
	s.flightMu.Lock()
	if c, ok := s.flight[k]; ok {
		s.flightMu.Unlock()
		<-c.done
		if c.err == nil {
			s.dedups.Add(1)
		}
		return c.val, c.err
	}
	// Re-check the memory tier while holding flightMu: a filler publishes
	// to memory (Put → putMem) *before* removing its flight entry, so a
	// caller that missed the fast-path Get above but arrives here after
	// the entry is gone is guaranteed to find the value now — without
	// this, that window would recompute and break the compute-exactly-once
	// guarantee. Memory alone suffices, which keeps disk I/O out of the
	// flightMu critical section.
	if v, ok := s.getMem(k); ok {
		s.flightMu.Unlock()
		return v, nil
	}
	c := &call[V]{done: make(chan struct{})}
	s.flight[k] = c
	s.flightMu.Unlock()
	s.fill(k, c, fn)
	return c.val, c.err
}

// fill runs the computation for an in-flight call. Cleanup is deferred so a
// panicking fn still releases waiters (with an error, never a zero value)
// and unregisters the flight entry before the panic propagates; otherwise
// every later Do on the key would block on done forever.
func (s *Store[V]) fill(k Key, c *call[V], fn func() (V, error)) {
	completed := false
	defer func() {
		if !completed {
			c.err = fmt.Errorf("cache: computation for key %s panicked", k)
		}
		close(c.done)
		s.flightMu.Lock()
		delete(s.flight, k)
		s.flightMu.Unlock()
	}()
	c.val, c.err = fn()
	completed = true
	s.fills.Add(1)
	if c.err == nil {
		s.Put(k, c.val)
	}
}

// Stats snapshots the counters. Safe to call concurrently with cache use.
func (s *Store[V]) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	n := s.lru.Len()
	s.mu.Unlock()
	return Stats{
		MemHits:   s.memHits.Load(),
		DiskHits:  s.diskHits.Load(),
		Misses:    s.misses.Load(),
		Dedups:    s.dedups.Load(),
		Fills:     s.fills.Load(),
		Evictions: s.evictions.Load(),
		DiskErrs:  s.diskErrs.Load(),
		Entries:   n,
	}
}

// ---- disk tier ----

func (s *Store[V]) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".json")
}

func (s *Store[V]) diskGet(k Key) (V, bool) {
	var v V
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		if !os.IsNotExist(err) {
			s.diskErrs.Add(1)
		}
		return v, false
	}
	if err := json.Unmarshal(data, &v); err != nil {
		// A corrupt or foreign file under our key is unusable; drop it so
		// the slot heals on the next Put.
		s.diskErrs.Add(1)
		os.Remove(s.path(k))
		var zero V
		return zero, false
	}
	return v, true
}

func (s *Store[V]) diskPut(k Key, v V) {
	data, err := json.Marshal(v)
	if err != nil {
		s.diskErrs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		s.diskErrs.Add(1)
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.diskErrs.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.diskErrs.Add(1)
		return
	}
	// Atomic publish: readers only ever see absent or complete files.
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		s.diskErrs.Add(1)
	}
}
