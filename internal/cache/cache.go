// Package cache provides the content-addressed result cache behind the
// sweep engine: repeated figure regenerations and overlapping sweeps
// (Figs. 4/11/12 share workloads and machines) re-issue byte-identical
// Evaluate calls, and because every cell's routing seed is a pure function
// of its coordinates (the FNV task-seed scheme in internal/experiments),
// the result of such a call is fully determined by its inputs. A cache
// entry therefore never needs invalidation — the key is a cryptographic
// hash of everything the value depends on, so a stale hit is impossible by
// construction; a changed input is a different key.
//
// Store layers two tiers: a bounded in-memory LRU (always on) and an
// optional on-disk JSON tier (one file per key, written atomically), so a
// warm directory can serve repeated qcbench runs across processes. Do adds
// singleflight-style deduplication: concurrent callers of the same key
// under the parallel sweep engine compute the value once and share it.
//
// The disk tier is fault-tolerant rather than best-effort-and-silent:
// transient read/write failures get a bounded retry with deterministic
// jittered backoff (seeded, so chaos tests replay exactly), and a run of
// consecutive failures trips an error budget that quarantines the tier —
// the store degrades to memory-only instead of hammering a sick disk, and
// a periodic health probe re-enables the tier once it answers again. All
// file I/O goes through the FS interface, so tests inject failing or
// corrupting filesystems without touching the real disk.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key is a content hash identifying one cached computation. Equal keys mean
// equal inputs (up to SHA-256 collisions), so values never expire.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the disk-tier file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates the inputs of a computation into a Key. Every write is
// tagged and length-delimited, so field boundaries are unambiguous:
// WriteString("ab")+WriteString("c") and WriteString("a")+WriteString("bc")
// produce different keys.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key derivation under a domain label (e.g.
// "core.Evaluate/v1"); distinct domains can never collide.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.WriteString(domain)
	return h
}

func (h *Hasher) tag(t byte, payload uint64) {
	var buf [9]byte
	buf[0] = t
	binary.BigEndian.PutUint64(buf[1:], payload)
	h.h.Write(buf[:])
}

// WriteString hashes a length-prefixed string field.
func (h *Hasher) WriteString(s string) {
	h.tag('s', uint64(len(s)))
	h.h.Write([]byte(s))
}

// WriteInt hashes a signed integer field.
func (h *Hasher) WriteInt(v int64) { h.tag('i', uint64(v)) }

// WriteUint hashes an unsigned integer field.
func (h *Hasher) WriteUint(v uint64) { h.tag('u', v) }

// WriteFloat hashes a float field by its exact bit pattern.
func (h *Hasher) WriteFloat(f float64) { h.tag('f', math.Float64bits(f)) }

// Sum finalizes the key. The Hasher may keep accumulating afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// FS is the file-operation surface the disk tier runs on. The production
// implementation is OSFS; fault-injection tests substitute filesystems that
// fail or corrupt operations on a seeded schedule. WriteFile must publish
// atomically (readers see the old file, no file, or the complete new file —
// never a partial write); dir is the directory to stage temp files in so
// the final rename stays on one filesystem.
type FS interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(dir, path string, data []byte) error
	Remove(path string) error
}

// OSFS is the real-disk FS. WriteFile stages into a "tmp-*" file in dir and
// renames over path, which is atomic on POSIX filesystems.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS with the temp-file-then-rename idiom.
func (OSFS) WriteFile(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Atomic publish: readers only ever see absent or complete files.
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Stats is a snapshot of a Store's counters. MemHits+DiskHits+Dedups are
// requests served without computing; Fills counts computations actually run
// by Do — a warm cache serving a repeated sweep shows a Fills delta of zero.
type Stats struct {
	MemHits     uint64 // Get served from the in-memory LRU
	DiskHits    uint64 // Get served from the disk tier (then promoted)
	Misses      uint64 // Get found nothing in either tier
	Dedups      uint64 // Do calls that joined an in-flight computation
	Fills       uint64 // Do calls that ran the compute function
	Evictions   uint64 // entries dropped by the LRU bound
	DiskErrs    uint64 // disk-tier op failures after retries (cache stays best-effort)
	Retries     uint64 // extra disk-op attempts spent recovering from transient failures
	Quarantines uint64 // times the error budget tripped and the disk tier was benched
	// DegradedServes counts requests answered (memory hit or fresh fill)
	// while the disk tier was quarantined — the work the store kept serving
	// that a fail-hard design would have refused. Always zero for a
	// memory-only store, which has no tier to lose.
	DegradedServes uint64
	Degraded       bool // disk tier currently quarantined (store is memory-only)
	Entries        int  // current in-memory entry count
}

// Hits is the total number of requests served from cache.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// DefaultMaxEntries bounds the in-memory tier when New is given 0.
const DefaultMaxEntries = 1 << 16

// Disk-tier fault-tolerance defaults. An op gets DefaultDiskRetries extra
// attempts with jittered backoff starting at DefaultRetryBackoff; after
// DefaultErrorBudget consecutive op failures the tier quarantines, and a
// health probe every DefaultProbeInterval decides when to re-enable it.
const (
	DefaultDiskRetries   = 2
	DefaultRetryBackoff  = 2 * time.Millisecond
	DefaultErrorBudget   = 4
	DefaultProbeInterval = 2 * time.Second
)

// config collects the New options before they are copied into the store.
type config struct {
	fs         FS
	retries    int
	backoff    time.Duration
	errBudget  int
	probeEvery time.Duration
	jitterSeed uint64
}

// Option customizes a Store at construction time.
type Option func(*config)

// WithFS substitutes the disk tier's filesystem — the fault-injection hook.
func WithFS(fs FS) Option { return func(c *config) { c.fs = fs } }

// WithRetry sets the extra attempts per disk op (0 = fail on first error)
// and the base backoff between them (0 = retry immediately). Backoff grows
// exponentially per attempt with deterministic jitter.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *config) { c.retries = retries; c.backoff = backoff }
}

// WithErrorBudget sets how many consecutive disk-op failures quarantine the
// disk tier; 0 or negative disables quarantine entirely.
func WithErrorBudget(n int) Option { return func(c *config) { c.errBudget = n } }

// WithProbeInterval sets how often a quarantined tier is health-probed
// (0 = probe on every disk access, which tests use to re-enable promptly).
func WithProbeInterval(d time.Duration) Option { return func(c *config) { c.probeEvery = d } }

// WithJitterSeed seeds the deterministic backoff jitter so retry timing is
// reproducible run to run.
func WithJitterSeed(seed uint64) Option { return func(c *config) { c.jitterSeed = seed } }

// Store is a two-tier content-addressed cache. The zero value is not
// usable; construct with New. A nil *Store is a valid no-op cache: Get
// always misses, Put discards, and Do always computes, so callers can
// thread an optional cache without nil checks at every site.
type Store[V any] struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	items map[Key]*list.Element
	max   int
	dir   string // "" = memory-only

	flightMu sync.Mutex
	flight   map[Key]*call[V]

	// Disk-tier fault tolerance (see the FS/Option docs). degraded=true
	// means the tier is quarantined and probeAt holds the UnixNano time of
	// the next allowed health probe; consec counts the current run of op
	// failures toward errBudget.
	fs         FS
	retries    int
	backoff    time.Duration
	errBudget  int
	probeEvery time.Duration
	jitterSeed uint64
	jitterN    atomic.Uint64
	consec     atomic.Int64
	degraded   atomic.Bool
	probeAt    atomic.Int64

	memHits, diskHits, misses atomic.Uint64
	dedups, fills             atomic.Uint64
	evictions, diskErrs       atomic.Uint64
	retriesN, quarantines     atomic.Uint64
	degradedServes            atomic.Uint64
}

type lruEntry[V any] struct {
	key Key
	val V
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a store bounded to maxEntries in memory (0 = DefaultMaxEntries)
// with an optional disk tier rooted at dir ("" disables it). The directory
// is created if missing; an unusable directory is an error because a caller
// asking for persistence should not silently lose it. Stale "tmp-*" staging
// files left by a writer killed mid-publish are swept on construction.
func New[V any](maxEntries int, dir string, opts ...Option) (*Store[V], error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	cfg := config{
		fs:         OSFS{},
		retries:    DefaultDiskRetries,
		backoff:    DefaultRetryBackoff,
		errBudget:  DefaultErrorBudget,
		probeEvery: DefaultProbeInterval,
		jitterSeed: 1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating disk tier: %w", err)
		}
		sweepStaleTmp(dir)
	}
	s := &Store[V]{
		lru:        list.New(),
		items:      make(map[Key]*list.Element),
		max:        maxEntries,
		dir:        dir,
		flight:     make(map[Key]*call[V]),
		fs:         cfg.fs,
		retries:    cfg.retries,
		backoff:    cfg.backoff,
		errBudget:  cfg.errBudget,
		probeEvery: cfg.probeEvery,
		jitterSeed: cfg.jitterSeed,
	}
	return s, nil
}

// tmpSweepAge is how old a "tmp-*" staging file must be before New treats
// it as debris from a crashed writer. Live writers publish within
// milliseconds, so an hour-old temp file can only be an orphan; the age
// gate keeps New from deleting a concurrent store's in-flight staging file.
const tmpSweepAge = time.Hour

// sweepStaleTmp removes orphaned staging files from an interrupted diskPut
// (process killed between CreateTemp and Rename). Best-effort by design:
// sweep failures never block construction.
func sweepStaleTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tmpSweepAge)
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// NewMemory builds a memory-only store and never fails.
func NewMemory[V any](maxEntries int) *Store[V] {
	s, err := New[V](maxEntries, "")
	if err != nil {
		panic("cache: memory-only New cannot fail: " + err.Error())
	}
	return s
}

// Get looks k up in the memory tier, then the disk tier (promoting a disk
// hit into memory). The counters record which tier answered.
func (s *Store[V]) Get(k Key) (V, bool) {
	if s == nil {
		var zero V
		return zero, false
	}
	return s.get(k, true)
}

// get is Get with miss accounting optional, so internal re-checks don't
// double-count a single cold lookup.
func (s *Store[V]) get(k Key, countMiss bool) (V, bool) {
	if v, ok := s.getMem(k); ok {
		return v, true
	}
	if s.dir != "" {
		if v, ok := s.diskGet(k); ok {
			s.diskHits.Add(1)
			s.putMem(k, v)
			return v, true
		}
	}
	if countMiss {
		s.misses.Add(1)
	}
	var zero V
	return zero, false
}

// getMem consults only the in-memory LRU (counted as a memory hit).
func (s *Store[V]) getMem(k Key) (V, bool) {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		s.memHits.Add(1)
		s.noteDegradedServe()
		return v, true
	}
	s.mu.Unlock()
	var zero V
	return zero, false
}

// Put stores k→v in both tiers. Disk failures are counted, not returned:
// the cache is an accelerator, never a correctness dependency.
func (s *Store[V]) Put(k Key, v V) {
	if s == nil {
		return
	}
	s.putMem(k, v)
	if s.dir != "" {
		s.diskPut(k, v)
	}
}

func (s *Store[V]) putMem(k Key, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*lruEntry[V]).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.items[k] = s.lru.PushFront(&lruEntry[V]{key: k, val: v})
	for s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry[V]).key)
		s.evictions.Add(1)
	}
}

// Do returns the cached value for k, or computes it with fn exactly once —
// concurrent Do calls on the same key (identical sweep cells fanned out by
// internal/par) block on the first caller's computation and share its
// result. Errors are returned to every waiter and never cached.
func (s *Store[V]) Do(k Key, fn func() (V, error)) (V, error) {
	if s == nil {
		return fn()
	}
	if v, ok := s.Get(k); ok {
		return v, nil
	}
	s.flightMu.Lock()
	if c, ok := s.flight[k]; ok {
		s.flightMu.Unlock()
		<-c.done
		if c.err == nil {
			s.dedups.Add(1)
		}
		return c.val, c.err
	}
	// Re-check the memory tier while holding flightMu: a filler publishes
	// to memory (Put → putMem) *before* removing its flight entry, so a
	// caller that missed the fast-path Get above but arrives here after
	// the entry is gone is guaranteed to find the value now — without
	// this, that window would recompute and break the compute-exactly-once
	// guarantee. Memory alone suffices, which keeps disk I/O out of the
	// flightMu critical section.
	if v, ok := s.getMem(k); ok {
		s.flightMu.Unlock()
		return v, nil
	}
	c := &call[V]{done: make(chan struct{})}
	s.flight[k] = c
	s.flightMu.Unlock()
	s.fill(k, c, fn)
	return c.val, c.err
}

// fill runs the computation for an in-flight call. A panicking fn still
// releases waiters — with an error carrying the recovered value so they can
// diagnose what killed the fill, never a zero value posing as success — and
// unregisters the flight entry before the panic propagates unchanged to the
// filler's caller; otherwise every later Do on the key would block on done
// forever.
func (s *Store[V]) fill(k Key, c *call[V], fn func() (V, error)) {
	finish := func() {
		close(c.done)
		s.flightMu.Lock()
		delete(s.flight, k)
		s.flightMu.Unlock()
	}
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("cache: computation for key %s panicked: %v", k, r)
			finish()
			panic(r)
		}
	}()
	c.val, c.err = fn()
	s.fills.Add(1)
	if c.err == nil {
		s.noteDegradedServe()
		s.Put(k, c.val)
	}
	finish()
}

// noteDegradedServe counts one successfully answered request while the
// disk tier is quarantined — the degraded-mode traffic /metrics-style
// consumers watch to size the blast radius of a sick disk.
func (s *Store[V]) noteDegradedServe() {
	if s.dir != "" && s.degraded.Load() {
		s.degradedServes.Add(1)
	}
}

// Stats snapshots the counters. Safe to call concurrently with cache use.
// It is an alias for Snapshot, kept for existing call sites.
func (s *Store[V]) Stats() Stats { return s.Snapshot() }

// Snapshot reads every counter atomically into one Stats value, safe to
// call concurrently with fills, hits, and quarantine transitions — the
// read a metrics endpoint should take instead of loading fields piecemeal
// around racing updates. Each counter is monotone (only Degraded and
// Entries move both ways), so deltas between two snapshots are
// meaningful even under load.
func (s *Store[V]) Snapshot() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	n := s.lru.Len()
	s.mu.Unlock()
	return Stats{
		MemHits:        s.memHits.Load(),
		DiskHits:       s.diskHits.Load(),
		Misses:         s.misses.Load(),
		Dedups:         s.dedups.Load(),
		Fills:          s.fills.Load(),
		Evictions:      s.evictions.Load(),
		DiskErrs:       s.diskErrs.Load(),
		Retries:        s.retriesN.Load(),
		Quarantines:    s.quarantines.Load(),
		DegradedServes: s.degradedServes.Load(),
		Degraded:       s.degraded.Load(),
		Entries:        n,
	}
}

// ---- disk tier ----

func (s *Store[V]) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".json")
}

// probeFile is the scratch name the health probe writes under the cache
// dir; a hex key can never collide with it.
const probeFile = "health-probe"

// diskActive reports whether the disk tier may be touched right now. A
// healthy tier always answers true. A quarantined tier answers false until
// its probe window opens; the goroutine that wins the window (one CAS, so
// probes never stampede) runs a write/read/remove round-trip through the
// FS and lifts the quarantine if it succeeds.
func (s *Store[V]) diskActive() bool {
	if !s.degraded.Load() {
		return true
	}
	due := s.probeAt.Load()
	now := time.Now().UnixNano()
	if now < due {
		return false
	}
	if !s.probeAt.CompareAndSwap(due, now+int64(s.probeEvery)) {
		return false
	}
	if !s.probe() {
		return false
	}
	s.consec.Store(0)
	s.degraded.Store(false)
	return true
}

// probe round-trips a scratch file through the FS. Probe failures are not
// charged to the error budget — the tier is already benched.
func (s *Store[V]) probe() bool {
	p := filepath.Join(s.dir, probeFile)
	if err := s.fs.WriteFile(s.dir, p, []byte("ok")); err != nil {
		return false
	}
	if _, err := s.fs.ReadFile(p); err != nil {
		return false
	}
	s.fs.Remove(p)
	return true
}

// diskFail charges one op failure (post-retries) to the stats and the
// consecutive-failure budget, quarantining the tier when the budget trips.
// The CAS counts each quarantine transition exactly once under concurrent
// failures.
func (s *Store[V]) diskFail() {
	s.diskErrs.Add(1)
	if s.errBudget <= 0 {
		return
	}
	if s.consec.Add(1) >= int64(s.errBudget) {
		if s.degraded.CompareAndSwap(false, true) {
			s.quarantines.Add(1)
			s.probeAt.Store(time.Now().UnixNano() + int64(s.probeEvery))
		}
	}
}

// diskOK resets the consecutive-failure run: the budget only trips on an
// unbroken streak, so a disk that limps along keeps serving.
func (s *Store[V]) diskOK() { s.consec.Store(0) }

// jitterFrac returns the next deterministic jitter fraction in [0, 1):
// splitmix64 over a seeded counter, so backoff timing replays exactly for
// a fixed seed and op order.
func (s *Store[V]) jitterFrac() float64 {
	x := s.jitterSeed + s.jitterN.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// backoffSleep waits before retry attempt+1: exponential base with half
// jitter (uniform in [d/2, d) for d = backoff<<attempt), which spreads
// concurrent retries without ever collapsing the wait to zero.
func (s *Store[V]) backoffSleep(attempt int) {
	if s.backoff <= 0 {
		return
	}
	d := s.backoff << uint(attempt)
	time.Sleep(d/2 + time.Duration(s.jitterFrac()*float64(d/2)))
}

func (s *Store[V]) diskGet(k Key) (V, bool) {
	var zero V
	if !s.diskActive() {
		return zero, false
	}
	p := s.path(k)
	var data []byte
	for attempt := 0; ; attempt++ {
		d, err := s.fs.ReadFile(p)
		if err == nil {
			data = d
			break
		}
		if os.IsNotExist(err) {
			// A clean miss is a healthy answer, not a failure.
			s.diskOK()
			return zero, false
		}
		if attempt >= s.retries {
			s.diskFail()
			return zero, false
		}
		s.retriesN.Add(1)
		s.backoffSleep(attempt)
	}
	var v V
	if err := json.Unmarshal(data, &v); err != nil {
		// A corrupt or foreign file under our key is unusable and rereading
		// won't fix it; drop it so the slot heals on the next Put. Under
		// concurrent readers the Remove succeeds exactly once — the losers
		// get ENOENT, which is fine. Corruption still charges the budget:
		// a disk mangling files is as sick as one refusing reads.
		s.diskFail()
		s.fs.Remove(p)
		return zero, false
	}
	s.diskOK()
	return v, true
}

func (s *Store[V]) diskPut(k Key, v V) {
	if !s.diskActive() {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		// An unmarshalable value is a caller bug, not disk sickness: count
		// it, but don't charge the health budget or retry.
		s.diskErrs.Add(1)
		return
	}
	p := s.path(k)
	for attempt := 0; ; attempt++ {
		if err := s.fs.WriteFile(s.dir, p, data); err == nil {
			s.diskOK()
			return
		}
		if attempt >= s.retries {
			s.diskFail()
			return
		}
		s.retriesN.Add(1)
		s.backoffSleep(attempt)
	}
}
