package cache

import (
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// The injector must keep satisfying the cache's FS surface — the
// structural match is the whole reason faultinject needs no cache import.
var _ FS = (*faultinject.FaultFS)(nil)

// TestChaosConcurrentCorruptionSelfHeals hammers one on-disk key from many
// reader goroutines while a fault-injected writer keeps corrupting it:
// every read must come back as the valid value or a clean miss — never
// garbage — and a controlled final corruption is removed exactly once even
// with all readers racing to heal it. Run under -race by the chaos arm of
// scripts/check.sh.
func TestChaosConcurrentCorruptionSelfHeals(t *testing.T) {
	dir := t.TempDir()
	k := key("contested")
	want := payload{A: 42, B: 0.5, C: "good"}

	// Writer: roughly half its publishes store poison bytes instead of the
	// value. ErrorBudget 0 keeps the disk tier in play no matter how many
	// corruptions readers hit.
	writerFS := faultinject.NewFaultFS(OSFS{}, 7)
	writerFS.Corrupt = 0.5
	writer, err := New[payload](0, dir,
		WithFS(writerFS), WithRetry(0, 0), WithErrorBudget(0))
	if err != nil {
		t.Fatal(err)
	}

	// Readers share one store but call diskGet directly so every read hits
	// the disk tier (the mem tier would hide the contest after one hit).
	readerFS := faultinject.NewFaultFS(OSFS{}, 8) // transparent, counts removes
	reader, err := New[payload](0, dir,
		WithFS(readerFS), WithRetry(0, 0), WithErrorBudget(0))
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers       = 8
		readsEach     = 200
		writerPublish = 300
	)
	var wg sync.WaitGroup
	wg.Add(1 + readers)
	go func() {
		defer wg.Done()
		for i := 0; i < writerPublish; i++ {
			writer.Put(k, want)
		}
	}()
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < readsEach; i++ {
				if v, ok := reader.diskGet(k); ok && v != want {
					t.Errorf("reader got corrupt value %+v served as a hit", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if writerFS.Corruptions.Load() == 0 {
		t.Fatal("chaos writer never corrupted — the test exercised nothing")
	}

	// Controlled finale: plant exactly one corruption, then race all
	// readers at it. Whoever decodes the poison tries to remove it; the
	// file must be deleted exactly once (losers get ENOENT, counted by
	// the FaultFS as unsuccessful), and nobody may see a valid hit.
	writerFS.Corrupt = 1
	writer.Put(k, want)
	removedBefore := readerFS.RemovedOK.Load()
	var fin sync.WaitGroup
	fin.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer fin.Done()
			if v, ok := reader.diskGet(k); ok {
				t.Errorf("read of a corrupt-only slot hit with %+v", v)
			}
		}()
	}
	fin.Wait()
	if removed := readerFS.RemovedOK.Load() - removedBefore; removed != 1 {
		t.Fatalf("corrupt file removed %d times, want exactly 1", removed)
	}
	// The slot healed: a clean publish round-trips again.
	writerFS.Corrupt = 0
	writer.Put(k, want)
	if v, ok := reader.diskGet(k); !ok || v != want {
		t.Fatalf("healed slot = (%+v, %v), want (%+v, true)", v, ok, want)
	}
}
