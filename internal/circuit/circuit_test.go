package circuit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gates"
)

// TestFingerprintContentAddressing: equal circuits hash equal, and every
// kind of content change — gate name, qubit, parameter, width, op order,
// explicit unitary — changes the hash.
func TestFingerprintContentAddressing(t *testing.T) {
	build := func() *Circuit {
		c := New(3)
		c.H(0)
		c.CX(0, 1)
		c.RZ(2, 0.25)
		return c
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical circuits hash differently")
	}
	if a.Fingerprint() != a.Copy().Fingerprint() {
		t.Fatal("Copy changes the fingerprint")
	}
	mutations := map[string]func(*Circuit){
		"gate name":   func(c *Circuit) { c.Ops[0].Name = "x" },
		"qubit":       func(c *Circuit) { c.Ops[1].Qubits[1] = 2 },
		"param":       func(c *Circuit) { c.Ops[2].Params[0] = 0.5 },
		"width":       func(c *Circuit) { c.N = 4 },
		"extra op":    func(c *Circuit) { c.Z(0) },
		"op order":    func(c *Circuit) { c.Ops[0], c.Ops[1] = c.Ops[1], c.Ops[0] },
		"unitary set": func(c *Circuit) { c.Ops[1].U = gates.CX() },
	}
	for name, mutate := range mutations {
		m := build()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s change not reflected in fingerprint", name)
		}
	}
	// Distinct unitaries with identical op metadata must differ.
	u1, u2 := New(2), New(2)
	u1.SU4(0, 1, gates.CX())
	u2.SU4(0, 1, gates.CZ())
	if u1.Fingerprint() == u2.Fingerprint() {
		t.Fatal("different unitaries share a fingerprint")
	}
}

func TestBuildersAndCounts(t *testing.T) {
	c := New(4)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.Swap(2, 3)
	c.RZ(3, 0.5)
	c.CP(0, 3, math.Pi/4)
	if got := c.CountTwoQubit(); got != 4 {
		t.Errorf("CountTwoQubit = %d, want 4", got)
	}
	if got := c.CountByName("cx"); got != 2 {
		t.Errorf("cx count = %d, want 2", got)
	}
	if got := c.CountByName("swap"); got != 1 {
		t.Errorf("swap count = %d, want 1", got)
	}
}

func TestAppendValidation(t *testing.T) {
	c := New(2)
	for name, f := range map[string]func(){
		"out of range": func() { c.CX(0, 5) },
		"repeated":     func() { c.CX(1, 1) },
		"negative":     func() { c.H(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDepth2Q(t *testing.T) {
	// Two parallel CX (disjoint qubits) then one CX depending on both.
	c := New(4)
	c.CX(0, 1)
	c.CX(2, 3)
	c.CX(1, 2)
	if d := c.Depth2Q(); d != 2 {
		t.Errorf("Depth2Q = %d, want 2", d)
	}
	// 1Q gates add no depth.
	c2 := New(2)
	c2.H(0)
	c2.H(1)
	c2.CX(0, 1)
	c2.H(0)
	if d := c2.Depth2Q(); d != 1 {
		t.Errorf("Depth2Q with 1Q gates = %d, want 1", d)
	}
}

func TestCriticalSwaps(t *testing.T) {
	c := New(4)
	c.Swap(0, 1) // chain on qubit 1
	c.Swap(1, 2)
	c.Swap(2, 3)
	c.Swap(0, 1) // depends only on the first two swaps via qubit 1... q0,q1
	if got := c.CriticalSwaps(); got != 3 {
		t.Errorf("CriticalSwaps = %d, want 3", got)
	}
	// Parallel swaps count once.
	p := New(4)
	p.Swap(0, 1)
	p.Swap(2, 3)
	if got := p.CriticalSwaps(); got != 1 {
		t.Errorf("parallel CriticalSwaps = %d, want 1", got)
	}
}

func TestWeightedCriticalPath(t *testing.T) {
	// CX (weight 1.0) followed by siswap (weight 0.5) on shared qubit.
	c := New(3)
	c.CX(0, 1)
	c.SqrtISwap(1, 2)
	w := func(op Op) float64 {
		switch op.Name {
		case "cx":
			return 1.0
		case "siswap":
			return 0.5
		}
		return 0
	}
	if got := c.CriticalPath(w); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("weighted critical path = %g, want 1.5", got)
	}
}

func TestLayers(t *testing.T) {
	c := New(4)
	c.CX(0, 1) // layer 0
	c.CX(2, 3) // layer 0
	c.CX(1, 2) // layer 1
	c.H(0)     // layer 1 (qubit 0 free after layer 0)
	layers := c.Layers()
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if len(layers[0]) != 2 || len(layers[1]) != 2 {
		t.Fatalf("layer sizes = %d,%d want 2,2", len(layers[0]), len(layers[1]))
	}
}

func TestRemap(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	m := c.Remap([]int{3, 1}, 5)
	if m.N != 5 {
		t.Fatalf("remapped N = %d", m.N)
	}
	if got := m.Ops[0].Qubits[0]; got != 3 {
		t.Errorf("remapped control = %d, want 3", got)
	}
	if got := m.Ops[0].Qubits[1]; got != 1 {
		t.Errorf("remapped target = %d, want 1", got)
	}
}

func TestUnitaryResolution(t *testing.T) {
	names2q := []Op{
		{Name: "cx", Qubits: []int{0, 1}},
		{Name: "cz", Qubits: []int{0, 1}},
		{Name: "swap", Qubits: []int{0, 1}},
		{Name: "iswap", Qubits: []int{0, 1}},
		{Name: "siswap", Qubits: []int{0, 1}},
		{Name: "syc", Qubits: []int{0, 1}},
		{Name: "cp", Qubits: []int{0, 1}, Params: []float64{0.3}},
		{Name: "rzz", Qubits: []int{0, 1}, Params: []float64{0.3}},
		{Name: "can", Qubits: []int{0, 1}, Params: []float64{0.1, 0.2, 0.05}},
	}
	for _, op := range names2q {
		u, err := Unitary(op)
		if err != nil {
			t.Fatalf("%s: %v", op.Name, err)
		}
		if u.Rows != 4 || !u.IsUnitary(1e-10) {
			t.Errorf("%s: bad unitary", op.Name)
		}
	}
	if _, err := Unitary(Op{Name: "nope", Qubits: []int{0}}); err == nil {
		t.Error("unknown gate resolved")
	}
	// Explicit unitary wins.
	su4 := gates.SWAP()
	u, err := Unitary(Op{Name: "su4", Qubits: []int{0, 1}, U: su4})
	if err != nil || u != su4 {
		t.Error("explicit unitary not returned")
	}
}

func TestCopyIndependence(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	d := c.Copy()
	d.Ops[0].Qubits[0] = 1
	d.Ops[0].Qubits[1] = 0
	if c.Ops[0].Qubits[0] != 0 {
		t.Error("Copy shares qubit slices")
	}
}

func TestStringRendering(t *testing.T) {
	c := New(2)
	c.RZ(0, 0.5)
	c.CX(0, 1)
	s := c.String()
	if !strings.Contains(s, "rz(0.500) q0") || !strings.Contains(s, "cx q0,q1") {
		t.Errorf("rendering missing pieces:\n%s", s)
	}
}
