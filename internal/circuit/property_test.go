package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCircuit(rng *rand.Rand) *Circuit {
	n := 2 + rng.Intn(8)
	c := New(n)
	ops := rng.Intn(60)
	for i := 0; i < ops; i++ {
		if rng.Intn(3) == 0 || n < 2 {
			c.H(rng.Intn(n))
		} else {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}

// TestPropertyLayersAreQubitDisjoint: ops sharing a layer never share a
// qubit, and layers preserve op order per qubit.
func TestPropertyLayersAreQubitDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		layers := c.Layers()
		seenTotal := 0
		lastLayerOf := make(map[int]int) // qubit -> last layer index
		for li, layer := range layers {
			used := map[int]bool{}
			for _, idx := range layer {
				seenTotal++
				for _, q := range c.Ops[idx].Qubits {
					if used[q] {
						return false
					}
					used[q] = true
					if prev, ok := lastLayerOf[q]; ok && prev >= li {
						return false
					}
					lastLayerOf[q] = li
				}
			}
		}
		return seenTotal == len(c.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDepthBounds: 2Q depth ≤ 2Q count and layer count ≥ depth.
func TestPropertyDepthBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		d := c.Depth2Q()
		if d > c.CountTwoQubit() {
			return false
		}
		return len(c.Layers()) >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCriticalPathAdditive: concatenating a circuit with itself
// doubles the critical path (every chain extends through shared qubits
// when all qubits are touched).
func TestPropertyCriticalPathAdditive(t *testing.T) {
	c := New(3)
	c.CX(0, 1)
	c.CX(1, 2)
	base := c.Depth2Q()
	d := c.Copy()
	d.AppendCircuit(c)
	if got := d.Depth2Q(); got != 2*base {
		t.Fatalf("doubled circuit depth %d, want %d", got, 2*base)
	}
}

// TestPropertyRemapPreservesStructure: remapping preserves counts, depth,
// and layer structure.
func TestPropertyRemapPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng)
		m := c.N + rng.Intn(4)
		perm := rng.Perm(m)[:c.N]
		r := c.Remap(perm, m)
		return r.CountTwoQubit() == c.CountTwoQubit() &&
			r.Depth2Q() == c.Depth2Q() &&
			len(r.Layers()) == len(c.Layers())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
