// Package circuit provides the quantum-circuit intermediate representation
// used by the workload generators, transpiler, and simulator: a flat list of
// gate operations over integer qubits, with dependency-aware layering,
// two-qubit gate counting, and the critical-path duration metrics the paper
// reports (total gates for control-error-dominated systems, weighted
// critical path for decoherence-dominated systems; paper §3.1).
package circuit

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/gates"
	"repro/internal/linalg"
)

// Op is a single gate application. U optionally carries an explicit unitary
// (used for Haar-random SU(4) blocks in QuantumVolume and for synthesized
// gates); otherwise the unitary derives from Name and Params.
type Op struct {
	Name   string
	Qubits []int
	Params []float64
	U      *linalg.Matrix
}

// Is2Q reports whether the op acts on two qubits.
func (o Op) Is2Q() bool { return len(o.Qubits) == 2 }

// String renders ops like "cx q1,q3" or "rz(0.500) q2".
func (o Op) String() string {
	var sb strings.Builder
	sb.WriteString(o.Name)
	if len(o.Params) > 0 {
		sb.WriteString("(")
		for i, p := range o.Params {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%.3f", p)
		}
		sb.WriteString(")")
	}
	sb.WriteString(" ")
	for i, q := range o.Qubits {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "q%d", q)
	}
	return sb.String()
}

// Circuit is an ordered gate list over N qubits.
type Circuit struct {
	N   int
	Ops []Op
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n < 1 {
		panic("circuit: need at least one qubit")
	}
	return &Circuit{N: n}
}

// Copy returns a deep copy (ops are copied; unitaries are shared, they are
// immutable by convention).
func (c *Circuit) Copy() *Circuit {
	out := &Circuit{N: c.N, Ops: make([]Op, len(c.Ops))}
	for i, op := range c.Ops {
		q := make([]int, len(op.Qubits))
		copy(q, op.Qubits)
		p := make([]float64, len(op.Params))
		copy(p, op.Params)
		out.Ops[i] = Op{Name: op.Name, Qubits: q, Params: p, U: op.U}
	}
	return out
}

// Fingerprint returns a content hash of the circuit: width plus every op's
// name, qubits, params, and (when present) explicit unitary, in order. Two
// circuits with equal fingerprints are the same computation gate-for-gate
// (up to 64-bit FNV collisions) — the property the content-addressed
// Evaluate cache keys on. Explicit unitaries are hashed by their exact
// float bit patterns, so Haar-random QuantumVolume blocks from different
// seeds never alias.
func (c *Circuit) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU(uint64(c.N))
	for _, op := range c.Ops {
		writeU(uint64(len(op.Name)))
		h.Write([]byte(op.Name))
		writeU(uint64(len(op.Qubits)))
		for _, q := range op.Qubits {
			writeU(uint64(q))
		}
		writeU(uint64(len(op.Params)))
		for _, p := range op.Params {
			writeU(math.Float64bits(p))
		}
		if op.U == nil {
			writeU(0)
			continue
		}
		writeU(uint64(op.U.Rows)<<32 | uint64(op.U.Cols))
		for _, z := range op.U.Data {
			writeU(math.Float64bits(real(z)))
			writeU(math.Float64bits(imag(z)))
		}
	}
	return h.Sum64()
}

// Append adds an op after validating qubit indices.
func (c *Circuit) Append(op Op) {
	if len(op.Qubits) < 1 || len(op.Qubits) > 2 {
		panic(fmt.Sprintf("circuit: op %q has %d qubits", op.Name, len(op.Qubits)))
	}
	for _, q := range op.Qubits {
		if q < 0 || q >= c.N {
			panic(fmt.Sprintf("circuit: op %q qubit %d out of range [0,%d)", op.Name, q, c.N))
		}
	}
	if len(op.Qubits) == 2 && op.Qubits[0] == op.Qubits[1] {
		panic(fmt.Sprintf("circuit: op %q repeats qubit %d", op.Name, op.Qubits[0]))
	}
	c.Ops = append(c.Ops, op)
}

// 1Q builder helpers.

func (c *Circuit) H(q int)   { c.Append(Op{Name: "h", Qubits: []int{q}}) }
func (c *Circuit) X(q int)   { c.Append(Op{Name: "x", Qubits: []int{q}}) }
func (c *Circuit) Y(q int)   { c.Append(Op{Name: "y", Qubits: []int{q}}) }
func (c *Circuit) Z(q int)   { c.Append(Op{Name: "z", Qubits: []int{q}}) }
func (c *Circuit) S(q int)   { c.Append(Op{Name: "s", Qubits: []int{q}}) }
func (c *Circuit) Sdg(q int) { c.Append(Op{Name: "sdg", Qubits: []int{q}}) }
func (c *Circuit) T(q int)   { c.Append(Op{Name: "t", Qubits: []int{q}}) }
func (c *Circuit) Tdg(q int) { c.Append(Op{Name: "tdg", Qubits: []int{q}}) }
func (c *Circuit) RX(q int, th float64) {
	c.Append(Op{Name: "rx", Qubits: []int{q}, Params: []float64{th}})
}
func (c *Circuit) RY(q int, th float64) {
	c.Append(Op{Name: "ry", Qubits: []int{q}, Params: []float64{th}})
}
func (c *Circuit) RZ(q int, th float64) {
	c.Append(Op{Name: "rz", Qubits: []int{q}, Params: []float64{th}})
}
func (c *Circuit) P(q int, lam float64) {
	c.Append(Op{Name: "p", Qubits: []int{q}, Params: []float64{lam}})
}
func (c *Circuit) U3(q int, th, ph, lam float64) {
	c.Append(Op{Name: "u3", Qubits: []int{q}, Params: []float64{th, ph, lam}})
}

// 2Q builder helpers.

func (c *Circuit) CX(ctl, tgt int) { c.Append(Op{Name: "cx", Qubits: []int{ctl, tgt}}) }
func (c *Circuit) CZ(a, b int)     { c.Append(Op{Name: "cz", Qubits: []int{a, b}}) }
func (c *Circuit) Swap(a, b int)   { c.Append(Op{Name: "swap", Qubits: []int{a, b}}) }
func (c *Circuit) ISwap(a, b int)  { c.Append(Op{Name: "iswap", Qubits: []int{a, b}}) }
func (c *Circuit) SqrtISwap(a, b int) {
	c.Append(Op{Name: "siswap", Qubits: []int{a, b}})
}
func (c *Circuit) CP(a, b int, th float64) {
	c.Append(Op{Name: "cp", Qubits: []int{a, b}, Params: []float64{th}})
}
func (c *Circuit) RZZ(a, b int, th float64) {
	c.Append(Op{Name: "rzz", Qubits: []int{a, b}, Params: []float64{th}})
}
func (c *Circuit) RXX(a, b int, th float64) {
	c.Append(Op{Name: "rxx", Qubits: []int{a, b}, Params: []float64{th}})
}

// SU4 appends an explicit two-qubit unitary block (e.g. a Haar-random
// QuantumVolume element).
func (c *Circuit) SU4(a, b int, u *linalg.Matrix) {
	if u.Rows != 4 || u.Cols != 4 {
		panic("circuit: SU4 needs a 4x4 unitary")
	}
	c.Append(Op{Name: "su4", Qubits: []int{a, b}, U: u})
}

// Unitary resolves an op to its matrix (2x2 for 1Q, 4x4 for 2Q).
//
// Parameterless gates resolve to matrices memoized by package gates, and
// an op carrying an explicit U returns it directly — in both cases the
// result is shared, not a copy, and must be treated as immutable (the
// same convention Circuit.Copy relies on).
func Unitary(op Op) (*linalg.Matrix, error) {
	if op.U != nil {
		return op.U, nil
	}
	p := func(i int) float64 { return op.Params[i] }
	switch op.Name {
	case "id":
		return gates.I2(), nil
	case "h":
		return gates.H(), nil
	case "x":
		return gates.X(), nil
	case "y":
		return gates.Y(), nil
	case "z":
		return gates.Z(), nil
	case "s":
		return gates.S(), nil
	case "sdg":
		return gates.Sdg(), nil
	case "t":
		return gates.T(), nil
	case "tdg":
		return gates.Tdg(), nil
	case "sx":
		return gates.SX(), nil
	case "rx":
		return gates.RX(p(0)), nil
	case "ry":
		return gates.RY(p(0)), nil
	case "rz":
		return gates.RZ(p(0)), nil
	case "p":
		return gates.Phase(p(0)), nil
	case "u3":
		return gates.U3(p(0), p(1), p(2)), nil
	case "cx":
		return gates.CX(), nil
	case "cz":
		return gates.CZ(), nil
	case "cp":
		return gates.CPhase(p(0)), nil
	case "swap":
		return gates.SWAP(), nil
	case "iswap":
		return gates.ISwap(), nil
	case "siswap":
		return gates.SqrtISwap(), nil
	case "syc":
		return gates.SYC(), nil
	case "rzz":
		return gates.RZZ(p(0)), nil
	case "rxx":
		return gates.RXX(p(0)), nil
	case "ryy":
		return gates.RYY(p(0)), nil
	case "zx":
		return gates.ZX(p(0)), nil
	case "can":
		return gates.Canonical(p(0), p(1), p(2)), nil
	default:
		return nil, fmt.Errorf("circuit: unknown gate %q", op.Name)
	}
}

// CountTwoQubit returns the number of 2Q ops.
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, op := range c.Ops {
		if op.Is2Q() {
			n++
		}
	}
	return n
}

// CountByName returns the number of ops with the given gate name.
func (c *Circuit) CountByName(name string) int {
	n := 0
	for _, op := range c.Ops {
		if op.Name == name {
			n++
		}
	}
	return n
}

// CriticalPath returns the maximum accumulated weight along any dependency
// chain, where each op contributes weight(op) and ops on a shared qubit are
// ordered. With weight = 1 for 2Q ops this is the paper's "critical path
// gate count"; with weight = pulse duration it is the circuit duration.
func (c *Circuit) CriticalPath(weight func(Op) float64) float64 {
	level := make([]float64, c.N)
	var worst float64
	for _, op := range c.Ops {
		start := 0.0
		for _, q := range op.Qubits {
			if level[q] > start {
				start = level[q]
			}
		}
		end := start + weight(op)
		for _, q := range op.Qubits {
			level[q] = end
		}
		if end > worst {
			worst = end
		}
	}
	return worst
}

// Depth2Q counts 2Q gates along the critical path.
func (c *Circuit) Depth2Q() int {
	return int(c.CriticalPath(func(op Op) float64 {
		if op.Is2Q() {
			return 1
		}
		return 0
	}) + 0.5)
}

// CriticalSwaps counts SWAP gates along the critical path.
func (c *Circuit) CriticalSwaps() int {
	return int(c.CriticalPath(func(op Op) float64 {
		if op.Name == "swap" {
			return 1
		}
		return 0
	}) + 0.5)
}

// Layers groups op indices into ASAP levels: ops in the same layer act on
// disjoint qubits and all their dependencies are in earlier layers.
func (c *Circuit) Layers() [][]int {
	level := make([]int, c.N)
	var layers [][]int
	for i, op := range c.Ops {
		lv := 0
		for _, q := range op.Qubits {
			if level[q] > lv {
				lv = level[q]
			}
		}
		for _, q := range op.Qubits {
			level[q] = lv + 1
		}
		for len(layers) <= lv {
			layers = append(layers, nil)
		}
		layers[lv] = append(layers[lv], i)
	}
	return layers
}

// Remap returns a copy of the circuit with qubit q replaced by perm[q].
// perm must be a permutation of [0, N) onto a machine with m >= N qubits.
func (c *Circuit) Remap(perm []int, m int) *Circuit {
	if len(perm) != c.N {
		panic(fmt.Sprintf("circuit: Remap permutation has %d entries, circuit has %d qubits", len(perm), c.N))
	}
	out := New(m)
	for _, op := range c.Ops {
		q := make([]int, len(op.Qubits))
		for i, v := range op.Qubits {
			q[i] = perm[v]
		}
		out.Append(Op{Name: op.Name, Qubits: q, Params: op.Params, U: op.U})
	}
	return out
}

// CompactQubits returns an equivalent circuit over only the qubits the
// circuit actually touches (relabeled densely in first-use order), plus the
// mapping from old to new indices (-1 for untouched qubits). Useful for
// simulating wide-machine circuits that occupy few physical qubits.
func (c *Circuit) CompactQubits() (*Circuit, []int) {
	mapping := make([]int, c.N)
	for i := range mapping {
		mapping[i] = -1
	}
	next := 0
	for _, op := range c.Ops {
		for _, q := range op.Qubits {
			if mapping[q] < 0 {
				mapping[q] = next
				next++
			}
		}
	}
	if next == 0 {
		// No ops: return a trivial 1-qubit circuit.
		return New(1), mapping
	}
	out := New(next)
	for _, op := range c.Ops {
		q := make([]int, len(op.Qubits))
		for i, v := range op.Qubits {
			q[i] = mapping[v]
		}
		out.Append(Op{Name: op.Name, Qubits: q, Params: op.Params, U: op.U})
	}
	return out, mapping
}

// AppendCircuit inlines another circuit's ops (same qubit space).
func (c *Circuit) AppendCircuit(other *Circuit) {
	if other.N > c.N {
		panic("circuit: AppendCircuit source has more qubits than target")
	}
	for _, op := range other.Ops {
		c.Append(op)
	}
}

// String renders one op per line.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit(%d qubits, %d ops)\n", c.N, len(c.Ops))
	for _, op := range c.Ops {
		sb.WriteString("  " + op.String() + "\n")
	}
	return sb.String()
}
