// Package cli holds the error-classification and exit-status protocol the
// command-line tools share: usage errors (bad flag values or combinations)
// exit with status 2 like flag-parse errors, runtime failures with status
// 1, and -h/-help succeeds. Each tool's run(args, stdout, stderr) returns
// one of these error kinds and main delegates to Exit, so the behavior
// can't drift between tools.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// UsageError marks a bad flag value or combination (exit status 2, like
// flag errors).
type UsageError struct{ msg string }

// Error implements error.
func (e UsageError) Error() string { return e.msg }

// Usagef builds a UsageError, printf-style.
func Usagef(format string, args ...any) error {
	return UsageError{msg: fmt.Sprintf(format, args...)}
}

// parseSentinel tags errors returned by FlagSet.Parse so main neither
// double-prints them (flag already wrote its message and usage text) nor
// conflates them with runtime failures.
type parseSentinel struct{ err error }

func (e parseSentinel) Error() string { return e.err.Error() }
func (e parseSentinel) Unwrap() error { return e.err }

// WrapParse classifies a FlagSet.Parse error: -h/-help passes through as
// flag.ErrHelp (a successful outcome), everything else is tagged as a
// parse error.
func WrapParse(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return err
	}
	return parseSentinel{err: err}
}

// IsParseError reports whether err came from FlagSet.Parse via WrapParse.
func IsParseError(err error) bool {
	var ps parseSentinel
	return errors.As(err, &ps)
}

// Exit terminates the process according to the shared protocol: nil and
// flag.ErrHelp exit 0, usage and parse errors exit 2, runtime failures
// exit 1. Errors other than parse errors (already printed by flag) are
// written to stderr prefixed with the tool name.
func Exit(tool string, err error) {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return
	}
	if !IsParseError(err) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	var ue UsageError
	if errors.As(err, &ue) || IsParseError(err) {
		os.Exit(2)
	}
	os.Exit(1)
}

// NotifyContext derives the graceful-shutdown context every long-running
// tool shares: cancelled on SIGINT (Ctrl-C) or SIGTERM (the fleet
// scheduler's drain signal), so in-flight work stops at its next
// cooperative poll and deferred reporting paths still run. The returned
// stop function releases the signal registration; a second signal after
// cancellation falls through to the default handler and kills the
// process, so a wedged drain is still interruptible.
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// NewFlagSet returns a ContinueOnError FlagSet writing usage text to
// stderr, the configuration every tool's run() uses.
func NewFlagSet(tool string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}
