package transpile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// expandToPhysical embeds an n-qubit state into N physical qubits using the
// final layout (virtual q lives at physical layout[q]; unused physical
// qubits are |0⟩).
func expandToPhysical(t *testing.T, st *sim.State, layout Layout, n int) *sim.State {
	t.Helper()
	out, err := sim.NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Amp {
		out.Amp[i] = 0
	}
	for idx, amp := range st.Amp {
		if amp == 0 {
			continue
		}
		phys := 0
		for q := 0; q < st.N; q++ {
			bit := (idx >> (st.N - 1 - q)) & 1
			if bit == 1 {
				phys |= 1 << (n - 1 - layout[q])
			}
		}
		out.Amp[phys] = amp
	}
	return out
}

// checkSemantic routes+exact-translates a circuit on a topology and verifies
// the physical circuit computes the same state (up to global phase and the
// final layout permutation).
func checkSemantic(t *testing.T, g *topology.Graph, c *circuit.Circuit, seed int64) {
	t.Helper()
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(seed)), 8)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TranslateExactCX(routed.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunCircuit(exact)
	if err != nil {
		t.Fatal(err)
	}
	expected := expandToPhysical(t, want, routed.FinalLayout, g.N())
	ip, err := expected.Inner(got)
	if err != nil {
		t.Fatal(err)
	}
	if f := cmplx.Abs(ip); math.Abs(f-1) > 1e-6 {
		t.Fatalf("semantic mismatch: |<expected|got>| = %g", f)
	}
}

func TestSemanticGHZOnHeavyHex(t *testing.T) {
	checkSemantic(t, topology.HeavyHex20(), workloads.GHZ(8), 101)
}

func TestSemanticQFTOnTree(t *testing.T) {
	// QFT includes algorithmic swaps and phased gates.
	checkSemantic(t, topology.Tree20(), workloads.QFT(6, true), 102)
}

func TestSemanticAdderOnCorral(t *testing.T) {
	checkSemantic(t, topology.Corral11(), workloads.Adder(3), 103)
}

func TestSemanticRandomOnHypercube(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := workloads.QuantumVolume(6, rng)
	checkSemantic(t, topology.Hypercube16(), c, 104)
}

func TestTranslateExactCountsMatchCountingMode(t *testing.T) {
	// The exact translation and the counting translation must agree on the
	// number of CX gates.
	rng := rand.New(rand.NewSource(6))
	c := workloads.QuantumVolume(5, rng)
	exact, err := TranslateExactCX(c)
	if err != nil {
		t.Fatal(err)
	}
	counted, err := TranslateToBasis(c, weyl.BasisCX)
	if err != nil {
		t.Fatal(err)
	}
	if exact.CountByName("cx") != counted.CountTwoQubit() {
		t.Fatalf("exact CX count %d != counted %d", exact.CountByName("cx"), counted.CountTwoQubit())
	}
}
