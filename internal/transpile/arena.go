package transpile

// intArena hands out tiny []int slices (emitted ops' qubit lists) carved
// from chunked blocks, replacing one make per emitted op with one make per
// arenaChunk ints. Slices are full-capacity-capped so an append on one can
// never bleed into its neighbor, and blocks are referenced by the emitted
// circuit for exactly as long as the ops that point into them — the same
// lifetime the individual makes had.
type intArena struct {
	buf []int
}

// arenaChunk is the block size in ints. Emitted qubit lists are 1–2 ints,
// so one block serves hundreds of ops.
const arenaChunk = 512

// take returns a zeroed slice of n ints with capacity exactly n.
func (a *intArena) take(n int) []int {
	if n > len(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]int, size)
	}
	s := a.buf[:n:n]
	a.buf = a.buf[n:]
	return s
}

// floatArena is intArena for []float64 payloads (emitted ops' params).
type floatArena struct {
	buf []float64
}

// take returns a zeroed slice of n float64s with capacity exactly n.
func (a *floatArena) take(n int) []float64 {
	if n > len(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]float64, size)
	}
	s := a.buf[:n:n]
	a.buf = a.buf[n:]
	return s
}
