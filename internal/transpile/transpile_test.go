package transpile

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

func TestTrivialLayout(t *testing.T) {
	l := TrivialLayout(4)
	for i, p := range l {
		if p != i {
			t.Fatalf("trivial layout[%d] = %d", i, p)
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	g := topology.SquareLattice(2, 2)
	if err := (Layout{0, 1, 2, 3}).Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := (Layout{0, 0}).Validate(g); err == nil {
		t.Fatal("duplicate mapping accepted")
	}
	if err := (Layout{0, 9}).Validate(g); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestDenseLayoutPrefersDenseRegion(t *testing.T) {
	// Tree20: the densest 5-vertex region is a module (K5 = 10 edges).
	g := topology.Tree20()
	c := circuit.New(5)
	c.CX(0, 1)
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	// Count induced edges among chosen vertices.
	edges := 0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if g.HasEdge(layout[i], layout[j]) {
				edges++
			}
		}
	}
	if edges != 10 {
		t.Errorf("dense layout induced %d edges, want 10 (a full module)", edges)
	}
}

func TestDenseLayoutFullMachine(t *testing.T) {
	g := topology.Hypercube16()
	c := circuit.New(16)
	c.CX(0, 15)
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := DenseLayout(topology.SquareLattice(2, 2), circuit.New(9)); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

// checkRouted verifies that every 2Q gate of the routed circuit acts on a
// coupled pair and that the routed circuit computes the same permutation of
// the original gates (same multiset of non-swap gates, in a dependency-
// consistent order).
func checkRouted(t *testing.T, g *topology.Graph, routed *circuit.Circuit, original *circuit.Circuit) {
	t.Helper()
	nonSwap := 0
	for _, op := range routed.Ops {
		if op.Is2Q() {
			if !g.HasEdge(op.Qubits[0], op.Qubits[1]) {
				t.Fatalf("routed 2Q op %v not on an edge", op)
			}
			if op.Name != "swap" {
				nonSwap++
			}
		} else {
			nonSwap++
		}
	}
	// Algorithmic swaps in the source are indistinguishable from routing
	// swaps in the output, so compare non-swap op counts.
	want := 0
	for _, op := range original.Ops {
		if op.Name != "swap" {
			want++
		}
	}
	if nonSwap != want {
		t.Fatalf("routed circuit has %d original non-swap ops, want %d", nonSwap, want)
	}
}

func routeTestCircuit(n int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < 3*n; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		c.CX(a, b)
		if i%3 == 0 {
			c.H(rng.Intn(n))
		}
	}
	return c
}

func TestStochasticSwapOnTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*topology.Graph{
		topology.SquareLattice16(),
		topology.HeavyHex20(),
		topology.Tree20(),
		topology.Corral11(),
		topology.Hypercube16(),
	}
	for _, g := range graphs {
		c := routeTestCircuit(10, rng)
		layout, err := DenseLayout(g, c)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		res, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(7)), 10)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		checkRouted(t, g, res.Circuit, c)
		if res.SwapCount != res.Circuit.CountByName("swap") {
			t.Fatalf("%s: swap count mismatch %d vs %d", g.Name, res.SwapCount, res.Circuit.CountByName("swap"))
		}
	}
}

func TestStochasticSwapDeterministicWithSeed(t *testing.T) {
	g := topology.HeavyHex20()
	c := routeTestCircuit(12, rand.New(rand.NewSource(3)))
	layout, _ := DenseLayout(g, c)
	a, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(9)), 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(9)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.SwapCount != b.SwapCount || len(a.Circuit.Ops) != len(b.Circuit.Ops) {
		t.Fatal("same seed produced different routing")
	}
}

func TestStochasticSwapNoSwapsWhenAdjacent(t *testing.T) {
	g := topology.SquareLattice(1, 4) // path
	c := circuit.New(4)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	res, err := StochasticSwap(g, c, TrivialLayout(4), rand.New(rand.NewSource(1)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("adjacent circuit routed with %d swaps", res.SwapCount)
	}
}

func TestRicherTopologyNeedsFewerSwaps(t *testing.T) {
	// The paper's central observation: on the same workload, Corral/Hypercube
	// induce far fewer SWAPs than Heavy-Hex.
	rng := rand.New(rand.NewSource(5))
	c := workloads.QAOAVanilla(12, rng)
	swapsOn := func(g *topology.Graph) int {
		layout, err := DenseLayout(g, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(11)), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.SwapCount
	}
	heavyHex := swapsOn(topology.HeavyHex20())
	corral := swapsOn(topology.Corral12())
	if corral >= heavyHex {
		t.Errorf("Corral(1,2) swaps (%d) should be below Heavy-Hex (%d)", corral, heavyHex)
	}
}

func TestSabreSwapRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := topology.HeavyHex20()
	c := routeTestCircuit(12, rng)
	layout, _ := DenseLayout(g, c)
	res, err := SabreSwap(g, c, layout, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	checkRouted(t, g, res.Circuit, c)
	if res.SwapCount == 0 {
		t.Error("SABRE routed a dense random circuit with zero swaps (suspicious)")
	}
}

func TestTranslateToBasisCounts(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.Swap(0, 1)
	c.CP(0, 1, math.Pi/2)

	cases := []struct {
		basis weyl.Basis
		want  int // total basis-gate count: CX + SWAP + CP(π/2)
	}{
		{weyl.BasisCX, 1 + 3 + 2},
		{weyl.BasisSqrtISwap, 2 + 3 + 2},
		{weyl.BasisSYC, 4 + 4 + 4},
		{weyl.BasisISwap, 2 + 3 + 2},
	}
	for _, tc := range cases {
		out, err := TranslateToBasis(c, tc.basis)
		if err != nil {
			t.Fatalf("%v: %v", tc.basis, err)
		}
		if got := out.CountTwoQubit(); got != tc.want {
			t.Errorf("%v: total 2Q = %d, want %d", tc.basis, got, tc.want)
		}
		fast, err := Count2QForBasis(c, tc.basis)
		if err != nil {
			t.Fatal(err)
		}
		if fast != tc.want {
			t.Errorf("%v: Count2QForBasis = %d, want %d", tc.basis, fast, tc.want)
		}
	}
}

func TestTranslatePreserves1Q(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.RZ(1, 0.3)
	out, err := TranslateToBasis(c, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountByName("h") != 1 || out.CountByName("rz") != 1 {
		t.Error("1Q gates lost in translation")
	}
	if out.CountByName("siswap") != 2 {
		t.Errorf("CX → %d √iSWAP, want 2", out.CountByName("siswap"))
	}
}

func TestPulseDurationWeighting(t *testing.T) {
	// A SWAP chain: 3 basis gates in series per SWAP.
	c := circuit.New(2)
	c.Swap(0, 1)
	cx, err := TranslateToBasis(c, weyl.BasisCX)
	if err != nil {
		t.Fatal(err)
	}
	if d := PulseDuration(cx, weyl.BasisCX); math.Abs(d-3.0) > 1e-9 {
		t.Errorf("SWAP in CX basis duration = %g, want 3.0", d)
	}
	si, err := TranslateToBasis(c, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	if d := PulseDuration(si, weyl.BasisSqrtISwap); math.Abs(d-1.5) > 1e-9 {
		t.Errorf("SWAP in √iSWAP basis duration = %g, want 1.5 (3 pulses × 0.5)", d)
	}
}

func TestTranslateIdentityClassFreebie(t *testing.T) {
	// CAN(0,0,0) is locally trivial: zero basis gates.
	c := circuit.New(2)
	c.Append(circuit.Op{Name: "can", Qubits: []int{0, 1}, Params: []float64{0, 0, 0}})
	out, err := TranslateToBasis(c, weyl.BasisCX)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountTwoQubit() != 0 {
		t.Errorf("identity-class op translated to %d 2Q gates", out.CountTwoQubit())
	}
}

func TestEndToEndPipelineSmall(t *testing.T) {
	// Route + translate a QFT on the Corral and confirm structural sanity.
	g := topology.Corral11()
	c := workloads.QFT(8, true)
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(17)), 10)
	if err != nil {
		t.Fatal(err)
	}
	checkRouted(t, g, routed.Circuit, c)
	trans, err := TranslateToBasis(routed.Circuit, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	// Every 2Q op is now a √iSWAP on an edge.
	for _, op := range trans.Ops {
		if op.Is2Q() {
			if op.Name != "siswap" {
				t.Fatalf("untranslated 2Q op %v", op)
			}
			if !g.HasEdge(op.Qubits[0], op.Qubits[1]) {
				t.Fatalf("translated op off the coupling graph: %v", op)
			}
		}
	}
	if trans.CountTwoQubit() < routed.Circuit.CountTwoQubit() {
		t.Error("translation should not reduce 2Q count for QFT")
	}
}
