package transpile

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

func TestHeteroChoiceRules(t *testing.T) {
	q := math.Pi / 4
	cases := []struct {
		name      string
		c         weyl.Coord
		wantBasis weyl.Basis
		wantCount int
	}{
		// iSWAP class: one full pulse (1.0) ties two half pulses (1.0);
		// fewer instances win.
		{"iswap-class", weyl.Coord{X: q, Y: q}, weyl.BasisISwap, 1},
		// CNOT class: two half pulses (1.0) beat two full pulses (2.0).
		{"cnot-class", weyl.Coord{X: q}, weyl.BasisSqrtISwap, 2},
		// SWAP: three half pulses (1.5) beat three full (3.0).
		{"swap-class", weyl.Coord{X: q, Y: q, Z: q}, weyl.BasisSqrtISwap, 3},
		// √iSWAP itself: a single half pulse.
		{"sqrt-class", weyl.Coord{X: q / 2, Y: q / 2}, weyl.BasisSqrtISwap, 1},
	}
	for _, tc := range cases {
		got := chooseHetero(tc.c)
		if got.Basis != tc.wantBasis || got.Count != tc.wantCount {
			t.Errorf("%s: chose %v x%d, want %v x%d",
				tc.name, got.Basis, got.Count, tc.wantBasis, tc.wantCount)
		}
	}
}

func TestTranslateHeteroISwapHeavyCircuit(t *testing.T) {
	// A circuit of iSWAP-class gates: heterogeneous translation halves the
	// gate count versus pure √iSWAP at equal duration.
	c := circuit.New(2)
	for i := 0; i < 4; i++ {
		c.ISwap(0, 1)
	}
	het, err := TranslateHetero(c)
	if err != nil {
		t.Fatal(err)
	}
	homo, err := TranslateToBasis(c, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	if het.CountTwoQubit() != 4 || homo.CountTwoQubit() != 8 {
		t.Fatalf("counts: hetero %d (want 4), homo %d (want 8)",
			het.CountTwoQubit(), homo.CountTwoQubit())
	}
	if d := HeteroPulseDuration(het); math.Abs(d-4.0) > 1e-9 {
		t.Errorf("hetero duration %g, want 4.0", d)
	}
}

func TestTranslateHeteroNeverWorse(t *testing.T) {
	// On any workload, heterogeneous duration ≤ homogeneous √iSWAP duration
	// and gate count ≤ homogeneous count.
	rng := rand.New(rand.NewSource(1))
	for _, name := range workloads.Names() {
		c, err := workloads.Generate(name, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		het, err := TranslateHetero(c)
		if err != nil {
			t.Fatal(err)
		}
		homo, err := TranslateToBasis(c, weyl.BasisSqrtISwap)
		if err != nil {
			t.Fatal(err)
		}
		dHet := HeteroPulseDuration(het)
		dHomo := PulseDuration(homo, weyl.BasisSqrtISwap)
		if dHet > dHomo+1e-9 {
			t.Errorf("%s: hetero duration %g worse than homo %g", name, dHet, dHomo)
		}
		if het.CountTwoQubit() > homo.CountTwoQubit() {
			t.Errorf("%s: hetero count %d worse than homo %d",
				name, het.CountTwoQubit(), homo.CountTwoQubit())
		}
	}
}

func TestTranslateHeteroMixesBases(t *testing.T) {
	c := circuit.New(2)
	c.ISwap(0, 1) // full pulse wins (fewer gates)
	c.CX(0, 1)    // half pulses win
	het, err := TranslateHetero(c)
	if err != nil {
		t.Fatal(err)
	}
	if het.CountByName("iswap") != 1 {
		t.Errorf("iswap count = %d, want 1", het.CountByName("iswap"))
	}
	if het.CountByName("siswap") != 2 {
		t.Errorf("siswap count = %d, want 2", het.CountByName("siswap"))
	}
}
