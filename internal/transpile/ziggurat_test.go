package transpile

import (
	"math/rand"
	"testing"
)

// TestZigguratMatchesMathRand pins the contract the router's byte-identical
// output rests on: the inlined splitmix64 gaussian sampler reproduces
// rand.New(&splitmix64{state: seed}).NormFloat64() bit for bit, across
// enough draws per seed to exercise the rare base-strip and wedge-rejection
// branches of the ziggurat.
func TestZigguratMatchesMathRand(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, 1 << 63, ^uint64(0)} {
		ref := rand.New(&splitmix64{state: seed})
		sm := &splitmix64{state: seed}
		for i := 0; i < 200000; i++ {
			want := ref.NormFloat64()
			got := sm.normFloat64()
			if got != want {
				t.Fatalf("seed %#x draw %d: normFloat64 = %v, rand.NormFloat64 = %v", seed, i, got, want)
			}
		}
	}
}

// TestZigguratHelpersMatchMathRand pins the two derived streams the sampler
// is built from, so a future drift is reported at the primitive that moved.
func TestZigguratHelpersMatchMathRand(t *testing.T) {
	refU := rand.New(&splitmix64{state: 7})
	smU := &splitmix64{state: 7}
	for i := 0; i < 100000; i++ {
		if got, want := smU.uint32n(), refU.Uint32(); got != want {
			t.Fatalf("draw %d: uint32n = %#x, rand.Uint32 = %#x", i, got, want)
		}
	}
	refF := rand.New(&splitmix64{state: 9})
	smF := &splitmix64{state: 9}
	for i := 0; i < 100000; i++ {
		if got, want := smF.float64n(), refF.Float64(); got != want {
			t.Fatalf("draw %d: float64n = %v, rand.Float64 = %v", i, got, want)
		}
	}
}
