package transpile

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func TestEdgeProfileRecording(t *testing.T) {
	g := topology.SquareLattice16()
	p := NewEdgeProfile(g)
	if p.Total() != 0 || p.MaxCount() != 0 {
		t.Fatal("fresh profile not empty")
	}
	e := g.Edges()[0]
	if err := p.RecordSwap(e[1], e[0]); err != nil { // reversed order OK
		t.Fatal(err)
	}
	if err := p.RecordSwap(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if p.Count(e[0], e[1]) != 2 || p.Count(e[1], e[0]) != 2 {
		t.Errorf("count = %d/%d, want 2", p.Count(e[0], e[1]), p.Count(e[1], e[0]))
	}
	if p.Total() != 2 || p.MaxCount() != 2 {
		t.Errorf("total/max = %d/%d, want 2/2", p.Total(), p.MaxCount())
	}
	// (0,5) is not an edge of the 4x4 lattice.
	if err := p.RecordSwap(0, 5); err == nil {
		t.Error("swap on a non-edge accepted")
	}
}

func TestProfileRoutedCircuitCountsSwaps(t *testing.T) {
	g := topology.SquareLattice16()
	c, err := workloads.Generate("QuantumVolume", 12, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(3)), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileRoutedCircuit(g, res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Circuit.CountByName("swap")
	if p.Total() != want {
		t.Errorf("profile total %d, circuit has %d swaps", p.Total(), want)
	}
	if want > 0 && p.MaxCount() == 0 {
		t.Error("swaps routed but no edge pressure recorded")
	}
}

func TestEdgeProfileWeights(t *testing.T) {
	g := topology.SquareLattice16()
	p := NewEdgeProfile(g)
	// Empty profile: uniform.
	for _, w := range p.Weights(1.0) {
		if w != 1 {
			t.Fatalf("empty profile weight %g, want 1", w)
		}
	}
	e0, e1 := g.Edges()[0], g.Edges()[1]
	for i := 0; i < 4; i++ {
		if err := p.RecordSwap(e0[0], e0[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RecordSwap(e1[0], e1[1]); err != nil {
		t.Fatal(err)
	}
	w := p.Weights(1.0)
	if w[0] != 2 { // hottest edge: 1 + alpha
		t.Errorf("hottest edge weight %g, want 2", w[0])
	}
	if w[1] != 1.25 { // 1 + 1.0 * 1/4
		t.Errorf("warm edge weight %g, want 1.25", w[1])
	}
	for i := 2; i < len(w); i++ {
		if w[i] != 1 {
			t.Fatalf("idle edge %d weight %g, want 1", i, w[i])
		}
	}
	// alpha <= 0 degrades to uniform.
	for _, w := range p.Weights(0) {
		if w != 1 {
			t.Fatal("alpha=0 should give uniform weights")
		}
	}
}

// routedEqual compares two routed circuits op by op.
func routedEqual(a, b *circuit.Circuit) bool {
	if len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		oa, ob := a.Ops[i], b.Ops[i]
		if oa.Name != ob.Name || len(oa.Qubits) != len(ob.Qubits) {
			return false
		}
		for j := range oa.Qubits {
			if oa.Qubits[j] != ob.Qubits[j] {
				return false
			}
		}
	}
	return true
}

func TestNilCostReproducesBaselineRouters(t *testing.T) {
	g := topology.Corral11()
	c, err := workloads.Generate("QFT", 12, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	base, err := StochasticSwapParallel(g, c, layout, rand.New(rand.NewSource(7)), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaCost, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(7)), 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !routedEqual(base.Circuit, viaCost.Circuit) || base.SwapCount != viaCost.SwapCount {
		t.Error("StochasticSwapCost(nil) diverged from StochasticSwapParallel")
	}
	sb, err := SabreSwap(g, c, layout, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SabreSwapCost(g, c, layout, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !routedEqual(sb.Circuit, sc.Circuit) || sb.SwapCount != sc.SwapCount {
		t.Error("SabreSwapCost(nil) diverged from SabreSwap")
	}
	lc, err := DenseLayoutCost(g, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range layout {
		if layout[i] != lc[i] {
			t.Fatal("DenseLayoutCost(nil) diverged from DenseLayout")
		}
	}
}

func TestWeightedCostSteersRouting(t *testing.T) {
	// Uniform-weight cost matrices must reproduce the baseline exactly
	// (hop distances as floats are the same numbers the router always used).
	g := topology.Corral11()
	c, err := workloads.Generate("QuantumVolume", 14, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := g.WeightedDistances(g.UniformWeights())
	if err != nil {
		t.Fatal(err)
	}
	base, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(11)), 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaUniform, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(11)), 5, 1, uni)
	if err != nil {
		t.Fatal(err)
	}
	if !routedEqual(base.Circuit, viaUniform.Circuit) {
		t.Error("uniform weighted cost diverged from hop-distance baseline")
	}
	// A pressure-weighted matrix is allowed to change the route, but the
	// result must stay valid: same gate multiset pre-swap, routable output.
	p, err := ProfileRoutedCircuit(g, base.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := g.WeightedDistances(p.Weights(DefaultPressureAlpha))
	if err != nil {
		t.Fatal(err)
	}
	guided, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(11)), 5, 1, wd)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := guided.Circuit.CountTwoQubit()-guided.SwapCount, base.Circuit.CountTwoQubit()-base.SwapCount; got != want {
		t.Errorf("guided pass changed non-swap 2Q content: %d vs %d", got, want)
	}
}

func TestCostMatrixValidation(t *testing.T) {
	g := topology.SquareLattice16()
	c, err := workloads.Generate("GHZ", 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([][]float64, 3)
	for i := range bad {
		bad[i] = make([]float64, 3)
	}
	if _, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(1)), 5, 1, bad); err == nil {
		t.Error("undersized cost matrix accepted by StochasticSwapCost")
	}
	if _, err := SabreSwapCost(g, c, layout, rand.New(rand.NewSource(1)), bad); err == nil {
		t.Error("undersized cost matrix accepted by SabreSwapCost")
	}
	ragged := make([][]float64, g.N())
	for i := range ragged {
		ragged[i] = make([]float64, g.N())
	}
	ragged[4] = ragged[4][:2]
	if _, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(1)), 5, 1, ragged); err == nil {
		t.Error("ragged cost matrix accepted")
	}
}
