package transpile

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// routeCtx lays out and routes a workload, returning a PassContext ready
// for VerifyPass.
func routeCtx(t *testing.T, g *topology.Graph, c *circuit.Circuit, seed int64) *PassContext {
	t.Helper()
	ctx := &PassContext{Graph: g, Basis: weyl.BasisCX, Circuit: c, Seed: seed, Trials: 8}
	if err := (Pipeline{LayoutPass{}, RoutePass{}}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestVerifyPassAcceptsCorrectRouting runs the verifier over the stock
// routing of several workloads and topologies; a failure here means either
// the router or the verifier is wrong — both are bugs.
func TestVerifyPassAcceptsCorrectRouting(t *testing.T) {
	cases := []struct {
		g *topology.Graph
		c *circuit.Circuit
	}{
		{topology.HeavyHex20(), workloads.GHZ(8)},
		{topology.Tree20(), workloads.QFT(6, true)},
		{topology.Corral11(), workloads.Adder(3)},
		{topology.Hypercube16(), workloads.QuantumVolume(6, rand.New(rand.NewSource(2)))},
	}
	for i, tc := range cases {
		ctx := routeCtx(t, tc.g, tc.c, int64(300+i))
		if err := (VerifyPass{}).Apply(ctx); err != nil {
			t.Errorf("case %d (%s): verification rejected a stock routing: %v", i, tc.g.Name, err)
		}
	}
}

// TestVerifyPassCatchesTampering corrupts a routed circuit in ways a buggy
// router could (drop a SWAP, mangle the final layout) and requires the
// verifier to notice. The workload must be permutation-sensitive —
// QFT/GHZ from |0…0⟩ end in qubit-symmetric states where tampering is
// invisible — so it uses a Haar-random QuantumVolume state.
func TestVerifyPassCatchesTampering(t *testing.T) {
	ctx := routeCtx(t, topology.Tree20(), workloads.QuantumVolume(8, rand.New(rand.NewSource(9))), 77)
	// Drop the last SWAP the router inserted. (The first can be a semantic
	// no-op: a swap of two still-|0⟩ qubits before any gate touches them.)
	lastSwap := -1
	for i, op := range ctx.Routed.Circuit.Ops {
		if op.Name == "swap" {
			lastSwap = i
		}
	}
	if lastSwap < 0 {
		t.Skip("routing inserted no SWAPs; tampering test needs one")
	}
	dropped := circuit.New(ctx.Routed.Circuit.N)
	for i, op := range ctx.Routed.Circuit.Ops {
		if i == lastSwap {
			continue
		}
		dropped.Append(op)
	}
	tampered := *ctx
	tampered.Routed = &RouteResult{Circuit: dropped, SwapCount: ctx.Routed.SwapCount - 1, FinalLayout: ctx.Routed.FinalLayout}
	if err := (VerifyPass{}).Apply(&tampered); err == nil {
		t.Error("verification accepted a routed circuit with a SWAP removed")
	}
	// Mangle the final layout (swap two entries).
	bad := ctx.Routed.FinalLayout.Copy()
	bad[0], bad[1] = bad[1], bad[0]
	tampered = *ctx
	tampered.Routed = &RouteResult{Circuit: ctx.Routed.Circuit, SwapCount: ctx.Routed.SwapCount, FinalLayout: bad}
	if err := (VerifyPass{}).Apply(&tampered); err == nil {
		t.Error("verification accepted a mangled final layout")
	}
}

// TestVerifyPassWidthGuard pins the descriptive error when the routed
// circuit touches more qubits than the simulator can hold.
func TestVerifyPassWidthGuard(t *testing.T) {
	g := topology.Hypercube84()
	c := workloads.QuantumVolume(32, rand.New(rand.NewSource(4)))
	ctx := routeCtx(t, g, c, 55)
	compact, _ := ctx.Routed.Circuit.CompactQubits()
	if compact.N <= 22 {
		t.Skipf("routing only touched %d qubits; width guard not exercised", compact.N)
	}
	err := (VerifyPass{}).Apply(ctx)
	if err == nil || !strings.Contains(err.Error(), "at most") {
		t.Fatalf("got %v, want a width-guard error", err)
	}
}

// TestVerifyPassNeedsRouting pins the missing-artifact error.
func TestVerifyPassNeedsRouting(t *testing.T) {
	ctx := &PassContext{Graph: topology.Tree20(), Circuit: workloads.GHZ(4)}
	if err := (VerifyPass{}).Apply(ctx); err == nil {
		t.Fatal("VerifyPass on an unrouted context succeeded")
	}
}
