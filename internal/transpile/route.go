package transpile

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/par"
	"repro/internal/topology"
)

// RouteResult is the outcome of SWAP routing: a physical-qubit circuit with
// SWAPs inserted (ready for basis translation), the number of inserted
// SWAPs, and the final virtual→physical layout after all permutations.
type RouteResult struct {
	Circuit     *circuit.Circuit
	SwapCount   int
	FinalLayout Layout
}

// DefaultTrials matches Qiskit StochasticSwap's default trial count.
const DefaultTrials = 20

// StochasticSwap routes a virtual circuit onto the coupling graph using the
// randomized layer-permutation search of Qiskit's StochasticSwap pass, which
// the paper uses for routing (§5): the circuit is processed layer by layer;
// when a layer contains non-adjacent 2Q gates, several randomized trials
// greedily pick cost-reducing SWAPs under perturbed distance matrices, and
// the shortest successful SWAP sequence is applied. Layers no trial can
// solve whole are routed gate-by-gate (Qiskit's serial-layer fallback).
//
// Each trial runs on its own RNG seeded from the caller's stream up front,
// so the routed circuit is a pure function of (graph, circuit, layout, rng
// seed, trials) — StochasticSwapParallel produces bit-identical output.
func StochasticSwap(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials int) (*RouteResult, error) {
	return StochasticSwapParallel(g, c, initial, rng, trials, 1)
}

// StochasticSwapParallel is StochasticSwap with the per-layer randomized
// trials spread over a bounded worker pool. parallelism follows the
// par.Resolve convention (0 = auto/GOMAXPROCS, ≤1 = serial). The result is
// bit-identical to the serial pass for the same inputs: trial seeds are
// pre-drawn from rng, and the winning sequence is picked by (length,
// lowest trial index) independent of completion order.
func StochasticSwapParallel(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials, parallelism int) (*RouteResult, error) {
	return StochasticSwapCost(g, c, initial, rng, trials, parallelism, nil)
}

// StochasticSwapCost is StochasticSwapParallel with an explicit routing cost
// matrix: cost[i][j] replaces the hop distance between physical vertices i
// and j in the randomized trials' objective, so a profile-guided caller can
// price congested edges above idle ones (see EdgeProfile). A nil cost means
// uniform hop distances, which reproduces StochasticSwapParallel exactly —
// the default pipeline routes through this same code path byte-for-byte.
// The cost matrix only shapes the search; adjacency (when a gate can
// execute) and the greedy fallback still come from the coupling graph.
func StochasticSwapCost(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error) {
	return StochasticSwapCostCtx(context.Background(), g, c, initial, rng, trials, parallelism, cost)
}

// StochasticSwapCostCtx is StochasticSwapCost with cooperative cancellation:
// ctx is polled once per circuit layer and once per serial-fallback routing
// step — the units of trial fan-out, where a cell's wall-clock actually
// accumulates — so a deadline-bound evaluation stops within one layer's
// worth of trials instead of routing the whole circuit. Cancellation never
// alters output: a run that completes is byte-identical with any ctx.
func StochasticSwapCostCtx(ctx context.Context, g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error) {
	if len(initial) != c.N {
		return nil, fmt.Errorf("transpile: layout covers %d qubits, circuit has %d", len(initial), c.N)
	}
	if err := initial.Validate(g); err != nil {
		return nil, err
	}
	if err := checkGatePairsReachable(g, c, initial); err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = DefaultTrials
	}
	flat, err := flattenCost(g, cost)
	if err != nil {
		return nil, err
	}
	r := &router{
		g:       g,
		dist:    g.Distances(),
		cost:    flat,
		out:     circuit.New(g.N()),
		layout:  initial.Copy(),
		rng:     rng,
		trials:  trials,
		workers: par.Resolve(parallelism),
	}
	for _, layer := range c.Layers() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var twoQ []circuit.Op
		var pairs [][2]int
		for _, idx := range layer {
			op := c.Ops[idx]
			if op.Is2Q() {
				twoQ = append(twoQ, op)
				pairs = append(pairs, [2]int{op.Qubits[0], op.Qubits[1]})
			} else {
				r.emit(op) // 1Q gates route trivially
			}
		}
		if len(pairs) == 0 {
			continue
		}
		if seq := r.findSwaps(pairs); seq != nil {
			r.applySwaps(seq)
			for _, op := range twoQ {
				r.emit(op)
			}
			continue
		}
		// Serial fallback: route and emit the layer one gate at a time.
		for i, op := range twoQ {
			single := [][2]int{pairs[i]}
			for !r.allAdjacent(single) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				seq := r.findSwaps(single)
				if seq == nil {
					seq = r.greedyStep(pairs[i])
				}
				if len(seq) == 0 {
					return nil, fmt.Errorf("transpile: routing stuck on gate %v", op)
				}
				r.applySwaps(seq)
			}
			r.emit(op)
		}
	}
	return &RouteResult{Circuit: r.out, SwapCount: r.swaps, FinalLayout: r.layout}, nil
}

// router carries the mutable routing state. dist (hops) bounds search depth
// and drives the greedy fallback; cost (flattened n×n) is the objective the
// randomized trials perturb — float64 hop distances by default, a weighted
// matrix under profile-guided routing.
//
// All per-layer and per-trial working memory lives in reusable buffers:
// scratches holds one routerScratch per trial worker (slot 0 doubles as the
// serial-path scratch), and the seeds/lens/best/inv buffers plus the qubit
// arena amortize the remaining per-layer allocations, so the N-trials ×
// L-layers inner loop stops re-making O(n²) state (see routerScratch).
type router struct {
	g       *topology.Graph
	dist    [][]int
	cost    []float64
	out     *circuit.Circuit
	layout  Layout
	swaps   int
	rng     *rand.Rand
	trials  int
	workers int

	scratches []*routerScratch // lazily sized to the resolved worker count
	seeds     []int64          // per-trial RNG seeds, drawn up front
	lens      []int            // per-trial result lengths (parallel path)
	best      [][2]int         // winning swap sequence, reused across layers
	inv       []int            // physical→virtual scratch for applySwaps
	arena     intArena         // backing storage for emitted ops' qubit slices
}

// routerScratch is the reusable working state of one routing trial
// (trialSearch): the lazily materialized perturbed cost matrix, the
// per-pair endpoint and per-vertex incidence tables, the epoch-stamped
// visited marks, and the swap sequence under construction. One scratch is
// bound to one par worker slot at a time, so trials reuse these buffers
// without locking and the trial loop runs allocation-free after warm-up.
//
// The perturbed matrix is not computed up front. A trial draws one gaussian
// per unordered vertex pair — the stream order is fixed, so prep walks the
// whole stream once — but the greedy search typically reads only the
// entries around the current pairs' positions, a tiny fraction of the n²
// matrix on the 84-vertex machines (the single-gate fallback path reads a
// handful). prep therefore performs an integer-only "consumption pass"
// (fast ziggurat acceptance test, no float math, no stores) and records
// just the rare slow-path draws; at() reconstructs any entry on demand from
// the splitmix64 counter property state_k = state_0 + k·γ, bit-identical to
// the eager computation (pinned by TestLazyPerturbMatchesEager).
type routerScratch struct {
	d       []float64 // perturbed n×n cost entries, valid where stamped
	stamp   []uint32  // generation marks for d (gen bumps per trial)
	gen     uint32
	state0  uint64    // trial seed (splitmix64 state before the first draw)
	slowOrd []int32   // ordinals whose draw took the ziggurat slow path, ascending
	slowCum []int32   // cumulative extra Uint64s consumed through slowOrd[i]
	slowVal []float64 // |gaussian| drawn at slowOrd[i]

	pos     [][2]int // current physical endpoints per pair
	pairsAt [][]int  // pair indices touching each vertex
	seen    []int    // epoch marks per pair (monotone epoch ⇒ no clearing)
	epoch   int
	touched []int    // pairs adjacent to the edge being applied
	seq     [][2]int // swap sequence under construction
}

// scratch returns the worker's reusable trial scratch, growing the slot
// table and the matrix buffers on first use (the router is per-call, so n
// is fixed for its lifetime).
func (r *router) scratch(worker int) *routerScratch {
	for len(r.scratches) <= worker {
		r.scratches = append(r.scratches, &routerScratch{})
	}
	sc := r.scratches[worker]
	if n := r.g.N(); len(sc.d) != n*n {
		sc.d = make([]float64, n*n)
		sc.stamp = make([]uint32, n*n)
		sc.gen = 0
		sc.pairsAt = make([][]int, n)
	}
	return sc
}

// prep seeds the scratch for one trial: bump the matrix generation and run
// the consumption pass over all nPairs gaussian draws, recording ordinal,
// cumulative extra stream consumption, and value for the slow-path draws
// only (~1% of draws). Fast-path draws are a pure function of their stream
// offset and are reconstructed by fill when (if ever) read.
func (sc *routerScratch) prep(seed uint64, nPairs int) {
	sc.state0 = seed
	sc.gen++
	if sc.gen == 0 { // generation wrap: stale stamps could collide
		clear(sc.stamp)
		sc.gen = 1
	}
	sc.slowOrd = sc.slowOrd[:0]
	sc.slowCum = sc.slowCum[:0]
	sc.slowVal = sc.slowVal[:0]
	sm := splitmix64{state: seed}
	extra := int32(0)
	for k := 0; k < nPairs; k++ {
		sm.state += smGamma
		j := int32(uint32(smScramble(sm.state) >> 32))
		i := j & 0x7F
		if zigAbsInt32(j) < zigKn[i] {
			continue // fast path: value reconstructible from the offset alone
		}
		g, consumed := sm.slowNormFloat64(j)
		extra += consumed
		sc.slowOrd = append(sc.slowOrd, int32(k))
		sc.slowCum = append(sc.slowCum, extra)
		sc.slowVal = append(sc.slowVal, absf(g))
	}
}

// at returns the perturbed cost entry for the (distinct) vertices x, y,
// materializing it on first read in this trial.
func (sc *routerScratch) at(base []float64, n, x, y int) float64 {
	idx := x*n + y
	if sc.stamp[idx] != sc.gen {
		sc.fill(base, n, x, y, idx)
	}
	return sc.d[idx]
}

// fill materializes one symmetric pair of perturbed entries: look up the
// unordered pair's draw ordinal, recover the gaussian — directly from the
// counter offset for fast-path draws, from the slow-path records otherwise
// — and store base·(1 + 0.1|gauss|) under both orientations, exactly the
// values the historical eager loop produced.
func (sc *routerScratch) fill(base []float64, n, x, y, idx int) {
	lo, hi := x, y
	if lo > hi {
		lo, hi = hi, lo
	}
	// Ordinal of (lo, hi) in the row-major i<j draw order.
	k := int32(lo*n - lo*(lo+1)/2 + (hi - lo - 1))
	var g float64
	// Binary search the slow-draw records for k (they are few and sorted).
	a, b := 0, len(sc.slowOrd)
	for a < b {
		m := (a + b) / 2
		if sc.slowOrd[m] < k {
			a = m + 1
		} else {
			b = m
		}
	}
	if a < len(sc.slowOrd) && sc.slowOrd[a] == k {
		g = sc.slowVal[a]
	} else {
		var extra int32
		if a > 0 {
			extra = sc.slowCum[a-1]
		}
		state := sc.state0 + uint64(uint64(k)+uint64(extra)+1)*smGamma
		j := int32(uint32(smScramble(state) >> 32))
		i := j & 0x7F
		// |float64(j)·w| == float64(|j|)·w bit-for-bit: IEEE negation is
		// exact and rounding is sign-symmetric.
		g = float64(zigAbsInt32(j)) * zigWn64[i]
	}
	v := base[lo*n+hi] * (1 + 0.1*g)
	sym := y*n + x
	sc.d[idx], sc.d[sym] = v, v
	sc.stamp[idx], sc.stamp[sym] = sc.gen, sc.gen
}

// grow resizes a scratch slice to n, preserving capacity across calls.
// Stale contents are the caller's concern (the epoch scheme makes stale
// seen marks harmless; other users overwrite before reading).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// flattenCost validates a routing cost matrix and flattens it row-major; a
// nil matrix falls back to the hop-distance matrix as floats (the uniform
// baseline the pipeline has always used).
func flattenCost(g *topology.Graph, cost [][]float64) ([]float64, error) {
	n := g.N()
	flat := make([]float64, n*n)
	if cost == nil {
		dist := g.Distances()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				flat[i*n+j] = float64(dist[i][j])
			}
		}
		return flat, nil
	}
	if len(cost) != n {
		return nil, fmt.Errorf("transpile: cost matrix is %dx?, graph has %d vertices", len(cost), n)
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("transpile: cost row %d has %d entries, want %d", i, len(row), n)
		}
		copy(flat[i*n:(i+1)*n], row)
	}
	return flat, nil
}

func (r *router) emit(op circuit.Op) {
	phys := r.arena.take(len(op.Qubits))
	for i, q := range op.Qubits {
		phys[i] = r.layout[q]
	}
	r.out.Append(circuit.Op{Name: op.Name, Qubits: phys, Params: op.Params, U: op.U})
}

func (r *router) applySwaps(seq [][2]int) {
	r.inv = grow(r.inv, r.g.N())
	inv := r.layout.InverseInto(r.inv)
	for _, e := range seq {
		a, b := e[0], e[1]
		q := r.arena.take(2)
		q[0], q[1] = a, b
		r.out.Append(circuit.Op{Name: "swap", Qubits: q})
		r.swaps++
		va, vb := inv[a], inv[b]
		if va >= 0 {
			r.layout[va] = b
		}
		if vb >= 0 {
			r.layout[vb] = a
		}
		inv[a], inv[b] = vb, va
	}
}

func (r *router) allAdjacent(pairs [][2]int) bool {
	for _, p := range pairs {
		if !r.g.HasEdge(r.layout[p[0]], r.layout[p[1]]) {
			return false
		}
	}
	return true
}

// greedyStep moves one endpoint of the pair a single hop along a shortest
// path toward the other endpoint.
func (r *router) greedyStep(p [2]int) [][2]int {
	a, b := r.layout[p[0]], r.layout[p[1]]
	for _, w := range r.g.Neighbors(a) {
		if r.dist[w][b] == r.dist[a][b]-1 {
			return [][2]int{{a, w}}
		}
	}
	return nil
}

// findSwaps runs randomized trials and returns the shortest SWAP sequence
// (list of physical edges, applied in order) that makes every pair adjacent,
// or nil if no trial succeeds within the depth limit. The returned slice
// aliases a router-owned buffer that stays valid until the next findSwaps
// call (callers apply it immediately).
//
// Every trial gets its own RNG seeded from the router's stream before any
// trial runs, and the winner is the minimum-length sequence with ties
// broken by lowest trial index. Both choices make the outcome independent
// of execution schedule, so the serial and worker-pool paths below are
// interchangeable bit-for-bit: the parallel path records only each trial's
// sequence length and deterministically replays the winning trial, which
// is byte-identical to having kept its sequence.
func (r *router) findSwaps(pairs [][2]int) [][2]int {
	if r.allAdjacent(pairs) {
		return [][2]int{}
	}
	n := r.g.N()
	limit := 2*n + 4*len(pairs)
	r.seeds = grow(r.seeds, r.trials)
	for t := range r.seeds {
		r.seeds[t] = r.rng.Int63()
	}
	if r.workers <= 1 {
		sc := r.scratch(0)
		bestLen := -1
		for t := 0; t < r.trials; t++ {
			if ok := r.runTrial(pairs, t, limit, sc); ok {
				if bestLen < 0 || len(sc.seq) < bestLen {
					bestLen = len(sc.seq)
					r.best = append(r.best[:0], sc.seq...)
				}
				if bestLen == 0 {
					break // can't beat an already-adjacent layer
				}
			}
		}
		if bestLen < 0 {
			return nil
		}
		return r.best
	}
	// Parallel path: trialSearch only reads shared router state (g, dist,
	// layout) and mutates only its worker-slot scratch, so trials share
	// nothing but their result slots. Scratch slots are grown up front —
	// inside the pool, workers index r.scratches without mutating it.
	slots := r.workers
	if slots > r.trials {
		slots = r.trials
	}
	for w := 0; w < slots; w++ {
		r.scratch(w)
	}
	r.lens = grow(r.lens, r.trials)
	par.ForEachWorker(r.trials, r.workers, func(worker, t int) error {
		sc := r.scratches[worker]
		if r.runTrial(pairs, t, limit, sc) {
			r.lens[t] = len(sc.seq)
		} else {
			r.lens[t] = -1
		}
		return nil
	})
	winner := -1
	for t, l := range r.lens {
		if l >= 0 && (winner < 0 || l < r.lens[winner]) {
			winner = t
		}
	}
	if winner < 0 {
		return nil
	}
	sc := r.scratch(0)
	r.runTrial(pairs, winner, limit, sc) // deterministic replay of the winner
	r.best = append(r.best[:0], sc.seq...)
	return r.best
}

// runTrial prepares the scratch's lazily perturbed view of the router's
// cost matrix (d' = d·(1 + 0.1|gauss|), symmetric per unordered pair — hop
// distances by default, pressure-weighted under profile-guided routing) and
// greedily searches under it, leaving the resulting swap sequence in
// sc.seq. It reports whether the trial made every pair adjacent within the
// limit.
func (r *router) runTrial(pairs [][2]int, t, limit int, sc *routerScratch) bool {
	n := r.g.N()
	sc.prep(uint64(r.seeds[t]), n*(n-1)/2)
	return r.trialSearch(pairs, sc, limit)
}

// trialSearch greedily applies the cost-minimizing swap until every pair is
// adjacent, a local minimum is hit, or the depth limit is reached. Cost
// deltas are evaluated incrementally: a candidate swap only affects pairs
// with an endpoint on the swapped edge. All working state lives in sc, so
// steady-state trials allocate nothing.
func (r *router) trialSearch(pairs [][2]int, sc *routerScratch, limit int) bool {
	n := r.g.N()
	base := r.cost
	sc.pos = grow(sc.pos, len(pairs))
	pos := sc.pos
	pairsAt := sc.pairsAt
	for v := range pairsAt {
		pairsAt[v] = pairsAt[v][:0]
	}
	notAdj := 0
	for i, p := range pairs {
		pa, pb := r.layout[p[0]], r.layout[p[1]]
		pos[i] = [2]int{pa, pb}
		pairsAt[pa] = append(pairsAt[pa], i)
		pairsAt[pb] = append(pairsAt[pb], i)
		if !r.g.HasEdge(pa, pb) {
			notAdj++
		}
	}
	// pairDelta maps each endpoint to its post-swap replacement during
	// delta evaluation of a candidate edge. Cost entries come from the
	// scratch's lazily materialized perturbed matrix.
	pairDelta := func(i, a, b int) float64 {
		remap := func(v int) int {
			switch v {
			case a:
				return b
			case b:
				return a
			}
			return v
		}
		oa, ob := pos[i][0], pos[i][1]
		return sc.at(base, n, remap(oa), remap(ob)) - sc.at(base, n, oa, ob)
	}
	// seen marks are epoch-stamped and the epoch is monotone per scratch,
	// so stale marks from earlier trials can never collide and the buffer
	// is reused without clearing.
	sc.seen = grow(sc.seen, len(pairs))
	seen := sc.seen
	sc.seq = sc.seq[:0]
	for step := 0; step < limit && notAdj > 0; step++ {
		bestDelta := -1e-12
		bestEdge := [2]int{-1, -1}
		for _, e := range r.g.Edges() {
			a, b := e[0], e[1]
			if len(pairsAt[a]) == 0 && len(pairsAt[b]) == 0 {
				continue
			}
			sc.epoch++
			delta := 0.0
			for _, i := range pairsAt[a] {
				seen[i] = sc.epoch
				delta += pairDelta(i, a, b)
			}
			for _, i := range pairsAt[b] {
				if seen[i] == sc.epoch {
					continue
				}
				delta += pairDelta(i, a, b)
			}
			if delta < bestDelta {
				bestDelta = delta
				bestEdge = e
			}
		}
		if bestEdge[0] < 0 {
			break // local minimum under this perturbation
		}
		a, b := bestEdge[0], bestEdge[1]
		// Apply the swap to the trial state: collect the pairs touching the
		// edge, move their endpoints, and rebuild the two incidence lists
		// in place (touched is captured first, so truncating is safe).
		sc.epoch++
		sc.touched = sc.touched[:0]
		for _, i := range pairsAt[a] {
			seen[i] = sc.epoch
			sc.touched = append(sc.touched, i)
		}
		for _, i := range pairsAt[b] {
			if seen[i] != sc.epoch {
				sc.touched = append(sc.touched, i)
			}
		}
		for _, i := range sc.touched {
			if r.g.HasEdge(pos[i][0], pos[i][1]) {
				notAdj++
			}
			if pos[i][0] == a {
				pos[i][0] = b
			} else if pos[i][0] == b {
				pos[i][0] = a
			}
			if pos[i][1] == a {
				pos[i][1] = b
			} else if pos[i][1] == b {
				pos[i][1] = a
			}
			if r.g.HasEdge(pos[i][0], pos[i][1]) {
				notAdj--
			}
		}
		pairsAt[a], pairsAt[b] = pairsAt[a][:0], pairsAt[b][:0]
		for _, i := range sc.touched {
			if pos[i][0] == a || pos[i][1] == a {
				pairsAt[a] = append(pairsAt[a], i)
			}
			if pos[i][0] == b || pos[i][1] == b {
				pairsAt[b] = append(pairsAt[b], i)
			}
		}
		sc.seq = append(sc.seq, bestEdge)
	}
	return notAdj == 0
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// splitmix64 is a tiny rand.Source64 with O(1) construction, used for the
// per-trial RNGs: the default math/rand source runs a 607-step seeding
// procedure, which dominated findSwaps on small topologies where one
// trial's whole perturbation pass is only a few hundred draws. The state
// advances by a fixed increment per draw, so the k-th output is the O(1)
// function smScramble(state + k·smGamma) — the property routerScratch's
// lazy perturbation relies on.
type splitmix64 struct{ state uint64 }

// smGamma is the splitmix64 state increment (Weyl sequence constant).
const smGamma = 0x9E3779B97F4A7C15

// smScramble is the splitmix64 output function over a raw state value.
func smScramble(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix64) Uint64() uint64 {
	s.state += smGamma
	return smScramble(s.state)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
