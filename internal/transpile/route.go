package transpile

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/circuit"
	"repro/internal/par"
	"repro/internal/topology"
)

// RouteResult is the outcome of SWAP routing: a physical-qubit circuit with
// SWAPs inserted (ready for basis translation), the number of inserted
// SWAPs, and the final virtual→physical layout after all permutations.
type RouteResult struct {
	Circuit     *circuit.Circuit
	SwapCount   int
	FinalLayout Layout
}

// DefaultTrials matches Qiskit StochasticSwap's default trial count.
const DefaultTrials = 20

// StochasticSwap routes a virtual circuit onto the coupling graph using the
// randomized layer-permutation search of Qiskit's StochasticSwap pass, which
// the paper uses for routing (§5): the circuit is processed layer by layer;
// when a layer contains non-adjacent 2Q gates, several randomized trials
// greedily pick cost-reducing SWAPs under perturbed distance matrices, and
// the shortest successful SWAP sequence is applied. Layers no trial can
// solve whole are routed gate-by-gate (Qiskit's serial-layer fallback).
//
// Each trial runs on its own RNG seeded from the caller's stream up front,
// so the routed circuit is a pure function of (graph, circuit, layout, rng
// seed, trials) — StochasticSwapParallel produces bit-identical output.
func StochasticSwap(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials int) (*RouteResult, error) {
	return StochasticSwapParallel(g, c, initial, rng, trials, 1)
}

// StochasticSwapParallel is StochasticSwap with the per-layer randomized
// trials spread over a bounded worker pool. parallelism follows the
// par.Resolve convention (0 = auto/GOMAXPROCS, ≤1 = serial). The result is
// bit-identical to the serial pass for the same inputs: trial seeds are
// pre-drawn from rng, and the winning sequence is picked by (length,
// lowest trial index) independent of completion order.
func StochasticSwapParallel(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials, parallelism int) (*RouteResult, error) {
	return StochasticSwapCost(g, c, initial, rng, trials, parallelism, nil)
}

// StochasticSwapCost is StochasticSwapParallel with an explicit routing cost
// matrix: cost[i][j] replaces the hop distance between physical vertices i
// and j in the randomized trials' objective, so a profile-guided caller can
// price congested edges above idle ones (see EdgeProfile). A nil cost means
// uniform hop distances, which reproduces StochasticSwapParallel exactly —
// the default pipeline routes through this same code path byte-for-byte.
// The cost matrix only shapes the search; adjacency (when a gate can
// execute) and the greedy fallback still come from the coupling graph.
func StochasticSwapCost(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error) {
	if len(initial) != c.N {
		return nil, fmt.Errorf("transpile: layout covers %d qubits, circuit has %d", len(initial), c.N)
	}
	if err := initial.Validate(g); err != nil {
		return nil, err
	}
	if err := checkGatePairsReachable(g, c, initial); err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = DefaultTrials
	}
	flat, err := flattenCost(g, cost)
	if err != nil {
		return nil, err
	}
	r := &router{
		g:       g,
		dist:    g.Distances(),
		cost:    flat,
		out:     circuit.New(g.N()),
		layout:  initial.Copy(),
		rng:     rng,
		trials:  trials,
		workers: par.Resolve(parallelism),
	}
	for _, layer := range c.Layers() {
		var twoQ []circuit.Op
		var pairs [][2]int
		for _, idx := range layer {
			op := c.Ops[idx]
			if op.Is2Q() {
				twoQ = append(twoQ, op)
				pairs = append(pairs, [2]int{op.Qubits[0], op.Qubits[1]})
			} else {
				r.emit(op) // 1Q gates route trivially
			}
		}
		if len(pairs) == 0 {
			continue
		}
		if seq := r.findSwaps(pairs); seq != nil {
			r.applySwaps(seq)
			for _, op := range twoQ {
				r.emit(op)
			}
			continue
		}
		// Serial fallback: route and emit the layer one gate at a time.
		for i, op := range twoQ {
			single := [][2]int{pairs[i]}
			for !r.allAdjacent(single) {
				seq := r.findSwaps(single)
				if seq == nil {
					seq = r.greedyStep(pairs[i])
				}
				if len(seq) == 0 {
					return nil, fmt.Errorf("transpile: routing stuck on gate %v", op)
				}
				r.applySwaps(seq)
			}
			r.emit(op)
		}
	}
	return &RouteResult{Circuit: r.out, SwapCount: r.swaps, FinalLayout: r.layout}, nil
}

// router carries the mutable routing state. dist (hops) bounds search depth
// and drives the greedy fallback; cost (flattened n×n) is the objective the
// randomized trials perturb — float64 hop distances by default, a weighted
// matrix under profile-guided routing.
type router struct {
	g       *topology.Graph
	dist    [][]int
	cost    []float64
	out     *circuit.Circuit
	layout  Layout
	swaps   int
	rng     *rand.Rand
	trials  int
	workers int
	dPool   sync.Pool // perturbed-distance scratch for parallel trials
}

// flattenCost validates a routing cost matrix and flattens it row-major; a
// nil matrix falls back to the hop-distance matrix as floats (the uniform
// baseline the pipeline has always used).
func flattenCost(g *topology.Graph, cost [][]float64) ([]float64, error) {
	n := g.N()
	flat := make([]float64, n*n)
	if cost == nil {
		dist := g.Distances()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				flat[i*n+j] = float64(dist[i][j])
			}
		}
		return flat, nil
	}
	if len(cost) != n {
		return nil, fmt.Errorf("transpile: cost matrix is %dx?, graph has %d vertices", len(cost), n)
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("transpile: cost row %d has %d entries, want %d", i, len(row), n)
		}
		copy(flat[i*n:(i+1)*n], row)
	}
	return flat, nil
}

func (r *router) emit(op circuit.Op) {
	phys := make([]int, len(op.Qubits))
	for i, q := range op.Qubits {
		phys[i] = r.layout[q]
	}
	r.out.Append(circuit.Op{Name: op.Name, Qubits: phys, Params: op.Params, U: op.U})
}

func (r *router) applySwaps(seq [][2]int) {
	inv := r.layout.Inverse(r.g.N())
	for _, e := range seq {
		a, b := e[0], e[1]
		r.out.Swap(a, b)
		r.swaps++
		va, vb := inv[a], inv[b]
		if va >= 0 {
			r.layout[va] = b
		}
		if vb >= 0 {
			r.layout[vb] = a
		}
		inv[a], inv[b] = vb, va
	}
}

func (r *router) allAdjacent(pairs [][2]int) bool {
	for _, p := range pairs {
		if !r.g.HasEdge(r.layout[p[0]], r.layout[p[1]]) {
			return false
		}
	}
	return true
}

// greedyStep moves one endpoint of the pair a single hop along a shortest
// path toward the other endpoint.
func (r *router) greedyStep(p [2]int) [][2]int {
	a, b := r.layout[p[0]], r.layout[p[1]]
	for _, w := range r.g.Neighbors(a) {
		if r.dist[w][b] == r.dist[a][b]-1 {
			return [][2]int{{a, w}}
		}
	}
	return nil
}

// findSwaps runs randomized trials and returns the shortest SWAP sequence
// (list of physical edges, applied in order) that makes every pair adjacent,
// or nil if no trial succeeds within the depth limit.
//
// Every trial gets its own RNG seeded from the router's stream before any
// trial runs, and the winner is the minimum-length sequence with ties
// broken by lowest trial index. Both choices make the outcome independent
// of execution schedule, so the serial and worker-pool paths below are
// interchangeable bit-for-bit.
func (r *router) findSwaps(pairs [][2]int) [][2]int {
	if r.allAdjacent(pairs) {
		return [][2]int{}
	}
	n := r.g.N()
	limit := 2*n + 4*len(pairs)
	// Perturbation base: the router's cost matrix (hop distances as floats
	// by default, pressure-weighted under profile-guided routing).
	base := r.cost
	seeds := make([]int64, r.trials)
	for t := range seeds {
		seeds[t] = r.rng.Int63()
	}
	// runTrial perturbs distances into d (d' = d·(1 + 0.1|gauss|), symmetric
	// per unordered pair) and searches under them.
	runTrial := func(t int, d []float64) [][2]int {
		trng := rand.New(&splitmix64{state: uint64(seeds[t])})
		copy(d, base)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s := 1 + 0.1*absf(trng.NormFloat64())
				d[i*n+j] *= s
				d[j*n+i] = d[i*n+j]
			}
		}
		return r.trialSearch(pairs, d, limit)
	}
	if r.workers <= 1 {
		d := make([]float64, n*n)
		var best [][2]int
		for t := 0; t < r.trials; t++ {
			if seq := runTrial(t, d); seq != nil {
				if best == nil || len(seq) < len(best) {
					best = seq
				}
				if len(best) == 0 {
					break // can't beat an already-adjacent layer
				}
			}
		}
		return best
	}
	// Parallel path: trialSearch only reads router state (g, dist, layout),
	// so trials share nothing but their results slots. Distance scratch is
	// pooled across trials and layers instead of allocated per trial.
	results := make([][][2]int, r.trials)
	par.ForEach(r.trials, r.workers, func(t int) error {
		d, _ := r.dPool.Get().([]float64)
		if len(d) != n*n {
			d = make([]float64, n*n)
		}
		results[t] = runTrial(t, d)
		r.dPool.Put(d)
		return nil
	})
	var best [][2]int
	for _, seq := range results {
		if seq != nil && (best == nil || len(seq) < len(best)) {
			best = seq
		}
	}
	return best
}

// trialSearch greedily applies the cost-minimizing swap until every pair is
// adjacent, a local minimum is hit, or the depth limit is reached. Cost
// deltas are evaluated incrementally: a candidate swap only affects pairs
// with an endpoint on the swapped edge.
func (r *router) trialSearch(pairs [][2]int, d []float64, limit int) [][2]int {
	n := r.g.N()
	pos := make([][2]int, len(pairs)) // current physical endpoints per pair
	pairsAt := make([][]int, n)       // pair indices touching each vertex
	notAdj := 0
	for i, p := range pairs {
		pa, pb := r.layout[p[0]], r.layout[p[1]]
		pos[i] = [2]int{pa, pb}
		pairsAt[pa] = append(pairsAt[pa], i)
		pairsAt[pb] = append(pairsAt[pb], i)
		if !r.g.HasEdge(pa, pb) {
			notAdj++
		}
	}
	// movedTo maps a vertex to its post-swap replacement during delta
	// evaluation of a candidate edge.
	pairDelta := func(i, a, b int) float64 {
		remap := func(v int) int {
			switch v {
			case a:
				return b
			case b:
				return a
			}
			return v
		}
		oa, ob := pos[i][0], pos[i][1]
		return d[remap(oa)*n+remap(ob)] - d[oa*n+ob]
	}
	seen := make([]int, len(pairs))
	epoch := 0
	var seq [][2]int
	for step := 0; step < limit && notAdj > 0; step++ {
		bestDelta := -1e-12
		bestEdge := [2]int{-1, -1}
		for _, e := range r.g.Edges() {
			a, b := e[0], e[1]
			if len(pairsAt[a]) == 0 && len(pairsAt[b]) == 0 {
				continue
			}
			epoch++
			delta := 0.0
			for _, i := range pairsAt[a] {
				seen[i] = epoch
				delta += pairDelta(i, a, b)
			}
			for _, i := range pairsAt[b] {
				if seen[i] == epoch {
					continue
				}
				delta += pairDelta(i, a, b)
			}
			if delta < bestDelta {
				bestDelta = delta
				bestEdge = e
			}
		}
		if bestEdge[0] < 0 {
			break // local minimum under this perturbation
		}
		a, b := bestEdge[0], bestEdge[1]
		// Apply the swap to the trial state.
		epoch++
		touched := touchedPairs(pairsAt, a, b, seen, epoch)
		for _, i := range touched {
			if r.g.HasEdge(pos[i][0], pos[i][1]) {
				notAdj++
			}
			if pos[i][0] == a {
				pos[i][0] = b
			} else if pos[i][0] == b {
				pos[i][0] = a
			}
			if pos[i][1] == a {
				pos[i][1] = b
			} else if pos[i][1] == b {
				pos[i][1] = a
			}
			if r.g.HasEdge(pos[i][0], pos[i][1]) {
				notAdj--
			}
		}
		pairsAt[a], pairsAt[b] = rebuildAt(touched, pos, a), rebuildAt(touched, pos, b)
		seq = append(seq, bestEdge)
	}
	if notAdj > 0 {
		return nil
	}
	return seq
}

// touchedPairs returns the deduplicated pair indices with an endpoint at a
// or b.
func touchedPairs(pairsAt [][]int, a, b int, seen []int, epoch int) []int {
	var out []int
	for _, i := range pairsAt[a] {
		seen[i] = epoch
		out = append(out, i)
	}
	for _, i := range pairsAt[b] {
		if seen[i] != epoch {
			out = append(out, i)
		}
	}
	return out
}

// rebuildAt recomputes the pair list for vertex v among the touched pairs.
func rebuildAt(touched []int, pos [][2]int, v int) []int {
	var out []int
	for _, i := range touched {
		if pos[i][0] == v || pos[i][1] == v {
			out = append(out, i)
		}
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// splitmix64 is a tiny rand.Source64 with O(1) construction, used for the
// per-trial RNGs: the default math/rand source runs a 607-step seeding
// procedure, which dominated findSwaps on small topologies where one
// trial's whole perturbation pass is only a few hundred draws.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
