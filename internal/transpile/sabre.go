package transpile

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// SabreSwap routes with the SABRE lookahead heuristic (Li, Ding, Xie,
// ASPLOS'19): maintain the front layer of unsatisfied 2Q gates; when no gate
// is executable, apply the swap minimizing the summed front-layer distance
// plus a discounted extended-set (lookahead) term. Provided as the ablation
// comparison router for the StochasticSwap results (see bench_test.go).
func SabreSwap(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand) (*RouteResult, error) {
	return SabreSwapCost(g, c, initial, rng, nil)
}

// SabreSwapCost is SabreSwap with an explicit routing cost matrix replacing
// the hop distances in the front-layer and lookahead scores, so a
// profile-guided caller can price congested edges above idle ones (see
// EdgeProfile). A nil cost means uniform hop distances and reproduces
// SabreSwap exactly. The step budget and executability checks still come
// from the coupling graph itself.
func SabreSwapCost(g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, cost [][]float64) (*RouteResult, error) {
	return SabreSwapCostCtx(context.Background(), g, c, initial, rng, cost)
}

// SabreSwapCostCtx is SabreSwapCost with cooperative cancellation: ctx is
// polled once per execute-or-swap iteration of the main loop, so a
// deadline-bound cell stops within one stall's worth of scoring rather
// than routing the whole circuit. Cancellation never alters output.
func SabreSwapCostCtx(ctx context.Context, g *topology.Graph, c *circuit.Circuit, initial Layout, rng *rand.Rand, cost [][]float64) (*RouteResult, error) {
	if len(initial) != c.N {
		return nil, fmt.Errorf("transpile: layout covers %d qubits, circuit has %d", len(initial), c.N)
	}
	if err := initial.Validate(g); err != nil {
		return nil, err
	}
	if err := checkGatePairsReachable(g, c, initial); err != nil {
		return nil, err
	}
	const (
		extendedSize   = 20  // lookahead window (2Q gates)
		extendedWeight = 0.5 // discount on the lookahead term
	)
	dist := g.Distances()
	fcost, err := flattenCost(g, cost)
	if err != nil {
		return nil, err
	}
	nv := g.N()
	costAt := func(a, b int) float64 { return fcost[a*nv+b] }
	layout := initial.Copy()
	out := circuit.New(g.N())
	swaps := 0
	var arena intArena // backing storage for emitted ops' qubit slices

	// Dependency bookkeeping over the original op list.
	n := len(c.Ops)
	pred := make([]int, n) // unfinished predecessor count
	succ := make([][]int, n)
	lastOn := make([]int, c.N)
	for i := range lastOn {
		lastOn[i] = -1
	}
	for i, op := range c.Ops {
		for _, q := range op.Qubits {
			if j := lastOn[q]; j >= 0 {
				succ[j] = append(succ[j], i)
				pred[i]++
			}
			lastOn[q] = i
		}
	}
	done := make([]bool, n)
	var front []int
	for i := range c.Ops {
		if pred[i] == 0 {
			front = append(front, i)
		}
	}
	emit := func(idx int) []int {
		op := c.Ops[idx]
		phys := arena.take(len(op.Qubits))
		for i, q := range op.Qubits {
			phys[i] = layout[q]
		}
		out.Append(circuit.Op{Name: op.Name, Qubits: phys, Params: op.Params, U: op.U})
		done[idx] = true
		var unlocked []int
		for _, s := range succ[idx] {
			pred[s]--
			if pred[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		return unlocked
	}
	executable := func(idx int) bool {
		op := c.Ops[idx]
		if !op.Is2Q() {
			return true
		}
		return g.HasEdge(layout[op.Qubits[0]], layout[op.Qubits[1]])
	}
	// extendedSet walks successors of the front to build the lookahead set.
	// Its traversal buffers and visited marks are reused across stalls
	// (epoch-stamped, so no clearing); the walk order and resulting set are
	// unchanged.
	var extBuf [][2]int
	var queue []int
	seenOps := make([]int, n)
	seenEpoch := 0
	extendedSet := func() [][2]int {
		extBuf = extBuf[:0]
		queue = append(queue[:0], front...)
		seenEpoch++
		for head := 0; head < len(queue) && len(extBuf) < extendedSize; head++ {
			for _, s := range succ[queue[head]] {
				if seenOps[s] == seenEpoch || done[s] {
					continue
				}
				seenOps[s] = seenEpoch
				if op := c.Ops[s]; op.Is2Q() {
					extBuf = append(extBuf, [2]int{op.Qubits[0], op.Qubits[1]})
					if len(extBuf) >= extendedSize {
						break
					}
				}
				queue = append(queue, s)
			}
		}
		return extBuf
	}

	// Per-qubit decay discourages oscillating swap sequences (as in the
	// SABRE paper); it resets whenever a gate executes.
	decay := make([]float64, g.N())
	resetDecay := func() {
		for i := range decay {
			decay[i] = 1
		}
	}
	resetDecay()

	// Stall-branch scratch, reused across iterations: the physical qubits
	// of the front layer (epoch-stamped marks) and the physical→virtual
	// inverse of the layout.
	frontMark := make([]int, g.N())
	frontEpoch := 0
	inv := make([]int, g.N())
	guard := 0
	// Budget on the largest finite pairwise distance, not g.Diameter():
	// the graph-wide diameter is -1 on a disconnected graph even when
	// every gate routes inside one component (where routing is perfectly
	// well defined), which would zero the budget and fail every circuit.
	// The max finite distance bounds every component's diameter, and the
	// budget only needs an upper bound.
	diam := 0
	for _, row := range dist {
		for _, d := range row {
			if d > diam {
				diam = d
			}
		}
	}
	maxSteps := 10 * (len(c.Ops) + 1) * (diam + 1)
	for len(front) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if guard++; guard > maxSteps {
			return nil, fmt.Errorf("transpile: SABRE exceeded step budget")
		}
		// Execute everything executable.
		progress := false
		var stalled []int
		for len(front) > 0 {
			idx := front[0]
			front = front[1:]
			if executable(idx) {
				front = append(front, emit(idx)...)
				progress = true
			} else {
				stalled = append(stalled, idx)
			}
		}
		front = stalled
		if progress || len(front) == 0 {
			resetDecay()
			continue
		}
		// All front gates stalled: choose the best swap among edges touching
		// front-layer qubits.
		ext := extendedSet()
		bestScore := 0.0
		var best [][2]int
		frontEpoch++
		for _, idx := range front {
			for _, q := range c.Ops[idx].Qubits {
				frontMark[layout[q]] = frontEpoch
			}
		}
		score := func() float64 {
			s := 0.0
			for _, idx := range front {
				op := c.Ops[idx]
				s += costAt(layout[op.Qubits[0]], layout[op.Qubits[1]])
			}
			s /= float64(len(front))
			if len(ext) > 0 {
				e := 0.0
				for _, p := range ext {
					e += costAt(layout[p[0]], layout[p[1]])
				}
				s += extendedWeight * e / float64(len(ext))
			}
			return s
		}
		layout.InverseInto(inv)
		for _, e := range g.Edges() {
			if frontMark[e[0]] != frontEpoch && frontMark[e[1]] != frontEpoch {
				continue
			}
			va, vb := inv[e[0]], inv[e[1]]
			// Tentative swap.
			if va >= 0 {
				layout[va] = e[1]
			}
			if vb >= 0 {
				layout[vb] = e[0]
			}
			s := score() * maxf(decay[e[0]], decay[e[1]])
			if va >= 0 {
				layout[va] = e[0]
			}
			if vb >= 0 {
				layout[vb] = e[1]
			}
			if best == nil || s < bestScore-1e-12 {
				bestScore = s
				best = [][2]int{e}
			} else if s < bestScore+1e-12 {
				best = append(best, e)
			}
		}
		if best == nil {
			return nil, fmt.Errorf("transpile: SABRE found no candidate swap")
		}
		chosen := best[rng.Intn(len(best))]
		sq := arena.take(2)
		sq[0], sq[1] = chosen[0], chosen[1]
		out.Append(circuit.Op{Name: "swap", Qubits: sq})
		swaps++
		decay[chosen[0]] += 0.001
		decay[chosen[1]] += 0.001
		va, vb := inv[chosen[0]], inv[chosen[1]]
		if va >= 0 {
			layout[va] = chosen[1]
		}
		if vb >= 0 {
			layout[vb] = chosen[0]
		}
	}
	return &RouteResult{Circuit: out, SwapCount: swaps, FinalLayout: layout}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
