package transpile

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// pipelineContext builds a PassContext over a machine description and a
// deterministic workload circuit.
func pipelineContext(t *testing.T, g *topology.Graph, b weyl.Basis, workload string, width int, seed int64) *PassContext {
	t.Helper()
	c, err := workloads.Generate(workload, width, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &PassContext{Graph: g, Basis: b, Circuit: c, Seed: seed, Trials: 5}
}

// twoComponents is a 6-vertex graph split into two 3-vertex paths.
func twoComponents() *topology.Graph {
	g := topology.NewGraph("two-components", 6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	return g
}

func TestLayoutPassDisconnectedGraphErrors(t *testing.T) {
	// A 4-qubit circuit cannot be placed on a graph whose largest
	// connected component holds 3 vertices; the pass must surface
	// DenseLayout's descriptive error, not a bogus cross-component layout.
	ctx := pipelineContext(t, twoComponents(), weyl.BasisCX, "GHZ", 4, 7)
	err := LayoutPass{}.Apply(ctx)
	if err == nil {
		t.Fatal("layout pass accepted a disconnected graph")
	}
	if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("error %q does not name the disconnection", err)
	}
	if ctx.Layout != nil {
		t.Fatal("failed pass left a layout behind")
	}
}

func TestPipelineRunStopsAtFailingPass(t *testing.T) {
	ctx := pipelineContext(t, twoComponents(), weyl.BasisCX, "GHZ", 4, 7)
	pipe := Pipeline{LayoutPass{}, RoutePass{}, TranslatePass{}}
	err := pipe.Run(ctx)
	if err == nil {
		t.Fatal("pipeline succeeded on a disconnected graph")
	}
	if !strings.Contains(err.Error(), "layout pass") {
		t.Fatalf("error %q does not name the failing pass", err)
	}
	if len(ctx.Timings) != 0 {
		t.Fatalf("failed first pass recorded %d timings", len(ctx.Timings))
	}
}

func TestRoutePassRequiresLayout(t *testing.T) {
	ctx := pipelineContext(t, topology.Tree20(), weyl.BasisSqrtISwap, "GHZ", 8, 3)
	if err := (RoutePass{}).Apply(ctx); err == nil {
		t.Fatal("route pass ran without a layout")
	}
}

func TestProfileAndReweightPassesRequireUpstreamArtifacts(t *testing.T) {
	ctx := pipelineContext(t, topology.Tree20(), weyl.BasisSqrtISwap, "GHZ", 8, 3)
	if err := (ProfilePass{}).Apply(ctx); err == nil {
		t.Fatal("profile pass ran without a routed circuit")
	}
	if err := (ReweightPass{}).Apply(ctx); err == nil {
		t.Fatal("reweight pass ran without a profile")
	}
	if err := (ProfileGuidedPass{}).Apply(ctx); err == nil {
		t.Fatal("profile-guided pass ran without a pilot routing")
	}
	if err := (TranslatePass{}).Apply(ctx); err == nil {
		t.Fatal("translate pass ran without a routed circuit")
	}
	if err := (PeepholePass{}).Apply(ctx); err == nil {
		t.Fatal("peephole pass ran without any circuit")
	}
}

// TestTranslatePassPreservesFingerprint pins the translation pass's
// contract: the routed circuit it reads is byte-untouched (its unitary
// fingerprint is preserved exactly), the translated output is fingerprint-
// deterministic across runs, and its gate content is exactly what the KAK
// counting rules prescribe — 1Q ops pass through, every 2Q op becomes
// basis-gate applications (translation's interleaved u3 frames are
// placeholders, so full statevector equality is deliberately not claimed).
func TestTranslatePassPreservesFingerprint(t *testing.T) {
	g := topology.SquareLattice16()
	run := func() (*PassContext, uint64) {
		ctx := pipelineContext(t, g, weyl.BasisSqrtISwap, "QFT", 6, 11)
		pipe := Pipeline{LayoutPass{}, RoutePass{}}
		if err := pipe.Run(ctx); err != nil {
			t.Fatal(err)
		}
		before := ctx.Routed.Circuit.Fingerprint()
		if err := (TranslatePass{}).Apply(ctx); err != nil {
			t.Fatal(err)
		}
		if after := ctx.Routed.Circuit.Fingerprint(); after != before {
			t.Fatalf("translation mutated its input: fingerprint %d -> %d", before, after)
		}
		return ctx, before
	}
	a, fpA := run()
	b, fpB := run()
	if fpA != fpB {
		t.Fatalf("routing not deterministic: input fingerprints %d vs %d", fpA, fpB)
	}
	if a.Translated.Fingerprint() != b.Translated.Fingerprint() {
		t.Fatal("translated output fingerprint not deterministic")
	}
	// Structural contract: only basis gates and 1Q ops remain, and the
	// basis-gate total matches the count-only fast path.
	want2Q, err := Count2QForBasis(a.Routed.Circuit, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	got2Q := 0
	for _, op := range a.Translated.Ops {
		if op.Is2Q() {
			if op.Name != "siswap" {
				t.Fatalf("translated circuit contains non-basis 2Q gate %s", op.Name)
			}
			got2Q++
		}
	}
	if got2Q != want2Q {
		t.Fatalf("translated 2Q count %d, Count2QForBasis says %d", got2Q, want2Q)
	}
}

// TestProfilePassDeterministic pins measurement determinism: routing the
// same circuit with the same seed twice and profiling both yields
// identical per-edge counts.
func TestProfilePassDeterministic(t *testing.T) {
	g := topology.Corral11()
	measure := func() *EdgeProfile {
		ctx := pipelineContext(t, g, weyl.BasisSqrtISwap, "QuantumVolume", 12, 17)
		pipe := Pipeline{LayoutPass{}, RoutePass{}, ProfilePass{}}
		if err := pipe.Run(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Profile
	}
	a, b := measure(), measure()
	if a.Total() != b.Total() {
		t.Fatalf("profile totals diverge: %d vs %d", a.Total(), b.Total())
	}
	for _, e := range g.Edges() {
		if a.Count(e[0], e[1]) != b.Count(e[0], e[1]) {
			t.Fatalf("edge %v count diverges: %d vs %d", e, a.Count(e[0], e[1]), b.Count(e[0], e[1]))
		}
	}
	if a.Total() == 0 {
		t.Fatal("QV-12 on the corral routed with zero SWAPs — profile test is vacuous")
	}
}

// TestPipelineRecordsTimings checks each executed pass lands one ordered
// timing entry.
func TestPipelineRecordsTimings(t *testing.T) {
	ctx := pipelineContext(t, topology.Tree20(), weyl.BasisSqrtISwap, "QFT", 8, 5)
	pipe := Pipeline{LayoutPass{}, RoutePass{}, ProfilePass{}, ReweightPass{}, TranslatePass{}, PeepholePass{}}
	if err := pipe.Run(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{"layout", "route", "profile", "reweight", "translate", "peephole"}
	if len(ctx.Timings) != len(want) {
		t.Fatalf("got %d timings, want %d", len(ctx.Timings), len(want))
	}
	for i, pt := range ctx.Timings {
		if pt.Name != want[i] {
			t.Errorf("timing %d is %q, want %q", i, pt.Name, want[i])
		}
		if pt.Duration < 0 {
			t.Errorf("pass %q has negative duration", pt.Name)
		}
	}
}

// TestPeepholePassSimplifiesTranslated checks the peephole stage slots in
// after translation and never grows the circuit.
func TestPeepholePassSimplifiesTranslated(t *testing.T) {
	ctx := pipelineContext(t, topology.SquareLattice16(), weyl.BasisSqrtISwap, "QFT", 8, 5)
	pipe := Pipeline{LayoutPass{}, RoutePass{}, TranslatePass{}}
	if err := pipe.Run(ctx); err != nil {
		t.Fatal(err)
	}
	before := len(ctx.Translated.Ops)
	if err := (PeepholePass{}).Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if after := len(ctx.Translated.Ops); after > before {
		t.Fatalf("peephole grew the circuit: %d -> %d ops", before, after)
	}
}

// TestProfileGuidedPassKeepsCheapest is the keep-cheapest invariant at the
// pass level: after the pass, induced SWAPs never exceed the pilot's, for
// any iteration bound.
func TestProfileGuidedPassKeepsCheapest(t *testing.T) {
	for _, iters := range []int{1, 2, 3, 5} {
		ctx := pipelineContext(t, topology.Corral11(), weyl.BasisSqrtISwap, "QuantumVolume", 14, 29)
		pipe := Pipeline{LayoutPass{}, RoutePass{}}
		if err := pipe.Run(ctx); err != nil {
			t.Fatal(err)
		}
		pilotSwaps := ctx.Routed.SwapCount
		if err := (ProfileGuidedPass{Iterations: iters}).Apply(ctx); err != nil {
			t.Fatal(err)
		}
		if ctx.Routed.SwapCount > pilotSwaps {
			t.Fatalf("iterations=%d: guided swaps %d exceed pilot %d", iters, ctx.Routed.SwapCount, pilotSwaps)
		}
		if ctx.Profile == nil || ctx.Profile.Total() == 0 {
			t.Fatalf("iterations=%d: pilot profile missing or empty", iters)
		}
	}
}
