package transpile

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/sim"
)

// DefaultVerifyTol is the fidelity slack VerifyPass allows for float64
// rounding across the two simulations.
const DefaultVerifyTol = 1e-9

// VerifyPass simulates the logical circuit and the routed circuit on the
// fused statevector engine and fails the pipeline unless they agree (up to
// global phase and the final-layout qubit permutation). It turns a silent
// routing bug — a dropped SWAP, a bad layout update — into a loud pipeline
// error instead of a wrong paper metric.
//
// The routed circuit lives on the machine's full vertex set, so it is
// first compacted to the qubits it actually touches; verification is
// feasible whenever that count (≥ the circuit width, + SWAP traffic) stays
// within sim.MaxQubits. Wider routings fail with a descriptive error —
// this pass is an opt-in debugging/assurance tool (core.Options.Verify),
// not part of the default pipeline, and it does not alter any artifact:
// metrics with and without it are identical, which is why Evaluate caches
// may share entries across the two modes.
type VerifyPass struct {
	Tol float64 // fidelity tolerance; ≤ 0 → DefaultVerifyTol
}

// Name implements Pass.
func (VerifyPass) Name() string { return "verify" }

// Apply implements Pass.
func (p VerifyPass) Apply(ctx *PassContext) error {
	if ctx.Routed == nil {
		return fmt.Errorf("no routed circuit (run a route pass first)")
	}
	tol := p.Tol
	if tol <= 0 {
		tol = DefaultVerifyTol
	}
	logical := ctx.Circuit
	if logical.N > sim.MaxQubits {
		return fmt.Errorf("circuit is %d qubits wide; verification simulates at most %d", logical.N, sim.MaxQubits)
	}
	compact, mapping := ctx.Routed.Circuit.CompactQubits()
	if compact.N > sim.MaxQubits {
		return fmt.Errorf("routed circuit touches %d physical qubits; verification simulates at most %d", compact.N, sim.MaxQubits)
	}
	// The two simulations dominate this pass's wall-clock, so they carry
	// the pipeline's cancellation context into their per-sweep polls.
	want, err := sim.RunCircuitCtx(ctx.context(), logical)
	if err != nil {
		return fmt.Errorf("simulating logical circuit: %w", err)
	}
	got, err := sim.RunCircuitCtx(ctx.context(), compact)
	if err != nil {
		return fmt.Errorf("simulating routed circuit: %w", err)
	}
	// Scatter the logical amplitudes to their physical homes: virtual q
	// ends at physical FinalLayout[q], which the compaction relabeled to
	// mapping[FinalLayout[q]]. A virtual qubit whose physical home no op
	// ever touched must be |0⟩ in the logical result (it had no gates), so
	// any |1⟩ mass there is itself a mismatch.
	expected, err := sim.NewState(compact.N)
	if err != nil {
		return err
	}
	for i := range expected.Amp {
		expected.Amp[i] = 0
	}
	layout := ctx.Routed.FinalLayout
	for idx, a := range want.Amp {
		if a == 0 {
			continue
		}
		cidx := 0
		lost := false
		for q := 0; q < logical.N; q++ {
			if (idx>>(logical.N-1-q))&1 == 0 {
				continue
			}
			cp := mapping[layout[q]]
			if cp < 0 {
				lost = true
				break
			}
			cidx |= 1 << (compact.N - 1 - cp)
		}
		if lost {
			return fmt.Errorf("verification failed: logical state has |1⟩ mass on a qubit the routed circuit never touches")
		}
		expected.Amp[cidx] = a
	}
	ip, err := expected.Inner(got)
	if err != nil {
		return err
	}
	if f := cmplx.Abs(ip); math.Abs(f-1) > tol {
		return fmt.Errorf("verification failed: |⟨expected|routed⟩| = %.12f (routed circuit does not implement the logical circuit)", f)
	}
	return nil
}
