package transpile

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// EdgeProfile records per-edge SWAP pressure observed during a pilot
// routing pass: how many SWAPs the router placed on each physical coupling.
// On the SNAIL machines the pressure is strongly non-uniform — the corral
// fence links and the tree root links concentrate traffic while perimeter
// edges sit idle — which is exactly the information the uniform hop-distance
// cost matrices of DenseLayout/StochasticSwap/SABRE throw away. Feeding the
// profile back as edge weights (Weights) lets a second pass price congested
// links above idle ones and steer traffic off them.
type EdgeProfile struct {
	g      *topology.Graph
	index  map[[2]int]int // (low, high) physical pair -> edge index
	counts []int          // SWAPs observed per edge, parallel to g.Edges()
	total  int
}

// NewEdgeProfile returns an empty profile over g's edges.
func NewEdgeProfile(g *topology.Graph) *EdgeProfile {
	idx := make(map[[2]int]int, g.NumEdges())
	for i, e := range g.Edges() {
		idx[e] = i
	}
	return &EdgeProfile{
		g:      g,
		index:  idx,
		counts: make([]int, g.NumEdges()),
	}
}

// RecordSwap adds one SWAP on the physical edge (a, b). Unknown pairs are an
// error: a SWAP can only ever execute on a coupling that exists.
func (p *EdgeProfile) RecordSwap(a, b int) error {
	if a > b {
		a, b = b, a
	}
	i, ok := p.index[[2]int{a, b}]
	if !ok {
		return fmt.Errorf("transpile: profiled swap on (%d,%d), not an edge of %s", a, b, p.g.Name)
	}
	p.counts[i]++
	p.total++
	return nil
}

// Count returns the recorded SWAPs on edge (a, b), 0 for non-edges.
func (p *EdgeProfile) Count(a, b int) int {
	if a > b {
		a, b = b, a
	}
	if i, ok := p.index[[2]int{a, b}]; ok {
		return p.counts[i]
	}
	return 0
}

// Total returns the total recorded SWAP count.
func (p *EdgeProfile) Total() int { return p.total }

// MaxCount returns the largest per-edge count (0 for an empty profile).
func (p *EdgeProfile) MaxCount() int {
	m := 0
	for _, c := range p.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// ProfileRoutedCircuit builds a profile from an already-routed physical
// circuit by counting its SWAP ops per edge. Both router-inserted and
// algorithmic SWAPs contribute: every SWAP pulse stresses the link it runs
// on, whichever pass put it there.
func ProfileRoutedCircuit(g *topology.Graph, routed *circuit.Circuit) (*EdgeProfile, error) {
	p := NewEdgeProfile(g)
	for _, op := range routed.Ops {
		if op.Name != "swap" || len(op.Qubits) != 2 {
			continue
		}
		if err := p.RecordSwap(op.Qubits[0], op.Qubits[1]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// DefaultPressureAlpha scales how strongly pressure inflates edge costs in
// Weights: the hottest edge costs (1 + alpha)× a cold one. 1.0 makes the
// most congested link read twice as long without distorting the metric so
// far that shortest paths detour around whole regions.
const DefaultPressureAlpha = 1.0

// Weights converts recorded pressure into routing edge weights:
//
//	w(e) = 1 + alpha * count(e) / maxCount
//
// so an idle edge keeps unit cost and the hottest edge costs 1+alpha. An
// empty profile (or alpha ≤ 0) degrades to uniform weights, under which the
// weighted cost matrix equals the hop matrix and a guided pass reproduces
// the baseline.
func (p *EdgeProfile) Weights(alpha float64) topology.EdgeWeights {
	w := p.g.UniformWeights()
	m := p.MaxCount()
	if m == 0 || alpha <= 0 {
		return w
	}
	for i, c := range p.counts {
		w[i] = 1 + alpha*float64(c)/float64(m)
	}
	return w
}
