package transpile

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// TestRoutersReturnCtxErrWhenCancelled: both routers notice an
// already-dead context at their cooperative polls and surface ctx.Err()
// itself, so a timed-out cell reports deadline exceeded — not a synthetic
// routing failure.
func TestRoutersReturnCtxErrWhenCancelled(t *testing.T) {
	g := topology.HeavyHex20()
	c, err := workloads.Generate("QFT", 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StochasticSwapCostCtx(ctx, g, c, layout, rand.New(rand.NewSource(1)), 5, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("stochastic router under dead ctx = %v, want context.Canceled", err)
	}
	if _, err := SabreSwapCostCtx(ctx, g, c, layout, rand.New(rand.NewSource(1)), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SABRE under dead ctx = %v, want context.Canceled", err)
	}
}

// TestPipelineCtxAbortsBetweenPasses: a pipeline whose PassContext carries
// a dead context stops before running any pass and returns the context
// error undecorated.
func TestPipelineCtxAbortsBetweenPasses(t *testing.T) {
	g := topology.HeavyHex20()
	pctx := pipelineContext(t, g, weyl.BasisCX, "GHZ", 4, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pctx.Ctx = ctx
	err := Pipeline{LayoutPass{}, RoutePass{}, TranslatePass{}}.Run(pctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pipeline under dead ctx = %v, want context.Canceled", err)
	}
	if pctx.Layout != nil || pctx.Routed != nil {
		t.Fatal("cancelled pipeline still produced artifacts")
	}
}

// TestCtxNeverChangesOutput pins the invariant the evaluate cache keys rely
// on: a run that completes under a live context is byte-identical to one
// with no context at all.
func TestCtxNeverChangesOutput(t *testing.T) {
	g := topology.HeavyHex20()
	c, err := workloads.Generate("QFT", 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := StochasticSwapCost(g, c, layout, rand.New(rand.NewSource(9)), 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := StochasticSwapCostCtx(context.Background(), g, c, layout, rand.New(rand.NewSource(9)), 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SwapCount != withCtx.SwapCount || plain.Circuit.String() != withCtx.Circuit.String() {
		t.Fatal("context-threaded routing diverged from the plain path")
	}
}
