package transpile

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/weyl"
)

// HeteroChoice records which pulse the heterogeneous translator picked for
// a gate class.
type HeteroChoice struct {
	Basis weyl.Basis
	Count int
}

// duration of a choice in iSWAP pulse units.
func (h HeteroChoice) Duration() float64 {
	return float64(h.Count) * h.Basis.Duration()
}

// chooseHetero picks the duration-minimal option between the SNAIL's full
// iSWAP pulse and its half-length √iSWAP pulse for one gate class, breaking
// ties toward fewer gate instances (fewer control-error events, paper
// §3.1's gate-count figure of merit).
func chooseHetero(c weyl.Coord) HeteroChoice {
	full := HeteroChoice{Basis: weyl.BasisISwap, Count: weyl.BasisISwap.NumGates(c)}
	half := HeteroChoice{Basis: weyl.BasisSqrtISwap, Count: weyl.BasisSqrtISwap.NumGates(c)}
	if full.Duration() < half.Duration() {
		return full
	}
	if half.Duration() < full.Duration() {
		return half
	}
	if full.Count <= half.Count {
		return full
	}
	return half
}

// TranslateHetero is the paper's §7 "heterogeneous basis gates" extension:
// the SNAIL realizes every n√iSWAP with pulse length ∝ 1/n, so each
// two-qubit gate may independently choose the pulse that minimizes its
// duration. With the two analytically-counted family members (iSWAP and
// √iSWAP) this keeps √iSWAP for generic gates but implements iSWAP-class
// gates — such as the router's exchange operations — as a single full
// pulse instead of two half pulses.
func TranslateHetero(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.N)
	cache := make(map[string]HeteroChoice)
	for _, op := range c.Ops {
		if !op.Is2Q() {
			out.Append(op)
			continue
		}
		choice, err := heteroFor(op, cache)
		if err != nil {
			return nil, err
		}
		q0, q1 := op.Qubits[0], op.Qubits[1]
		if choice.Count == 0 {
			out.U3(q0, 0, 0, 0)
			out.U3(q1, 0, 0, 0)
			continue
		}
		name, err := basisGateName(choice.Basis)
		if err != nil {
			return nil, err
		}
		for i := 0; i < choice.Count; i++ {
			out.U3(q0, 0, 0, 0)
			out.U3(q1, 0, 0, 0)
			out.Append(circuit.Op{Name: name, Qubits: []int{q0, q1}})
		}
		out.U3(q0, 0, 0, 0)
		out.U3(q1, 0, 0, 0)
	}
	return out, nil
}

func heteroFor(op circuit.Op, cache map[string]HeteroChoice) (HeteroChoice, error) {
	key := ""
	if op.U == nil {
		key = fmt.Sprintf("%s|%v", op.Name, op.Params)
		if h, ok := cache[key]; ok {
			return h, nil
		}
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return HeteroChoice{}, err
	}
	coord, err := weyl.Coordinates(u)
	if err != nil {
		return HeteroChoice{}, fmt.Errorf("transpile: classifying %s: %w", op.Name, err)
	}
	h := chooseHetero(coord)
	if key != "" {
		cache[key] = h
	}
	return h, nil
}

// HeteroPulseDuration is the duration-weighted critical path of a
// heterogeneously translated circuit (iSWAP = 1.0, √iSWAP = 0.5, 1Q free):
// PulseDurationTable under the default timing table, which carries both
// pulse lengths of the SNAIL's gate family.
func HeteroPulseDuration(c *circuit.Circuit) float64 {
	return PulseDurationTable(c, arch.DefaultTiming())
}
