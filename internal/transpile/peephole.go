package transpile

import (
	"repro/internal/circuit"
	"repro/internal/linalg"
)

// Peephole applies local circuit simplifications:
//
//   - adjacent single-qubit gates on the same qubit merge into one explicit
//     unitary (emitted as a "u" op, or dropped if the product is identity
//     up to phase);
//   - adjacent identical self-inverse two-qubit gates cancel (cx·cx with
//     matching orientation, cz·cz, swap·swap), including cascades exposed
//     by earlier cancellations.
//
// The result is semantically equal to the input up to global phase. This is
// the clean-up pass a production transpiler runs after basis translation
// (where interleaved 1Q frames often multiply to identity).
func Peephole(c *circuit.Circuit) (*circuit.Circuit, error) {
	type emitted struct {
		op      circuit.Op
		deleted bool
	}
	var out []emitted
	// Per-qubit stack of indices into out for 2Q ops (cancellation lookback)
	// and pending accumulated 1Q unitaries.
	stacks := make([][]int, c.N)
	pending := make([]*linalg.Matrix, c.N)

	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		if !isIdentity2(pending[q]) {
			out = append(out, emitted{op: circuit.Op{Name: "u", Qubits: []int{q}, U: pending[q]}})
			// 1Q ops sit between 2Q ops, blocking cancellation across them.
			stacks[q] = append(stacks[q], len(out)-1)
		}
		pending[q] = nil
	}
	selfInverse := map[string]bool{"cx": true, "cz": true, "swap": true}
	orientationFree := map[string]bool{"cz": true, "swap": true}

	for _, op := range c.Ops {
		if !op.Is2Q() {
			q := op.Qubits[0]
			u, err := circuit.Unitary(op)
			if err != nil {
				return nil, err
			}
			if pending[q] == nil {
				pending[q] = u
			} else {
				pending[q] = u.Mul(pending[q])
			}
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		// Try cancellation: both qubits' last emitted op must be the same
		// not-yet-deleted instance of the same self-inverse gate.
		if selfInverse[op.Name] && pending[a] == nil && pending[b] == nil {
			sa, sb := stacks[a], stacks[b]
			if len(sa) > 0 && len(sb) > 0 && sa[len(sa)-1] == sb[len(sb)-1] {
				idx := sa[len(sa)-1]
				prev := out[idx]
				if !prev.deleted && prev.op.Name == op.Name && prev.op.Is2Q() {
					match := prev.op.Qubits[0] == a && prev.op.Qubits[1] == b
					if orientationFree[op.Name] {
						match = match || (prev.op.Qubits[0] == b && prev.op.Qubits[1] == a)
					}
					if match {
						out[idx].deleted = true
						stacks[a] = sa[:len(sa)-1]
						stacks[b] = sb[:len(sb)-1]
						continue
					}
				}
			}
		}
		flush(a)
		flush(b)
		out = append(out, emitted{op: op})
		stacks[a] = append(stacks[a], len(out)-1)
		stacks[b] = append(stacks[b], len(out)-1)
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	res := circuit.New(c.N)
	for _, e := range out {
		if !e.deleted {
			res.Append(e.op)
		}
	}
	return res, nil
}
