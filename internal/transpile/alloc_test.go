package transpile

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestRouterTrialAllocs is the allocation regression guard for the routing
// hot loop: once a router's scratch is warm, a full findSwaps round — N
// perturbation-pass trials plus the greedy searches — must be (near)
// allocation-free. This is what keeps the O(trials·layers) inner loop of
// every sweep from re-making O(n²) state; see routerScratch.
func TestRouterTrialAllocs(t *testing.T) {
	g := topology.Hypercube84()
	c, err := workloads.Generate("QuantumVolume", 16, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := flattenCost(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &router{
		g:       g,
		dist:    g.Distances(),
		cost:    flat,
		layout:  layout.Copy(),
		rng:     rand.New(rand.NewSource(4)),
		trials:  5,
		workers: 1,
	}
	// One non-adjacent pair under the dense layout (virtual endpoints far
	// apart keep findSwaps from returning the trivial empty sequence).
	pairs := [][2]int{{0, 15}}
	if r.allAdjacent(pairs) {
		t.Fatal("test pair is already adjacent; pick different endpoints")
	}
	if seq := r.findSwaps(pairs); seq == nil {
		t.Fatal("warm-up findSwaps failed to route the pair")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if seq := r.findSwaps(pairs); seq == nil {
			t.Fatal("findSwaps failed inside the guard")
		}
	})
	// The steady state is fully scratch-backed; allow a stray allocation
	// of slack for map/runtime noise rather than flaking.
	if allocs > 1 {
		t.Errorf("findSwaps allocates %.1f times per round; want ≤ 1 (scratch reuse regressed)", allocs)
	}
}
