package transpile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

func statesEqualUpToPhase(t *testing.T, a, b *sim.State) bool {
	t.Helper()
	ip, err := a.Inner(b)
	if err != nil {
		t.Fatal(err)
	}
	return math.Abs(cmplx.Abs(ip)-1) < 1e-9
}

func TestPeepholeCancelsSelfInversePairs(t *testing.T) {
	c := circuit.New(3)
	c.CX(0, 1)
	c.CX(0, 1)
	c.CZ(1, 2)
	c.CZ(2, 1) // orientation-free cancellation
	c.Swap(0, 2)
	c.Swap(0, 2)
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 0 {
		t.Fatalf("expected empty circuit, got %d ops:\n%s", len(opt.Ops), opt)
	}
}

func TestPeepholeRespectsOrientation(t *testing.T) {
	// cx(0,1)·cx(1,0) is NOT identity.
	c := circuit.New(2)
	c.CX(0, 1)
	c.CX(1, 0)
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountTwoQubit() != 2 {
		t.Fatalf("orientation-mismatched CXs cancelled: %s", opt)
	}
}

func TestPeepholeBlockedByIntervening1Q(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.H(0) // blocks cancellation
	c.CX(0, 1)
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountTwoQubit() != 2 {
		t.Fatalf("cancelled across a blocking 1Q gate:\n%s", opt)
	}
	// But a 1Q gate on an unrelated qubit must not block.
	c2 := circuit.New(3)
	c2.CX(0, 1)
	c2.H(2)
	c2.CX(0, 1)
	opt2, err := Peephole(c2)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.CountTwoQubit() != 0 {
		t.Fatalf("unrelated 1Q gate blocked cancellation:\n%s", opt2)
	}
}

func TestPeepholeCascade(t *testing.T) {
	// cx swap swap cx collapses completely.
	c := circuit.New(2)
	c.CX(0, 1)
	c.Swap(0, 1)
	c.Swap(0, 1)
	c.CX(0, 1)
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 0 {
		t.Fatalf("cascade not collapsed:\n%s", opt)
	}
}

func TestPeepholeMerges1QRuns(t *testing.T) {
	c := circuit.New(1)
	c.H(0)
	c.T(0)
	c.T(0)
	c.Sdg(0)
	c.H(0) // total: H T T S† H = H S S† H = identity
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 0 {
		t.Fatalf("identity 1Q run not dropped:\n%s", opt)
	}
	// Non-identity runs merge to a single gate.
	c2 := circuit.New(1)
	c2.H(0)
	c2.T(0)
	opt2, err := Peephole(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt2.Ops) != 1 {
		t.Fatalf("1Q run not merged: %d ops", len(opt2.Ops))
	}
}

func TestPeepholeSemanticsRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := circuit.New(n)
		for i := 0; i < 30; i++ {
			switch rng.Intn(5) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				c.T(rng.Intn(n))
			case 2:
				c.RZ(rng.Intn(n), rng.Float64())
			default:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				switch rng.Intn(3) {
				case 0:
					c.CX(a, b)
				case 1:
					c.CZ(a, b)
				default:
					c.Swap(a, b)
				}
			}
		}
		opt, err := Peephole(c)
		if err != nil {
			return false
		}
		if len(opt.Ops) > len(c.Ops) {
			return false
		}
		want, err := sim.RunCircuit(c)
		if err != nil {
			return false
		}
		got, err := sim.RunCircuit(opt)
		if err != nil {
			return false
		}
		ip, err := want.Inner(got)
		if err != nil {
			return false
		}
		return math.Abs(cmplx.Abs(ip)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPeepholeCleansTranslationPlaceholders(t *testing.T) {
	// Counting-mode translation emits identity u3 placeholders; peephole
	// must strip them all without touching the basis gates.
	c := workloads.GHZ(6)
	tr, err := TranslateToBasis(c, weyl.BasisSqrtISwap)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Peephole(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.CountByName("u3") + opt.CountByName("u"); got != 1 {
		// Only the initial H survives (as one merged 1Q gate).
		t.Errorf("placeholders not cleaned: %d 1Q ops remain", got)
	}
	if opt.CountTwoQubit() != tr.CountTwoQubit() {
		t.Error("peephole changed basis-gate count")
	}
}
