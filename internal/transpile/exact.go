package transpile

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/weyl"
)

// TranslateExactCX rewrites every two-qubit gate into the minimal exact
// CX-basis circuit (via weyl.SynthesizeCX), preserving the circuit's
// semantics up to global phase — unlike TranslateToBasis, whose interleaved
// 1Q gates are placeholders for counting. Single-qubit ops pass through.
// Synthesized 1Q gates carry explicit unitaries under the name "u".
func TranslateExactCX(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.N)
	cache := make(map[string]*weyl.Synthesis)
	for _, op := range c.Ops {
		if !op.Is2Q() {
			out.Append(op)
			continue
		}
		syn, err := synthFor(op, cache)
		if err != nil {
			return nil, err
		}
		q0, q1 := op.Qubits[0], op.Qubits[1]
		for _, g := range syn.Gates {
			if g.CX {
				out.CX(q0, q1)
				continue
			}
			if !isIdentity2(g.L) {
				out.Append(circuit.Op{Name: "u", Qubits: []int{q0}, U: g.L})
			}
			if !isIdentity2(g.R) {
				out.Append(circuit.Op{Name: "u", Qubits: []int{q1}, U: g.R})
			}
		}
	}
	return out, nil
}

func synthFor(op circuit.Op, cache map[string]*weyl.Synthesis) (*weyl.Synthesis, error) {
	key := ""
	if op.U == nil {
		key = fmt.Sprintf("%s|%v", op.Name, op.Params)
		if s, ok := cache[key]; ok {
			return s, nil
		}
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return nil, err
	}
	syn, err := weyl.SynthesizeCX(u)
	if err != nil {
		return nil, fmt.Errorf("transpile: synthesizing %s: %w", op.Name, err)
	}
	if key != "" {
		cache[key] = syn
	}
	return syn, nil
}

func isIdentity2(m *linalg.Matrix) bool {
	return m.EqualUpToPhase(linalg.Identity(2), 1e-10)
}
