// Package transpile implements the paper's transpilation flow (Fig. 10):
// initial placement (DenseLayout), SWAP routing (StochasticSwap, with a
// SABRE-style router for ablation), and KAK-driven basis translation, plus
// the four-dataset metrics collection the paper reports (total and
// critical-path SWAPs before translation; total 2Q gates and pulse duration
// after).
package transpile

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// Layout maps virtual circuit qubits to physical graph vertices.
type Layout []int

// TrivialLayout maps virtual qubit i to physical vertex i.
func TrivialLayout(k int) Layout {
	l := make(Layout, k)
	for i := range l {
		l[i] = i
	}
	return l
}

// Copy returns an independent copy.
func (l Layout) Copy() Layout {
	out := make(Layout, len(l))
	copy(out, l)
	return out
}

// Inverse returns the physical→virtual map (-1 for unused vertices).
func (l Layout) Inverse(n int) []int {
	return l.InverseInto(make([]int, n))
}

// InverseInto fills inv (fully — every entry is overwritten) with the
// physical→virtual map, -1 for unused vertices, and returns it. It is the
// allocation-free form of Inverse for callers with a reusable buffer.
func (l Layout) InverseInto(inv []int) []int {
	for i := range inv {
		inv[i] = -1
	}
	for v, p := range l {
		inv[p] = v
	}
	return inv
}

// Validate checks the layout is injective and within the graph.
func (l Layout) Validate(g *topology.Graph) error {
	seen := make(map[int]bool, len(l))
	for v, p := range l {
		if p < 0 || p >= g.N() {
			return fmt.Errorf("transpile: layout maps q%d to invalid vertex %d", v, p)
		}
		if seen[p] {
			return fmt.Errorf("transpile: layout maps two qubits to vertex %d", p)
		}
		seen[p] = true
	}
	return nil
}

// checkGatePairsReachable fails when any two-qubit gate's endpoints map to
// disconnected components of g under the layout. Routing moves qubits along
// edges, so such a pair (BFS distance -1) can never become adjacent;
// without this check the -1 sentinel leaks into routing cost matrices,
// where it reads as the *cheapest* possible distance. Only interacting
// pairs are checked — idle qubits parked in another component are harmless
// and were always routable.
func checkGatePairsReachable(g *topology.Graph, c *circuit.Circuit, l Layout) error {
	d := g.Distances()
	for _, op := range c.Ops {
		if !op.Is2Q() {
			continue
		}
		a, b := l[op.Qubits[0]], l[op.Qubits[1]]
		if d[a][b] < 0 {
			return fmt.Errorf(
				"transpile: gate %s: physical qubits %d and %d lie in disconnected components of %s: no SWAP path can join them",
				op, a, b, g.Name)
		}
	}
	return nil
}

// DenseLayout chooses the densest connected induced subgraph of size c.N
// (greedy growth from every seed, keeping the subset with the most induced
// couplings) and assigns the circuit's most-interacting qubits to the
// best-connected vertices — a faithful reimplementation of the spirit of
// Qiskit's DenseLayout, which the paper uses for initial mapping (§5).
func DenseLayout(g *topology.Graph, c *circuit.Circuit) (Layout, error) {
	return DenseLayoutCost(g, c, nil)
}

// DenseLayoutCost is DenseLayout with an explicit cost matrix replacing hop
// distances in the subset-growth tie-break, so a profile-guided caller can
// bias placement away from regions reached only through congested links. A
// nil cost means uniform hop distances and reproduces DenseLayout exactly;
// density (induced coupling count) remains the primary objective either way.
func DenseLayoutCost(g *topology.Graph, c *circuit.Circuit, cost [][]float64) (Layout, error) {
	k := c.N
	if k > g.N() {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits, machine has %d", k, g.N())
	}
	subset := densestSubset(g, k, cost)
	if subset == nil {
		// Only possible for k < g.N() when no connected region of k
		// vertices exists. The old fallback (first k vertices) handed
		// routing a layout spanning disconnected components, whose -1 BFS
		// distances then read as the *cheapest* cost; fail here with the
		// real cause instead. (Full-width circuits necessarily use every
		// vertex; whether each gate is routable is then decided per gate
		// pair by the routers' reachability check.)
		return nil, fmt.Errorf(
			"transpile: topology %s is disconnected: no connected %d-qubit region for the circuit",
			g.Name, k)
	}
	// Order physical vertices by induced degree (descending, stable).
	inSubset := make([]bool, g.N())
	for _, v := range subset {
		inSubset[v] = true
	}
	inducedDeg := func(v int) int {
		d := 0
		for _, w := range g.Neighbors(v) {
			if inSubset[w] {
				d++
			}
		}
		return d
	}
	phys := append([]int(nil), subset...)
	insertionSortInts(phys, func(a, b int) bool {
		da, db := inducedDeg(a), inducedDeg(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	// Order virtual qubits by interaction weight (number of 2Q ops touching
	// them), descending.
	weight := make([]int, k)
	for _, op := range c.Ops {
		if op.Is2Q() {
			weight[op.Qubits[0]]++
			weight[op.Qubits[1]]++
		}
	}
	virt := make([]int, k)
	for i := range virt {
		virt[i] = i
	}
	insertionSortInts(virt, func(a, b int) bool {
		if weight[a] != weight[b] {
			return weight[a] > weight[b]
		}
		return a < b
	})
	layout := make(Layout, k)
	for rank, v := range virt {
		layout[v] = phys[rank]
	}
	if err := layout.Validate(g); err != nil {
		return nil, err
	}
	return layout, nil
}

// densestSubset grows a connected subset of size k from every seed vertex,
// each step adding the candidate with the most neighbors already inside
// (ties: smaller distance sum to the subset, then smaller index), and keeps
// the subset with the most induced edges. Distance sums come from cost when
// non-nil, otherwise hop distances (as exact-integer floats, so the nil
// path compares identically to the historical int arithmetic). Returns nil
// when no component holds k vertices (growth is connectivity-preserving, so
// on a connected graph it always succeeds).
func densestSubset(g *topology.Graph, k int, cost [][]float64) []int {
	if k == g.N() {
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		return all
	}
	n := g.N()
	rowCost := func(u int) []float64 {
		if cost != nil {
			return cost[u]
		}
		return nil
	}
	dist := g.Distances()
	var best []int
	bestEdges := -1
	// Per-seed growth state, reset (not reallocated) for each of the n
	// seeds: the seed loop dominated DenseLayout's allocation profile.
	in := make([]bool, n)
	degIn := make([]int, n)       // neighbors already inside, per candidate
	distSum := make([]float64, n) // distance sum to the subset, per candidate
	subset := make([]int, 0, k)
	for seed := 0; seed < n; seed++ {
		clear(in)
		clear(degIn)
		clear(distSum)
		add := func(v int) {
			in[v] = true
			for _, w := range g.Neighbors(v) {
				degIn[w]++
			}
			for u := 0; u < n; u++ {
				if row := rowCost(u); row != nil {
					distSum[u] += row[v]
				} else {
					distSum[u] += float64(dist[u][v])
				}
			}
		}
		add(seed)
		subset = append(subset[:0], seed)
		edges := 0
		for len(subset) < k {
			bestV := -1
			for v := 0; v < n; v++ {
				if in[v] || degIn[v] == 0 {
					continue // keep the subset connected
				}
				if bestV < 0 || degIn[v] > degIn[bestV] ||
					(degIn[v] == degIn[bestV] && distSum[v] < distSum[bestV]) {
					bestV = v
				}
			}
			if bestV < 0 {
				break // disconnected graph: cannot grow further
			}
			edges += degIn[bestV]
			subset = append(subset, bestV)
			add(bestV)
		}
		if len(subset) == k && edges > bestEdges {
			bestEdges = edges
			best = append([]int(nil), subset...)
		}
	}
	if best == nil {
		return nil
	}
	sort.Ints(best)
	return best
}

// insertionSortInts sorts distinct ints in place with the given strict
// order. The slices it replaces sort.SliceStable on hold distinct values
// under a total order (an a < b tie-break), where every correct sort
// produces the same permutation — it exists only to drop SliceStable's
// reflection allocations from the per-cell layout path.
func insertionSortInts(s []int, less func(a, b int) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
