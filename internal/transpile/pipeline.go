package transpile

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/weyl"
)

// PassContext is the shared state a Pipeline threads through its passes:
// the immutable problem description (graph, basis, logical circuit, seed,
// trials, parallelism) plus the artifacts the stages of the paper's Fig. 10
// flow produce and consume — the routing cost matrix, the chosen layout,
// the routed circuit, the measured pressure profile, and the translated
// circuit. Passes communicate exclusively through this struct, so any stage
// can be replaced, reordered, or repeated without touching the others.
type PassContext struct {
	// Inputs. Circuit is the logical circuit and is never mutated; Seed is
	// the deterministic base every routing pass derives its RNG from (a
	// fresh rand.New(rand.NewSource(Seed)) per pass, so each pass is
	// independently reproducible); Trials and Parallelism parameterize the
	// stochastic router exactly as in StochasticSwapCost.
	Graph       *topology.Graph
	Basis       weyl.Basis
	Circuit     *circuit.Circuit
	Seed        int64
	Trials      int
	Parallelism int

	// Ctx carries the caller's deadline/cancellation into the passes: the
	// pipeline checks it between passes, and the long-running passes (the
	// routers, verification's simulations) poll it cooperatively so a
	// timed-out cell actually stops mid-pass. nil means context.Background()
	// — existing callers and tests need no change. Ctx never influences the
	// computed artifacts, only whether the run completes, so it is excluded
	// from evaluation cache keys.
	Ctx context.Context

	// Cost is the routing cost matrix consumed by layout and routing
	// passes: nil means uniform hop distances (the baseline pipeline);
	// ReweightPass replaces it with pressure-weighted all-pairs distances.
	Cost [][]float64

	// Artifacts, in pipeline order.
	Layout     Layout
	Routed     *RouteResult
	Profile    *EdgeProfile // pilot pressure profile (ProfileGuidedPass/ProfilePass)
	Translated *circuit.Circuit

	// Timings records one entry per executed pass (appended by
	// Pipeline.Run), so callers can attribute wall-clock to stages.
	Timings []PassTiming
}

// context resolves the pass context's cancellation context, mapping the
// zero value to Background so no pass needs a nil check.
func (ctx *PassContext) context() context.Context {
	if ctx.Ctx == nil {
		return context.Background()
	}
	return ctx.Ctx
}

// PassTiming is the measured wall-clock of one executed pass.
type PassTiming struct {
	Name     string
	Duration time.Duration
}

// Pass is one stage of the transpilation pipeline: a named transformation
// of the shared PassContext. Passes must be deterministic functions of the
// context (deriving any randomness from PassContext.Seed) so that a
// pipeline's output is a pure function of its inputs.
type Pass interface {
	Name() string
	Apply(ctx *PassContext) error
}

// Pipeline is an ordered sequence of passes. The zero value is an empty
// pipeline; Run on it is a no-op.
type Pipeline []Pass

// Run applies each pass in order, recording per-pass wall-clock in
// ctx.Timings. The first failing pass aborts the run with its name wrapped
// into the error. A done ctx.Ctx aborts between passes with its error
// undecorated (a deadline is the caller's verdict on the whole run, not a
// pass failure); the long passes additionally poll it internally.
func (p Pipeline) Run(ctx *PassContext) error {
	for _, pass := range p {
		if err := ctx.context().Err(); err != nil {
			return err
		}
		start := time.Now()
		if err := pass.Apply(ctx); err != nil {
			return fmt.Errorf("%s pass: %w", pass.Name(), err)
		}
		ctx.Timings = append(ctx.Timings, PassTiming{Name: pass.Name(), Duration: time.Since(start)})
	}
	return nil
}

// RouterFunc is the routing algorithm slot of RoutePass and
// ProfileGuidedPass: route c onto g from layout under cost (nil = uniform
// hops) with the caller's rng, polling rctx cooperatively so a
// deadline-bound cell can stop a long search. StochasticRouter and
// SabreRouter adapt the two in-tree routers; alternative routers plug in
// without a new pass type.
type RouterFunc func(rctx context.Context, g *topology.Graph, c *circuit.Circuit, layout Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error)

// StochasticRouter adapts StochasticSwapCostCtx to the RouterFunc slot.
func StochasticRouter(rctx context.Context, g *topology.Graph, c *circuit.Circuit, layout Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error) {
	return StochasticSwapCostCtx(rctx, g, c, layout, rng, trials, parallelism, cost)
}

// SabreRouter adapts SabreSwapCostCtx to the RouterFunc slot (SABRE has no
// trial fan-out, so trials and parallelism are unused).
func SabreRouter(rctx context.Context, g *topology.Graph, c *circuit.Circuit, layout Layout, rng *rand.Rand, trials, parallelism int, cost [][]float64) (*RouteResult, error) {
	return SabreSwapCostCtx(rctx, g, c, layout, rng, cost)
}

// LayoutPass chooses the initial placement with DenseLayoutCost under the
// context's current cost matrix (nil = uniform hop distances).
type LayoutPass struct{}

// Name implements Pass.
func (LayoutPass) Name() string { return "layout" }

// Apply implements Pass.
func (LayoutPass) Apply(ctx *PassContext) error {
	l, err := DenseLayoutCost(ctx.Graph, ctx.Circuit, ctx.Cost)
	if err != nil {
		return err
	}
	ctx.Layout = l
	return nil
}

// RoutePass inserts SWAPs with the configured router, reading the layout
// and cost matrix from the context and seeding a fresh RNG from ctx.Seed so
// the pass is independently deterministic wherever it sits in a pipeline.
type RoutePass struct {
	Router RouterFunc
}

// Name implements Pass.
func (RoutePass) Name() string { return "route" }

// Apply implements Pass.
func (p RoutePass) Apply(ctx *PassContext) error {
	router := p.Router
	if router == nil {
		router = StochasticRouter
	}
	if ctx.Layout == nil {
		return fmt.Errorf("no layout (run a layout pass first)")
	}
	rng := rand.New(rand.NewSource(ctx.Seed))
	routed, err := router(ctx.context(), ctx.Graph, ctx.Circuit, ctx.Layout, rng, ctx.Trials, ctx.Parallelism, ctx.Cost)
	if err != nil {
		return err
	}
	ctx.Routed = routed
	return nil
}

// ProfilePass measures the per-edge SWAP pressure of the routed circuit
// into ctx.Profile. It is a pure measurement: deterministic for a fixed
// routed circuit, no artifact is modified.
type ProfilePass struct{}

// Name implements Pass.
func (ProfilePass) Name() string { return "profile" }

// Apply implements Pass.
func (ProfilePass) Apply(ctx *PassContext) error {
	if ctx.Routed == nil {
		return fmt.Errorf("no routed circuit (run a route pass first)")
	}
	prof, err := ProfileRoutedCircuit(ctx.Graph, ctx.Routed.Circuit)
	if err != nil {
		return err
	}
	ctx.Profile = prof
	return nil
}

// ReweightPass converts the measured pressure profile into a weighted
// all-pairs cost matrix (EdgeProfile.Weights → Graph.WeightedDistances) and
// installs it as ctx.Cost, so subsequent layout/route passes price
// congested links above idle ones. Alpha ≤ 0 uses DefaultPressureAlpha.
type ReweightPass struct {
	Alpha float64
}

// Name implements Pass.
func (ReweightPass) Name() string { return "reweight" }

// Apply implements Pass.
func (p ReweightPass) Apply(ctx *PassContext) error {
	if ctx.Profile == nil {
		return fmt.Errorf("no pressure profile (run a profile pass first)")
	}
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = DefaultPressureAlpha
	}
	cost, err := ctx.Graph.WeightedDistances(ctx.Profile.Weights(alpha))
	if err != nil {
		return err
	}
	ctx.Cost = cost
	return nil
}

// DefaultNoiseAlpha scales how strongly per-edge error rates inflate edge
// costs in NoiseReweightPass (w = 1 + alpha·c/max where c = −ln(1−p)): 2.0
// makes the worst coupling read three hops long, enough to steer traffic
// off a bad link without making every detour free.
const DefaultNoiseAlpha = 2.0

// NoiseReweightPass is the noise-aware ReweightPass source: it converts
// per-edge two-qubit error rates into a weighted all-pairs cost matrix
// (Graph.ErrorWeights → Graph.WeightedDistances) and installs it as
// ctx.Cost, so subsequent layout/route passes prefer high-fidelity
// couplings the way pressure-weighted passes avoid congested ones. Placed
// before the first LayoutPass it routes against error rates alone ("pure"
// mode); with Blend set it multiplies the error weights into the measured
// SWAP-pressure weights of ctx.Profile, pricing a link by both its
// congestion and its quality — blend mode therefore requires a profile
// pass upstream. Errors supplies the rate per physical coupling (a, b);
// rates must lie in [0,1). Alpha ≤ 0 uses DefaultNoiseAlpha.
type NoiseReweightPass struct {
	Errors func(a, b int) float64
	Alpha  float64
	Blend  bool
}

// Name implements Pass.
func (NoiseReweightPass) Name() string { return "noise-reweight" }

// Apply implements Pass.
func (p NoiseReweightPass) Apply(ctx *PassContext) error {
	if p.Errors == nil {
		return fmt.Errorf("no error-rate source (set NoiseReweightPass.Errors)")
	}
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = DefaultNoiseAlpha
	}
	w, err := ctx.Graph.ErrorWeights(p.Errors, alpha)
	if err != nil {
		return err
	}
	if p.Blend {
		if ctx.Profile == nil {
			return fmt.Errorf("no pressure profile to blend (run a profile pass first)")
		}
		for i, pw := range ctx.Profile.Weights(DefaultPressureAlpha) {
			w[i] *= pw
		}
	}
	cost, err := ctx.Graph.WeightedDistances(w)
	if err != nil {
		return err
	}
	ctx.Cost = cost
	return nil
}

// TranslatePass rewrites the routed circuit into the machine's native basis
// with TranslateToBasis.
type TranslatePass struct{}

// Name implements Pass.
func (TranslatePass) Name() string { return "translate" }

// Apply implements Pass.
func (TranslatePass) Apply(ctx *PassContext) error {
	if ctx.Routed == nil {
		return fmt.Errorf("no routed circuit (run a route pass first)")
	}
	tr, err := TranslateToBasis(ctx.Routed.Circuit, ctx.Basis)
	if err != nil {
		return err
	}
	ctx.Translated = tr
	return nil
}

// PeepholePass applies the local simplification pass (1Q merges, 2Q
// self-inverse cancellation) to the most processed circuit available: the
// translated circuit when translation ran, otherwise the routed one. It is
// not part of the default pipeline — the paper's metrics count gates before
// peephole clean-up — but slots in after TranslatePass for callers that
// want executable-circuit output.
type PeepholePass struct{}

// Name implements Pass.
func (PeepholePass) Name() string { return "peephole" }

// Apply implements Pass.
func (PeepholePass) Apply(ctx *PassContext) error {
	switch {
	case ctx.Translated != nil:
		out, err := Peephole(ctx.Translated)
		if err != nil {
			return err
		}
		ctx.Translated = out
	case ctx.Routed != nil:
		out, err := Peephole(ctx.Routed.Circuit)
		if err != nil {
			return err
		}
		ctx.Routed = &RouteResult{Circuit: out, SwapCount: ctx.Routed.SwapCount, FinalLayout: ctx.Routed.FinalLayout}
	default:
		return fmt.Errorf("no circuit to simplify (run a route pass first)")
	}
	return nil
}

// ProfileGuidedPass iterates the pressure feedback loop of profile-guided
// routing to a fixed point: profile the best routing so far, re-weight the
// cost matrices, re-place and re-route under them, and keep the cheaper
// routing (by induced SWAP count, incumbent on ties). With Iterations = 1
// it is exactly the single pilot→reweight step of the original
// profile-guided pipeline; larger values let an improved routing be
// profiled again, which can expose a different congestion pattern.
//
// Invariants, preserved at every iteration:
//
//   - keep-cheapest: the incumbent routing is replaced only by a strictly
//     cheaper candidate, so N iterations never yield more induced SWAPs
//     than N−1 (the iteration sequence is deterministic, and a longer run
//     extends — never revises — a shorter one);
//   - convergence: iteration stops early when the pressure profile of the
//     incumbent produces an edge-weight vector already tried (fingerprint
//     repeat) — rerouting under identical weights is a deterministic
//     replay — or when the incumbent has zero induced SWAPs (already
//     optimal on the contested metric).
//
// ctx.Profile is set to the *pilot* profile (the pressure measured on the
// incoming routing), matching the original contract that the exposed
// profile always describes the uniform-cost pass that seeded guidance.
// ctx.Cost is left untouched: the winning routing already absorbed any
// reweighting, and downstream passes (translation) are cost-independent.
type ProfileGuidedPass struct {
	Router     RouterFunc
	Alpha      float64 // ≤ 0 → DefaultPressureAlpha
	Iterations int     // < 1 → 1
}

// Name implements Pass.
func (ProfileGuidedPass) Name() string { return "profile-guided" }

// Apply implements Pass.
func (p ProfileGuidedPass) Apply(ctx *PassContext) error {
	if ctx.Routed == nil {
		return fmt.Errorf("no pilot routing (run a route pass first)")
	}
	router := p.Router
	if router == nil {
		router = StochasticRouter
	}
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = DefaultPressureAlpha
	}
	iters := p.Iterations
	if iters < 1 {
		iters = 1
	}
	pilot, err := ProfileRoutedCircuit(ctx.Graph, ctx.Routed.Circuit)
	if err != nil {
		return err
	}
	ctx.Profile = pilot
	bestLayout, bestRouted := ctx.Layout, ctx.Routed
	profile := pilot
	tried := make(map[uint64]bool, iters)
	for it := 0; it < iters; it++ {
		if err := ctx.context().Err(); err != nil {
			return err
		}
		// A routing with zero induced SWAPs is already optimal on the
		// metric the guided pass competes on (total = algorithmic +
		// induced, and algorithmic SWAPs are fixed by the logical
		// circuit), so any further candidate can at best tie and lose the
		// tie.
		if bestRouted.SwapCount == 0 {
			break
		}
		weights := profile.Weights(alpha)
		fp := weights.Fingerprint()
		if tried[fp] {
			break // fixed point: identical weights replay an earlier candidate
		}
		tried[fp] = true
		cost, err := ctx.Graph.WeightedDistances(weights)
		if err != nil {
			return err
		}
		layout, err := DenseLayoutCost(ctx.Graph, ctx.Circuit, cost)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(ctx.Seed))
		routed, err := router(ctx.context(), ctx.Graph, ctx.Circuit, layout, rng, ctx.Trials, ctx.Parallelism, cost)
		if err != nil {
			return err
		}
		if routed.SwapCount >= bestRouted.SwapCount {
			// Candidate lost: the incumbent is unchanged, so the next
			// iteration would profile the same routing into the same
			// weights and replay this exact candidate.
			break
		}
		bestLayout, bestRouted = layout, routed
		if profile, err = ProfileRoutedCircuit(ctx.Graph, routed.Circuit); err != nil {
			return err
		}
	}
	ctx.Layout, ctx.Routed = bestLayout, bestRouted
	return nil
}
