package transpile

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/weyl"
)

// TestPulseDurationTableMatchesBasisWeighting pins the refactor contract:
// on translated circuits the per-gate-type table with default timings
// reproduces the old basis-global weighting exactly, for every basis.
func TestPulseDurationTableMatchesBasisWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := circuit.New(5)
	for i := 0; i < 12; i++ {
		a := rng.Intn(5)
		b := rng.Intn(5)
		if a == b {
			b = (b + 1) % 5
		}
		switch i % 3 {
		case 0:
			c.CX(a, b)
		case 1:
			c.SqrtISwap(a, b)
		default:
			c.Swap(a, b)
		}
	}
	for _, basis := range []weyl.Basis{weyl.BasisCX, weyl.BasisSqrtISwap, weyl.BasisSYC, weyl.BasisISwap} {
		translated, err := TranslateToBasis(c, basis)
		if err != nil {
			t.Fatalf("%v: %v", basis, err)
		}
		old := PulseDuration(translated, basis)
		tab := PulseDurationTable(translated, arch.DefaultTiming())
		if old != tab {
			t.Errorf("%v: PulseDurationTable = %v, PulseDuration = %v", basis, tab, old)
		}
		if old <= 0 {
			t.Errorf("%v: implausible zero duration", basis)
		}
	}
}

// TestPulseDurationTablePricesMixedCircuits covers what the basis-global
// weighting cannot: a routed (untranslated) circuit with explicit swaps and
// a custom table.
func TestPulseDurationTablePricesMixedCircuits(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.Swap(0, 1)
	c.SqrtISwap(0, 1)
	got := PulseDurationTable(c, arch.DefaultTiming())
	if want := 1.0 + 1.5 + 0.5; got != want {
		t.Errorf("serial chain duration = %v, want %v", got, want)
	}
	custom := arch.DefaultTiming()
	custom["swap"] = 3
	if got := PulseDurationTable(c, custom); got != 1.0+3+0.5 {
		t.Errorf("custom table duration = %v, want 4.5", got)
	}
	if got := PulseDurationTable(c, nil); got != 0 {
		t.Errorf("nil table should price everything at 0, got %v", got)
	}
}
