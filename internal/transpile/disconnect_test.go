package transpile

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/weyl"
)

// twoTriangles builds a graph of two disjoint 3-cliques: vertices 0-2 and
// 3-5 with no path between the components.
func twoTriangles() *topology.Graph {
	g := topology.NewGraph("two-triangles", 6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	return g
}

// TestDenseLayoutDisconnectedTooWide is the regression for the silent
// -1-distance fallback: a circuit wider than any connected component must
// fail with a descriptive error, not a cross-component layout.
func TestDenseLayoutDisconnectedTooWide(t *testing.T) {
	g := twoTriangles()
	c := circuit.New(4)
	c.CX(0, 1)
	c.CX(2, 3)
	_, err := DenseLayout(g, c)
	if err == nil {
		t.Fatal("DenseLayout accepted a circuit spanning disconnected components")
	}
	if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("error does not name the cause: %v", err)
	}
}

// TestDenseLayoutDisconnectedFitsComponent: a disconnected machine is fine
// as long as one component holds the whole circuit — the layout must stay
// inside a single component and the full pipeline must route it.
func TestDenseLayoutDisconnectedFitsComponent(t *testing.T) {
	g := twoTriangles()
	c := circuit.New(3)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(0, 2)
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range layout[1:] {
		if g.Dist(layout[0], p) < 0 {
			t.Fatalf("DenseLayout spans components: %v", layout)
		}
	}
	rng := rand.New(rand.NewSource(7))
	res, err := StochasticSwap(g, c, layout, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.CountTwoQubit() < 3 {
		t.Fatalf("routed circuit lost gates: %s", res.Circuit)
	}
	// SABRE must route the confined layout too (its step budget previously
	// zeroed out on any disconnected graph via Diameter() == -1).
	sres, err := SabreSwap(g, c, layout, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if sres.Circuit.CountTwoQubit() < 3 {
		t.Fatalf("SABRE routed circuit lost gates: %s", sres.Circuit)
	}
}

// TestRoutersRejectCrossComponentLayout hands both routers a layout that
// straddles the two components and expects a descriptive failure instead of
// the old behavior (unreachable pairs scoring as negative, i.e. best, cost).
func TestRoutersRejectCrossComponentLayout(t *testing.T) {
	g := twoTriangles()
	c := circuit.New(2)
	c.CX(0, 1)
	bad := Layout{0, 3} // one qubit per component
	rng := rand.New(rand.NewSource(1))
	if _, err := StochasticSwap(g, c, bad, rng, 5); err == nil {
		t.Fatal("StochasticSwap accepted a cross-component layout")
	} else if !strings.Contains(err.Error(), "disconnected components") {
		t.Fatalf("StochasticSwap error does not name the cause: %v", err)
	}
	if _, err := SabreSwap(g, c, bad, rng); err == nil {
		t.Fatal("SabreSwap accepted a cross-component layout")
	} else if !strings.Contains(err.Error(), "disconnected components") {
		t.Fatalf("SabreSwap error does not name the cause: %v", err)
	}
}

// TestFullWidthDisconnectedIntraComponentGates: a circuit as wide as the
// whole (disconnected) machine must still route when every 2Q gate stays
// inside one component — idle or component-local qubits parked elsewhere
// are harmless, so only interacting pairs are reachability-checked.
func TestFullWidthDisconnectedIntraComponentGates(t *testing.T) {
	g := twoTriangles()
	c := circuit.New(6)
	c.CX(0, 1) // both endpoints land somewhere; gates stay intra-component
	layout := TrivialLayout(6)
	res, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(3)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.CountTwoQubit() != 1 {
		t.Fatalf("routed circuit has %d 2Q gates, want 1", res.Circuit.CountTwoQubit())
	}
	if _, err := SabreSwap(g, c, layout, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	// The same width with a cross-component gate must fail descriptively.
	bad := circuit.New(6)
	bad.CX(0, 3)
	if _, err := StochasticSwap(g, bad, layout, rand.New(rand.NewSource(3)), 5); err == nil {
		t.Fatal("StochasticSwap routed a cross-component gate")
	} else if !strings.Contains(err.Error(), "disconnected components") {
		t.Fatalf("error does not name the cause: %v", err)
	}
	if _, err := SabreSwap(g, bad, layout, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("SabreSwap routed a cross-component gate")
	}
}

// TestTranslateUnknownBasisReturnsError is the regression for the
// basisGateName panic: every translation entry point must reject an
// unrecognized basis with an error, mid-translation included.
func TestTranslateUnknownBasisReturnsError(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	bogus := weyl.Basis(99)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("translation panicked on unknown basis: %v", r)
		}
	}()
	if _, err := TranslateToBasis(c, bogus); err == nil {
		t.Fatal("TranslateToBasis accepted an unknown basis")
	} else if !strings.Contains(err.Error(), "unknown basis") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := Count2QForBasis(c, bogus); err == nil {
		t.Fatal("Count2QForBasis accepted an unknown basis")
	}
	if d := PulseDuration(c, bogus); d != 0 {
		t.Fatalf("PulseDuration(unknown basis) = %g, want 0", d)
	}
}
