package transpile

import (
	"math/rand"
	"testing"
)

// eagerPerturb is the historical perturbation loop: copy the base matrix
// and scale every unordered pair by 1 + 0.1|gauss| drawn in row-major i<j
// order from rand.New(&splitmix64{state: seed}). It is the reference the
// lazy consumption-pass scheme must reproduce bit for bit.
func eagerPerturb(base []float64, n int, seed uint64) []float64 {
	d := make([]float64, n*n)
	copy(d, base)
	trng := rand.New(&splitmix64{state: seed})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 1 + 0.1*absf(trng.NormFloat64())
			d[i*n+j] *= s
			d[j*n+i] = d[i*n+j]
		}
	}
	return d
}

// TestLazyPerturbMatchesEager materializes every off-diagonal entry of the
// lazy perturbed matrix, in adversarial (reverse and mixed-orientation)
// read orders, across enough seeds and sizes to hit ziggurat slow-path
// draws, and requires bit-identity with the eager loop.
func TestLazyPerturbMatchesEager(t *testing.T) {
	for _, n := range []int{2, 5, 17, 84} {
		base := make([]float64, n*n)
		brng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := float64(brng.Intn(7) + 1)
				base[i*n+j], base[j*n+i] = v, v
			}
		}
		for seed := uint64(0); seed < 50; seed++ {
			want := eagerPerturb(base, n, seed)
			sc := &routerScratch{
				d:     make([]float64, n*n),
				stamp: make([]uint32, n*n),
			}
			sc.prep(seed, n*(n-1)/2)
			// Read back-to-front and in both orientations, so fills happen
			// in an order unrelated to the draw order.
			for x := n - 1; x >= 0; x-- {
				for y := 0; y < n; y++ {
					if x == y {
						continue
					}
					if got := sc.at(base, n, x, y); got != want[x*n+y] {
						t.Fatalf("n=%d seed=%d entry (%d,%d): lazy %v != eager %v",
							n, seed, x, y, got, want[x*n+y])
					}
				}
			}
		}
	}
}

// TestLazyPerturbGenerationIsolation re-preps a scratch with a new seed and
// checks no stale entry from the previous trial leaks through the stamps.
func TestLazyPerturbGenerationIsolation(t *testing.T) {
	const n = 9
	base := make([]float64, n*n)
	for i := range base {
		base[i] = 2
	}
	sc := &routerScratch{d: make([]float64, n*n), stamp: make([]uint32, n*n)}
	sc.prep(11, n*(n-1)/2)
	first := sc.at(base, n, 3, 7)
	sc.prep(12, n*(n-1)/2)
	want := eagerPerturb(base, n, 12)
	got := sc.at(base, n, 3, 7)
	if got != want[3*n+7] {
		t.Fatalf("after re-prep: lazy %v != eager %v (stale? first trial had %v)", got, want[3*n+7], first)
	}
}
