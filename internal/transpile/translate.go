package transpile

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/weyl"
)

// basisGateName is the op name emitted for each application of the target
// basis gate during translation. An unrecognized basis is a caller error,
// reported as such rather than a panic: translation entry points validate
// the basis up front so a bad value can never detonate mid-circuit (or
// reach weyl.Basis.NumGates, which would panic on it).
func basisGateName(b weyl.Basis) (string, error) {
	switch b {
	case weyl.BasisCX:
		return "cx", nil
	case weyl.BasisSqrtISwap:
		return "siswap", nil
	case weyl.BasisSYC:
		return "syc", nil
	case weyl.BasisISwap:
		return "iswap", nil
	default:
		return "", fmt.Errorf("transpile: unknown basis %v", b)
	}
}

// TranslateToBasis rewrites every two-qubit gate as k applications of the
// target basis gate interleaved with single-qubit layers, where k comes from
// the exact KAK/Weyl-chamber counting rules (paper §2.3 and Observation 1).
// Single-qubit gates pass through. The interleaved 1Q gates are emitted as
// placeholder u3 ops: the paper's metrics treat 1Q gates as free (§3.1), so
// only their positions matter for scheduling.
//
// Weyl coordinates are memoized per (name, params) so repeated gates (CX,
// SWAP, CP(θ) ladders) are classified once.
func TranslateToBasis(c *circuit.Circuit, b weyl.Basis) (*circuit.Circuit, error) {
	name, err := basisGateName(b)
	if err != nil {
		return nil, err
	}
	out := circuit.New(c.N)
	cache := make(map[string]int)
	for _, op := range c.Ops {
		if !op.Is2Q() {
			out.Append(op)
			continue
		}
		k, err := basisCount(op, b, cache)
		if err != nil {
			return nil, err
		}
		q0, q1 := op.Qubits[0], op.Qubits[1]
		if k == 0 {
			// Locally equivalent to identity: absorb into 1Q frames.
			out.U3(q0, 0, 0, 0)
			out.U3(q1, 0, 0, 0)
			continue
		}
		for i := 0; i < k; i++ {
			out.U3(q0, 0, 0, 0)
			out.U3(q1, 0, 0, 0)
			out.Append(circuit.Op{Name: name, Qubits: []int{q0, q1}})
		}
		out.U3(q0, 0, 0, 0)
		out.U3(q1, 0, 0, 0)
	}
	return out, nil
}

// basisCount classifies one 2Q op, memoizing named gates.
func basisCount(op circuit.Op, b weyl.Basis, cache map[string]int) (int, error) {
	key := ""
	if op.U == nil {
		key = fmt.Sprintf("%s|%v|%d", op.Name, op.Params, b)
		if k, ok := cache[key]; ok {
			return k, nil
		}
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return 0, err
	}
	coord, err := weyl.Coordinates(u)
	if err != nil {
		return 0, fmt.Errorf("transpile: classifying %s: %w", op.Name, err)
	}
	k := b.NumGates(coord)
	if key != "" {
		cache[key] = k
	}
	return k, nil
}

// Count2QForBasis returns how many basis-gate applications a circuit costs
// without materializing the translated circuit (used by fast sweeps).
func Count2QForBasis(c *circuit.Circuit, b weyl.Basis) (int, error) {
	if _, err := basisGateName(b); err != nil {
		return 0, err
	}
	cache := make(map[string]int)
	total := 0
	for _, op := range c.Ops {
		if !op.Is2Q() {
			continue
		}
		k, err := basisCount(op, b, cache)
		if err != nil {
			return 0, err
		}
		total += k
	}
	return total, nil
}

// PulseDuration returns the duration-weighted critical path of a translated
// circuit: each application of the basis gate costs its relative pulse
// length (√iSWAP = 0.5, CX/SYC/iSWAP = 1.0), 1Q gates are free (paper §3.1).
func PulseDuration(c *circuit.Circuit, b weyl.Basis) float64 {
	name, err := basisGateName(b)
	if err != nil {
		// No circuit can have been translated to an unknown basis, so its
		// basis-gate critical path is vacuously zero.
		return 0
	}
	dur := b.Duration()
	return c.CriticalPath(func(op circuit.Op) float64 {
		if op.Name == name && op.Is2Q() {
			return dur
		}
		return 0
	})
}

// Critical2Q returns the number of basis-gate applications on the critical
// path of a translated circuit.
func Critical2Q(c *circuit.Circuit) int {
	return c.Depth2Q()
}
