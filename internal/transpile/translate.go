package transpile

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/weyl"
)

// basisGateName is the op name emitted for each application of the target
// basis gate during translation. An unrecognized basis is a caller error,
// reported as such rather than a panic: translation entry points validate
// the basis up front so a bad value can never detonate mid-circuit (or
// reach weyl.Basis.NumGates, which would panic on it).
func basisGateName(b weyl.Basis) (string, error) {
	switch b {
	case weyl.BasisCX:
		return "cx", nil
	case weyl.BasisSqrtISwap:
		return "siswap", nil
	case weyl.BasisSYC:
		return "syc", nil
	case weyl.BasisISwap:
		return "iswap", nil
	default:
		return "", fmt.Errorf("transpile: unknown basis %v", b)
	}
}

// gateKey identifies a 2Q gate's local-equivalence class inputs for the
// process-wide coordinate memo: the gate name and parameters for named
// gates, a content fingerprint of the matrix bits for explicit unitaries.
// Like the content-addressed Evaluate cache, aliasing is possible only via
// a 64-bit fingerprint collision between distinct matrices.
type gateKey struct {
	name       string
	np         int8
	hasU       bool
	p0, p1, p2 float64
	ufp        uint64
}

// coordMemo caches weyl.Coordinates per gate identity across all
// translations in the process. Weyl coordinates are basis-independent, so
// one entry serves every (machine, basis) pair a sweep routes the same
// logical gate through — on the co-design sweeps this removes ~80% of the
// eigensolver work, which dominated translation allocations.
var coordMemo struct {
	sync.RWMutex
	m map[gateKey]weyl.Coord
}

// coordMemoLimit bounds the memo; at the limit the map is reset rather than
// evicted (keys are tiny and sweeps re-warm in one pass).
const coordMemoLimit = 1 << 15

// matrixFingerprint hashes a matrix's exact float bit patterns (FNV-style
// mix per word), so explicit unitaries from different random draws never
// alias except by 64-bit collision.
func matrixFingerprint(m *linalg.Matrix) uint64 {
	h := uint64(14695981039346656037)
	const prime = 1099511628211
	h = (h ^ uint64(m.Rows)) * prime
	h = (h ^ uint64(m.Cols)) * prime
	for _, z := range m.Data {
		h = (h ^ math.Float64bits(real(z))) * prime
		h = (h ^ math.Float64bits(imag(z))) * prime
	}
	return h
}

// classify returns the Weyl-chamber coordinates of a 2Q op through the
// process-wide memo.
func classify(op circuit.Op) (weyl.Coord, error) {
	key := gateKey{name: op.Name, np: int8(len(op.Params))}
	memoizable := len(op.Params) <= 3
	if memoizable {
		for i, p := range op.Params {
			switch i {
			case 0:
				key.p0 = p
			case 1:
				key.p1 = p
			case 2:
				key.p2 = p
			}
		}
		if op.U != nil {
			key.hasU = true
			key.ufp = matrixFingerprint(op.U)
		}
		coordMemo.RLock()
		c, ok := coordMemo.m[key]
		coordMemo.RUnlock()
		if ok {
			return c, nil
		}
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return weyl.Coord{}, err
	}
	coord, err := weyl.Coordinates(u)
	if err != nil {
		return weyl.Coord{}, fmt.Errorf("transpile: classifying %s: %w", op.Name, err)
	}
	if memoizable {
		coordMemo.Lock()
		if coordMemo.m == nil || len(coordMemo.m) >= coordMemoLimit {
			coordMemo.m = make(map[gateKey]weyl.Coord, 256)
		}
		coordMemo.m[key] = coord
		coordMemo.Unlock()
	}
	return coord, nil
}

// basisCount classifies one 2Q op and returns its basis-gate cost.
func basisCount(op circuit.Op, b weyl.Basis) (int, error) {
	coord, err := classify(op)
	if err != nil {
		return 0, err
	}
	return b.NumGates(coord), nil
}

// zeroU3Params is the shared parameter payload of every placeholder u3 the
// translation emits (immutable by the same convention as shared unitaries;
// its capacity is pinned so an append can never write through it).
var zeroU3Params = make([]float64, 3)

// TranslateToBasis rewrites every two-qubit gate as k applications of the
// target basis gate interleaved with single-qubit layers, where k comes from
// the exact KAK/Weyl-chamber counting rules (paper §2.3 and Observation 1).
// Single-qubit gates pass through. The interleaved 1Q gates are emitted as
// placeholder u3 ops: the paper's metrics treat 1Q gates as free (§3.1), so
// only their positions matter for scheduling.
//
// Weyl coordinates are memoized process-wide per gate identity (classify),
// and emitted qubit lists come from a chunked arena, so translating a
// routed sweep cell allocates O(chunks), not O(gates).
func TranslateToBasis(c *circuit.Circuit, b weyl.Basis) (*circuit.Circuit, error) {
	name, err := basisGateName(b)
	if err != nil {
		return nil, err
	}
	out := circuit.New(c.N)
	// A 2Q gate expands to at most 4 basis gates + 10 placeholder u3s;
	// reserve for the common k=2..3 shape to keep append growth rare.
	out.Ops = make([]circuit.Op, 0, len(c.Ops)*8)
	var qubits intArena
	u3 := func(q int) {
		qs := qubits.take(1)
		qs[0] = q
		out.Append(circuit.Op{Name: "u3", Qubits: qs, Params: zeroU3Params})
	}
	for _, op := range c.Ops {
		if !op.Is2Q() {
			out.Append(op)
			continue
		}
		k, err := basisCount(op, b)
		if err != nil {
			return nil, err
		}
		q0, q1 := op.Qubits[0], op.Qubits[1]
		if k == 0 {
			// Locally equivalent to identity: absorb into 1Q frames.
			u3(q0)
			u3(q1)
			continue
		}
		for i := 0; i < k; i++ {
			u3(q0)
			u3(q1)
			qs := qubits.take(2)
			qs[0], qs[1] = q0, q1
			out.Append(circuit.Op{Name: name, Qubits: qs})
		}
		u3(q0)
		u3(q1)
	}
	return out, nil
}

// Count2QForBasis returns how many basis-gate applications a circuit costs
// without materializing the translated circuit (used by fast sweeps).
func Count2QForBasis(c *circuit.Circuit, b weyl.Basis) (int, error) {
	if _, err := basisGateName(b); err != nil {
		return 0, err
	}
	total := 0
	for _, op := range c.Ops {
		if !op.Is2Q() {
			continue
		}
		k, err := basisCount(op, b)
		if err != nil {
			return 0, err
		}
		total += k
	}
	return total, nil
}

// PulseDuration returns the duration-weighted critical path of a translated
// circuit: each application of the basis gate costs its relative pulse
// length (√iSWAP = 0.5, CX/SYC/iSWAP = 1.0), 1Q gates are free (paper §3.1).
func PulseDuration(c *circuit.Circuit, b weyl.Basis) float64 {
	name, err := basisGateName(b)
	if err != nil {
		// No circuit can have been translated to an unknown basis, so its
		// basis-gate critical path is vacuously zero.
		return 0
	}
	dur := b.Duration()
	return c.CriticalPath(func(op circuit.Op) float64 {
		if op.Name == name && op.Is2Q() {
			return dur
		}
		return 0
	})
}

// PulseDurationTable returns the duration-weighted critical path of a
// circuit under a per-gate-type timing table: each two-qubit gate costs
// durations[name] pulse units (0 when absent), 1Q gates are free. This is
// the per-architecture generalization of PulseDuration — with the default
// table (arch.DefaultTiming) it reproduces PulseDuration's numbers exactly
// on translated circuits, and it prices mixed-basis circuits (heterogeneous
// translation, pre-translation routed circuits with explicit swaps) that a
// single-basis weighting cannot.
func PulseDurationTable(c *circuit.Circuit, durations map[string]float64) float64 {
	return c.CriticalPath(func(op circuit.Op) float64 {
		if !op.Is2Q() {
			return 0
		}
		return durations[op.Name]
	})
}

// Critical2Q returns the number of basis-gate applications on the critical
// path of a translated circuit.
func Critical2Q(c *circuit.Circuit) int {
	return c.Depth2Q()
}
