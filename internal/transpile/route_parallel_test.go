package transpile

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestStochasticSwapParallelMatchesSerial asserts the router's trial pool
// is schedule-independent: the routed circuit, swap count, and final
// layout are bit-identical for serial and parallel trial execution with
// the same seed.
func TestStochasticSwapParallelMatchesSerial(t *testing.T) {
	g := topology.Hypercube84()
	c, err := workloads.Generate("QuantumVolume", 24, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(99)), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := StochasticSwapParallel(g, c, layout, rand.New(rand.NewSource(99)), 10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.SwapCount != want.SwapCount {
			t.Fatalf("workers=%d: swap count %d != serial %d", workers, got.SwapCount, want.SwapCount)
		}
		if !reflect.DeepEqual(got.FinalLayout, want.FinalLayout) {
			t.Fatalf("workers=%d: final layout diverges", workers)
		}
		if !reflect.DeepEqual(got.Circuit.Ops, want.Circuit.Ops) {
			t.Fatalf("workers=%d: routed ops diverge", workers)
		}
	}
}
