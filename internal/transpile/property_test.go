package transpile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// randCircuitOn builds a random 1Q/2Q circuit over n qubits.
func randCircuitOn(rng *rand.Rand, n, ops int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64())
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			if rng.Intn(5) == 0 {
				c.Swap(a, b)
			} else {
				c.CX(a, b)
			}
		}
	}
	return c
}

// TestPropertyRoutingPreservesGateMultiset: for random circuits and random
// seeds, routing never loses or reorders the non-swap gate multiset per
// qubit-dependency order, and every emitted 2Q op sits on an edge.
func TestPropertyRoutingPreservesGateMultiset(t *testing.T) {
	graphs := []*topology.Graph{
		topology.HeavyHex20(),
		topology.Corral12(),
		topology.Hypercube16(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphs[int(uint64(seed)%uint64(len(graphs)))]
		c := randCircuitOn(rng, 4+rng.Intn(8), 12+rng.Intn(20))
		layout, err := DenseLayout(g, c)
		if err != nil {
			return false
		}
		res, err := StochasticSwap(g, c, layout, rng, 4)
		if err != nil {
			return false
		}
		// Count gates by name (excluding swap, which mixes with routing).
		count := func(cc *circuit.Circuit) map[string]int {
			m := map[string]int{}
			for _, op := range cc.Ops {
				if op.Name != "swap" {
					m[op.Name]++
				}
			}
			return m
		}
		want, got := count(c), count(res.Circuit)
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		for _, op := range res.Circuit.Ops {
			if op.Is2Q() && !g.HasEdge(op.Qubits[0], op.Qubits[1]) {
				return false
			}
		}
		// Routed swap count is consistent.
		return res.Circuit.CountByName("swap") == c.CountByName("swap")+res.SwapCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFinalLayoutIsPermutation: the final layout is always a valid
// injective map.
func TestPropertyFinalLayoutIsPermutation(t *testing.T) {
	g := topology.Tree20()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randCircuitOn(rng, 6, 25)
		layout, err := DenseLayout(g, c)
		if err != nil {
			return false
		}
		res, err := StochasticSwap(g, c, layout, rng, 4)
		if err != nil {
			return false
		}
		return res.FinalLayout.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSinglePairShortestPath: routing one far-apart gate on a path graph
// uses exactly distance-1 swaps (optimality on the trivial case).
func TestSinglePairShortestPath(t *testing.T) {
	g := topology.SquareLattice(1, 8) // a path
	c := circuit.New(8)
	c.CX(0, 7)
	res, err := StochasticSwap(g, c, TrivialLayout(8), rand.New(rand.NewSource(3)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 6 {
		t.Errorf("path routing used %d swaps, want 6 (distance-1)", res.SwapCount)
	}
}

// TestSabreSingleGate: SABRE routes the same trivial case near-optimally.
func TestSabreSingleGate(t *testing.T) {
	g := topology.SquareLattice(1, 6)
	c := circuit.New(6)
	c.CX(0, 5)
	res, err := SabreSwap(g, c, TrivialLayout(6), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 4 {
		t.Errorf("SABRE path routing used %d swaps, want 4", res.SwapCount)
	}
}
