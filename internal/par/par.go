// Package par provides the bounded worker-pool primitive behind the
// repository's parallel sweep engine. It is deliberately tiny: a
// deterministic parallel-for with errgroup-style first-error aggregation
// and context cancellation, with no external dependencies.
//
// Callers make results deterministic by writing into index-addressed
// slots: ForEach guarantees every index in [0, n) is visited exactly once
// (unless cancelled), but promises nothing about visiting order, so any
// ordering must come from the caller's index→slot mapping, never from
// completion order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Parallelism knob to a concrete worker count:
// 0 means "auto" (runtime.GOMAXPROCS), anything below 1 clamps to serial.
func Resolve(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// ForEach invokes fn(i) for every i in [0, n) on up to `parallelism`
// goroutines (after Resolve) and returns the first error. A failing task
// cancels the dispatch of tasks that have not started; in-flight tasks
// run to completion.
func ForEach(n, parallelism int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, parallelism, fn)
}

// ForEachCtx is ForEach with caller-supplied cancellation: once ctx is
// done, no new task starts and the context error is returned (unless a
// task error arrived first).
func ForEachCtx(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, n, parallelism, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the executing worker's pool slot passed to
// fn alongside the task index. Worker slots are dense in [0, W) where W is
// the resolved worker count (clamped to n), and at most one task runs on a
// slot at a time, so callers can give each slot its own reusable scratch
// state without locking. Task-to-slot assignment is scheduling-dependent;
// only the slot-exclusivity invariant is guaranteed.
func ForEachWorker(n, parallelism int, fn func(worker, i int) error) error {
	return ForEachWorkerCtx(context.Background(), n, parallelism, fn)
}

// ForEachWorkerCtx is ForEachWorker with caller-supplied cancellation.
func ForEachWorkerCtx(ctx context.Context, n, parallelism int, fn func(worker, i int) error) error {
	workers := Resolve(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		bestIdx int
		bestErr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	// On failure the lowest-index error among those observed is returned,
	// matching the serial loop whenever the racing failures overlap. (Tasks
	// never dispatched after the stop can't report, so a still-lower-index
	// failure may go unseen — the cost of stopping early.)
	fail := func(i int, err error) {
		mu.Lock()
		if bestErr == nil || i < bestIdx {
			bestIdx, bestErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(worker, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return bestErr
}
