// Package par provides the bounded worker-pool primitive behind the
// repository's parallel sweep engine. It is deliberately tiny: a
// deterministic parallel-for with errgroup-style first-error aggregation
// and context cancellation, with no external dependencies.
//
// Callers make results deterministic by writing into index-addressed
// slots: ForEach guarantees every index in [0, n) is visited exactly once
// (unless cancelled), but promises nothing about visiting order, so any
// ordering must come from the caller's index→slot mapping, never from
// completion order.
//
// Every task runs under recover(): a panicking task becomes a *PanicError
// carrying the task index and the captured stack, so one faulty sweep cell
// fails as an ordinary error instead of killing the whole process — the
// same isolation discipline cache.Do applies to its fill functions. A
// long-running evaluation service cannot afford a single bad cell taking
// down the fleet of in-flight results.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the error a panicking task is converted into: the pool
// recovers the panic, records which task blew up and where, and reports it
// through the normal error path. Index is the task index passed to fn,
// Value the recovered panic value, and Stack the goroutine stack captured
// at recovery time (the panic site, not the pool).
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error. The stack is kept out of the one-line message
// (it is available on the struct for loggers that want it).
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", e.Index, e.Value)
}

// Resolve maps a Parallelism knob to a concrete worker count:
// 0 means "auto" (runtime.GOMAXPROCS), anything below 1 clamps to serial.
func Resolve(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// safeCall runs fn(worker, i) with panic isolation: a panic is recovered
// into a *PanicError so the caller's other tasks are unaffected.
func safeCall(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}

// ForEach invokes fn(i) for every i in [0, n) on up to `parallelism`
// goroutines (after Resolve) and returns the first error. A failing task
// cancels the dispatch of tasks that have not started; in-flight tasks
// run to completion.
func ForEach(n, parallelism int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, parallelism, fn)
}

// ForEachCtx is ForEach with caller-supplied cancellation: once ctx is
// done, no new task starts and the context error is returned (unless a
// task error arrived first).
func ForEachCtx(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, n, parallelism, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the executing worker's pool slot passed to
// fn alongside the task index. Worker slots are dense in [0, W) where W is
// the resolved worker count (clamped to n), and at most one task runs on a
// slot at a time, so callers can give each slot its own reusable scratch
// state without locking. Task-to-slot assignment is scheduling-dependent;
// only the slot-exclusivity invariant is guaranteed.
func ForEachWorker(n, parallelism int, fn func(worker, i int) error) error {
	return ForEachWorkerCtx(context.Background(), n, parallelism, fn)
}

// ForEachWorkerCtx is ForEachWorker with caller-supplied cancellation.
//
// Error semantics: a task failure (including a recovered panic, reported
// as *PanicError) is returned as the lowest-index error observed. A pure
// context cancellation — ctx done with no task having failed — returns
// ctx.Err() directly, never attributed to a task index, so callers can
// rely on errors.Is(err, context.Canceled/DeadlineExceeded) to mean "the
// run was cancelled", not "some task happened to fail with that". When
// both occur, the task failure wins: it is the more specific diagnosis.
func ForEachWorkerCtx(ctx context.Context, n, parallelism int, fn func(worker, i int) error) error {
	workers := Resolve(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		cancelled atomic.Bool
		mu        sync.Mutex
		bestIdx   int
		bestErr   error
		wg        sync.WaitGroup
	)
	next.Store(-1)
	// On failure the lowest-index error among those observed is returned,
	// matching the serial loop whenever the racing failures overlap. (Tasks
	// never dispatched after the stop can't report, so a still-lower-index
	// failure may go unseen — the cost of stopping early.)
	fail := func(i int, err error) {
		mu.Lock()
		if bestErr == nil || i < bestIdx {
			bestIdx, bestErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					// Pure cancellation is not task i's failure: record it
					// out of band and let any real task error take priority.
					cancelled.Store(true)
					stop.Store(true)
					return
				}
				if err := safeCall(fn, worker, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bestErr != nil {
		return bestErr
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEachAllCtx runs every index in [0, n) regardless of individual task
// failures — the fault-tolerant counterpart of ForEachCtx for callers that
// want per-task error isolation instead of fail-fast (a chaos-injected
// sweep completing around its bad cells). It returns one error slot per
// index: nil for tasks that succeeded, the task's error (a *PanicError for
// a recovered panic) for tasks that failed, and ctx.Err() for tasks never
// started because ctx was cancelled. The second return is ctx.Err() when
// the run was cut short, nil otherwise — per-task failures alone never
// make it non-nil.
func ForEachAllCtx(ctx context.Context, n, parallelism int, fn func(i int) error) ([]error, error) {
	errs := make([]error, n)
	workers := Resolve(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				for j := i; j < n; j++ {
					errs[j] = err
				}
				return errs, err
			}
			errs[i] = safeCall(func(_, i int) error { return fn(i) }, 0, i)
		}
		return errs, nil
	}
	var (
		next      atomic.Int64
		cancelled atomic.Bool
		wg        sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					cancelled.Store(true)
					errs[i] = err
					continue // mark every undispatched slot, don't run it
				}
				errs[i] = safeCall(func(_, i int) error { return fn(i) }, 0, i)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return errs, ctx.Err()
	}
	return errs, nil
}
