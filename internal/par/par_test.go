package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if Resolve(-3) != 1 || Resolve(1) != 1 || Resolve(7) != 7 {
		t.Error("Resolve clamping wrong")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		counts := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	wantErr := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(1_000_000, 2, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("fail at %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 10 {
		t.Errorf("dispatch kept going after failure: %d tasks ran", n)
	}
}

func TestForEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestPanicBecomesError pins the panic-isolation contract: a panicking
// task surfaces as a *PanicError carrying the task index and a stack, on
// both the serial and pooled paths, and never crashes the process.
func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(20, workers, func(i int) error {
			if i == 3 {
				panic("cell exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: panic index %d, want 3", workers, pe.Index)
		}
		if pe.Value != "cell exploded" {
			t.Errorf("workers=%d: panic value %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
		if got := pe.Error(); got != "par: task 3 panicked: cell exploded" {
			t.Errorf("workers=%d: message %q", workers, got)
		}
	}
}

// TestPanicOnlyFailsOneTask: with isolation, the panicking task reports
// while every task dispatched before the stop still completes normally.
func TestPanicOnlyFailsOneTask(t *testing.T) {
	var ok atomic.Int64
	err := ForEach(8, 8, func(i int) error {
		if i == 0 {
			// Wait for a sibling to finish first so the stop that follows
			// the panic cannot be the reason nothing else ran.
			for ok.Load() == 0 {
				runtime.Gosched()
			}
			panic(fmt.Sprintf("boom %d", i))
		}
		ok.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if ok.Load() == 0 {
		t.Error("no sibling task completed — panic took the pool down")
	}
}

// TestPureCancellationReturnsCtxErrDirectly: a cancellation with no failing
// task must return ctx.Err() itself — not a task-attributed wrapper — so
// errors.Is(err, context.Canceled) reliably means "cancelled".
func TestPureCancellationReturnsCtxErrDirectly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, 1000, workers, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: got %v (%T), want context.Canceled itself", workers, err, err)
		}
	}
}

// TestTaskErrorBeatsCancellation: when a real task failure and the
// cancellation race, the task failure is the more specific diagnosis and
// must win.
func TestTaskErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 100, 4, func(i int) error {
		if i == 5 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the task error to win over cancellation", err)
	}
}

// TestForEachAllCtxIsolation: the keep-going variant completes every task,
// isolating failures (including panics) per index.
func TestForEachAllCtxIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		boom := errors.New("boom")
		errs, err := ForEachAllCtx(context.Background(), 10, workers, func(i int) error {
			switch i {
			case 2:
				return boom
			case 7:
				panic("seven")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: run error %v, want nil (per-task failures only)", workers, err)
		}
		for i, e := range errs {
			switch i {
			case 2:
				if !errors.Is(e, boom) {
					t.Errorf("workers=%d: errs[2] = %v", workers, e)
				}
			case 7:
				var pe *PanicError
				if !errors.As(e, &pe) || pe.Index != 7 {
					t.Errorf("workers=%d: errs[7] = %v", workers, e)
				}
			default:
				if e != nil {
					t.Errorf("workers=%d: errs[%d] = %v, want nil", workers, i, e)
				}
			}
		}
	}
}

// TestForEachAllCtxCancel: cancellation marks undispatched slots with
// ctx.Err() and reports the cancellation as the run error.
func TestForEachAllCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, err := ForEachAllCtx(ctx, 50, 4, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error %v, want context.Canceled", err)
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, e)
		}
	}
}
