package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if Resolve(-3) != 1 || Resolve(1) != 1 || Resolve(7) != 7 {
		t.Error("Resolve clamping wrong")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		counts := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	wantErr := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(1_000_000, 2, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("fail at %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 10 {
		t.Errorf("dispatch kept going after failure: %d tasks ran", n)
	}
}

func TestForEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
