package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestScheduleDeterministic: a schedule is a pure function of (seed, call
// index) — same seed replays the identical stream, different seeds diverge.
func TestScheduleDeterministic(t *testing.T) {
	a, b := NewSchedule(42), NewSchedule(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Frac(), b.Frac(); av != bv {
			t.Fatalf("call %d: same seed diverged (%v vs %v)", i, av, bv)
		}
	}
	c, d := NewSchedule(1), NewSchedule(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Frac() == d.Frac() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestScheduleHitRate: Hit(p) lands near p over a long stream — the seeded
// stream is random-looking, not degenerate.
func TestScheduleHitRate(t *testing.T) {
	s := NewSchedule(7)
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if s.Hit(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.18 || frac > 0.32 {
		t.Fatalf("Hit(0.25) rate %.3f, want ≈0.25", frac)
	}
}

// TestCellHooksDeterministic: a cell's fate depends only on its coordinates
// and the seed — repeated calls agree (so parallel and serial sweeps inject
// identically), the hit fraction tracks p, and different seeds pick
// different victims.
func TestCellHooksDeterministic(t *testing.T) {
	hook := FailCells(3, 0.5)
	ctx := context.Background()
	failed := map[string]bool{}
	fails := 0
	const cells = 400
	for i := 0; i < cells; i++ {
		w, m := fmt.Sprintf("w%d", i%20), fmt.Sprintf("m%d", i/20)
		err := hook(ctx, w, 16, m)
		failed[w+"/"+m] = err != nil
		if err != nil {
			fails++
		}
	}
	if frac := float64(fails) / cells; frac < 0.4 || frac > 0.6 {
		t.Fatalf("FailCells(0.5) hit %.3f of cells, want ≈0.5", frac)
	}
	// Replay: every cell gets the same fate again.
	for i := 0; i < cells; i++ {
		w, m := fmt.Sprintf("w%d", i%20), fmt.Sprintf("m%d", i/20)
		if got := hook(ctx, w, 16, m) != nil; got != failed[w+"/"+m] {
			t.Fatalf("cell %s/%s changed fate on replay", w, m)
		}
	}
	// A different seed must not pick the same victim set.
	other := FailCells(4, 0.5)
	agree := 0
	for i := 0; i < cells; i++ {
		w, m := fmt.Sprintf("w%d", i%20), fmt.Sprintf("m%d", i/20)
		if (other(ctx, w, 16, m) != nil) == failed[w+"/"+m] {
			agree++
		}
	}
	if agree == cells {
		t.Fatal("seeds 3 and 4 injected identical cell faults")
	}
}

// TestPanicCellsPanics pins that the panic hook actually panics on a victim
// cell and passes non-victims through.
func TestPanicCellsPanics(t *testing.T) {
	hook := PanicCells(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("PanicCells(p=1) did not panic")
		}
	}()
	if err := PanicCells(3, 0)(context.Background(), "w", 8, "m"); err != nil {
		t.Fatalf("PanicCells(p=0) = %v", err)
	}
	hook(context.Background(), "w", 8, "m")
}

// TestSlowCellsHonorsContext: a victim cell blocks until its context dies
// and reports the context error; non-victims return immediately.
func TestSlowCellsHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SlowCells(3, 1)(ctx, "w", 8, "m"); !errors.Is(err, context.Canceled) {
		t.Fatalf("slow victim = %v, want context.Canceled", err)
	}
	if err := SlowCells(3, 0)(ctx, "w", 8, "m"); err != nil {
		t.Fatalf("non-victim = %v, want nil", err)
	}
}

// memFS is an in-memory fsOps for exercising FaultFS without real disk.
type memFS struct{ files map[string][]byte }

func (m *memFS) ReadFile(path string) ([]byte, error) {
	d, ok := m.files[path]
	if !ok {
		return nil, errors.New("not found")
	}
	return d, nil
}

func (m *memFS) WriteFile(_, path string, data []byte) error {
	m.files[path] = append([]byte(nil), data...)
	return nil
}

func (m *memFS) Remove(path string) error {
	if _, ok := m.files[path]; !ok {
		return errors.New("not found")
	}
	delete(m.files, path)
	return nil
}

// TestFaultFSInjects covers the three injection modes and the counters
// removed-exactly-once assertions build on.
func TestFaultFSInjects(t *testing.T) {
	inner := &memFS{files: map[string][]byte{}}
	f := NewFaultFS(inner, 11)

	// Transparent by default.
	if err := f.WriteFile("", "a", []byte("x")); err != nil {
		t.Fatalf("transparent write failed: %v", err)
	}
	if d, err := f.ReadFile("a"); err != nil || string(d) != "x" {
		t.Fatalf("transparent read = (%q, %v)", d, err)
	}

	// Certain read failure wraps ErrInjected.
	f.ReadFail = 1
	if _, err := f.ReadFile("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected read error = %v", err)
	}
	f.ReadFail = 0

	// Certain corruption: the write "succeeds" but stores poison bytes.
	f.Corrupt = 1
	if err := f.WriteFile("", "b", []byte("good")); err != nil {
		t.Fatalf("corrupting write errored: %v", err)
	}
	if string(inner.files["b"]) == "good" {
		t.Fatal("corruption did not replace the payload")
	}
	f.Corrupt = 0

	// Remove counts only successful deletions.
	if err := f.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("b"); err == nil {
		t.Fatal("second remove of b succeeded")
	}
	if got := f.RemovedOK.Load(); got != 1 {
		t.Fatalf("RemovedOK = %d, want 1", got)
	}
	if f.InjectedFails.Load() != 1 || f.Corruptions.Load() != 1 {
		t.Fatalf("fail/corrupt counters = %d/%d, want 1/1",
			f.InjectedFails.Load(), f.Corruptions.Load())
	}
}
