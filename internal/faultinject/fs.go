package faultinject

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected filesystem failure wraps, so
// tests can tell an injected fault from a real one with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// fsOps is the file-operation surface FaultFS wraps — structurally
// identical to cache.FS, declared here so the package stays import-free of
// the code it injects into.
type fsOps interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(dir, path string, data []byte) error
	Remove(path string) error
}

// FaultFS wraps a filesystem and injects failures and corruptions on a
// seeded schedule: reads fail with probability ReadFail, writes fail with
// probability WriteFail, and surviving writes are corrupted (the payload
// replaced with bytes no JSON decoder accepts) with probability Corrupt.
// Decisions are deterministic in operation order for a fixed seed. The
// counters let tests assert exactly what was injected and what got
// through; all methods are safe for concurrent use.
type FaultFS struct {
	inner fsOps
	sched *Schedule

	// Fault probabilities, fixed at construction sites before concurrent
	// use (exported for the common literal-free tweak in a test's setup).
	ReadFail  float64
	WriteFail float64
	Corrupt   float64

	// Counters: operations attempted, faults injected, and removes that
	// actually deleted a file (for removed-exactly-once assertions).
	Reads         atomic.Int64
	Writes        atomic.Int64
	InjectedFails atomic.Int64
	Corruptions   atomic.Int64
	RemovedOK     atomic.Int64
}

// NewFaultFS wraps inner with the fault schedule for seed. Probabilities
// start at zero — a transparent wrapper — and are set field-by-field.
func NewFaultFS(inner fsOps, seed uint64) *FaultFS {
	return &FaultFS{inner: inner, sched: NewSchedule(seed)}
}

// corruptPayload is what a corrupted write stores: never valid JSON, so a
// reader's decode fails and the cache's self-healing path runs.
var corruptPayload = []byte("\x00faultinject-corrupted{")

// ReadFile implements the cache FS surface with injected read failures.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.Reads.Add(1)
	if f.sched.Hit(f.ReadFail) {
		f.InjectedFails.Add(1)
		return nil, ErrInjected
	}
	return f.inner.ReadFile(path)
}

// WriteFile implements the cache FS surface with injected write failures
// and corruptions. A corrupted write succeeds from the caller's point of
// view — the damage is only visible to the next reader, like real silent
// corruption.
func (f *FaultFS) WriteFile(dir, path string, data []byte) error {
	f.Writes.Add(1)
	if f.sched.Hit(f.WriteFail) {
		f.InjectedFails.Add(1)
		return ErrInjected
	}
	if f.sched.Hit(f.Corrupt) {
		f.Corruptions.Add(1)
		data = corruptPayload
	}
	return f.inner.WriteFile(dir, path, data)
}

// Remove implements the cache FS surface, counting successful deletions.
func (f *FaultFS) Remove(path string) error {
	err := f.inner.Remove(path)
	if err == nil {
		f.RemovedOK.Add(1)
	}
	return err
}
