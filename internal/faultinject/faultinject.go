// Package faultinject is the deterministic chaos harness behind the
// repository's fault-tolerance tests: seeded schedules decide which cache
// filesystem operations fail or corrupt and which sweep cells panic, hang,
// or error, so a chaos test replays the exact same fault pattern on every
// run — flaky-by-construction tests are how fault-tolerance code rots.
//
// Two decision models are provided, matched to the two injection surfaces:
//
//   - Schedule draws from a counter-based splitmix64 stream, deterministic
//     in *call order*. It drives FaultFS, whose operations are serialized
//     per path by the cache's retry loops in any single-threaded test, and
//     whose concurrent tests assert invariants rather than exact outcomes.
//   - Cell hooks (PanicCells, SlowCells, FailCells) decide from the *cell
//     coordinates* (workload, size, machine), independent of scheduling,
//     so a parallel sweep injects exactly the faults a serial sweep would —
//     the same discipline the sweep engine's FNV task seeds follow.
//
// The package deliberately imports none of the packages it injects into:
// FaultFS satisfies cache.FS structurally, and the cell hooks match the
// experiments.CellHook signature, so it stays a leaf both can depend on in
// tests without cycles.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// smGamma is the splitmix64 increment (golden-ratio conjugate), the same
// constant the sim and transpile RNGs use.
const smGamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finalizer: a bijective scramble whose output on
// sequential inputs is statistically indistinguishable from random.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// frac maps a scrambled word to a fraction in [0, 1).
func frac(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// Schedule is a seeded, counter-based decision stream: the n-th call to
// Hit/Frac is a pure function of (seed, n), so a fixed seed and call order
// replay the identical fault pattern. Safe for concurrent use — the counter
// is atomic — though concurrent callers race for positions in the stream.
type Schedule struct {
	seed uint64
	n    atomic.Uint64
}

// NewSchedule returns a schedule drawing from the stream for seed.
func NewSchedule(seed uint64) *Schedule { return &Schedule{seed: seed} }

// Frac consumes the next stream position and returns its fraction in [0, 1).
func (s *Schedule) Frac() float64 {
	return frac(mix64(s.seed + s.n.Add(1)*smGamma))
}

// Hit consumes the next stream position and reports true with probability p.
func (s *Schedule) Hit(p float64) bool { return s.Frac() < p }

// cellFrac hashes a sweep cell's coordinates under a seed into a fraction
// in [0, 1). Pure function of its arguments — no stream position — so the
// decision for a cell is identical no matter when or on which goroutine
// the sweep engine evaluates it.
func cellFrac(seed uint64, workload string, size int, machine string) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(workload))
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(size) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(machine))
	return frac(mix64(h.Sum64()))
}

// CellHook mirrors experiments.CellHook structurally (this package must not
// import experiments): a pre-evaluation hook receiving the cell's identity
// and its evaluation context.
type CellHook = func(ctx context.Context, workload string, size int, machine string) error

// PanicCells returns a cell hook that panics on the deterministic fraction
// p of cells for this seed — the chaos input for panic-isolation tests.
func PanicCells(seed uint64, p float64) CellHook {
	return func(_ context.Context, workload string, size int, machine string) error {
		if cellFrac(seed, workload, size, machine) < p {
			panic(fmt.Sprintf("faultinject: cell %s/%d/%s", workload, size, machine))
		}
		return nil
	}
}

// FailCells returns a cell hook that errors on the deterministic fraction
// p of cells for this seed.
func FailCells(seed uint64, p float64) CellHook {
	return func(_ context.Context, workload string, size int, machine string) error {
		if cellFrac(seed, workload, size, machine) < p {
			return fmt.Errorf("faultinject: cell %s/%d/%s failed", workload, size, machine)
		}
		return nil
	}
}

// SlowCells returns a cell hook that hangs on the deterministic fraction p
// of cells until the cell's context expires, then reports its error — the
// shape of a wedged evaluation, used to exercise CellTimeout without a
// single real sleep. A hung cell under a nil deadline would block forever,
// exactly like the real failure it models.
func SlowCells(seed uint64, p float64) CellHook {
	return func(ctx context.Context, workload string, size int, machine string) error {
		if cellFrac(seed, workload, size, machine) < p {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
}
