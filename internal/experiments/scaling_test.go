package experiments

import (
	"strings"
	"testing"
)

func TestCorralScaling(t *testing.T) {
	rows, err := CorralScaling([]int{6, 8, 10}, serialQuickConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Stats.Qubits != r.Posts*2 {
			t.Errorf("posts %d: qubits %d, want %d", r.Posts, r.Stats.Qubits, r.Posts*2)
		}
		if r.QVSwaps < 0 || r.QVDuration <= 0 {
			t.Errorf("posts %d: degenerate metrics", r.Posts)
		}
		if i > 0 && r.Stats.Qubits <= rows[i-1].Stats.Qubits {
			t.Error("scaling not monotone in qubits")
		}
	}
	// Larger rings keep bounded degree (SNAIL limit) while diameter grows
	// slowly thanks to the long fence.
	for _, r := range rows {
		if r.Stats.AvgConn > 6.01 {
			t.Errorf("posts %d: avg degree %.2f exceeds the SNAIL frequency-crowding cap", r.Posts, r.Stats.AvgConn)
		}
	}
	txt := FormatCorralScaling(rows)
	if !strings.Contains(txt, "Corral-8p") {
		t.Error("formatting broken")
	}
	if _, err := CorralScaling([]int{3}, serialQuickConfig(nil)); err == nil {
		t.Error("tiny ring accepted")
	}
}

func TestSeriesCSV(t *testing.T) {
	series := []Series{{
		Label: "m", Workload: "w",
		Points: []Point{{Size: 8, Total: 10, Critical: 3}},
	}}
	csv := SeriesCSV(series, SwapCounts)
	if !strings.Contains(csv, "workload,machine,size,total_swaps,critical_swaps") ||
		!strings.Contains(csv, "w,m,8,10,3") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
	csv = SeriesCSV(series, Codesign)
	if !strings.Contains(csv, "pulse_duration") {
		t.Fatal("codesign csv header wrong")
	}
}
