package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/weyl"
)

// CorralScalingRow is one entry of the Corral scaling study: the paper's
// §7 future work asks how Corral-style rings compete with hypercubes as
// qubit counts grow. We scale the ring by adding posts (each post carries
// len(strides) qubits) and track both structural metrics and routed
// QuantumVolume cost.
type CorralScalingRow struct {
	Posts   int
	Strides []int
	Stats   topology.Stats
	// QVSwaps is the total SWAP count for a QuantumVolume circuit filling
	// ~80% of the machine, with the fixed study seed.
	QVSwaps int
	// QVDuration is the √iSWAP pulse-duration critical path.
	QVDuration float64
}

// CorralScaling grows the Corral ring and measures structure + routed cost.
// Strides follow the Corral(1,k) pattern with the long fence at roughly a
// third of the ring (the stride-3-of-8 ratio that realizes the paper's
// Corral 1,2), so the design keeps its low-diameter property as it scales.
// The unified Config supplies the evaluation knobs: cfg.Parallelism bounds
// the router's trial pool (0 = auto, 1 = serial) and never changes the
// measured rows; cfg.Cache, when non-nil, memoizes the routed QV
// evaluations so repeated studies skip identical routing; cfg.ProfileGuided
// routes each ring with the pressure-weighted pipeline (cache-keyed
// separately from baseline runs, iterated cfg.ProfileIterations times).
func CorralScaling(posts []int, cfg Config) ([]CorralScalingRow, error) {
	return CorralScalingContext(context.Background(), posts, cfg)
}

// CorralScalingContext is CorralScaling with cancellation: ctx (tightened
// by cfg.Deadline when set) threads into each ring's evaluation, and
// cfg.CellTimeout bounds the rings individually. Neither changes the rows
// a completed study reports.
func CorralScalingContext(ctx context.Context, posts []int, cfg Config) ([]CorralScalingRow, error) {
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	var out []CorralScalingRow
	for _, p := range posts {
		if p < 5 {
			return nil, fmt.Errorf("experiments: corral scaling needs ≥5 posts")
		}
		long := p/3 + 1
		strides := []int{1, long}
		g := topology.CorralRing(p, strides)
		g.Name = fmt.Sprintf("Corral-%dp(1,%d)", p, long)
		row := CorralScalingRow{Posts: p, Strides: strides, Stats: g.Stats()}
		width := g.N() * 4 / 5
		c, err := circuitFor("QuantumVolume", width, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m := core.NewMachine(g.Name, g, weyl.BasisSqrtISwap)
		opt := cfg.Options
		opt.Trials = cfg.effectiveTrials()
		met, err := m.EvaluateContext(ctx, c, opt)
		if err != nil {
			return nil, err
		}
		row.QVSwaps = met.TotalSwaps
		row.QVDuration = met.PulseDuration
		out = append(out, row)
	}
	return out, nil
}

// FormatCorralScaling renders the scaling study as a table.
func FormatCorralScaling(rows []CorralScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %7s %5s %7s %7s %9s %10s\n",
		"design", "qubits", "dia", "avgD", "avgC", "QVswaps", "QVdur")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d %5d %7.2f %7.2f %9d %10.1f\n",
			r.Stats.Name, r.Stats.Qubits, r.Stats.Diameter, r.Stats.AvgDist,
			r.Stats.AvgConn, r.QVSwaps, r.QVDuration)
	}
	return sb.String()
}

// SeriesCSV renders sweep results as CSV with columns
// workload,machine,size,total,critical — plus a trailing est_fidelity
// column when any point carries a fidelity estimate (noise-off output is
// byte-identical to historical CSV).
func SeriesCSV(series []Series, kind SweepKind) string {
	totalName, critName := "total_swaps", "critical_swaps"
	if kind == Codesign {
		totalName, critName = "total_2q", "pulse_duration"
	}
	withFidelity := seriesHaveFidelity(series)
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload,machine,size,%s,%s", totalName, critName)
	if withFidelity {
		sb.WriteString(",est_fidelity")
	}
	sb.WriteString("\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%s,%s,%d,%g,%g", s.Workload, s.Label, p.Size, p.Total, p.Critical)
			if withFidelity {
				fmt.Fprintf(&sb, ",%g", p.Fidelity)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
