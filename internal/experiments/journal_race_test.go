package experiments

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func journalKey(i int) cache.Key {
	h := cache.NewHasher("journal-race-test")
	h.WriteInt(int64(i))
	return h.Sum()
}

// TestJournalConcurrentAppendsResume drives many goroutines through
// Record simultaneously — the daemon's /sweep traffic shape, where
// parallel cells of one sweep share a journal — and proves under the race
// detector that no line tears: a reopened journal holds every record
// intact. Duplicate concurrent records of the same key must also collapse
// to at most one line each.
func TestJournalConcurrentAppendsResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		keys    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				met := core.Metrics{Machine: fmt.Sprintf("m%d", i), Width: i, TotalSwaps: i * 3}
				if err := j.Record(journalKey(i), met); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if j.Len() != keys {
		t.Fatalf("journal holds %d keys, want %d", j.Len(), keys)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Record after Close must fail loudly, never write on a dead handle.
	if err := j.Record(journalKey(0), core.Metrics{}); err == nil {
		t.Fatal("Record after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Reopen: every concurrently recorded cell must parse back intact —
	// a torn or interleaved line would fail OpenJournal or drop a key.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after concurrent appends: %v", err)
	}
	defer j2.Close()
	if j2.Len() != keys {
		t.Fatalf("reopened journal holds %d keys, want %d", j2.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		met, ok := j2.Lookup(journalKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if met.Width != i || met.TotalSwaps != i*3 {
			t.Fatalf("key %d replayed %+v", i, met)
		}
	}
}
