package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFig11DefaultMatchesPR2 pins the default (ProfileGuided=false)
// pipeline to the exact Fig. 11 quick-mode series the PR 2 build produced:
// the profile-guided subsystem must be invisible until switched on. The
// golden file is the FormatSeries output `qcbench -fig 11` printed at PR 2.
func TestFig11DefaultMatchesPR2(t *testing.T) {
	want, err := os.ReadFile("testdata/fig11_quick_pr2.golden")
	if err != nil {
		t.Fatal(err)
	}
	series, err := Fig11Spec(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	got := FormatSeries(series, SwapCounts)
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("default pipeline diverged from PR 2 at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("default pipeline output length diverged from PR 2: %d vs %d lines", len(gl), len(wl))
	}
}

// TestFig11ProfileGuidedMatchesGolden pins the profile-guided pipeline the
// same way the default one is pinned: the guided Fig. 11 quick-mode series
// must reproduce the output recorded when the pass pipeline landed (PR 4).
// A diff here means the guided pass sequence changed behavior — bump
// core.evaluateKeyDomain (or the guided key tag) and regenerate with
// `qcbench -fig 11 -profile`.
func TestFig11ProfileGuidedMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fig11_quick_profile_pr4.golden")
	if err != nil {
		t.Fatal(err)
	}
	spec := Fig11Spec(true)
	spec.ProfileGuided = true
	series, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := FormatSeries(series, SwapCounts)
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("guided pipeline diverged from PR 4 at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("guided pipeline output length diverged from PR 4: %d vs %d lines", len(gl), len(wl))
	}
}

// corralTreeSubset filters a spec down to the SNAIL corral/tree machines.
func corralTreeSubset(spec SweepSpec) SweepSpec {
	var ms []core.Machine
	for _, m := range spec.Machines {
		if strings.Contains(m.Name, "Tree") || strings.Contains(m.Name, "Corral") {
			ms = append(ms, m)
		}
	}
	spec.Machines = ms
	return spec
}

func TestProfileGuidedSweepNotWorse(t *testing.T) {
	spec := corralTreeSubset(Fig11Spec(true))
	spec.Workloads = []string{"QuantumVolume", "QFT"}
	if len(spec.Machines) != 4 {
		t.Fatalf("expected 4 corral/tree machines, got %d", len(spec.Machines))
	}
	base, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec.ProfileGuided = true
	guided, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(guided) {
		t.Fatal("series shape changed under profile guidance")
	}
	improved := 0
	for i := range base {
		if len(base[i].Points) != len(guided[i].Points) {
			t.Fatalf("%s/%s: point count changed", base[i].Label, base[i].Workload)
		}
		for j := range base[i].Points {
			bp, gp := base[i].Points[j], guided[i].Points[j]
			if gp.Total > bp.Total {
				t.Errorf("%s/%s size %d: guided swaps %g > baseline %g",
					base[i].Label, base[i].Workload, bp.Size, gp.Total, bp.Total)
			}
			if gp.Total < bp.Total {
				improved++
			}
		}
	}
	t.Logf("profile guidance improved %d cells (never regressed)", improved)
}

// TestProfileGuidedSharedCachedirNoCrossModeHits runs the same sweep in
// baseline then guided mode against one shared on-disk cache directory:
// the guided run must see zero hits from the baseline's entries (and vice
// versa), while a same-mode rerun is served entirely from disk.
func TestProfileGuidedSharedCachedirNoCrossModeHits(t *testing.T) {
	dir := t.TempDir()
	spec := Fig11Spec(true)
	spec.Workloads = []string{"GHZ"}
	spec.Parallelism = 1

	storeBase, err := core.NewMetricsCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	spec.Cache = storeBase
	baseSeries, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	cells := storeBase.Stats().Fills
	if cells == 0 {
		t.Fatal("baseline sweep cached nothing")
	}

	storeGuided, err := core.NewMetricsCache(0, dir) // fresh store, same disk tier
	if err != nil {
		t.Fatal(err)
	}
	spec.ProfileGuided = true
	spec.Cache = storeGuided
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}
	gst := storeGuided.Stats()
	if gst.Hits() != 0 {
		t.Fatalf("guided run got %d hits from the baseline's shared cachedir (cross-mode contamination)", gst.Hits())
	}
	if gst.Fills != cells {
		t.Errorf("guided run filled %d cells, baseline filled %d", gst.Fills, cells)
	}

	// Same-mode warm rerun: everything from disk, zero evaluations.
	storeWarm, err := core.NewMetricsCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	spec.Cache = storeWarm
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}
	wst := storeWarm.Stats()
	if wst.Fills != 0 || wst.DiskHits != cells {
		t.Errorf("guided warm rerun: fills = %d diskHits = %d, want 0/%d", wst.Fills, wst.DiskHits, cells)
	}

	// And the baseline mode still hits its own entries.
	storeWarmBase, err := core.NewMetricsCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	spec.ProfileGuided = false
	spec.Cache = storeWarmBase
	warmBase, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	bst := storeWarmBase.Stats()
	if bst.Fills != 0 || bst.DiskHits != cells {
		t.Errorf("baseline warm rerun: fills = %d diskHits = %d, want 0/%d", bst.Fills, bst.DiskHits, cells)
	}
	if FormatSeries(warmBase, spec.Kind) != FormatSeries(baseSeries, spec.Kind) {
		t.Error("baseline warm rerun not byte-identical to cold run")
	}
}
