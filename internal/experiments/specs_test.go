package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestFigMachineSpecsMatchFigSpecs holds the declarative per-figure spec
// lists in lockstep with the hand-wired Fig*Spec machine sets: same order,
// same machine names, same topology fingerprints, same bases. A drift in
// either direction would silently make remote sweeps evaluate different
// hardware than local ones, so this is the guard on that equivalence.
func TestFigMachineSpecsMatchFigSpecs(t *testing.T) {
	stock := map[int][]core.Machine{
		4:  Fig4Spec(true).Machines,
		11: Fig11Spec(true).Machines,
		12: Fig12Spec(true).Machines,
		13: Fig13Spec(true).Machines,
		14: Fig14Spec(true).Machines,
	}
	for fig, want := range stock {
		list, err := FigMachineSpecs(fig)
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		got, err := MachinesFromSpecs(list)
		if err != nil {
			t.Fatalf("fig %d: parse spec list: %v", fig, err)
		}
		if len(got) != len(want) {
			t.Fatalf("fig %d: %d machines from specs, want %d", fig, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i].Name {
				t.Errorf("fig %d machine %d: name %q, want %q", fig, i, got[i].Name, want[i].Name)
			}
			if got[i].Graph.Fingerprint() != want[i].Graph.Fingerprint() {
				t.Errorf("fig %d machine %d (%s): topology fingerprint %x, want %x",
					fig, i, want[i].Name, got[i].Graph.Fingerprint(), want[i].Graph.Fingerprint())
			}
			if got[i].Basis != want[i].Basis {
				t.Errorf("fig %d machine %d (%s): basis %v, want %v",
					fig, i, want[i].Name, got[i].Basis, want[i].Basis)
			}
		}
	}
	if _, err := FigMachineSpecs(15); err == nil {
		t.Fatal("FigMachineSpecs(15) succeeded; fig 15 has no sweep machine set")
	}
}
