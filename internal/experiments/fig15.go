package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/noise"
	"repro/internal/par"
)

// Fig15Roots and Fig15Ks are the paper's sweep axes: n√iSWAP for n = 2..7
// and template sizes k = 2..8 (Fig. 15).
var Fig15Roots = []int{2, 3, 4, 5, 6, 7}
var Fig15Ks = []int{2, 3, 4, 5, 6, 7, 8}

// Fig15Result holds the pulse-duration sensitivity study data.
type Fig15Result struct {
	Samples int
	Roots   []int
	Ks      []int

	// AvgInfidelity[ni][ki] is the mean decomposition infidelity 1−Fd of
	// Haar-random targets for root Roots[ni] with Ks[ki] template gates
	// (Fig. 15 top-left; top-right uses duration = k/n on the x-axis).
	AvgInfidelity [][]float64

	// FbGrid spans iSWAP base fidelities 0.90..1.00; AvgTotalFidelity[ni][f]
	// is the mean over targets of max_k Fd·Fb^k (Eq. 13; Fig. 15 bottom).
	FbGrid           []float64
	AvgTotalFidelity [][]float64
}

// Duration returns the pulse-duration x-coordinate k/n for a root and
// template size (Fig. 15 top-right).
func Duration(n, k int) float64 { return float64(k) / float64(n) }

// fig15CellSeed derives the decomposition RNG seed of one (n, k, sample)
// cell from its coordinates and the study's base seed via FNV — the same
// pure-function-of-coordinates scheme as SweepSpec.taskSeed, which is what
// makes the serial and parallel schedules byte-identical: no cell's draws
// depend on how many draws any other cell consumed.
func fig15CellSeed(seed int64, n, k, sample int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fig15/%d/%d/%d/%d", n, k, sample, seed)
	return int64(h.Sum64())
}

// fig15MCSeed derives the trajectory-sampling seed of one
// (n, k, sample, fb-gridpoint) noise estimate, a pure function of its
// coordinates like fig15CellSeed so the Monte-Carlo study is
// byte-identical at every parallelism setting.
func fig15MCSeed(seed int64, n, k, sample, fi int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fig15mc/%d/%d/%d/%d/%d", n, k, sample, fi, seed)
	return int64(h.Sum64())
}

// RunFig15 reproduces the Fig. 15 study: decompose `samples` Haar-random 2Q
// unitaries into every (n, k) template, then evaluate the
// decoherence-vs-approximation trade-off across base fidelities.
// The paper uses N=50; tests use fewer. Decompositions fan out over the
// internal/par worker pool (all cores); RunFig15Parallel exposes the knob.
func RunFig15(samples int, seed int64, cfg decomp.Config) (*Fig15Result, error) {
	return RunFig15Parallel(samples, seed, cfg, 0)
}

// RunFig15Config is RunFig15 driven by the unified experiment Config: the
// study seeds its Haar sampling from cfg.Seed and fans decomposition cells
// over a cfg.Parallelism-bounded pool. With cfg.Fidelity set to
// core.FidelityMonteCarlo, the bottom panel's per-gate decoherence factor
// Fb^k is replaced by trajectory sampling through each optimized template
// (cfg.NoiseShots trajectories; 0 = noise.DefaultShots), capturing the
// error propagation the closed-form product ignores; any other fidelity
// setting keeps the historical Eq. 13 arithmetic, byte-identical to
// RunFig15Parallel(samples, cfg.Seed, dc, cfg.Parallelism).
func RunFig15Config(samples int, dc decomp.Config, cfg Config) (*Fig15Result, error) {
	return RunFig15ConfigContext(context.Background(), samples, dc, cfg)
}

// RunFig15ConfigContext is RunFig15Config with cancellation: the study
// stops dispatching decomposition (and Monte-Carlo) cells once ctx is done
// and returns its error, so Ctrl-C or a scheduler's SIGTERM interrupts a
// long sensitivity sweep instead of riding it to completion.
func RunFig15ConfigContext(ctx context.Context, samples int, dc decomp.Config, cfg Config) (*Fig15Result, error) {
	if cfg.Fidelity == core.FidelityMonteCarlo {
		shots := cfg.NoiseShots
		if shots <= 0 {
			shots = noise.DefaultShots
		}
		return runFig15(ctx, samples, cfg.Seed, dc, cfg.Parallelism, shots)
	}
	return runFig15(ctx, samples, cfg.Seed, dc, cfg.Parallelism, 0)
}

// RunFig15Parallel is RunFig15 with an explicit worker bound for the
// (n, k, sample) decomposition cells (0 = auto/GOMAXPROCS, 1 = serial).
// Every cell optimizes under its own FNV-derived RNG (fig15CellSeed) and
// writes into an index-addressed slot, so the result is byte-identical at
// every parallelism setting; the Adam objective is preallocated
// per-Decompose call, so concurrent cells share no mutable state.
func RunFig15Parallel(samples int, seed int64, cfg decomp.Config, parallelism int) (*Fig15Result, error) {
	return runFig15(context.Background(), samples, seed, cfg, parallelism, 0)
}

// runFig15 is the shared study body. mcShots == 0 runs the closed-form
// bottom panel (Eq. 13, the historical output, byte-for-byte); mcShots > 0
// runs the Monte-Carlo bottom panel, where each (n, k, sample) template is
// rebuilt as a circuit (decomp.TemplateCircuit) and each grid point's
// per-gate base fidelity becomes a depolarizing error probability
// 1−Fb(n√iSWAP) sampled through the template. The count estimator's
// expectation of that very model is exactly Fb^k, so the two panels agree
// in the mean and differ only by propagation effects and sampling noise.
func runFig15(ctx context.Context, samples int, seed int64, cfg decomp.Config, parallelism, mcShots int) (*Fig15Result, error) {
	if samples < 1 {
		return nil, fmt.Errorf("experiments: fig15 needs ≥1 sample")
	}
	rng := rand.New(rand.NewSource(seed))
	targets := make([]*linalg.Matrix, samples)
	for i := range targets {
		targets[i] = gates.RandomSU4(rng)
	}
	res := &Fig15Result{
		Samples: samples,
		Roots:   Fig15Roots,
		Ks:      Fig15Ks,
	}
	// fidelity[ni][ki][sample] = Fd; infid holds 1−Fd as reported by the
	// optimizer so averages sum the exact optimizer output; params keeps
	// each cell's optimized template for the Monte-Carlo bottom panel.
	fid := make([][][]float64, len(res.Roots))
	infid := make([][][]float64, len(res.Roots))
	params := make([][][][]float64, len(res.Roots))
	res.AvgInfidelity = make([][]float64, len(res.Roots))
	for ni := range res.Roots {
		fid[ni] = make([][]float64, len(res.Ks))
		infid[ni] = make([][]float64, len(res.Ks))
		params[ni] = make([][][]float64, len(res.Ks))
		res.AvgInfidelity[ni] = make([]float64, len(res.Ks))
		for ki := range res.Ks {
			fid[ni][ki] = make([]float64, samples)
			infid[ni][ki] = make([]float64, samples)
			params[ni][ki] = make([][]float64, samples)
		}
	}
	nCells := len(res.Roots) * len(res.Ks) * samples
	cellAt := func(i int) (ni, ki, si int) {
		si = i % samples
		i /= samples
		ki = i % len(res.Ks)
		return i / len(res.Ks), ki, si
	}
	err := par.ForEachCtx(ctx, nCells, parallelism, func(i int) error {
		ni, ki, si := cellAt(i)
		n, k := res.Roots[ni], res.Ks[ki]
		cellRng := rand.New(rand.NewSource(fig15CellSeed(seed, n, k, si)))
		r, err := decomp.Decompose(targets[si], n, k, cellRng, cfg)
		if err != nil {
			return fmt.Errorf("experiments: fig15 n=%d k=%d: %w", n, k, err)
		}
		fid[ni][ki][si] = 1 - r.Infidelity
		infid[ni][ki][si] = r.Infidelity
		params[ni][ki][si] = r.Params
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni := range res.Roots {
		for ki := range res.Ks {
			sum := 0.0
			for si := 0; si < samples; si++ {
				sum += infid[ni][ki][si]
			}
			res.AvgInfidelity[ni][ki] = sum / float64(samples)
		}
	}
	// Base-fidelity grid 0.90 .. 1.00.
	const gridN = 21
	res.FbGrid = make([]float64, gridN)
	for i := range res.FbGrid {
		res.FbGrid[i] = 0.90 + 0.10*float64(i)/float64(gridN-1)
	}
	// noiseFactor[cell][fi] is the per-template decoherence multiplier at
	// each grid point: nil (closed-form Fb^k inside TotalFidelity) unless
	// the Monte-Carlo panel sampled one per (n, k, sample, Fb).
	var noiseFactor [][]float64
	if mcShots > 0 {
		noiseFactor = make([][]float64, nCells)
		err := par.ForEachCtx(ctx, nCells, parallelism, func(i int) error {
			ni, ki, si := cellAt(i)
			n, k := res.Roots[ni], res.Ks[ki]
			tc, err := decomp.TemplateCircuit(n, k, params[ni][ki][si])
			if err != nil {
				return fmt.Errorf("experiments: fig15 n=%d k=%d: %w", n, k, err)
			}
			row := make([]float64, gridN)
			for fi, fbISwap := range res.FbGrid {
				// Eq. 12's per-pulse base fidelity becomes the per-gate
				// depolarizing probability; the estimator runs serially here
				// because the cells themselves are already fanned out.
				est := noise.MonteCarloEstimator{
					Shots:       mcShots,
					Seed:        fig15MCSeed(seed, n, k, si, fi),
					Parallelism: 1,
				}
				m := noise.Model{GateError: 1 - decomp.BaseFidelity(fbISwap, n)}
				e, err := est.Estimate(ctx, tc, m)
				if err != nil {
					return fmt.Errorf("experiments: fig15 n=%d k=%d fb=%g: %w", n, k, fbISwap, err)
				}
				row[fi] = e.Fidelity
			}
			noiseFactor[i] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	res.AvgTotalFidelity = make([][]float64, len(res.Roots))
	for ni, n := range res.Roots {
		res.AvgTotalFidelity[ni] = make([]float64, gridN)
		for fi, fbISwap := range res.FbGrid {
			fb := decomp.BaseFidelity(fbISwap, n)
			sum := 0.0
			for si := 0; si < samples; si++ {
				best := 0.0
				for ki, k := range res.Ks {
					var ft float64
					if mcShots > 0 {
						cell := (ni*len(res.Ks)+ki)*samples + si
						ft = fid[ni][ki][si] * noiseFactor[cell][fi]
					} else {
						ft = decomp.TotalFidelity(fid[ni][ki][si], fb, k)
					}
					if ft > best {
						best = ft
					}
				}
				sum += best
			}
			res.AvgTotalFidelity[ni][fi] = sum / float64(samples)
		}
	}
	return res, nil
}

// TotalFidelityAt interpolates the bottom-panel curve for root n at an
// iSWAP base fidelity.
func (r *Fig15Result) TotalFidelityAt(n int, fbISwap float64) (float64, error) {
	ni := -1
	for i, root := range r.Roots {
		if root == n {
			ni = i
		}
	}
	if ni < 0 {
		return 0, fmt.Errorf("experiments: root %d not in study", n)
	}
	if fbISwap < r.FbGrid[0] || fbISwap > r.FbGrid[len(r.FbGrid)-1] {
		return 0, fmt.Errorf("experiments: fb %g outside grid", fbISwap)
	}
	// Linear interpolation on the grid.
	for i := 1; i < len(r.FbGrid); i++ {
		if fbISwap <= r.FbGrid[i]+1e-12 {
			t := (fbISwap - r.FbGrid[i-1]) / (r.FbGrid[i] - r.FbGrid[i-1])
			return r.AvgTotalFidelity[ni][i-1]*(1-t) + r.AvgTotalFidelity[ni][i]*t, nil
		}
	}
	return r.AvgTotalFidelity[ni][len(r.FbGrid)-1], nil
}

// InfidelityImprovement returns the relative reduction in total infidelity
// of root n versus √iSWAP (n=2) at the given iSWAP base fidelity — the §6.3
// claim: at Fb=0.99, n = 3, 4, 5 reduce infidelity by ≈14%, 25%, 11%.
func (r *Fig15Result) InfidelityImprovement(n int, fbISwap float64) (float64, error) {
	base, err := r.TotalFidelityAt(2, fbISwap)
	if err != nil {
		return 0, err
	}
	ft, err := r.TotalFidelityAt(n, fbISwap)
	if err != nil {
		return 0, err
	}
	if 1-base <= 0 {
		return 0, fmt.Errorf("experiments: baseline infidelity is zero")
	}
	return ((1 - base) - (1 - ft)) / (1 - base), nil
}

// Format renders the study as text tables.
func (r *Fig15Result) Format() string {
	out := "== Fig 15 (top): avg decomposition infidelity 1-Fd ==\n"
	out += fmt.Sprintf("%-10s", "n\\k")
	for _, k := range r.Ks {
		out += fmt.Sprintf("%12d", k)
	}
	out += "\n"
	for ni, n := range r.Roots {
		out += fmt.Sprintf("%d√iSWAP   ", n)
		for ki := range r.Ks {
			out += fmt.Sprintf("%12.2e", r.AvgInfidelity[ni][ki])
		}
		out += "\n"
	}
	out += "== Fig 15 (bottom): avg total fidelity Ft vs Fb(iSWAP) ==\n"
	out += fmt.Sprintf("%-10s", "n\\Fb")
	for i := 0; i < len(r.FbGrid); i += 4 {
		out += fmt.Sprintf("%10.3f", r.FbGrid[i])
	}
	out += "\n"
	for ni, n := range r.Roots {
		out += fmt.Sprintf("%d√iSWAP   ", n)
		for i := 0; i < len(r.FbGrid); i += 4 {
			out += fmt.Sprintf("%10.4f", r.AvgTotalFidelity[ni][i])
		}
		out += "\n"
	}
	return out
}

// assertFinite is a tiny internal consistency check used by tests.
func (r *Fig15Result) assertFinite() error {
	for ni := range r.Roots {
		for ki := range r.Ks {
			if v := r.AvgInfidelity[ni][ki]; math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("experiments: infidelity out of range: %g", v)
			}
		}
		for fi := range r.FbGrid {
			if v := r.AvgTotalFidelity[ni][fi]; math.IsNaN(v) || v <= 0 || v > 1+1e-9 {
				return fmt.Errorf("experiments: total fidelity out of range: %g", v)
			}
		}
	}
	return nil
}
