// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1/2 (topology properties), Fig. 4/11/12 (SWAP-count
// sweeps), Fig. 13/14 (co-designed 2Q-gate and pulse-duration sweeps),
// Fig. 15 (the n√iSWAP fidelity study), the §6 headline ratios, and the
// ablations called out in DESIGN.md. Every experiment is deterministic via
// fixed seeds; `quick` variants shrink sizes for tests and benchmarks.
//
// Sweeps run on a bounded worker pool (SweepSpec.Parallelism: 0 = auto,
// 1 = serial) and are deterministic by construction: every (workload,
// size) circuit and every (workload, size, machine) evaluation derives its
// RNG seed by FNV-hashing those coordinates together with the spec ID and
// base seed, and results are assembled in fixed nested-loop order. The
// parallel and serial schedules therefore produce byte-identical Series.
//
// The harnesses are built for long unattended runs: Config.Deadline bounds
// a whole study and core.Options.CellTimeout bounds each cell,
// Config.Tolerant completes a sweep around failing cells (reporting the
// casualties as CellErrors next to the partial Series), SweepSpec.Journal
// makes an interrupted sweep crash-resumable with byte-identical output,
// and SweepSpec.CellHook gives fault-injection harnesses a seam to break
// individual cells deterministically.
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// DefaultSeed is the fixed base seed every paper experiment uses.
const DefaultSeed = 2022

// Config is the unified experiment configuration shared by every harness in
// this package (SweepSpec, Headlines, CorralScaling, RunFig15Config) and
// threaded through the qcbench/fidsweep CLIs and the repro facade. It
// embeds core.Options — seed, trials, router, parallelism, profile-guided
// mode and iterations, result cache — and adds the experiment-level Quick
// switch, so a new evaluation knob lands in exactly one struct instead of
// another positional parameter at every call site.
type Config struct {
	core.Options

	// Quick shrinks sweep sizes and trial counts to the test/benchmark
	// configuration; false runs the paper's full sizes.
	Quick bool

	// Deadline, when positive, bounds the whole run's wall-clock: the
	// harness derives a timeout context and every cell inherits it.
	// Complementary to core.Options.CellTimeout, which bounds each cell
	// individually. Like CellTimeout, it changes only whether a run
	// completes, never the numbers a completed run reports.
	Deadline time.Duration

	// Tolerant makes sweeps fault-isolating instead of fail-fast: every
	// cell runs regardless of other cells' failures (panics included —
	// the worker pool recovers them into *par.PanicError), failed cells
	// are dropped from the returned Series, and the casualties are
	// reported as a CellErrors aggregate alongside the partial results.
	Tolerant bool
}

// DefaultConfig returns the experiment-default configuration: the paper's
// fixed seed, full sizes, and a mode-derived trial count (Trials = 0 means
// "use the quick/full default", letting Evaluate's key normalization and
// the historical per-harness trial choices keep their exact behavior).
func DefaultConfig() Config {
	return Config{Options: core.Options{Seed: DefaultSeed}}
}

// QuickConfig is DefaultConfig with Quick set.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Quick = true
	return cfg
}

// effectiveTrials resolves the router trial count: an explicit Trials wins,
// otherwise the historical quick/full defaults (5/20).
func (c Config) effectiveTrials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return trials(c.Quick)
}

// SweepKind selects which pair of metrics a sweep reports.
type SweepKind int

const (
	// SwapCounts reports (total SWAPs, critical-path SWAPs) — the
	// gate-agnostic topology comparison of Figs. 4, 11, 12.
	SwapCounts SweepKind = iota
	// Codesign reports (total 2Q gates, pulse duration) after basis
	// translation — the co-design comparison of Figs. 13, 14.
	Codesign
)

// Point is one (circuit size → metrics) sample. Fidelity is the cell's
// estimated output-state fidelity (core.Metrics.EstFidelity); it is zero —
// and omitted from every rendering — unless the sweep's Config enables a
// fidelity model, so noise-off output stays byte-identical to historical
// runs.
type Point struct {
	Size     int
	Total    float64
	Critical float64
	Fidelity float64
}

// Series is one curve of a figure: a machine/topology on a workload.
type Series struct {
	Label    string
	Workload string
	Points   []Point
}

// SweepSpec describes one figure's sweep. The embedded Config supplies the
// evaluation knobs, promoted so spec.Seed, spec.Trials, spec.Parallelism,
// spec.Cache, spec.ProfileGuided, and spec.ProfileIterations read and
// assign exactly as the old flat fields did:
//
//   - Parallelism bounds the sweep's worker pool (0 = auto/GOMAXPROCS, 1 =
//     serial, n = at most n workers); output is identical at every setting
//     — see the package comment for the determinism scheme.
//   - Cache, when non-nil, memoizes per-cell Evaluate results so repeated
//     or overlapping sweeps (Fig. 4/11/12 share workloads and machines)
//     skip identical routing work; warm results are byte-identical to cold
//     ones because every cell's seed is a pure function of its coordinates.
//   - ProfileGuided routes every cell with the pressure-weighted pipeline
//     (core.Options.ProfileGuided), iterated ProfileIterations times;
//     guided cells are cache-keyed separately from baseline cells, so the
//     two modes can share a store (or -cachedir) without contamination.
//   - Noise/Fidelity/NoiseShots/NoiseRoute (core.Options) make the sweep
//     noise-aware: every cell estimates fidelity (reported per Point) and
//     optionally routes against error-weighted edges. Noisy cells carry
//     the tagged noise/v1 cache-key field, so they never collide with the
//     baseline entries of a shared store.
type SweepSpec struct {
	ID        string
	Kind      SweepKind
	Machines  []core.Machine
	Workloads []string
	Sizes     []int

	// Journal, when non-nil, records every completed cell and replays
	// already-recorded cells without recomputing them (and without
	// re-running CellHook), making an interrupted sweep crash-resumable:
	// see Journal. Replayed output is byte-identical to an uninterrupted
	// run because cells are addressed by the same content hash the
	// Evaluate cache uses.
	Journal *Journal

	// CellHook, when non-nil, runs immediately before each cell's
	// evaluation, under the cell's context (bounded by CellTimeout when
	// one is set); a non-nil return fails the cell as if its evaluation
	// had failed, and a panic is isolated by the worker pool like any
	// task panic. It is the seam the fault-injection harness plugs into
	// (see internal/faultinject) and must never mutate sweep state.
	CellHook CellHook

	Config
}

// CellHook observes one sweep cell immediately before it is evaluated and
// may veto it by returning an error. The signature is structurally shared
// with internal/faultinject.CellHook so injectors plug in without this
// package importing the harness (or vice versa).
type CellHook func(ctx context.Context, workload string, size int, machine string) error

// CellError records the failure of one sweep cell in a tolerant run,
// carrying the cell's coordinates so a partial sweep's casualties are
// attributable without parsing error strings.
type CellError struct {
	Workload string
	Machine  string
	Size     int
	Err      error
}

// Error implements error.
func (e CellError) Error() string {
	return fmt.Sprintf("%s/%s(%d): %v", e.Machine, e.Workload, e.Size, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e CellError) Unwrap() error { return e.Err }

// CellErrors is the aggregate failure of a tolerant sweep: one entry per
// failed cell, in the sweep's fixed cell order. It is returned alongside
// the partial Series, and unwraps to its elements so
// errors.Is(err, context.DeadlineExceeded) answers "did any cell time
// out?" directly.
type CellErrors []CellError

// Error implements error with a count-first summary (individual cells are
// available on the slice).
func (e CellErrors) Error() string {
	if len(e) == 1 {
		return fmt.Sprintf("experiments: 1 cell failed: %s", e[0])
	}
	return fmt.Sprintf("experiments: %d cells failed (first: %s)", len(e), e[0])
}

// Unwrap exposes every cell failure to errors.Is/As traversal.
func (e CellErrors) Unwrap() []error {
	out := make([]error, len(e))
	for i := range e {
		out[i] = e[i]
	}
	return out
}

// BenchmarkCircuit builds the benchmark circuit deterministically per
// (workload, size), independent of machine, so every machine routes the
// exact same logical circuit. Exported because it is half of the sweep
// determinism contract: any process that reproduces a sweep cell —
// including the qcbenchd evaluation service — must generate the identical
// circuit from the identical coordinates.
func BenchmarkCircuit(name string, size int, baseSeed int64) (*circuit.Circuit, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", name, size, baseSeed)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return workloads.Generate(name, size, rng)
}

// circuitFor is the historical internal name for BenchmarkCircuit.
func circuitFor(name string, size int, baseSeed int64) (*circuit.Circuit, error) {
	return BenchmarkCircuit(name, size, baseSeed)
}

// TaskSeed derives the routing seed of one (workload, size, machine) cell
// from the sweep coordinates via FNV, mirroring BenchmarkCircuit: the
// seed is a pure function of what is being evaluated, never of execution
// order. It is the other half of the determinism contract (see
// BenchmarkCircuit) — a remote evaluation service seeding cells with
// TaskSeed produces metrics byte-identical to a local sweep's.
func TaskSeed(id, workload string, size int, machine string, baseSeed int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%s/%d", id, workload, size, machine, baseSeed)
	return int64(h.Sum64())
}

// taskSeed applies TaskSeed to this sweep's ID and base seed.
func (s SweepSpec) taskSeed(workload string, size int, machine string) int64 {
	return TaskSeed(s.ID, workload, size, machine, s.Seed)
}

// Run executes the sweep, returning one Series per (machine, workload).
func (s SweepSpec) Run() ([]Series, error) {
	return s.RunContext(context.Background())
}

// PointFromMetrics projects one cell's metrics onto the pair of values a
// sweep Kind reports. Exported so remote sweep clients assemble Series
// from streamed metrics exactly the way the local engine does.
func PointFromMetrics(kind SweepKind, size int, met core.Metrics) Point {
	p := Point{Size: size, Fidelity: met.EstFidelity}
	switch kind {
	case SwapCounts:
		p.Total = float64(met.TotalSwaps)
		p.Critical = float64(met.CriticalSwaps)
	case Codesign:
		p.Total = float64(met.Total2Q)
		p.Critical = met.PulseDuration
	}
	return p
}

// point applies PointFromMetrics to this sweep's Kind.
func (s SweepSpec) point(size int, met core.Metrics) Point {
	return PointFromMetrics(s.Kind, size, met)
}

// SweepCell locates one evaluation of a sweep: indices into the spec's
// Workloads and Machines, the circuit size, the cell's position in the
// sweep's fixed enumeration order, and which output Series it lands in.
type SweepCell struct {
	Index    int // position in the fixed (workload, machine, size) order
	Workload int // index into SweepSpec.Workloads
	Machine  int // index into SweepSpec.Machines
	Series   int // index into the RunContext result slice
	Size     int
}

// Cells enumerates the sweep's evaluations in the fixed nested-loop order
// — workload outermost, then machine, then size, skipping sizes that
// exceed a machine's qubit count. This order is part of the determinism
// contract: RunContext assembles results by it, and the daemon's /sweep
// endpoint streams cells indexed by it, so both sides agree on which cell
// is which without shipping coordinates out of band.
func (s SweepSpec) Cells() []SweepCell {
	var cells []SweepCell
	series := 0
	for wi := range s.Workloads {
		for mi := range s.Machines {
			for _, size := range s.Sizes {
				if size > s.Machines[mi].Graph.N() {
					continue
				}
				cells = append(cells, SweepCell{
					Index:    len(cells),
					Workload: wi,
					Machine:  mi,
					Series:   series,
					Size:     size,
				})
			}
			series++
		}
	}
	return cells
}

// NumSeries reports how many Series RunContext returns: one per
// (workload, machine) pair, whether or not any cell fits the machine.
func (s SweepSpec) NumSeries() int { return len(s.Workloads) * len(s.Machines) }

// CellOptions resolves the evaluation options of one cell: the spec's
// Options with the cell's FNV-derived seed, the mode-resolved trial
// count, and a serial router-trial pool (cells already saturate the sweep
// workers). Every evaluator of a sweep cell — the local engine and the
// remote daemon — must build its options exactly this way for cache keys
// and metrics to agree.
func (s SweepSpec) CellOptions(c SweepCell) core.Options {
	opt := s.Options
	opt.Seed = s.taskSeed(s.Workloads[c.Workload], c.Size, s.Machines[c.Machine].Name)
	opt.Trials = s.effectiveTrials()
	opt.Parallelism = 1
	return opt
}

// RunContext is Run with cancellation: the sweep stops dispatching cells
// once ctx is done and returns its error (tightened by Config.Deadline
// when one is set). Work is spread over the SweepSpec.Parallelism worker
// pool in two stages — circuit generation per (workload, size), then
// evaluation per (workload, size, machine) — with results written into
// index-addressed slots so output order and content match the serial
// sweep exactly.
//
// Per cell, in order: the Journal is consulted (a recorded cell replays
// without evaluation or CellHook), then CellHook runs, then the machine
// evaluates under the cell's context, then the result is journaled. In
// Tolerant mode a failing cell is recorded and skipped instead of
// aborting the sweep; the partial Series is returned together with the
// CellErrors aggregate.
func (s SweepSpec) RunContext(ctx context.Context) ([]Series, error) {
	if s.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Deadline)
		defer cancel()
	}
	// Stage 1: generate each workload benchmark circuit once, shared by
	// every machine so all machines route the same logical circuit.
	type circKey struct {
		w    int
		size int
	}
	circs := make(map[circKey]*circuit.Circuit, len(s.Workloads)*len(s.Sizes))
	genKeys := make([]circKey, 0, len(s.Workloads)*len(s.Sizes))
	for wi := range s.Workloads {
		for _, size := range s.Sizes {
			genKeys = append(genKeys, circKey{wi, size})
		}
	}
	genOut := make([]*circuit.Circuit, len(genKeys))
	err := par.ForEachCtx(ctx, len(genKeys), s.Parallelism, func(i int) error {
		k := genKeys[i]
		c, err := circuitFor(s.Workloads[k.w], k.size, s.Seed)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s(%d): %w", s.ID, s.Workloads[k.w], k.size, err)
		}
		genOut[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range genKeys {
		circs[k] = genOut[i]
	}
	// Stage 2: evaluate every (workload, machine, size) cell that fits the
	// machine, in the shared Cells() enumeration order. Each cell routes
	// with its own FNV-derived seed (CellOptions); the router's internal
	// trial pool stays serial to avoid oversubscribing the sweep pool when
	// cells already saturate it.
	cells := s.Cells()
	points := make([]Point, len(cells))
	runCell := func(i int) error {
		t := cells[i]
		w, m := s.Workloads[t.Workload], s.Machines[t.Machine]
		// CellOptions resolves Trials through the Config contract (0 = mode
		// default, 5 quick / 20 full) so a hand-built
		// SweepSpec{Config: QuickConfig()} sweeps at the same trial count as
		// Headlines/CorralScaling under that Config.
		opt := s.CellOptions(t)
		c := circs[circKey{t.Workload, t.Size}]
		// Resume: a journaled cell replays its recorded metrics verbatim —
		// no evaluation, no CellHook — so a restarted sweep neither redoes
		// nor re-breaks work it already finished.
		var key cache.Key
		if s.Journal != nil {
			key = m.EvaluateKey(c, opt)
			if met, ok := s.Journal.Lookup(key); ok {
				points[i] = s.point(t.Size, met)
				return nil
			}
		}
		cctx := ctx
		if opt.CellTimeout > 0 {
			// The per-cell budget covers the hook too, and is applied here
			// once rather than again inside EvaluateContext.
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(ctx, opt.CellTimeout)
			defer cancel()
			opt.CellTimeout = 0
		}
		if s.CellHook != nil {
			if err := s.CellHook(cctx, w, t.Size, m.Name); err != nil {
				return err
			}
		}
		met, err := m.EvaluateContext(cctx, c, opt)
		if err != nil {
			return err
		}
		if s.Journal != nil {
			if err := s.Journal.Record(key, met); err != nil {
				return err
			}
		}
		points[i] = s.point(t.Size, met)
		return nil
	}
	var (
		cellErrs CellErrors
		failed   []bool
	)
	if s.Tolerant {
		errs, _ := par.ForEachAllCtx(ctx, len(cells), s.Parallelism, runCell)
		failed = make([]bool, len(cells))
		for i, cerr := range errs {
			if cerr == nil {
				continue
			}
			t := cells[i]
			failed[i] = true
			cellErrs = append(cellErrs, CellError{
				Workload: s.Workloads[t.Workload],
				Machine:  s.Machines[t.Machine].Name,
				Size:     t.Size,
				Err:      cerr,
			})
		}
	} else {
		err := par.ForEachCtx(ctx, len(cells), s.Parallelism, func(i int) error {
			if err := runCell(i); err != nil {
				t := cells[i]
				return fmt.Errorf("experiments: %s/%s/%s(%d): %w",
					s.ID, s.Machines[t.Machine].Name, s.Workloads[t.Workload], t.Size, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Assemble in the fixed (workload, machine, size) order; a tolerant
	// run's failed cells leave holes, never shifted or zero-filled points.
	out := make([]Series, s.NumSeries())
	for wi, w := range s.Workloads {
		for mi, m := range s.Machines {
			out[wi*len(s.Machines)+mi] = Series{Label: m.Name, Workload: w}
		}
	}
	for i, t := range cells {
		if failed != nil && failed[i] {
			continue
		}
		out[t.Series].Points = append(out[t.Series].Points, points[i])
	}
	if len(cellErrs) > 0 {
		return out, cellErrs
	}
	return out, nil
}

// sizes16 and sizes84 are the x-axes for small and scaled machines.
func sizes16(quick bool) []int {
	if quick {
		return []int{6, 10, 16}
	}
	return []int{4, 6, 8, 10, 12, 14, 16}
}

func sizes84(quick bool) []int {
	if quick {
		return []int{16, 32}
	}
	return []int{16, 32, 48, 64, 80}
}

func trials(quick bool) int {
	if quick {
		return 5
	}
	return 20
}

// sweepConfig is the Config every figure spec starts from: the fixed paper
// seed and the mode's explicit trial count (spelled out, not left to
// effectiveTrials, so sweep cache keys stay bit-identical to earlier
// builds' explicit Trials values).
func sweepConfig(quick bool) Config {
	return Config{
		Options: core.Options{Seed: DefaultSeed, Trials: trials(quick)},
		Quick:   quick,
	}
}

// machinesTopoOnly wraps bare topologies with the CX basis: SWAP counting
// is basis-independent (the paper: "independent of choice of basis gate").
func machinesTopoOnly(graphs ...*topology.Graph) []core.Machine {
	out := make([]core.Machine, len(graphs))
	for i, g := range graphs {
		out[i] = core.NewMachine(g.Name, g, weyl.BasisCX)
	}
	return out
}

// Fig4Spec is the 84-qubit topology SWAP sweep over the standard lattices
// plus the hypercube (paper Fig. 4).
func Fig4Spec(quick bool) SweepSpec {
	return SweepSpec{
		ID:   "fig4",
		Kind: SwapCounts,
		Machines: machinesTopoOnly(
			topology.HeavyHex84(),
			topology.HexLattice84(),
			topology.SquareLattice84(),
			topology.LatticeAltDiag84(),
			topology.Hypercube84(),
		),
		Workloads: workloads.Names(),
		Sizes:     sizes84(quick),
		Config:    sweepConfig(quick),
	}
}

// Fig11Spec is the 16-qubit SNAIL-topology SWAP sweep (paper Fig. 11).
func Fig11Spec(quick bool) SweepSpec {
	return SweepSpec{
		ID:   "fig11",
		Kind: SwapCounts,
		Machines: machinesTopoOnly(
			topology.SquareLattice16(),
			topology.Hypercube16(),
			topology.Tree20(),
			topology.TreeRR20(),
			topology.Corral11(),
			topology.Corral12(),
		),
		Workloads: workloads.Names(),
		Sizes:     sizes16(quick),
		Config:    sweepConfig(quick),
	}
}

// Fig12Spec is the 84-qubit sweep including the SNAIL trees (paper Fig. 12).
func Fig12Spec(quick bool) SweepSpec {
	return SweepSpec{
		ID:   "fig12",
		Kind: SwapCounts,
		Machines: machinesTopoOnly(
			topology.HeavyHex84(),
			topology.SquareLattice84(),
			topology.Tree84(),
			topology.TreeRR84(),
			topology.Hypercube84(),
		),
		Workloads: workloads.Names(),
		Sizes:     sizes84(quick),
		Config:    sweepConfig(quick),
	}
}

// Fig13Spec is the 16-20 qubit co-design sweep (paper Fig. 13): each
// topology paired with its modulator's native basis.
func Fig13Spec(quick bool) SweepSpec {
	return SweepSpec{
		ID:        "fig13",
		Kind:      Codesign,
		Machines:  core.Machines16(),
		Workloads: workloads.Names(),
		Sizes:     sizes16(quick),
		Config:    sweepConfig(quick),
	}
}

// Fig14Spec is the 84-qubit co-design sweep (paper Fig. 14).
func Fig14Spec(quick bool) SweepSpec {
	return SweepSpec{
		ID:        "fig14",
		Kind:      Codesign,
		Machines:  core.Machines84(),
		Workloads: workloads.Names(),
		Sizes:     sizes84(quick),
		Config:    sweepConfig(quick),
	}
}

// Table1 returns the measured topology properties of the paper's Table 1.
func Table1() []topology.Stats {
	gs := []*topology.Graph{
		topology.HeavyHex20(),
		topology.HexLattice20(),
		topology.SquareLattice16(),
		topology.Tree20(),
		topology.TreeRR20(),
		topology.Corral11(),
		topology.Corral12(),
		topology.Hypercube16(),
	}
	out := make([]topology.Stats, len(gs))
	for i, g := range gs {
		out[i] = g.Stats()
	}
	return out
}

// Table2 returns the measured topology properties of the paper's Table 2.
func Table2() []topology.Stats {
	gs := []*topology.Graph{
		topology.HeavyHex84(),
		topology.HexLattice84(),
		topology.SquareLattice84(),
		topology.LatticeAltDiag84(),
		topology.Tree84(),
		topology.TreeRR84(),
		topology.Hypercube84(),
	}
	out := make([]topology.Stats, len(gs))
	for i, g := range gs {
		out[i] = g.Stats()
	}
	return out
}

// Headline holds the §1/§6 summary ratios comparing Heavy-Hex+CNOT against
// Hypercube+√iSWAP averaged over QuantumVolume sizes.
type Headline struct {
	Sizes []int
	// S2 (§6.1): total and critical-path SWAP ratios (topology only).
	SwapRatio         float64
	CriticalSwapRatio float64
	// S1 (§1/§6.2): total 2Q and pulse-duration ratios (co-design).
	Total2QRatio  float64
	DurationRatio float64
}

// Headlines computes the headline ratios on QuantumVolume circuits under
// the unified Config: cfg.Parallelism bounds the router's trial pool (0 =
// auto, 1 = serial; the ratios are identical at every setting), cfg.Cache,
// when non-nil, serves repeated invocations from the content-addressed
// Evaluate cache — a second Headlines call sharing a store performs zero
// additional routing — and cfg.ProfileGuided routes both machines with the
// pressure-weighted pipeline (cache-keyed separately from baseline runs,
// iterated cfg.ProfileIterations times).
func Headlines(cfg Config) (Headline, error) {
	return HeadlinesContext(context.Background(), cfg)
}

// HeadlinesContext is Headlines with cancellation: ctx (tightened by
// cfg.Deadline when set) threads into every evaluation's cooperative
// polls, and cfg.CellTimeout bounds each of the study's evaluations
// individually. Neither changes the ratios a completed study reports.
func HeadlinesContext(ctx context.Context, cfg Config) (Headline, error) {
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	sizes := sizes84(cfg.Quick)
	hh := core.HeavyHex84CX()
	hc := core.Hypercube84SqrtISwap()
	res := Headline{Sizes: sizes}
	var sw, cs, tq, du float64
	n := 0
	for _, size := range sizes {
		c, err := circuitFor("QuantumVolume", size, cfg.Seed)
		if err != nil {
			return Headline{}, err
		}
		opt := cfg.Options
		opt.Trials = cfg.effectiveTrials()
		a, err := hh.EvaluateContext(ctx, c, opt)
		if err != nil {
			return Headline{}, err
		}
		b, err := hc.EvaluateContext(ctx, c, opt)
		if err != nil {
			return Headline{}, err
		}
		sw += float64(a.TotalSwaps) / float64(b.TotalSwaps)
		cs += float64(a.CriticalSwaps) / float64(b.CriticalSwaps)
		tq += float64(a.Total2Q) / float64(b.Total2Q)
		du += a.PulseDuration / b.PulseDuration
		n++
	}
	res.SwapRatio = sw / float64(n)
	res.CriticalSwapRatio = cs / float64(n)
	res.Total2QRatio = tq / float64(n)
	res.DurationRatio = du / float64(n)
	return res, nil
}

// FormatSeries renders sweep results as an aligned text table, one block
// per workload, one row per machine, matching the paper's figure layout.
// Workload groups where some point carries a fidelity estimate gain an
// extra [estFidelity] block; noise-off sweeps render byte-identically to
// historical output (pinned by the fig11 golden).
func FormatSeries(series []Series, kind SweepKind) string {
	totalName, critName := "totalSwaps", "critSwaps"
	if kind == Codesign {
		totalName, critName = "total2Q", "pulseDur"
	}
	byWorkload := map[string][]Series{}
	var order []string
	for _, s := range series {
		if _, ok := byWorkload[s.Workload]; !ok {
			order = append(order, s.Workload)
		}
		byWorkload[s.Workload] = append(byWorkload[s.Workload], s)
	}
	var sb strings.Builder
	for _, w := range order {
		fmt.Fprintf(&sb, "== %s ==\n", w)
		group := byWorkload[w]
		// Collect sizes across the group.
		sizeSet := map[int]bool{}
		for _, s := range group {
			for _, p := range s.Points {
				sizeSet[p.Size] = true
			}
		}
		var sizes []int
		for sz := range sizeSet {
			sizes = append(sizes, sz)
		}
		sort.Ints(sizes)
		metrics := []string{totalName, critName}
		if seriesHaveFidelity(group) {
			metrics = append(metrics, "estFidelity")
		}
		for _, metric := range metrics {
			fmt.Fprintf(&sb, "  [%s]\n", metric)
			fmt.Fprintf(&sb, "  %-24s", "machine\\n")
			for _, sz := range sizes {
				fmt.Fprintf(&sb, "%10d", sz)
			}
			sb.WriteString("\n")
			for _, s := range group {
				fmt.Fprintf(&sb, "  %-24s", s.Label)
				vals := map[int]float64{}
				format := "%10.1f"
				if metric == "estFidelity" {
					format = "%10.4f"
				}
				for _, p := range s.Points {
					switch metric {
					case totalName:
						vals[p.Size] = p.Total
					case "estFidelity":
						vals[p.Size] = p.Fidelity
					default:
						vals[p.Size] = p.Critical
					}
				}
				for _, sz := range sizes {
					if v, ok := vals[sz]; ok {
						fmt.Fprintf(&sb, format, v)
					} else {
						fmt.Fprintf(&sb, "%10s", "-")
					}
				}
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}

// seriesHaveFidelity reports whether any point in the group carries a
// fidelity estimate (EstFidelity is never exactly zero for a circuit that
// evaluated under a fidelity model, and exactly zero when the model is
// off).
func seriesHaveFidelity(group []Series) bool {
	for _, s := range group {
		for _, p := range s.Points {
			if p.Fidelity != 0 {
				return true
			}
		}
	}
	return false
}

// FormatStats renders Table 1/2 rows.
func FormatStats(rows []topology.Stats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %7s %6s %7s %7s\n", "Topology", "Qubits", "Dia", "AvgD", "AvgC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %7d %6d %7.2f %7.2f\n", r.Name, r.Qubits, r.Diameter, r.AvgDist, r.AvgConn)
	}
	return sb.String()
}
