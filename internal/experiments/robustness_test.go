package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/topology"
)

// chaosSpec is the tiny sweep every robustness test drives: 2 machines ×
// 2 workloads × 2 sizes = 8 cells, small enough for -race chaos runs.
func chaosSpec() SweepSpec {
	return SweepSpec{
		ID:        "chaos",
		Kind:      SwapCounts,
		Machines:  machinesTopoOnly(topology.SquareLattice16(), topology.Tree20()),
		Workloads: []string{"GHZ", "QFT"},
		Sizes:     []int{4, 6},
		Config:    QuickConfig(),
	}
}

// pointIndex flattens series into a (label, workload, size) → Point map so
// partial results can be compared cell-by-cell against a clean run.
func pointIndex(series []Series) map[[2]string]map[int]Point {
	out := map[[2]string]map[int]Point{}
	for _, s := range series {
		k := [2]string{s.Label, s.Workload}
		if out[k] == nil {
			out[k] = map[int]Point{}
		}
		for _, p := range s.Points {
			out[k][p.Size] = p
		}
	}
	return out
}

// TestFaultTolerantSweepIsolatesPanics: with a deterministic panic
// injector breaking roughly half the cells, a tolerant sweep still
// completes, reports every casualty as a *par.PanicError inside
// CellErrors, and the surviving cells match a clean run exactly.
func TestFaultTolerantSweepIsolatesPanics(t *testing.T) {
	clean, err := chaosSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := chaosSpec()
	spec.Tolerant = true
	spec.CellHook = faultinject.PanicCells(3, 0.5)
	got, err := spec.RunContext(context.Background())
	var ce CellErrors
	if !errors.As(err, &ce) || len(ce) == 0 {
		t.Fatalf("injected-panic sweep error = %v, want non-empty CellErrors", err)
	}
	nCells := len(spec.Machines) * len(spec.Workloads) * len(spec.Sizes)
	if len(ce) >= nCells {
		t.Fatalf("all %d cells failed; injector p=0.5 should spare some", nCells)
	}
	for _, c := range ce {
		var pe *par.PanicError
		if !errors.As(c.Err, &pe) {
			t.Fatalf("cell %s error = %v, want *par.PanicError", c, c.Err)
		}
	}
	want := pointIndex(clean)
	for _, s := range got {
		for _, p := range s.Points {
			if want[[2]string{s.Label, s.Workload}][p.Size] != p {
				t.Fatalf("surviving cell %s/%s(%d) diverged from clean run", s.Label, s.Workload, p.Size)
			}
		}
	}
}

// TestChaosSlowCellsHitCellTimeout: an injector that hangs every cell until
// its context dies, combined with a per-cell budget, must fail every cell
// with context.DeadlineExceeded — visible both per cell and through the
// aggregate's errors.Is unwrapping — while the sweep itself completes.
func TestChaosSlowCellsHitCellTimeout(t *testing.T) {
	spec := chaosSpec()
	spec.Tolerant = true
	spec.CellTimeout = 5 * time.Millisecond
	spec.CellHook = faultinject.SlowCells(11, 1)
	got, err := spec.RunContext(context.Background())
	var ce CellErrors
	if !errors.As(err, &ce) {
		t.Fatalf("slow sweep error = %v, want CellErrors", err)
	}
	nCells := len(spec.Machines) * len(spec.Workloads) * len(spec.Sizes)
	if len(ce) != nCells {
		t.Fatalf("%d cells failed, want all %d", len(ce), nCells)
	}
	for _, c := range ce {
		if !errors.Is(c.Err, context.DeadlineExceeded) {
			t.Fatalf("cell %v failed with %v, want DeadlineExceeded", c, c.Err)
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("CellErrors does not unwrap to context.DeadlineExceeded")
	}
	for _, s := range got {
		if len(s.Points) != 0 {
			t.Fatal("fully-failed sweep still produced points")
		}
	}
}

// TestFaultSweepDeadlineExpires: an already-expired whole-sweep deadline
// fails a fail-fast run with context.DeadlineExceeded.
func TestFaultSweepDeadlineExpires(t *testing.T) {
	spec := chaosSpec()
	spec.Deadline = time.Nanosecond
	if _, err := spec.RunContext(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns sweep deadline = %v, want context.DeadlineExceeded", err)
	}
}

// TestSweepResumeByteIdentical is the acceptance test for crash-resume: a
// sweep that completes only some cells (fault-injected) while journaling,
// then re-runs against the same journal, produces Series byte-identical to
// an uninterrupted clean run — and a third run against the now-complete
// journal replays entirely, never invoking the evaluation path (pinned by
// a hook that would fail every cell it reaches).
func TestSweepResumeByteIdentical(t *testing.T) {
	clean, err := chaosSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Run 1: half the cells fail; survivors are journaled.
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := chaosSpec()
	spec.Journal = j1
	spec.Tolerant = true
	spec.CellHook = faultinject.FailCells(3, 0.5)
	if _, err := spec.RunContext(context.Background()); err == nil {
		t.Fatal("fault-injected first run reported no failures; test needs a partial journal")
	}
	done := j1.Len()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	nCells := len(spec.Machines) * len(spec.Workloads) * len(spec.Sizes)
	if done == 0 || done >= nCells {
		t.Fatalf("first run journaled %d/%d cells, want a strict subset", done, nCells)
	}

	// Run 2: resume with the fault gone — fills in the missing cells and
	// must match the uninterrupted run exactly.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != done {
		t.Fatalf("reopened journal has %d cells, want %d", j2.Len(), done)
	}
	spec = chaosSpec()
	spec.Journal = j2
	resumed, err := spec.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resumed sweep diverged from clean run:\n  clean   %+v\n  resumed %+v", clean, resumed)
	}

	// Run 3: the journal is complete, so every cell replays — a hook that
	// fails everything it touches must never be reached.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Len() != nCells {
		t.Fatalf("completed journal has %d cells, want %d", j3.Len(), nCells)
	}
	var hookCalls atomic.Int64
	spec = chaosSpec()
	spec.Journal = j3
	spec.CellHook = func(context.Context, string, int, string) error {
		hookCalls.Add(1)
		return errors.New("evaluation path reached on a fully-journaled sweep")
	}
	replayed, err := spec.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if n := hookCalls.Load(); n != 0 {
		t.Fatalf("replay invoked the cell hook %d times", n)
	}
	if !reflect.DeepEqual(replayed, clean) {
		t.Fatal("fully-journaled replay diverged from clean run")
	}
}

// TestJournalResumeToleratesTornTail: garbage after the last complete
// record — a crash mid-append — is dropped on open instead of poisoning
// the resume, while corruption of an interior record fails loudly.
func TestJournalResumeToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := chaosSpec()
	spec.Journal = j
	if _, err := spec.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef torn-write-no-newline"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopened, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if reopened.Len() != n {
		t.Fatalf("torn-tail journal indexed %d cells, want %d", reopened.Len(), n)
	}
	reopened.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] = 'z' // corrupt an interior record's key hex
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("interior corruption went undetected")
	}
}

// TestJournalNilIsInert: the nil-journal convention sweep plumbing relies
// on — every method a safe no-op.
func TestJournalNilIsInert(t *testing.T) {
	var j *Journal
	if _, ok := j.Lookup([32]byte{1}); ok {
		t.Fatal("nil journal reported a hit")
	}
	if err := j.Record([32]byte{1}, core.Metrics{}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatal("nil journal has nonzero length")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
