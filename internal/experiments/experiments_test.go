package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/optimize"
)

// serialQuickConfig is the tests' standard harness configuration: quick
// sizes, serial evaluation, optional shared store.
func serialQuickConfig(store *cache.Store[core.Metrics]) Config {
	cfg := QuickConfig()
	cfg.Parallelism = 1
	cfg.Cache = store
	return cfg
}

func TestTable1Properties(t *testing.T) {
	rows := Table1()
	byName := map[string]int{}
	for i, r := range rows {
		byName[r.Name] = i
	}
	// Exact paper matches (Table 1).
	checks := []struct {
		name    string
		qubits  int
		dia     int
		avgD    float64
		avgC    float64
		avgDTol float64
	}{
		{"Square-Lattice", 16, 6, 2.5, 3.0, 1e-9},
		{"Hypercube", 16, 4, 2.0, 4.0, 1e-9},
		{"Tree", 20, 3, 2.15, 4.6, 0.05},
		{"Tree-RR", 20, 3, 2.03, 4.6, 0.05},
		{"Corral(1,1)", 16, 4, 2.06, 5.0, 0.01},
		{"Corral(1,2)", 16, 2, 1.5, 6.0, 1e-9},
	}
	for _, c := range checks {
		i, ok := byName[c.name]
		if !ok {
			t.Fatalf("missing row %q", c.name)
		}
		r := rows[i]
		if r.Qubits != c.qubits || r.Diameter != c.dia {
			t.Errorf("%s: qubits/dia = %d/%d, want %d/%d", c.name, r.Qubits, r.Diameter, c.qubits, c.dia)
		}
		if math.Abs(r.AvgDist-c.avgD) > c.avgDTol {
			t.Errorf("%s: AvgD = %g, want %g", c.name, r.AvgDist, c.avgD)
		}
		if math.Abs(r.AvgConn-c.avgC) > 0.01 {
			t.Errorf("%s: AvgC = %g, want %g", c.name, r.AvgConn, c.avgC)
		}
	}
}

func TestTable2Properties(t *testing.T) {
	rows := Table2()
	byName := map[string]int{}
	for i, r := range rows {
		byName[r.Name] = i
	}
	checks := []struct {
		name string
		dia  int
		avgC float64
		tolC float64
	}{
		{"Square-Lattice", 17, 3.55, 0.01},
		{"Lattice+AltDiag", 11, 5.12, 0.01},
		{"Hypercube", 7, 6.0, 1e-9},
		{"Tree", 5, 4.90, 0.01},    // paper reports 4.71; see EXPERIMENTS.md
		{"Tree-RR", 5, 4.90, 0.01}, // paper reports 4.71
	}
	for _, c := range checks {
		i, ok := byName[c.name]
		if !ok {
			t.Fatalf("missing row %q", c.name)
		}
		r := rows[i]
		if r.Qubits != 84 {
			t.Errorf("%s: qubits = %d, want 84", c.name, r.Qubits)
		}
		if r.Diameter != c.dia {
			t.Errorf("%s: dia = %d, want %d", c.name, r.Diameter, c.dia)
		}
		if math.Abs(r.AvgConn-c.avgC) > c.tolC {
			t.Errorf("%s: AvgC = %g, want %g", c.name, r.AvgConn, c.avgC)
		}
	}
}

func TestFig11SweepShape(t *testing.T) {
	spec := Fig11Spec(true)
	spec.Workloads = []string{"GHZ", "QFT"} // keep the test fast
	series, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(spec.Machines)*2 {
		t.Fatalf("series count = %d, want %d", len(series), len(spec.Machines)*2)
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("%s/%s: empty series", s.Label, s.Workload)
		}
		for _, p := range s.Points {
			if p.Critical > p.Total {
				t.Errorf("%s/%s size %d: critical swaps %g exceed total %g",
					s.Label, s.Workload, p.Size, p.Critical, p.Total)
			}
		}
	}
	txt := FormatSeries(series, SwapCounts)
	if !strings.Contains(txt, "totalSwaps") || !strings.Contains(txt, "Corral(1,2)") {
		t.Error("formatted output missing expected fields")
	}
}

func TestFig13CodesignOrdering(t *testing.T) {
	// At 16 qubits the Corral+√iSWAP should beat Heavy-Hex+CX on QV
	// duration (the paper's co-design claim, Fig. 13).
	spec := Fig13Spec(true)
	spec.Workloads = []string{"QuantumVolume"}
	spec.Sizes = []int{12}
	series, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) Point {
		for _, s := range series {
			if s.Label == label && len(s.Points) > 0 {
				return s.Points[0]
			}
		}
		t.Fatalf("missing series %q", label)
		return Point{}
	}
	hh := get("Heavy-Hex-CX")
	corral := get("Corral11-sqrtISWAP")
	if corral.Critical >= hh.Critical {
		t.Errorf("Corral duration %g should beat Heavy-Hex %g", corral.Critical, hh.Critical)
	}
	if corral.Total >= hh.Total {
		t.Errorf("Corral total 2Q %g should beat Heavy-Hex %g", corral.Total, hh.Total)
	}
}

func TestHeadlinesDirection(t *testing.T) {
	h, err := Headlines(serialQuickConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2.57× / 5.63× / 3.16× / 6.11×. Exact values depend on router
	// randomness and sizes; the direction and rough scale must hold.
	if h.SwapRatio < 1.5 {
		t.Errorf("total swap ratio %.2f, expected > 1.5 (paper: 2.57)", h.SwapRatio)
	}
	if h.CriticalSwapRatio < 2.0 {
		t.Errorf("critical swap ratio %.2f, expected > 2 (paper: 5.63)", h.CriticalSwapRatio)
	}
	if h.Total2QRatio < 1.8 {
		t.Errorf("total 2Q ratio %.2f, expected > 1.8 (paper: 3.16)", h.Total2QRatio)
	}
	if h.DurationRatio < 3.0 {
		t.Errorf("duration ratio %.2f, expected > 3 (paper: 6.11)", h.DurationRatio)
	}
}

func fastDecompCfg() decomp.Config {
	return decomp.Config{Restarts: 2, Adam: optimize.AdamConfig{MaxIter: 200, LearningRate: 0.08}}
}

func TestFig15Small(t *testing.T) {
	res, err := RunFig15(3, 99, fastDecompCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.assertFinite(); err != nil {
		t.Fatal(err)
	}
	// √iSWAP with k=3 decomposes anything: near-zero infidelity.
	if inf := res.AvgInfidelity[0][1]; inf > 1e-4 { // n=2, k=3
		t.Errorf("√iSWAP k=3 avg infidelity %g, want ≈0", inf)
	}
	// k=2 for n=7 cannot represent generic unitaries: visible error.
	ni := len(res.Roots) - 1
	if inf := res.AvgInfidelity[ni][0]; inf < 1e-3 {
		t.Errorf("7√iSWAP k=2 avg infidelity %g — too good to be true", inf)
	}
	// Total fidelity at perfect base gate approaches 1 for n=2.
	ft, err := res.TotalFidelityAt(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ft < 1-1e-4 {
		t.Errorf("Ft(n=2, Fb=1) = %g, want ≈1", ft)
	}
	// At Fb=0.99, some root n>2 should improve on √iSWAP (§6.3 direction).
	improved := false
	for _, n := range []int{3, 4, 5} {
		imp, err := res.InfidelityImprovement(n, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if imp > 0 {
			improved = true
		}
	}
	if !improved {
		t.Error("no fractional root improved on √iSWAP at Fb=0.99")
	}
	if out := res.Format(); !strings.Contains(out, "Fig 15") {
		t.Error("formatting broken")
	}
}

func TestDurationAxis(t *testing.T) {
	if Duration(2, 3) != 1.5 || Duration(3, 4) != 4.0/3.0 {
		t.Error("duration axis k/n wrong")
	}
}

func TestCircuitForDeterminism(t *testing.T) {
	a, err := circuitFor("QuantumVolume", 8, 2022)
	if err != nil {
		t.Fatal(err)
	}
	b, err := circuitFor("QuantumVolume", 8, 2022)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("nondeterministic circuit generation")
	}
	for i := range a.Ops {
		if !a.Ops[i].U.EqualWithin(b.Ops[i].U, 0) {
			t.Fatal("nondeterministic QV unitaries")
		}
	}
}
