package experiments

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
)

// Journal is the sweep's crash-resume log: an append-only text file with
// one line per completed cell — the cell's core.Machine.EvaluateKey in hex,
// a space, and its JSON-encoded core.Metrics. SweepSpec.RunContext consults
// it before computing each cell and replays recorded results verbatim, so a
// run killed mid-sweep and restarted with the same journal file produces
// output byte-identical to an uninterrupted run while recomputing only the
// missing cells. Cells are addressed by the same content hash the Evaluate
// cache uses, so runtime knobs (CellTimeout, Parallelism) never split the
// journal's identity space while semantic inputs (seed, trials, router,
// machine, circuit) always do.
//
// Each record is written with a single O_APPEND write, so concurrent sweep
// workers in one process never interleave partial lines and a crash loses
// at most the line being written (which OpenJournal then tolerates). A nil
// *Journal is valid and inert: Lookup always misses and Record/Close do
// nothing, so callers thread an optional journal without branching.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[cache.Key]core.Metrics
}

// OpenJournal opens the journal at path, creating it if absent, and
// indexes its existing records for Lookup. A malformed final line without
// a trailing newline — the footprint of a crash mid-append — is dropped
// and overwritten by subsequent appends' lines; a malformed interior line
// means real corruption and fails loudly rather than silently recomputing
// (and re-randomizing nothing — replays are deterministic — but wasting)
// already-finished work.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: read journal %s: %w", path, err)
	}
	j := &Journal{f: f, seen: make(map[cache.Key]core.Metrics)}
	complete := strings.HasSuffix(string(data), "\n")
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for li, line := range lines {
		if line == "" {
			continue
		}
		k, met, perr := parseJournalRecord(line)
		if perr != nil {
			if li == len(lines)-1 && !complete {
				break // torn tail from a crash mid-append; recompute that cell
			}
			f.Close()
			return nil, fmt.Errorf("experiments: journal %s line %d: %w", path, li+1, perr)
		}
		j.seen[k] = met
	}
	return j, nil
}

// parseJournalRecord decodes one "keyhex metricsJSON" line.
func parseJournalRecord(line string) (cache.Key, core.Metrics, error) {
	var k cache.Key
	sp := strings.IndexByte(line, ' ')
	if sp != hex.EncodedLen(len(k)) {
		return k, core.Metrics{}, fmt.Errorf("malformed record (no key/metrics separator)")
	}
	raw, err := hex.DecodeString(line[:sp])
	if err != nil {
		return k, core.Metrics{}, fmt.Errorf("malformed key: %w", err)
	}
	copy(k[:], raw)
	var met core.Metrics
	if err := json.Unmarshal([]byte(line[sp+1:]), &met); err != nil {
		return k, core.Metrics{}, fmt.Errorf("malformed metrics: %w", err)
	}
	return k, met, nil
}

// Lookup returns the recorded metrics of the cell with the given evaluate
// key, if any. Safe on a nil *Journal (always a miss).
func (j *Journal) Lookup(k cache.Key) (core.Metrics, bool) {
	if j == nil {
		return core.Metrics{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	met, ok := j.seen[k]
	return met, ok
}

// Record appends one completed cell to the journal and its in-memory
// index; recording a key that is already present is a no-op, so replayed
// cells never duplicate lines. Safe for concurrent writers — each record
// is one O_APPEND write under the journal lock, so parallel sweep cells
// (or a daemon's concurrent /sweep handlers) never interleave partial
// lines — and safe on a nil *Journal (no-op). Recording after Close is an
// error, not a silent write on a dead handle.
func (j *Journal) Record(k cache.Key, met core.Metrics) error {
	if j == nil {
		return nil
	}
	buf, err := json.Marshal(met)
	if err != nil {
		return fmt.Errorf("experiments: journal encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("experiments: journal record after Close")
	}
	if _, dup := j.seen[k]; dup {
		return nil
	}
	line := make([]byte, 0, hex.EncodedLen(len(k))+1+len(buf)+1)
	line = append(line, k.String()...)
	line = append(line, ' ')
	line = append(line, buf...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("experiments: journal append: %w", err)
	}
	j.seen[k] = met
	return nil
}

// Len reports how many cells the journal currently holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Sync flushes recorded cells to stable storage, so a drain point (e.g. a
// daemon stopping on SIGTERM) can guarantee the journal survives a
// machine crash, not just a process exit. Safe on a nil or closed
// *Journal (no-op).
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiments: journal sync: %w", err)
	}
	return nil
}

// Close syncs and releases the journal's file handle; later Records fail
// and later Closes are no-ops. Taken under the journal lock so a Close
// racing concurrent writers never yanks the handle mid-append. Safe on a
// nil *Journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	syncErr := f.Sync()
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: journal close: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("experiments: journal sync on close: %w", syncErr)
	}
	return nil
}
