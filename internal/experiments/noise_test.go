package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/par"
)

// noisySpec is chaosSpec with a sweep-level noise profile and the count
// fidelity model: the smallest noise-aware sweep. The ID (and with it every
// cell's routing seed) stays chaosSpec's, so noisy cells route exactly the
// circuits the clean sweep routes.
func noisySpec() SweepSpec {
	spec := chaosSpec()
	spec.Noise = &arch.NoiseProfile{E2Q: 0.002, TDec: 0.001}
	spec.Fidelity = core.FidelityCount
	return spec
}

// TestNoisySweepReportsFidelity: a noise-aware sweep fills every point's
// Fidelity with a value in (0,1), and both renderers grow their fidelity
// section — while the noise-off sweep's output stays free of it.
func TestNoisySweepReportsFidelity(t *testing.T) {
	series, err := noisySpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for _, p := range s.Points {
			if p.Fidelity <= 0 || p.Fidelity >= 1 {
				t.Fatalf("%s/%s(%d): fidelity %g, want in (0,1)", s.Label, s.Workload, p.Size, p.Fidelity)
			}
		}
	}
	text := FormatSeries(series, SwapCounts)
	if !strings.Contains(text, "[estFidelity]") {
		t.Fatal("noisy FormatSeries has no [estFidelity] block")
	}
	csv := SeriesCSV(series, SwapCounts)
	if !strings.Contains(csv, "est_fidelity") {
		t.Fatal("noisy SeriesCSV has no est_fidelity column")
	}

	clean, err := chaosSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatSeries(clean, SwapCounts); strings.Contains(s, "estFidelity") {
		t.Fatal("noise-off FormatSeries leaked a fidelity block")
	}
	if s := SeriesCSV(clean, SwapCounts); strings.Contains(s, "est_fidelity") {
		t.Fatal("noise-off SeriesCSV leaked a fidelity column")
	}
	// The noisy sweep's routing numbers match the clean sweep exactly: the
	// count model only observes the routed circuit, it never perturbs it.
	want := pointIndex(clean)
	for _, s := range series {
		for _, p := range s.Points {
			w := want[[2]string{s.Label, s.Workload}][p.Size]
			if p.Total != w.Total || p.Critical != w.Critical {
				t.Fatalf("%s/%s(%d): noisy routing (%g, %g) != clean (%g, %g)",
					s.Label, s.Workload, p.Size, p.Total, p.Critical, w.Total, w.Critical)
			}
		}
	}
}

// TestNoisyFaultTolerantSweep mirrors TestFaultTolerantSweepIsolatesPanics
// for the noise-aware path, under the Monte-Carlo estimator so the panic
// injection lands while trajectories are fanned out: failures stay
// isolated to their cells, and every surviving cell — trajectory-sampled
// fidelity included — matches a clean noisy run exactly.
func TestNoisyFaultTolerantSweep(t *testing.T) {
	mc := noisySpec()
	mc.Fidelity = core.FidelityMonteCarlo
	mc.NoiseShots = 16
	clean, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := mc
	spec.Tolerant = true
	spec.CellHook = faultinject.PanicCells(3, 0.5)
	got, err := spec.RunContext(context.Background())
	var ce CellErrors
	if !errors.As(err, &ce) || len(ce) == 0 {
		t.Fatalf("injected-panic noisy sweep error = %v, want non-empty CellErrors", err)
	}
	nCells := len(spec.Machines) * len(spec.Workloads) * len(spec.Sizes)
	if len(ce) >= nCells {
		t.Fatalf("all %d cells failed; injector p=0.5 should spare some", nCells)
	}
	for _, c := range ce {
		var pe *par.PanicError
		if !errors.As(c.Err, &pe) {
			t.Fatalf("cell %s error = %v, want *par.PanicError", c, c.Err)
		}
	}
	want := pointIndex(clean)
	for _, s := range got {
		for _, p := range s.Points {
			if want[[2]string{s.Label, s.Workload}][p.Size] != p {
				t.Fatalf("surviving noisy cell %s/%s(%d) diverged from clean run", s.Label, s.Workload, p.Size)
			}
		}
	}
}

// TestFig15ConfigCountPathUnchanged: without the Monte-Carlo model,
// RunFig15Config is byte-identical to the historical RunFig15Parallel —
// the noise refactor must not move the closed-form study.
func TestFig15ConfigCountPathUnchanged(t *testing.T) {
	dc := fastDecompCfg()
	want, err := RunFig15Parallel(2, 42, dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 42
	got, err := RunFig15Config(2, dc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunFig15Config (count path) diverged from RunFig15Parallel")
	}
}

// TestFig15MonteCarlo: the trajectory-sampled bottom panel stays finite,
// agrees with the closed form at the noiseless end of the grid (Fb = 1 ⇒
// zero gate error ⇒ every trajectory is the ideal state), and is
// byte-identical at every parallelism setting.
func TestFig15MonteCarlo(t *testing.T) {
	dc := fastDecompCfg()
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Fidelity = core.FidelityMonteCarlo
	cfg.NoiseShots = 16
	mc, err := RunFig15Config(2, dc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.assertFinite(); err != nil {
		t.Fatal(err)
	}
	closed, err := RunFig15Parallel(2, 42, dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The top panel is the same decomposition study either way.
	if !reflect.DeepEqual(mc.AvgInfidelity, closed.AvgInfidelity) {
		t.Fatal("Monte-Carlo mode changed the decomposition panel")
	}
	last := len(mc.FbGrid) - 1
	for ni := range mc.Roots {
		if mcV, cV := mc.AvgTotalFidelity[ni][last], closed.AvgTotalFidelity[ni][last]; mcV != cV {
			t.Fatalf("root %d at Fb=1: MC %g != closed form %g", mc.Roots[ni], mcV, cV)
		}
	}
	cfg.Parallelism = 1
	serial, err := RunFig15Config(2, dc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mc, serial) {
		t.Fatal("Monte-Carlo study diverges between parallel and serial runs")
	}
}
