package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
)

// equivSpecs are reduced sweeps covering both sweep kinds and every
// Fig4–Fig14 machine family; the full-size specs only differ in sizes and
// trial counts, which don't change the code paths under test.
func equivSpecs() []SweepSpec {
	fig11 := Fig11Spec(true)
	fig11.Workloads = []string{"GHZ", "QFT"}
	fig13 := Fig13Spec(true)
	fig13.Workloads = []string{"QuantumVolume"}
	fig13.Sizes = []int{10}
	fig4 := Fig4Spec(true)
	fig4.Workloads = []string{"GHZ"}
	fig4.Sizes = []int{16}
	fig12 := Fig12Spec(true)
	fig12.Workloads = []string{"GHZ"}
	fig12.Sizes = []int{16}
	fig14 := Fig14Spec(true)
	fig14.Workloads = []string{"GHZ"}
	fig14.Sizes = []int{16}
	return []SweepSpec{fig11, fig13, fig4, fig12, fig14}
}

// TestRunParallelMatchesSerial asserts the sweep engine's core determinism
// guarantee: Parallelism 0 (auto) and explicit worker counts produce Series
// byte-identical to the serial (Parallelism 1) run — same labels, points,
// and ordering.
func TestRunParallelMatchesSerial(t *testing.T) {
	for _, spec := range equivSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			serial := spec
			serial.Parallelism = 1
			want, err := serial.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{0, 4} {
				par := spec
				par.Parallelism = p
				got, err := par.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Parallelism=%d diverges from serial:\n got: %+v\nwant: %+v", p, got, want)
				}
			}
		})
	}
}

// TestFig15ParallelMatchesSerial asserts the decomposition fan-out's
// determinism: every (n, k, sample) cell optimizes under its own
// FNV-derived seed, so the serial and worker-pool schedules produce
// byte-identical studies (exact float equality, not tolerance).
func TestFig15ParallelMatchesSerial(t *testing.T) {
	cfg := fastDecompCfg()
	want, err := RunFig15Parallel(2, 42, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 4} {
		got, err := RunFig15Parallel(2, 42, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RunFig15Parallel(%d) diverges from serial", p)
		}
	}
}

// TestFig15CellSeedStability pins the per-cell seed scheme (a seed is a
// pure function of coordinates, so schedules can never change results).
func TestFig15CellSeedStability(t *testing.T) {
	// Golden value pins the derivation across builds and refactors — a
	// self-comparison would pass even if the scheme picked up a
	// process-varying component.
	if got := fig15CellSeed(7, 2, 3, 1); got != 1595833209106522590 {
		t.Fatalf("fig15CellSeed(7,2,3,1) = %d, derivation scheme drifted", got)
	}
	seen := map[int64][3]int{}
	for _, c := range [][3]int{{2, 3, 0}, {2, 3, 1}, {2, 4, 0}, {3, 3, 0}} {
		s := fig15CellSeed(7, c[0], c[1], c[2])
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %v and %v", c, prev)
		}
		seen[s] = c
	}
}

// TestRunContextCancelled ensures a cancelled context aborts the sweep.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Fig11Spec(true)
	spec.Parallelism = 2
	if _, err := spec.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestTaskSeedStability pins the FNV seed-derivation scheme: the routing
// seed of a sweep cell depends only on its coordinates, so reordering or
// re-slicing a sweep can never change a cell's result.
func TestTaskSeedStability(t *testing.T) {
	a := SweepSpec{ID: "fig11", Config: Config{Options: core.Options{Seed: 2022}}}
	if a.taskSeed("GHZ", 8, "Hypercube") != a.taskSeed("GHZ", 8, "Hypercube") {
		t.Fatal("taskSeed not deterministic")
	}
	distinct := map[int64]string{}
	for _, c := range []struct {
		w string
		n int
		m string
	}{
		{"GHZ", 8, "Hypercube"},
		{"GHZ", 8, "Tree"},
		{"GHZ", 10, "Hypercube"},
		{"QFT", 8, "Hypercube"},
	} {
		s := a.taskSeed(c.w, c.n, c.m)
		if prev, dup := distinct[s]; dup {
			t.Fatalf("seed collision between %v and %s", c, prev)
		}
		distinct[s] = c.w + c.m
	}
}
