package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/weyl"
)

// TestSweepWithVerification runs a small sweep with Options.Verify flowing
// through the embedded Config: every cell's routing is simulated against
// its logical circuit, and the verified Series must be byte-identical to
// the unverified ones (verification observes, never alters).
func TestSweepWithVerification(t *testing.T) {
	spec := SweepSpec{
		ID:   "verify-sweep",
		Kind: SwapCounts,
		Machines: []core.Machine{
			core.NewMachine("Tree", topology.Tree20(), weyl.BasisCX),
			core.NewMachine("Corral", topology.Corral11(), weyl.BasisCX),
		},
		Workloads: []string{"QuantumVolume", "GHZ"},
		Sizes:     []int{4, 6},
		Config:    QuickConfig(),
	}
	plain, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec.Verify = true
	verified, err := spec.Run()
	if err != nil {
		t.Fatalf("verified sweep: %v", err)
	}
	if len(plain) != len(verified) {
		t.Fatalf("series count %d != %d", len(plain), len(verified))
	}
	for i := range plain {
		a, b := plain[i], verified[i]
		if a.Label != b.Label || a.Workload != b.Workload || len(a.Points) != len(b.Points) {
			t.Fatalf("series %d shape mismatch", i)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("series %d point %d: %+v != %+v", i, j, a.Points[j], b.Points[j])
			}
		}
	}
}
