package experiments

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

// TestSweepWarmCacheByteIdentical is the cache's correctness bar: a sweep
// through a cold store, the same sweep served warm, and the uncached sweep
// all produce byte-identical Series, and the warm pass performs zero
// additional routing (no new fills).
func TestSweepWarmCacheByteIdentical(t *testing.T) {
	for _, spec := range equivSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			uncached := spec
			uncached.Parallelism = 1
			want, err := uncached.Run()
			if err != nil {
				t.Fatal(err)
			}

			store := cache.NewMemory[core.Metrics](0)
			cold := spec
			cold.Parallelism = 1
			cold.Cache = store
			got, err := cold.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cold cached run diverges from uncached:\n got: %+v\nwant: %+v", got, want)
			}
			afterCold := store.Stats()
			if afterCold.Fills == 0 {
				t.Fatal("cold run filled nothing — cache not consulted")
			}

			warm := cold
			got, err = warm.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("warm cached run diverges from uncached:\n got: %+v\nwant: %+v", got, want)
			}
			afterWarm := store.Stats()
			if afterWarm.Fills != afterCold.Fills {
				t.Fatalf("warm run recomputed: fills %d -> %d", afterCold.Fills, afterWarm.Fills)
			}
			if hits := afterWarm.Hits() - afterCold.Hits(); hits != afterCold.Fills {
				t.Fatalf("warm run hit %d times, want %d (one per cell)", hits, afterCold.Fills)
			}
		})
	}
}

// TestSweepWarmCacheParallel checks the cache under the worker pool: a
// parallel warm run matches the serial uncached output exactly, and the
// singleflight layer keeps fills at one per distinct cell regardless of
// concurrency.
func TestSweepWarmCacheParallel(t *testing.T) {
	spec := Fig11Spec(true)
	spec.Workloads = []string{"GHZ", "QFT"}

	serial := spec
	serial.Parallelism = 1
	want, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}

	store := cache.NewMemory[core.Metrics](0)
	for pass := 0; pass < 2; pass++ {
		par := spec
		par.Parallelism = 4
		par.Cache = store
		got, err := par.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: parallel cached run diverges from serial uncached", pass)
		}
	}
	st := store.Stats()
	if st.Fills != uint64(st.Entries) {
		t.Fatalf("fills %d != distinct cells %d (dedup failed?)", st.Fills, st.Entries)
	}
}

// TestHeadlinesSharedStoreNoExtraRouting pins the acceptance criterion: a
// repeated Headlines invocation against a shared store performs zero
// additional Evaluate routing calls and returns identical ratios.
func TestHeadlinesSharedStoreNoExtraRouting(t *testing.T) {
	store := cache.NewMemory[core.Metrics](0)
	first, err := Headlines(serialQuickConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := store.Stats()
	if afterFirst.Fills == 0 {
		t.Fatal("first Headlines run filled nothing — store not threaded through")
	}

	second, err := Headlines(serialQuickConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := store.Stats()
	if afterSecond.Fills != afterFirst.Fills {
		t.Fatalf("repeated Headlines routed again: fills %d -> %d", afterFirst.Fills, afterSecond.Fills)
	}
	if afterSecond.Hits()-afterFirst.Hits() != afterFirst.Fills {
		t.Fatalf("repeated Headlines hit %d times, want %d",
			afterSecond.Hits()-afterFirst.Hits(), afterFirst.Fills)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm Headlines diverges: %+v vs %+v", first, second)
	}
}

// TestCorralScalingSharedStore does the same for the §7 scaling study.
func TestCorralScalingSharedStore(t *testing.T) {
	store := cache.NewMemory[core.Metrics](0)
	first, err := CorralScaling([]int{6, 8}, serialQuickConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	fills := store.Stats().Fills
	second, err := CorralScaling([]int{6, 8}, serialQuickConfig(store))
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Fills != fills {
		t.Fatalf("repeated CorralScaling routed again: fills %d -> %d", fills, store.Stats().Fills)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm CorralScaling diverges from cold")
	}
}

// TestEvaluateKeySeparation ensures distinct evaluation coordinates never
// share a cache slot: changing the seed, trials, router, circuit, or
// machine must produce a different result or at least a different key — we
// assert indirectly by checking that two different-seed evaluations both
// fill (no false hit).
func TestEvaluateKeySeparation(t *testing.T) {
	store := cache.NewMemory[core.Metrics](0)
	m := core.Tree20SqrtISwap()
	c, err := circuitFor("GHZ", 8, 2022)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Options{Seed: 1, Trials: 5, Parallelism: 1, Cache: store}
	if _, err := m.Evaluate(c, base); err != nil {
		t.Fatal(err)
	}
	variants := []core.Options{
		{Seed: 2, Trials: 5, Parallelism: 1, Cache: store},
		{Seed: 1, Trials: 6, Parallelism: 1, Cache: store},
		{Seed: 1, Trials: 5, Router: core.RouterSabre, Parallelism: 1, Cache: store},
	}
	for i, opt := range variants {
		if _, err := m.Evaluate(c, opt); err != nil {
			t.Fatal(err)
		}
		if got := store.Stats().Fills; got != uint64(i+2) {
			t.Fatalf("variant %d aliased an earlier key: fills = %d, want %d", i, got, i+2)
		}
	}
	// Same coordinates, different machine with identical name but another
	// topology: must not alias.
	other := core.TreeRR20SqrtISwap()
	other.Name = m.Name
	if _, err := other.Evaluate(c, base); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Fills; got != uint64(len(variants)+2) {
		t.Fatalf("different topology aliased: fills = %d", got)
	}
	// And the exact original call is a pure hit.
	fills := store.Stats().Fills
	if _, err := m.Evaluate(c, base); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Fills != fills {
		t.Fatal("identical evaluation missed the cache")
	}
}
