package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
)

// MachinesFromSpecs builds a sweep comparison set from a list of
// declarative architecture specs (package arch grammar): specs separated by
// semicolons, or by commas when each spec starts with a registered family
// name. Machine names must be unique within the set — the sweep engine
// derives per-cell seeds and labels from them, so a duplicate would
// silently fold two machines into indistinguishable rows.
func MachinesFromSpecs(list string) ([]core.Machine, error) {
	as, err := arch.ParseList(list)
	if err != nil {
		return nil, err
	}
	out := make([]core.Machine, 0, len(as))
	seen := make(map[string]bool, len(as))
	for _, a := range as {
		m, err := core.FromArch(a)
		if err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("experiments: duplicate machine name %q in spec list (give one a name=... parameter)", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}
