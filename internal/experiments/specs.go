package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
)

// MachinesFromSpecs builds a sweep comparison set from a list of
// declarative architecture specs (package arch grammar): specs separated by
// semicolons, or by commas when each spec starts with a registered family
// name. Machine names must be unique within the set — the sweep engine
// derives per-cell seeds and labels from them, so a duplicate would
// silently fold two machines into indistinguishable rows.
func MachinesFromSpecs(list string) ([]core.Machine, error) {
	as, err := arch.ParseList(list)
	if err != nil {
		return nil, err
	}
	out := make([]core.Machine, 0, len(as))
	seen := make(map[string]bool, len(as))
	for _, a := range as {
		m, err := core.FromArch(a)
		if err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("experiments: duplicate machine name %q in spec list (give one a name=... parameter)", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}

// figMachineSpecs maps each paper figure to the declarative spec list that
// rebuilds its machine comparison set — same names, same topology
// fingerprints, same bases as the hand-wired Fig*Spec constructors (a test
// holds the two in lockstep). Having the sets as data lets a remote sweep
// request carry its machines as a plain string instead of shipping Go
// values over the wire.
var figMachineSpecs = map[int]string{
	4: "heavyhex:rows=5,cols=14,name=Heavy-Hex;" +
		"hex:rows=7,cols=12,name=Hex-Lattice;" +
		"grid:rows=7,cols=12,name=Square-Lattice;" +
		"altdiag:rows=7,cols=12,name=Lattice+AltDiag;" +
		"hypercube:dim=7,trim=84,name=Hypercube",
	11: "grid:rows=4,cols=4,name=Square-Lattice;" +
		"hypercube:dim=4,name=Hypercube;" +
		"tree:levels=2,name=Tree;" +
		"tree-rr:levels=2,name=Tree-RR;" +
		"corral:posts=8,strides=1+1,name=Corral(1,1);" +
		"corral:posts=8,strides=1+3,name=Corral(1,2)",
	12: "heavyhex:rows=5,cols=14,name=Heavy-Hex;" +
		"grid:rows=7,cols=12,name=Square-Lattice;" +
		"tree:levels=3,name=Tree;" +
		"tree-rr:levels=3,name=Tree-RR;" +
		"hypercube:dim=7,trim=84,name=Hypercube",
	13: "heavyhex:fragment=20,name=Heavy-Hex-CX;" +
		"grid:rows=4,cols=4,basis=syc,name=Square-Lattice-SYC;" +
		"tree:levels=2,basis=sqrtiswap,name=Tree-sqrtISWAP;" +
		"tree-rr:levels=2,basis=sqrtiswap,name=Tree-RR-sqrtISWAP;" +
		"hypercube:dim=4,basis=sqrtiswap,name=Hypercube-sqrtISWAP;" +
		"corral:posts=8,strides=1+1,basis=sqrtiswap,name=Corral11-sqrtISWAP",
	14: "heavyhex:rows=5,cols=14,name=Heavy-Hex-CX;" +
		"grid:rows=7,cols=12,basis=syc,name=Square-Lattice-SYC;" +
		"tree:levels=3,basis=sqrtiswap,name=Tree-sqrtISWAP;" +
		"tree-rr:levels=3,basis=sqrtiswap,name=Tree-RR-sqrtISWAP;" +
		"hypercube:dim=7,trim=84,basis=sqrtiswap,name=Hypercube-sqrtISWAP",
}

// FigMachineSpecs returns the declarative architecture spec list (the
// MachinesFromSpecs grammar) that reproduces the machine set of the given
// paper figure, or an error for figures that have no sweep machine set.
func FigMachineSpecs(fig int) (string, error) {
	s, ok := figMachineSpecs[fig]
	if !ok {
		return "", fmt.Errorf("experiments: no machine spec list for figure %d", fig)
	}
	return s, nil
}
