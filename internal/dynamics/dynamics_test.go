package dynamics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResonantFullTransfer(t *testing.T) {
	m := ExchangeModel{G: 2 * math.Pi * 0.5} // 0.5 MHz-style coupling
	tPi := m.PiPulseDuration()
	if p := m.TransferProbability(tPi, 0); math.Abs(p-1) > 1e-12 {
		t.Fatalf("resonant π pulse transfer = %g, want 1", p)
	}
	if p := m.TransferProbability(2*tPi, 0); p > 1e-12 {
		t.Fatalf("resonant 2π pulse transfer = %g, want 0 (excitation returns)", p)
	}
	// Half pulse: 50/50.
	if p := m.TransferProbability(tPi/2, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("half pulse transfer = %g, want 0.5", p)
	}
}

func TestDetuningReducesContrast(t *testing.T) {
	m := ExchangeModel{G: 1}
	// Peak transfer at detuning Δ is g²/(g²+(Δ/2)²) < 1.
	for _, det := range []float64{0.5, 1, 2, 5} {
		want := 1 / (1 + (det/2)*(det/2))
		om := m.RabiRate(det)
		tPeak := math.Pi / (2 * om)
		if p := m.TransferProbability(tPeak, det); math.Abs(p-want) > 1e-12 {
			t.Fatalf("detuned peak at Δ=%g: %g, want %g", det, p, want)
		}
	}
}

func TestChevronSymmetry(t *testing.T) {
	m := ExchangeModel{G: 1}
	f := func(tt, det float64) bool {
		tt = math.Abs(math.Mod(tt, 10))
		det = math.Mod(det, 3)
		return math.Abs(m.TransferProbability(tt, det)-m.TransferProbability(tt, -det)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilityConservationNoDecay(t *testing.T) {
	m := ExchangeModel{G: 1.3}
	f := func(tt, det float64) bool {
		tt = math.Abs(math.Mod(tt, 10))
		det = math.Mod(det, 4)
		sum := m.TransferProbability(tt, det) + m.SurvivalProbability(tt, det)
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRK4MatchesClosedForm(t *testing.T) {
	m := ExchangeModel{G: 2 * math.Pi * 0.8}
	for _, det := range []float64{0, 0.7, -2.2, 4.1} {
		for _, tt := range []float64{0.1, 0.37, 1.5} {
			want := m.TransferProbability(tt, det)
			got, err := m.Evolve(tt, det, 4000)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("RK4 vs closed form at (t=%g, Δ=%g): %g vs %g", tt, det, got, want)
			}
		}
	}
}

func TestDecayEnvelope(t *testing.T) {
	noDecay := ExchangeModel{G: 1}
	decay := ExchangeModel{G: 1, T1: 2}
	tPi := noDecay.PiPulseDuration()
	p0 := noDecay.TransferProbability(tPi, 0)
	p1 := decay.TransferProbability(tPi, 0)
	want := p0 * math.Exp(-tPi/2)
	if math.Abs(p1-want) > 1e-12 {
		t.Fatalf("decayed transfer = %g, want %g", p1, want)
	}
}

func TestNRootPulseScaling(t *testing.T) {
	// Paper §4.1: n√iSWAP pulses are 1/n of the iSWAP pulse.
	m := ExchangeModel{G: 3}
	for n := 1; n <= 8; n++ {
		if d := m.NRootPulseDuration(n); math.Abs(d-m.PiPulseDuration()/float64(n)) > 1e-15 {
			t.Fatalf("n=%d pulse duration wrong", n)
		}
	}
}

func TestChevronMapShape(t *testing.T) {
	m := ExchangeModel{G: 2 * math.Pi * 1.0, T1: 50}
	ch, err := ChevronMap(m, 2.0, 41, 3.0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.TransferB) != 41 || len(ch.TransferB[0]) != 21 {
		t.Fatalf("grid shape %dx%d", len(ch.TransferB), len(ch.TransferB[0]))
	}
	// The resonant column has the deepest oscillation: its max transfer
	// must exceed the most-detuned column's.
	mid := 10 // Δ=0 column
	maxMid, maxEdge := 0.0, 0.0
	for i := range ch.Times {
		if p := ch.TransferB[i][mid]; p > maxMid {
			maxMid = p
		}
		if p := ch.TransferB[i][0]; p > maxEdge {
			maxEdge = p
		}
	}
	if maxMid <= maxEdge {
		t.Fatalf("chevron contrast inverted: resonant %g vs edge %g", maxMid, maxEdge)
	}
	if _, err := ChevronMap(m, 1, 1, 1, 5); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestEvolveErrors(t *testing.T) {
	m := ExchangeModel{G: 1}
	if _, err := m.Evolve(1, 0, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := m.Evolve(-1, 0, 10); err == nil {
		t.Fatal("negative time accepted")
	}
}
