// Package dynamics models the parametrically driven photon exchange that
// underlies the SNAIL's n√iSWAP gates (paper §4.1–4.2, Fig. 6): pumping the
// SNAIL at the difference of two qubit frequencies creates the effective
// interaction g(a1†a2 + a1a2†) (Eq. 8), producing Rabi-style excitation
// exchange whose rate and contrast depend on pump detuning — the "chevron"
// pattern of Fig. 6. A closed-form solution and an RK4 Schrödinger
// integrator cross-validate each other, and an optional T1 envelope models
// the decoherence that limits the demonstrated router (§4.2).
package dynamics

import (
	"fmt"
	"math"
)

// ExchangeModel describes one driven qubit pair.
type ExchangeModel struct {
	// G is the exchange coupling rate in angular frequency units (rad per
	// time unit). A resonant π-exchange (full transfer) takes t = π/(2G).
	G float64
	// T1 is the amplitude-damping time constant; 0 disables decay.
	T1 float64
}

// RabiRate returns the generalized Rabi frequency Ω = √(g² + (Δ/2)²) for a
// pump detuned by Δ from the qubit difference frequency.
func (m ExchangeModel) RabiRate(detuning float64) float64 {
	return math.Hypot(m.G, detuning/2)
}

// TransferProbability returns the probability that an excitation starting
// in qubit A is found in qubit B after drive time t at the given detuning:
//
//	P(t) = (g²/Ω²)·sin²(Ωt) · e^{-t/T1}.
//
// The detuning reduces both the oscillation contrast (g²/Ω²) and slews the
// rate, producing the chevron of Fig. 6.
func (m ExchangeModel) TransferProbability(t, detuning float64) float64 {
	om := m.RabiRate(detuning)
	contrast := (m.G * m.G) / (om * om)
	p := contrast * math.Pow(math.Sin(om*t), 2)
	return p * m.decay(t)
}

// SurvivalProbability returns the probability the excitation remains in
// qubit A (with decay, probability also leaks to the joint ground state).
func (m ExchangeModel) SurvivalProbability(t, detuning float64) float64 {
	om := m.RabiRate(detuning)
	contrast := (m.G * m.G) / (om * om)
	p := 1 - contrast*math.Pow(math.Sin(om*t), 2)
	return p * m.decay(t)
}

func (m ExchangeModel) decay(t float64) float64 {
	if m.T1 <= 0 {
		return 1
	}
	return math.Exp(-t / m.T1)
}

// PiPulseDuration returns the resonant full-transfer (iSWAP) pulse length
// π/(2g). The n-th root pulse is proportionally shorter (paper §4.1).
func (m ExchangeModel) PiPulseDuration() float64 { return math.Pi / (2 * m.G) }

// NRootPulseDuration returns the pulse length of an n√iSWAP exchange.
func (m ExchangeModel) NRootPulseDuration(n int) float64 {
	return m.PiPulseDuration() / float64(n)
}

// Evolve integrates the two-level Schrödinger equation
//
//	i dψ/dt = H ψ,   H = [[-Δ/2, g], [g, +Δ/2]]
//
// from ψ = (1, 0) (excitation in qubit A) using fixed-step RK4 and returns
// the transfer probability |ψ_B(t)|² (with the same decay envelope as the
// closed form). Used to validate the analytic solution.
func (m ExchangeModel) Evolve(t, detuning float64, steps int) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("dynamics: need at least one step")
	}
	if t < 0 {
		return 0, fmt.Errorf("dynamics: negative time")
	}
	h := t / float64(steps)
	// ψ = (a, b) complex.
	a, b := complex(1, 0), complex(0, 0)
	d := complex(detuning/2, 0)
	g := complex(m.G, 0)
	// dψ/dt = -i H ψ.
	deriv := func(a, b complex128) (complex128, complex128) {
		da := complex(0, -1) * (-d*a + g*b)
		db := complex(0, -1) * (g*a + d*b)
		return da, db
	}
	for s := 0; s < steps; s++ {
		k1a, k1b := deriv(a, b)
		k2a, k2b := deriv(a+complex(h/2, 0)*k1a, b+complex(h/2, 0)*k1b)
		k3a, k3b := deriv(a+complex(h/2, 0)*k2a, b+complex(h/2, 0)*k2b)
		k4a, k4b := deriv(a+complex(h, 0)*k3a, b+complex(h, 0)*k3b)
		a += complex(h/6, 0) * (k1a + 2*k2a + 2*k3a + k4a)
		b += complex(h/6, 0) * (k1b + 2*k2b + 2*k3b + k4b)
	}
	pb := real(b)*real(b) + imag(b)*imag(b)
	return pb * m.decay(t), nil
}

// Chevron is a sampled |excitation-in-B| map over pulse length × detuning,
// the data behind Fig. 6.
type Chevron struct {
	Times     []float64
	Detunings []float64
	// TransferB[i][j] is the transfer probability at Times[i], Detunings[j];
	// GroundA is the probability qubit A has returned to (or decayed into)
	// its ground state.
	TransferB [][]float64
	GroundA   [][]float64
}

// ChevronMap samples the chevron pattern on a regular grid.
func ChevronMap(m ExchangeModel, tMax float64, nT int, detMax float64, nD int) (*Chevron, error) {
	if nT < 2 || nD < 2 {
		return nil, fmt.Errorf("dynamics: chevron grid needs ≥2 points per axis")
	}
	ch := &Chevron{
		Times:     make([]float64, nT),
		Detunings: make([]float64, nD),
	}
	for i := range ch.Times {
		ch.Times[i] = tMax * float64(i) / float64(nT-1)
	}
	for j := range ch.Detunings {
		ch.Detunings[j] = -detMax + 2*detMax*float64(j)/float64(nD-1)
	}
	ch.TransferB = make([][]float64, nT)
	ch.GroundA = make([][]float64, nT)
	for i, t := range ch.Times {
		ch.TransferB[i] = make([]float64, nD)
		ch.GroundA[i] = make([]float64, nD)
		for j, det := range ch.Detunings {
			ch.TransferB[i][j] = m.TransferProbability(t, det)
			ch.GroundA[i][j] = 1 - m.SurvivalProbability(t, det)
		}
	}
	return ch, nil
}
