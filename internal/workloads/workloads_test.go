package workloads

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestQuantumVolumeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 5, 8} {
		c := QuantumVolume(n, rng)
		want := n * (n / 2)
		if got := c.CountTwoQubit(); got != want {
			t.Errorf("QV(%d): %d SU4 blocks, want %d", n, got, want)
		}
		for _, op := range c.Ops {
			if op.Name != "su4" || op.U == nil || !op.U.IsUnitary(1e-9) {
				t.Fatalf("QV(%d): bad op %v", n, op)
			}
		}
	}
}

func TestQuantumVolumeDeterministic(t *testing.T) {
	a := QuantumVolume(5, rand.New(rand.NewSource(7)))
	b := QuantumVolume(5, rand.New(rand.NewSource(7)))
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("op count differs")
	}
	for i := range a.Ops {
		if !a.Ops[i].U.EqualWithin(b.Ops[i].U, 0) {
			t.Fatal("same seed produced different QV circuits")
		}
	}
}

func TestQFTMatchesDFT(t *testing.T) {
	// QFT with final swaps maps |x⟩ to (1/√N) Σ_y e^{2πi x y / N} |y⟩.
	n := 4
	N := 1 << n
	c := QFT(n, true)
	for _, x := range []int{0, 1, 5, 12, 15} {
		s, err := sim.NewBasisState(n, x)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		for y := 0; y < N; y++ {
			want := cmplx.Exp(complex(0, 2*math.Pi*float64(x*y)/float64(N))) / complex(math.Sqrt(float64(N)), 0)
			if cmplx.Abs(s.Amp[y]-want) > 1e-9 {
				t.Fatalf("QFT|%d⟩ amp[%d] = %v, want %v", x, y, s.Amp[y], want)
			}
		}
	}
}

func TestQFTGateCounts(t *testing.T) {
	n := 8
	c := QFT(n, true)
	wantCP := n * (n - 1) / 2
	if got := c.CountByName("cp"); got != wantCP {
		t.Errorf("QFT(%d) CP count = %d, want %d", n, got, wantCP)
	}
	if got := c.CountByName("swap"); got != n/2 {
		t.Errorf("QFT(%d) swap count = %d, want %d", n, got, n/2)
	}
	if got := QFT(n, false).CountByName("swap"); got != 0 {
		t.Errorf("QFT without swaps has %d swaps", got)
	}
}

func TestQAOAVanillaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 7
	c := QAOAVanilla(n, rng)
	if got := c.CountByName("rzz"); got != n*(n-1)/2 {
		t.Errorf("QAOA RZZ count = %d, want %d", got, n*(n-1)/2)
	}
	if got := c.CountByName("h"); got != n {
		t.Errorf("QAOA H count = %d, want %d", got, n)
	}
	if got := c.CountByName("rx"); got != n {
		t.Errorf("QAOA RX count = %d, want %d", got, n)
	}
}

func TestTIMShape(t *testing.T) {
	n, steps := 9, 3
	c := TIMHamiltonian(n, steps)
	if got := c.CountByName("rzz"); got != steps*(n-1) {
		t.Errorf("TIM RZZ count = %d, want %d", got, steps*(n-1))
	}
	if got := c.CountByName("rx"); got != steps*n {
		t.Errorf("TIM RX count = %d, want %d", got, steps*n)
	}
	// TIM is chain-local: every 2Q op touches neighbors.
	for _, op := range c.Ops {
		if op.Is2Q() && op.Qubits[1]-op.Qubits[0] != 1 {
			t.Fatalf("TIM 2Q op not on chain neighbors: %v", op)
		}
	}
}

func TestGHZState(t *testing.T) {
	n := 7
	s, err := sim.RunCircuit(GHZ(n))
	if err != nil {
		t.Fatal(err)
	}
	all := (1 << n) - 1
	if math.Abs(s.Probability(0)-0.5) > 1e-10 || math.Abs(s.Probability(all)-0.5) > 1e-10 {
		t.Fatalf("GHZ(%d) probabilities wrong", n)
	}
}

func TestCCXTruthTable(t *testing.T) {
	// Exhaustive check of the 6-CNOT Toffoli decomposition.
	for in := 0; in < 8; in++ {
		c := circuit.New(3)
		CCX(c, 0, 1, 2)
		s, err := sim.NewBasisState(3, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		want := in
		if in&0b100 != 0 && in&0b010 != 0 {
			want = in ^ 1
		}
		got, p := s.DominantBasisState()
		if got != want || math.Abs(p-1) > 1e-9 {
			t.Fatalf("CCX|%03b⟩ = |%03b⟩ (p=%g), want |%03b⟩", in, got, p, want)
		}
	}
}

// encodeAdder builds the basis index for (cin, a, b) on an m-bit adder.
func encodeAdder(m, cin, a, b int) int {
	n := AdderQubits(m)
	idx := 0
	setBit := func(q int) { idx |= 1 << (n - 1 - q) }
	if cin != 0 {
		setBit(0)
	}
	for i := 0; i < m; i++ {
		if a&(1<<i) != 0 {
			setBit(1 + i)
		}
		if b&(1<<i) != 0 {
			setBit(1 + m + i)
		}
	}
	return idx
}

// decodeAdder extracts (cin, a, b, carryOut) from a basis index.
func decodeAdder(m, idx int) (cin, a, b, carry int) {
	n := AdderQubits(m)
	getBit := func(q int) int { return (idx >> (n - 1 - q)) & 1 }
	cin = getBit(0)
	for i := 0; i < m; i++ {
		a |= getBit(1+i) << i
		b |= getBit(1+m+i) << i
	}
	carry = getBit(2*m + 1)
	return
}

func TestAdderExhaustiveSmall(t *testing.T) {
	// m=2: all 32 inputs (cin, a, b).
	m := 2
	c := Adder(m)
	for cin := 0; cin < 2; cin++ {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				s, err := sim.NewBasisState(c.N, encodeAdder(m, cin, a, b))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Run(c); err != nil {
					t.Fatal(err)
				}
				idx, p := s.DominantBasisState()
				if math.Abs(p-1) > 1e-9 {
					t.Fatalf("adder output not classical: p=%g", p)
				}
				gc, ga, gb, gcarry := decodeAdder(m, idx)
				sum := a + b + cin
				if ga != a || gc != cin {
					t.Fatalf("adder(%d,%d,%d): a/cin not restored (%d,%d)", cin, a, b, ga, gc)
				}
				if gb != sum%4 || gcarry != sum/4 {
					t.Fatalf("adder(%d,%d,%d): got b=%d carry=%d, want %d/%d",
						cin, a, b, gb, gcarry, sum%4, sum/4)
				}
			}
		}
	}
}

func TestAdderWiderSpotChecks(t *testing.T) {
	m := 4
	c := Adder(m)
	for _, tc := range [][3]int{{0, 9, 6}, {1, 15, 15}, {0, 0, 0}, {1, 7, 8}, {0, 13, 5}} {
		cin, a, b := tc[0], tc[1], tc[2]
		s, err := sim.NewBasisState(c.N, encodeAdder(m, cin, a, b))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		idx, _ := s.DominantBasisState()
		_, _, gb, gcarry := decodeAdder(m, idx)
		sum := a + b + cin
		if gb != sum%16 || gcarry != sum/16 {
			t.Fatalf("adder4(%d,%d,%d): got b=%d carry=%d, want %d/%d",
				cin, a, b, gb, gcarry, sum%16, sum/16)
		}
	}
}

func TestAdderForWidth(t *testing.T) {
	c, err := AdderForWidth(11)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 11 {
		t.Fatalf("AdderForWidth(11).N = %d", c.N)
	}
	if _, err := AdderForWidth(3); err == nil {
		t.Fatal("AdderForWidth(3) accepted")
	}
}

func TestGenerateRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range Names() {
		c, err := Generate(name, 8, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.N != 8 {
			t.Errorf("%s: width %d, want 8", name, c.N)
		}
		if c.CountTwoQubit() == 0 {
			t.Errorf("%s: no 2Q gates", name)
		}
	}
	if _, err := Generate("nope", 8, rng); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNamesPinnedOrder(t *testing.T) {
	// Names() drives figure legends and the transpile CLI's -list output, so
	// its ordering is part of the reproduction contract: the paper's figure
	// order, stable across calls.
	want := []string{"QuantumVolume", "QFT", "QAOAVanilla", "TIMHamiltonian", "Adder", "GHZ"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	again := Names()
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("Names() ordering unstable across calls")
		}
	}
}

func TestGenerateRejectsInvalidWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, name := range Names() {
		for _, n := range []int{-1, 0, 1} {
			if _, err := Generate(name, n, rng); err == nil {
				t.Errorf("Generate(%q, %d) accepted an invalid width", name, n)
			}
		}
	}
	if _, err := Generate("QFT", 1, rng); err == nil || !strings.Contains(err.Error(), "too small") {
		t.Errorf("width error does not say 'too small': %v", err)
	}
}

func TestGenerateUnknownNameError(t *testing.T) {
	_, err := Generate("Shor", 8, rand.New(rand.NewSource(5)))
	if err == nil || !strings.Contains(err.Error(), `unknown benchmark "Shor"`) {
		t.Errorf("unknown-name error = %v", err)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	for _, name := range Names() {
		a, err := Generate(name, 6, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name, 6, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("%s: op counts differ across identical seeds", name)
		}
		for i := range a.Ops {
			ao, bo := a.Ops[i], b.Ops[i]
			if ao.Name != bo.Name || len(ao.Qubits) != len(bo.Qubits) {
				t.Fatalf("%s: op %d differs across identical seeds", name, i)
			}
			for j := range ao.Qubits {
				if ao.Qubits[j] != bo.Qubits[j] {
					t.Fatalf("%s: op %d qubits differ across identical seeds", name, i)
				}
			}
			if (ao.U == nil) != (bo.U == nil) || (ao.U != nil && !ao.U.EqualWithin(bo.U, 0)) {
				t.Fatalf("%s: op %d matrix differs across identical seeds", name, i)
			}
		}
	}
}
