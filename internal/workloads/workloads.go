// Package workloads generates the paper's six parameterized NISQ benchmark
// circuits (paper §5): QuantumVolume, QFT, and the CDKM ripple-carry adder
// (Qiskit-style constructions) plus QAOA-Vanilla, TIM Hamiltonian
// simulation, and GHZ (SuperMarQ-style constructions). All generators scale
// with qubit count and are deterministic given a seed.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// QuantumVolume builds the square QV model circuit: depth = n layers, each
// pairing a random permutation of the qubits and applying Haar-random SU(4)
// blocks to ⌊n/2⌋ pairs.
func QuantumVolume(n int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for layer := 0; layer < n; layer++ {
		perm := rng.Perm(n)
		for k := 0; k+1 < n; k += 2 {
			c.SU4(perm[k], perm[k+1], gates.RandomSU4(rng))
		}
	}
	return c
}

// QFT builds the quantum Fourier transform: the Hadamard/controlled-phase
// cascade, optionally followed by the qubit-reversal swap network (Qiskit's
// default, which the paper's transpilation flow routes like any other gate).
func QFT(n int, withSwaps bool) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CP(j, i, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	if withSwaps {
		for i := 0; i < n/2; i++ {
			c.Swap(i, n-1-i)
		}
	}
	return c
}

// QAOAVanilla builds the SuperMarQ vanilla-QAOA proxy: one round of the
// Sherrington-Kirkpatrick model on the complete graph with random ±1
// couplings — a Hadamard layer, ZZ interactions on every pair, and a mixer.
// The all-to-all interaction graph makes this the paper's most
// routing-hostile benchmark.
func QAOAVanilla(n int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	gamma := rng.Float64() * 2 * math.Pi
	beta := rng.Float64() * math.Pi
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := float64(1 - 2*rng.Intn(2)) // ±1
			c.RZZ(i, j, 2*gamma*w)
		}
	}
	for q := 0; q < n; q++ {
		c.RX(q, 2*beta)
	}
	return c
}

// TIMHamiltonian builds the SuperMarQ transverse-field Ising model
// simulation: first-order Trotter steps of H = -J ΣZZ - h ΣX on a 1D open
// chain, from the |+...+⟩ state.
func TIMHamiltonian(n, steps int) *circuit.Circuit {
	if steps < 1 {
		steps = 1
	}
	c := circuit.New(n)
	dt := 1.0 / float64(steps)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i+1 < n; i++ {
			c.RZZ(i, i+1, 2*dt)
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*dt)
		}
	}
	return c
}

// GHZ builds the linear-depth GHZ state preparation: H then a CNOT chain.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	return c
}

// CCX appends the textbook 6-CNOT Toffoli decomposition (controls a, b;
// target t) — the paper's transpiler sees only 1Q/2Q gates, matching how
// Qiskit unrolls the CDKM adder before routing.
func CCX(c *circuit.Circuit, a, b, t int) {
	c.H(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
}

// maj appends the CDKM majority gate on (carry, b, a).
func maj(c *circuit.Circuit, carry, b, a int) {
	c.CX(a, b)
	c.CX(a, carry)
	CCX(c, carry, b, a)
}

// uma appends the CDKM un-majority-and-add gate on (carry, b, a).
func uma(c *circuit.Circuit, carry, b, a int) {
	CCX(c, carry, b, a)
	c.CX(a, carry)
	c.CX(carry, b)
}

// AdderQubits returns the qubit count of an m-bit CDKM adder (2m+2).
func AdderQubits(m int) int { return 2*m + 2 }

// Adder builds the CDKM (Cuccaro) ripple-carry adder for m-bit operands on
// 2m+2 qubits: carry-in (qubit 0), a[i] at 1+i, b[i] at 1+m+i, carry-out at
// 2m+1. After execution b holds a+b+cin (mod 2^m) and the carry-out qubit is
// flipped by the final carry; a and cin are restored.
func Adder(m int) *circuit.Circuit {
	if m < 1 {
		panic("workloads: adder needs at least 1 bit")
	}
	c := circuit.New(AdderQubits(m))
	cin := 0
	aq := func(i int) int { return 1 + i }
	bq := func(i int) int { return 1 + m + i }
	z := 2*m + 1
	maj(c, cin, bq(0), aq(0))
	for i := 1; i < m; i++ {
		maj(c, aq(i-1), bq(i), aq(i))
	}
	c.CX(aq(m-1), z)
	for i := m - 1; i >= 1; i-- {
		uma(c, aq(i-1), bq(i), aq(i))
	}
	uma(c, cin, bq(0), aq(0))
	return c
}

// AdderForWidth builds the largest CDKM adder fitting in n qubits and embeds
// it in an n-qubit circuit (spare qubits idle), mirroring how the paper
// parameterizes the benchmark by machine size.
func AdderForWidth(n int) (*circuit.Circuit, error) {
	m := (n - 2) / 2
	if m < 1 {
		return nil, fmt.Errorf("workloads: adder needs ≥4 qubits, got %d", n)
	}
	a := Adder(m)
	if a.N == n {
		return a, nil
	}
	c := circuit.New(n)
	c.AppendCircuit(a)
	return c, nil
}

// Names lists the benchmark identifiers in the paper's figure order.
func Names() []string {
	return []string{"QuantumVolume", "QFT", "QAOAVanilla", "TIMHamiltonian", "Adder", "GHZ"}
}

// Generate builds the named benchmark at the given width. rng is used only
// by the randomized benchmarks (QuantumVolume, QAOAVanilla).
func Generate(name string, n int, rng *rand.Rand) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: width %d too small", n)
	}
	switch name {
	case "QuantumVolume":
		return QuantumVolume(n, rng), nil
	case "QFT":
		return QFT(n, true), nil
	case "QAOAVanilla":
		return QAOAVanilla(n, rng), nil
	case "TIMHamiltonian":
		return TIMHamiltonian(n, 1), nil
	case "Adder":
		return AdderForWidth(n)
	case "GHZ":
		return GHZ(n), nil
	default:
		return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
}
