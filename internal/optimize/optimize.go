// Package optimize provides the gradient-based and derivative-free
// optimizers used by the numerical gate-decomposition engine (package
// decomp): Adam with user-supplied gradients and Nelder–Mead simplex search.
// Both are deterministic given their inputs.
package optimize

import (
	"math"
	"sort"
)

// AdamConfig tunes the Adam optimizer.
type AdamConfig struct {
	LearningRate float64 // step size (default 0.05)
	Beta1, Beta2 float64 // moment decays (defaults 0.9, 0.999)
	Epsilon      float64 // numerical floor (default 1e-8)
	MaxIter      int     // iteration budget (default 300)
	Tol          float64 // stop when |f - fPrev| < Tol (default 1e-12)
}

func (c AdamConfig) withDefaults() AdamConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 300
	}
	if c.Tol == 0 {
		c.Tol = 1e-12
	}
	return c
}

// Adam minimizes f starting from x0, using the provided objective+gradient
// function. Returns the best point and value seen.
func Adam(x0 []float64, fg func(x []float64) (float64, []float64), cfg AdamConfig) ([]float64, float64) {
	cfg = cfg.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	m := make([]float64, n)
	v := make([]float64, n)
	bestX := append([]float64(nil), x...)
	bestF := math.Inf(1)
	prevF := math.Inf(1)
	for t := 1; t <= cfg.MaxIter; t++ {
		f, g := fg(x)
		if f < bestF {
			bestF = f
			copy(bestX, x)
		}
		if math.Abs(prevF-f) < cfg.Tol {
			break
		}
		prevF = f
		b1t := 1 - math.Pow(cfg.Beta1, float64(t))
		b2t := 1 - math.Pow(cfg.Beta2, float64(t))
		for i := 0; i < n; i++ {
			m[i] = cfg.Beta1*m[i] + (1-cfg.Beta1)*g[i]
			v[i] = cfg.Beta2*v[i] + (1-cfg.Beta2)*g[i]*g[i]
			mhat := m[i] / b1t
			vhat := v[i] / b2t
			x[i] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + cfg.Epsilon)
		}
	}
	// Final evaluation (the loop may end on a step we never scored).
	if f, _ := fg(x); f < bestF {
		bestF = f
		copy(bestX, x)
	}
	return bestX, bestF
}

// FiniteDiffGrad wraps a plain objective into an objective+gradient via
// central differences with step h.
func FiniteDiffGrad(f func([]float64) float64, h float64) func([]float64) (float64, []float64) {
	if h == 0 {
		h = 1e-6
	}
	return func(x []float64) (float64, []float64) {
		fx := f(x)
		g := make([]float64, len(x))
		xp := append([]float64(nil), x...)
		for i := range x {
			xp[i] = x[i] + h
			fp := f(xp)
			xp[i] = x[i] - h
			fm := f(xp)
			xp[i] = x[i]
			g[i] = (fp - fm) / (2 * h)
		}
		return fx, g
	}
}

// NelderMeadConfig tunes the simplex search.
type NelderMeadConfig struct {
	MaxIter int     // default 400·dim
	Step    float64 // initial simplex spread (default 0.5)
	Tol     float64 // spread tolerance (default 1e-10)
}

// NelderMead minimizes f from x0 with the standard simplex moves
// (reflection, expansion, contraction, shrink).
func NelderMead(x0 []float64, f func([]float64) float64, cfg NelderMeadConfig) ([]float64, float64) {
	n := len(x0)
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 400 * (n + 1)
	}
	if cfg.Step == 0 {
		cfg.Step = 0.5
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-10
	}
	const (
		alpha = 1.0 // reflect
		gamma = 2.0 // expand
		rho   = 0.5 // contract
		sigma = 0.5 // shrink
	)
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += cfg.Step
		}
		simplex[i] = vertex{x, f(x)}
	}
	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		if simplex[n].f-simplex[0].f < cfg.Tol {
			break
		}
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := f(xr)
		switch {
		case fr < simplex[0].f:
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := f(xe); fe < fr {
				simplex[n] = vertex{append([]float64(nil), xe...), fe}
			} else {
				simplex[n] = vertex{append([]float64(nil), xr...), fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{append([]float64(nil), xr...), fr}
		default:
			for j := 0; j < n; j++ {
				xc[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if fc := f(xc); fc < worst.f {
				simplex[n] = vertex{append([]float64(nil), xc...), fc}
			} else {
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return simplex[0].x, simplex[0].f
}
