package optimize

import (
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += (v - 1) * (v - 1)
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestAdamSphere(t *testing.T) {
	fg := FiniteDiffGrad(sphere, 1e-6)
	x, f := Adam([]float64{5, -3, 0.5}, fg, AdamConfig{MaxIter: 2000, LearningRate: 0.1})
	if f > 1e-6 {
		t.Fatalf("Adam on sphere: f=%g at %v", f, x)
	}
	for _, v := range x {
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("Adam did not reach minimum: %v", x)
		}
	}
}

func TestAdamAnalyticGradient(t *testing.T) {
	fg := func(x []float64) (float64, []float64) {
		f := sphere(x)
		g := make([]float64, len(x))
		for i, v := range x {
			g[i] = 2 * (v - 1)
		}
		return f, g
	}
	_, f := Adam([]float64{4, 4}, fg, AdamConfig{MaxIter: 1500, LearningRate: 0.1})
	if f > 1e-8 {
		t.Fatalf("Adam with analytic gradient: f=%g", f)
	}
}

func TestNelderMeadSphere(t *testing.T) {
	x, f := NelderMead([]float64{3, -2}, sphere, NelderMeadConfig{})
	if f > 1e-8 {
		t.Fatalf("NM on sphere: f=%g at %v", f, x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	x, f := NelderMead([]float64{-1.2, 1}, rosenbrock, NelderMeadConfig{MaxIter: 20000})
	if f > 1e-6 {
		t.Fatalf("NM on rosenbrock: f=%g at %v", f, x)
	}
	if math.Abs(x[0]-1) > 1e-2 || math.Abs(x[1]-1) > 1e-2 {
		t.Fatalf("NM rosenbrock minimum at %v", x)
	}
}

func TestFiniteDiffGradAccuracy(t *testing.T) {
	fg := FiniteDiffGrad(sphere, 1e-6)
	_, g := fg([]float64{2, 0})
	if math.Abs(g[0]-2) > 1e-4 || math.Abs(g[1]+2) > 1e-4 {
		t.Fatalf("finite-diff gradient %v, want [2,-2]", g)
	}
}

func TestAdamDeterministic(t *testing.T) {
	fg := FiniteDiffGrad(rosenbrock, 1e-6)
	x1, f1 := Adam([]float64{0, 0}, fg, AdamConfig{MaxIter: 500})
	x2, f2 := Adam([]float64{0, 0}, fg, AdamConfig{MaxIter: 500})
	if f1 != f2 || x1[0] != x2[0] {
		t.Fatal("Adam not deterministic")
	}
}
