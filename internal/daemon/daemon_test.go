package daemon

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// startServer boots a Server under test and returns its base URL plus a
// shutdown function that triggers the graceful drain and waits for Serve to
// return. Shutdown is idempotent so tests can drain explicitly and still
// rely on the cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string, func() error) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {} // keep drained-cleanly chatter out of test logs
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	var once sync.Once
	var serveErr error
	shutdown := func() error {
		once.Do(func() {
			cancel()
			serveErr = <-done
		})
		return serveErr
	}
	t.Cleanup(func() {
		if err := shutdown(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, "http://" + addr, shutdown
}

// testEvaluateRequest is the small fixed evaluation the e2e tests hammer.
func testEvaluateRequest() EvaluateRequest {
	return EvaluateRequest{
		Machine:  "grid:rows=2,cols=2,name=G",
		Workload: "GHZ",
		Size:     4,
		Seed:     1,
		Trials:   1,
	}
}

// httpGetBody GETs one endpoint and returns status and body.
func httpGetBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(data)
}

// TestEvaluateDedupConcurrent is the tentpole contract: N identical
// concurrent requests cost exactly one evaluation; everyone gets the same
// bytes; the cache counters account for every request.
func TestEvaluateDedupConcurrent(t *testing.T) {
	var evals atomic.Int64
	srv, base, _ := startServer(t, Config{
		Parallelism: 2,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			evals.Add(1)
			return nil
		},
	})
	const n = 32
	req := testEvaluateRequest()
	results := make([]core.Metrics, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(base)
			c.JitterSeed = uint64(i + 1)
			results[i], errs[i] = c.Evaluate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("request %d diverged: %+v vs %+v", i, results[i], results[0])
		}
	}
	if got := evals.Load(); got != 1 {
		t.Errorf("evaluations = %d, want exactly 1 for %d identical requests", got, n)
	}
	st := srv.Store().Snapshot()
	if st.Fills != 1 {
		t.Errorf("fills = %d, want 1", st.Fills)
	}
	if served := st.Dedups + st.MemHits + st.DiskHits; st.Fills+served < n {
		t.Errorf("accounting short: %d fills + %d dedup/hits < %d requests", st.Fills, served, n)
	}
}

// TestEvaluateWarmAcrossRestart proves the daemon's disk tier makes results
// durable: a fresh server over the same cachedir answers from disk without
// a single evaluation, byte-identically.
func TestEvaluateWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := testEvaluateRequest()

	_, base1, shutdown := startServer(t, Config{CacheDir: dir, Parallelism: 1})
	cold, err := NewClient(base1).Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("cold evaluate: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var evals atomic.Int64
	srv2, base2, _ := startServer(t, Config{
		CacheDir:    dir,
		Parallelism: 1,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			evals.Add(1)
			return nil
		},
	})
	warm, err := NewClient(base2).Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("warm evaluate: %v", err)
	}
	if warm != cold {
		t.Errorf("restarted server diverged: %+v vs %+v", warm, cold)
	}
	if got := evals.Load(); got != 0 {
		t.Errorf("evaluations after restart = %d, want 0 (disk hit)", got)
	}
	if st := srv2.Store().Snapshot(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
}

// TestEvaluateShed pins the admission bound: with one worker slot and a
// queue depth of one, a third distinct in-flight key is refused with 429 +
// Retry-After instead of queueing, and the two admitted requests still
// complete once unblocked.
func TestEvaluateShed(t *testing.T) {
	entered := make(chan string, 3)
	release := make(chan struct{})
	srv, base, _ := startServer(t, Config{
		Parallelism: 1,
		QueueDepth:  1, // admission bound: 1 running + 1 waiting
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			entered <- machine
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	reqFor := func(name string) EvaluateRequest {
		r := testEvaluateRequest()
		r.Machine = fmt.Sprintf("grid:rows=2,cols=2,name=%s", name)
		return r
	}
	type outcome struct {
		met core.Metrics
		err error
	}
	outA, outB := make(chan outcome, 1), make(chan outcome, 1)
	go func() {
		m, err := NewClient(base).Evaluate(context.Background(), reqFor("A"))
		outA <- outcome{m, err}
	}()
	<-entered // A holds the only slot inside its hook
	go func() {
		m, err := NewClient(base).Evaluate(context.Background(), reqFor("B"))
		outB <- outcome{m, err}
	}()
	// B is admitted (queued) once the admission counter reaches the limit;
	// spin on the counter rather than sleeping.
	for srv.queued.Load() < 2 {
		runtime.Gosched()
	}
	c := NewClient(base)
	c.Retries = 0 // the point is the refusal, not the recovery
	_, err := c.Evaluate(context.Background(), reqFor("C"))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("third concurrent key: got %v, want 429 shed", err)
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Errorf("shed error %q should carry the structured server message", err)
	}
	if got := srv.met.sheds.Load(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}
	close(release)
	if o := <-outA; o.err != nil {
		t.Errorf("admitted request A failed: %v", o.err)
	}
	if o := <-outB; o.err != nil {
		t.Errorf("queued request B failed: %v", o.err)
	}
}

// TestEvaluatePanicConfined proves fault containment: a panicking
// evaluation becomes a 500 for the requests joined on that key and nothing
// else — the process keeps serving, liveness stays green, and the next
// request works.
func TestEvaluatePanicConfined(t *testing.T) {
	srv, base, _ := startServer(t, Config{
		Parallelism: 1,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			if machine == "boom" {
				panic("injected evaluation fault")
			}
			return nil
		},
	})
	bad := testEvaluateRequest()
	bad.Machine = "grid:rows=2,cols=2,name=boom"
	c := NewClient(base)
	c.Retries = 0
	_, err := c.Evaluate(context.Background(), bad)
	if err == nil || !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "evaluation panicked") {
		t.Fatalf("panicking key: got %v, want 500 evaluation panicked", err)
	}
	if code, body := httpGetBody(t, base+healthzPath); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz after panic: %d %q, want 200 ok", code, body)
	}
	if got := srv.met.panics.Load(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if _, err := NewClient(base).Evaluate(context.Background(), testEvaluateRequest()); err != nil {
		t.Errorf("healthy key after contained panic: %v", err)
	}
}

// TestEvaluateTimeout pins the deadline path: a request whose evaluation
// outlives its timeout_ms gets 504, not a hung connection.
func TestEvaluateTimeout(t *testing.T) {
	_, base, _ := startServer(t, Config{
		Parallelism: 1,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			<-ctx.Done() // wedge until the request deadline fires
			return ctx.Err()
		},
	})
	req := testEvaluateRequest()
	req.TimeoutMS = 50
	c := NewClient(base)
	c.Retries = 0
	_, err := c.Evaluate(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "504") {
		t.Fatalf("wedged evaluation: got %v, want 504 deadline", err)
	}
}

// TestEvaluateBadRequest pins the 400 surface: structured JSON errors for
// client mistakes, no retries burned on deterministic failures.
func TestEvaluateBadRequest(t *testing.T) {
	_, base, _ := startServer(t, Config{Parallelism: 1})
	for _, tc := range []struct {
		name string
		mut  func(*EvaluateRequest)
		want string
	}{
		{"missing machine", func(r *EvaluateRequest) { r.Machine = "" }, "missing machine"},
		{"bad machine", func(r *EvaluateRequest) { r.Machine = "nosuch:family=1" }, "machine"},
		{"oversized", func(r *EvaluateRequest) { r.Size = 400 }, "exceeds machine"},
		{"bad router", func(r *EvaluateRequest) { r.Router = "dijkstra" }, "unknown router"},
		{"negative trials", func(r *EvaluateRequest) { r.Trials = -1 }, "trials"},
		{"bad workload", func(r *EvaluateRequest) { r.Workload = "NoSuchLoad" }, "workload"},
	} {
		req := testEvaluateRequest()
		tc.mut(&req)
		_, err := NewClient(base).Evaluate(context.Background(), req)
		if err == nil || !strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want 400 containing %q", tc.name, err, tc.want)
		}
	}
}

// testSweepRequest is a 4-cell sweep small enough for e2e tests.
func testSweepRequest() SweepRequest {
	return SweepRequest{
		ID:        "e2e",
		Kind:      "swaps",
		Machines:  "grid:rows=2,cols=2,name=G;tree:levels=2,name=T",
		Workloads: []string{"GHZ"},
		Sizes:     []int{3, 4},
		Seed:      experiments.DefaultSeed,
		Trials:    1,
	}
}

// TestSweepStream runs one sweep end to end: every cell arrives in index
// order with metrics, the summary accounts for all of them, and re-running
// against the same server is served from cache with identical values.
func TestSweepStream(t *testing.T) {
	var evals atomic.Int64
	_, base, _ := startServer(t, Config{
		Parallelism: 2,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			evals.Add(1)
			return nil
		},
	})
	req := testSweepRequest()
	res, err := NewClient(base).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Summary.Completed != len(res.Cells) || res.Summary.Failed != 0 || res.Summary.Skipped != 0 {
		t.Fatalf("summary %+v, want all %d cells completed", res.Summary, len(res.Cells))
	}
	for i, cell := range res.Cells {
		if cell == nil || cell.Metrics == nil {
			t.Fatalf("cell %d missing from stream", i)
		}
		if cell.Index != i {
			t.Errorf("cell %d arrived with index %d", i, cell.Index)
		}
	}
	firstEvals := evals.Load()
	again, err := NewClient(base).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("repeat sweep: %v", err)
	}
	if got := evals.Load(); got != firstEvals {
		t.Errorf("repeat sweep evaluated %d more cells, want 0 (cache)", got-firstEvals)
	}
	for i := range res.Cells {
		if *again.Cells[i].Metrics != *res.Cells[i].Metrics {
			t.Errorf("cell %d diverged on repeat: %+v vs %+v", i, again.Cells[i].Metrics, res.Cells[i].Metrics)
		}
	}
}

// TestSweepSeriesMatchesLocal is the remote-fidelity contract: the series a
// client assembles from the daemon's stream are identical — labels, sizes,
// every metric — to the same spec run locally in-process.
func TestSweepSeriesMatchesLocal(t *testing.T) {
	_, base, _ := startServer(t, Config{Parallelism: 2})
	req := testSweepRequest()
	remote, err := NewClient(base).SweepSeries(context.Background(), req)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	spec, err := SpecFromRequest(req)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	spec.Parallelism = 1
	local, err := spec.RunContext(context.Background())
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	if lr, ll := experiments.FormatSeries(remote, spec.Kind), experiments.FormatSeries(local, spec.Kind); lr != ll {
		t.Errorf("remote rendering diverged from local:\nremote:\n%s\nlocal:\n%s", lr, ll)
	}
}

// TestSweepDrainResume covers the drain/resume lifecycle end to end: a
// SIGTERM-equivalent drain mid-sweep finishes the in-flight cell, skips the
// rest, journals what completed; a restarted server with the same journal
// dir and a cold cache replays finished cells and computes only the
// missing ones, and the stitched result matches an uninterrupted run.
func TestSweepDrainResume(t *testing.T) {
	journals := t.TempDir()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv, base, shutdown := startServer(t, Config{
		Parallelism: 1,
		JournalDir:  journals,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			entered <- struct{}{}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	req := testSweepRequest()
	type sweepOut struct {
		res *SweepResult
		err error
	}
	out := make(chan sweepOut, 1)
	go func() {
		c := NewClient(base)
		c.Retries = 0 // surface the partial result instead of retrying in place
		res, err := c.Sweep(context.Background(), req)
		out <- sweepOut{res, err}
	}()
	<-entered // first cell evaluating on the single worker
	go shutdown()
	for !srv.draining.Load() {
		runtime.Gosched()
	}
	close(release) // in-flight cell finishes; the drain skips the rest
	o := <-out
	if o.err == nil || !strings.Contains(o.err.Error(), "skipped") {
		t.Fatalf("drained sweep: err=%v, want incomplete-with-skips", o.err)
	}
	sum := o.res.Summary
	if sum.Completed == 0 || sum.Skipped == 0 || !sum.Draining {
		t.Fatalf("drain summary %+v, want some completed, some skipped, draining", sum)
	}
	// The drain closes the listener before in-flight requests finish, so
	// exercise the readiness handler directly: it must report draining.
	rec := httptest.NewRecorder()
	srv.handleReadyz(rec, httptest.NewRequest(http.MethodGet, readyzPath, nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("readyz during drain: %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Restart over the same journals with a cold cache: finished cells
	// replay (Resumed), missing ones are computed, nothing evaluates twice.
	var evals atomic.Int64
	_, base2, _ := startServer(t, Config{
		Parallelism: 1,
		JournalDir:  journals,
		EvalHook: func(ctx context.Context, workload string, size int, machine string) error {
			evals.Add(1)
			return nil
		},
	})
	resumed, err := NewClient(base2).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if resumed.Summary.Completed != resumed.Summary.Cells {
		t.Fatalf("resumed summary %+v, want all cells completed", resumed.Summary)
	}
	if resumed.Summary.Resumed != sum.Completed {
		t.Errorf("resumed %d cells from journal, want %d (what the drained run finished)", resumed.Summary.Resumed, sum.Completed)
	}
	if want := int64(resumed.Summary.Cells - sum.Completed); evals.Load() != want {
		t.Errorf("resume evaluated %d cells, want %d (only the missing ones)", evals.Load(), want)
	}
	// The stitched result matches an uninterrupted run on a third server.
	_, base3, _ := startServer(t, Config{Parallelism: 1})
	clean, err := NewClient(base3).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	for i := range clean.Cells {
		if *resumed.Cells[i].Metrics != *clean.Cells[i].Metrics {
			t.Errorf("cell %d: resumed %+v diverged from clean %+v", i, resumed.Cells[i].Metrics, clean.Cells[i].Metrics)
		}
	}
}

// TestDrainRefusesNewWork pins the drain admission surface: once draining,
// /evaluate answers 503 + Retry-After and /sweep refuses up front.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{Parallelism: 1})
	if err := shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_ = srv
	// The listener is closed after drain; admission semantics for a
	// draining-but-listening server are covered via the in-flight path in
	// TestSweepDrainResume. Here, the connection refusal itself is the
	// contract: a drained server holds no port.
	c := NewClient(base)
	c.Retries = 0
	if _, err := c.Evaluate(context.Background(), testEvaluateRequest()); err == nil {
		t.Fatal("evaluate after drain succeeded; want connection failure")
	}
}

// TestMetricsExposition spot-checks the Prometheus surface the probe and
// smoke arm parse: counters present, request counts labelled, histogram
// rendered.
func TestMetricsExposition(t *testing.T) {
	_, base, _ := startServer(t, Config{Parallelism: 1})
	if _, err := NewClient(base).Evaluate(context.Background(), testEvaluateRequest()); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	code, body := httpGetBody(t, base+metricsPath)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"qcbenchd_cache_fills_total 1",
		"qcbenchd_cache_dedups_total 0",
		"qcbenchd_queue_limit",
		"qcbenchd_inflight 0",
		"qcbenchd_sheds_total 0",
		"qcbenchd_draining 0",
		`qcbenchd_requests_total{endpoint="evaluate",code="200"} 1`,
		`qcbenchd_request_seconds_count{endpoint="evaluate"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
