package daemon

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/faultinject"
)

// switchFS routes disk-tier operations to a faulty filesystem while broken
// is set and to the healthy one otherwise. faultinject.FaultFS fixes its
// probabilities at construction (mutating them mid-test is a race), so
// degrade/recover tests flip this atomic gate instead.
type switchFS struct {
	broken  atomic.Bool
	faulty  cache.FS
	healthy cache.FS
}

func (s *switchFS) pick() cache.FS {
	if s.broken.Load() {
		return s.faulty
	}
	return s.healthy
}

func (s *switchFS) ReadFile(path string) ([]byte, error) { return s.pick().ReadFile(path) }
func (s *switchFS) WriteFile(dir, path string, data []byte) error {
	return s.pick().WriteFile(dir, path, data)
}
func (s *switchFS) Remove(path string) error { return s.pick().Remove(path) }

// readyzOf exercises the readiness handler directly and returns its status
// and body.
func readyzOf(srv *Server) (int, string) {
	rec := httptest.NewRecorder()
	srv.handleReadyz(rec, httptest.NewRequest(http.MethodGet, readyzPath, nil))
	return rec.Code, rec.Body.String()
}

// TestChaosDiskFaultDegradesAndRecovers drives the full disk-tier failure
// lifecycle through the HTTP surface: injected filesystem faults trip the
// cache's error budget and quarantine the tier; /readyz flips to 503 while
// /healthz stays 200 and requests keep being served memory-only; healing
// the filesystem lets the next probe re-enable the tier and /readyz
// recovers.
func TestChaosDiskFaultDegradesAndRecovers(t *testing.T) {
	fs := &switchFS{
		faulty:  faultinject.NewFaultFS(cache.OSFS{}, 1), // everything fails
		healthy: cache.OSFS{},
	}
	fs.faulty.(*faultinject.FaultFS).ReadFail = 1
	fs.faulty.(*faultinject.FaultFS).WriteFail = 1
	srv, base, _ := startServer(t, Config{
		Parallelism: 1,
		CacheDir:    t.TempDir(),
		CacheOpts: []cache.Option{
			cache.WithFS(fs),
			cache.WithRetry(0, 0),      // no retries: faults surface immediately
			cache.WithErrorBudget(2),   // two consecutive failures quarantine
			cache.WithProbeInterval(0), // probe on every access: prompt recovery
		},
	})

	// Healthy filesystem first: baseline evaluation lands on disk.
	if _, err := NewClient(base).Evaluate(context.Background(), testEvaluateRequest()); err != nil {
		t.Fatalf("baseline evaluate: %v", err)
	}
	if code, body := readyzOf(srv); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz healthy: %d %q, want 200 ready", code, body)
	}

	// Break the disk. Distinct keys force disk lookups and fills; each op
	// fails, and the error budget quarantines the tier.
	fs.broken.Store(true)
	for i := 0; i < 3; i++ {
		req := testEvaluateRequest()
		req.Seed = int64(100 + i) // fresh keys: must miss memory and touch disk
		if _, err := NewClient(base).Evaluate(context.Background(), req); err != nil {
			t.Fatalf("evaluate %d under disk faults: %v (mem-only serving must continue)", i, err)
		}
	}
	st := srv.Store().Snapshot()
	if !st.Degraded {
		t.Fatalf("disk tier not quarantined after %d failed ops: %+v", st.DiskErrs, st)
	}
	if st.Quarantines == 0 || st.DiskErrs == 0 {
		t.Errorf("fault accounting empty: %+v", st)
	}
	if code, body := readyzOf(srv); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("readyz degraded: %d %q, want 503 degraded", code, body)
	}
	if code, body := httpGetBody(t, base+healthzPath); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz degraded: %d %q, want 200 ok (liveness must not restart a degraded server)", code, body)
	}
	// Degraded serving is counted and exported.
	if code, body := httpGetBody(t, base+metricsPath); code != http.StatusOK ||
		!strings.Contains(body, "qcbenchd_cache_degraded 1") {
		t.Errorf("metrics during quarantine should export qcbenchd_cache_degraded 1:\n%s", body)
	}

	// Heal the filesystem: the next disk-touching request probes (interval
	// 0), the probe succeeds, and the tier re-enables.
	fs.broken.Store(false)
	req := testEvaluateRequest()
	req.Seed = 999
	if _, err := NewClient(base).Evaluate(context.Background(), req); err != nil {
		t.Fatalf("evaluate after heal: %v", err)
	}
	if st := srv.Store().Snapshot(); st.Degraded {
		t.Fatalf("disk tier still quarantined after heal: %+v", st)
	}
	if code, body := readyzOf(srv); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("readyz after heal: %d %q, want 200 ready", code, body)
	}
}

// TestChaosPanicCellsSweep fans a panic-injecting hook under a sweep:
// failures stay confined to their cells (5xx-equivalent in-band errors),
// the sweep completes, the process survives, and the surviving cells are
// byte-identical to a clean run.
func TestChaosPanicCellsSweep(t *testing.T) {
	inject := faultinject.PanicCells(7, 0.4)
	_, base, _ := startServer(t, Config{
		Parallelism: 2,
		EvalHook:    inject,
	})
	req := testSweepRequest()
	c := NewClient(base)
	c.Retries = 0 // panics are deterministic per cell; retrying re-panics
	res, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep under panic injection: %v", err)
	}
	if res.Summary.Failed == 0 {
		t.Fatalf("panic injection at p=0.4 over %d cells produced no failures; injection not reaching the evaluator", res.Summary.Cells)
	}
	if res.Summary.Completed == 0 {
		t.Fatalf("every cell failed; injection should be partial at p=0.4")
	}
	if res.Summary.Completed+res.Summary.Failed != res.Summary.Cells {
		t.Errorf("summary does not add up: %+v", res.Summary)
	}
	for i, cell := range res.Cells {
		if cell.Error != "" && !strings.Contains(cell.Error, "panic") {
			t.Errorf("cell %d failed with %q, want a contained panic", i, cell.Error)
		}
	}

	// The process is still healthy, and a clean server produces identical
	// metrics for every cell that survived the chaos run.
	if code, body := httpGetBody(t, base+healthzPath); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz after contained panics: %d %q", code, body)
	}
	_, cleanBase, _ := startServer(t, Config{Parallelism: 2})
	clean, err := NewClient(cleanBase).Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	for i, cell := range res.Cells {
		if cell.Metrics == nil {
			continue // the injected failure
		}
		if *cell.Metrics != *clean.Cells[i].Metrics {
			t.Errorf("surviving cell %d diverged from clean run: %+v vs %+v", i, cell.Metrics, clean.Cells[i].Metrics)
		}
	}
}

// TestChaosFaultFSWithRetryHeals proves the retry budget rides over
// transient disk faults without quarantining: a 30%-failure filesystem
// under WithRetry keeps the tier enabled and every request served.
func TestChaosFaultFSWithRetryHeals(t *testing.T) {
	faulty := faultinject.NewFaultFS(cache.OSFS{}, 42)
	faulty.ReadFail = 0.3
	faulty.WriteFail = 0.3
	srv, base, _ := startServer(t, Config{
		Parallelism: 1,
		CacheDir:    t.TempDir(),
		CacheOpts: []cache.Option{
			cache.WithFS(faulty),
			cache.WithRetry(8, 0), // ample budget, no backoff wait in tests
			cache.WithErrorBudget(50),
		},
	})
	for i := 0; i < 6; i++ {
		req := testEvaluateRequest()
		req.Seed = int64(i + 1)
		if _, err := NewClient(base).Evaluate(context.Background(), req); err != nil {
			t.Fatalf("evaluate %d under transient faults: %v", i, err)
		}
	}
	st := srv.Store().Snapshot()
	if st.Degraded {
		t.Errorf("transient faults under retry quarantined the tier: %+v", st)
	}
	if faulty.InjectedFails.Load() == 0 {
		t.Skip("seeded schedule injected no faults at these op counts; nothing exercised")
	}
	if st.Retries == 0 {
		t.Errorf("injected %d faults but cache recorded no retries: %+v", faulty.InjectedFails.Load(), st)
	}
}
