package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
)

// SweepRequest is the /sweep wire request: a complete, self-contained
// description of one figure-style sweep. Machines travel as a declarative
// arch spec list (the experiments.MachinesFromSpecs grammar) so the
// request is plain data; every other field maps onto the corresponding
// experiments.SweepSpec knob. Cell seeds derive from (ID, workload, size,
// machine name, Seed) exactly as in a local sweep, so a request mirroring
// a figure spec produces byte-identical metrics. CellTimeoutMS bounds each
// cell's runtime without entering any cache key or journal identity.
type SweepRequest struct {
	ID                string   `json:"id"`
	Kind              string   `json:"kind"` // "swaps" or "codesign"
	Machines          string   `json:"machines"`
	Workloads         []string `json:"workloads"`
	Sizes             []int    `json:"sizes"`
	Seed              int64    `json:"seed"`
	Trials            int      `json:"trials,omitempty"`
	Router            string   `json:"router,omitempty"`
	Profile           bool     `json:"profile,omitempty"`
	ProfileIterations int      `json:"profile_iterations,omitempty"`
	CellTimeoutMS     int64    `json:"cell_timeout_ms,omitempty"`
}

// SweepCellResult is one streamed cell outcome. Exactly one of Metrics,
// Error, or Skipped is meaningful: a completed cell carries Metrics (with
// Resumed set when it replayed from the journal), a failed cell carries
// its error confined to that cell, and a skipped cell was never attempted
// because the server began draining.
type SweepCellResult struct {
	Index    int           `json:"index"`
	Series   int           `json:"series"`
	Workload string        `json:"workload"`
	Machine  string        `json:"machine"`
	Size     int           `json:"size"`
	Metrics  *core.Metrics `json:"metrics,omitempty"`
	Error    string        `json:"error,omitempty"`
	Skipped  bool          `json:"skipped,omitempty"`
	Resumed  bool          `json:"resumed,omitempty"`
}

// SweepSummary terminates the stream with the sweep's accounting. A
// Draining summary means the server was asked to stop mid-sweep: finished
// cells are journaled, and re-POSTing the identical request after restart
// resumes from where this stream ended.
type SweepSummary struct {
	Cells     int  `json:"cells"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	Skipped   int  `json:"skipped"`
	Resumed   int  `json:"resumed"`
	Draining  bool `json:"draining,omitempty"`
}

// SweepEvent is one NDJSON line of the /sweep stream: cell events in the
// fixed Cells order, then exactly one done event.
type SweepEvent struct {
	Cell *SweepCellResult `json:"cell,omitempty"`
	Done *SweepSummary    `json:"done,omitempty"`
}

// parseKind maps the wire kind name to experiments.SweepKind.
func parseKind(name string) (experiments.SweepKind, error) {
	switch name {
	case "swaps":
		return experiments.SwapCounts, nil
	case "codesign":
		return experiments.Codesign, nil
	default:
		return 0, fmt.Errorf("unknown kind %q: want swaps or codesign", name)
	}
}

// SpecFromRequest reconstructs the experiments.SweepSpec a SweepRequest
// describes. Shared by server and client: the server evaluates under it,
// the client enumerates its Cells to assemble streamed results into
// Series, and because both sides build it from the same wire data they
// agree on cell order, seeds, and labels without further coordination.
func SpecFromRequest(req SweepRequest) (experiments.SweepSpec, error) {
	var spec experiments.SweepSpec
	kind, err := parseKind(req.Kind)
	if err != nil {
		return spec, err
	}
	if req.Machines == "" {
		return spec, fmt.Errorf("missing machines spec list")
	}
	ms, err := experiments.MachinesFromSpecs(req.Machines)
	if err != nil {
		return spec, fmt.Errorf("machines: %v", err)
	}
	if len(req.Workloads) == 0 {
		return spec, fmt.Errorf("missing workloads")
	}
	if len(req.Sizes) == 0 {
		return spec, fmt.Errorf("missing sizes")
	}
	for _, size := range req.Sizes {
		if size < 2 {
			return spec, fmt.Errorf("size %d too small (workloads need ≥ 2 qubits)", size)
		}
	}
	if req.Trials < 0 {
		return spec, fmt.Errorf("trials must be ≥ 0, got %d", req.Trials)
	}
	rk, err := parseRouter(req.Router)
	if err != nil {
		return spec, err
	}
	spec = experiments.SweepSpec{
		ID:        req.ID,
		Kind:      kind,
		Machines:  ms,
		Workloads: req.Workloads,
		Sizes:     req.Sizes,
	}
	spec.Seed = req.Seed
	spec.Trials = req.Trials
	spec.Router = rk
	spec.ProfileGuided = req.Profile
	spec.ProfileIterations = req.ProfileIterations
	return spec, nil
}

// sweepJournalKey content-addresses a sweep's identity for its journal
// file name: everything that determines the cells' values, nothing that
// only bounds runtime (CellTimeoutMS). Two clients POSTing the same sweep
// share one journal; a changed seed or machine list gets a fresh one.
func sweepJournalKey(req SweepRequest) cache.Key {
	h := cache.NewHasher(sweepJournalDomain)
	h.WriteString(req.ID)
	h.WriteString(req.Kind)
	h.WriteString(req.Machines)
	h.WriteInt(int64(len(req.Workloads)))
	for _, w := range req.Workloads {
		h.WriteString(w)
	}
	h.WriteInt(int64(len(req.Sizes)))
	for _, s := range req.Sizes {
		h.WriteInt(int64(s))
	}
	h.WriteInt(req.Seed)
	h.WriteInt(int64(req.Trials))
	h.WriteString(req.Router)
	if req.Profile {
		h.WriteInt(1)
		h.WriteInt(int64(req.ProfileIterations))
	}
	return h.Sum()
}

// handleSweep serves POST /sweep: validate the whole request up front
// (400 before any streaming), then stream one NDJSON SweepEvent per cell
// in the fixed Cells order as evaluations complete on the shared worker
// pool, closing with a summary event. Cell failures are confined: a
// panicking or failing cell becomes that cell's error event and the sweep
// continues — the daemon is always a tolerant evaluator; the client
// decides whether partial results are acceptable. If the server drains
// mid-sweep, undispatched cells are skipped (not failed), in-flight cells
// finish, and the journal is synced before the summary goes out.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST only")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEvaluateBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	spec, err := SpecFromRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, "%v", err)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, drainRetryAfter, "%v", errDraining)
		return
	}
	var journal *experiments.Journal
	if s.cfg.JournalDir != "" {
		path := filepath.Join(s.cfg.JournalDir, sweepJournalKey(req).String()+".journal")
		journal, err = experiments.OpenJournal(path)
		if err != nil {
			// A broken journal degrades to recomputing, never to refusing
			// the sweep: log and run journal-less.
			s.logf("daemon: sweep journal %s unusable, recomputing: %v", path, err)
			journal = nil
		} else {
			defer journal.Close()
		}
	}
	cellTimeout := s.requestTimeout(req.CellTimeoutMS)
	cells := spec.Cells()
	results := make([]*SweepCellResult, len(cells))
	ready := make([]chan struct{}, len(cells))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	// Bounded fan-out: at most slot-count workers claim cells from a
	// shared counter. Admission happens per fill inside evaluate (blocking
	// acquire — sweeps are paced, not shed), so journal replays and cache
	// hits stream without waiting for a slot. Every claimed index closes
	// its ready channel exactly once, so the emitter below never hangs.
	var next atomic.Int64
	workers := cap(s.slots)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i] = s.runSweepCell(r.Context(), spec, cells[i], cellTimeout, journal)
				close(ready[i])
			}
		}()
	}
	w.Header().Set("Content-Type", ndjsonContentType)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sum := SweepSummary{Cells: len(cells)}
	for i := range cells {
		<-ready[i]
		res := results[i]
		switch {
		case res.Skipped:
			sum.Skipped++
		case res.Error != "":
			sum.Failed++
		default:
			sum.Completed++
			if res.Resumed {
				sum.Resumed++
			}
		}
		if err := enc.Encode(SweepEvent{Cell: res}); err != nil {
			// Client gone: let remaining workers finish (their results are
			// journaled for the retry) and stop emitting.
			s.logf("daemon: sweep stream broken at cell %d: %v", i, err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if journal != nil {
		if err := journal.Sync(); err != nil {
			s.logf("daemon: %v", err)
		}
	}
	sum.Draining = s.draining.Load() && sum.Skipped > 0
	enc.Encode(SweepEvent{Done: &sum}) //nolint:errcheck // stream already committed
	if flusher != nil {
		flusher.Flush()
	}
}

// runSweepCell evaluates one sweep cell: journal replay first (no
// evaluation, no hook), then the deduplicating admission-controlled
// evaluate path under the cell's timeout, then journaling the fresh
// result. Failures — including contained panics — land in the cell result
// rather than failing the sweep.
func (s *Server) runSweepCell(ctx context.Context, spec experiments.SweepSpec, cell experiments.SweepCell, cellTimeout time.Duration, journal *experiments.Journal) *SweepCellResult {
	workload := spec.Workloads[cell.Workload]
	m := spec.Machines[cell.Machine]
	res := &SweepCellResult{
		Index:    cell.Index,
		Series:   cell.Series,
		Workload: workload,
		Machine:  m.Name,
		Size:     cell.Size,
	}
	c, err := experiments.BenchmarkCircuit(workload, cell.Size, spec.Seed)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	opt := spec.CellOptions(cell)
	key := m.EvaluateKey(c, opt)
	if journal != nil {
		if met, ok := journal.Lookup(key); ok {
			res.Metrics = &met
			res.Resumed = true
			return res
		}
	}
	cctx, cancel := context.WithTimeout(ctx, cellTimeout)
	defer cancel()
	met, err := s.evaluate(cctx, false, key, m, c, opt, workload, cell.Size)
	if err != nil {
		if errors.Is(err, errDraining) {
			res.Skipped = true
		}
		res.Error = err.Error()
		return res
	}
	if journal != nil {
		if jerr := journal.Record(key, met); jerr != nil {
			s.logf("daemon: %v", jerr)
		}
	}
	res.Metrics = &met
	return res
}
