// Package daemon implements qcbenchd, the fault-contained evaluation
// service: an HTTP/JSON front end over the core evaluation pipeline that
// owns one two-tier result cache and serves concurrent clients without
// letting any single request take the process — or another client's
// request — down with it.
//
// The robustness posture, end to end:
//
//   - Admission control: evaluations run on a bounded worker pool sized
//     like the internal/par pools (0 = all cores). A bounded number of
//     fills may wait for a slot; past that, /evaluate sheds load with
//     429 + Retry-After instead of queueing unboundedly. Cache hits and
//     deduplicated joins bypass admission entirely, so a hot key never
//     sheds.
//   - Cross-client deduplication: requests are content-addressed by the
//     same core.Machine.EvaluateKey the CLI cache uses, and fills run
//     under cache.Store.Do singleflight — N identical concurrent requests
//     cost one evaluation, and the other N−1 wait for its result.
//   - Fault containment: a panicking evaluation is recovered inside its
//     fill (surfacing as *par.PanicError with the stack logged), fails
//     only the requests joined on that key, and leaves the process
//     serving. A quarantined disk tier flips /readyz to 503 while
//     /healthz stays 200 and memory-only serving continues.
//   - Deadlines: every request runs under a context deadline — the
//     client's timeout_ms clamped by the server's maximum — so a wedged
//     evaluation cannot hold a worker slot forever.
//   - Graceful drain: cancelling Serve's context (SIGTERM via
//     cli.NotifyContext in cmd/qcbenchd) stops admission, lets in-flight
//     evaluations finish under a drain deadline, syncs sweep journals,
//     and only then exits.
//
// POST /sweep streams a whole figure sweep as NDJSON, one event per cell
// in the fixed experiments.SweepSpec.Cells order, journaling each
// completed cell so an interrupted sweep resumes byte-identically.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/par"
)

// Default server limits. MaxTimeout bounds any single evaluation (a client
// may ask for less, never more); DrainTimeout bounds how long a SIGTERM
// drain waits for in-flight work; QueueDepth is the default number of
// fills that may wait for a worker slot, per slot, before shedding.
const (
	DefaultMaxTimeout    = 2 * time.Minute
	DefaultDrainTimeout  = 15 * time.Second
	DefaultQueueFactor   = 4
	DefaultCacheEntries  = 0 // cache package default
	shedRetryAfter       = 1 // seconds, sent with 429
	drainRetryAfter      = 5 // seconds, sent with 503 while draining
	healthzPath          = "/healthz"
	readyzPath           = "/readyz"
	metricsPath          = "/metrics"
	evaluatePath         = "/evaluate"
	sweepPath            = "/sweep"
	sweepJournalDomain   = "daemon.Sweep/v1"
	ndjsonContentType    = "application/x-ndjson"
	jsonContentType      = "application/json"
	maxEvaluateBodyBytes = 1 << 20
)

// Config parameterizes a Server. The zero value is serviceable: loopback
// listener on an ephemeral port, memory-only cache, all-cores worker pool,
// default queue bound and timeouts, no sweep journaling.
type Config struct {
	// Addr is the listen address; "" means "127.0.0.1:0" (loopback,
	// ephemeral port — Addr() reports what was bound).
	Addr string

	// CacheEntries and CacheDir configure the server's result cache
	// exactly like core.NewMetricsCache: entries bounds the in-memory LRU
	// (0 = default), dir adds the on-disk JSON tier ("" = memory-only).
	// CacheOpts tune the disk tier's robustness machinery and are the
	// chaos tests' seam for injecting filesystem faults.
	CacheEntries int
	CacheDir     string
	CacheOpts    []cache.Option

	// Parallelism is the evaluation worker-slot count (0 = all cores,
	// resolved like the internal/par pools). QueueDepth is how many fills
	// beyond the running ones may wait for a slot before /evaluate sheds
	// with 429 (0 = DefaultQueueFactor × slots).
	Parallelism int
	QueueDepth  int

	// MaxTimeout clamps every request's evaluation deadline (0 =
	// DefaultMaxTimeout); DrainTimeout bounds the SIGTERM drain (0 =
	// DefaultDrainTimeout).
	MaxTimeout   time.Duration
	DrainTimeout time.Duration

	// JournalDir, when non-empty, journals every /sweep request's
	// completed cells under a content-hash of the sweep's identity, so an
	// interrupted sweep re-POSTed after a restart replays finished cells
	// instead of recomputing them.
	JournalDir string

	// EvalHook, when non-nil, runs inside the admission slot immediately
	// before each evaluation — the fault-injection seam, structurally
	// compatible with faultinject's cell hooks. A hook error or panic
	// fails that evaluation only.
	EvalHook experiments.CellHook

	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Sentinel errors the admission path produces; handlers map them to 429
// and 503 respectively.
var (
	errShed     = errors.New("daemon: evaluation queue full")
	errDraining = errors.New("daemon: server draining")
)

// Server is the qcbenchd HTTP server. Create with New, bind with Listen
// (optional — Serve binds if needed), run with Serve; cancelling Serve's
// context triggers the graceful drain.
type Server struct {
	cfg        Config
	store      *core.MetricsCache
	slots      chan struct{}
	queueLimit int64
	queued     atomic.Int64
	drainCh    chan struct{}
	draining   atomic.Bool
	met        *serverMetrics
	httpSrv    *http.Server

	mu sync.Mutex
	ln net.Listener
}

// New builds a Server from cfg, including its result cache. The server
// owns the cache for its lifetime; Store exposes it to tests.
func New(cfg Config) (*Server, error) {
	store, err := core.NewMetricsCache(cfg.CacheEntries, cfg.CacheDir, cfg.CacheOpts...)
	if err != nil {
		return nil, fmt.Errorf("daemon: cache: %w", err)
	}
	slots := par.Resolve(cfg.Parallelism)
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueFactor * slots
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		slots:      make(chan struct{}, slots),
		queueLimit: int64(slots + depth),
		drainCh:    make(chan struct{}),
		met:        newServerMetrics("evaluate", "sweep", "healthz", "readyz", "metrics"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc(evaluatePath, s.instrument("evaluate", s.handleEvaluate))
	mux.HandleFunc(sweepPath, s.instrument("sweep", s.handleSweep))
	mux.HandleFunc(healthzPath, s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc(readyzPath, s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc(metricsPath, s.instrument("metrics", s.handleMetrics))
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// Store exposes the server's result cache (tests assert on its Snapshot).
func (s *Server) Store() *core.MetricsCache { return s.store }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Listen binds the configured address and returns the bound address
// ("127.0.0.1:53412"), so callers can bind an ephemeral port and learn it
// before any request can be missed. Idempotent once bound.
func (s *Server) Listen() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Addr().String(), nil
	}
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("daemon: listen %s: %w", addr, err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts requests until ctx is cancelled, then drains: admission
// stops (queued-but-undispatched work fails with errDraining, /readyz
// flips to 503), in-flight requests finish under Config.DrainTimeout, and
// Serve returns nil on a clean drain. A listener error surfaces directly.
func (s *Server) Serve(ctx context.Context) error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	errCh := make(chan error, 1)
	go func() { errCh <- s.httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("daemon: serve: %w", err)
	case <-ctx.Done():
	}
	s.beginDrain()
	dt := s.cfg.DrainTimeout
	if dt <= 0 {
		dt = DefaultDrainTimeout
	}
	sctx, cancel := context.WithTimeout(context.Background(), dt)
	defer cancel()
	err := s.httpSrv.Shutdown(sctx)
	<-errCh // http.ErrServerClosed from the Serve goroutine
	if err != nil {
		return fmt.Errorf("daemon: drain: %w", err)
	}
	s.logf("daemon: drained cleanly")
	return nil
}

// beginDrain flips the server into draining mode exactly once: /readyz
// reports 503, and every evaluation waiting for (or newly requesting) a
// worker slot fails with errDraining while in-flight evaluations finish.
func (s *Server) beginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logf("daemon: draining: refusing new work, finishing in-flight requests")
		close(s.drainCh)
	}
}

// acquire admits one evaluation onto the worker pool and returns its
// release function. With shed set (interactive /evaluate fills), admission
// is bounded: once queueLimit evaluations are waiting or running, the
// request is refused with errShed instead of queueing — the server never
// accumulates unbounded waiters. Without shed (sweep cells), the caller
// blocks until a slot frees, its context expires, or the drain begins;
// sweeps self-throttle by construction, so they are paced rather than
// refused.
func (s *Server) acquire(ctx context.Context, shed bool) (release func(), err error) {
	undo := func() {}
	if shed {
		if s.queued.Add(1) > s.queueLimit {
			s.queued.Add(-1)
			s.met.sheds.Add(1)
			return nil, errShed
		}
		undo = func() { s.queued.Add(-1) }
	}
	// Drain wins over a free slot: select picks randomly among ready
	// cases, so check the drain channel alone first.
	select {
	case <-s.drainCh:
		undo()
		return nil, errDraining
	default:
	}
	select {
	case s.slots <- struct{}{}:
		s.met.inflight.Add(1)
		return func() {
			s.met.inflight.Add(-1)
			<-s.slots
			undo()
		}, nil
	case <-ctx.Done():
		undo()
		return nil, ctx.Err()
	case <-s.drainCh:
		undo()
		return nil, errDraining
	}
}

// evaluate runs one content-addressed evaluation through the cache's
// singleflight: hits and joins return without touching admission; the one
// fill per key acquires a worker slot (shedding or blocking per shed),
// runs the EvalHook seam, and evaluates with a recover that converts a
// panic into a *par.PanicError confined to the requests joined on this
// key. The options must carry a nil Cache — the server's store is the
// cache, applied here, so the inner pipeline never double-caches.
func (s *Server) evaluate(ctx context.Context, shed bool, key cache.Key, m core.Machine, c *circuit.Circuit, opt core.Options, workload string, size int) (core.Metrics, error) {
	fill := func() (met core.Metrics, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.met.panics.Add(1)
				perr := &par.PanicError{Value: r, Stack: debug.Stack()}
				s.logf("daemon: evaluation panic contained: %s/%s(%d): %v\n%s",
					m.Name, workload, size, r, perr.Stack)
				err = perr
			}
		}()
		release, aerr := s.acquire(ctx, shed)
		if aerr != nil {
			return core.Metrics{}, aerr
		}
		defer release()
		if s.cfg.EvalHook != nil {
			if herr := s.cfg.EvalHook(ctx, workload, size, m.Name); herr != nil {
				return core.Metrics{}, herr
			}
		}
		eo := opt
		eo.Cache = nil
		return m.EvaluateContext(ctx, c, eo)
	}
	return s.store.Do(key, fill)
}

// requestTimeout clamps a client's timeout_ms by the server maximum.
func (s *Server) requestTimeout(ms int64) time.Duration {
	max := s.cfg.MaxTimeout
	if max <= 0 {
		max = DefaultMaxTimeout
	}
	if ms <= 0 {
		return max
	}
	if d := time.Duration(ms) * time.Millisecond; d < max {
		return d
	}
	return max
}

// statusWriter records the status code a handler wrote (200 if it never
// called WriteHeader) and forwards Flush for streaming responses.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request counting and latency histograms.
func (s *Server) instrument(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		s.met.observe(endpoint, sw.code, time.Since(start))
	}
}

// errorBody is the structured JSON error every non-2xx response carries.
type errorBody struct {
	Error        string `json:"error"`
	Code         int    `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeError emits a structured JSON error; retryAfter > 0 additionally
// sets the Retry-After header (seconds) for 429/503 shedding responses.
func writeError(w http.ResponseWriter, code int, retryAfter int, format string, args ...any) {
	w.Header().Set("Content-Type", jsonContentType)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	}
	w.WriteHeader(code)
	body := errorBody{Error: fmt.Sprintf(format, args...), Code: code}
	if retryAfter > 0 {
		body.RetryAfterMS = int64(retryAfter) * 1000
	}
	enc := json.NewEncoder(w)
	enc.Encode(body) //nolint:errcheck // response already committed
}

// writeJSON emits a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", jsonContentType)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // response already committed
}

// EvaluateRequest is the /evaluate wire request: one machine (declarative
// arch spec), one benchmark workload at one width, and the evaluation
// knobs that are part of the result's identity. Seed seeds both the
// circuit generation and the routing, mirroring the CLI's headline
// evaluations. TimeoutMS is a runtime bound only — it never changes what a
// completed evaluation computes and is excluded from the cache key.
type EvaluateRequest struct {
	Machine           string `json:"machine"`
	Workload          string `json:"workload"`
	Size              int    `json:"size"`
	Seed              int64  `json:"seed"`
	Trials            int    `json:"trials,omitempty"`
	Router            string `json:"router,omitempty"` // "", "stochastic", "sabre"
	Profile           bool   `json:"profile,omitempty"`
	ProfileIterations int    `json:"profile_iterations,omitempty"`
	TimeoutMS         int64  `json:"timeout_ms,omitempty"`
}

// parseRouter maps the wire router name to core.RouterKind.
func parseRouter(name string) (core.RouterKind, error) {
	switch name {
	case "", "stochastic":
		return core.RouterStochastic, nil
	case "sabre":
		return core.RouterSabre, nil
	default:
		return 0, fmt.Errorf("unknown router %q: want stochastic or sabre", name)
	}
}

// buildEvaluate validates an EvaluateRequest into its machine, circuit,
// and options. Every error here is a client mistake (400).
func buildEvaluate(req EvaluateRequest) (core.Machine, *circuit.Circuit, core.Options, error) {
	var opt core.Options
	if req.Machine == "" {
		return core.Machine{}, nil, opt, fmt.Errorf("missing machine spec")
	}
	m, err := core.FromSpec(req.Machine)
	if err != nil {
		return core.Machine{}, nil, opt, fmt.Errorf("machine: %v", err)
	}
	if req.Size > m.Graph.N() {
		return core.Machine{}, nil, opt, fmt.Errorf("size %d exceeds machine %s (%d qubits)", req.Size, m.Name, m.Graph.N())
	}
	c, err := experiments.BenchmarkCircuit(req.Workload, req.Size, req.Seed)
	if err != nil {
		return core.Machine{}, nil, opt, fmt.Errorf("workload: %v", err)
	}
	rk, err := parseRouter(req.Router)
	if err != nil {
		return core.Machine{}, nil, opt, err
	}
	if req.Trials < 0 {
		return core.Machine{}, nil, opt, fmt.Errorf("trials must be ≥ 0, got %d", req.Trials)
	}
	opt = core.Options{
		Seed:              req.Seed,
		Trials:            req.Trials,
		Router:            rk,
		Parallelism:       1, // concurrency unit is the request, not the trial
		ProfileGuided:     req.Profile,
		ProfileIterations: req.ProfileIterations,
	}
	return m, c, opt, nil
}

// handleEvaluate serves POST /evaluate: validate, content-address, and run
// through the deduplicating, admission-controlled evaluate path. The
// response is the core.Metrics JSON — byte-identical across cold, warm,
// and deduplicated serves because the value is the same cached struct.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST only")
		return
	}
	var req EvaluateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEvaluateBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	m, c, opt, err := buildEvaluate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, "%v", err)
		return
	}
	key := m.EvaluateKey(c, opt)
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()
	met, err := s.evaluate(ctx, true, key, m, c, opt, req.Workload, req.Size)
	if err != nil {
		s.writeEvaluateError(w, err)
		return
	}
	writeJSON(w, met)
}

// writeEvaluateError maps evaluation failures onto the HTTP surface:
// shedding → 429, draining → 503 (both retryable, with Retry-After),
// deadline → 504, contained panic or any other evaluation failure → 500.
func (s *Server) writeEvaluateError(w http.ResponseWriter, err error) {
	var perr *par.PanicError
	switch {
	case errors.Is(err, errShed):
		writeError(w, http.StatusTooManyRequests, shedRetryAfter, "%v", err)
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, drainRetryAfter, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, 0, "evaluation deadline exceeded")
	case errors.As(err, &perr):
		writeError(w, http.StatusInternalServerError, 0, "evaluation panicked: %v", perr.Value)
	default:
		writeError(w, http.StatusInternalServerError, 0, "evaluation failed: %v", err)
	}
}

// handleHealthz reports process liveness: 200 as long as the process can
// serve HTTP at all, even degraded or draining — liveness probes must not
// restart a server that is merely running without its disk tier.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness for full-fidelity service: 503 while
// draining (stop routing new work here) and 503 while the cache's disk
// tier is quarantined (the server still answers — memory-only — but a
// load balancer should prefer a healthy replica).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.store.Snapshot().Degraded {
		reasons = append(reasons, "degraded: disk cache tier quarantined, serving memory-only")
	}
	if len(reasons) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, reason := range reasons {
			fmt.Fprintln(w, reason)
		}
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeMetrics(w, s.store.Snapshot(), gauges{
		queued:     s.queued.Load(),
		queueLimit: s.queueLimit,
		draining:   s.draining.Load(),
	})
}
