package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Client default retry policy: the same shape as the cache disk tier's
// (cache.WithRetry) — a retry budget with exponentially growing,
// seeded-jitter backoff — applied to the transient failures of a remote
// evaluation service: connection errors, 429 shedding, 503 draining.
const (
	DefaultClientRetries = 3
	DefaultClientBackoff = 100 * time.Millisecond
)

// Client is the qcbench-side view of a qcbenchd server: thin, stateless
// request assembly plus seeded-jitter retry. Results are the server's
// verbatim core.Metrics, so a remote sweep's output is byte-identical to
// a local one.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8123".
	BaseURL string

	// HTTPClient defaults to http.DefaultClient. Retries is the extra
	// attempts after the first (negative = none); Backoff the base delay,
	// doubled per attempt with seeded jitter exactly like the cache disk
	// tier's policy (sleep in [d/2, d) for d = Backoff << attempt).
	HTTPClient *http.Client
	Retries    int
	Backoff    time.Duration

	// JitterSeed decorrelates concurrent clients' retry storms; 0 keeps
	// the deterministic default stream.
	JitterSeed uint64

	jitterN uint64 // splitmix64 stream position
}

// NewClient returns a Client for baseURL with the default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, Retries: DefaultClientRetries, Backoff: DefaultClientBackoff}
}

// splitmix64 is the jitter scrambler, the same finalizer the cache's
// backoff uses, so client and server shed correlated retries the same way.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// backoffWait sleeps the attempt's jittered backoff (cancellable): for
// base delay d = Backoff << attempt, the wait is uniform in [d/2, d) —
// cache.Store's retry shape. A server-provided Retry-After floor (seconds)
// overrides a shorter computed wait.
func (c *Client) backoffWait(ctx context.Context, attempt int, retryAfter time.Duration) error {
	base := c.Backoff
	if base <= 0 {
		base = DefaultClientBackoff
	}
	d := base << attempt
	c.jitterN++
	frac := float64(splitmix64(c.JitterSeed+c.jitterN)>>11) / float64(uint64(1)<<53)
	wait := d/2 + time.Duration(frac*float64(d/2))
	if retryAfter > wait {
		wait = retryAfter
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether a response status is worth retrying: shedding
// and draining are transient by design; other errors are deterministic
// (a panic or bad request replays identically).
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryAfterOf parses a response's Retry-After seconds, 0 when absent.
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// decodeErrorBody turns a non-2xx response into an error carrying the
// server's structured message.
func decodeErrorBody(resp *http.Response) error {
	var body errorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("daemon: server %d: %s", resp.StatusCode, body.Error)
	}
	return fmt.Errorf("daemon: server %d: %s", resp.StatusCode, bytes.TrimSpace(data))
}

// post sends one JSON POST and hands the successful response to consume,
// retrying transient failures (connection errors, 429, 503, or a consume
// error on a resumable stream) under the backoff policy. consume owns the
// response body.
func (c *Client) post(ctx context.Context, path string, reqBody any, consume func(*http.Response) error) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("daemon: encode request: %w", err)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("daemon: build request: %w", err)
		}
		req.Header.Set("Content-Type", jsonContentType)
		resp, err := hc.Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			lastErr = fmt.Errorf("daemon: %s: %w", path, err)
		case retryable(resp.StatusCode):
			retryAfter = retryAfterOf(resp)
			lastErr = decodeErrorBody(resp)
			resp.Body.Close()
		case resp.StatusCode != http.StatusOK:
			defer resp.Body.Close()
			return decodeErrorBody(resp)
		default:
			cerr := consume(resp)
			resp.Body.Close()
			if cerr == nil {
				return nil
			}
			lastErr = cerr
			var retry *retryableError
			if !errors.As(cerr, &retry) {
				return cerr
			}
		}
		if attempt >= c.Retries {
			return lastErr
		}
		if werr := c.backoffWait(ctx, attempt, retryAfter); werr != nil {
			return lastErr
		}
	}
}

// retryableError marks a consume failure (e.g. a sweep stream cut
// mid-flight) as safe to retry with a fresh request.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Evaluate runs one remote evaluation and returns the server's metrics.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (core.Metrics, error) {
	var met core.Metrics
	err := c.post(ctx, evaluatePath, req, func(resp *http.Response) error {
		if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
			return &retryableError{fmt.Errorf("daemon: decode metrics: %w", err)}
		}
		return nil
	})
	return met, err
}

// SweepResult is a completed (or partially completed) remote sweep: cell
// results indexed by the sweep's fixed cell order, plus the server's final
// accounting.
type SweepResult struct {
	Cells   []*SweepCellResult
	Summary SweepSummary
}

// Sweep streams one remote sweep, assembling cells by index. A stream cut
// mid-flight retries the whole request — the server's journal makes the
// retry replay finished cells instead of recomputing them, and later
// attempts overwrite earlier ones index-wise, so a stitched-together
// result is identical to a single clean stream.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResult, error) {
	spec, err := SpecFromRequest(req)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	res := &SweepResult{Cells: make([]*SweepCellResult, len(spec.Cells()))}
	err = c.post(ctx, sweepPath, req, func(resp *http.Response) error {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		sawDone := false
		for sc.Scan() {
			var ev SweepEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return &retryableError{fmt.Errorf("daemon: bad sweep event: %w", err)}
			}
			switch {
			case ev.Cell != nil:
				if ev.Cell.Index < 0 || ev.Cell.Index >= len(res.Cells) {
					return fmt.Errorf("daemon: sweep cell index %d out of range [0,%d)", ev.Cell.Index, len(res.Cells))
				}
				res.Cells[ev.Cell.Index] = ev.Cell
			case ev.Done != nil:
				res.Summary = *ev.Done
				sawDone = true
			}
		}
		if err := sc.Err(); err != nil {
			return &retryableError{fmt.Errorf("daemon: sweep stream: %w", err)}
		}
		if !sawDone {
			return &retryableError{fmt.Errorf("daemon: sweep stream ended without summary")}
		}
		if res.Summary.Skipped > 0 {
			// The server drained mid-sweep; a fresh attempt against a
			// restarted server resumes from its journal.
			return &retryableError{fmt.Errorf("daemon: sweep incomplete: %d cells skipped (server draining)", res.Summary.Skipped)}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// SweepSeries runs a remote sweep and assembles the streamed cells into
// []experiments.Series exactly as a local SweepSpec.RunContext would:
// same enumeration order, same labels, same Point projection — so the
// rendered output is byte-identical to a local run of the same spec. Cell
// failures surface as experiments.CellErrors alongside the partial
// series, mirroring a local tolerant sweep.
func (c *Client) SweepSeries(ctx context.Context, req SweepRequest) ([]experiments.Series, error) {
	spec, err := SpecFromRequest(req)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	res, err := c.Sweep(ctx, req)
	if err != nil {
		return nil, err
	}
	cells := spec.Cells()
	out := make([]experiments.Series, spec.NumSeries())
	for wi, w := range spec.Workloads {
		for mi, m := range spec.Machines {
			out[wi*len(spec.Machines)+mi] = experiments.Series{Label: m.Name, Workload: w}
		}
	}
	var cellErrs experiments.CellErrors
	for i, cell := range cells {
		cr := res.Cells[i]
		if cr == nil || cr.Metrics == nil {
			msg := "cell result missing from stream"
			if cr != nil && cr.Error != "" {
				msg = cr.Error
			}
			cellErrs = append(cellErrs, experiments.CellError{
				Workload: spec.Workloads[cell.Workload],
				Machine:  spec.Machines[cell.Machine].Name,
				Size:     cell.Size,
				Err:      errors.New(msg),
			})
			continue
		}
		out[cell.Series].Points = append(out[cell.Series].Points,
			experiments.PointFromMetrics(spec.Kind, cell.Size, *cr.Metrics))
	}
	if len(cellErrs) > 0 {
		return out, cellErrs
	}
	return out, nil
}
