package daemon

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// latencyBuckets are the per-endpoint request-duration histogram bounds in
// seconds, spanning cache hits (sub-millisecond) through full routing
// evaluations (tens of seconds).
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30}

// histogram is a fixed-bucket latency histogram with atomic counters, the
// minimal Prometheus-compatible shape: cumulative bucket counts, a sum, and
// a total count, all updated lock-free on the request path.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumNS  atomic.Int64
	n      atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{bounds: latencyBuckets, counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// write renders the histogram in Prometheus text exposition format with
// cumulative le buckets.
func (h *histogram) write(w io.Writer, name, endpoint string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n", name, endpoint, trimFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, endpoint, cum)
	fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", name, endpoint, time.Duration(h.sumNS.Load()).Seconds())
	fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, endpoint, h.n.Load())
}

// trimFloat formats a bucket bound without trailing zeros ("0.5", "1", "2.5").
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// reqLabel keys the per-endpoint, per-status request counter.
type reqLabel struct {
	endpoint string
	code     int
}

// serverMetrics aggregates everything /metrics exports beyond the cache's
// own Snapshot: admission-control state, fault counters, and per-endpoint
// request accounting.
type serverMetrics struct {
	sheds    atomic.Int64 // requests refused with 429 by admission control
	panics   atomic.Int64 // evaluation panics contained by the fill recover
	inflight atomic.Int64 // evaluations currently holding a worker slot

	mu       sync.Mutex
	requests map[reqLabel]int64
	latency  map[string]*histogram
}

func newServerMetrics(endpoints ...string) *serverMetrics {
	m := &serverMetrics{
		requests: make(map[reqLabel]int64),
		latency:  make(map[string]*histogram, len(endpoints)),
	}
	for _, e := range endpoints {
		m.latency[e] = newHistogram()
	}
	return m
}

// observe records one finished request.
func (m *serverMetrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[reqLabel{endpoint, code}]++
	m.mu.Unlock()
	if h := m.latency[endpoint]; h != nil {
		h.observe(d)
	}
}

// gauges is the point-in-time server state /metrics snapshots alongside the
// counters.
type gauges struct {
	queued     int64
	queueLimit int64
	draining   bool
}

// writeMetrics renders the full exposition: cache-tier counters straight
// from cache.Stats, admission/fault counters, and request histograms. The
// output is deterministic (sorted label sets) so tests can diff it.
func (m *serverMetrics) writeMetrics(w io.Writer, st cache.Stats, g gauges) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("qcbenchd_cache_mem_hits_total", "Gets served from the in-memory LRU.", st.MemHits)
	counter("qcbenchd_cache_disk_hits_total", "Gets served from the disk tier.", st.DiskHits)
	counter("qcbenchd_cache_misses_total", "Gets that found nothing in either tier.", st.Misses)
	counter("qcbenchd_cache_dedups_total", "Do calls that joined an in-flight evaluation.", st.Dedups)
	counter("qcbenchd_cache_fills_total", "Do calls that ran the evaluation.", st.Fills)
	counter("qcbenchd_cache_evictions_total", "Entries dropped by the LRU bound.", st.Evictions)
	counter("qcbenchd_cache_disk_errors_total", "Disk-tier failures after retries.", st.DiskErrs)
	counter("qcbenchd_cache_retries_total", "Extra disk-op attempts spent on transient failures.", st.Retries)
	counter("qcbenchd_cache_quarantines_total", "Times the disk tier's error budget tripped.", st.Quarantines)
	counter("qcbenchd_cache_degraded_serves_total", "Requests answered while the disk tier was quarantined.", st.DegradedServes)
	degraded := int64(0)
	if st.Degraded {
		degraded = 1
	}
	gauge("qcbenchd_cache_degraded", "1 while the disk tier is quarantined (memory-only serving).", degraded)
	gauge("qcbenchd_cache_entries", "Current in-memory cache entries.", int64(st.Entries))
	gauge("qcbenchd_queue_depth", "Evaluations admitted and waiting for or holding a worker slot.", g.queued)
	gauge("qcbenchd_queue_limit", "Admission bound: evaluations beyond this are shed with 429.", g.queueLimit)
	gauge("qcbenchd_inflight", "Evaluations currently holding a worker slot.", m.inflight.Load())
	counter("qcbenchd_sheds_total", "Requests refused with 429 by admission control.", uint64(m.sheds.Load()))
	counter("qcbenchd_panics_total", "Evaluation panics contained without killing the process.", uint64(m.panics.Load()))
	drainingV := int64(0)
	if g.draining {
		drainingV = 1
	}
	gauge("qcbenchd_draining", "1 once SIGTERM drain has begun (no new work admitted).", drainingV)

	m.mu.Lock()
	labels := make([]reqLabel, 0, len(m.requests))
	for l := range m.requests {
		labels = append(labels, l)
	}
	counts := make(map[reqLabel]int64, len(labels))
	for l, v := range m.requests {
		counts[l] = v
	}
	m.mu.Unlock()
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].endpoint != labels[j].endpoint {
			return labels[i].endpoint < labels[j].endpoint
		}
		return labels[i].code < labels[j].code
	})
	fmt.Fprintf(w, "# HELP qcbenchd_requests_total Requests served, by endpoint and status code.\n# TYPE qcbenchd_requests_total counter\n")
	for _, l := range labels {
		fmt.Fprintf(w, "qcbenchd_requests_total{endpoint=%q,code=\"%d\"} %d\n", l.endpoint, l.code, counts[l])
	}
	endpoints := make([]string, 0, len(m.latency))
	for e := range m.latency {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	fmt.Fprintf(w, "# HELP qcbenchd_request_seconds Request latency by endpoint.\n# TYPE qcbenchd_request_seconds histogram\n")
	for _, e := range endpoints {
		m.latency[e].write(w, "qcbenchd_request_seconds", e)
	}
}
