package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	s, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	// (|00⟩ + |11⟩)/√2
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-want) > 1e-12 || math.Abs(real(s.Amp[3])-want) > 1e-12 {
		t.Fatalf("Bell amplitudes wrong: %v", s.Amp)
	}
	if p := s.Probability(1) + s.Probability(2); p > 1e-12 {
		t.Fatalf("Bell state has weight %g on |01⟩/|10⟩", p)
	}
}

func TestBitConvention(t *testing.T) {
	// X on qubit 0 of 3 maps |000⟩ → |100⟩ = index 4.
	c := circuit.New(3)
	c.X(0)
	s, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(4); math.Abs(p-1) > 1e-12 {
		t.Fatalf("X q0: P(|100⟩) = %g", p)
	}
	// X on qubit 2 maps to index 1.
	c2 := circuit.New(3)
	c2.X(2)
	s2, _ := RunCircuit(c2)
	if p := s2.Probability(1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("X q2: P(|001⟩) = %g", p)
	}
}

func TestCXConventionInState(t *testing.T) {
	// CX(ctl=1, tgt=0) on |010⟩ (qubit1 = 1) flips qubit 0 → |110⟩.
	s, err := NewBasisState(3, 0b010)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply2Q(1, 0, gates.CX()); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(0b110); math.Abs(p-1) > 1e-12 {
		t.Fatalf("CX(1,0)|010⟩: got distribution %v", s.Probabilities())
	}
}

func TestSwapGateOnState(t *testing.T) {
	s, _ := NewBasisState(2, 0b10)
	if err := s.Apply2Q(0, 1, gates.SWAP()); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(0b01); math.Abs(p-1) > 1e-12 {
		t.Fatal("SWAP did not exchange basis state")
	}
}

func TestNormPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New(5)
	for i := 0; i < 60; i++ {
		switch rng.Intn(3) {
		case 0:
			c.U3(rng.Intn(5), rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
		case 1:
			a := rng.Intn(5)
			b := (a + 1 + rng.Intn(4)) % 5
			c.SU4(a, b, gates.RandomSU4(rng))
		default:
			a := rng.Intn(5)
			b := (a + 1 + rng.Intn(4)) % 5
			c.CX(a, b)
		}
	}
	s, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm after random circuit = %g", n)
	}
}

func TestKronAgreement(t *testing.T) {
	// Applying u on q0 and v on q1 of a 2-qubit state equals (u⊗v) applied
	// as a single 2Q gate.
	rng := rand.New(rand.NewSource(2))
	u := gates.RandomSU2(rng)
	v := gates.RandomSU2(rng)
	s1, _ := NewState(2)
	if err := s1.Apply1Q(0, u); err != nil {
		t.Fatal(err)
	}
	if err := s1.Apply1Q(1, v); err != nil {
		t.Fatal(err)
	}
	s2, _ := NewState(2)
	if err := s2.Apply2Q(0, 1, u.Kron(v)); err != nil {
		t.Fatal(err)
	}
	f, err := s1.Fidelity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Fatalf("kron disagreement, fidelity %g", f)
	}
}

func TestApply2QQubitOrder(t *testing.T) {
	// CX(a=2, b=0): control is qubit 2. On |001⟩ (q2=1) flips q0 → |101⟩.
	s, _ := NewBasisState(3, 0b001)
	if err := s.Apply2Q(2, 0, gates.CX()); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(0b101); math.Abs(p-1) > 1e-12 {
		t.Fatalf("CX(2,0)|001⟩: distribution %v", s.Probabilities())
	}
}

func TestGHZProbabilities(t *testing.T) {
	n := 6
	c := circuit.New(n)
	c.H(0)
	for i := 0; i < n-1; i++ {
		c.CX(i, i+1)
	}
	s, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	all := (1 << n) - 1
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(all)-0.5) > 1e-12 {
		t.Fatalf("GHZ probabilities: P(0)=%g P(all)=%g", s.Probability(0), s.Probability(all))
	}
}

func TestInnerAndFidelity(t *testing.T) {
	s, _ := NewState(2)
	tgt, _ := NewBasisState(2, 3)
	ip, err := s.Inner(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(ip) > 1e-12 {
		t.Fatal("orthogonal states have nonzero inner product")
	}
	f, _ := s.Fidelity(s)
	if math.Abs(f-1) > 1e-12 {
		t.Fatal("self fidelity != 1")
	}
}

func TestDominantBasisState(t *testing.T) {
	s, _ := NewBasisState(4, 0b1010)
	idx, p := s.DominantBasisState()
	if idx != 0b1010 || math.Abs(p-1) > 1e-12 {
		t.Fatalf("dominant = (%d, %g)", idx, p)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("NewState(0) accepted")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("oversized state accepted")
	}
	if _, err := NewBasisState(2, 9); err == nil {
		t.Error("bad basis index accepted")
	}
	s, _ := NewState(2)
	if err := s.Apply1Q(5, gates.X()); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := s.Apply2Q(0, 0, gates.CX()); err == nil {
		t.Error("repeated qubit accepted")
	}
}
