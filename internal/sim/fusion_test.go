package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// randomCircuit draws ops uniformly over the simulator's full gate
// vocabulary — every named 1Q/2Q gate circuit.Unitary resolves, plus
// explicit Haar-random SU(4) blocks — with random parameters and qubits.
func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	oneQ := []string{"id", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "p", "u3"}
	twoQ := []string{"cx", "cz", "cp", "swap", "iswap", "siswap", "syc", "rzz", "rxx", "ryy", "zx", "can", "su4"}
	nParams := map[string]int{"rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3, "cp": 1, "rzz": 1, "rxx": 1, "ryy": 1, "zx": 1, "can": 3}
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		name := oneQ[rng.Intn(len(oneQ))]
		if n > 1 && rng.Intn(2) == 0 {
			name = twoQ[rng.Intn(len(twoQ))]
		}
		var qubits []int
		if is1Q := func(s string) bool {
			for _, o := range oneQ {
				if o == s {
					return true
				}
			}
			return false
		}(name); is1Q {
			qubits = []int{rng.Intn(n)}
		} else {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			qubits = []int{a, b}
		}
		if name == "su4" {
			c.Append(circuit.Op{Name: "su4", Qubits: qubits, U: gates.RandomSU4(rng)})
			continue
		}
		var params []float64
		for k := 0; k < nParams[name]; k++ {
			params = append(params, (rng.Float64()*2-1)*math.Pi)
		}
		c.Append(circuit.Op{Name: name, Qubits: qubits, Params: params})
	}
	return c
}

// TestFusedMatchesUnfusedRandom is the fusion engine's property test: over
// randomized circuits spanning the full gate vocabulary, widths, and
// dense/sparse mixes, the fused Run must agree with the op-by-op reference
// path amplitude-for-amplitude within 1e-12.
func TestFusedMatchesUnfusedRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		c := randomCircuit(n, 40+rng.Intn(160), rng)
		fused, err := NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := fused.Run(c); err != nil {
			t.Fatalf("seed %d: fused run: %v", seed, err)
		}
		ref, err := NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.RunUnfused(c); err != nil {
			t.Fatalf("seed %d: unfused run: %v", seed, err)
		}
		if d := maxAmpDiff(fused, ref); d > 1e-12 {
			t.Fatalf("seed %d (n=%d, %d ops): fused deviates from unfused by %g", seed, n, len(c.Ops), d)
		}
		if n := fused.Norm(); math.Abs(n-1) > 1e-9 {
			t.Fatalf("seed %d: fused norm %g", seed, n)
		}
	}
}

// TestFusedDiagonalHeavyCircuit stresses the diagonal-merge paths (runs of
// z/s/t/rz/p and cz/cp/rzz ladders across commuting gaps) and checks the
// schedule actually fused something.
func TestFusedDiagonalHeavyCircuit(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	diag1 := []string{"z", "s", "sdg", "t", "tdg", "rz", "p"}
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0:
			name := diag1[rng.Intn(len(diag1))]
			op := circuit.Op{Name: name, Qubits: []int{rng.Intn(n)}}
			if name == "rz" || name == "p" {
				op.Params = []float64{rng.Float64() * math.Pi}
			}
			c.Append(op)
		case 1:
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			switch rng.Intn(3) {
			case 0:
				c.CZ(a, b)
			case 1:
				c.CP(a, b, rng.Float64())
			default:
				c.RZZ(a, b, rng.Float64())
			}
		default:
			c.H(rng.Intn(n))
		}
	}
	prog := Schedule(c)
	if prog.Fused == 0 {
		t.Fatal("diagonal-heavy circuit compiled with zero fused ops")
	}
	fused, _ := NewState(n)
	if err := fused.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewState(n)
	if err := ref.RunUnfused(c); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDiff(fused, ref); d > 1e-12 {
		t.Fatalf("diagonal-heavy: fused deviates by %g (fused %d source ops)", d, prog.Fused)
	}
}

// TestScheduleShapes pins the scheduler's structural decisions on small
// hand-built circuits.
func TestScheduleShapes(t *testing.T) {
	// Three h's on one qubit fuse to a single 2×2 sweep.
	c := circuit.New(2)
	c.H(0)
	c.H(0)
	c.H(0)
	if p := Schedule(c); len(p.ops) != 1 || p.ops[0].kind != fkMat1Q || p.Fused != 3 {
		t.Fatalf("h·h·h: got %d entries (fused %d), want one fkMat1Q of 3", len(p.ops), p.Fused)
	}
	// A diagonal run stays a diagonal sweep.
	c = circuit.New(1)
	c.Z(0)
	c.S(0)
	c.T(0)
	if p := Schedule(c); len(p.ops) != 1 || p.ops[0].kind != fkDiag1Q {
		t.Fatalf("z·s·t: got %+v, want one fkDiag1Q", p.ops)
	}
	// cp ladder on one pair merges even across diagonals on other qubits
	// (pinned on the pass-1 schedule; layering would batch the leftover z
	// with the merged diagonal).
	c = circuit.New(3)
	c.CP(0, 1, 0.3)
	c.Z(2)
	c.CP(0, 1, 0.4)
	c.CP(1, 0, 0.5) // opposite orientation still merges
	p := scheduleUnlayered(c)
	nDiag2 := 0
	for _, f := range p.ops {
		if f.kind == fkDiag2Q {
			nDiag2++
		}
	}
	if nDiag2 != 1 {
		t.Fatalf("cp ladder: got %d fkDiag2Q entries, want 1", nDiag2)
	}
	// A 1Q run before an su4 is absorbed into its 4×4.
	rng := rand.New(rand.NewSource(3))
	c = circuit.New(2)
	c.H(0)
	c.RX(0, 0.7)
	c.SU4(0, 1, gates.RandomSU4(rng))
	if p := Schedule(c); len(p.ops) != 1 || p.ops[0].kind != fkMat2Q {
		t.Fatalf("h·rx·su4: got %+v, want one fkMat2Q", p.ops)
	}
	// A 1Q run is NOT absorbed into a specialized-kernel gate.
	c = circuit.New(2)
	c.H(0)
	c.RX(0, 0.7)
	c.CX(0, 1)
	if p := Schedule(c); len(p.ops) != 2 || p.ops[0].kind != fkMat1Q || p.ops[1].kind != fkOp {
		t.Fatalf("h·rx·cx: got %+v, want fkMat1Q then passthrough cx", p.ops)
	}
}

// TestShardedKernelsByteIdentical forces the sharded arms of the fused
// 1Q/diagonal kernels (threshold 1, 4 workers) and requires the amplitudes
// to be bit-identical to the serial arms: disjoint index ranges, same
// arithmetic per amplitude.
func TestShardedKernelsByteIdentical(t *testing.T) {
	defer restoreShardOverrides()()

	rng := rand.New(rand.NewSource(17))
	const n = 11
	c := randomCircuit(n, 220, rng)
	prog := Schedule(c)

	fusionShardThreshold.Store(1 << 30) // force serial
	serial, _ := NewState(n)
	if err := serial.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	fusionShardThreshold.Store(1) // force sharding
	fusionShardWorkers.Store(4)
	sharded, _ := NewState(n)
	if err := sharded.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	for i := range serial.Amp {
		if serial.Amp[i] != sharded.Amp[i] {
			t.Fatalf("amplitude %d: serial %v != sharded %v (must be byte-identical)", i, serial.Amp[i], sharded.Amp[i])
		}
	}
}

// restoreShardOverrides snapshots the atomic shard overrides and returns a
// func that restores them (for defer in tests that force shard arms).
func restoreShardOverrides() func() {
	th, w := fusionShardThreshold.Load(), fusionShardWorkers.Load()
	return func() {
		fusionShardThreshold.Store(th)
		fusionShardWorkers.Store(w)
	}
}

// TestProgramReuse runs one compiled program on several states.
func TestProgramReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(5, 60, rng)
	prog := Schedule(c)
	for trial := 0; trial < 3; trial++ {
		s, _ := NewState(5)
		if err := s.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		ref, _ := NewState(5)
		if err := ref.RunUnfused(c); err != nil {
			t.Fatal(err)
		}
		if d := maxAmpDiff(s, ref); d > 1e-12 {
			t.Fatalf("reuse %d: deviates by %g", trial, d)
		}
	}
}

// TestRunEmptyCircuit pins Run's no-op contract on an empty circuit.
func TestRunEmptyCircuit(t *testing.T) {
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(circuit.New(3)); err != nil {
		t.Fatalf("empty circuit: %v", err)
	}
	if s.Amp[0] != 1 {
		t.Fatalf("empty circuit moved the state: amp[0] = %v", s.Amp[0])
	}
	for i := 1; i < len(s.Amp); i++ {
		if s.Amp[i] != 0 {
			t.Fatalf("empty circuit moved the state: amp[%d] = %v", i, s.Amp[i])
		}
	}
}
