package sim

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// TestApply2QRepeatedQubit pins the repeated-qubit contract: a descriptive
// error, and the state untouched (the old "invalid pair" check caught this
// too, but the message now names the actual mistake; these tests keep both
// properties from regressing).
func TestApply2QRepeatedQubit(t *testing.T) {
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	s.Amp[0], s.Amp[5] = 0.6, 0.8i
	before := append([]complex128(nil), s.Amp...)
	err = s.Apply2Q(1, 1, gates.CX())
	if err == nil {
		t.Fatal("Apply2Q(1,1) succeeded; want repeated-qubit error")
	}
	if !strings.Contains(err.Error(), "distinct") || !strings.Contains(err.Error(), "1") {
		t.Fatalf("Apply2Q(1,1) error %q does not describe the repeated qubit", err)
	}
	for i := range before {
		if s.Amp[i] != before[i] {
			t.Fatalf("Apply2Q(1,1) corrupted amplitude %d: %v -> %v", i, before[i], s.Amp[i])
		}
	}
}

// TestApplyOpRepeatedQubit covers the specialized 2Q kernels' shared
// check2Q validation: every fast-path gate must reject a repeated qubit
// with a descriptive error, not corrupt the state. (circuit.Append already
// panics on such ops; these ops are built directly to reach the kernels.)
func TestApplyOpRepeatedQubit(t *testing.T) {
	for _, name := range []string{"cz", "cx", "swap", "iswap", "siswap"} {
		s, err := NewState(2)
		if err != nil {
			t.Fatal(err)
		}
		err = s.ApplyOp(circuit.Op{Name: name, Qubits: []int{0, 0}})
		if err == nil {
			t.Fatalf("%s on (0,0) succeeded; want repeated-qubit error", name)
		}
		if !strings.Contains(err.Error(), "distinct") {
			t.Fatalf("%s on (0,0): error %q does not describe the repeated qubit", name, err)
		}
		if s.Amp[0] != 1 {
			t.Fatalf("%s on (0,0) corrupted the state", name)
		}
	}
	// The parameterized diagonal fast paths validate through the same gate.
	s, _ := NewState(2)
	if err := s.ApplyOp(circuit.Op{Name: "cp", Qubits: []int{1, 1}, Params: []float64{0.5}}); err == nil || !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("cp on (1,1): got %v, want repeated-qubit error", err)
	}
	// Fused programs route hand-built repeated-qubit ops through the same
	// passthrough validation.
	c := &circuit.Circuit{N: 2, Ops: []circuit.Op{{Name: "cx", Qubits: []int{0, 0}}}}
	st, _ := NewState(2)
	if err := st.Run(c); err == nil || !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("fused Run over repeated-qubit cx: got %v, want repeated-qubit error", err)
	}
}
