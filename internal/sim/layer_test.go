package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// TestLayeredMatchesUnfusedRandom is the layering engine's property test:
// at widths where the cache-blocked geometry is actually exercised —
// cross-tile 1Q bits, superblock rounds, standalone 2Q sweeps, tile-local
// riders — the layered Run must agree with the op-by-op reference path
// within 1e-12 over the full gate vocabulary. (Widths ≤ 8, where every
// member is tile-local, are covered by TestFusedMatchesUnfusedRandom.)
func TestLayeredMatchesUnfusedRandom(t *testing.T) {
	cases := []struct {
		n, ops int
		seed   int64
	}{
		{layerTileExp + 1, 160, 41}, // one cross-tile bit: pairs can't form
		{layerTileExp + 2, 160, 42}, // two cross bits: cross pairs + mixed pair
		{layerTileExp + 4, 120, 43}, // > layerMaxCross cross bits: multi-round
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		c := randomCircuit(tc.n, tc.ops, rng)
		prog := Schedule(c)
		layered := 0
		for i := range prog.ops {
			if prog.ops[i].kind == fkLayer {
				layered++
			}
		}
		if layered == 0 {
			t.Fatalf("n=%d: schedule built no fkLayer steps — the property run would not exercise layering", tc.n)
		}
		fused, err := NewState(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if err := fused.RunProgram(prog); err != nil {
			t.Fatalf("n=%d: layered run: %v", tc.n, err)
		}
		ref, err := NewState(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.RunUnfused(c); err != nil {
			t.Fatalf("n=%d: unfused run: %v", tc.n, err)
		}
		if d := maxAmpDiff(fused, ref); d > 1e-12 {
			t.Fatalf("n=%d (%d ops, %d layers): layered deviates from unfused by %g", tc.n, tc.ops, layered, d)
		}
	}
}

// TestLayeredShardedByteIdentical forces the sharded arm of the layer
// engine (threshold 1, 4 workers) at a width with cross-tile superblocks
// and requires byte-identity with the serial arm: superblocks are disjoint
// contiguous ranges and member order is fixed before sharding, so every
// amplitude sees the same arithmetic in the same order.
func TestLayeredShardedByteIdentical(t *testing.T) {
	defer restoreShardOverrides()()

	rng := rand.New(rand.NewSource(23))
	n := layerTileExp + 2
	c := randomCircuit(n, 180, rng)
	prog := Schedule(c)

	fusionShardThreshold.Store(1 << 30) // force serial
	serial, _ := NewState(n)
	if err := serial.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	fusionShardThreshold.Store(1) // force sharding
	fusionShardWorkers.Store(4)
	sharded, _ := NewState(n)
	if err := sharded.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	for i := range serial.Amp {
		if serial.Amp[i] != sharded.Amp[i] {
			t.Fatalf("amplitude %d: serial %v != sharded %v (must be byte-identical)", i, serial.Amp[i], sharded.Amp[i])
		}
	}
}

// TestBuildLayersStructure pins the grouping rule on hand-built schedules.
func TestBuildLayersStructure(t *testing.T) {
	// Two su4s on disjoint pairs batch into one fkLayer of two members.
	rng := rand.New(rand.NewSource(7))
	c := circuit.New(4)
	c.SU4(0, 1, gates.RandomSU4(rng))
	c.SU4(2, 3, gates.RandomSU4(rng))
	p := Schedule(c)
	if len(p.ops) != 1 || p.ops[0].kind != fkLayer || len(p.ops[0].members) != 2 {
		t.Fatalf("disjoint su4 pair: got %+v, want one fkLayer of 2 members", p.ops)
	}
	if p.StepForOp(0) != 0 || p.StepForOp(1) != 0 {
		t.Fatalf("disjoint su4 pair: srcStep %v, want both 0", p.srcStep)
	}

	// Overlapping su4s conflict: two steps, neither layered.
	c = circuit.New(3)
	c.SU4(0, 1, gates.RandomSU4(rng))
	c.SU4(1, 2, gates.RandomSU4(rng))
	p = Schedule(c)
	if len(p.ops) != 2 {
		t.Fatalf("overlapping su4s: got %d steps, want 2", len(p.ops))
	}

	// Diagonals may share qubits inside one layer.
	c = circuit.New(3)
	c.CZ(0, 1)
	c.CP(1, 2, 0.4)
	p = Schedule(c)
	if len(p.ops) != 1 || p.ops[0].kind != fkLayer || len(p.ops[0].members) != 2 {
		t.Fatalf("cz·cp sharing qubit 1: got %+v, want one fkLayer of 2 diagonal members", p.ops)
	}

	// A non-diagonal member conflicts with a diagonal on its qubit.
	c = circuit.New(2)
	c.CZ(0, 1)
	c.SU4(0, 1, gates.RandomSU4(rng))
	p = Schedule(c)
	for i := range p.ops {
		if p.ops[i].kind == fkLayer {
			t.Fatalf("cz then su4 on same pair: step %d layered, want none", i)
		}
	}

	// An unconvertible entry (unresolvable unitary) is a barrier: the two
	// batchable su4s around it stay in separate groups.
	c = circuit.New(4)
	c.SU4(0, 1, gates.RandomSU4(rng))
	c.Append(circuit.Op{Name: "mystery", Qubits: []int{0}})
	c.SU4(2, 3, gates.RandomSU4(rng))
	p = Schedule(c)
	if len(p.ops) != 3 {
		t.Fatalf("barrier between su4s: got %d steps, want 3", len(p.ops))
	}
	for i := range p.ops {
		if p.ops[i].kind == fkLayer {
			t.Fatalf("barrier between su4s: step %d layered, want none", i)
		}
	}
}

// TestScheduleBackwardAbsorption pins the backward-chain fold: entries
// acting entirely inside an arriving generic 2Q gate's pair — trailing 1Q
// runs, merged diagonals, specialized-2Q passthroughs — collapse into its
// single 4×4 sweep, and srcStep follows them through compaction.
func TestScheduleBackwardAbsorption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	// A 1Q run *after* an su4 on its qubit folds back into the 4×4.
	c := circuit.New(2)
	c.SU4(0, 1, gates.RandomSU4(rng))
	c.H(0)
	c.RX(0, 0.3)
	p := Schedule(c)
	if len(p.ops) != 1 || p.ops[0].kind != fkMat2Q {
		t.Fatalf("su4·h·rx: got %+v, want one fkMat2Q", p.ops)
	}

	// The chain preceding an su4 on its own pair — 1Q entries on both
	// qubits, a merged cp·cz diagonal, a cx passthrough — all fold in,
	// leaving exactly one step; every source op maps to it.
	c = circuit.New(3)
	c.H(0)
	c.RX(0, 0.7) // non-diagonal run on 0: flushed by the cp below
	c.CX(0, 1)   // specialized passthrough on the pair
	c.CP(0, 1, 0.3)
	c.CZ(0, 1) // merges with the cp
	c.T(2)     // disjoint: commutes past, stays its own entry
	c.SU4(0, 1, gates.RandomSU4(rng))
	p = scheduleUnlayered(c) // pinned pre-layering: the layer pass would batch the leftover t
	n2q := 0
	for i := range p.ops {
		if p.ops[i].kind == fkMat2Q {
			n2q++
		}
	}
	if len(p.ops) != 2 || n2q != 1 {
		t.Fatalf("chain before su4: got %d steps (%d fkMat2Q), want 2 steps with 1 fkMat2Q", len(p.ops), n2q)
	}
	for i := 0; i < 5; i++ {
		if s := p.StepForOp(i); s < 0 || s >= len(p.ops) || p.ops[s].kind != fkMat2Q {
			t.Fatalf("chain before su4: op %d maps to step %d, want the fkMat2Q step", i, s)
		}
	}

	// The folds are numerically exact: layered/fused vs unfused 1e-12.
	for seed := int64(60); seed < 66; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(6, 120, rng)
		fused, _ := NewState(6)
		if err := fused.Run(c); err != nil {
			t.Fatal(err)
		}
		ref, _ := NewState(6)
		if err := ref.RunUnfused(c); err != nil {
			t.Fatal(err)
		}
		if d := maxAmpDiff(fused, ref); d > 1e-12 {
			t.Fatalf("seed %d: absorption-heavy schedule deviates by %g", seed, d)
		}
	}
}
