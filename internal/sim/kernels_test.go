package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// randomState returns a normalized Haar-ish random state for kernel tests.
func randomState(t *testing.T, n int, rng *rand.Rand) *State {
	t.Helper()
	s, err := NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := range s.Amp {
		s.Amp[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s.Amp[i])*real(s.Amp[i]) + imag(s.Amp[i])*imag(s.Amp[i])
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.Amp {
		s.Amp[i] *= scale
	}
	return s
}

func maxAmpDiff(a, b *State) float64 {
	var worst float64
	for i := range a.Amp {
		if d := cmplx.Abs(a.Amp[i] - b.Amp[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// applyGeneric applies op through the generic matrix kernels only,
// bypassing the ApplyOp fast-path dispatch.
func applyGeneric(t *testing.T, s *State, op circuit.Op) {
	t.Helper()
	u, err := circuit.Unitary(op)
	if err != nil {
		t.Fatal(err)
	}
	switch len(op.Qubits) {
	case 1:
		err = s.Apply1Q(op.Qubits[0], u)
	case 2:
		err = s.Apply2Q(op.Qubits[0], op.Qubits[1], u)
	default:
		t.Fatalf("bad arity %d", len(op.Qubits))
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestFastPathsMatchGeneric checks every specialized kernel against the
// generic Apply1Q/Apply2Q result on random states, over several random
// qubit assignments (covering maskA < maskB and maskA > maskB orders).
func TestFastPathsMatchGeneric(t *testing.T) {
	const n = 6
	const tol = 1e-12
	rng := rand.New(rand.NewSource(42))
	cases := []circuit.Op{
		{Name: "z", Qubits: []int{0}},
		{Name: "s", Qubits: []int{0}},
		{Name: "sdg", Qubits: []int{0}},
		{Name: "t", Qubits: []int{0}},
		{Name: "tdg", Qubits: []int{0}},
		{Name: "p", Qubits: []int{0}, Params: []float64{0.7}},
		{Name: "rz", Qubits: []int{0}, Params: []float64{1.3}},
		{Name: "x", Qubits: []int{0}},
		{Name: "cz", Qubits: []int{0, 1}},
		{Name: "cp", Qubits: []int{0, 1}, Params: []float64{2.1}},
		{Name: "rzz", Qubits: []int{0, 1}, Params: []float64{0.9}},
		{Name: "cx", Qubits: []int{0, 1}},
		{Name: "swap", Qubits: []int{0, 1}},
		{Name: "iswap", Qubits: []int{0, 1}},
		{Name: "siswap", Qubits: []int{0, 1}},
		// Non-specialized names exercise the generic fallback inside ApplyOp.
		{Name: "h", Qubits: []int{0}},
		{Name: "syc", Qubits: []int{0, 1}},
	}
	for _, op := range cases {
		t.Run(op.Name, func(t *testing.T) {
			for rep := 0; rep < 8; rep++ {
				q := rng.Perm(n)
				got := op
				got.Qubits = append([]int(nil), op.Qubits...)
				for i := range got.Qubits {
					got.Qubits[i] = q[i]
				}
				fast := randomState(t, n, rng)
				slow := fast.Copy()
				if err := fast.ApplyOp(got); err != nil {
					t.Fatal(err)
				}
				applyGeneric(t, slow, got)
				if d := maxAmpDiff(fast, slow); d > tol {
					t.Fatalf("%s on %v: fast path diverges from generic by %g", op.Name, got.Qubits, d)
				}
			}
		})
	}
}

// TestISwapFamilyCircuitCrossval runs a whole random circuit built from
// iSWAP-family gates interleaved with 1Q rotations twice — once through the
// ApplyOp mix2Q fast path, once through the generic Apply2Q kernel — and
// requires the final states to agree. This exercises the kernel the way
// translated SNAIL circuits do: long chains of siswap ops on overlapping
// qubit pairs.
func TestISwapFamilyCircuitCrossval(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	for i := 0; i < 120; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		switch rng.Intn(3) {
		case 0:
			c.ISwap(a, b)
		case 1:
			c.SqrtISwap(a, b)
		default:
			c.Append(circuit.Op{Name: "ry", Qubits: []int{a}, Params: []float64{rng.Float64()}})
		}
	}
	fast := randomState(t, n, rng)
	slow := fast.Copy()
	if err := fast.Run(c); err != nil {
		t.Fatal(err)
	}
	for _, op := range c.Ops {
		applyGeneric(t, slow, op)
	}
	if d := maxAmpDiff(fast, slow); d > 1e-10 {
		t.Fatalf("iSWAP-family circuit diverges from generic kernels by %g", d)
	}
}

// TestApplyOpExplicitUnitary ensures ops carrying an explicit U never take
// a named fast path, even under a specialized name.
func TestApplyOpExplicitUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u, err := circuit.Unitary(circuit.Op{Name: "h", Qubits: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	// An op named "z" but carrying H must apply H.
	op := circuit.Op{Name: "z", Qubits: []int{1}, U: u}
	fast := randomState(t, 4, rng)
	slow := fast.Copy()
	if err := fast.ApplyOp(op); err != nil {
		t.Fatal(err)
	}
	if err := slow.Apply1Q(1, u); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDiff(fast, slow); d > 0 {
		t.Fatalf("explicit U ignored by dispatch (diff %g)", d)
	}
}

// TestApplyOpValidation checks the fast paths enforce the same qubit
// validation as the generic kernels.
func TestApplyOpValidation(t *testing.T) {
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []circuit.Op{
		{Name: "z", Qubits: []int{3}},
		{Name: "x", Qubits: []int{-1}},
		{Name: "cx", Qubits: []int{0, 0}},
		{Name: "swap", Qubits: []int{1, 5}},
		{Name: "cz", Qubits: []int{2}},
		{Name: "iswap", Qubits: []int{2, 2}},
		{Name: "siswap", Qubits: []int{0, 4}},
	}
	for _, op := range bad {
		if err := s.ApplyOp(op); err == nil {
			t.Errorf("%s %v: expected validation error", op.Name, op.Qubits)
		}
	}
}

func TestProbabilityOutOfRange(t *testing.T) {
	s, err := NewState(2)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(-1); p != 0 {
		t.Errorf("Probability(-1) = %g, want 0", p)
	}
	if p := s.Probability(4); p != 0 {
		t.Errorf("Probability(4) = %g, want 0", p)
	}
	if p := s.Probability(0); p != 1 {
		t.Errorf("Probability(0) = %g, want 1", p)
	}
}
