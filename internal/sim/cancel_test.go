package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/circuit"
)

// TestRunProgramCtxCancel: a dead context stops the schedule at its
// per-sweep poll and surfaces ctx.Err(); a live context changes nothing.
func TestRunProgramCtxCancel(t *testing.T) {
	c := circuit.New(3)
	c.Append(circuit.Op{Name: "h", Qubits: []int{0}})
	c.Append(circuit.Op{Name: "cx", Qubits: []int{0, 1}})
	c.Append(circuit.Op{Name: "cx", Qubits: []int{1, 2}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCircuitCtx(ctx, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead ctx = %v, want context.Canceled", err)
	}
	want, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCircuitCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Amp {
		if want.Amp[i] != got.Amp[i] {
			t.Fatalf("amp %d diverged under a live context", i)
		}
	}
}
