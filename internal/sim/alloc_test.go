package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// TestKernelAllocs is the allocation regression guard for the statevector
// kernels: applying gates to an existing state — generic 1Q/2Q matrix
// kernels, the diagonal/permutation/mix fast paths, and the fused
// serial-arm kernels — must not allocate at all. A regression here
// multiplies across the 2^n amplitude sweeps of every simulation-backed
// test and example.
func TestKernelAllocs(t *testing.T) {
	s, err := NewState(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	su4 := gates.RandomSU4(rng)
	// Ops are built once: the guard measures the kernels, not the test's
	// own slice literals.
	diagOp := circuit.Op{Name: "rz", Qubits: []int{3}, Params: []float64{0.3}}
	permOp := circuit.Op{Name: "cx", Qubits: []int{0, 5}}
	mixOp := circuit.Op{Name: "siswap", Qubits: []int{2, 6}}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"Apply1Q", func() error { return s.Apply1Q(2, gates.H()) }},
		{"Apply2Q", func() error { return s.Apply2Q(1, 4, su4) }},
		{"ApplyOp/diag", func() error { return s.ApplyOp(diagOp) }},
		{"ApplyOp/perm", func() error { return s.ApplyOp(permOp) }},
		{"ApplyOp/mix", func() error { return s.ApplyOp(mixOp) }},
		{"fusedMat1Q", func() error { s.fusedMat1Q(1, gates.H()); return nil }},
		{"fusedDiag1Q", func() error { s.fusedDiag1Q(4, 1, 1i); return nil }},
		{"fusedDiag2Q", func() error { s.fusedDiag2Q(0, 7, [4]complex128{1, 1i, -1i, -1}); return nil }},
	}
	for _, tc := range cases {
		tc := tc
		if err := tc.fn(); err != nil { // warm up and sanity-check
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := tc.fn(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s allocates %.1f times per application; want 0", tc.name, allocs)
		}
	}
}
