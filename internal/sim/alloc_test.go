package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// TestKernelAllocs is the allocation regression guard for the statevector
// kernels: applying gates to an existing state — generic 1Q/2Q matrix
// kernels, the diagonal/permutation/mix fast paths, and the fused
// serial-arm kernels — must not allocate at all. A regression here
// multiplies across the 2^n amplitude sweeps of every simulation-backed
// test and example.
func TestKernelAllocs(t *testing.T) {
	s, err := NewState(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	su4 := gates.RandomSU4(rng)
	// Ops are built once: the guard measures the kernels, not the test's
	// own slice literals.
	diagOp := circuit.Op{Name: "rz", Qubits: []int{3}, Params: []float64{0.3}}
	permOp := circuit.Op{Name: "cx", Qubits: []int{0, 5}}
	mixOp := circuit.Op{Name: "siswap", Qubits: []int{2, 6}}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"Apply1Q", func() error { return s.Apply1Q(2, gates.H()) }},
		{"Apply2Q", func() error { return s.Apply2Q(1, 4, su4) }},
		{"ApplyOp/diag", func() error { return s.ApplyOp(diagOp) }},
		{"ApplyOp/perm", func() error { return s.ApplyOp(permOp) }},
		{"ApplyOp/mix", func() error { return s.ApplyOp(mixOp) }},
		{"fusedMat1Q", func() error { s.fusedMat1Q(1, gates.H()); return nil }},
		{"fusedDiag1Q", func() error { s.fusedDiag1Q(4, 1, 1i); return nil }},
		{"fusedDiag2Q", func() error { s.fusedDiag2Q(0, 7, [4]complex128{1, 1i, -1i, -1}); return nil }},
	}
	for _, tc := range cases {
		tc := tc
		if err := tc.fn(); err != nil { // warm up and sanity-check
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := tc.fn(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s allocates %.1f times per application; want 0", tc.name, allocs)
		}
	}
}

// TestLayerKernelAllocs guards the serial layer engine: executing a full
// fkLayer step — cross-tile 1Q tile-pair mixes, the quad and mixed fused
// pairs, riders of every tile-local kind, and the standalone global 2Q
// sweeps — must not allocate. The layer kernels run millions of times per
// sweep cell, so even one allocation per pass would dominate small-state
// throughput and thrash the GC on big ones.
func TestLayerKernelAllocs(t *testing.T) {
	n := layerTileExp + 2 // two cross-tile bits (qubits 0 and 1)
	s, err := NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	su4 := gates.RandomSU4(rng)
	layer := &fusedOp{kind: fkLayer, members: []layerMember{
		{kind: lmMat1Q, qa: 0, u: gates.H()},             // cross-tile 2×2
		{kind: lmX, qa: 1},                               // cross-tile exchange
		{kind: lmMat1Q, qa: n - 1, u: gates.H()},         // tile-local pair half
		{kind: lmMat1Q, qa: n - 2, u: gates.H()},         // tile-local pair half
		{kind: lmDiag1Q, qa: 2, d: [4]complex128{1, 1i}}, // diagonal rider
		{kind: lmDiag2Q, qa: 0, qb: n - 3, d: [4]complex128{1, 1, 1, -1}},
		{kind: lmMat2Q, qa: n - 4, qb: n - 5, u: su4}, // tile-local 4×4
		{kind: lmCX, qa: n - 6, qb: n - 7},
		{kind: lmSwap, qa: n - 8, qb: n - 9},
		{kind: lmMix, qa: n - 10, qb: n - 11, d: [4]complex128{iswapDiag, iswapOff}},
		{kind: lmMat2Q, qa: 1, qb: n - 1, u: su4}, // cross-tile: standalone sweep
	}}
	if err := s.applyLayer(layer); err != nil { // warm up and sanity-check
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.applyLayer(layer); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("applyLayer allocates %.1f times per pass; want 0", allocs)
	}
}
