// Package sim is a dense statevector simulator used to validate circuit
// generators, gate decompositions, and synthesized circuits. It is exact
// (up to float64) and practical to ~20 qubits.
//
// Bit convention: qubit 0 is the most significant bit of the state index,
// so the amplitude of |q0 q1 ... q(n-1)⟩ sits at index q0·2^(n-1) + ... .
//
// Gate application is stride-based: Apply1Q visits each (i, i+2^k) pair
// and Apply2Q each index quad exactly once, never scanning amplitudes it
// won't touch. On top of the generic kernels, ApplyOp (used by Run)
// dispatches known gate names to specialized fast paths: diagonal gates
// (z/s/sdg/t/tdg/rz/p/cz/cp/rzz) reduce to pure phase multiplies,
// permutation gates (x/cx/swap) to amplitude exchanges, and the iSWAP
// family (iswap/siswap — the SNAIL-native basis gates) to a 2×2 inner-block
// mix of each quad's |01⟩/|10⟩ pair, skipping the 2×2 or 4×4 complex
// matrix arithmetic entirely. Every fast path is verified against the
// generic kernels in kernels_test.go.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/linalg"
)

// MaxQubits caps the simulator size (2^22 amplitudes ≈ 64 MB).
const MaxQubits = 22

// State is an n-qubit pure state.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	s := &State{N: n, Amp: make([]complex128, 1<<n)}
	s.Amp[0] = 1
	return s, nil
}

// NewBasisState returns the computational basis state |bits⟩, where bits'
// most significant (2^(n-1)) bit is qubit 0.
func NewBasisState(n int, bits int) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if bits < 0 || bits >= 1<<n {
		return nil, fmt.Errorf("sim: basis index %d outside [0, 2^%d)", bits, n)
	}
	s.Amp[0] = 0
	s.Amp[bits] = 1
	return s, nil
}

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(out.Amp, s.Amp)
	return out
}

// bitPos maps qubit index to its bit position in amplitude indices.
func (s *State) bitPos(q int) uint { return uint(s.N - 1 - q) }

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(q int, u *linalg.Matrix) error {
	if q < 0 || q >= s.N {
		return fmt.Errorf("sim: qubit %d out of range", q)
	}
	if u.Rows != 2 || u.Cols != 2 {
		return fmt.Errorf("sim: Apply1Q needs a 2x2 matrix")
	}
	mask := 1 << s.bitPos(q)
	u00, u01 := u.At(0, 0), u.At(0, 1)
	u10, u11 := u.At(1, 0), u.At(1, 1)
	amp := s.Amp
	for base := 0; base < len(amp); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			j := i + mask
			a0, a1 := amp[i], amp[j]
			amp[i] = u00*a0 + u01*a1
			amp[j] = u10*a0 + u11*a1
		}
	}
	return nil
}

// Apply2Q applies a 4x4 unitary to (qa, qb), with qa as the most significant
// bit of the gate's 2-bit basis (matching package gates conventions). A
// repeated qubit (qa == qb) is rejected up front: the quad iteration would
// otherwise read the same amplitude under two basis labels and corrupt the
// state.
func (s *State) Apply2Q(qa, qb int, u *linalg.Matrix) error {
	if qa == qb {
		return fmt.Errorf("sim: Apply2Q needs two distinct qubits, got qubit %d twice", qa)
	}
	if qa < 0 || qa >= s.N || qb < 0 || qb >= s.N {
		return fmt.Errorf("sim: invalid qubit pair (%d,%d)", qa, qb)
	}
	if u.Rows != 4 || u.Cols != 4 {
		return fmt.Errorf("sim: Apply2Q needs a 4x4 matrix")
	}
	maskA := 1 << s.bitPos(qa)
	maskB := 1 << s.bitPos(qb)
	m00, m01, m02, m03 := u.At(0, 0), u.At(0, 1), u.At(0, 2), u.At(0, 3)
	m10, m11, m12, m13 := u.At(1, 0), u.At(1, 1), u.At(1, 2), u.At(1, 3)
	m20, m21, m22, m23 := u.At(2, 0), u.At(2, 1), u.At(2, 2), u.At(2, 3)
	m30, m31, m32, m33 := u.At(3, 0), u.At(3, 1), u.At(3, 2), u.At(3, 3)
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	amp := s.Amp
	for outer := 0; outer < len(amp); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i := mid; i < mid+lo; i++ {
				i01 := i | maskB
				i10 := i | maskA
				i11 := i10 | maskB
				a00, a01, a10, a11 := amp[i], amp[i01], amp[i10], amp[i11]
				amp[i] = m00*a00 + m01*a01 + m02*a10 + m03*a11
				amp[i01] = m10*a00 + m11*a01 + m12*a10 + m13*a11
				amp[i10] = m20*a00 + m21*a01 + m22*a10 + m23*a11
				amp[i11] = m30*a00 + m31*a01 + m32*a10 + m33*a11
			}
		}
	}
	return nil
}

// Run applies the circuit through the gate-fusion scheduler (Schedule):
// runs of 1Q gates, merged diagonals, and absorbed 4×4s execute as single
// sweeps, and large states shard the fused 1Q/diagonal kernels over the
// worker pool. Amplitudes agree with the unfused path to rounding
// (crossvalidated in fusion_test.go); RunUnfused is the op-by-op escape
// hatch for debugging a suspected fusion discrepancy. An empty circuit is
// a no-op.
func (s *State) Run(c *circuit.Circuit) error {
	return s.RunCtx(context.Background(), c)
}

// RunCtx is Run with cooperative cancellation (see RunProgramCtx). The
// state is left partially evolved on cancellation and must be discarded.
func (s *State) RunCtx(ctx context.Context, c *circuit.Circuit) error {
	if c.N > s.N {
		return fmt.Errorf("sim: circuit has %d qubits, state has %d", c.N, s.N)
	}
	if len(c.Ops) == 0 {
		return nil
	}
	return s.RunProgramCtx(ctx, Schedule(c))
}

// RunUnfused applies every op of the circuit in order, dispatching each
// through the ApplyOp fast paths with no fusion pre-pass. It is the
// reference semantics Run's fused schedule is validated against.
func (s *State) RunUnfused(c *circuit.Circuit) error {
	if c.N > s.N {
		return fmt.Errorf("sim: circuit has %d qubits, state has %d", c.N, s.N)
	}
	for i, op := range c.Ops {
		if err := s.ApplyOp(op); err != nil {
			return fmt.Errorf("sim: op %d (%s): %w", i, op, err)
		}
	}
	return nil
}

// RunCircuit is a convenience wrapper: simulate c from |0...0⟩.
func RunCircuit(c *circuit.Circuit) (*State, error) {
	return RunCircuitCtx(context.Background(), c)
}

// RunCircuitCtx is RunCircuit with cooperative cancellation.
func RunCircuitCtx(ctx context.Context, c *circuit.Circuit) (*State, error) {
	s, err := NewState(c.N)
	if err != nil {
		return nil, err
	}
	if err := s.RunCtx(ctx, c); err != nil {
		return nil, err
	}
	return s, nil
}

// Probability returns |⟨bits|ψ⟩|², or 0 when bits lies outside [0, 2^n) —
// an out-of-range basis state has no overlap with an n-qubit register
// (mirroring the range rule NewBasisState enforces with an error).
func (s *State) Probability(bits int) float64 {
	if bits < 0 || bits >= len(s.Amp) {
		return 0
	}
	a := s.Amp[bits]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Inner returns ⟨s|t⟩.
func (s *State) Inner(t *State) (complex128, error) {
	if s.N != t.N {
		return 0, fmt.Errorf("sim: inner product across %d and %d qubits", s.N, t.N)
	}
	var acc complex128
	for i, a := range s.Amp {
		acc += cmplx.Conj(a) * t.Amp[i]
	}
	return acc, nil
}

// Fidelity returns |⟨s|t⟩|².
func (s *State) Fidelity(t *State) (float64, error) {
	ip, err := s.Inner(t)
	if err != nil {
		return 0, err
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}

// Norm returns ‖ψ‖ (should be 1 for valid evolutions).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// DominantBasisState returns the basis index with the highest probability
// and that probability. Useful for checking classical (reversible) circuits
// such as the ripple-carry adder.
func (s *State) DominantBasisState() (int, float64) {
	best, bestP := 0, 0.0
	for i := range s.Amp {
		if p := s.Probability(i); p > bestP {
			best, bestP = i, p
		}
	}
	return best, bestP
}
