// Package sim is a dense statevector simulator used to validate circuit
// generators, gate decompositions, and synthesized circuits. It is exact
// (up to float64) and practical to ~20 qubits.
//
// Bit convention: qubit 0 is the most significant bit of the state index,
// so the amplitude of |q0 q1 ... q(n-1)⟩ sits at index q0·2^(n-1) + ... .
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/linalg"
)

// MaxQubits caps the simulator size (2^22 amplitudes ≈ 64 MB).
const MaxQubits = 22

// State is an n-qubit pure state.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	s := &State{N: n, Amp: make([]complex128, 1<<n)}
	s.Amp[0] = 1
	return s, nil
}

// NewBasisState returns the computational basis state |bits⟩, where bits'
// most significant (2^(n-1)) bit is qubit 0.
func NewBasisState(n int, bits int) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if bits < 0 || bits >= 1<<n {
		return nil, fmt.Errorf("sim: basis index %d outside [0, 2^%d)", bits, n)
	}
	s.Amp[0] = 0
	s.Amp[bits] = 1
	return s, nil
}

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(out.Amp, s.Amp)
	return out
}

// bitPos maps qubit index to its bit position in amplitude indices.
func (s *State) bitPos(q int) uint { return uint(s.N - 1 - q) }

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(q int, u *linalg.Matrix) error {
	if q < 0 || q >= s.N {
		return fmt.Errorf("sim: qubit %d out of range", q)
	}
	if u.Rows != 2 || u.Cols != 2 {
		return fmt.Errorf("sim: Apply1Q needs a 2x2 matrix")
	}
	mask := 1 << s.bitPos(q)
	u00, u01 := u.At(0, 0), u.At(0, 1)
	u10, u11 := u.At(1, 0), u.At(1, 1)
	for i := range s.Amp {
		if i&mask != 0 {
			continue
		}
		j := i | mask
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = u00*a0 + u01*a1
		s.Amp[j] = u10*a0 + u11*a1
	}
	return nil
}

// Apply2Q applies a 4x4 unitary to (qa, qb), with qa as the most significant
// bit of the gate's 2-bit basis (matching package gates conventions).
func (s *State) Apply2Q(qa, qb int, u *linalg.Matrix) error {
	if qa < 0 || qa >= s.N || qb < 0 || qb >= s.N || qa == qb {
		return fmt.Errorf("sim: invalid qubit pair (%d,%d)", qa, qb)
	}
	if u.Rows != 4 || u.Cols != 4 {
		return fmt.Errorf("sim: Apply2Q needs a 4x4 matrix")
	}
	maskA := 1 << s.bitPos(qa)
	maskB := 1 << s.bitPos(qb)
	var m [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = u.At(i, j)
		}
	}
	for i := range s.Amp {
		if i&maskA != 0 || i&maskB != 0 {
			continue
		}
		i00 := i
		i01 := i | maskB
		i10 := i | maskA
		i11 := i | maskA | maskB
		a := [4]complex128{s.Amp[i00], s.Amp[i01], s.Amp[i10], s.Amp[i11]}
		for r, idx := range [4]int{i00, i01, i10, i11} {
			s.Amp[idx] = m[r][0]*a[0] + m[r][1]*a[1] + m[r][2]*a[2] + m[r][3]*a[3]
		}
	}
	return nil
}

// Run applies every op of the circuit in order.
func (s *State) Run(c *circuit.Circuit) error {
	if c.N > s.N {
		return fmt.Errorf("sim: circuit has %d qubits, state has %d", c.N, s.N)
	}
	for i, op := range c.Ops {
		u, err := circuit.Unitary(op)
		if err != nil {
			return fmt.Errorf("sim: op %d: %w", i, err)
		}
		switch len(op.Qubits) {
		case 1:
			err = s.Apply1Q(op.Qubits[0], u)
		case 2:
			err = s.Apply2Q(op.Qubits[0], op.Qubits[1], u)
		default:
			err = fmt.Errorf("unsupported arity %d", len(op.Qubits))
		}
		if err != nil {
			return fmt.Errorf("sim: op %d (%s): %w", i, op, err)
		}
	}
	return nil
}

// RunCircuit is a convenience wrapper: simulate c from |0...0⟩.
func RunCircuit(c *circuit.Circuit) (*State, error) {
	s, err := NewState(c.N)
	if err != nil {
		return nil, err
	}
	if err := s.Run(c); err != nil {
		return nil, err
	}
	return s, nil
}

// Probability returns |⟨bits|ψ⟩|².
func (s *State) Probability(bits int) float64 {
	a := s.Amp[bits]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Inner returns ⟨s|t⟩.
func (s *State) Inner(t *State) (complex128, error) {
	if s.N != t.N {
		return 0, fmt.Errorf("sim: inner product across %d and %d qubits", s.N, t.N)
	}
	var acc complex128
	for i, a := range s.Amp {
		acc += cmplx.Conj(a) * t.Amp[i]
	}
	return acc, nil
}

// Fidelity returns |⟨s|t⟩|².
func (s *State) Fidelity(t *State) (float64, error) {
	ip, err := s.Inner(t)
	if err != nil {
		return 0, err
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}

// Norm returns ‖ψ‖ (should be 1 for valid evolutions).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// DominantBasisState returns the basis index with the highest probability
// and that probability. Useful for checking classical (reversible) circuits
// such as the ripple-carry adder.
func (s *State) DominantBasisState() (int, float64) {
	best, bestP := 0, 0.0
	for i := range s.Amp {
		if p := s.Probability(i); p > bestP {
			best, bestP = i, p
		}
	}
	return best, bestP
}
