package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// iSWAP-family inner-block entries, read once from the same memoized
// matrices circuit.Unitary resolves, so the mix kernel multiplies the exact
// floating-point values the generic path would (e.g. the iSWAP diagonal is
// cos(π/2) ≈ 6.1e-17, not literal zero).
var (
	iswapDiag, iswapOff   = gates.ISwap().At(1, 1), gates.ISwap().At(1, 2)
	siswapDiag, siswapOff = gates.SqrtISwap().At(1, 1), gates.SqrtISwap().At(1, 2)
)

// ApplyOp applies one circuit op to the state, dispatching by gate name to
// a specialized kernel when the gate is a pure phase (diagonal) or a pure
// amplitude permutation, and falling back to the generic Apply1Q/Apply2Q
// matrix kernels otherwise. The fast paths are exact — they compute the
// same floating-point products as the generic kernels, minus the terms
// that are structurally zero or one.
func (s *State) ApplyOp(op circuit.Op) error {
	// Explicit unitaries (e.g. Haar-random SU4 blocks) and parameter
	// mismatches always take the generic path.
	if op.U == nil {
		switch op.Name {
		// ---- 1Q diagonal gates: |1⟩-phase only ----
		case "z":
			return s.phase1Q(op, 1, -1)
		case "s":
			return s.phase1Q(op, 1, 1i)
		case "sdg":
			return s.phase1Q(op, 1, -1i)
		case "t":
			return s.phase1Q(op, 1, cmplx.Exp(complex(0, math.Pi/4)))
		case "tdg":
			return s.phase1Q(op, 1, cmplx.Exp(complex(0, -math.Pi/4)))
		case "p":
			if len(op.Params) == 1 {
				return s.phase1Q(op, 1, cmplx.Exp(complex(0, op.Params[0])))
			}
		case "rz":
			if len(op.Params) == 1 {
				half := op.Params[0] / 2
				return s.phase1Q(op, cmplx.Exp(complex(0, -half)), cmplx.Exp(complex(0, half)))
			}
		// ---- 1Q permutation ----
		case "x":
			return s.flip1Q(op)
		// ---- 2Q diagonal gates ----
		case "cz":
			return s.phase2Q(op, 1, 1, 1, -1)
		case "cp":
			if len(op.Params) == 1 {
				return s.phase2Q(op, 1, 1, 1, cmplx.Exp(complex(0, op.Params[0])))
			}
		case "rzz":
			if len(op.Params) == 1 {
				e := cmplx.Exp(complex(0, -op.Params[0]/2))
				ec := cmplx.Exp(complex(0, op.Params[0]/2))
				return s.phase2Q(op, e, ec, ec, e)
			}
		// ---- 2Q permutations ----
		case "cx":
			return s.permCX(op)
		case "swap":
			return s.permSwap(op)
		// ---- 2Q inner-block mixes (iSWAP family) ----
		case "iswap":
			return s.mix2Q(op, iswapDiag, iswapOff)
		case "siswap":
			return s.mix2Q(op, siswapDiag, siswapOff)
		}
	}
	u, err := circuit.Unitary(op)
	if err != nil {
		return err
	}
	switch len(op.Qubits) {
	case 1:
		return s.Apply1Q(op.Qubits[0], u)
	case 2:
		return s.Apply2Q(op.Qubits[0], op.Qubits[1], u)
	default:
		return fmt.Errorf("unsupported arity %d", len(op.Qubits))
	}
}

func (s *State) check1Q(op circuit.Op) (int, error) {
	if len(op.Qubits) != 1 {
		return 0, fmt.Errorf("sim: %s needs one qubit, got %d", op.Name, len(op.Qubits))
	}
	q := op.Qubits[0]
	if q < 0 || q >= s.N {
		return 0, fmt.Errorf("sim: qubit %d out of range", q)
	}
	return 1 << s.bitPos(q), nil
}

func (s *State) check2Q(op circuit.Op) (maskA, maskB int, err error) {
	if len(op.Qubits) != 2 {
		return 0, 0, fmt.Errorf("sim: %s needs two qubits, got %d", op.Name, len(op.Qubits))
	}
	qa, qb := op.Qubits[0], op.Qubits[1]
	if qa == qb {
		return 0, 0, fmt.Errorf("sim: %s needs two distinct qubits, got qubit %d twice", op.Name, qa)
	}
	if qa < 0 || qa >= s.N || qb < 0 || qb >= s.N {
		return 0, 0, fmt.Errorf("sim: invalid qubit pair (%d,%d)", qa, qb)
	}
	return 1 << s.bitPos(qa), 1 << s.bitPos(qb), nil
}

// phase1Q applies diag(d0, d1) on one qubit: amplitudes with the qubit
// clear pick up d0, set pick up d1. The d0 == 1 case (z/s/t/p) touches
// only half the state.
func (s *State) phase1Q(op circuit.Op, d0, d1 complex128) error {
	mask, err := s.check1Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	for base := 0; base < len(amp); base += mask << 1 {
		if d0 != 1 {
			for i := base; i < base+mask; i++ {
				amp[i] *= d0
			}
		}
		for i := base + mask; i < base+(mask<<1); i++ {
			amp[i] *= d1
		}
	}
	return nil
}

// flip1Q applies Pauli-X: exchange each (clear, set) amplitude pair.
func (s *State) flip1Q(op circuit.Op) error {
	mask, err := s.check1Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	for base := 0; base < len(amp); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			j := i + mask
			amp[i], amp[j] = amp[j], amp[i]
		}
	}
	return nil
}

// quad2Q iterates the |00⟩ index of every (i00, i01, i10, i11) quad.
func quad2Q(n, maskA, maskB int, f func(i00 int)) {
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < n; outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i := mid; i < mid+lo; i++ {
				f(i)
			}
		}
	}
}

// phase2Q applies diag(d00, d01, d10, d11) in the |qa qb⟩ basis. Unit
// entries are skipped, so cz/cp touch only the quarter of the state with
// both qubits set.
func (s *State) phase2Q(op circuit.Op, d00, d01, d10, d11 complex128) error {
	maskA, maskB, err := s.check2Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	quad2Q(len(amp), maskA, maskB, func(i00 int) {
		if d00 != 1 {
			amp[i00] *= d00
		}
		if d01 != 1 {
			amp[i00|maskB] *= d01
		}
		if d10 != 1 {
			amp[i00|maskA] *= d10
		}
		if d11 != 1 {
			amp[i00|maskA|maskB] *= d11
		}
	})
	return nil
}

// mix2Q applies a unitary of the iSWAP-family inner-block form
//
//	[[1, 0,    0,    0],
//	 [0, diag, off,  0],
//	 [0, off,  diag, 0],
//	 [0, 0,    0,    1]]
//
// (iSWAP: diag = cos(π/2), off = i; √iSWAP: diag = cos(π/4), off =
// i·sin(π/4); any gates.NRootISwap member fits). Only the |01⟩/|10⟩
// amplitude pair of each quad mixes — half the state is untouched and the
// 4×4 matrix product collapses to a 2×2 rotation per quad.
func (s *State) mix2Q(op circuit.Op, diag, off complex128) error {
	maskA, maskB, err := s.check2Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	quad2Q(len(amp), maskA, maskB, func(i00 int) {
		i01, i10 := i00|maskB, i00|maskA
		a01, a10 := amp[i01], amp[i10]
		amp[i01] = diag*a01 + off*a10
		amp[i10] = off*a01 + diag*a10
	})
	return nil
}

// permCX applies CNOT (first qubit controls): where the control is set,
// exchange the target pair.
func (s *State) permCX(op circuit.Op) error {
	maskA, maskB, err := s.check2Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	quad2Q(len(amp), maskA, maskB, func(i00 int) {
		i10, i11 := i00|maskA, i00|maskA|maskB
		amp[i10], amp[i11] = amp[i11], amp[i10]
	})
	return nil
}

// permSwap applies SWAP: exchange the |01⟩ and |10⟩ amplitudes.
func (s *State) permSwap(op circuit.Op) error {
	maskA, maskB, err := s.check2Q(op)
	if err != nil {
		return err
	}
	amp := s.Amp
	quad2Q(len(amp), maskA, maskB, func(i00 int) {
		i01, i10 := i00|maskB, i00|maskA
		amp[i01], amp[i10] = amp[i10], amp[i01]
	})
	return nil
}
