package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

// Repro: cross members [X, mat, mat] with odd tile-local mat count —
// reserved tile-local member should be applied exactly once.
func TestReservedDropRepro(t *testing.T) {
	n := layerTileExp + 3 // qubits 0..2 are cross-tile bits
	c := circuit.New(n)
	c.Append(circuit.Op{Name: "x", Qubits: []int{0}})
	c.Append(circuit.Op{Name: "h", Qubits: []int{1}})
	c.Append(circuit.Op{Name: "h", Qubits: []int{2}})
	// three tile-local h's -> nTile odd
	c.Append(circuit.Op{Name: "h", Qubits: []int{n - 1}})
	c.Append(circuit.Op{Name: "h", Qubits: []int{n - 2}})
	c.Append(circuit.Op{Name: "h", Qubits: []int{n - 3}})

	prog := Schedule(c)
	layered := 0
	for i := range prog.ops {
		if prog.ops[i].kind == fkLayer {
			layered++
		}
	}
	t.Logf("layers=%d steps=%d", layered, len(prog.ops))

	fused, _ := NewState(n)
	if err := fused.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	ref, _ := NewState(n)
	if err := ref.RunUnfused(c); err != nil {
		t.Fatal(err)
	}
	d := 0.0
	for i := range fused.Amp {
		if dd := cmplxAbs(fused.Amp[i] - ref.Amp[i]); dd > d {
			d = dd
		}
	}
	if d > 1e-12 {
		t.Fatalf("layered deviates from unfused by %g", d)
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
