// Gate-fusion scheduler: a pre-pass over a circuit that coalesces runs of
// gates into fewer, denser state sweeps before the simulator touches the
// exponentially large amplitude array.
//
// Three rewrites are applied, all exact (the fused operators are ordinary
// matrix/phase products of the originals, so amplitudes agree with the
// unfused path to rounding):
//
//   - every maximal run of consecutive 1Q gates on a qubit collapses into
//     one 2×2 (via linalg.Mul2x2) — one state sweep instead of len(run);
//     runs may extend across gates they commute with (a diagonal 1Q run
//     flows through diagonal 2Q gates on the same qubit);
//   - adjacent diagonal gates (z/s/sdg/t/tdg/rz/p on a qubit, cz/cp/rzz on
//     a pair) merge into single phase sweeps, including across any
//     intervening diagonal or disjoint gates, which all commute;
//   - a pending 1Q run next to a 2Q gate that would take the generic 4×4
//     path anyway (su4 blocks, rxx/can/..., explicit unitaries) is
//     absorbed into that gate's matrix (U·(A⊗B) via linalg.Mul4x4): the 4×4
//     sweep costs the same and the 1Q sweeps disappear. Gates with
//     specialized kernels (cx/cz/swap/iswap/...) are never absorbed into —
//     trading a phase or permutation kernel for a generic 4×4 is a loss.
//
// Single leftover gates stay as ordinary ops and keep their ApplyOp fast
// paths. For states with at least the fusion shard threshold amplitudes,
// the fused 1Q and diagonal kernels shard the amplitude array across the
// internal/par worker pool in disjoint index ranges, so the parallel
// result is byte-identical to the serial one (each amplitude is written by
// exactly one worker, with the same arithmetic).
//
// A second pass (layer.go) regroups the fused entries into layers of
// mutually commuting or disjoint operations (fkLayer), executed with
// cache-blocked kernels that apply a whole layer per pass over the
// amplitude array instead of one pass per entry.
package sim

import (
	"context"
	"fmt"
	"math/cmplx"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/par"
)

// expi returns e^{iθ}, the phase factor the diagonal kernels use (the same
// expression ApplyOp evaluates, so fused and unfused phases are identical).
func expi(t float64) complex128 { return cmplx.Exp(complex(0, t)) }

// fused op kinds.
const (
	fkOp     = iota // passthrough: execute via ApplyOp (keeps fast paths)
	fkMat1Q         // fused 2×2 on q
	fkDiag1Q        // merged 1Q phase sweep: diag(d[0], d[1]) on q
	fkDiag2Q        // merged 2Q phase sweep: diag(d) in the |qa qb⟩ basis
	fkMat2Q         // fused 4×4 on (qa, qb): a 2Q gate with absorbed 1Q runs
	fkLayer         // batched layer of independent members (layer.go)
	fkDead          // absorbed into a later entry; dropped by compaction
)

// fusedOp is one step of a compiled schedule.
type fusedOp struct {
	kind int
	idx  int        // index of the first source op (error reporting)
	op   circuit.Op // fkOp only
	qa   int        // target qubit (1Q kinds) or first qubit (2Q kinds)
	qb   int
	d    [4]complex128  // fkDiag1Q uses d[0..1]; fkDiag2Q all four
	u    *linalg.Matrix // fkMat1Q (2×2) and fkMat2Q (4×4)

	members []layerMember // fkLayer only: the batched operations, in order
}

// Program is a compiled, fusion-scheduled circuit, reusable across runs
// (Schedule once, RunProgram many — the schedule is independent of state).
// A Program is immutable after Schedule returns and safe for concurrent
// RunProgram calls on distinct states (Monte-Carlo trajectories share one).
type Program struct {
	n   int
	ops []fusedOp

	// srcStep maps each source-circuit op index to the schedule step that
	// executes it (runs, merges, absorptions, and layers all record the
	// entry their source ops landed in).
	srcStep []int

	// Fused counts how many source ops were folded into fused entries
	// (diagnostics and tests).
	Fused int
}

// Steps returns the number of executable schedule steps.
func (p *Program) Steps() int { return len(p.ops) }

// StepForOp returns the schedule step that executes source op i, or -1
// when i is out of range. Noise trajectories use it to place error
// injections at fused-entry boundaries while reusing one compiled Program.
func (p *Program) StepForOp(i int) int {
	if i < 0 || i >= len(p.srcStep) {
		return -1
	}
	return p.srcStep[i]
}

// ProgramStats summarizes the layering of a compiled schedule.
type ProgramStats struct {
	Steps      int     // executable steps after layering
	Layers     int     // fkLayer steps (batched groups of ≥ 2 members)
	Batched    int     // members batched inside layers
	AvgWidth   float64 // Batched / Layers (0 when no layers)
	LayerShare float64 // fraction of kernel applications executed inside layers
}

// Stats computes the layering summary of a compiled schedule.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{Steps: len(p.ops)}
	for i := range p.ops {
		if p.ops[i].kind == fkLayer {
			st.Layers++
			st.Batched += len(p.ops[i].members)
		}
	}
	if st.Layers > 0 {
		st.AvgWidth = float64(st.Batched) / float64(st.Layers)
	}
	if singles := st.Steps - st.Layers; st.Batched+singles > 0 {
		st.LayerShare = float64(st.Batched) / float64(st.Batched+singles)
	}
	return st
}

// mergeWindow bounds the backward commuting-scan when merging diagonal
// gates, keeping Schedule linear-ish on pathological circuits.
const mergeWindow = 32

// defaultFusionShardThreshold is the state size, in amplitudes, at and
// above which fused/layer kernels spread their sweep over the worker pool
// (2^18 amplitudes = 18 qubits, 4 MiB).
const defaultFusionShardThreshold = 1 << 18

// fusionShardThreshold overrides the shard threshold when non-zero. It is
// atomic because tests force the sharded arms on small states while
// parallel sweeps may be running concurrent Runs — a plain package var
// here is read by every kernel sweep and would race under -race. Results
// are byte-identical at any threshold.
var fusionShardThreshold atomic.Int64

// fusionShardWorkers overrides the sharded kernels' worker count when
// non-zero (tests force the parallel arms on small states and single-core
// runners); 0 means the par.Resolve auto default. Atomic for the same
// reason as fusionShardThreshold.
var fusionShardWorkers atomic.Int64

// shardThresholdAmps returns the active shard threshold in amplitudes.
func shardThresholdAmps() int {
	if v := fusionShardThreshold.Load(); v > 0 {
		return int(v)
	}
	return defaultFusionShardThreshold
}

// pending1Q accumulates a run of consecutive 1Q gates on one qubit.
type pending1Q struct {
	active bool
	mat    *linalg.Matrix // product of the run, latest gate leftmost
	count  int
	first  circuit.Op // the run's first op (passthrough when count == 1)
	idx    int        // source index of the run's first op
	idxs   []int      // source indices of every op in the run
}

// fastDiag1Q reports whether a named 1Q gate dispatches to the phase1Q
// kernel (mirrors ApplyOp).
func fastDiag1Q(op circuit.Op) bool {
	if op.U != nil {
		return false
	}
	switch op.Name {
	case "z", "s", "sdg", "t", "tdg":
		return true
	case "p", "rz":
		return len(op.Params) == 1
	}
	return false
}

// fast2Q reports whether a named 2Q gate has a specialized kernel in
// ApplyOp (phase, permutation, or inner-block mix), i.e. absorbing a 1Q
// run into it would be unprofitable.
func fast2Q(op circuit.Op) bool {
	if op.U != nil {
		return false
	}
	switch op.Name {
	case "cz", "cx", "swap", "iswap", "siswap":
		return true
	case "cp", "rzz":
		return len(op.Params) == 1
	}
	return false
}

// diag2QPhases returns the diagonal of a named 2Q phase gate in the
// |qa qb⟩ basis, mirroring the constants ApplyOp feeds phase2Q.
func diag2QPhases(op circuit.Op) ([4]complex128, bool) {
	if op.U != nil {
		return [4]complex128{}, false
	}
	switch op.Name {
	case "cz":
		return [4]complex128{1, 1, 1, -1}, true
	case "cp":
		if len(op.Params) == 1 {
			return [4]complex128{1, 1, 1, expi(op.Params[0])}, true
		}
	case "rzz":
		if len(op.Params) == 1 {
			e, ec := expi(-op.Params[0]/2), expi(op.Params[0]/2)
			return [4]complex128{e, ec, ec, e}, true
		}
	}
	return [4]complex128{}, false
}

// isDiagonalEntry reports whether a schedule entry is a pure phase
// operation (commutes with every other diagonal, on any qubits).
func (f *fusedOp) isDiagonalEntry() bool {
	switch f.kind {
	case fkDiag1Q, fkDiag2Q:
		return true
	case fkOp:
		return fastDiag1Q(f.op)
	}
	return false
}

// touches reports whether the entry acts on qubit q.
func (f *fusedOp) touches(q int) bool {
	if f.kind == fkOp {
		for _, oq := range f.op.Qubits {
			if oq == q {
				return true
			}
		}
		return false
	}
	if f.qa == q {
		return true
	}
	return (f.kind == fkDiag2Q || f.kind == fkMat2Q) && f.qb == q
}

// isDiag2x2 reports whether a 2×2 matrix has exactly zero off-diagonals
// (products of diagonal gates keep them exactly zero, so runs of named
// diagonal gates are recognized without tolerance).
func isDiag2x2(m *linalg.Matrix) bool {
	return m.Data[1] == 0 && m.Data[2] == 0
}

// Schedule builds the fused, layered schedule of a circuit. It never
// fails: ops it cannot fuse (unknown gates, malformed arities) pass
// through unchanged and surface their error — with the original op index —
// when the program runs.
func Schedule(c *circuit.Circuit) *Program {
	p := scheduleUnlayered(c)
	p.layerize()
	return p
}

// scheduleUnlayered runs the sequential fusion pass alone (runs, diagonal
// merges, 4×4 absorption) with no layer batching. Tests pin its structural
// decisions directly; Schedule layers its output.
func scheduleUnlayered(c *circuit.Circuit) *Program {
	p := &Program{n: c.N, srcStep: make([]int, len(c.Ops))}
	pend := make([]pending1Q, c.N)
	src := p.srcStep
	// Entries absorbed into a later 4×4 (marked fkDead) map to the entry
	// that swallowed them; the compaction pass below drops them and chases
	// these links to fix up srcStep.
	dead := map[int]int{}

	flush := func(q int) {
		pd := &pend[q]
		if !pd.active {
			return
		}
		entry := -1
		switch {
		case pd.count == 1:
			if entry = p.absorbMat1Q(q, pd.mat); entry >= 0 {
				p.Fused++
				break
			}
			p.ops = append(p.ops, fusedOp{kind: fkOp, idx: pd.idx, op: pd.first})
			entry = len(p.ops) - 1
		case isDiag2x2(pd.mat):
			p.Fused += pd.count
			d0, d1 := pd.mat.Data[0], pd.mat.Data[3]
			if entry = p.mergeDiag1Q(q, d0, d1); entry < 0 {
				if entry = p.absorbMat1Q(q, pd.mat); entry < 0 {
					p.ops = append(p.ops, fusedOp{kind: fkDiag1Q, idx: pd.idx, qa: q, d: [4]complex128{d0, d1}})
					entry = len(p.ops) - 1
				}
			}
		default:
			p.Fused += pd.count
			if entry = p.absorbMat1Q(q, pd.mat); entry >= 0 {
				break
			}
			p.ops = append(p.ops, fusedOp{kind: fkMat1Q, idx: pd.idx, qa: q, u: pd.mat})
			entry = len(p.ops) - 1
		}
		for _, si := range pd.idxs {
			src[si] = entry
		}
		pd.active = false
	}

	for i, op := range c.Ops {
		switch len(op.Qubits) {
		case 1:
			q := op.Qubits[0]
			if q < 0 || q >= c.N {
				p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
				src[i] = len(p.ops) - 1
				continue
			}
			u, err := circuit.Unitary(op)
			if err != nil || u.Rows != 2 || u.Cols != 2 {
				flush(q)
				p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
				src[i] = len(p.ops) - 1
				continue
			}
			pd := &pend[q]
			if !pd.active {
				*pd = pending1Q{active: true, mat: u, count: 1, first: op, idx: i, idxs: pd.idxs[:0]}
				pd.idxs = append(pd.idxs, i)
			} else {
				pd.mat = linalg.Mul2x2(u, pd.mat) // op follows the run: left-multiply
				pd.count++
				pd.idxs = append(pd.idxs, i)
			}
		case 2:
			qa, qb := op.Qubits[0], op.Qubits[1]
			if qa < 0 || qa >= c.N || qb < 0 || qb >= c.N || qa == qb {
				p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
				src[i] = len(p.ops) - 1
				continue
			}
			if d, ok := diag2QPhases(op); ok {
				// Diagonal 2Q gate: it commutes with any diagonal pending
				// runs on its qubits, so only non-diagonal runs must flush
				// before it (a diagonal run emitted later still applies
				// the same total operator).
				for _, q := range [2]int{qa, qb} {
					if pend[q].active && !isDiag2x2(pend[q].mat) {
						flush(q)
					}
				}
				if e := p.mergeDiag2Q(qa, qb, d); e >= 0 {
					p.Fused++
					src[i] = e
					continue
				}
				p.ops = append(p.ops, fusedOp{kind: fkDiag2Q, idx: i, qa: qa, qb: qb, d: d})
				src[i] = len(p.ops) - 1
				continue
			}
			if fast2Q(op) {
				// Specialized kernel: run it as-is; absorbing 1Q runs here
				// would trade a phase/permutation/mix kernel for a generic
				// 4×4 sweep.
				flush(qa)
				flush(qb)
				p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
				src[i] = len(p.ops) - 1
				continue
			}
			// Generic-path 2Q gate: absorb any pending 1Q runs on its
			// qubits into its 4×4, then fold in earlier entries acting
			// entirely inside its pair (the backward chain) — the sweep
			// cost is unchanged and every folded sweep disappears.
			u2q, err := circuit.Unitary(op)
			if err != nil || u2q.Rows != 4 || u2q.Cols != 4 {
				flush(qa)
				flush(qb)
				p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
				src[i] = len(p.ops) - 1
				continue
			}
			u4 := u2q
			if pend[qa].active || pend[qb].active {
				ua, ub := gates.I2(), gates.I2()
				absorbed := 0
				for _, q := range [2]int{qa, qb} {
					if pd := &pend[q]; pd.active {
						if q == qa {
							ua = pd.mat
						} else {
							ub = pd.mat
						}
						absorbed += pd.count
						for _, si := range pd.idxs {
							src[si] = len(p.ops) // the fkMat2Q appended below
						}
						pd.active = false
					}
				}
				p.Fused += absorbed
				kron := linalg.New(4, 4)
				linalg.KronInto(kron, ua, ub) // qa is the high bit of the gate basis
				u4 = linalg.Mul4x4(u2q, kron)
			}
			u4 = p.absorbBackward2Q(qa, qb, u4, dead)
			p.ops = append(p.ops, fusedOp{kind: fkMat2Q, idx: i, qa: qa, qb: qb, u: u4})
			src[i] = len(p.ops) - 1
		default:
			p.ops = append(p.ops, fusedOp{kind: fkOp, idx: i, op: op})
			src[i] = len(p.ops) - 1
		}
	}
	for q := 0; q < c.N; q++ {
		flush(q)
	}
	if len(dead) > 0 {
		remap := make([]int, len(p.ops))
		kept := p.ops[:0]
		for i := range p.ops {
			if p.ops[i].kind == fkDead {
				remap[i] = -1
				continue
			}
			remap[i] = len(kept)
			kept = append(kept, p.ops[i])
		}
		p.ops = kept
		for i, e := range src {
			for remap[e] < 0 {
				e = dead[e] // chase the absorption chain to a live entry
			}
			src[i] = remap[e]
		}
	}
	return p
}

// absorbBackward2Q folds earlier schedule entries acting entirely inside
// {qa, qb} into an arriving generic 4×4, commuting backward over disjoint
// entries: 1Q entries on either qubit, diagonal/full 4×4 entries on the
// same pair, and specialized-2Q passthroughs on the same oriented pair all
// right-multiply into the matrix (they precede it in program order) and
// their sweeps disappear. Absorbed entries are marked fkDead and recorded
// in dead for the compaction pass. Never mutates u4 in place — it may
// still alias the source op's own matrix. Returns the folded matrix.
func (p *Program) absorbBackward2Q(qa, qb int, u4 *linalg.Matrix, dead map[int]int) *linalg.Matrix {
	target := len(p.ops) // the index the arriving fkMat2Q will occupy
	for i, steps := len(p.ops)-1, 0; i >= 0 && steps < mergeWindow; i, steps = i-1, steps+1 {
		f := &p.ops[i]
		if f.kind == fkDead {
			continue
		}
		switch f.kind {
		case fkMat1Q:
			if f.qa != qa && f.qa != qb {
				continue // disjoint 1Q: commutes, keep scanning
			}
			u4 = linalg.Mul4x4(u4, expand1Q(f.qa == qa, f.u))
		case fkDiag1Q:
			if f.qa != qa && f.qa != qb {
				continue
			}
			dm := linalg.New(2, 2)
			dm.Data[0], dm.Data[3] = f.d[0], f.d[1]
			u4 = linalg.Mul4x4(u4, expand1Q(f.qa == qa, dm))
		case fkDiag2Q:
			if !((f.qa == qa && f.qb == qb) || (f.qa == qb && f.qb == qa)) {
				if f.touches(qa) || f.touches(qb) {
					return u4 // shares one qubit: blocks the scan
				}
				continue
			}
			d := f.d
			if f.qa != qa {
				d[1], d[2] = d[2], d[1] // opposite orientation
			}
			// Right-multiplying by a diagonal scales the columns.
			scaled := linalg.New(4, 4)
			for k, v := range u4.Data {
				scaled.Data[k] = v * d[k%4]
			}
			u4 = scaled
		case fkMat2Q:
			if f.qa != qa || f.qb != qb {
				if f.touches(qa) || f.touches(qb) {
					return u4
				}
				continue
			}
			u4 = linalg.Mul4x4(u4, f.u)
		case fkOp:
			if !f.touches(qa) && !f.touches(qb) {
				continue
			}
			if len(f.op.Qubits) == 1 {
				u, err := circuit.Unitary(f.op)
				if err != nil || u.Rows != 2 || u.Cols != 2 {
					return u4
				}
				u4 = linalg.Mul4x4(u4, expand1Q(f.op.Qubits[0] == qa, u))
				break
			}
			// A specialized-2Q passthrough on the same oriented pair folds
			// in too — its whole pass disappears into the already-paid 4×4.
			if len(f.op.Qubits) == 2 && f.op.Qubits[0] == qa && f.op.Qubits[1] == qb {
				u, err := circuit.Unitary(f.op)
				if err != nil || u.Rows != 4 || u.Cols != 4 {
					return u4
				}
				u4 = linalg.Mul4x4(u4, u)
				break
			}
			return u4
		default:
			return u4 // fkLayer or unknown: never absorbed
		}
		f.kind = fkDead
		f.qa, f.qb = -1, -1
		f.op = circuit.Op{}
		f.u = nil
		dead[i] = target
		p.Fused++
	}
	return u4
}

// absorbMat1Q folds a flushing 2×2 on qubit q into an earlier fkMat2Q
// entry on a pair containing q, if one is reachable by commuting backward
// over entries disjoint from q (or, when the 2×2 is diagonal, over other
// diagonal entries). The run follows the 4×4 in program order, so it
// left-multiplies: the 4×4 sweep then applies both for free and the 1Q
// sweep disappears — the backward twin of the forward absorption the
// scheduler already does when a run is pending as the 2Q gate arrives.
// Returns the entry index it merged into, or -1.
func (p *Program) absorbMat1Q(q int, u *linalg.Matrix) int {
	diag := isDiag2x2(u)
	for i, steps := len(p.ops)-1, 0; i >= 0 && steps < mergeWindow; i, steps = i-1, steps+1 {
		f := &p.ops[i]
		if f.kind == fkMat2Q && (f.qa == q || f.qb == q) {
			f.u = linalg.Mul4x4(expand1Q(q == f.qa, u), f.u)
			return i
		}
		if !f.touches(q) || (diag && f.isDiagonalEntry()) {
			continue
		}
		return -1
	}
	return -1
}

// expand1Q lifts a 2×2 to the 4×4 gate basis: u⊗I when the qubit is the
// pair's high bit (qa), I⊗u otherwise.
func expand1Q(high bool, u *linalg.Matrix) *linalg.Matrix {
	ua, ub := gates.I2(), gates.I2()
	if high {
		ua = u
	} else {
		ub = u
	}
	kron := linalg.New(4, 4)
	linalg.KronInto(kron, ua, ub)
	return kron
}

// mergeDiag1Q folds diag(d0, d1) on qubit q into an earlier fkDiag1Q entry
// on the same qubit if one is reachable by commuting backward over
// diagonal or disjoint entries. Returns the entry index it merged into, or
// -1.
func (p *Program) mergeDiag1Q(q int, d0, d1 complex128) int {
	for i, steps := len(p.ops)-1, 0; i >= 0 && steps < mergeWindow; i, steps = i-1, steps+1 {
		f := &p.ops[i]
		if f.kind == fkDiag1Q && f.qa == q {
			f.d[0] *= d0
			f.d[1] *= d1
			return i
		}
		if f.isDiagonalEntry() || !f.touches(q) {
			continue // commutes: keep scanning backward
		}
		return -1
	}
	return -1
}

// mergeDiag2Q folds a diagonal in the |qa qb⟩ basis into an earlier
// fkDiag2Q entry on the same unordered pair if one is reachable by
// commuting backward over diagonal or disjoint entries. Returns the entry
// index it merged into, or -1.
func (p *Program) mergeDiag2Q(qa, qb int, d [4]complex128) int {
	for i, steps := len(p.ops)-1, 0; i >= 0 && steps < mergeWindow; i, steps = i-1, steps+1 {
		f := &p.ops[i]
		if f.kind == fkDiag2Q && ((f.qa == qa && f.qb == qb) || (f.qa == qb && f.qb == qa)) {
			if f.qa != qa {
				d[1], d[2] = d[2], d[1] // opposite orientation: |01⟩ and |10⟩ swap
			}
			f.d[0] *= d[0]
			f.d[1] *= d[1]
			f.d[2] *= d[2]
			f.d[3] *= d[3]
			return i
		}
		if f.isDiagonalEntry() || (!f.touches(qa) && !f.touches(qb)) {
			continue
		}
		return -1
	}
	return -1
}

// RunProgram applies a compiled schedule to the state.
func (s *State) RunProgram(p *Program) error {
	return s.RunProgramCtx(context.Background(), p)
}

// RunProgramCtx is RunProgram with cooperative cancellation: ctx is checked
// before every fused op (each op is one full state sweep — the natural
// stopping granularity), so a deadline-bound simulation stops within one
// sweep instead of running the schedule to completion. The state is left
// partially evolved on cancellation and must be discarded.
func (s *State) RunProgramCtx(ctx context.Context, p *Program) error {
	return s.runSteps(ctx, p, 0, len(p.ops))
}

// RunProgramSteps applies schedule steps [from, to) of a compiled program.
// Noise trajectories run a shared Program in segments, injecting Pauli
// errors at the boundaries StepForOp names; from/to outside [0, Steps] are
// clamped.
func (s *State) RunProgramSteps(p *Program, from, to int) error {
	if from < 0 {
		from = 0
	}
	if to > len(p.ops) {
		to = len(p.ops)
	}
	return s.runSteps(context.Background(), p, from, to)
}

// runSteps executes schedule steps [from, to).
func (s *State) runSteps(ctx context.Context, p *Program, from, to int) error {
	if p.n > s.N {
		return fmt.Errorf("sim: program has %d qubits, state has %d", p.n, s.N)
	}
	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		f := &p.ops[i]
		var err error
		switch f.kind {
		case fkOp:
			err = s.ApplyOp(f.op)
		case fkMat1Q:
			s.fusedMat1Q(f.qa, f.u)
		case fkDiag1Q:
			s.fusedDiag1Q(f.qa, f.d[0], f.d[1])
		case fkDiag2Q:
			s.fusedDiag2Q(f.qa, f.qb, f.d)
		case fkMat2Q:
			err = s.Apply2Q(f.qa, f.qb, f.u)
		case fkLayer:
			err = s.applyLayer(f)
		}
		if err != nil {
			if f.kind == fkOp {
				return fmt.Errorf("sim: op %d (%s): %w", f.idx, f.op, err)
			}
			return fmt.Errorf("sim: op %d (fused): %w", f.idx, err)
		}
	}
	return nil
}

// shardSpan picks the worker count for a fused kernel sweep: 1 (serial)
// below the threshold or when the pool is one core.
func (s *State) shardSpan() int {
	if len(s.Amp) < shardThresholdAmps() {
		return 1
	}
	if w := fusionShardWorkers.Load(); w > 0 {
		return int(w)
	}
	return par.Resolve(0)
}

// fusedMat1Q applies a fused 2×2 to qubit q: the serial arm is Apply1Q's
// loop; the sharded arm splits the pair-index space [0, 2^(n-1)) into one
// contiguous range per worker (pair p maps to amplitude index
// ((p &^ (mask-1)) << 1) | (p & (mask-1))), so every amplitude is written
// by exactly one worker with identical arithmetic.
func (s *State) fusedMat1Q(q int, u *linalg.Matrix) {
	mask := 1 << s.bitPos(q)
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	amp := s.Amp
	workers := s.shardSpan()
	if workers <= 1 {
		for base := 0; base < len(amp); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				j := i + mask
				a0, a1 := amp[i], amp[j]
				amp[i] = u00*a0 + u01*a1
				amp[j] = u10*a0 + u11*a1
			}
		}
		return
	}
	total := len(amp) >> 1
	chunk := (total + workers - 1) / workers
	low := mask - 1
	par.ForEach(workers, workers, func(w int) error {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > total {
			hi = total
		}
		for pIdx := lo; pIdx < hi; pIdx++ {
			i := ((pIdx &^ low) << 1) | (pIdx & low)
			j := i + mask
			a0, a1 := amp[i], amp[j]
			amp[i] = u00*a0 + u01*a1
			amp[j] = u10*a0 + u11*a1
		}
		return nil
	})
}

// fusedDiag1Q applies a merged phase sweep diag(d0, d1) on qubit q,
// keeping phase1Q's skip of unit factors; the sharded arm mirrors
// fusedMat1Q's disjoint pair ranges.
func (s *State) fusedDiag1Q(q int, d0, d1 complex128) {
	mask := 1 << s.bitPos(q)
	amp := s.Amp
	workers := s.shardSpan()
	if workers <= 1 {
		for base := 0; base < len(amp); base += mask << 1 {
			if d0 != 1 {
				for i := base; i < base+mask; i++ {
					amp[i] *= d0
				}
			}
			if d1 != 1 {
				for i := base + mask; i < base+(mask<<1); i++ {
					amp[i] *= d1
				}
			}
		}
		return
	}
	total := len(amp) >> 1
	chunk := (total + workers - 1) / workers
	low := mask - 1
	par.ForEach(workers, workers, func(w int) error {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > total {
			hi = total
		}
		for pIdx := lo; pIdx < hi; pIdx++ {
			i := ((pIdx &^ low) << 1) | (pIdx & low)
			if d0 != 1 {
				amp[i] *= d0
			}
			if d1 != 1 {
				amp[i+mask] *= d1
			}
		}
		return nil
	})
}

// fusedDiag2Q applies a merged phase sweep diag(d) in the |qa qb⟩ basis,
// keeping phase2Q's skip of unit factors; the sharded arm splits the
// quad-index space into contiguous per-worker ranges (quad p expands to
// its |00⟩ index by re-inserting a zero bit at each mask position).
func (s *State) fusedDiag2Q(qa, qb int, d [4]complex128) {
	maskA := 1 << s.bitPos(qa)
	maskB := 1 << s.bitPos(qb)
	amp := s.Amp
	d00, d01, d10, d11 := d[0], d[1], d[2], d[3]
	workers := s.shardSpan()
	if workers <= 1 {
		// The serial closure is kept separate from the sharded one so it
		// never escapes (the kernel allocation guard pins this at zero).
		quad2Q(len(amp), maskA, maskB, func(i00 int) {
			if d00 != 1 {
				amp[i00] *= d00
			}
			if d01 != 1 {
				amp[i00|maskB] *= d01
			}
			if d10 != 1 {
				amp[i00|maskA] *= d10
			}
			if d11 != 1 {
				amp[i00|maskA|maskB] *= d11
			}
		})
		return
	}
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	total := len(amp) >> 2
	chunk := (total + workers - 1) / workers
	l1, h1 := lo-1, hi-1
	par.ForEach(workers, workers, func(w int) error {
		from, to := w*chunk, (w+1)*chunk
		if to > total {
			to = total
		}
		for pIdx := from; pIdx < to; pIdx++ {
			x := ((pIdx &^ l1) << 1) | (pIdx & l1)
			i00 := ((x &^ h1) << 1) | (x & h1)
			if d00 != 1 {
				amp[i00] *= d00
			}
			if d01 != 1 {
				amp[i00|maskB] *= d01
			}
			if d10 != 1 {
				amp[i00|maskA] *= d10
			}
			if d11 != 1 {
				amp[i00|maskA|maskB] *= d11
			}
		}
		return nil
	})
}
