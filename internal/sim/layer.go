// Layer batching: a second scheduling pass over the fused program that
// groups independent entries — gates on disjoint qubits, plus diagonal
// gates that commute with everything diagonal — into fkLayer steps, and a
// cache-blocked execution engine that applies a whole layer per pass over
// the amplitude array.
//
// Why: the fusion pass (fusion.go) coalesces *sequential* gates, but a
// circuit layer of k independent gates still costs k full passes over the
// 2^n amplitudes, and at ≥ 16 qubits every pass is a trip through memory.
// Batching the layer turns k passes into one (plus one extra pass per
// group of cross-tile 1Q targets beyond the cache budget), so throughput
// is bounded by bandwidth once instead of k times.
//
// Grouping rule (buildLayers): scanning entries in program order, an entry
// joins the earliest open group it does not conflict with; it conflicts
// when it shares a qubit with a non-diagonal member, or is itself
// non-diagonal and shares a qubit with any member. Two diagonal members
// may share qubits — diagonals commute exactly. An entry the batcher
// cannot convert (invalid qubits, unknown arity, unresolvable unitary) is
// a barrier: groups never extend across it, and it executes unchanged. A
// group that ends up with a single member keeps its original fused entry,
// so lone gates keep their ApplyOp fast paths and pay no layer overhead.
// Because a member placed into an earlier group than a preceding entry
// provably commutes with (or is disjoint from) every member of all later
// groups it skipped, executing groups in order is exact.
//
// Execution (applyLayer) blocks the amplitude array into tiles of
// 2^layerTileExp amplitudes (128 KiB — comfortably L2-resident):
//
//   - members whose strides lie inside one tile (all masks < tile size)
//     are applied tile-by-tile: each tile is loaded once and every such
//     member's kernel runs over it while it is cache-hot;
//   - diagonal members ride along at any stride: a diagonal factor whose
//     mask spans tiles is constant over a tile, so it degenerates to one
//     scalar multiply selected from the tile's global base index;
//   - 1Q members whose stride crosses tiles (mat/X on a high bit) batch
//     into superblocks: up to layerMaxCross distinct high bits form a
//     2^L-tile working set (≤ 2^layerBudgetExp amplitudes = 1 MiB) whose
//     tile pairs are mixed elementwise while resident; additional high
//     bits cost one extra pass per group of layerMaxCross;
//   - 2Q mixing members with a cross-tile stride keep their specialized
//     global kernels (cx/swap/iswap quads or the generic 4×4) as their own
//     sweep — batching them would need 4-way tile joins for a kernel that
//     is already one pass, exactly what the unlayered schedule paid.
//
// Sharding: superblocks (or tiles, when no high bits are in play) are
// disjoint contiguous index sets, so workers split them by range — each
// amplitude is written by exactly one worker walking a cache-resident
// block, and the member order within every block is fixed, making the
// parallel result byte-identical to the serial one.
package sim

import (
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/par"
)

// layer member kinds.
const (
	lmMat1Q  = iota // generic 2×2 on qa
	lmDiag1Q        // diag(d[0], d[1]) on qa
	lmX             // Pauli-X pair exchange on qa
	lmMat2Q         // generic 4×4 on (qa, qb)
	lmDiag2Q        // diag(d) in the |qa qb⟩ basis
	lmCX            // CNOT, qa controls
	lmSwap          // SWAP
	lmMix           // iSWAP-family inner block: d[0] = diag, d[1] = off
)

// layerMember is one batched operation inside an fkLayer step.
type layerMember struct {
	kind   int
	qa, qb int
	d      [4]complex128  // diagonal kinds; lmMix uses d[0] (diag), d[1] (off)
	u      *linalg.Matrix // lmMat1Q (2×2), lmMat2Q (4×4)
}

// lm2Q reports whether a member kind acts on two qubits.
func lm2Q(kind int) bool { return kind >= lmMat2Q }

// lmDiagonal reports whether a member kind is a pure phase (commutes with
// every diagonal on any qubits).
func lmDiagonal(kind int) bool { return kind == lmDiag1Q || kind == lmDiag2Q }

// layerMemberOf converts a fused entry into a batchable layer member,
// mirroring the exact constants and matrices ApplyOp would use. The second
// result is false for entries that must stay barriers (invalid qubits,
// unsupported arity, unresolvable unitaries).
func layerMemberOf(f *fusedOp, n int) (layerMember, bool) {
	switch f.kind {
	case fkMat1Q:
		return layerMember{kind: lmMat1Q, qa: f.qa, u: f.u}, true
	case fkDiag1Q:
		return layerMember{kind: lmDiag1Q, qa: f.qa, d: f.d}, true
	case fkDiag2Q:
		return layerMember{kind: lmDiag2Q, qa: f.qa, qb: f.qb, d: f.d}, true
	case fkMat2Q:
		return layerMember{kind: lmMat2Q, qa: f.qa, qb: f.qb, u: f.u}, true
	case fkOp:
		return opMember(f.op, n)
	}
	return layerMember{}, false
}

// opMember converts a passthrough op into a layer member, following
// ApplyOp's dispatch so the batched arithmetic matches the unbatched fast
// paths (same phase constants, same memoized matrices).
func opMember(op circuit.Op, n int) (layerMember, bool) {
	switch len(op.Qubits) {
	case 1:
		q := op.Qubits[0]
		if q < 0 || q >= n {
			return layerMember{}, false
		}
		if op.U == nil {
			switch op.Name {
			case "z":
				return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, -1}}, true
			case "s":
				return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, 1i}}, true
			case "sdg":
				return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, -1i}}, true
			case "t":
				return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, cmplx.Exp(complex(0, math.Pi/4))}}, true
			case "tdg":
				return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, cmplx.Exp(complex(0, -math.Pi/4))}}, true
			case "p":
				if len(op.Params) == 1 {
					return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{1, expi(op.Params[0])}}, true
				}
			case "rz":
				if len(op.Params) == 1 {
					half := op.Params[0] / 2
					return layerMember{kind: lmDiag1Q, qa: q, d: [4]complex128{expi(-half), expi(half)}}, true
				}
			case "x":
				return layerMember{kind: lmX, qa: q}, true
			}
		}
		u, err := circuit.Unitary(op)
		if err != nil || u.Rows != 2 || u.Cols != 2 {
			return layerMember{}, false
		}
		return layerMember{kind: lmMat1Q, qa: q, u: u}, true
	case 2:
		qa, qb := op.Qubits[0], op.Qubits[1]
		if qa < 0 || qa >= n || qb < 0 || qb >= n || qa == qb {
			return layerMember{}, false
		}
		if d, ok := diag2QPhases(op); ok {
			return layerMember{kind: lmDiag2Q, qa: qa, qb: qb, d: d}, true
		}
		if op.U == nil {
			switch op.Name {
			case "cx":
				return layerMember{kind: lmCX, qa: qa, qb: qb}, true
			case "swap":
				return layerMember{kind: lmSwap, qa: qa, qb: qb}, true
			case "iswap":
				return layerMember{kind: lmMix, qa: qa, qb: qb, d: [4]complex128{iswapDiag, iswapOff}}, true
			case "siswap":
				return layerMember{kind: lmMix, qa: qa, qb: qb, d: [4]complex128{siswapDiag, siswapOff}}, true
			}
		}
		u, err := circuit.Unitary(op)
		if err != nil || u.Rows != 4 || u.Cols != 4 {
			return layerMember{}, false
		}
		return layerMember{kind: lmMat2Q, qa: qa, qb: qb, u: u}, true
	}
	return layerMember{}, false
}

// layerize regroups the pass-1 schedule into fkLayer steps and remaps the
// source-op→step table accordingly.
func (p *Program) layerize() {
	ops, stepOf := buildLayers(p.ops, p.n)
	p.ops = ops
	for i, e := range p.srcStep {
		p.srcStep[i] = stepOf[e]
	}
}

// buildLayers greedily places each entry into the earliest open group it
// does not conflict with (see the package comment for the conflict rule)
// and emits groups in order: barriers and single-member groups keep their
// original entries, larger groups become fkLayer steps. It returns the new
// schedule and the mapping from old entry index to new step index.
func buildLayers(ops []fusedOp, n int) ([]fusedOp, []int) {
	type group struct {
		barrier  bool
		mixMask  uint64 // qubits of non-diagonal members
		diagMask uint64 // qubits of diagonal members
		members  []layerMember
		entries  []int // indices into ops, in program order
	}
	groups := make([]*group, 0, len(ops))
	floor := 0 // groups[floor:] are open; a barrier closes everything before it
	for oi := range ops {
		m, ok := layerMemberOf(&ops[oi], n)
		if !ok {
			groups = append(groups, &group{barrier: true, entries: []int{oi}})
			floor = len(groups)
			continue
		}
		bits := uint64(1) << uint(m.qa)
		if lm2Q(m.kind) {
			bits |= uint64(1) << uint(m.qb)
		}
		diag := lmDiagonal(m.kind)
		place := floor
		for gi := len(groups) - 1; gi >= floor; gi-- {
			conflict := bits & groups[gi].mixMask
			if !diag {
				conflict |= bits & groups[gi].diagMask
			}
			if conflict != 0 {
				place = gi + 1
				break
			}
		}
		if place == len(groups) {
			groups = append(groups, &group{})
		}
		g := groups[place]
		if diag {
			g.diagMask |= bits
		} else {
			g.mixMask |= bits
		}
		g.members = append(g.members, m)
		g.entries = append(g.entries, oi)
	}

	out := make([]fusedOp, 0, len(groups))
	stepOf := make([]int, len(ops))
	for _, g := range groups {
		if g.barrier || len(g.members) == 1 {
			for _, oi := range g.entries {
				out = append(out, ops[oi])
				stepOf[oi] = len(out) - 1
			}
			continue
		}
		out = append(out, fusedOp{kind: fkLayer, idx: ops[g.entries[0]].idx, members: g.members})
		for _, oi := range g.entries {
			stepOf[oi] = len(out) - 1
		}
	}
	return out, stepOf
}

// Cache-blocking geometry: tiles of 2^layerTileExp amplitudes (128 KiB)
// are the unit every member's kernel runs over while it is resident; a
// superblock of up to 2^layerMaxCross tiles (≤ 2^layerBudgetExp amplitudes
// = 1 MiB) is the working set for cross-tile 1Q members. The exponents
// were measured, not derived: on the bench host, larger tiles beat
// L1-sized ones because the fused-pair kernels are arithmetic-bound and
// smaller tiles just multiply per-tile dispatch overhead.
const (
	layerTileExp   = 13
	layerBudgetExp = 16
	layerMaxCross  = layerBudgetExp - layerTileExp
)

// maskOf returns the amplitude-index mask of qubit q.
func (s *State) maskOf(q int) int { return 1 << s.bitPos(q) }

// applyLayer executes an fkLayer step: standalone sweeps for cross-tile 2Q
// mixing members, then one cache-blocked pass per group of ≤ layerMaxCross
// cross-tile 1Q bits, with every tile-local and diagonal member riding the
// first pass.
func (s *State) applyLayer(f *fusedOp) error {
	members := f.members
	tile := 1 << layerTileExp
	if tile > len(s.Amp) {
		tile = len(s.Amp)
	}

	// Cross-tile 2Q mixing members: their own (specialized) global sweeps.
	riders := 0
	var highBits uint64 // bit positions ≥ layerTileExp used by 1Q members
	for i := range members {
		m := &members[i]
		switch {
		case lmDiagonal(m.kind):
			riders++ // diagonals ride the tile pass at any stride
		case !lm2Q(m.kind):
			if mask := s.maskOf(m.qa); mask >= tile {
				highBits |= uint64(1) << s.bitPos(m.qa)
			} else {
				riders++
			}
		default:
			if s.maskOf(m.qa) >= tile || s.maskOf(m.qb) >= tile {
				if err := s.applyMemberGlobal(m); err != nil {
					return err
				}
			} else {
				riders++
			}
		}
	}

	// Blocked passes: round 0 carries the riders; each round consumes up
	// to layerMaxCross distinct high bits.
	round := 0
	for {
		var pos [layerMaxCross]uint
		cross := 0
		for b := uint(layerTileExp); cross < layerMaxCross && b < 64; b++ {
			if highBits&(uint64(1)<<b) != 0 {
				pos[cross] = b
				cross++
				highBits &^= uint64(1) << b
			}
		}
		if round > 0 && cross == 0 {
			break
		}
		if round == 0 && cross == 0 && riders == 0 {
			break // nothing left: the layer was all standalone 2Q sweeps
		}
		s.layerPass(members, pos, cross, round == 0, tile)
		round++
		if highBits == 0 {
			break
		}
	}
	return nil
}

// applyMemberGlobal applies one member as its own full-array sweep — the
// same kernel the unlayered schedule would have used.
func (s *State) applyMemberGlobal(m *layerMember) error {
	switch m.kind {
	case lmMat2Q:
		return s.Apply2Q(m.qa, m.qb, m.u)
	case lmCX:
		tileCX(s.Amp, s.maskOf(m.qa), s.maskOf(m.qb))
	case lmSwap:
		tileSwap(s.Amp, s.maskOf(m.qa), s.maskOf(m.qb))
	case lmMix:
		tileMix(s.Amp, s.maskOf(m.qa), s.maskOf(m.qb), m.d[0], m.d[1])
	}
	return nil
}

// layerPass is one cache-blocked pass: the amplitude array is walked in
// superblocks of 2^cross tiles (one tile when cross == 0); within each
// superblock the round's cross-tile 1Q members mix their tile pairs, then
// (round 0 only) every tile-local and diagonal member runs over each tile
// while it is resident. pos[:cross] holds the round's high bit positions,
// ascending. Superblocks are disjoint, so sharding splits them by
// contiguous range with byte-identical results.
func (s *State) layerPass(members []layerMember, pos [layerMaxCross]uint, cross int, riders bool, tile int) {
	sbCount := (len(s.Amp) / tile) >> cross

	// Pair up this round's cross-tile mat1Q members (≤ layerMaxCross of
	// them — each owns a distinct bit) and, separately, the tile-local
	// ones: two disjoint 2×2s fuse into one quad pass that loads and
	// stores each amplitude once for both gates, with arithmetic
	// bit-identical to the two sequential sweeps. Pairing is fixed before
	// sharding, so every worker applies the same member order.
	var crossIdx [layerMaxCross]int
	nCross := 0
	for mi := range members {
		m := &members[mi]
		if m.kind != lmMat1Q && m.kind != lmX {
			continue
		}
		bp := s.bitPos(m.qa)
		for k := 0; k < cross; k++ {
			if pos[k] == bp {
				crossIdx[nCross] = mi
				nCross++
				break
			}
		}
	}
	// When this round leaves both an unpaired cross mat1Q AND an unpaired
	// tile-local mat1Q, fuse the two leftovers into one mixed pass over the
	// cross member's tile pairs instead of paying two separate sweeps. The
	// cross leftover must come from replaying the greedy pairing walk below
	// — lmX members break pair adjacency, so an odd mat1Q count does NOT
	// mean the last cross member is unpaired (e.g. [X, mat, mat] pairs both
	// mats and leaves nothing). The tile-local leftover under greedy
	// in-order pairing is always the last tile-local mat1Q member.
	crossLeftover := -1
	for ci := 0; ci < nCross; {
		if members[crossIdx[ci]].kind == lmMat1Q {
			if ci+1 < nCross && members[crossIdx[ci+1]].kind == lmMat1Q {
				ci += 2
				continue
			}
			crossLeftover = ci
		}
		ci++
	}
	reserved := -1
	if riders && crossLeftover >= 0 {
		nTile := 0
		for mi := range members {
			m := &members[mi]
			if m.kind == lmMat1Q && s.maskOf(m.qa) < tile {
				nTile++
				reserved = mi
			}
		}
		if nTile%2 == 0 {
			reserved = -1
		}
	}

	workers := s.shardSpan()
	if workers <= 1 {
		// Serial arm: calling the superblock body directly (instead of
		// through a closure shared with the sharded arm) keeps the whole
		// pass allocation-free — a closure here would escape into
		// par.ForEach and be heap-allocated even when unused.
		for sb := 0; sb < sbCount; sb++ {
			s.layerPassSB(sb, members, pos, cross, riders, tile, crossIdx, nCross, crossLeftover, reserved)
		}
		return
	}
	chunk := (sbCount + workers - 1) / workers
	par.ForEach(workers, workers, func(w int) error {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > sbCount {
			hi = sbCount
		}
		for sb := lo; sb < hi; sb++ {
			s.layerPassSB(sb, members, pos, cross, riders, tile, crossIdx, nCross, crossLeftover, reserved)
		}
		return nil
	})
}

// layerPassSB processes one superblock of a layer pass (see layerPass).
func (s *State) layerPassSB(sb int, members []layerMember, pos [layerMaxCross]uint, cross int, riders bool, tile int, crossIdx [layerMaxCross]int, nCross, crossLeftover, reserved int) {
	amp := s.Amp
	sbTiles := 1 << cross
	{
		// Expand the superblock index: insert a zero bit at each of the
		// round's high positions (ascending) to get the base address.
		base := sb * tile
		for k := 0; k < cross; k++ {
			p := pos[k]
			high := base &^ ((1 << p) - 1)
			base = (high << 1) | (base & ((1 << p) - 1))
		}
		// Cross-tile 1Q members: mix tile pairs (or, for a fused pair of
		// members, tile quads) along their bits.
		for ci := 0; ci < nCross; {
			mx := &members[crossIdx[ci]]
			if ci+1 < nCross && mx.kind == lmMat1Q && members[crossIdx[ci+1]].kind == lmMat1Q {
				my := &members[crossIdx[ci+1]]
				rx := crossRank(pos, cross, s.bitPos(mx.qa))
				ry := crossRank(pos, cross, s.bitPos(my.qa))
				for j := 0; j < sbTiles; j++ {
					if j&(1<<rx) != 0 || j&(1<<ry) != 0 {
						continue
					}
					t00 := base + tileOffset(j, pos, cross)
					tX := base + tileOffset(j|1<<rx, pos, cross)
					tY := base + tileOffset(j|1<<ry, pos, cross)
					tXY := base + tileOffset(j|1<<rx|1<<ry, pos, cross)
					crossMat1QPair(amp[t00:t00+tile], amp[tX:tX+tile], amp[tY:tY+tile], amp[tXY:tXY+tile], mx.u, my.u)
				}
				ci += 2
				continue
			}
			rank := crossRank(pos, cross, s.bitPos(mx.qa))
			for j := 0; j < sbTiles; j++ {
				if j&(1<<rank) != 0 {
					continue
				}
				ta := base + tileOffset(j, pos, cross)
				tb := base + tileOffset(j|1<<rank, pos, cross)
				switch {
				case mx.kind == lmX:
					crossX(amp[ta:ta+tile], amp[tb:tb+tile])
				case ci == crossLeftover && reserved >= 0:
					mr := &members[reserved]
					crossTileMat1QPair(amp[ta:ta+tile], amp[tb:tb+tile], mx.u, s.maskOf(mr.qa), mr.u)
				default:
					crossMat1Q(amp[ta:ta+tile], amp[tb:tb+tile], mx.u)
				}
			}
			ci++
		}
		if !riders {
			return
		}
		// Tile-local and diagonal members, per tile: mat1Q members fuse in
		// pairs, everything else runs in member order.
		for j := 0; j < sbTiles; j++ {
			tb := base + tileOffset(j, pos, cross)
			region := amp[tb : tb+tile]
			prevMat := -1
			for mi := range members {
				if mi == reserved {
					continue // fused with the cross leftover above
				}
				m := &members[mi]
				switch m.kind {
				case lmDiag1Q:
					tileDiag1Q(region, tb, s.maskOf(m.qa), m.d[0], m.d[1])
				case lmDiag2Q:
					tileDiag2Q(region, tb, s.maskOf(m.qa), s.maskOf(m.qb), m.d)
				case lmMat1Q:
					if mask := s.maskOf(m.qa); mask < tile {
						if prevMat >= 0 {
							tileMat1QPair(region, s.maskOf(members[prevMat].qa), members[prevMat].u, mask, m.u)
							prevMat = -1
						} else {
							prevMat = mi
						}
					}
				case lmX:
					if mask := s.maskOf(m.qa); mask < tile {
						tileX(region, mask)
					}
				default:
					maskA, maskB := s.maskOf(m.qa), s.maskOf(m.qb)
					if maskA >= tile || maskB >= tile {
						continue // already applied as a standalone sweep
					}
					switch m.kind {
					case lmMat2Q:
						tileMat2Q(region, maskA, maskB, m.u)
					case lmCX:
						tileCX(region, maskA, maskB)
					case lmSwap:
						tileSwap(region, maskA, maskB)
					case lmMix:
						tileMix(region, maskA, maskB, m.d[0], m.d[1])
					}
				}
			}
			if prevMat >= 0 {
				tileMat1Q(region, s.maskOf(members[prevMat].qa), members[prevMat].u)
			}
		}
	}
}

// tileOffset maps a tile's index within its superblock to its address
// offset: bit k of j lands at high position pos[k].
func tileOffset(j int, pos [layerMaxCross]uint, cross int) int {
	off := 0
	for k := 0; k < cross; k++ {
		if j&(1<<k) != 0 {
			off |= 1 << pos[k]
		}
	}
	return off
}

// crossRank returns the index of bit position bp in the round's high-bit
// set (-1 when absent).
func crossRank(pos [layerMaxCross]uint, cross int, bp uint) int {
	for k := 0; k < cross; k++ {
		if pos[k] == bp {
			return k
		}
	}
	return -1
}

// crossMat1Q mixes two equal-length tiles elementwise with a 2×2: a holds
// the qubit-clear amplitudes, b the qubit-set ones.
func crossMat1Q(a, b []complex128, u *linalg.Matrix) {
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	b = b[:len(a)] // one bounds fact; the loop body is check-free
	for i := range a {
		a0, a1 := a[i], b[i]
		a[i] = u00*a0 + u01*a1
		b[i] = u10*a0 + u11*a1
	}
}

// crossX exchanges two tiles elementwise (Pauli-X along a cross-tile bit).
func crossX(a, b []complex128) {
	b = b[:len(a)]
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// crossMat1QPair applies two fused 2×2s along two cross-tile bits over a
// tile quad: s00 holds both-clear amplitudes, sx/sy one bit set, sxy both.
// Gate ux mixes along the x bit first, then uy along the y bit — the same
// values the two sequential tile-pair passes would produce, with each
// amplitude loaded and stored once.
func crossMat1QPair(s00, sx, sy, sxy []complex128, ux, uy *linalg.Matrix) {
	x00, x01 := ux.Data[0], ux.Data[1]
	x10, x11 := ux.Data[2], ux.Data[3]
	y00, y01 := uy.Data[0], uy.Data[1]
	y10, y11 := uy.Data[2], uy.Data[3]
	sx = sx[:len(s00)]
	sy = sy[:len(s00)]
	sxy = sxy[:len(s00)]
	for i := range s00 {
		a00, ax, ay, axy := s00[i], sx[i], sy[i], sxy[i]
		b00 := x00*a00 + x01*ax
		bx := x10*a00 + x11*ax
		by := x00*ay + x01*axy
		bxy := x10*ay + x11*axy
		s00[i] = y00*b00 + y01*by
		sy[i] = y10*b00 + y11*by
		sx[i] = y00*bx + y01*bxy
		sxy[i] = y10*bx + y11*bxy
	}
}

// crossTileMat1QPair fuses an unpaired cross-tile 2×2 (uc, mixing tiles a
// and b) with an unpaired tile-local 2×2 (us, along mask ms inside each
// tile) into one pass over the tile pair: the tile-local gate applies
// first, then the cross gate — bit-identical to those two sequential
// sweeps, with each amplitude loaded and stored once.
func crossTileMat1QPair(a, b []complex128, uc *linalg.Matrix, ms int, us *linalg.Matrix) {
	c00, c01 := uc.Data[0], uc.Data[1]
	c10, c11 := uc.Data[2], uc.Data[3]
	s00, s01 := us.Data[0], us.Data[1]
	s10, s11 := us.Data[2], us.Data[3]
	b = b[:len(a)]
	for base := 0; base < len(a); base += ms << 1 {
		for i := base; i < base+ms; i++ {
			j := i + ms
			a0, a1, b0, b1 := a[i], a[j], b[i], b[j]
			ta0 := s00*a0 + s01*a1
			ta1 := s10*a0 + s11*a1
			tb0 := s00*b0 + s01*b1
			tb1 := s10*b0 + s11*b1
			a[i] = c00*ta0 + c01*tb0
			b[i] = c10*ta0 + c11*tb0
			a[j] = c00*ta1 + c01*tb1
			b[j] = c10*ta1 + c11*tb1
		}
	}
}

// tileMat1QPair applies two fused 2×2s on distinct tile-local bits in one
// quad pass: ux mixes along mx first, then uy along my, loading and
// storing each amplitude once — bit-identical to the two strided sweeps.
func tileMat1QPair(region []complex128, mx int, ux *linalg.Matrix, my int, uy *linalg.Matrix) {
	x00, x01 := ux.Data[0], ux.Data[1]
	x10, x11 := ux.Data[2], ux.Data[3]
	y00, y01 := uy.Data[0], uy.Data[1]
	y10, y11 := uy.Data[2], uy.Data[3]
	lo, hi := mx, my
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i := mid; i < mid+lo; i++ {
				ix, iy := i+mx, i+my
				ixy := ix + my
				a00, ax, ay, axy := region[i], region[ix], region[iy], region[ixy]
				b00 := x00*a00 + x01*ax
				bx := x10*a00 + x11*ax
				by := x00*ay + x01*axy
				bxy := x10*ay + x11*axy
				region[i] = y00*b00 + y01*by
				region[iy] = y10*b00 + y11*by
				region[ix] = y00*bx + y01*bxy
				region[ixy] = y10*bx + y11*bxy
			}
		}
	}
}

// tileMat1Q applies a 2×2 over one resident region; mask < len(region).
func tileMat1Q(region []complex128, mask int, u *linalg.Matrix) {
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	for base := 0; base < len(region); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			j := i + mask
			a0, a1 := region[i], region[j]
			region[i] = u00*a0 + u01*a1
			region[j] = u10*a0 + u11*a1
		}
	}
}

// tileX applies Pauli-X over one resident region; mask < len(region).
func tileX(region []complex128, mask int) {
	for base := 0; base < len(region); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			j := i + mask
			region[i], region[j] = region[j], region[i]
		}
	}
}

// tileDiag1Q applies diag(d0, d1) on a region at any stride: below the
// region size it is the strided phase sweep (unit factors skipped, as in
// phase1Q); at or above it the qubit's bit is constant over the region —
// read it from the region's global base and do one scalar multiply.
func tileDiag1Q(region []complex128, gbase, mask int, d0, d1 complex128) {
	if mask < len(region) {
		for base := 0; base < len(region); base += mask << 1 {
			if d0 != 1 {
				for i := base; i < base+mask; i++ {
					region[i] *= d0
				}
			}
			if d1 != 1 {
				for i := base + mask; i < base+(mask<<1); i++ {
					region[i] *= d1
				}
			}
		}
		return
	}
	d := d0
	if gbase&mask != 0 {
		d = d1
	}
	if d != 1 {
		for i := range region {
			region[i] *= d
		}
	}
}

// tileDiag2Q applies diag(d) in the |qa qb⟩ basis on a region at any
// stride pair: each cross-region bit is constant over the region and
// selects a diagonal slice, reducing to a 1Q phase sweep or a scalar.
// Inside the region each non-unit diagonal entry gets its own tight
// multiply loop over its quarter of the indices — merged cp·cz ladders
// (only d11 ≠ 1) touch a quarter of the state with zero branch tests per
// amplitude.
func tileDiag2Q(region []complex128, gbase, maskA, maskB int, d [4]complex128) {
	inA, inB := maskA < len(region), maskB < len(region)
	switch {
	case inA && inB:
		if d[0] != 1 {
			diagQuarter(region, maskA, maskB, 0, d[0])
		}
		if d[1] != 1 {
			diagQuarter(region, maskA, maskB, maskB, d[1])
		}
		if d[2] != 1 {
			diagQuarter(region, maskA, maskB, maskA, d[2])
		}
		if d[3] != 1 {
			diagQuarter(region, maskA, maskB, maskA|maskB, d[3])
		}
	case inA: // qb's bit fixed over the region
		b := 0
		if gbase&maskB != 0 {
			b = 1
		}
		tileDiag1Q(region, gbase, maskA, d[b], d[2+b])
	case inB: // qa's bit fixed over the region
		a := 0
		if gbase&maskA != 0 {
			a = 1
		}
		tileDiag1Q(region, gbase, maskB, d[2*a], d[2*a+1])
	default: // both fixed: one scalar
		sel := 0
		if gbase&maskA != 0 {
			sel |= 2
		}
		if gbase&maskB != 0 {
			sel |= 1
		}
		if dv := d[sel]; dv != 1 {
			for i := range region {
				region[i] *= dv
			}
		}
	}
}

// diagQuarter multiplies one quarter of a region's quad lattice — the
// indices congruent to off under the two masks — by a scalar.
func diagQuarter(region []complex128, maskA, maskB, off int, d complex128) {
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i := mid + off; i < mid+off+lo; i++ {
				region[i] *= d
			}
		}
	}
}

// tileMat2Q applies a 4×4 over one resident region; both masks below the
// region size. Same quad arithmetic as Apply2Q.
func tileMat2Q(region []complex128, maskA, maskB int, u *linalg.Matrix) {
	m00, m01, m02, m03 := u.At(0, 0), u.At(0, 1), u.At(0, 2), u.At(0, 3)
	m10, m11, m12, m13 := u.At(1, 0), u.At(1, 1), u.At(1, 2), u.At(1, 3)
	m20, m21, m22, m23 := u.At(2, 0), u.At(2, 1), u.At(2, 2), u.At(2, 3)
	m30, m31, m32, m33 := u.At(3, 0), u.At(3, 1), u.At(3, 2), u.At(3, 3)
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i00 := mid; i00 < mid+lo; i00++ {
				i01, i10 := i00+maskB, i00+maskA
				i11 := i10 + maskB
				a00, a01, a10, a11 := region[i00], region[i01], region[i10], region[i11]
				region[i00] = m00*a00 + m01*a01 + m02*a10 + m03*a11
				region[i01] = m10*a00 + m11*a01 + m12*a10 + m13*a11
				region[i10] = m20*a00 + m21*a01 + m22*a10 + m23*a11
				region[i11] = m30*a00 + m31*a01 + m32*a10 + m33*a11
			}
		}
	}
}

// tileCX applies CNOT (qa controls) over one resident region.
func tileCX(region []complex128, maskA, maskB int) {
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i00 := mid; i00 < mid+lo; i00++ {
				i10 := i00 + maskA
				i11 := i10 + maskB
				region[i10], region[i11] = region[i11], region[i10]
			}
		}
	}
}

// tileSwap applies SWAP over one resident region.
func tileSwap(region []complex128, maskA, maskB int) {
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i00 := mid; i00 < mid+lo; i00++ {
				i01, i10 := i00+maskB, i00+maskA
				region[i01], region[i10] = region[i10], region[i01]
			}
		}
	}
}

// tileMix applies an iSWAP-family inner-block mix over one resident region.
func tileMix(region []complex128, maskA, maskB int, diag, off complex128) {
	lo, hi := maskA, maskB
	if lo > hi {
		lo, hi = hi, lo
	}
	for outer := 0; outer < len(region); outer += hi << 1 {
		for mid := outer; mid < outer+hi; mid += lo << 1 {
			for i00 := mid; i00 < mid+lo; i00++ {
				i01, i10 := i00+maskB, i00+maskA
				a01, a10 := region[i01], region[i10]
				region[i01] = diag*a01 + off*a10
				region[i10] = off*a01 + diag*a10
			}
		}
	}
}
