package sim

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/linalg"
)

// fullUnitary3 builds the explicit 8x8 matrix of a 3-qubit circuit by
// embedding each gate with Kronecker products — an independent reference
// implementation for the statevector simulator.
func fullUnitary3(c *circuit.Circuit) (*linalg.Matrix, error) {
	u := linalg.Identity(8)
	id := linalg.Identity(2)
	swap01 := gates.SWAP().Kron(id)
	swap12 := id.Kron(gates.SWAP())
	for _, op := range c.Ops {
		g, err := circuit.Unitary(op)
		if err != nil {
			return nil, err
		}
		var full *linalg.Matrix
		if len(op.Qubits) == 1 {
			switch op.Qubits[0] {
			case 0:
				full = g.Kron(id).Kron(id)
			case 1:
				full = id.Kron(g).Kron(id)
			default:
				full = id.Kron(id).Kron(g)
			}
		} else {
			a, b := op.Qubits[0], op.Qubits[1]
			// Reduce every pair to the adjacent (0,1) embedding via
			// explicit SWAP conjugations.
			switch {
			case a == 0 && b == 1:
				full = g.Kron(id)
			case a == 1 && b == 2:
				full = id.Kron(g)
			case a == 1 && b == 0:
				full = swap01.Mul(g.Kron(id)).Mul(swap01)
			case a == 2 && b == 1:
				full = swap12.Mul(id.Kron(g)).Mul(swap12)
			case a == 0 && b == 2:
				full = swap12.Mul(g.Kron(id)).Mul(swap12)
			case a == 2 && b == 0:
				full = swap12.Mul(swap01.Mul(g.Kron(id)).Mul(swap01)).Mul(swap12)
			}
		}
		u = full.Mul(u)
	}
	return u, nil
}

// TestSimulatorAgreesWithExplicitMatrices cross-validates the statevector
// simulator against dense 8x8 matrix products on random 3-qubit circuits,
// covering every qubit-pair orientation. Both the serial and the
// forced-shard (threshold 1, 4 workers) arms of the fused/layered engine
// are checked against the same matrix reference.
func TestSimulatorAgreesWithExplicitMatrices(t *testing.T) {
	defer restoreShardOverrides()()

	rng := rand.New(rand.NewSource(71))
	pairs := [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}
	for trial := 0; trial < 20; trial++ {
		c := circuit.New(3)
		for i := 0; i < 12; i++ {
			if rng.Intn(3) == 0 {
				c.U3(rng.Intn(3), rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
			} else {
				p := pairs[rng.Intn(len(pairs))]
				c.SU4(p[0], p[1], gates.RandomSU4(rng))
			}
		}
		u, err := fullUnitary3(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, arm := range []struct {
			name      string
			threshold int64
			workers   int64
		}{
			{"serial", 1 << 30, 0},
			{"sharded", 1, 4},
		} {
			fusionShardThreshold.Store(arm.threshold)
			fusionShardWorkers.Store(arm.workers)
			// Check on every computational basis input.
			for in := 0; in < 8; in++ {
				st, err := NewBasisState(3, in)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Run(c); err != nil {
					t.Fatal(err)
				}
				for out := 0; out < 8; out++ {
					if d := cmplx.Abs(st.Amp[out] - u.At(out, in)); d > 1e-9 {
						t.Fatalf("trial %d (%s): amp[%d←%d] differs by %g", trial, arm.name, out, in, d)
					}
				}
			}
		}
	}
}
