// Package weyl implements the Cartan (KAK) decomposition machinery for
// two-qubit unitaries: the magic-basis transform, Weyl-chamber canonical
// coordinates, local-equivalence and perfect-entangler tests, the full
// KAK factorization U = e^{iφ}(K1l⊗K1r)·CAN(a,b,c)·(K2l⊗K2r), and the
// per-basis-gate decomposition counting rules used by the paper's
// co-design study (paper §2.3, §3.1 Observation 1).
package weyl

import (
	"math"

	"repro/internal/linalg"
)

// invSqrt2 is 1/√2, the magic-basis normalization.
var invSqrt2 = complex(1/math.Sqrt2, 0)

// MagicBasis returns the Makhlin magic-basis change-of-basis matrix B whose
// columns are the Bell-like states (Φ+, iΨ+, Ψ−, iΦ−):
//
//	B = 1/√2 · [[1, 0, 0, i],
//	            [0, i, 1, 0],
//	            [0, i, -1, 0],
//	            [1, 0, 0, -i]]
//
// In this basis SU(2)⊗SU(2) becomes SO(4) (real orthogonal) and the
// canonical gates CAN(a,b,c) become diagonal.
func MagicBasis() *linalg.Matrix {
	b := linalg.FromRows([][]complex128{
		{1, 0, 0, 1i},
		{0, 1i, 1, 0},
		{0, 1i, -1, 0},
		{1, 0, 0, -1i},
	})
	return b.Scale(invSqrt2)
}

// magicB and magicBdg are cached copies of the basis and its adjoint.
var magicB = MagicBasis()
var magicBdg = MagicBasis().Dagger()

// ToMagic conjugates a 4x4 operator into the magic basis: B† · u · B.
func ToMagic(u *linalg.Matrix) *linalg.Matrix {
	return magicBdg.Mul(u).Mul(magicB)
}

// FromMagic conjugates a 4x4 operator out of the magic basis: B · u · B†.
func FromMagic(u *linalg.Matrix) *linalg.Matrix {
	return magicB.Mul(u).Mul(magicBdg)
}

// GammaMatrix returns m(U) = (B†UB)ᵀ(B†UB) for the SU(4)-normalized version
// of U. Its eigenvalue spectrum {e^{2iθ_j}} is a complete local invariant of
// U; the Makhlin invariants and Weyl coordinates both derive from it.
func GammaMatrix(u *linalg.Matrix) *linalg.Matrix {
	um := ToMagic(normalizeSU4(u))
	return um.Transpose().Mul(um)
}

// normalizeSU4 rescales a 4x4 unitary to determinant one.
func normalizeSU4(u *linalg.Matrix) *linalg.Matrix {
	phase, su := su4Phase(u)
	_ = phase
	return su
}

// su4Phase splits u = e^{iα}·su with det(su) = 1, returning e^{iα} and su.
func su4Phase(u *linalg.Matrix) (complex128, *linalg.Matrix) {
	det := u.Det()
	alpha := phaseOf(det) / 4
	ph := complex(math.Cos(alpha), math.Sin(alpha))
	return ph, u.Scale(1 / ph)
}

func phaseOf(z complex128) float64 { return math.Atan2(imag(z), real(z)) }

// MakhlinInvariants returns the local invariants (G1 complex, G2 real) of a
// two-qubit unitary:
//
//	G1 = tr²(m) / 16,   G2 = (tr²(m) − tr(m²)) / 4,
//
// computed on the SU(4) normalization of U. Two unitaries are locally
// equivalent iff their (G1, G2) agree.
func MakhlinInvariants(u *linalg.Matrix) (complex128, float64) {
	m := GammaMatrix(u)
	tr := m.Trace()
	tr2 := m.Mul(m).Trace()
	g1 := tr * tr / 16
	g2 := real(tr*tr-tr2) / 4
	return g1, g2
}
