package weyl

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/gates"
	"repro/internal/linalg"
)

// SynthGate is one element of a synthesized two-qubit circuit: either the
// basis CX, or a pair of single-qubit unitaries applied as L⊗R.
type SynthGate struct {
	CX   bool
	L, R *linalg.Matrix
}

// Synthesis is an exact two-qubit circuit over {CX, 1Q} realizing a target
// unitary up to global phase, using the minimum number of CX gates given by
// the Weyl-chamber counting rule (0–3).
type Synthesis struct {
	Gates []SynthGate // in application order (first element acts first)
	NumCX int
}

// Unitary multiplies the synthesis back into a 4x4 matrix.
func (s *Synthesis) Unitary() *linalg.Matrix {
	u := linalg.Identity(4)
	cx := gates.CX()
	for _, g := range s.Gates {
		if g.CX {
			u = cx.Mul(u)
		} else {
			u = g.L.Kron(g.R).Mul(u)
		}
	}
	return u
}

// cxReversed is the CNOT with control on the second qubit, realized as
// (H⊗H)·CX·(H⊗H).
func cxReversed() *linalg.Matrix {
	h := gates.H()
	hh := h.Kron(h)
	return hh.Mul(gates.CX()).Mul(hh)
}

// vwTemplate3 is the Vatan–Williams middle circuit for three CNOTs. The
// CNOT directions alternate (Vatan–Williams Fig. 6) — three same-direction
// CNOTs with local rotations can only reach the X = π/4 face of the Weyl
// chamber, while the alternating form spans the full chamber:
//
//	T(t1,t2,t3) = CXr · (RZ(t1)⊗RY(t2)) · CX · (I⊗RY(t3)) · CXr.
func vwTemplate3(t1, t2, t3 float64) *linalg.Matrix {
	cx := gates.CX()
	r := cxReversed()
	m := cx.Mul(gates.I2().Kron(gates.RY(t3))).Mul(r)
	return r.Mul(gates.RZ(t1).Kron(gates.RY(t2))).Mul(m)
}

// vwTemplate2 is the two-CNOT middle circuit T(t1,t2) = CX·(RX(t1)⊗RY(t2))·CX,
// spanning the Z=0 plane of the chamber.
func vwTemplate2(t1, t2 float64) *linalg.Matrix {
	cx := gates.CX()
	return cx.Mul(gates.RX(t1).Kron(gates.RY(t2))).Mul(cx)
}

// affineMap is c = A·t + b fitted from probes of a template's coordinates.
type affineMap struct {
	a   *linalg.Matrix // dim x dim, real entries
	b   []float64
	dim int
	err error
}

var vw2Once sync.Once
var vw2Map affineMap

func probeAffine(dim int, base []float64, eval func(t []float64) (Coord, error)) affineMap {
	h := 0.05
	c0, err := eval(base)
	if err != nil {
		return affineMap{err: err}
	}
	toVec := func(c Coord) []float64 { return []float64{c.X, c.Y, c.Z} }
	a := linalg.New(3, dim)
	v0 := toVec(c0)
	for j := 0; j < dim; j++ {
		t := append([]float64(nil), base...)
		t[j] += h
		cj, err := eval(t)
		if err != nil {
			return affineMap{err: err}
		}
		vj := toVec(cj)
		for i := 0; i < 3; i++ {
			a.Set(i, j, complex((vj[i]-v0[i])/h, 0))
		}
	}
	b := make([]float64, 3)
	for i := 0; i < 3; i++ {
		s := v0[i]
		for j := 0; j < dim; j++ {
			s -= real(a.At(i, j)) * base[j]
		}
		b[i] = s
	}
	m := affineMap{a: a, b: b, dim: dim}
	// Verify affinity at an independent point.
	t := append([]float64(nil), base...)
	for j := range t {
		t[j] += 0.07 * float64(j+1)
	}
	cv, err := eval(t)
	if err != nil {
		return affineMap{err: err}
	}
	pred := m.apply(t)
	if math.Abs(pred[0]-cv.X) > 1e-7 || math.Abs(pred[1]-cv.Y) > 1e-7 || math.Abs(pred[2]-cv.Z) > 1e-7 {
		return affineMap{err: fmt.Errorf("weyl: template coordinate map is not affine (residual %g,%g,%g)",
			pred[0]-cv.X, pred[1]-cv.Y, pred[2]-cv.Z)}
	}
	return m
}

func (m affineMap) apply(t []float64) []float64 {
	out := make([]float64, 3)
	for i := 0; i < 3; i++ {
		s := m.b[i]
		for j := 0; j < m.dim; j++ {
			s += real(m.a.At(i, j)) * t[j]
		}
		out[i] = s
	}
	return out
}

// solve finds t with A·t + b = c (least squares via normal equations for
// dim < 3; exact solve for dim = 3).
func (m affineMap) solve(c Coord) ([]float64, error) {
	rhs := []float64{c.X - m.b[0], c.Y - m.b[1], c.Z - m.b[2]}
	if m.dim == 3 {
		x, err := m.a.Solve([]complex128{complex(rhs[0], 0), complex(rhs[1], 0), complex(rhs[2], 0)})
		if err != nil {
			return nil, err
		}
		return []float64{real(x[0]), real(x[1]), real(x[2])}, nil
	}
	// Normal equations: (AᵀA) t = Aᵀ rhs.
	at := m.a.Transpose()
	ata := at.Mul(m.a)
	arhs := at.MulVec([]complex128{complex(rhs[0], 0), complex(rhs[1], 0), complex(rhs[2], 0)})
	x, err := ata.Solve(arhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.dim)
	for i := range out {
		out[i] = real(x[i])
	}
	return out, nil
}

// solveTemplate3 finds parameters whose template class matches the target
// coordinates by damped Newton iteration on t ↦ Coordinates(T(t)). The map
// is smooth and near-affine inside a Weyl cell, so convergence is fast;
// multiple seeds cover fold boundaries.
func solveTemplate3(target Coord) ([]float64, error) {
	seeds := [][]float64{
		{0.9, 0.7, 1.1},
		{1.3, 1.1, 0.5},
		{0.5, 1.4, 0.9},
		{1.1, 0.4, 1.3},
		{0.7, 0.9, 0.6},
	}
	eval := func(t []float64) ([3]float64, error) {
		c, err := Coordinates(vwTemplate3(t[0], t[1], t[2]))
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{c.X - target.X, c.Y - target.Y, c.Z - target.Z}, nil
	}
	norm := func(r [3]float64) float64 {
		return math.Abs(r[0]) + math.Abs(r[1]) + math.Abs(r[2])
	}
	const h = 1e-6
	for _, seed := range seeds {
		t := append([]float64(nil), seed...)
		r, err := eval(t)
		if err != nil {
			continue
		}
		ok := true
		for iter := 0; iter < 60 && norm(r) > 1e-11; iter++ {
			jac := linalg.New(3, 3)
			for j := 0; j < 3; j++ {
				tp := append([]float64(nil), t...)
				tp[j] += h
				rp, err := eval(tp)
				if err != nil {
					ok = false
					break
				}
				for i := 0; i < 3; i++ {
					jac.Set(i, j, complex((rp[i]-r[i])/h, 0))
				}
			}
			if !ok {
				break
			}
			dt, err := jac.Solve([]complex128{complex(r[0], 0), complex(r[1], 0), complex(r[2], 0)})
			if err != nil {
				ok = false
				break
			}
			// Damp large steps to stay within the smooth cell.
			scale := 1.0
			mag := 0.0
			for _, d := range dt {
				mag += math.Abs(real(d))
			}
			if mag > 1.0 {
				scale = 1.0 / mag
			}
			for j := 0; j < 3; j++ {
				t[j] -= scale * real(dt[j])
			}
			if r, err = eval(t); err != nil {
				ok = false
				break
			}
		}
		if ok && norm(r) <= 1e-9 {
			return t, nil
		}
	}
	return nil, fmt.Errorf("weyl: no 3-CX template parameters found for class %v", target)
}

func vw2() affineMap {
	vw2Once.Do(func() {
		vw2Map = probeAffine(2, []float64{0.9, 0.7}, func(t []float64) (Coord, error) {
			return Coordinates(vwTemplate2(t[0], t[1]))
		})
	})
	return vw2Map
}

// SynthesizeCX produces an exact minimal-CX circuit for any two-qubit
// unitary: k CX gates (k from the Shende–Markov–Bullock rule) interleaved
// with single-qubit unitaries, equal to the target up to global phase.
// The construction double-KAKs the Vatan–Williams template so the local
// dressing is exact, and verifies the result before returning.
func SynthesizeCX(u *linalg.Matrix) (*Synthesis, error) {
	d, err := KAK(u)
	if err != nil {
		return nil, err
	}
	k := BasisCX.NumGates(d.C)
	var middle *linalg.Matrix // a circuit-realizable gate with class d.C
	var middleGates []SynthGate
	cx := gates.CX()
	switch k {
	case 0:
		s := &Synthesis{NumCX: 0, Gates: []SynthGate{
			{L: d.K1l.Mul(d.K2l), R: d.K1r.Mul(d.K2r)},
		}}
		return s, verifySynth(s, u)
	case 1:
		middle = cx
		middleGates = []SynthGate{{CX: true}}
	case 2:
		m := vw2()
		if m.err != nil {
			return nil, m.err
		}
		t, err := m.solve(d.C)
		if err != nil {
			return nil, fmt.Errorf("weyl: solving 2-CX template: %w", err)
		}
		middle = vwTemplate2(t[0], t[1])
		middleGates = []SynthGate{
			{CX: true},
			{L: gates.RX(t[0]), R: gates.RY(t[1])},
			{CX: true},
		}
	case 3:
		t, err := solveTemplate3(d.C)
		if err != nil {
			return nil, fmt.Errorf("weyl: solving 3-CX template: %w", err)
		}
		middle = vwTemplate3(t[0], t[1], t[2])
		h := gates.H()
		middleGates = []SynthGate{
			{L: h, R: h}, // CXr = (H⊗H)·CX·(H⊗H)
			{CX: true},
			{L: h, R: h},
			{L: gates.I2(), R: gates.RY(t[2])},
			{CX: true},
			{L: gates.RZ(t[0]), R: gates.RY(t[1])},
			{L: h, R: h},
			{CX: true},
			{L: h, R: h},
		}
	}
	dm, err := KAK(middle)
	if err != nil {
		return nil, fmt.Errorf("weyl: decomposing template: %w", err)
	}
	if !dm.C.ApproxEqual(d.C) {
		return nil, fmt.Errorf("weyl: template class %v does not match target %v", dm.C, d.C)
	}
	// U = p·K1·CAN·K2 and T = pm·M1·CAN·M2
	// ⇒ U = (p/pm)·(K1 M1†)·T·(M2† K2).
	pre := SynthGate{L: dm.K2l.Dagger().Mul(d.K2l), R: dm.K2r.Dagger().Mul(d.K2r)}
	post := SynthGate{L: d.K1l.Mul(dm.K1l.Dagger()), R: d.K1r.Mul(dm.K1r.Dagger())}
	s := &Synthesis{NumCX: k}
	s.Gates = append(s.Gates, pre)
	s.Gates = append(s.Gates, middleGates...)
	s.Gates = append(s.Gates, post)
	return s, verifySynth(s, u)
}

func verifySynth(s *Synthesis, u *linalg.Matrix) error {
	got := s.Unitary()
	if !got.EqualUpToPhase(u, 1e-6) {
		return fmt.Errorf("weyl: synthesis verification failed (diff %g)",
			got.GlobalPhaseAligned().MaxAbsDiff(u.GlobalPhaseAligned()))
	}
	return nil
}
