package weyl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/linalg"
)

func TestSynthesizeCXNamedGates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name   string
		u      *linalg.Matrix
		wantCX int
	}{
		{"identity", linalg.Identity(4), 0},
		{"locals", gates.RandomSU2(rng).Kron(gates.RandomSU2(rng)), 0},
		{"CX", gates.CX(), 1},
		{"CZ", gates.CZ(), 1},
		{"ZX(pi/2)", gates.ZX(math.Pi / 2), 1},
		{"iSWAP", gates.ISwap(), 2},
		{"sqrtISWAP", gates.SqrtISwap(), 2},
		{"CPhase(0.9)", gates.CPhase(0.9), 2},
		{"RZZ(0.4)", gates.RZZ(0.4), 2},
		{"SWAP", gates.SWAP(), 3},
		{"SYC", gates.SYC(), 3},
		{"sqrtSWAP", gates.Canonical(math.Pi/8, math.Pi/8, math.Pi/8), 3},
		{"sqrtSWAPdg", gates.Canonical(math.Pi/8, math.Pi/8, -math.Pi/8), 3},
	}
	for _, tc := range cases {
		s, err := SynthesizeCX(tc.u)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if s.NumCX != tc.wantCX {
			t.Errorf("%s: used %d CX, want %d", tc.name, s.NumCX, tc.wantCX)
		}
		if !s.Unitary().EqualUpToPhase(tc.u, 1e-6) {
			t.Errorf("%s: synthesized unitary differs", tc.name)
		}
	}
}

func TestSynthesizeCXHaar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		u := gates.RandomSU4(rng)
		s, err := SynthesizeCX(u)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.NumCX != 3 {
			t.Errorf("trial %d: Haar unitary used %d CX, want 3", trial, s.NumCX)
		}
		if !s.Unitary().EqualUpToPhase(u, 1e-6) {
			t.Fatalf("trial %d: synthesis mismatch", trial)
		}
		// All 1Q factors must be unitary.
		for gi, g := range s.Gates {
			if !g.CX {
				if !g.L.IsUnitary(1e-8) || !g.R.IsUnitary(1e-8) {
					t.Fatalf("trial %d gate %d: non-unitary local", trial, gi)
				}
			}
		}
	}
}

func TestSynthesizeCXPlaneTargets(t *testing.T) {
	// Z=0 classes synthesize with exactly two CX across the (x,y) plane.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		x := rng.Float64() * math.Pi / 4
		y := rng.Float64() * x // keep x ≥ y ≥ 0
		u := gates.Canonical(x, y, 0)
		s, err := SynthesizeCX(u)
		if err != nil {
			t.Fatalf("trial %d (x=%g y=%g): %v", trial, x, y, err)
		}
		if s.NumCX > 2 {
			t.Errorf("trial %d: plane target used %d CX", trial, s.NumCX)
		}
		if !s.Unitary().EqualUpToPhase(u, 1e-6) {
			t.Fatalf("trial %d: plane synthesis mismatch", trial)
		}
	}
}

func TestSynthesizeCXDressed(t *testing.T) {
	// Random local dressing must not change CX counts.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		u := gates.SWAP()
		k1 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
		k2 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
		dressed := k1.Mul(u).Mul(k2)
		s, err := SynthesizeCX(dressed)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumCX != 3 {
			t.Errorf("dressed SWAP used %d CX", s.NumCX)
		}
		if !s.Unitary().EqualUpToPhase(dressed, 1e-6) {
			t.Fatal("dressed synthesis mismatch")
		}
	}
}

func TestVWTemplateAffinity(t *testing.T) {
	if m := vw2(); m.err != nil {
		t.Fatalf("2-CX template map: %v", m.err)
	}
}

func TestSolveTemplate3KnownClasses(t *testing.T) {
	for _, target := range []Coord{
		{math.Pi / 4, math.Pi / 4, math.Pi / 4},  // SWAP corner
		{math.Pi / 4, math.Pi / 4, math.Pi / 24}, // SYC class
		{0.5, 0.3, -0.2},
		{0.7, 0.5, 0.1},
	} {
		params, err := solveTemplate3(target)
		if err != nil {
			t.Errorf("%v: %v", target, err)
			continue
		}
		c, err := Coordinates(vwTemplate3(params[0], params[1], params[2]))
		if err != nil {
			t.Fatal(err)
		}
		if !c.ApproxEqual(target) {
			t.Errorf("solved class %v != target %v", c, target)
		}
	}
}
