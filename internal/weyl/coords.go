package weyl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Coord holds the canonical Weyl-chamber coordinates (X, Y, Z) of a
// two-qubit unitary's local-equivalence class, normalized to
//
//	π/4 ≥ X ≥ Y ≥ |Z|,  with Z ≥ 0 whenever X = π/4.
//
// Landmarks: identity (0,0,0); CNOT/CZ (π/4,0,0); iSWAP (π/4,π/4,0);
// SWAP (π/4,π/4,π/4); √iSWAP (π/8,π/8,0); √SWAP (π/8,π/8,π/8);
// √SWAP† (π/8,π/8,−π/8); n√iSWAP (π/4n, π/4n, 0).
type Coord struct {
	X, Y, Z float64
}

// coordTol is the tolerance for class-membership comparisons. Coordinates
// are produced by eigenvalue computations accurate to ~1e-10; 1e-7 gives a
// comfortable margin without conflating distinct classes.
const coordTol = 1e-7

// String renders the coordinates in units of π.
func (c Coord) String() string {
	return fmt.Sprintf("(%.6fπ, %.6fπ, %.6fπ)", c.X/math.Pi, c.Y/math.Pi, c.Z/math.Pi)
}

// ApproxEqual reports whether two coordinate triples agree within coordTol.
func (c Coord) ApproxEqual(d Coord) bool {
	return math.Abs(c.X-d.X) < coordTol && math.Abs(c.Y-d.Y) < coordTol && math.Abs(c.Z-d.Z) < coordTol
}

// IsIdentityClass reports whether c is the local (non-entangling) class.
func (c Coord) IsIdentityClass() bool { return c.ApproxEqual(Coord{}) }

// Known class landmarks.
var (
	CoordCNOT      = Coord{math.Pi / 4, 0, 0}
	CoordISwap     = Coord{math.Pi / 4, math.Pi / 4, 0}
	CoordSWAP      = Coord{math.Pi / 4, math.Pi / 4, math.Pi / 4}
	CoordSqrtISwap = Coord{math.Pi / 8, math.Pi / 8, 0}
)

// CoordNRootISwap returns the class of the n-th root of iSWAP.
func CoordNRootISwap(n int) Coord {
	return Coord{math.Pi / (4 * float64(n)), math.Pi / (4 * float64(n)), 0}
}

// Coordinates computes the canonical Weyl-chamber coordinates of a 4x4
// unitary. It extracts the spectrum {e^{2iθ_j}} of the magic-basis Gamma
// matrix via its characteristic polynomial (robust against degeneracies),
// converts angles to interaction coefficients, and canonicalizes into the
// Weyl chamber.
func Coordinates(u *linalg.Matrix) (Coord, error) {
	if u.Rows != 4 || u.Cols != 4 {
		return Coord{}, fmt.Errorf("weyl: Coordinates requires a 4x4 matrix")
	}
	if !u.IsUnitary(1e-8) {
		return Coord{}, fmt.Errorf("weyl: Coordinates requires a unitary matrix")
	}
	m := GammaMatrix(u)
	vals, err := gammaEigenvalues(m)
	if err != nil {
		return Coord{}, fmt.Errorf("weyl: eigenvalues of gamma matrix: %w", err)
	}
	// θ_j = arg(λ_j)/2 for three eigenvalues; the fourth is pinned by
	// det(m)=1 (Σθ ≡ 0 mod 2π). Branch and ordering ambiguities are
	// absorbed by canonicalization.
	th0 := phaseOf(vals[0]) / 2
	th1 := phaseOf(vals[1]) / 2
	th3 := phaseOf(vals[2]) / 2
	a := (th0 + th1) / 2
	b := (th1 + th3) / 2
	c := (th0 + th3) / 2
	coord, _ := canonicalize(a, b, c, nil)
	return coord, nil
}

// gammaEigenvalues returns the spectrum of the (symmetric unitary) gamma
// matrix. The primary path diagonalizes via the commuting real/imaginary
// parts, which keeps full accuracy on degenerate spectra (Cliffords have
// double and quadruple eigenvalues, where polynomial root-finding loses
// half the digits). The characteristic polynomial is the fallback.
func gammaEigenvalues(m *linalg.Matrix) ([]complex128, error) {
	if p, err := linalg.SimultaneousDiagonalize(m.RealPart(), m.ImagPart()); err == nil {
		d := p.Transpose().Mul(m).Mul(p)
		return []complex128{d.At(0, 0), d.At(1, 1), d.At(2, 2), d.At(3, 3)}, nil
	}
	return linalg.Eigenvalues4(m)
}

// weylOp receives the canonicalization moves so the KAK decomposition can
// mirror them onto its local gates. A nil tracker skips the bookkeeping.
type weylOp interface {
	shift(axis int, dir int) // coordinate axis ± π/2 (dir = ±1)
	swapAxes(i, j int)       // exchange two coordinate axes
	flipSigns(i, j int)      // negate two coordinate axes
}

// canonicalize maps an arbitrary interaction triple into the Weyl chamber.
// It reports the canonical coordinates and the number of moves applied.
func canonicalize(a, b, c float64, ops weylOp) (Coord, int) {
	v := [3]float64{a, b, c}
	moves := 0
	do := func(f func()) {
		moves++
		if ops != nil {
			f()
		}
	}
	// 1. Reduce each coordinate into (−π/4, π/4] by π/2 shifts.
	for i := 0; i < 3; i++ {
		for v[i] > math.Pi/4+1e-12 {
			v[i] -= math.Pi / 2
			i := i
			do(func() { ops.shift(i, -1) })
		}
		for v[i] <= -math.Pi/4-1e-12 {
			v[i] += math.Pi / 2
			i := i
			do(func() { ops.shift(i, +1) })
		}
		// Snap the open boundary: −π/4 is equivalent to +π/4 by a shift.
		if math.Abs(v[i]+math.Pi/4) < 1e-12 {
			v[i] += math.Pi / 2
			i := i
			do(func() { ops.shift(i, +1) })
		}
	}
	// 2. Sort descending by |value| with adjacent transpositions.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 2; i++ {
			if math.Abs(v[i]) < math.Abs(v[i+1])-1e-15 {
				v[i], v[i+1] = v[i+1], v[i]
				i := i
				do(func() { ops.swapAxes(i, i+1) })
			}
		}
	}
	// 3. Make the two largest coordinates non-negative with pair flips.
	switch {
	case v[0] < -1e-15 && v[1] < -1e-15:
		v[0], v[1] = -v[0], -v[1]
		do(func() { ops.flipSigns(0, 1) })
	case v[0] < -1e-15:
		v[0], v[2] = -v[0], -v[2]
		do(func() { ops.flipSigns(0, 2) })
	case v[1] < -1e-15:
		v[1], v[2] = -v[1], -v[2]
		do(func() { ops.flipSigns(1, 2) })
	}
	// 4. Boundary rule: at X = π/4, Z and −Z are the same class; take Z ≥ 0.
	if math.Abs(v[0]-math.Pi/4) < 1e-9 && v[2] < -1e-15 {
		// Shift X down by π/2 (to −π/4) then flip (X, Z).
		v[0] -= math.Pi / 2
		do(func() { ops.shift(0, -1) })
		v[0], v[2] = -v[0], -v[2]
		do(func() { ops.flipSigns(0, 2) })
	}
	// Clean numeric negative zeros.
	for i := range v {
		if v[i] == 0 {
			v[i] = 0
		}
	}
	return Coord{v[0], v[1], v[2]}, moves
}

// LocallyEquivalent reports whether two 4x4 unitaries differ only by
// single-qubit gates and global phase.
func LocallyEquivalent(u, v *linalg.Matrix) (bool, error) {
	cu, err := Coordinates(u)
	if err != nil {
		return false, err
	}
	cv, err := Coordinates(v)
	if err != nil {
		return false, err
	}
	return cu.ApproxEqual(cv), nil
}

// IsPerfectEntangler reports whether a unitary with coordinates c can map
// some product state to a maximally entangled state. The criterion is the
// Makhlin/Kraus–Cirac condition: the convex hull of the gamma-matrix
// eigenvalues {e^{2iθ_j}} must contain the origin. For unit-circle points
// that is equivalent to no angular gap exceeding π.
func (c Coord) IsPerfectEntangler() bool {
	// Reconstruct the four phase angles 2θ_j from the coordinates.
	thetas := []float64{
		c.X - c.Y + c.Z,
		c.X + c.Y - c.Z,
		-c.X - c.Y - c.Z,
		-c.X + c.Y + c.Z,
	}
	angles := make([]float64, len(thetas))
	for i, t := range thetas {
		a := math.Mod(2*t, 2*math.Pi)
		if a < 0 {
			a += 2 * math.Pi
		}
		angles[i] = a
	}
	sort.Float64s(angles)
	maxGap := 2*math.Pi - angles[len(angles)-1] + angles[0]
	for i := 1; i < len(angles); i++ {
		if g := angles[i] - angles[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap <= math.Pi+1e-6
}
