package weyl

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/linalg"
)

func TestMagicBasisUnitary(t *testing.T) {
	if !MagicBasis().IsUnitary(1e-14) {
		t.Fatal("magic basis not unitary")
	}
}

func TestLocalsAreRealInMagicBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		k := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
		km := ToMagic(k)
		if km.MaxImagAbs() > 1e-10 {
			t.Fatalf("trial %d: SU(2)⊗SU(2) not real in magic basis (%g)", trial, km.MaxImagAbs())
		}
		if !km.IsUnitary(1e-10) {
			t.Fatalf("trial %d: magic transform broke unitarity", trial)
		}
	}
}

func TestCanonicalDiagonalInMagicBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		cm := ToMagic(gates.Canonical(a, b, c))
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j && cmplx.Abs(cm.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: CAN not diagonal in magic basis at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestCoordinatesKnownGates(t *testing.T) {
	q := math.Pi / 4
	cases := []struct {
		name string
		u    *linalg.Matrix
		want Coord
	}{
		{"I", linalg.Identity(4), Coord{0, 0, 0}},
		{"CX", gates.CX(), Coord{q, 0, 0}},
		{"CZ", gates.CZ(), Coord{q, 0, 0}},
		{"SWAP", gates.SWAP(), Coord{q, q, q}},
		{"iSWAP", gates.ISwap(), Coord{q, q, 0}},
		{"sqrtISWAP", gates.SqrtISwap(), Coord{q / 2, q / 2, 0}},
		{"3rdRootISWAP", gates.NRootISwap(3), Coord{q / 3, q / 3, 0}},
		{"7thRootISWAP", gates.NRootISwap(7), Coord{q / 7, q / 7, 0}},
		{"ZX(pi/2)", gates.ZX(math.Pi / 2), Coord{q, 0, 0}},
		{"CPhase(pi)", gates.CPhase(math.Pi), Coord{q, 0, 0}},
		{"CPhase(pi/2)", gates.CPhase(math.Pi / 2), Coord{q / 2, 0, 0}},
		{"RZZ(pi/2)", gates.RZZ(math.Pi / 2), Coord{q, 0, 0}}, // RZZ(π/2) ~ CZ ~ CNOT
		{"RZZ(pi/4)", gates.RZZ(math.Pi / 4), Coord{q / 2, 0, 0}},
		{"SYC", gates.SYC(), Coord{q, q, math.Pi / 24}},
	}
	for _, tc := range cases {
		got, err := Coordinates(tc.u)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !almostEq(got.X, tc.want.X) || !almostEq(got.Y, tc.want.Y) || !almostEq(got.Z, tc.want.Z) {
			t.Errorf("%s: coords %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCoordinatesLocalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		u := gates.RandomSU4(rng)
		c1, err := Coordinates(u)
		if err != nil {
			t.Fatal(err)
		}
		k1 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
		k2 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
		c2, err := Coordinates(k1.Mul(u).Mul(k2))
		if err != nil {
			t.Fatal(err)
		}
		if !c1.ApproxEqual(c2) {
			t.Fatalf("trial %d: coords changed under locals: %v vs %v", trial, c1, c2)
		}
	}
}

func TestCoordinatesOfCanonicalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		a := (rng.Float64() - 0.5) * 2 * math.Pi
		b := (rng.Float64() - 0.5) * 2 * math.Pi
		c := (rng.Float64() - 0.5) * 2 * math.Pi
		want, _ := canonicalize(a, b, c, nil)
		got, err := Coordinates(gates.Canonical(a, b, c))
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(want) {
			t.Fatalf("trial %d: CAN(%g,%g,%g): got %v want %v", trial, a, b, c, got, want)
		}
	}
}

func TestCanonicalChamberInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := (rng.Float64() - 0.5) * 4 * math.Pi
		b := (rng.Float64() - 0.5) * 4 * math.Pi
		c := (rng.Float64() - 0.5) * 4 * math.Pi
		v, _ := canonicalize(a, b, c, nil)
		if !(v.X <= math.Pi/4+1e-9 && v.X >= v.Y-1e-12 && v.Y >= math.Abs(v.Z)-1e-12) {
			t.Fatalf("trial %d: %v not in chamber", trial, v)
		}
		if math.Abs(v.X-math.Pi/4) < 1e-10 && v.Z < -1e-10 {
			t.Fatalf("trial %d: boundary rule violated: %v", trial, v)
		}
	}
}

func TestKAKReconstructionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		u := gates.RandomSU4(rng)
		d, err := KAK(u)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if diff := d.Reconstruct().MaxAbsDiff(u); diff > 1e-7 {
			t.Fatalf("trial %d: reconstruction diff %g", trial, diff)
		}
		// Canonical coordinates must match the eigenvalue-only path.
		want, err := Coordinates(u)
		if err != nil {
			t.Fatal(err)
		}
		if !d.C.ApproxEqual(want) {
			t.Fatalf("trial %d: KAK coords %v != Coordinates %v", trial, d.C, want)
		}
	}
}

func TestKAKNamedGates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string]*linalg.Matrix{
		"I":          linalg.Identity(4),
		"CX":         gates.CX(),
		"CZ":         gates.CZ(),
		"SWAP":       gates.SWAP(),
		"iSWAP":      gates.ISwap(),
		"sqrtISWAP":  gates.SqrtISwap(),
		"SYC":        gates.SYC(),
		"ZX":         gates.ZX(math.Pi / 2),
		"CPhase":     gates.CPhase(0.37),
		"RZZ":        gates.RZZ(1.1),
		"locals":     gates.RandomSU2(rng).Kron(gates.RandomSU2(rng)),
		"5thISWAP":   gates.NRootISwap(5),
		"phased SU4": gates.RandomSU4(rng).Scale(cmplx.Exp(complex(0, 0.83))),
	}
	for name, u := range cases {
		d, err := KAK(u)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if diff := d.Reconstruct().MaxAbsDiff(u); diff > 1e-7 {
			t.Errorf("%s: reconstruction diff %g", name, diff)
		}
		for fname, f := range map[string]*linalg.Matrix{"K1l": d.K1l, "K1r": d.K1r, "K2l": d.K2l, "K2r": d.K2r} {
			if !f.IsUnitary(1e-8) {
				t.Errorf("%s: factor %s not unitary", name, fname)
			}
		}
	}
}

func TestSplitTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		a, b := gates.RandomSU2(rng), gates.RandomSU2(rng)
		phase := cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
		k := a.Kron(b).Scale(phase)
		l, r, ph, err := SplitTensor(k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !l.Kron(r).Scale(ph).EqualWithin(k, 1e-9) {
			t.Fatalf("trial %d: split does not recompose", trial)
		}
	}
	if _, _, _, err := SplitTensor(gates.CX()); err == nil {
		t.Fatal("SplitTensor accepted an entangling gate")
	}
}

func TestPerfectEntangler(t *testing.T) {
	cases := []struct {
		name string
		u    *linalg.Matrix
		want bool
	}{
		{"I", linalg.Identity(4), false},
		{"CX", gates.CX(), true},
		{"iSWAP", gates.ISwap(), true},
		{"SWAP", gates.SWAP(), false},
		{"sqrtISWAP", gates.SqrtISwap(), true}, // boundary PE (paper §6.3)
		{"4thISWAP", gates.NRootISwap(4), false},
		{"3rdISWAP", gates.NRootISwap(3), false},
		// The Sycamore gate's conditional phase pushes it just outside the
		// perfect-entangler polytope (its class is (π/4, π/4, π/12); the
		// iSWAP point on the PE boundary is (π/4, π/4, 0)).
		{"SYC", gates.SYC(), false},
		{"sqrtSWAP", gates.Canonical(math.Pi/8, math.Pi/8, math.Pi/8), true},
	}
	for _, tc := range cases {
		c, err := Coordinates(tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.IsPerfectEntangler(); got != tc.want {
			t.Errorf("%s: IsPerfectEntangler = %v, want %v (coords %v)", tc.name, got, tc.want, c)
		}
	}
}

func TestMakhlinInvariants(t *testing.T) {
	cases := []struct {
		name string
		u    *linalg.Matrix
		g1   complex128
		g2   float64
	}{
		{"I", linalg.Identity(4), 1, 3},
		{"CX", gates.CX(), 0, 1},
		{"iSWAP", gates.ISwap(), 0, -1},
		{"SWAP", gates.SWAP(), -1, -3},
	}
	for _, tc := range cases {
		g1, g2 := MakhlinInvariants(tc.u)
		if cmplx.Abs(g1-tc.g1) > 1e-9 || math.Abs(g2-tc.g2) > 1e-9 {
			t.Errorf("%s: invariants (%v, %v), want (%v, %v)", tc.name, g1, g2, tc.g1, tc.g2)
		}
	}
	// Invariance under locals.
	rng := rand.New(rand.NewSource(9))
	u := gates.RandomSU4(rng)
	k := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
	a1, a2 := MakhlinInvariants(u)
	b1, b2 := MakhlinInvariants(k.Mul(u))
	if cmplx.Abs(a1-b1) > 1e-8 || math.Abs(a2-b2) > 1e-8 {
		t.Error("Makhlin invariants changed under local gates")
	}
}

func TestLocallyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := gates.RandomSU4(rng)
	k1 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
	k2 := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
	eq, err := LocallyEquivalent(u, k1.Mul(u).Mul(k2))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("dressed unitary not recognized as equivalent")
	}
	eq, err = LocallyEquivalent(gates.CX(), gates.SWAP())
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("CX and SWAP reported equivalent")
	}
	// CZ and CX are locally equivalent (conjugate by H on target).
	eq, _ = LocallyEquivalent(gates.CX(), gates.CZ())
	if !eq {
		t.Fatal("CX and CZ should be locally equivalent")
	}
	// √SWAP and √SWAP† are NOT locally equivalent (chiral classes).
	sswap := gates.Canonical(math.Pi/8, math.Pi/8, math.Pi/8)
	sswapDg := gates.Canonical(math.Pi/8, math.Pi/8, -math.Pi/8)
	eq, _ = LocallyEquivalent(sswap, sswapDg)
	if eq {
		t.Fatal("√SWAP and √SWAP† must be distinct classes")
	}
}

func TestBasisCounts(t *testing.T) {
	q := math.Pi / 4
	id := Coord{}
	cnot := Coord{q, 0, 0}
	iswap := Coord{q, q, 0}
	swap := Coord{q, q, q}
	sqisw := Coord{q / 2, q / 2, 0}
	ssw := Coord{q / 2, q / 2, q / 2} // √SWAP
	cp := Coord{q / 2, 0, 0}          // CPhase(π/2)

	type tc struct {
		b    Basis
		c    Coord
		want int
	}
	cases := []tc{
		{BasisCX, id, 0}, {BasisCX, cnot, 1}, {BasisCX, iswap, 2}, {BasisCX, swap, 3},
		{BasisCX, sqisw, 2}, {BasisCX, cp, 2}, {BasisCX, ssw, 3},
		{BasisSqrtISwap, id, 0}, {BasisSqrtISwap, sqisw, 1}, {BasisSqrtISwap, cnot, 2},
		{BasisSqrtISwap, iswap, 2}, {BasisSqrtISwap, swap, 3}, {BasisSqrtISwap, ssw, 3},
		{BasisSqrtISwap, cp, 2},
		{BasisISwap, iswap, 1}, {BasisISwap, cnot, 2}, {BasisISwap, swap, 3},
		{BasisSYC, id, 0}, {BasisSYC, cnot, 4}, {BasisSYC, swap, 4},
	}
	for _, c := range cases {
		if got := c.b.NumGates(c.c); got != c.want {
			t.Errorf("%v.NumGates(%v) = %d, want %d", c.b, c.c, got, c.want)
		}
	}
	// SYC recognizes its own class.
	sc, err := Coordinates(gates.SYC())
	if err != nil {
		t.Fatal(err)
	}
	if got := BasisSYC.NumGates(sc); got != 1 {
		t.Errorf("SYC self-count = %d, want 1", got)
	}
}

func TestHaarFractionTwoSqrtISwap(t *testing.T) {
	// Paper [6]: ~79% of Haar-random two-qubit unitaries need only two
	// √iSWAPs, while (almost) all need three CNOTs.
	rng := rand.New(rand.NewSource(11))
	const n = 400
	two := 0
	threeCX := 0
	for i := 0; i < n; i++ {
		u := gates.RandomSU4(rng)
		c, err := Coordinates(u)
		if err != nil {
			t.Fatal(err)
		}
		if BasisSqrtISwap.NumGates(c) == 2 {
			two++
		}
		if BasisCX.NumGates(c) == 3 {
			threeCX++
		}
	}
	frac := float64(two) / n
	if frac < 0.70 || frac > 0.88 {
		t.Errorf("2-√iSWAP Haar fraction = %.3f, want ≈0.79", frac)
	}
	if threeCX != n {
		t.Errorf("Haar unitaries needing 3 CNOTs = %d/%d, want all", threeCX, n)
	}
}

func TestBasisDurations(t *testing.T) {
	if BasisCX.Duration() != 1.0 || BasisSYC.Duration() != 1.0 || BasisISwap.Duration() != 1.0 {
		t.Error("full-pulse bases must have duration 1.0")
	}
	if BasisSqrtISwap.Duration() != 0.5 {
		t.Error("√iSWAP duration must be 0.5 (half an iSWAP pulse)")
	}
}

func TestCoordinatesRejectsBadInput(t *testing.T) {
	if _, err := Coordinates(linalg.Identity(3)); err == nil {
		t.Error("accepted 3x3")
	}
	notU := linalg.New(4, 4)
	notU.Set(0, 0, 2)
	if _, err := Coordinates(notU); err == nil {
		t.Error("accepted non-unitary")
	}
}
