package weyl

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/gates"
	"repro/internal/linalg"
)

// Basis identifies a hardware-native two-qubit basis gate. The paper's
// co-design study compares three modulator/basis pairs (Observation 1):
// CR→CNOT (IBM Heavy-Hex), FSIM→SYC (Google Square-Lattice), and
// SNAIL→√iSWAP (this paper's proposal). iSWAP is included for the SNAIL
// router's full-exchange pulses.
type Basis int

const (
	// BasisCX is the CNOT basis realized by IBM's cross-resonance modulator.
	BasisCX Basis = iota
	// BasisSqrtISwap is the √iSWAP basis native to the SNAIL modulator.
	BasisSqrtISwap
	// BasisSYC is Google's Sycamore gate, FSIM(π/2, π/6).
	BasisSYC
	// BasisISwap is the full iSWAP pulse.
	BasisISwap
)

// String returns the display name used in the paper's figure legends.
func (b Basis) String() string {
	switch b {
	case BasisCX:
		return "CX"
	case BasisSqrtISwap:
		return "sqrtISWAP"
	case BasisSYC:
		return "SYC"
	case BasisISwap:
		return "iSWAP"
	default:
		return fmt.Sprintf("Basis(%d)", int(b))
	}
}

// Gate returns the 4x4 unitary of the basis gate.
func (b Basis) Gate() *linalg.Matrix {
	switch b {
	case BasisCX:
		return gates.CX()
	case BasisSqrtISwap:
		return gates.SqrtISwap()
	case BasisSYC:
		return gates.SYC()
	case BasisISwap:
		return gates.ISwap()
	default:
		panic("weyl: unknown basis")
	}
}

// Duration returns the relative pulse length of one basis-gate application,
// normalized so a full iSWAP exchange pulse is 1.0. The SNAIL realizes
// n√iSWAP with proportionally scaled pulse lengths (paper §4.1), so √iSWAP
// costs 0.5; CR and SYC pulses are one full pulse each (paper §4.2
// normalization: evaluation is in units of pulses).
func (b Basis) Duration() float64 {
	if b == BasisSqrtISwap {
		return 0.5
	}
	return 1.0
}

var sycCoordOnce sync.Once
var sycCoord Coord

// Coord returns the Weyl-chamber class of the basis gate itself.
func (b Basis) Coord() Coord {
	switch b {
	case BasisCX:
		return CoordCNOT
	case BasisSqrtISwap:
		return CoordSqrtISwap
	case BasisISwap:
		return CoordISwap
	case BasisSYC:
		sycCoordOnce.Do(func() {
			c, err := Coordinates(gates.SYC())
			if err != nil {
				panic("weyl: SYC coordinates: " + err.Error())
			}
			sycCoord = c
		})
		return sycCoord
	default:
		panic("weyl: unknown basis")
	}
}

// NumGates returns how many applications of the basis gate (interleaved with
// arbitrary single-qubit gates) are required to implement a two-qubit
// unitary of class c exactly, using the best known analytical decomposition:
//
//   - CX and iSWAP (supercontrolled): 2 applications cover exactly the Z=0
//     plane of the Weyl chamber, 3 cover everything
//     (Shende–Markov–Bullock).
//   - √iSWAP: 2 applications cover the region X ≥ Y + |Z| (≈79% of
//     Haar-random unitaries), 3 cover everything (Huang et al., paper [6]).
//   - SYC: the best known analytical decomposition of an arbitrary unitary
//     uses exactly 4 applications (Crooks, paper [39]).
func (b Basis) NumGates(c Coord) int {
	if c.IsIdentityClass() {
		return 0
	}
	if c.ApproxEqual(b.Coord()) {
		return 1
	}
	switch b {
	case BasisCX, BasisISwap:
		if math.Abs(c.Z) < coordTol {
			return 2
		}
		return 3
	case BasisSqrtISwap:
		if c.X >= c.Y+math.Abs(c.Z)-coordTol {
			return 2
		}
		return 3
	case BasisSYC:
		return 4
	default:
		panic("weyl: unknown basis")
	}
}

// NumGatesFor computes the basis-count for an explicit 4x4 unitary.
func (b Basis) NumGatesFor(u *linalg.Matrix) (int, error) {
	c, err := Coordinates(u)
	if err != nil {
		return 0, err
	}
	return b.NumGates(c), nil
}

// AllBases lists the bases in the order used by the paper's comparisons.
func AllBases() []Basis {
	return []Basis{BasisCX, BasisSqrtISwap, BasisSYC, BasisISwap}
}
