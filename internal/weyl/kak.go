package weyl

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/gates"
	"repro/internal/linalg"
)

// Decomposition is a full Cartan (KAK) factorization of a two-qubit unitary:
//
//	U = Phase · (K1l ⊗ K1r) · CAN(C.X, C.Y, C.Z) · (K2l ⊗ K2r)
//
// where CAN(a,b,c) = exp(i(a·XX + b·YY + c·ZZ)) and C lies in the canonical
// Weyl chamber (see Coord). The K factors are 2x2 unitaries.
type Decomposition struct {
	K1l, K1r *linalg.Matrix
	K2l, K2r *linalg.Matrix
	C        Coord
	Phase    complex128
}

// Reconstruct multiplies the factors back into a 4x4 unitary.
func (d *Decomposition) Reconstruct() *linalg.Matrix {
	can := gates.Canonical(d.C.X, d.C.Y, d.C.Z)
	u := d.K1l.Kron(d.K1r).Mul(can).Mul(d.K2l.Kron(d.K2r))
	return u.Scale(d.Phase)
}

// kakAttempts bounds the random-local perturbation retries used when the
// simultaneous diagonalization hits an ill-conditioned degeneracy.
const kakAttempts = 8

// KAK computes the Cartan decomposition of a 4x4 unitary with canonical
// Weyl-chamber coordinates. The factorization is exact to ~1e-9; a
// reconstruction check is performed before returning.
func KAK(u *linalg.Matrix) (*Decomposition, error) {
	if u.Rows != 4 || u.Cols != 4 {
		return nil, fmt.Errorf("weyl: KAK requires a 4x4 matrix")
	}
	if !u.IsUnitary(1e-8) {
		return nil, fmt.Errorf("weyl: KAK requires a unitary matrix")
	}
	// Degenerate gamma-matrix spectra (Cliffords and friends) can make the
	// simultaneous diagonalization numerically fragile. Multiplying by a
	// random local unitary moves the spectrum while leaving the class
	// unchanged; the extra factor is peeled off the K1 locals afterwards.
	rng := rand.New(rand.NewSource(0x5ea1))
	var lastErr error
	for attempt := 0; attempt < kakAttempts; attempt++ {
		var rl, rr *linalg.Matrix
		target := u
		if attempt > 0 {
			rl, rr = gates.RandomSU2(rng), gates.RandomSU2(rng)
			target = rl.Kron(rr).Mul(u)
		}
		d, err := kakOnce(target)
		if err != nil {
			lastErr = err
			continue
		}
		if attempt > 0 {
			d.K1l = rl.Dagger().Mul(d.K1l)
			d.K1r = rr.Dagger().Mul(d.K1r)
		}
		if recon := d.Reconstruct(); recon.MaxAbsDiff(u) > 1e-7 {
			lastErr = fmt.Errorf("weyl: KAK reconstruction error %g", recon.MaxAbsDiff(u))
			continue
		}
		return d, nil
	}
	return nil, fmt.Errorf("weyl: KAK failed after %d attempts: %w", kakAttempts, lastErr)
}

func kakOnce(u *linalg.Matrix) (*Decomposition, error) {
	phase, su := su4Phase(u)
	um := ToMagic(su)
	m := um.Transpose().Mul(um)

	p, err := linalg.SimultaneousDiagonalize(m.RealPart(), m.ImagPart())
	if err != nil {
		return nil, fmt.Errorf("weyl: diagonalizing gamma matrix: %w", err)
	}
	// Force det(P) = +1 so O2 = Pᵀ lies in SO(4).
	if real(p.Det()) < 0 {
		for r := 0; r < 4; r++ {
			p.Set(r, 0, -p.At(r, 0))
		}
	}
	d := p.Transpose().Mul(m).Mul(p)
	// Angles θ_j with the determinant constraint fixing position 2's branch.
	th0 := phaseOf(d.At(0, 0)) / 2
	th1 := phaseOf(d.At(1, 1)) / 2
	th3 := phaseOf(d.At(3, 3)) / 2
	th2 := -(th0 + th1 + th3)
	daInv := linalg.Diag(
		cmplx.Exp(complex(0, -th0)),
		cmplx.Exp(complex(0, -th1)),
		cmplx.Exp(complex(0, -th2)),
		cmplx.Exp(complex(0, -th3)),
	)
	o2 := p.Transpose()
	o1 := um.Mul(p).Mul(daInv)
	if o1.MaxImagAbs() > 1e-6 {
		return nil, fmt.Errorf("weyl: left orthogonal factor not real (%g)", o1.MaxImagAbs())
	}
	k1 := FromMagic(o1.RealPart())
	k2 := FromMagic(o2)
	k1l, k1r, ph1, err := SplitTensor(k1)
	if err != nil {
		return nil, fmt.Errorf("weyl: splitting K1: %w", err)
	}
	k2l, k2r, ph2, err := SplitTensor(k2)
	if err != nil {
		return nil, fmt.Errorf("weyl: splitting K2: %w", err)
	}
	dec := &Decomposition{
		K1l: k1l, K1r: k1r,
		K2l: k2l, K2r: k2r,
		Phase: phase * ph1 * ph2,
	}
	// Interaction coefficients for the diagonal ordering of da.
	a := (th0 + th1) / 2
	b := (th1 + th3) / 2
	c := (th0 + th3) / 2
	dec.C, _ = canonicalize(a, b, c, (*kakTracker)(dec))
	return dec, nil
}

// kakTracker applies Weyl-chamber canonicalization moves to the local gates
// of a Decomposition, keeping U = Phase·(K1)·CAN·(K2) exact at every step.
type kakTracker Decomposition

// pauli returns the single-qubit operator whose two-qubit conjugation flips
// the signs of the two interaction axes other than `axis`.
func pauliFor(axis int) *linalg.Matrix {
	switch axis {
	case 0:
		return gates.X()
	case 1:
		return gates.Y()
	default:
		return gates.Z()
	}
}

// shift implements CAN(...v[axis]...) = (±i)·CAN(...v[axis]∓π/2...)·(P⊗P)
// where P is the Pauli along the axis: exp(i(π/2)PP) = i·P⊗P.
func (t *kakTracker) shift(axis, dir int) {
	p := pauliFor(axis)
	t.K2l = p.Mul(t.K2l)
	t.K2r = p.Mul(t.K2r)
	if dir < 0 {
		t.Phase *= 1i // removed exp(+iπ/2 PP)
	} else {
		t.Phase *= -1i
	}
}

// swapAxes conjugates by the 1Q Clifford that exchanges the two Pauli axes:
// CAN(permuted) = (V⊗V)·CAN·(V†⊗V†)  ⇒  CAN = (V†⊗V†)·CAN(permuted)·(V⊗V).
func (t *kakTracker) swapAxes(i, j int) {
	var v *linalg.Matrix
	switch {
	case (i == 0 && j == 1) || (i == 1 && j == 0):
		v = gates.S() // S: X→Y, Y→−X, fixes Z ⇒ swaps XX/YY
	case (i == 1 && j == 2) || (i == 2 && j == 1):
		v = gates.RX(math.Pi / 2) // maps Y→Z, Z→−Y ⇒ swaps YY/ZZ
	default:
		v = gates.RY(math.Pi / 2) // maps Z→X, X→−Z ⇒ swaps XX/ZZ
	}
	vd := v.Dagger()
	t.K1l = t.K1l.Mul(vd)
	t.K1r = t.K1r.Mul(vd)
	t.K2l = v.Mul(t.K2l)
	t.K2r = v.Mul(t.K2r)
}

// flipSigns conjugates by (P⊗I) where P is the Pauli of the axis *not*
// flipped: (P⊗I)·CAN(a,b,c)·(P⊗I) negates the other two coefficients.
func (t *kakTracker) flipSigns(i, j int) {
	axis := 3 - i - j // the remaining axis
	p := pauliFor(axis)
	t.K1l = t.K1l.Mul(p)
	t.K2l = p.Mul(t.K2l)
}

// SplitTensor factors a 4x4 operator K that is (up to global phase) a tensor
// product of 2x2 unitaries: K = phase · (l ⊗ r), with the factors normalized
// to determinant 1. Returns an error if K is not a product operator.
func SplitTensor(k *linalg.Matrix) (l, r *linalg.Matrix, phase complex128, err error) {
	if k.Rows != 4 || k.Cols != 4 {
		return nil, nil, 0, fmt.Errorf("weyl: SplitTensor requires 4x4")
	}
	// Pick the 2x2 block with the largest norm; it is proportional to r.
	var bi, bj int
	var bestNorm float64
	block := func(i, j int) *linalg.Matrix {
		b := linalg.New(2, 2)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				b.Set(r, c, k.At(2*i+r, 2*j+c))
			}
		}
		return b
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if n := block(i, j).FrobeniusNorm(); n > bestNorm {
				bestNorm, bi, bj = n, i, j
			}
		}
	}
	if bestNorm < 1e-9 {
		return nil, nil, 0, fmt.Errorf("weyl: SplitTensor on zero matrix")
	}
	r0 := block(bi, bj)
	det := r0.Det()
	if cmplx.Abs(det) < 1e-12 {
		return nil, nil, 0, fmt.Errorf("weyl: SplitTensor block is singular; not a product operator")
	}
	sq := cmplx.Sqrt(det)
	r = r0.Scale(1 / sq)
	// l entries follow from l_ij = tr(r† · block(i,j)) / 2 for unitary r.
	l = linalg.New(2, 2)
	rd := r.Dagger()
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			l.Set(i, j, rd.Mul(block(i, j)).Trace()/2)
		}
	}
	dl := l.Det()
	if cmplx.Abs(dl) < 1e-12 {
		return nil, nil, 0, fmt.Errorf("weyl: SplitTensor left factor singular")
	}
	sl := cmplx.Sqrt(dl)
	l = l.Scale(1 / sl)
	// Residual global phase.
	prod := l.Kron(r)
	g := prod.HSInner(k)
	phase = g / complex(cmplx.Abs(g), 0)
	if !prod.Scale(phase).EqualWithin(k, 1e-7) {
		return nil, nil, 0, fmt.Errorf("weyl: SplitTensor: input is not a tensor product (residual %g)",
			prod.Scale(phase).MaxAbsDiff(k))
	}
	return l, r, phase, nil
}
