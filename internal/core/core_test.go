package core

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

func TestEvaluateGHZOnTree(t *testing.T) {
	m := Tree20SqrtISwap()
	c := workloads.GHZ(10)
	met, err := m.Evaluate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if met.PreRouting2Q != 9 {
		t.Errorf("GHZ(10) has %d 2Q gates, want 9", met.PreRouting2Q)
	}
	// Each CX costs 2 √iSWAPs; plus 3 per induced SWAP.
	want := 2*9 + 3*met.TotalSwaps
	if met.Total2Q != want {
		t.Errorf("Total2Q = %d, want %d (2 per CX + 3 per SWAP)", met.Total2Q, want)
	}
	if met.PulseDuration <= 0 {
		t.Error("pulse duration not positive")
	}
	// √iSWAP pulses are half-length: duration = 0.5 × critical 2Q count.
	if met.PulseDuration != 0.5*float64(met.Critical2Q) {
		t.Errorf("duration %g != 0.5×critical2Q (%d)", met.PulseDuration, met.Critical2Q)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	m := HeavyHex20CX()
	c := workloads.QFT(10, true)
	a, err := m.Evaluate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evaluate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same options, different metrics:\n%v\n%v", a, b)
	}
}

func TestCodesignAdvantageQV(t *testing.T) {
	// The paper's headline direction at small scale: hypercube+√iSWAP needs
	// fewer total 2Q gates and less duration than Heavy-Hex+CNOT on QV.
	rng := rand.New(rand.NewSource(42))
	c := workloads.QuantumVolume(12, rng)
	opt := DefaultOptions()
	hh, err := HeavyHex20CX().Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := Hypercube16SqrtISwap().Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Total2Q >= hh.Total2Q {
		t.Errorf("hypercube total2Q (%d) should beat heavy-hex (%d)", hc.Total2Q, hh.Total2Q)
	}
	if hc.PulseDuration >= hh.PulseDuration {
		t.Errorf("hypercube duration (%g) should beat heavy-hex (%g)", hc.PulseDuration, hh.PulseDuration)
	}
	if hc.TotalSwaps >= hh.TotalSwaps {
		t.Errorf("hypercube swaps (%d) should beat heavy-hex (%d)", hc.TotalSwaps, hh.TotalSwaps)
	}
}

func TestSabreRouterOption(t *testing.T) {
	m := NewMachine("hh", topology.HeavyHex20(), weyl.BasisCX)
	c := workloads.QFT(8, true)
	opt := DefaultOptions()
	opt.Router = RouterSabre
	met, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if met.Total2Q == 0 {
		t.Error("SABRE pipeline produced empty circuit")
	}
}

func TestMachineCatalogs(t *testing.T) {
	for _, m := range Machines16() {
		if m.Graph.N() < 16 || m.Graph.N() > 20 {
			t.Errorf("%s: unexpected size %d", m.Name, m.Graph.N())
		}
	}
	for _, m := range Machines84() {
		if m.Graph.N() != 84 {
			t.Errorf("%s: size %d, want 84", m.Name, m.Graph.N())
		}
	}
}

func TestTranspiledArtifacts(t *testing.T) {
	m := Corral11SqrtISwap()
	c := workloads.TIMHamiltonian(10, 1)
	tr, err := m.Transpile(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Routed == nil || tr.Translated == nil {
		t.Fatal("missing artifacts")
	}
	if len(tr.Layout) != 10 {
		t.Errorf("layout size %d", len(tr.Layout))
	}
	if tr.Metrics.Total2Q != tr.Translated.CountTwoQubit() {
		t.Error("metrics disagree with translated circuit")
	}
}

func TestErrorPaths(t *testing.T) {
	m := Machine{Name: "empty"}
	if _, err := m.Evaluate(workloads.GHZ(4), DefaultOptions()); err == nil {
		t.Error("nil topology accepted")
	}
	small := NewMachine("small", topology.SquareLattice(2, 2), weyl.BasisCX)
	if _, err := small.Evaluate(workloads.GHZ(9), DefaultOptions()); err == nil {
		t.Error("oversized circuit accepted")
	}
}
