// Package core is the paper's primary contribution as a library: the
// co-design of a quantum machine as a (coupling topology, native basis gate)
// pair, and the evaluation pipeline of Fig. 10 — placement, SWAP routing,
// basis translation, and the four-dataset metrics collection (total SWAPs,
// critical-path SWAPs, total 2Q gates, critical-path pulse duration) used
// throughout the paper's results (Figs. 4, 11–14).
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/topology"
	"repro/internal/transpile"
	"repro/internal/weyl"
)

// Machine is a co-designed quantum computer: a qubit-coupling topology and
// the native two-qubit basis realized by its modulator (paper Observation 1:
// CR→CNOT, FSIM→SYC, SNAIL→√iSWAP).
type Machine struct {
	Name  string
	Graph *topology.Graph
	Basis weyl.Basis

	// Timing is the machine's per-gate-type pulse-duration table. nil means
	// arch.DefaultTiming() — the paper's normalization, under which every
	// historical result and cache entry was computed — and any machine whose
	// effective table differs from the default is cache-keyed separately
	// (see EvaluateKey).
	Timing arch.Timing

	// Noise is the machine's error model (§3.1 regimes: per-2Q-gate control
	// error, decoherence per unit duration, per-edge overrides), carried
	// from the e2q=/tdec=/e2q-<a>-<b>= spec keys. nil means noiseless
	// hardware; evaluations fall back to Options.Noise when the machine has
	// no profile of its own. The profile changes nothing unless a fidelity
	// model or noise routing is requested, so it needs no cache-key field
	// of its own (the noise/v1 field covers it when one is).
	Noise *arch.NoiseProfile
}

// NewMachine builds a machine with an explicit name (and the default
// timing table).
func NewMachine(name string, g *topology.Graph, b weyl.Basis) Machine {
	return Machine{Name: name, Graph: g, Basis: b}
}

// GateDurations resolves the machine's timing table: its own when set, else
// the paper's default normalization.
func (m Machine) GateDurations() arch.Timing {
	if m.Timing != nil {
		return m.Timing
	}
	return arch.DefaultTiming()
}

// FromArch realizes a declarative architecture spec as a machine: the
// family generator builds the coupling graph, the spec's basis, effective
// timing table, and noise profile carry over, and the machine is named by
// the spec's label (explicit name= parameter, else the canonical spec
// string).
func FromArch(a arch.Arch) (Machine, error) {
	g, err := a.Build()
	if err != nil {
		return Machine{}, err
	}
	m := Machine{Name: a.Label(), Graph: g, Basis: a.Basis, Noise: a.Noise.Clone()}
	if a.Timing != nil {
		m.Timing = a.EffectiveTiming()
	}
	return m, nil
}

// FromSpec parses a spec string (see package arch) and realizes it.
func FromSpec(spec string) (Machine, error) {
	a, err := arch.Parse(spec)
	if err != nil {
		return Machine{}, err
	}
	return FromArch(a)
}

// mustSpec is FromSpec for the compile-time catalog specs below, where a
// build error is a programming error.
func mustSpec(spec string) Machine {
	m, err := FromSpec(spec)
	if err != nil {
		panic(fmt.Sprintf("core: catalog spec %q: %v", spec, err))
	}
	return m
}

// RouterKind selects the routing algorithm.
type RouterKind int

const (
	// RouterStochastic is Qiskit-style StochasticSwap (the paper's router).
	RouterStochastic RouterKind = iota
	// RouterSabre is the SABRE lookahead router (ablation).
	RouterSabre
)

// FidelityModel selects how an evaluation estimates the routed circuit's
// fidelity under the machine's noise profile (Metrics.EstFidelity).
type FidelityModel int

const (
	// FidelityOff computes no fidelity (the historical default; fidelity
	// metric fields stay zero and cache keys are unchanged).
	FidelityOff FidelityModel = iota
	// FidelityCount uses the closed-form count model: gate counts and
	// duration-weighted qubit time, no simulation, any machine width.
	FidelityCount
	// FidelityMonteCarlo samples error trajectories through the routed
	// circuit (noise.MonteCarloEstimator): more faithful — it captures
	// error spreading and cancellation — but limited to circuits touching
	// at most sim.MaxQubits qubits.
	FidelityMonteCarlo
)

// NoiseRouteMode selects whether routing costs come from per-edge error
// rates (transpile.NoiseReweightPass) instead of uniform hop distances.
type NoiseRouteMode int

const (
	// NoiseRouteOff routes against hop counts (the historical default).
	NoiseRouteOff NoiseRouteMode = iota
	// NoiseRoutePure installs the error-weighted cost matrix before
	// layout, so placement and routing both prefer high-fidelity links.
	NoiseRoutePure
	// NoiseRouteBlend routes a hop-count pilot first, measures its SWAP
	// pressure, then re-places and re-routes under costs that multiply
	// error weights into pressure weights — pricing a link by both its
	// quality and its congestion.
	NoiseRouteBlend
)

// Options controls an evaluation run.
//
// Parallelism bounds the worker pool used for the router's randomized
// trials: 0 means auto (runtime.GOMAXPROCS), 1 pins the run serial, and
// larger values cap the pool explicitly. Results are bit-identical across
// all settings — every trial draws from its own deterministically derived
// RNG, so Parallelism only changes wall-clock time, never metrics.
type Options struct {
	Seed        int64      // RNG seed for routing (fixed per experiment)
	Trials      int        // StochasticSwap trials (0 → default 20)
	Router      RouterKind // routing algorithm
	Parallelism int        // routing-trial workers (0 = auto, 1 = serial)

	// CellTimeout bounds the wall-clock of one evaluation (one sweep cell):
	// EvaluateContext derives a deadline child context and the pipeline's
	// cooperative polls (per routed layer, per simulation sweep) stop the
	// work shortly after it expires, failing the cell with
	// context.DeadlineExceeded instead of wedging the sweep. 0 means no
	// per-cell bound. Like Parallelism, the timeout can only change
	// *whether* an evaluation completes, never what it computes, so it is
	// excluded from cache keys — a cell that timed out under a tight budget
	// and was recomputed under a looser one produces the identical entry.
	CellTimeout time.Duration

	// ProfileGuided enables the pressure-weighted pipeline: a pilot pass
	// routes under uniform hop distances and records per-edge SWAP pressure
	// (transpile.EdgeProfile); the guided pass then lays out and routes
	// under weighted all-pairs distances that price congested links (corral
	// fences, tree roots) above idle ones. The cheaper routing — by induced
	// SWAP count, pilot on ties — is kept, so a guided run never does worse
	// than the baseline it profiled. Costs roughly 2× the routing time per
	// iteration. Off by default; the default pipeline is byte-identical to
	// a build without this feature. Results remain a pure function of
	// (inputs, Seed, Trials, Router, ProfileGuided, ProfileIterations), and
	// guided evaluations are cache-keyed separately from baseline ones.
	ProfileGuided bool

	// ProfileIterations bounds the profile→reweight→reroute feedback loop
	// of guided mode (transpile.ProfileGuidedPass): each iteration profiles
	// the best routing so far, re-weights the cost matrices, and re-routes,
	// keeping the result only when strictly cheaper. 0 (and 1) mean the
	// single pilot→reweight step guided mode has always run, so existing
	// configurations — and their warm cache entries — are unchanged. The
	// loop stops early at a fixed point: when the incumbent routing's
	// pressure profile reproduces an edge-weight vector already tried, or
	// when no induced SWAPs remain. Ignored unless ProfileGuided is set.
	ProfileIterations int

	// Verify appends transpile.VerifyPass to the pipeline: after routing,
	// the routed circuit is simulated against the logical circuit on the
	// fused statevector engine and the evaluation fails loudly if they
	// disagree (up to global phase and the final-layout permutation) —
	// catching router bugs at the source instead of publishing wrong
	// metrics. It is exponential in the touched-qubit count and errors
	// beyond sim.MaxQubits, so it is an opt-in assurance knob for the
	// small machines, not a default. Verification changes no artifact or
	// metric, so it needs no cache-key field of its own — but a verified
	// Evaluate never *reads* the cache either: serving a cached (possibly
	// never-verified) result would skip the very check the knob asks for.
	// Verified runs always run the full pipeline.
	Verify bool

	// Noise is the default noise profile for machines that carry none of
	// their own (Machine.Noise wins when both are set): one -noise flag can
	// put a whole stock comparison set under the same error model. It is
	// inert — no metric, artifact, or cache key changes — unless Fidelity
	// or NoiseRoute asks for it.
	Noise *arch.NoiseProfile

	// Fidelity selects the estimator that fills Metrics.EstFidelity /
	// ControlFidelity / DecoherenceFidelity from the routed circuit and the
	// effective noise profile. FidelityOff (the default) computes nothing
	// and leaves every historical cache key bit-identical; the other modes
	// require a non-zero noise profile (machine or Options) and add the
	// tagged noise/v1 key field. Estimation runs on the *routed* circuit —
	// the semantic ground truth — not the translated one, whose placeholder
	// 1Q gates are a counting artifact.
	Fidelity FidelityModel

	// NoiseShots is the trajectory count for FidelityMonteCarlo (0 →
	// noise.DefaultShots). Normalized into the cache key the way Trials is,
	// so the implicit default and an explicit DefaultShots share entries.
	// Ignored by the count model.
	NoiseShots int

	// NoiseRoute routes against per-edge error rates instead of hop counts
	// (see NoiseRouteMode). Like Fidelity it requires a noise profile and
	// is cache-keyed under noise/v1; unlike Parallelism it changes the
	// routed circuit itself, so the two routings never share entries.
	NoiseRoute NoiseRouteMode

	// Cache, when non-nil, memoizes Evaluate results content-addressed by
	// (machine name, topology fingerprint, basis, circuit fingerprint, seed,
	// trials, router). Because routing is a pure function of those inputs, a
	// hit is byte-identical to recomputing; Parallelism is deliberately
	// excluded from the key since it never changes results. Concurrent
	// Evaluate calls on the same key compute once and share the result.
	Cache *cache.Store[Metrics]
}

// MetricsCache is the content-addressed Evaluate result cache behind
// Options.Cache.
type MetricsCache = cache.Store[Metrics]

// NewMetricsCache builds a cache suitable for Options.Cache: maxEntries
// bounds the in-memory LRU (0 = default), dir adds an on-disk JSON tier
// ("" = memory-only) so warm results survive across processes. Options
// tune the disk tier's robustness machinery (retry policy, error budget,
// health-probe interval, filesystem seam) and default sensibly.
func NewMetricsCache(maxEntries int, dir string, opts ...cache.Option) (*MetricsCache, error) {
	return cache.New[Metrics](maxEntries, dir, opts...)
}

// DefaultOptions is the configuration used by the experiment harnesses.
func DefaultOptions() Options { return Options{Seed: 2022, Trials: transpile.DefaultTrials} }

// Metrics is the paper's four-dataset measurement of one transpiled circuit
// (plus context). SWAP counts are taken after routing, 2Q counts and pulse
// duration after basis translation (Fig. 10).
type Metrics struct {
	Machine  string
	Workload string
	Width    int

	PreRouting2Q  int     // 2Q gates before routing
	TotalSwaps    int     // SWAP gates in the routed circuit (induced + algorithmic)
	InducedSwaps  int     // SWAPs inserted by the router alone
	CriticalSwaps int     // SWAPs on the critical path
	Total2Q       int     // basis gates after translation
	Critical2Q    int     // basis gates on the critical path
	PulseDuration float64 // duration-weighted critical path (1Q free)

	// EstFidelity is the selected estimator's fidelity prediction for the
	// routed circuit under the effective noise profile, with
	// ControlFidelity and DecoherenceFidelity the closed-form count-model
	// factors reported alongside it (their product is the count-model
	// prediction even when EstFidelity is Monte-Carlo sampled). All three
	// are zero when Options.Fidelity is FidelityOff — the default — so
	// historical metrics, goldens, and cache entries are unchanged.
	EstFidelity         float64
	ControlFidelity     float64
	DecoherenceFidelity float64
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s/%s n=%d: swaps=%d critSwaps=%d 2q=%d crit2q=%d dur=%.1f",
		m.Machine, m.Workload, m.Width, m.TotalSwaps, m.CriticalSwaps, m.Total2Q, m.Critical2Q, m.PulseDuration)
}

// Transpiled bundles the full pipeline output for callers that need the
// physical circuit (e.g. simulation-backed examples), not just counts.
type Transpiled struct {
	Layout     transpile.Layout
	Routed     *circuit.Circuit
	Translated *circuit.Circuit
	Metrics    Metrics

	// Profile is the pilot pass's measured per-edge SWAP pressure when
	// Options.ProfileGuided was set (nil otherwise). It always describes
	// the pilot routing — the uniform-cost pass that was profiled — not
	// the possibly-guided routing returned in Routed.
	Profile *transpile.EdgeProfile

	// Timings records the wall-clock of each executed pipeline pass, in
	// order (layout, route, optionally profile-guided, translate), so
	// callers and benchmarks can attribute transpilation time to stages.
	Timings []transpile.PassTiming
}

// Evaluate runs the full Fig. 10 flow on a logical circuit and returns the
// paper's metrics. With Options.Cache set, the result is served from the
// content-addressed cache when an identical evaluation already ran (or is
// running concurrently); cold and warm calls return identical Metrics.
func (m Machine) Evaluate(c *circuit.Circuit, opt Options) (Metrics, error) {
	return m.EvaluateContext(context.Background(), c, opt)
}

// EvaluateContext is Evaluate with caller-supplied cancellation plus the
// Options.CellTimeout per-cell budget: the effective context is the
// caller's, tightened by the timeout when one is set. A cancelled or
// expired evaluation fails with the context's error (never cached —
// errors are not cacheable — so a later retry under a looser budget
// recomputes cleanly). Concurrent deduplicated callers of the same key
// share the first caller's outcome, including its timeout error.
func (m Machine) EvaluateContext(ctx context.Context, c *circuit.Circuit, opt Options) (Metrics, error) {
	if opt.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.CellTimeout)
		defer cancel()
	}
	eval := func() (Metrics, error) {
		t, err := m.TranspileContext(ctx, c, opt)
		if err != nil {
			return Metrics{}, err
		}
		return t.Metrics, nil
	}
	// Verify must actually verify: a cache hit would return metrics from
	// an evaluation whose routing may never have been simulated, so
	// verified runs bypass the cache entirely (the metrics they produce
	// are identical to cached ones, just independently checked).
	if opt.Cache == nil || m.Graph == nil || opt.Verify {
		return eval()
	}
	return opt.Cache.Do(m.EvaluateKey(c, opt), eval)
}

// evaluateKeyDomain versions the Evaluate cache key. The key hashes the
// call's *inputs*; the pipeline's *code* is represented only by this tag.
// BUMP THE SUFFIX whenever a change alters what Evaluate computes for the
// same inputs (router cost functions, translation counting rules, metric
// definitions, seed derivation) — otherwise a persistent -cachedir from an
// older build serves the old algorithm's numbers as if freshly computed.
const evaluateKeyDomain = "core.Evaluate/v1"

// EvaluateKey derives the content hash of one Evaluate call: everything the
// metrics depend on and nothing else (CellTimeout and Parallelism change
// only whether/how fast a run completes, never its numbers, so they are
// excluded). Trials is normalized so the implicit default and an explicit
// DefaultTrials share an entry. Exported so the sweep journal can address
// completed cells by the same identity the cache uses — a resumed run
// replays exactly the cells an uninterrupted run would have served warm.
func (m Machine) EvaluateKey(c *circuit.Circuit, opt Options) cache.Key {
	trials := opt.Trials
	if trials <= 0 {
		trials = transpile.DefaultTrials
	}
	h := cache.NewHasher(evaluateKeyDomain)
	h.WriteString(m.Name)
	h.WriteUint(m.Graph.Fingerprint())
	h.WriteInt(int64(m.Basis))
	h.WriteUint(c.Fingerprint())
	h.WriteInt(opt.Seed)
	h.WriteInt(int64(trials))
	h.WriteInt(int64(opt.Router))
	// Profile-guided mode computes different numbers from the same inputs,
	// so it must never share entries with the baseline. Appending a tagged
	// field only in guided mode keeps every baseline key bit-identical to
	// earlier builds (warm -cachedir entries stay valid) while guided keys
	// live in their own namespace: Hasher fields are tagged and length-
	// delimited, so a truncated guided key can never collide with a baseline
	// key. Bump the suffix if the guided pipeline's behavior changes.
	if opt.ProfileGuided {
		h.WriteString("profile-guided/v1")
		// Multi-iteration guided runs compute different numbers again, so
		// they get their own tagged field — appended only for iterations
		// > 1, because 0 and 1 both mean the single pilot→reweight step
		// the profile-guided/v1 namespace has always held: warm guided
		// entries from earlier builds keep hitting.
		if opt.ProfileIterations > 1 {
			h.WriteString("profile-iterations")
			h.WriteInt(int64(opt.ProfileIterations))
		}
	}
	// A custom timing table changes PulseDuration for the same inputs, so
	// it gets its own tagged field — appended only when the effective table
	// differs from the default, because nil and an explicit default table
	// mean the normalization every historical entry was computed under:
	// default-timed keys stay bit-identical to earlier builds.
	if m.Timing != nil && !m.Timing.Equal(arch.DefaultTiming()) {
		h.WriteString("gate-timing/v1")
		gates := make([]string, 0, len(m.Timing))
		for g := range m.Timing {
			gates = append(gates, g)
		}
		sort.Strings(gates)
		for _, g := range gates {
			h.WriteString(g)
			h.WriteFloat(m.Timing[g])
		}
	}
	// Noise-aware evaluation computes additional numbers (fidelity metrics)
	// or different ones (error-weighted routing) from the same inputs, so it
	// gets its own tagged field — appended only when a fidelity model or
	// noise routing is enabled, never for a machine that merely *carries* a
	// profile, because an inert profile changes nothing: every baseline key
	// (and both fig11 goldens' warm caches) stays bit-identical to earlier
	// builds. The field hashes the mode selections plus the effective
	// profile's parameters; shots join only under the Monte-Carlo model,
	// normalized so the implicit default and an explicit DefaultShots share
	// an entry (the count model ignores shots entirely).
	if opt.Fidelity != FidelityOff || opt.NoiseRoute != NoiseRouteOff {
		h.WriteString("noise/v1")
		h.WriteInt(int64(opt.Fidelity))
		h.WriteInt(int64(opt.NoiseRoute))
		if opt.Fidelity == FidelityMonteCarlo {
			shots := opt.NoiseShots
			if shots <= 0 {
				shots = noise.DefaultShots
			}
			h.WriteString("shots")
			h.WriteInt(int64(shots))
		}
		p := m.effectiveNoise(opt)
		if !p.IsZero() {
			h.WriteFloat(p.E2Q)
			h.WriteFloat(p.TDec)
			for _, e := range p.Edges() {
				h.WriteInt(int64(e[0]))
				h.WriteInt(int64(e[1]))
				h.WriteFloat(p.EdgeE2Q[e])
			}
		}
	}
	return h.Sum()
}

// effectiveNoise resolves the noise profile an evaluation runs under: the
// machine's own when it has one, else the Options-level default (nil when
// neither is set).
func (m Machine) effectiveNoise(opt Options) *arch.NoiseProfile {
	if !m.Noise.IsZero() {
		return m.Noise
	}
	return opt.Noise
}

// estimator resolves the Options fidelity-model selection to a
// noise.Estimator. Monte-Carlo seeds from opt.Seed — the same per-cell
// derived seed routing uses — and inherits opt.Parallelism for its
// trajectory fan-out (sweeps pin cells serial, so trajectories never
// oversubscribe the sweep pool).
func (opt Options) estimator() (noise.Estimator, error) {
	switch opt.Fidelity {
	case FidelityCount:
		return noise.CountEstimator{}, nil
	case FidelityMonteCarlo:
		return noise.MonteCarloEstimator{Shots: opt.NoiseShots, Seed: opt.Seed, Parallelism: opt.Parallelism}, nil
	default:
		return nil, fmt.Errorf("core: unknown fidelity model %d", opt.Fidelity)
	}
}

// routerFunc resolves the Options router selection to the pipeline's
// RouterFunc slot.
func (opt Options) routerFunc() (transpile.RouterFunc, error) {
	switch opt.Router {
	case RouterStochastic:
		return transpile.StochasticRouter, nil
	case RouterSabre:
		return transpile.SabreRouter, nil
	default:
		return nil, fmt.Errorf("core: unknown router %d", opt.Router)
	}
}

// Pipeline builds the pass sequence an evaluation with these options runs:
// dense layout, routing, optionally the profile-guided feedback loop, then
// basis translation (Fig. 10, as composable transpile.Pass stages). The
// default (ProfileGuided off) pipeline is layout → route → translate —
// byte-identical to the historical monolithic Transpile. With NoiseRoute
// set, the error-weighted cost matrix is installed before layout (pure
// mode) or after a hop-count pilot whose pressure profile it blends with
// (blend mode: layout → route → profile → noise-reweight → layout →
// route); profile-guided iteration, when also requested, stacks on top of
// the noise-routed result. Callers composing custom pipelines (extra
// passes, different order) can run them directly over a
// transpile.PassContext; this is only the stock arrangement.
func (m Machine) Pipeline(opt Options) (transpile.Pipeline, error) {
	router, err := opt.routerFunc()
	if err != nil {
		return nil, err
	}
	var noiseErrors func(a, b int) float64
	if opt.NoiseRoute != NoiseRouteOff {
		if opt.NoiseRoute != NoiseRoutePure && opt.NoiseRoute != NoiseRouteBlend {
			return nil, fmt.Errorf("core: unknown noise-route mode %d", opt.NoiseRoute)
		}
		p := m.effectiveNoise(opt)
		if p.IsZero() {
			return nil, fmt.Errorf("core: %s: noise routing requested but no noise profile (set Options.Noise or the machine's e2q=/tdec= spec keys)", m.Name)
		}
		noiseErrors = p.EdgeError
	}
	var pipe transpile.Pipeline
	if opt.NoiseRoute == NoiseRoutePure {
		pipe = append(pipe, transpile.NoiseReweightPass{Errors: noiseErrors})
	}
	pipe = append(pipe,
		transpile.LayoutPass{},
		transpile.RoutePass{Router: router},
	)
	if opt.NoiseRoute == NoiseRouteBlend {
		pipe = append(pipe,
			transpile.ProfilePass{},
			transpile.NoiseReweightPass{Errors: noiseErrors, Blend: true},
			transpile.LayoutPass{},
			transpile.RoutePass{Router: router},
		)
	}
	if opt.ProfileGuided {
		pipe = append(pipe, transpile.ProfileGuidedPass{
			Router:     router,
			Alpha:      transpile.DefaultPressureAlpha,
			Iterations: opt.ProfileIterations,
		})
	}
	if opt.Verify {
		// After the final routing (pilot or guided), before translation:
		// the translated circuit is a counting artifact with placeholder
		// 1Q gates, so the routed circuit is the semantic ground truth.
		pipe = append(pipe, transpile.VerifyPass{})
	}
	return append(pipe, transpile.TranslatePass{}), nil
}

// Transpile runs the machine's pass pipeline — placement, routing,
// optionally profile-guided re-routing, and basis translation — returning
// all intermediate artifacts and metrics. With Options.ProfileGuided set,
// the first routing acts as a pilot whose measured per-edge SWAP pressure
// re-weights the cost matrices for up to Options.ProfileIterations further
// placement+routing passes; the cheapest routing wins (incumbent on ties),
// so guided mode is never worse than the baseline on the metric it
// optimizes.
func (m Machine) Transpile(c *circuit.Circuit, opt Options) (*Transpiled, error) {
	return m.TranspileContext(context.Background(), c, opt)
}

// TranspileContext is Transpile with caller-supplied cancellation threaded
// into the pass pipeline (checked between passes and polled inside the
// routers and verification). Note CellTimeout is EvaluateContext's concern;
// this method honors only the context it is given.
func (m Machine) TranspileContext(ctx context.Context, c *circuit.Circuit, opt Options) (*Transpiled, error) {
	if m.Graph == nil {
		return nil, fmt.Errorf("core: machine %q has no topology", m.Name)
	}
	pipe, err := m.Pipeline(opt)
	if err != nil {
		return nil, err
	}
	pctx := &transpile.PassContext{
		Graph:       m.Graph,
		Basis:       m.Basis,
		Circuit:     c,
		Seed:        opt.Seed,
		Trials:      opt.Trials,
		Parallelism: opt.Parallelism,
		Ctx:         ctx,
	}
	if err := pipe.Run(pctx); err != nil {
		return nil, fmt.Errorf("core: %s: %w", m.Name, err)
	}
	routed, translated := pctx.Routed, pctx.Translated
	met := Metrics{
		Machine:       m.Name,
		Width:         c.N,
		PreRouting2Q:  c.CountTwoQubit(),
		TotalSwaps:    routed.Circuit.CountByName("swap"),
		InducedSwaps:  routed.SwapCount,
		CriticalSwaps: routed.Circuit.CriticalSwaps(),
		Total2Q:       translated.CountTwoQubit(),
		Critical2Q:    transpile.Critical2Q(translated),
		PulseDuration: transpile.PulseDurationTable(translated, m.GateDurations()),
	}
	if opt.Fidelity != FidelityOff {
		prof := m.effectiveNoise(opt)
		if prof.IsZero() {
			return nil, fmt.Errorf("core: %s: fidelity estimation requested but no noise profile (set Options.Noise or the machine's e2q=/tdec= spec keys)", m.Name)
		}
		est, err := opt.estimator()
		if err != nil {
			return nil, err
		}
		// Estimate on the routed circuit — the semantic ground truth the
		// verifier also checks — charging decoherence with the machine's
		// timing table, the same source PulseDuration reads.
		e, err := est.Estimate(ctx, routed.Circuit, noise.FromProfile(prof, m.GateDurations()))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %s fidelity: %w", m.Name, est.Name(), err)
		}
		met.EstFidelity = e.Fidelity
		met.ControlFidelity = e.Control
		met.DecoherenceFidelity = e.Decoherence
	}
	return &Transpiled{
		Layout:     pctx.Layout,
		Routed:     routed.Circuit,
		Translated: translated,
		Metrics:    met,
		Profile:    pctx.Profile,
		Timings:    pctx.Timings,
	}, nil
}

// ---- Machine catalog (the paper's comparison systems) ----
//
// Every catalog machine is a registry lookup: its spec string is the single
// definition, and the named constructor is a pinned alias whose graph
// fingerprint, machine name, and EvaluateKeys are byte-identical to the
// historical hand-built versions (TestCatalogMatchesRegistry).

// HeavyHex20CX is IBM's representative small machine: Heavy-Hex + CR/CNOT.
func HeavyHex20CX() Machine { return mustSpec("heavyhex:fragment=20,name=Heavy-Hex-CX") }

// SquareLattice16SYC is Google's representative small machine:
// Square-Lattice + FSIM/SYC.
func SquareLattice16SYC() Machine {
	return mustSpec("grid:rows=4,cols=4,basis=syc,name=Square-Lattice-SYC")
}

// Tree20SqrtISwap is the SNAIL 4-ary tree with its native √iSWAP.
func Tree20SqrtISwap() Machine {
	return mustSpec("tree:levels=2,basis=sqrtiswap,name=Tree-sqrtISWAP")
}

// TreeRR20SqrtISwap is the round-robin tree with √iSWAP.
func TreeRR20SqrtISwap() Machine {
	return mustSpec("tree-rr:levels=2,basis=sqrtiswap,name=Tree-RR-sqrtISWAP")
}

// Corral11SqrtISwap is the stride-(1,1) corral with √iSWAP. The graph keeps
// its historical stride-set label (the fingerprint is name-independent).
func Corral11SqrtISwap() Machine {
	m := mustSpec("corral:posts=8,strides=1+1,basis=sqrtiswap,name=Corral11-sqrtISWAP")
	m.Graph.Name = "Corral(1,1)"
	return m
}

// Corral12SqrtISwap is the long-stride corral with √iSWAP (stride set {1,3},
// labeled by the paper's "configuration 2"; see topology.Corral12).
func Corral12SqrtISwap() Machine {
	m := mustSpec("corral:posts=8,strides=1+3,basis=sqrtiswap,name=Corral12-sqrtISWAP")
	m.Graph.Name = "Corral(1,2)"
	return m
}

// Hypercube16SqrtISwap is the aspirational 4-cube with √iSWAP.
func Hypercube16SqrtISwap() Machine {
	return mustSpec("hypercube:dim=4,basis=sqrtiswap,name=Hypercube-sqrtISWAP")
}

// HeavyHex84CX, SquareLattice84SYC, Tree84SqrtISwap, TreeRR84SqrtISwap and
// Hypercube84SqrtISwap are the scaled (Table 2 / Fig. 14) machines.

func HeavyHex84CX() Machine { return mustSpec("heavyhex:rows=5,cols=14,name=Heavy-Hex-CX") }

func SquareLattice84SYC() Machine {
	return mustSpec("grid:rows=7,cols=12,basis=syc,name=Square-Lattice-SYC")
}

func Tree84SqrtISwap() Machine {
	return mustSpec("tree:levels=3,basis=sqrtiswap,name=Tree-sqrtISWAP")
}

func TreeRR84SqrtISwap() Machine {
	return mustSpec("tree-rr:levels=3,basis=sqrtiswap,name=Tree-RR-sqrtISWAP")
}

func Hypercube84SqrtISwap() Machine {
	return mustSpec("hypercube:dim=7,trim=84,basis=sqrtiswap,name=Hypercube-sqrtISWAP")
}

// Machines16 returns the co-design comparison set of Fig. 13.
func Machines16() []Machine {
	return []Machine{
		HeavyHex20CX(),
		SquareLattice16SYC(),
		Tree20SqrtISwap(),
		TreeRR20SqrtISwap(),
		Hypercube16SqrtISwap(),
		Corral11SqrtISwap(),
	}
}

// Machines84 returns the co-design comparison set of Fig. 14.
func Machines84() []Machine {
	return []Machine{
		HeavyHex84CX(),
		SquareLattice84SYC(),
		Tree84SqrtISwap(),
		TreeRR84SqrtISwap(),
		Hypercube84SqrtISwap(),
	}
}
