package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/workloads"
)

// TestCellTimeoutFailsCell: an already-expired per-cell budget (1ns is
// guaranteed dead by the pipeline's first cooperative poll) fails the
// evaluation with context.DeadlineExceeded — no sleeping required to pin
// the deadline path.
func TestCellTimeoutFailsCell(t *testing.T) {
	m := HeavyHex20CX()
	c := workloads.QFT(10, true)
	opt := DefaultOptions()
	opt.CellTimeout = time.Nanosecond
	if _, err := m.EvaluateContext(context.Background(), c, opt); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns cell budget = %v, want context.DeadlineExceeded", err)
	}
}

// TestEvaluateContextCancelled: a dead caller context fails the evaluation
// with context.Canceled even with no CellTimeout set.
func TestEvaluateContextCancelled(t *testing.T) {
	m := HeavyHex20CX()
	c := workloads.QFT(8, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.EvaluateContext(ctx, c, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead ctx = %v, want context.Canceled", err)
	}
}

// TestEvaluateKeyExcludesRuntimeKnobs pins the cache-key contract the
// resume journal depends on: CellTimeout and Parallelism never change what
// an evaluation computes, so they must not change its identity — while a
// semantic input (the seed) must.
func TestEvaluateKeyExcludesRuntimeKnobs(t *testing.T) {
	m := HeavyHex20CX()
	c := workloads.QFT(8, true)
	base := Options{Seed: 2022, Trials: 5}
	timed := base
	timed.CellTimeout = time.Second
	parallel := base
	parallel.Parallelism = 4
	if m.EvaluateKey(c, base) != m.EvaluateKey(c, timed) {
		t.Fatal("CellTimeout changed the evaluate key")
	}
	if m.EvaluateKey(c, base) != m.EvaluateKey(c, parallel) {
		t.Fatal("Parallelism changed the evaluate key")
	}
	reseeded := base
	reseeded.Seed = 2023
	if m.EvaluateKey(c, base) == m.EvaluateKey(c, reseeded) {
		t.Fatal("seed did not change the evaluate key")
	}
}

// TestEvaluateContextMatchesEvaluate: threading a live context (and a
// generous timeout) through an evaluation must not change its metrics.
func TestEvaluateContextMatchesEvaluate(t *testing.T) {
	m := Tree20SqrtISwap()
	c := workloads.QFT(8, true)
	opt := DefaultOptions()
	want, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.CellTimeout = time.Hour
	got, err := m.EvaluateContext(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("context-threaded metrics diverged:\n  plain %+v\n  ctx   %+v", want, got)
	}
}
