package core

import (
	"math/rand"
	"testing"

	"repro/internal/workloads"
)

// profiledMachines are the SNAIL designs whose fence/root links concentrate
// SWAP pressure — the topologies profile-guided routing exists for.
func profiledMachines() []Machine {
	return []Machine{
		Corral11SqrtISwap(),
		Corral12SqrtISwap(),
		Tree20SqrtISwap(),
		TreeRR20SqrtISwap(),
	}
}

func TestProfileGuidedNeverWorse(t *testing.T) {
	// Transpile keeps the cheaper of pilot and guided routing, so guided
	// mode can never induce more SWAPs than the baseline it profiled.
	for _, m := range profiledMachines() {
		for _, wl := range []string{"QuantumVolume", "QFT"} {
			c, err := workloads.Generate(wl, 16, rand.New(rand.NewSource(21)))
			if err != nil {
				t.Fatal(err)
			}
			base := Options{Seed: 2022, Trials: 5}
			guided := base
			guided.ProfileGuided = true
			mb, err := m.Evaluate(c, base)
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", m.Name, wl, err)
			}
			mg, err := m.Evaluate(c, guided)
			if err != nil {
				t.Fatalf("%s/%s guided: %v", m.Name, wl, err)
			}
			if mg.TotalSwaps > mb.TotalSwaps {
				t.Errorf("%s/%s: guided swaps %d > baseline %d", m.Name, wl, mg.TotalSwaps, mb.TotalSwaps)
			}
		}
	}
}

func TestProfileGuidedDeterministic(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("QuantumVolume", 14, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 7, Trials: 5, ProfileGuided: true}
	a, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("profile-guided evaluation nondeterministic: %+v vs %+v", a, b)
	}
}

func TestProfileGuidedSabre(t *testing.T) {
	m := Tree20SqrtISwap()
	c, err := workloads.Generate("QFT", 12, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Evaluate(c, Options{Seed: 7, Router: RouterSabre})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := m.Evaluate(c, Options{Seed: 7, Router: RouterSabre, ProfileGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	if guided.TotalSwaps > base.TotalSwaps {
		t.Errorf("SABRE guided swaps %d > baseline %d", guided.TotalSwaps, base.TotalSwaps)
	}
}

func TestProfileGuidedTranspileExposesProfile(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("QuantumVolume", 12, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Transpile(c, Options{Seed: 7, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Profile != nil {
		t.Error("baseline transpile should carry no profile")
	}
	tg, err := m.Transpile(c, Options{Seed: 7, Trials: 5, ProfileGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Profile == nil {
		t.Fatal("guided transpile lost its pilot profile")
	}
	if tg.Profile.Total() != tr.Routed.CountByName("swap") {
		t.Errorf("pilot profile total %d, baseline routed swaps %d", tg.Profile.Total(), tr.Routed.CountByName("swap"))
	}
}

func TestEvaluateKeySeparatesProfileModes(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("GHZ", 10, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 2022, Trials: 5}
	guided := base
	guided.ProfileGuided = true
	if m.EvaluateKey(c, base) == m.EvaluateKey(c, guided) {
		t.Fatal("baseline and profile-guided evaluations share a cache key")
	}
	// The baseline key must not move when the flag is merely *available*:
	// warm PR-2 cache directories stay valid for default-mode runs. Guard
	// by construction: the guided field is appended only when set, so the
	// baseline hash covers the same bytes as before the feature existed.
	if m.EvaluateKey(c, base) != m.EvaluateKey(c, Options{Seed: 2022, Trials: 5, ProfileGuided: false}) {
		t.Fatal("baseline key unstable")
	}
}

func TestProfileGuidedCacheIsolation(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("QuantumVolume", 12, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewMetricsCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 2022, Trials: 5, Cache: store}
	guided := base
	guided.ProfileGuided = true
	if _, err := m.Evaluate(c, base); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(c, guided); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Fills != 2 {
		t.Errorf("fills = %d, want 2 (modes must not share entries)", st.Fills)
	}
	if st.Hits() != 0 {
		t.Errorf("hits = %d, want 0 (cross-mode hit!)", st.Hits())
	}
	// Same-mode repeats hit.
	if _, err := m.Evaluate(c, base); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(c, guided); err != nil {
		t.Fatal(err)
	}
	st = store.Stats()
	if st.Fills != 2 || st.Hits() != 2 {
		t.Errorf("after repeats: fills = %d hits = %d, want 2/2", st.Fills, st.Hits())
	}
}
