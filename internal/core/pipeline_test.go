package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/transpile"
	"repro/internal/workloads"
)

// legacyTranspile is a frozen reimplementation of the pre-pipeline
// monolithic Transpile (dense layout → router → optional single
// pilot→reweight step → translation, hardwired in sequence), kept as the
// reference the pass pipeline must reproduce byte-for-byte.
func legacyTranspile(m Machine, c *circuit.Circuit, opt Options) (*Transpiled, error) {
	routeOnce := func(cost [][]float64) (transpile.Layout, *transpile.RouteResult, error) {
		layout, err := transpile.DenseLayoutCost(m.Graph, c, cost)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		var routed *transpile.RouteResult
		switch opt.Router {
		case RouterStochastic:
			routed, err = transpile.StochasticSwapCost(m.Graph, c, layout, rng, opt.Trials, opt.Parallelism, cost)
		case RouterSabre:
			routed, err = transpile.SabreSwapCost(m.Graph, c, layout, rng, cost)
		default:
			return nil, nil, fmt.Errorf("unknown router %d", opt.Router)
		}
		if err != nil {
			return nil, nil, err
		}
		return layout, routed, nil
	}
	layout, routed, err := routeOnce(nil)
	if err != nil {
		return nil, err
	}
	var profile *transpile.EdgeProfile
	if opt.ProfileGuided {
		profile, err = transpile.ProfileRoutedCircuit(m.Graph, routed.Circuit)
		if err != nil {
			return nil, err
		}
		if routed.SwapCount > 0 {
			wdist, err := m.Graph.WeightedDistances(profile.Weights(transpile.DefaultPressureAlpha))
			if err != nil {
				return nil, err
			}
			gLayout, gRouted, err := routeOnce(wdist)
			if err != nil {
				return nil, err
			}
			if gRouted.SwapCount < routed.SwapCount {
				layout, routed = gLayout, gRouted
			}
		}
	}
	translated, err := transpile.TranslateToBasis(routed.Circuit, m.Basis)
	if err != nil {
		return nil, err
	}
	return &Transpiled{
		Layout:     layout,
		Routed:     routed.Circuit,
		Translated: translated,
		Metrics: Metrics{
			Machine:       m.Name,
			Width:         c.N,
			PreRouting2Q:  c.CountTwoQubit(),
			TotalSwaps:    routed.Circuit.CountByName("swap"),
			InducedSwaps:  routed.SwapCount,
			CriticalSwaps: routed.Circuit.CriticalSwaps(),
			Total2Q:       translated.CountTwoQubit(),
			Critical2Q:    transpile.Critical2Q(translated),
			PulseDuration: transpile.PulseDuration(translated, m.Basis),
		},
		Profile: profile,
	}, nil
}

// TestPipelineMatchesLegacyTranspile pins the pass-pipeline refactor: for
// every Machines16 machine, in baseline and single-iteration guided mode,
// the pipeline's artifacts are byte-identical to the pre-refactor
// monolithic flow — same layout, same routed and translated circuits
// (fingerprints cover width, ops, params, and unitary bit patterns), same
// metrics, same pilot profile totals.
func TestPipelineMatchesLegacyTranspile(t *testing.T) {
	for _, m := range Machines16() {
		for _, wl := range []string{"QuantumVolume", "GHZ"} {
			c, err := workloads.Generate(wl, 12, rand.New(rand.NewSource(31)))
			if err != nil {
				t.Fatal(err)
			}
			for _, guided := range []bool{false, true} {
				opt := Options{Seed: 2022, Trials: 5, ProfileGuided: guided}
				want, err := legacyTranspile(m, c, opt)
				if err != nil {
					t.Fatalf("%s/%s legacy: %v", m.Name, wl, err)
				}
				got, err := m.Transpile(c, opt)
				if err != nil {
					t.Fatalf("%s/%s pipeline: %v", m.Name, wl, err)
				}
				tag := fmt.Sprintf("%s/%s guided=%v", m.Name, wl, guided)
				if !reflect.DeepEqual(got.Layout, want.Layout) {
					t.Errorf("%s: layout diverged: %v vs %v", tag, got.Layout, want.Layout)
				}
				if got.Routed.Fingerprint() != want.Routed.Fingerprint() {
					t.Errorf("%s: routed circuit diverged", tag)
				}
				if got.Translated.Fingerprint() != want.Translated.Fingerprint() {
					t.Errorf("%s: translated circuit diverged", tag)
				}
				if got.Metrics != want.Metrics {
					t.Errorf("%s: metrics diverged:\n got %+v\nwant %+v", tag, got.Metrics, want.Metrics)
				}
				if guided {
					if got.Profile == nil || want.Profile == nil {
						t.Fatalf("%s: missing pilot profile", tag)
					}
					if got.Profile.Total() != want.Profile.Total() {
						t.Errorf("%s: pilot profile diverged: %d vs %d", tag, got.Profile.Total(), want.Profile.Total())
					}
				}
			}
		}
	}
}

// TestProfileIterationsMonotone pins the keep-cheapest acceptance
// criterion: ProfileIterations=N never yields more induced SWAPs than N−1
// (the iteration sequence is a deterministic prefix extension, and the
// incumbent is replaced only by strictly cheaper routings).
func TestProfileIterationsMonotone(t *testing.T) {
	for _, m := range []Machine{Corral11SqrtISwap(), Tree20SqrtISwap()} {
		c, err := workloads.Generate("QuantumVolume", 14, rand.New(rand.NewSource(37)))
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for n := 1; n <= 4; n++ {
			tr, err := m.Transpile(c, Options{Seed: 2022, Trials: 5, ProfileGuided: true, ProfileIterations: n})
			if err != nil {
				t.Fatalf("%s iterations=%d: %v", m.Name, n, err)
			}
			if prev >= 0 && tr.Metrics.InducedSwaps > prev {
				t.Errorf("%s: iterations=%d induced %d > iterations=%d induced %d",
					m.Name, n, tr.Metrics.InducedSwaps, n-1, prev)
			}
			prev = tr.Metrics.InducedSwaps
		}
	}
}

// TestProfileIterationsDefaultEquivalence pins backward compatibility:
// ProfileIterations 0 and 1 are the same single pilot→reweight step guided
// mode has always run.
func TestProfileIterationsDefaultEquivalence(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("QuantumVolume", 14, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := m.Evaluate(c, Options{Seed: 2022, Trials: 5, ProfileGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.Evaluate(c, Options{Seed: 2022, Trials: 5, ProfileGuided: true, ProfileIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if zero != one {
		t.Fatalf("iterations 0 and 1 diverge: %+v vs %+v", zero, one)
	}
}

// TestEvaluateKeyIterationStability pins the cache-key compatibility
// criteria: iteration counts 0 and 1 share the single-step guided key
// namespace (warm PR 3 -cachedir entries keep hitting), >1 gets its own
// namespace, and baseline keys ignore the field entirely.
func TestEvaluateKeyIterationStability(t *testing.T) {
	m := Corral11SqrtISwap()
	c, err := workloads.Generate("GHZ", 10, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	guided := Options{Seed: 2022, Trials: 5, ProfileGuided: true}
	one := guided
	one.ProfileIterations = 1
	two := guided
	two.ProfileIterations = 2
	three := guided
	three.ProfileIterations = 3
	if m.EvaluateKey(c, guided) != m.EvaluateKey(c, one) {
		t.Fatal("iterations=1 moved the single-step guided key: warm PR 3 entries would miss")
	}
	if m.EvaluateKey(c, guided) == m.EvaluateKey(c, two) {
		t.Fatal("iterations=2 shares the single-step guided key")
	}
	if m.EvaluateKey(c, two) == m.EvaluateKey(c, three) {
		t.Fatal("iterations 2 and 3 share a key")
	}
	base := Options{Seed: 2022, Trials: 5}
	baseIters := base
	baseIters.ProfileIterations = 5
	if m.EvaluateKey(c, base) != m.EvaluateKey(c, baseIters) {
		t.Fatal("baseline key depends on ProfileIterations (field is ignored without ProfileGuided)")
	}
}
