package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/noise"
	"repro/internal/workloads"
)

// TestEvaluateKeyNoiseStability pins the noise/v1 cache-key compatibility
// criteria: every noise-off key — including on a machine that *carries* a
// profile — is bit-identical to what earlier builds computed (warm
// baseline -cachedir entries keep hitting), and every semantic noise knob
// separates keys.
func TestEvaluateKeyNoiseStability(t *testing.T) {
	plain := HeavyHex20CX()
	noisy := plain
	noisy.Noise = &arch.NoiseProfile{E2Q: 0.002, TDec: 0.001}
	c := workloads.QFT(8, true)
	base := Options{Seed: 2022, Trials: 5}

	// An inert profile (no fidelity model, no noise routing) must not move
	// the key: fig11/fig13 golden runs and their warm caches predate noise.
	if plain.EvaluateKey(c, base) != noisy.EvaluateKey(c, base) {
		t.Fatal("a carried-but-unused noise profile changed the evaluate key")
	}
	inert := base
	inert.Noise = &arch.NoiseProfile{E2Q: 0.1}
	if plain.EvaluateKey(c, base) != plain.EvaluateKey(c, inert) {
		t.Fatal("Options.Noise without a fidelity model changed the evaluate key")
	}

	count := base
	count.Fidelity = FidelityCount
	if noisy.EvaluateKey(c, base) == noisy.EvaluateKey(c, count) {
		t.Fatal("enabling fidelity estimation did not change the key")
	}
	mc := base
	mc.Fidelity = FidelityMonteCarlo
	if noisy.EvaluateKey(c, count) == noisy.EvaluateKey(c, mc) {
		t.Fatal("count and montecarlo share a key")
	}
	// Shots normalize like Trials: implicit default == explicit default,
	// and shots are ignored outside the Monte-Carlo model.
	mcDefault := mc
	mcDefault.NoiseShots = noise.DefaultShots
	if noisy.EvaluateKey(c, mc) != noisy.EvaluateKey(c, mcDefault) {
		t.Fatal("implicit and explicit default shots diverged")
	}
	mcMore := mc
	mcMore.NoiseShots = 1024
	if noisy.EvaluateKey(c, mc) == noisy.EvaluateKey(c, mcMore) {
		t.Fatal("shot count did not separate Monte-Carlo keys")
	}
	countShots := count
	countShots.NoiseShots = 1024
	if noisy.EvaluateKey(c, count) != noisy.EvaluateKey(c, countShots) {
		t.Fatal("count-model key depends on shots (field is ignored)")
	}

	route := count
	route.NoiseRoute = NoiseRoutePure
	if noisy.EvaluateKey(c, count) == noisy.EvaluateKey(c, route) {
		t.Fatal("noise routing did not change the key")
	}
	blend := count
	blend.NoiseRoute = NoiseRouteBlend
	if noisy.EvaluateKey(c, route) == noisy.EvaluateKey(c, blend) {
		t.Fatal("pure and blend routing share a key")
	}

	// The effective profile's content is part of the identity.
	hotter := plain
	hotter.Noise = &arch.NoiseProfile{E2Q: 0.004, TDec: 0.001}
	if noisy.EvaluateKey(c, count) == hotter.EvaluateKey(c, count) {
		t.Fatal("different machine profiles share a key")
	}
	edged := plain
	edged.Noise = &arch.NoiseProfile{E2Q: 0.002, TDec: 0.001,
		EdgeE2Q: map[[2]int]float64{{0, 1}: 0.05}}
	if noisy.EvaluateKey(c, count) == edged.EvaluateKey(c, count) {
		t.Fatal("per-edge overrides not keyed")
	}
}

// TestFidelityMetrics: evaluating under a noise profile fills the three
// fidelity metrics; without a fidelity model they stay zero and
// Metrics.String is unchanged (golden byte-identity).
func TestFidelityMetrics(t *testing.T) {
	m, err := FromSpec("grid:rows=4,cols=4,basis=syc,e2q=0.002,tdec=0.001")
	if err != nil {
		t.Fatal(err)
	}
	c := workloads.GHZ(8)
	opt := DefaultOptions()
	off, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if off.EstFidelity != 0 || off.ControlFidelity != 0 || off.DecoherenceFidelity != 0 {
		t.Fatalf("fidelity metrics nonzero with FidelityOff: %+v", off)
	}
	opt.Fidelity = FidelityCount
	on, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"EstFidelity":         on.EstFidelity,
		"ControlFidelity":     on.ControlFidelity,
		"DecoherenceFidelity": on.DecoherenceFidelity,
	} {
		if v <= 0 || v >= 1 {
			t.Errorf("%s = %g, want in (0,1)", name, v)
		}
	}
	if on.EstFidelity != on.ControlFidelity*on.DecoherenceFidelity {
		t.Error("count model fidelity is not the product of its components")
	}
	// The routing metrics and their rendering are untouched by estimation.
	offNoFid := off
	offNoFid.EstFidelity, offNoFid.ControlFidelity, offNoFid.DecoherenceFidelity = 0, 0, 0
	onNoFid := on
	onNoFid.EstFidelity, onNoFid.ControlFidelity, onNoFid.DecoherenceFidelity = 0, 0, 0
	if offNoFid != onNoFid {
		t.Fatalf("fidelity estimation changed routing metrics:\n  off %+v\n  on  %+v", off, on)
	}
	if strings.Contains(off.String(), "fidelity") {
		t.Fatal("Metrics.String grew a fidelity column; goldens would break")
	}
}

// TestMachineProfileWinsOverOptions: a machine's own spec-declared profile
// takes precedence over the sweep-level Options.Noise default.
func TestMachineProfileWinsOverOptions(t *testing.T) {
	m, err := FromSpec("grid:rows=4,cols=4,basis=syc,e2q=0.05")
	if err != nil {
		t.Fatal(err)
	}
	c := workloads.GHZ(6)
	opt := DefaultOptions()
	opt.Fidelity = FidelityCount
	own, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Noise = &arch.NoiseProfile{E2Q: 0.5}
	overlaid, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if own.EstFidelity != overlaid.EstFidelity {
		t.Fatalf("Options.Noise overrode the machine profile: %g vs %g",
			own.EstFidelity, overlaid.EstFidelity)
	}
	// A profile-less machine falls back to the Options default.
	bare := HeavyHex20CX()
	fallback, err := bare.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fallback.EstFidelity <= 0 || fallback.EstFidelity >= 1 {
		t.Fatalf("Options.Noise fallback fidelity = %g", fallback.EstFidelity)
	}
}

// TestNoiseConfigErrors: estimation and routing without any profile, and
// routing modes out of range, fail with descriptive errors instead of
// silently evaluating noiselessly.
func TestNoiseConfigErrors(t *testing.T) {
	m := HeavyHex20CX()
	c := workloads.GHZ(6)
	opt := DefaultOptions()
	opt.Fidelity = FidelityCount
	if _, err := m.Evaluate(c, opt); err == nil || !strings.Contains(err.Error(), "no noise profile") {
		t.Fatalf("profile-less fidelity estimation error = %v", err)
	}
	opt = DefaultOptions()
	opt.NoiseRoute = NoiseRoutePure
	if _, err := m.Evaluate(c, opt); err == nil || !strings.Contains(err.Error(), "no noise profile") {
		t.Fatalf("profile-less noise routing error = %v", err)
	}
	opt = DefaultOptions()
	opt.Noise = &arch.NoiseProfile{E2Q: 0.01}
	opt.NoiseRoute = NoiseRouteMode(99)
	if _, err := m.Evaluate(c, opt); err == nil {
		t.Fatal("unknown noise-route mode accepted")
	}
	opt = DefaultOptions()
	opt.Noise = &arch.NoiseProfile{E2Q: 0.01}
	opt.Fidelity = FidelityModel(99)
	if _, err := m.Evaluate(c, opt); err == nil {
		t.Fatal("unknown fidelity model accepted")
	}
}

// TestErrorWeightedRoutingBeatsHops is the headline acceptance pin: on a
// heterogeneous machine — a 4×4 grid with one coupling 300× worse than the
// rest — routing against error-weighted edge costs must yield strictly
// higher estimated fidelity than hop-count routing for a workload whose
// traffic crosses the grid, and never lower across the sampled workloads.
func TestErrorWeightedRoutingBeatsHops(t *testing.T) {
	m, err := FromSpec("grid:rows=4,cols=4,basis=syc,e2q=0.001,e2q-5-6=0.3")
	if err != nil {
		t.Fatal(err)
	}
	eval := func(wl string, size int, mode NoiseRouteMode) Metrics {
		t.Helper()
		c, err := workloads.Generate(wl, size, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Seed: 2022, Trials: 5, Fidelity: FidelityCount, NoiseRoute: mode}
		met, err := m.Evaluate(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	// The pinned strict win: QFT(10) improves ~3× under error weighting.
	off := eval("QFT", 10, NoiseRouteOff)
	pure := eval("QFT", 10, NoiseRoutePure)
	if pure.EstFidelity <= off.EstFidelity {
		t.Fatalf("error-weighted routing lost: pure %g <= off %g", pure.EstFidelity, off.EstFidelity)
	}
	if pure.EstFidelity < 2*off.EstFidelity {
		t.Fatalf("error-weighted win collapsed: pure %g vs off %g (historically ~3x)",
			pure.EstFidelity, off.EstFidelity)
	}
	// Blend mode (error weights × SWAP pressure) must also clear baseline
	// on this workload.
	blend := eval("QFT", 10, NoiseRouteBlend)
	if blend.EstFidelity <= off.EstFidelity {
		t.Fatalf("blend routing lost: %g <= %g", blend.EstFidelity, off.EstFidelity)
	}
}
