package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/topology"
	"repro/internal/weyl"
)

// TestCatalogMatchesRegistry pins the registry-backed catalog constructors
// byte-identical to the historical hand-built machines: same machine names,
// graph names, qubit counts, structural fingerprints — and therefore the
// same EvaluateKeys, so warm -cachedir entries and the fig11 goldens are
// untouched by the registry refactor.
func TestCatalogMatchesRegistry(t *testing.T) {
	hand := func(name string, g *topology.Graph, b weyl.Basis) Machine {
		return Machine{Name: name, Graph: g, Basis: b}
	}
	cases := []struct {
		got  Machine
		want Machine
	}{
		{HeavyHex20CX(), hand("Heavy-Hex-CX", topology.HeavyHex20(), weyl.BasisCX)},
		{SquareLattice16SYC(), hand("Square-Lattice-SYC", topology.SquareLattice16(), weyl.BasisSYC)},
		{Tree20SqrtISwap(), hand("Tree-sqrtISWAP", topology.Tree20(), weyl.BasisSqrtISwap)},
		{TreeRR20SqrtISwap(), hand("Tree-RR-sqrtISWAP", topology.TreeRR20(), weyl.BasisSqrtISwap)},
		{Corral11SqrtISwap(), hand("Corral11-sqrtISWAP", topology.Corral11(), weyl.BasisSqrtISwap)},
		{Corral12SqrtISwap(), hand("Corral12-sqrtISWAP", topology.Corral12(), weyl.BasisSqrtISwap)},
		{Hypercube16SqrtISwap(), hand("Hypercube-sqrtISWAP", topology.Hypercube16(), weyl.BasisSqrtISwap)},
		{HeavyHex84CX(), hand("Heavy-Hex-CX", topology.HeavyHex84(), weyl.BasisCX)},
		{SquareLattice84SYC(), hand("Square-Lattice-SYC", topology.SquareLattice84(), weyl.BasisSYC)},
		{Tree84SqrtISwap(), hand("Tree-sqrtISWAP", topology.Tree84(), weyl.BasisSqrtISwap)},
		{TreeRR84SqrtISwap(), hand("Tree-RR-sqrtISWAP", topology.TreeRR84(), weyl.BasisSqrtISwap)},
		{Hypercube84SqrtISwap(), hand("Hypercube-sqrtISWAP", topology.Hypercube84(), weyl.BasisSqrtISwap)},
	}
	probe := circuit.New(4)
	probe.CX(0, 1)
	probe.CX(1, 2)
	probe.CX(2, 3)
	opt := DefaultOptions()
	for _, c := range cases {
		if c.got.Name != c.want.Name {
			t.Errorf("machine name %q, want %q", c.got.Name, c.want.Name)
		}
		if c.got.Basis != c.want.Basis {
			t.Errorf("%s: basis %v, want %v", c.want.Name, c.got.Basis, c.want.Basis)
		}
		if c.got.Graph.Name != c.want.Graph.Name {
			t.Errorf("%s: graph name %q, want %q", c.want.Name, c.got.Graph.Name, c.want.Graph.Name)
		}
		if c.got.Graph.N() != c.want.Graph.N() {
			t.Errorf("%s: %d qubits, want %d", c.want.Name, c.got.Graph.N(), c.want.Graph.N())
		}
		if c.got.Graph.Fingerprint() != c.want.Graph.Fingerprint() {
			t.Errorf("%s: graph fingerprint %#x, want %#x", c.want.Name, c.got.Graph.Fingerprint(), c.want.Graph.Fingerprint())
		}
		if c.got.Timing != nil {
			t.Errorf("%s: catalog machine carries a custom timing table %v, want nil (default)", c.want.Name, c.got.Timing)
		}
		if gk, wk := c.got.EvaluateKey(probe, opt), c.want.EvaluateKey(probe, opt); gk != wk {
			t.Errorf("%s: EvaluateKey %v, want historical %v", c.want.Name, gk, wk)
		}
	}
}

func TestMachinesSetsUnchanged(t *testing.T) {
	want16 := []string{
		"Heavy-Hex-CX", "Square-Lattice-SYC", "Tree-sqrtISWAP",
		"Tree-RR-sqrtISWAP", "Hypercube-sqrtISWAP", "Corral11-sqrtISWAP",
	}
	want84 := []string{
		"Heavy-Hex-CX", "Square-Lattice-SYC", "Tree-sqrtISWAP",
		"Tree-RR-sqrtISWAP", "Hypercube-sqrtISWAP",
	}
	check := func(ms []Machine, want []string, label string) {
		if len(ms) != len(want) {
			t.Fatalf("%s: %d machines, want %d", label, len(ms), len(want))
		}
		for i, m := range ms {
			if m.Name != want[i] {
				t.Errorf("%s[%d] = %q, want %q", label, i, m.Name, want[i])
			}
		}
	}
	check(Machines16(), want16, "Machines16")
	check(Machines84(), want84, "Machines84")
}

// TestEvaluateKeyTimingSeparation pins the timing-table cache-key contract:
// nil and explicitly-default tables share the historical key, any other
// table gets its own namespace, and distinct tables never collide.
func TestEvaluateKeyTimingSeparation(t *testing.T) {
	probe := circuit.New(3)
	probe.CX(0, 1)
	probe.CX(1, 2)
	opt := DefaultOptions()

	base := Tree20SqrtISwap()
	withDefault := base
	withDefault.Timing = arch.DefaultTiming()
	fast := base
	fast.Timing = arch.DefaultTiming()
	fast.Timing["siswap"] = 0.25
	faster := base
	faster.Timing = arch.DefaultTiming()
	faster.Timing["siswap"] = 0.125

	k0 := base.EvaluateKey(probe, opt)
	if k := withDefault.EvaluateKey(probe, opt); k != k0 {
		t.Errorf("explicit default table changed the key: %v vs %v", k, k0)
	}
	kf := fast.EvaluateKey(probe, opt)
	if kf == k0 {
		t.Errorf("custom timing table shares the default key")
	}
	if kff := faster.EvaluateKey(probe, opt); kff == kf || kff == k0 {
		t.Errorf("distinct timing tables collide: %v %v %v", k0, kf, kff)
	}
}

// TestFromSpecTiming checks that spec timing overrides reach the machine as
// a full effective table and change its pulse-duration metric.
func TestFromSpecTiming(t *testing.T) {
	m, err := FromSpec("tree:levels=2,basis=sqrtiswap,t-siswap=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if d := m.GateDurations().Duration("siswap"); d != 0.25 {
		t.Errorf("siswap duration = %v, want 0.25", d)
	}
	if d := m.GateDurations().Duration("cx"); d != 1.0 {
		t.Errorf("override dropped the default cx duration: %v", d)
	}

	slow := Tree20SqrtISwap()
	probe := circuit.New(3)
	probe.CX(0, 1)
	probe.CX(1, 2)
	fastT, err := m.Transpile(probe, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slowT, err := slow.Transpile(probe, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same topology+basis+seed → same routed/translated circuit; only the
	// duration weighting differs, by exactly the table ratio.
	if fastT.Metrics.Total2Q != slowT.Metrics.Total2Q {
		t.Fatalf("timing override changed gate counts: %d vs %d", fastT.Metrics.Total2Q, slowT.Metrics.Total2Q)
	}
	if want := slowT.Metrics.PulseDuration / 2; fastT.Metrics.PulseDuration != want {
		t.Errorf("PulseDuration = %v, want %v (half of default-table %v)", fastT.Metrics.PulseDuration, want, slowT.Metrics.PulseDuration)
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, bad := range []string{"", "moebius:dim=3", "grid:rows=4"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("FromSpec(%q) succeeded, want error", bad)
		}
	}
}
