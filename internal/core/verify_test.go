package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/workloads"
)

// TestEvaluateVerifyNeutral pins the Options.Verify contract: a verified
// evaluation succeeds on the stock pipeline and returns exactly the
// metrics of an unverified one (the pass checks, never changes, the
// routing) — which is why Verify is excluded from the cache key.
func TestEvaluateVerifyNeutral(t *testing.T) {
	c := workloads.QuantumVolume(8, rand.New(rand.NewSource(6)))
	for _, m := range []Machine{Tree20SqrtISwap(), Corral11SqrtISwap(), HeavyHex20CX()} {
		base := Options{Seed: 2022, Trials: 5}
		plain, err := m.Evaluate(c, base)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		base.Verify = true
		verified, err := m.Evaluate(c, base)
		if err != nil {
			t.Fatalf("%s verified: %v", m.Name, err)
		}
		if plain != verified {
			t.Fatalf("%s: verified metrics differ:\n  plain    %+v\n  verified %+v", m.Name, plain, verified)
		}
	}
}

// TestEvaluateVerifyBypassesCache pins the assurance contract: a verified
// Evaluate must run the full pipeline even when an identical (unverified)
// evaluation is already cached — a hit would silently skip verification.
func TestEvaluateVerifyBypassesCache(t *testing.T) {
	c := workloads.QuantumVolume(6, rand.New(rand.NewSource(9)))
	m := Tree20SqrtISwap()
	store, err := NewMetricsCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 2022, Trials: 5, Cache: store}
	warm, err := m.Evaluate(c, opt) // fills the cache
	if err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	opt.Verify = true
	verified, err := m.Evaluate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Hits() != before.Hits() {
		t.Fatalf("verified Evaluate consulted the cache (%d -> %d hits); it must re-run the pipeline", before.Hits(), after.Hits())
	}
	if warm != verified {
		t.Fatalf("verified metrics diverged from cached ones:\n  cached   %+v\n  verified %+v", warm, verified)
	}
}

// TestEvaluateVerifyGuided covers the profile-guided pipeline: VerifyPass
// sits after the guided re-route, so it checks the routing that is
// actually kept.
func TestEvaluateVerifyGuided(t *testing.T) {
	c := workloads.QuantumVolume(8, rand.New(rand.NewSource(7)))
	m := Tree20SqrtISwap()
	opt := Options{Seed: 2022, Trials: 5, ProfileGuided: true, Verify: true}
	if _, err := m.Evaluate(c, opt); err != nil {
		t.Fatalf("guided verified evaluation: %v", err)
	}
}

// TestEvaluateVerifyWidthError pins the descriptive failure on machines
// whose routed circuits exceed the simulator's capacity.
func TestEvaluateVerifyWidthError(t *testing.T) {
	c := workloads.QuantumVolume(32, rand.New(rand.NewSource(8)))
	m := Hypercube84SqrtISwap()
	_, err := m.Evaluate(c, Options{Seed: 2022, Trials: 5, Verify: true})
	if err == nil {
		t.Skip("32-qubit routing stayed simulable; width error not exercised")
	}
	if !strings.Contains(err.Error(), "verify pass") {
		t.Fatalf("width failure %q does not name the verify pass", err)
	}
}
