// Package snail models the physical organization of the paper's machines:
// modules of qubits attached to SNAIL couplers (paper §4.2–4.3). It
// validates that a topology is SNAIL-realizable (each SNAIL couples at most
// MaxCouplings elements to avoid frequency crowding), allocates parametric
// drive frequencies so every coupling in a SNAIL's scope has a unique
// difference frequency (the addressing requirement of §4.1), and schedules
// gates under configurable modulator-parallelism assumptions (the SNAIL
// permits simultaneous gates in one neighborhood; the ablation serializes
// them).
package snail

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// MaxCouplings is the number of elements one SNAIL can address without
// frequency crowding ("a SNAIL can typically interact among as many as six
// qubits", paper §4.3).
const MaxCouplings = 6

// Module is one SNAIL and the (global) qubit indices attached to it. Every
// pair of attached qubits is a usable coupling.
type Module struct {
	Name   string
	Qubits []int
}

// Hardware is a SNAIL-modular machine: a set of modules over n qubits.
type Hardware struct {
	Name    string
	N       int
	Modules []Module

	graph *topology.Graph
}

// Build validates and assembles a hardware description.
func Build(name string, n int, modules []Module) (*Hardware, error) {
	if n < 1 {
		return nil, fmt.Errorf("snail: need at least one qubit")
	}
	seenAny := make([]bool, n)
	for mi, m := range modules {
		if len(m.Qubits) < 2 {
			return nil, fmt.Errorf("snail: module %d (%s) couples %d elements; need ≥ 2", mi, m.Name, len(m.Qubits))
		}
		if len(m.Qubits) > MaxCouplings {
			return nil, fmt.Errorf("snail: module %d (%s) couples %d elements; SNAIL limit is %d (frequency crowding)",
				mi, m.Name, len(m.Qubits), MaxCouplings)
		}
		seen := make(map[int]bool)
		for _, q := range m.Qubits {
			if q < 0 || q >= n {
				return nil, fmt.Errorf("snail: module %d references qubit %d outside [0,%d)", mi, q, n)
			}
			if seen[q] {
				return nil, fmt.Errorf("snail: module %d repeats qubit %d", mi, q)
			}
			seen[q] = true
			seenAny[q] = true
		}
	}
	for q, ok := range seenAny {
		if !ok {
			return nil, fmt.Errorf("snail: qubit %d belongs to no module", q)
		}
	}
	h := &Hardware{Name: name, N: n, Modules: modules}
	g := topology.NewGraph(name, n)
	for _, m := range modules {
		for i := 0; i < len(m.Qubits); i++ {
			for j := i + 1; j < len(m.Qubits); j++ {
				g.AddEdge(m.Qubits[i], m.Qubits[j])
			}
		}
	}
	h.graph = g
	return h, nil
}

// Graph returns the coupling graph realized by the modules (all pairs
// within each SNAIL scope).
func (h *Hardware) Graph() *topology.Graph { return h.graph }

// ModulesWithPair returns the indices of modules whose SNAIL can drive the
// coupling (a, b).
func (h *Hardware) ModulesWithPair(a, b int) []int {
	var out []int
	for i, m := range h.Modules {
		hasA, hasB := false, false
		for _, q := range m.Qubits {
			if q == a {
				hasA = true
			}
			if q == b {
				hasB = true
			}
		}
		if hasA && hasB {
			out = append(out, i)
		}
	}
	return out
}

// ---- Catalog: the paper's hardware builds ----

// TreeHardware returns the two-level 20-qubit tree (paper Fig. 5a/7a):
// a central router SNAIL over four W qubits plus four 5-element modules.
// Qubit numbering matches topology.Tree20.
func TreeHardware() (*Hardware, error) {
	modules := []Module{{Name: "router", Qubits: []int{0, 1, 2, 3}}}
	for k := 0; k < 4; k++ {
		m := Module{Name: fmt.Sprintf("module-%d", k), Qubits: []int{k}}
		for j := 0; j < 4; j++ {
			m.Qubits = append(m.Qubits, 4+4*k+j)
		}
		modules = append(modules, m)
	}
	return Build("Tree", 20, modules)
}

// Tree84Hardware returns the three-level 84-qubit tree (paper Fig. 8),
// numbering as in topology.Tree84.
func Tree84Hardware() (*Hardware, error) {
	modules := []Module{{Name: "router", Qubits: []int{0, 1, 2, 3}}}
	for k := 0; k < 4; k++ {
		m := Module{Name: fmt.Sprintf("router-%d", k), Qubits: []int{k}}
		for j := 0; j < 4; j++ {
			m.Qubits = append(m.Qubits, 4+4*k+j)
		}
		modules = append(modules, m)
	}
	for p := 0; p < 16; p++ {
		m := Module{Name: fmt.Sprintf("leaf-%d", p), Qubits: []int{4 + p}}
		for j := 0; j < 4; j++ {
			m.Qubits = append(m.Qubits, 20+4*p+j)
		}
		modules = append(modules, m)
	}
	return Build("Tree-84", 84, modules)
}

// CorralHardware returns the fence-post ring (paper Fig. 9): one SNAIL per
// post, coupling every fence qubit that touches it. Numbering matches
// topology.CorralRing.
func CorralHardware(posts int, strides []int) (*Hardware, error) {
	if posts < 3 {
		return nil, fmt.Errorf("snail: corral needs ≥3 posts")
	}
	n := posts * len(strides)
	attached := make([][]int, posts)
	for l, s := range strides {
		for i := 0; i < posts; i++ {
			q := l*posts + i
			a, b := i, (i+s)%posts
			attached[a] = append(attached[a], q)
			attached[b] = append(attached[b], q)
		}
	}
	modules := make([]Module, posts)
	for p := 0; p < posts; p++ {
		modules[p] = Module{Name: fmt.Sprintf("post-%d", p), Qubits: attached[p]}
	}
	return Build(fmt.Sprintf("Corral-%d", posts), n, modules)
}

// ---- Frequency allocation ----

// AllocateFrequencies assigns each qubit a frequency f = base + k·spacing
// (k a non-negative integer) such that within every module all pairwise
// difference frequencies are distinct — the SNAIL's parametric addressing
// requirement: each gate is selected purely by its pump frequency
// (paper §4.1). Greedy search over integer offsets; deterministic.
func (h *Hardware) AllocateFrequencies(base, spacing float64) ([]float64, error) {
	if spacing <= 0 {
		return nil, fmt.Errorf("snail: spacing must be positive")
	}
	offsets := make([]int, h.N)
	for i := range offsets {
		offsets[i] = -1
	}
	// Modules touching each qubit.
	byQubit := make([][]int, h.N)
	for mi, m := range h.Modules {
		for _, q := range m.Qubits {
			byQubit[q] = append(byQubit[q], mi)
		}
	}
	ok := func(q, cand int) bool {
		for _, mi := range byQubit[q] {
			diffs := make(map[int]bool)
			var assigned []int
			for _, p := range h.Modules[mi].Qubits {
				if p == q || offsets[p] < 0 {
					continue
				}
				assigned = append(assigned, offsets[p])
			}
			// Existing pairwise differences in this module.
			for i := 0; i < len(assigned); i++ {
				for j := i + 1; j < len(assigned); j++ {
					d := assigned[i] - assigned[j]
					if d < 0 {
						d = -d
					}
					diffs[d] = true
				}
			}
			for _, a := range assigned {
				d := cand - a
				if d < 0 {
					d = -d
				}
				if d == 0 || diffs[d] {
					return false
				}
				diffs[d] = true
			}
		}
		return true
	}
	for q := 0; q < h.N; q++ {
		assigned := false
		for cand := 0; cand < 64*h.N; cand++ {
			if ok(q, cand) {
				offsets[q] = cand
				assigned = true
				break
			}
		}
		if !assigned {
			return nil, fmt.Errorf("snail: frequency allocation failed for qubit %d", q)
		}
	}
	freqs := make([]float64, h.N)
	for q, k := range offsets {
		freqs[q] = base + float64(k)*spacing
	}
	return freqs, nil
}

// VerifyFrequencies checks the parametric addressing property: within each
// module, all pairwise |fi−fj| are distinct (within tol).
func (h *Hardware) VerifyFrequencies(freqs []float64, tol float64) error {
	if len(freqs) != h.N {
		return fmt.Errorf("snail: %d frequencies for %d qubits", len(freqs), h.N)
	}
	for mi, m := range h.Modules {
		var diffs []float64
		for i := 0; i < len(m.Qubits); i++ {
			for j := i + 1; j < len(m.Qubits); j++ {
				d := freqs[m.Qubits[i]] - freqs[m.Qubits[j]]
				if d < 0 {
					d = -d
				}
				if d < tol {
					return fmt.Errorf("snail: module %d: qubits %d,%d share a frequency", mi, m.Qubits[i], m.Qubits[j])
				}
				diffs = append(diffs, d)
			}
		}
		sort.Float64s(diffs)
		for i := 1; i < len(diffs); i++ {
			if diffs[i]-diffs[i-1] < tol {
				return fmt.Errorf("snail: module %d: duplicate difference frequency %g", mi, diffs[i])
			}
		}
	}
	return nil
}

// ---- Scheduling ----

// Schedule computes the makespan of a physical circuit on this hardware.
// durations maps op names to pulse lengths (missing names cost 0, e.g. 1Q
// gates). If serializePerSNAIL is true, two-qubit gates driven by the same
// SNAIL cannot overlap in time — the ablation for the SNAIL's
// parallel-drive capability ("multiple gates in parallel in the same
// neighborhood", paper §4.1); with false, only qubit conflicts serialize.
func (h *Hardware) Schedule(c *circuit.Circuit, durations map[string]float64, serializePerSNAIL bool) (float64, error) {
	if c.N > h.N {
		return 0, fmt.Errorf("snail: circuit uses %d qubits, hardware has %d", c.N, h.N)
	}
	qubitFree := make([]float64, h.N)
	moduleFree := make([]float64, len(h.Modules))
	makespan := 0.0
	for _, op := range c.Ops {
		start := 0.0
		for _, q := range op.Qubits {
			if qubitFree[q] > start {
				start = qubitFree[q]
			}
		}
		var mod = -1
		if op.Is2Q() {
			mods := h.ModulesWithPair(op.Qubits[0], op.Qubits[1])
			if len(mods) == 0 {
				return 0, fmt.Errorf("snail: no SNAIL can drive op %v", op)
			}
			// Pick the module that frees earliest.
			mod = mods[0]
			for _, mi := range mods[1:] {
				if moduleFree[mi] < moduleFree[mod] {
					mod = mi
				}
			}
			if serializePerSNAIL && moduleFree[mod] > start {
				start = moduleFree[mod]
			}
		}
		end := start + durations[op.Name]
		for _, q := range op.Qubits {
			qubitFree[q] = end
		}
		if mod >= 0 && serializePerSNAIL {
			moduleFree[mod] = end
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan, nil
}
