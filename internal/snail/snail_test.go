package snail

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/topology"
)

func TestTreeHardwareMatchesTopology(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	want := topology.Tree20()
	g := h.Graph()
	if g.N() != want.N() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("tree hardware graph %d/%d, want %d/%d", g.N(), g.NumEdges(), want.N(), want.NumEdges())
	}
	for _, e := range want.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestTree84HardwareMatchesTopology(t *testing.T) {
	h, err := Tree84Hardware()
	if err != nil {
		t.Fatal(err)
	}
	want := topology.Tree84()
	g := h.Graph()
	if g.N() != want.N() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("tree84 hardware graph %d/%d, want %d/%d", g.N(), g.NumEdges(), want.N(), want.NumEdges())
	}
}

func TestCorralHardwareMatchesTopology(t *testing.T) {
	for _, tc := range []struct {
		strides []int
		want    *topology.Graph
	}{
		{[]int{1, 1}, topology.Corral11()},
		{[]int{1, 3}, topology.Corral12()},
	} {
		h, err := CorralHardware(8, tc.strides)
		if err != nil {
			t.Fatal(err)
		}
		g := h.Graph()
		if g.N() != tc.want.N() || g.NumEdges() != tc.want.NumEdges() {
			t.Fatalf("corral%v hardware graph %d/%d, want %d/%d",
				tc.strides, g.N(), g.NumEdges(), tc.want.N(), tc.want.NumEdges())
		}
		for _, e := range tc.want.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("corral%v missing edge %v", tc.strides, e)
			}
		}
	}
}

func TestSNAILCapEnforced(t *testing.T) {
	// 7 elements on one SNAIL exceeds the frequency-crowding limit.
	_, err := Build("bad", 7, []Module{{Name: "overfull", Qubits: []int{0, 1, 2, 3, 4, 5, 6}}})
	if err == nil {
		t.Fatal("7-element module accepted (limit is 6)")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		modules []Module
	}{
		{"uncovered qubit", 3, []Module{{Qubits: []int{0, 1}}}},
		{"repeated qubit", 2, []Module{{Qubits: []int{0, 0}}}},
		{"out of range", 2, []Module{{Qubits: []int{0, 5}}}},
		{"single element", 2, []Module{{Qubits: []int{0}}, {Qubits: []int{0, 1}}}},
	}
	for _, tc := range cases {
		if _, err := Build(tc.name, tc.n, tc.modules); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFrequencyAllocationTree(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := h.AllocateFrequencies(4.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyFrequencies(freqs, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyAllocationCorralAndTree84(t *testing.T) {
	for _, build := range []func() (*Hardware, error){
		Tree84Hardware,
		func() (*Hardware, error) { return CorralHardware(8, []int{1, 3}) },
		func() (*Hardware, error) { return CorralHardware(8, []int{1, 1}) },
	} {
		h, err := build()
		if err != nil {
			t.Fatal(err)
		}
		freqs, err := h.AllocateFrequencies(4.0, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if err := h.VerifyFrequencies(freqs, 1e-9); err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
	}
}

func TestVerifyFrequenciesCatchesDuplicates(t *testing.T) {
	h, err := Build("pair", 3, []Module{{Qubits: []int{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Equally spaced frequencies have duplicate differences.
	if err := h.VerifyFrequencies([]float64{1.0, 2.0, 3.0}, 1e-9); err == nil {
		t.Fatal("arithmetic progression accepted (differences collide)")
	}
	if err := h.VerifyFrequencies([]float64{1.0, 2.0, 4.0}, 1e-9); err != nil {
		t.Fatalf("Sidon triple rejected: %v", err)
	}
}

func TestScheduleParallelVsSerialized(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint gates inside module 0 (qubits 4,5 and 6,7 share a SNAIL).
	c := circuit.New(20)
	c.SqrtISwap(4, 5)
	c.SqrtISwap(6, 7)
	dur := map[string]float64{"siswap": 0.5}
	par, err := h.Schedule(c, dur, false)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := h.Schedule(c, dur, true)
	if err != nil {
		t.Fatal(err)
	}
	if par != 0.5 {
		t.Errorf("parallel makespan = %g, want 0.5", par)
	}
	if ser != 1.0 {
		t.Errorf("serialized makespan = %g, want 1.0 (same SNAIL)", ser)
	}
}

func TestScheduleQubitConflicts(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(20)
	c.SqrtISwap(4, 5)
	c.SqrtISwap(5, 6) // shares qubit 5: must serialize regardless
	dur := map[string]float64{"siswap": 0.5}
	par, err := h.Schedule(c, dur, false)
	if err != nil {
		t.Fatal(err)
	}
	if par != 1.0 {
		t.Errorf("qubit-conflict makespan = %g, want 1.0", par)
	}
}

func TestScheduleRejectsUndriveableGate(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(20)
	c.SqrtISwap(4, 8) // different leaf modules, no shared SNAIL
	if _, err := h.Schedule(c, map[string]float64{"siswap": 0.5}, false); err == nil {
		t.Fatal("cross-module gate without shared SNAIL accepted")
	}
}

func TestModulesWithPair(t *testing.T) {
	h, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	// W0-W1 is driven by the router SNAIL only.
	mods := h.ModulesWithPair(0, 1)
	if len(mods) != 1 || h.Modules[mods[0]].Name != "router" {
		t.Fatalf("W0-W1 modules = %v", mods)
	}
	// W0 with its leaf is driven by module-0.
	mods = h.ModulesWithPair(0, 4)
	if len(mods) != 1 || h.Modules[mods[0]].Name != "module-0" {
		t.Fatalf("W0-leaf modules = %v", mods)
	}
}
