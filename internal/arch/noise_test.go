package arch

import (
	"strings"
	"testing"
)

func TestNoiseSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"grid:e2q=0.002,rows=4",
		"grid:cols=4,e2q=0.001,e2q-0-1=0.05,e2q-2-3=0.1,rows=4,tdec=0.003",
		"hypercube:dim=3,tdec=0.01",
	} {
		a := mustParse(t, spec)
		if a.Noise == nil {
			t.Fatalf("Parse(%q) dropped the noise profile", spec)
		}
		back := mustParse(t, a.String())
		if !a.Equal(back) {
			t.Fatalf("round trip %q -> %q -> not equal", spec, a.String())
		}
	}
}

func TestNoiseSpecValidation(t *testing.T) {
	for _, spec := range []string{
		"grid:rows=4,e2q=1.0",     // probability must be < 1
		"grid:rows=4,e2q=-0.1",    // negative probability
		"grid:rows=4,e2q=abc",     // not a number
		"grid:rows=4,tdec=-1",     // negative rate
		"grid:rows=4,e2q-0-0=0.1", // self-edge
		"grid:rows=4,e2q-0=0.1",   // malformed edge key
		"grid:rows=4,e2q--1-2=0.1",
		"grid:rows=4,e2q-0-1=1.5",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid noise key", spec)
		}
	}
}

// TestAllZeroNoiseNormalizesToNil: explicit zero noise keys parse to a nil
// profile, so "grid:rows=4,e2q=0" and "grid:rows=4" are the same Arch —
// String round-trips exactly and Equal treats them as identical.
func TestAllZeroNoiseNormalizesToNil(t *testing.T) {
	zero := mustParse(t, "grid:rows=4,cols=4,e2q=0,tdec=0")
	if zero.Noise != nil {
		t.Fatalf("all-zero noise profile survived parsing: %+v", zero.Noise)
	}
	plain := mustParse(t, "grid:rows=4,cols=4")
	if !zero.Equal(plain) {
		t.Fatal("zero-noise spec != noise-free spec")
	}
	if strings.Contains(zero.String(), "e2q") {
		t.Fatalf("canonical form leaked zero noise keys: %s", zero.String())
	}
}

func TestParseNoise(t *testing.T) {
	p, err := ParseNoise("e2q=0.002,tdec=0.001,e2q-3-1=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.E2Q != 0.002 || p.TDec != 0.001 {
		t.Fatalf("base rates wrong: %+v", p)
	}
	// Edge keys store order-insensitively as (low, high).
	if p.EdgeE2Q[[2]int{1, 3}] != 0.05 {
		t.Fatalf("edge override missing: %+v", p.EdgeE2Q)
	}
	// All-zero parses to the nil (noiseless) profile, mirroring the spec
	// grammar's normalization.
	if p, err := ParseNoise("e2q=0,tdec=0"); err != nil || p != nil {
		t.Fatalf("ParseNoise all-zero = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{
		"",                 // empty profile is a caller error
		"bogus=1",          // unknown key
		"e2q=0.1,e2q=0.2",  // duplicate
		"rows=4,e2q=0.002", // arch keys don't belong here
	} {
		if _, err := ParseNoise(bad); err == nil {
			t.Errorf("ParseNoise(%q) succeeded, want error", bad)
		}
	}
}

func TestNoiseProfileEdgeError(t *testing.T) {
	p := &NoiseProfile{E2Q: 0.01, EdgeE2Q: map[[2]int]float64{{1, 3}: 0.2}}
	if got := p.EdgeError(3, 1); got != 0.2 {
		t.Fatalf("override not order-insensitive: %g", got)
	}
	if got := p.EdgeError(0, 1); got != 0.01 {
		t.Fatalf("fallback to E2Q failed: %g", got)
	}
	var nilProfile *NoiseProfile
	if got := nilProfile.EdgeError(0, 1); got != 0 {
		t.Fatalf("nil profile edge error = %g, want 0", got)
	}
}

func TestNoiseProfileEqualClone(t *testing.T) {
	a := &NoiseProfile{E2Q: 0.01, TDec: 0.5, EdgeE2Q: map[[2]int]float64{{0, 1}: 0.2}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.EdgeE2Q[[2]int{0, 1}] = 0.3
	if a.Equal(b) {
		t.Fatal("clone shares the override map with its source")
	}
	var nilP *NoiseProfile
	if !nilP.Equal(&NoiseProfile{}) || !(&NoiseProfile{}).Equal(nilP) {
		t.Fatal("nil and all-zero profiles must compare equal")
	}
	if nilP.Clone() != nil {
		t.Fatal("nil clone must stay nil")
	}
}

func TestNoiseProfileEdgesSorted(t *testing.T) {
	p := &NoiseProfile{EdgeE2Q: map[[2]int]float64{{2, 5}: 0.1, {0, 1}: 0.2, {2, 3}: 0.3}}
	edges := p.Edges()
	want := [][2]int{{0, 1}, {2, 3}, {2, 5}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}
