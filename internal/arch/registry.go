package arch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/topology"
)

// Family is one registered topology generator: a name usable as the head of
// a spec string, the parameter keys it accepts, and a Build function that
// validates those parameters and realizes the coupling graph. Families
// return errors (a spec can come from a flag or a config file); the
// underlying topology constructors keep their panic-on-programmer-error
// contract.
type Family struct {
	Name string
	// Usage is a one-line human summary of the accepted parameters, shown
	// in CLI help and parse errors.
	Usage string
	// Keys lists the family-specific parameter keys (the reserved
	// basis/name/t-* keys are accepted everywhere and not listed).
	Keys []string
	// Smoke is a representative spec used by integrity checks and scripts
	// to build one instance of the family cheaply.
	Smoke string
	// Build realizes the topology from a parsed spec.
	Build func(a Arch) (*topology.Graph, error)
}

func (f Family) hasKey(key string) bool {
	for _, k := range f.Keys {
		if k == key {
			return true
		}
	}
	return false
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Family{}
)

// Register adds a family to the registry. Duplicate or malformed names are
// rejected: families are global vocabulary, and a silent overwrite would
// let two packages fight over what a spec string means.
func Register(f Family) error {
	if f.Name == "" || strings.ContainsAny(f.Name, ":,;= \t\n") {
		return fmt.Errorf("arch: invalid family name %q", f.Name)
	}
	if f.Build == nil {
		return fmt.Errorf("arch: family %q has no Build function", f.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[f.Name]; dup {
		return fmt.Errorf("arch: family %q already registered", f.Name)
	}
	registry[f.Name] = f
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(f Family) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Lookup finds a registered family by name.
func Lookup(name string) (Family, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Families returns every registered family sorted by name.
func Families() []Family {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the sorted registered family names.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// Build realizes the spec's coupling graph via its family's generator.
func (a Arch) Build() (*topology.Graph, error) {
	f, ok := Lookup(a.Family)
	if !ok {
		return nil, fmt.Errorf("arch: unknown family %q", a.Family)
	}
	return f.Build(a)
}

// Label returns the spec's display name: the explicit name= parameter when
// set, else the canonical spec string.
func (a Arch) Label() string {
	if a.Name != "" {
		return a.Name
	}
	return a.String()
}

// reqInt reads a required integer parameter.
func reqInt(a Arch, key string) (int, error) {
	raw, ok := a.Params[key]
	if !ok {
		return 0, fmt.Errorf("arch: %s: missing required parameter %q", a.Family, key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("arch: %s: parameter %s=%q is not an integer", a.Family, key, raw)
	}
	return v, nil
}

// optInt reads an optional integer parameter, falling back to def.
func optInt(a Arch, key string, def int) (int, error) {
	if _, ok := a.Params[key]; !ok {
		return def, nil
	}
	return reqInt(a, key)
}

// reqIntList reads a required '+'-separated integer list parameter.
func reqIntList(a Arch, key string) ([]int, error) {
	raw, ok := a.Params[key]
	if !ok {
		return nil, fmt.Errorf("arch: %s: missing required parameter %q", a.Family, key)
	}
	parts := strings.Split(raw, "+")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("arch: %s: parameter %s=%q is not a '+'-separated integer list", a.Family, key, raw)
		}
		out = append(out, v)
	}
	return out, nil
}

// inRange validates an integer parameter's bounds with a uniform error.
func inRange(fam, key string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("arch: %s: %s=%d out of range [%d,%d]", fam, key, v, lo, hi)
	}
	return nil
}

// rowsCols reads the rows/cols pair shared by the lattice families.
func rowsCols(a Arch) (rows, cols int, err error) {
	if rows, err = reqInt(a, "rows"); err != nil {
		return
	}
	if cols, err = reqInt(a, "cols"); err != nil {
		return
	}
	if err = inRange(a.Family, "rows", rows, 1, 1024); err != nil {
		return
	}
	err = inRange(a.Family, "cols", cols, 1, 1024)
	return
}

// The built-in families cover every topology in the paper's comparison
// (Tables 1 and 2): the transmon lattices of §2.4 and the SNAIL-enabled
// modular designs of §4.3, each parameterized past the paper's fixed sizes.
func init() {
	MustRegister(Family{
		Name:  "grid",
		Usage: "grid:rows=R,cols=C — square lattice (Sycamore-class coupling, Fig. 2a)",
		Keys:  []string{"rows", "cols"},
		Smoke: "grid:rows=4,cols=4",
		Build: func(a Arch) (*topology.Graph, error) {
			rows, cols, err := rowsCols(a)
			if err != nil {
				return nil, err
			}
			return topology.SquareLattice(rows, cols), nil
		},
	})
	MustRegister(Family{
		Name:  "hex",
		Usage: "hex:rows=R,cols=C — brick-wall honeycomb lattice (Fig. 2d)",
		Keys:  []string{"rows", "cols"},
		Smoke: "hex:rows=4,cols=5",
		Build: func(a Arch) (*topology.Graph, error) {
			rows, cols, err := rowsCols(a)
			if err != nil {
				return nil, err
			}
			return topology.HexLattice(rows, cols), nil
		},
	})
	MustRegister(Family{
		Name:  "altdiag",
		Usage: "altdiag:rows=R,cols=C — square lattice + alternating diagonals (Fig. 2c)",
		Keys:  []string{"rows", "cols"},
		Smoke: "altdiag:rows=4,cols=4",
		Build: func(a Arch) (*topology.Graph, error) {
			rows, cols, err := rowsCols(a)
			if err != nil {
				return nil, err
			}
			return topology.LatticeAltDiag(rows, cols), nil
		},
	})
	MustRegister(Family{
		Name: "heavyhex",
		Usage: "heavyhex:rows=R,cols=C — IBM row-form heavy-hex (Fig. 2b); " +
			"heavyhex:fragment=20 — the paper's fused two-hexagon 20-qubit fragment",
		Keys:  []string{"rows", "cols", "fragment"},
		Smoke: "heavyhex:fragment=20",
		Build: func(a Arch) (*topology.Graph, error) {
			if frag, ok := a.Params["fragment"]; ok {
				if len(a.Params) != 1 {
					return nil, fmt.Errorf("arch: heavyhex: fragment excludes rows/cols")
				}
				if frag != "20" {
					return nil, fmt.Errorf("arch: heavyhex: unknown fragment %q (only 20)", frag)
				}
				return topology.HeavyHex20(), nil
			}
			rows, cols, err := rowsCols(a)
			if err != nil {
				return nil, err
			}
			if rows < 2 || cols < 2 {
				return nil, fmt.Errorf("arch: heavyhex: needs rows,cols ≥ 2")
			}
			return topology.HeavyHexRows(rows, cols), nil
		},
	})
	MustRegister(Family{
		Name:  "tree",
		Usage: "tree:levels=L[,radix=K] — modular router tree, K-ary (default 4), L∈[2,6] router levels (Fig. 7a/8)",
		Keys:  []string{"levels", "radix"},
		Smoke: "tree:levels=2",
		Build: func(a Arch) (*topology.Graph, error) {
			levels, err := reqInt(a, "levels")
			if err != nil {
				return nil, err
			}
			radix, err := optInt(a, "radix", 4)
			if err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "levels", levels, 2, 6); err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "radix", radix, 2, 8); err != nil {
				return nil, err
			}
			return topology.Tree(radix, levels), nil
		},
	})
	MustRegister(Family{
		Name:  "tree-rr",
		Usage: "tree-rr:levels=L[,radix=K] — round-robin router tree, K-ary (default 4), L∈[2,3] (Fig. 7b)",
		Keys:  []string{"levels", "radix"},
		Smoke: "tree-rr:levels=2",
		Build: func(a Arch) (*topology.Graph, error) {
			levels, err := reqInt(a, "levels")
			if err != nil {
				return nil, err
			}
			radix, err := optInt(a, "radix", 4)
			if err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "levels", levels, 2, 3); err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "radix", radix, 2, 8); err != nil {
				return nil, err
			}
			return topology.TreeRR(radix, levels), nil
		},
	})
	MustRegister(Family{
		Name:  "corral",
		Usage: "corral:posts=P,strides=S1+S2+... — ring of P SNAIL posts with one fence level per stride (Fig. 9)",
		Keys:  []string{"posts", "strides"},
		Smoke: "corral:posts=8,strides=1+1",
		Build: func(a Arch) (*topology.Graph, error) {
			posts, err := reqInt(a, "posts")
			if err != nil {
				return nil, err
			}
			strides, err := reqIntList(a, "strides")
			if err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "posts", posts, 3, 4096); err != nil {
				return nil, err
			}
			if len(strides) == 0 {
				return nil, fmt.Errorf("arch: corral: needs at least one stride")
			}
			for _, s := range strides {
				if s < 1 || s >= posts {
					return nil, fmt.Errorf("arch: corral: stride %d out of range [1,%d)", s, posts)
				}
			}
			return topology.CorralRing(posts, strides), nil
		},
	})
	MustRegister(Family{
		Name:  "hypercube",
		Usage: "hypercube:dim=D[,trim=N] — binary D-cube, optionally trimmed to its first N vertices (Harper segment, Fig. 3)",
		Keys:  []string{"dim", "trim"},
		Smoke: "hypercube:dim=4",
		Build: func(a Arch) (*topology.Graph, error) {
			dim, err := reqInt(a, "dim")
			if err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "dim", dim, 1, 20); err != nil {
				return nil, err
			}
			if _, ok := a.Params["trim"]; !ok {
				return topology.Hypercube(dim), nil
			}
			trim, err := reqInt(a, "trim")
			if err != nil {
				return nil, err
			}
			if err := inRange(a.Family, "trim", trim, 1, 1<<dim); err != nil {
				return nil, err
			}
			return topology.HypercubeTrimmed(dim, trim), nil
		},
	})
}
