package arch

import (
	"strings"
	"testing"

	"repro/internal/weyl"
)

func mustParse(t *testing.T, s string) Arch {
	t.Helper()
	a, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return a
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"grid:rows=4,cols=4",
		"grid:rows=7,cols=12,basis=syc",
		"heavyhex:fragment=20,basis=cx",
		"heavyhex:rows=5,cols=14",
		"tree:levels=2,basis=sqrtiswap",
		"tree:levels=3,radix=3",
		"tree-rr:levels=2,basis=sqrtiswap,name=Tree-RR-sqrtISWAP",
		"corral:posts=8,strides=1+1,basis=sqrtiswap",
		"corral:posts=11,strides=1+3+5",
		"hypercube:dim=4,basis=iswap",
		"hypercube:dim=7,trim=84,t-siswap=0.4,t-cx=2",
		"hex:rows=4,cols=5,name=Honeycomb",
		"altdiag:rows=7,cols=12",
		"corral:posts=8,strides=1+1,name=Corral(1,1)",
	}
	for _, s := range specs {
		a := mustParse(t, s)
		b := mustParse(t, a.String())
		if !a.Equal(b) {
			t.Errorf("round trip broke %q: %q reparsed as %+v, want %+v", s, a.String(), b, a)
		}
		if c := mustParse(t, b.String()); b.String() != c.String() {
			t.Errorf("canonical form of %q is unstable: %q vs %q", s, b.String(), c.String())
		}
	}
}

func TestParseDefaults(t *testing.T) {
	a := mustParse(t, "grid:rows=4,cols=4")
	if a.Basis != weyl.BasisCX {
		t.Errorf("default basis = %v, want CX", a.Basis)
	}
	if a.Timing != nil {
		t.Errorf("default timing = %v, want nil (meaning DefaultTiming)", a.Timing)
	}
	if !a.EffectiveTiming().Equal(DefaultTiming()) {
		t.Errorf("EffectiveTiming() = %v, want DefaultTiming", a.EffectiveTiming())
	}
	if got := a.Label(); got != a.String() {
		t.Errorf("Label() without name = %q, want canonical spec %q", got, a.String())
	}
	named := mustParse(t, "grid:rows=4,cols=4,name=Square-Lattice")
	if named.Label() != "Square-Lattice" {
		t.Errorf("Label() with name = %q", named.Label())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, wantFrag string }{
		{"", "empty spec"},
		{"moebius:rows=3", "unknown family"},
		{"grid:rows", "malformed parameter"},
		{"grid:rows=4,rows=5", "duplicate parameter"},
		{"grid:rows=4,cols=4,posts=8", "unknown parameter"},
		{"grid:rows=4,cols=4,basis=cz", "unknown basis"},
		{"grid:rows=4,cols=4,t-cx=fast", "bad timing override"},
		{"grid:rows=4,cols=4,t-cx=-1", "bad timing override"},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil || !strings.Contains(err.Error(), c.wantFrag) {
			t.Errorf("Parse(%q) err = %v, want fragment %q", c.spec, err, c.wantFrag)
		}
	}
}

func TestTimingOverridesLayerOverDefault(t *testing.T) {
	a := mustParse(t, "grid:rows=4,cols=4,t-siswap=0.4")
	eff := a.EffectiveTiming()
	if eff.Duration("siswap") != 0.4 {
		t.Errorf("override lost: siswap = %v", eff.Duration("siswap"))
	}
	if eff.Duration("cx") != 1.0 || eff.Duration("swap") != 1.5 {
		t.Errorf("non-overridden gates changed: %v", eff)
	}
	if DefaultTiming().Duration("siswap") != 0.5 {
		t.Errorf("EffectiveTiming mutated the default table")
	}
}

func TestTimingEqualClone(t *testing.T) {
	d := DefaultTiming()
	if !d.Equal(d.Clone()) {
		t.Errorf("clone not equal to original")
	}
	c := d.Clone()
	c["cx"] = 9
	if d.Equal(c) || d.Duration("cx") != 1.0 {
		t.Errorf("clone aliases original")
	}
	if (Timing)(nil).Equal(Timing{"cx": 1}) || !(Timing)(nil).Equal(Timing{}) {
		t.Errorf("nil-timing equality wrong")
	}
	if (Timing)(nil).Clone() != nil {
		t.Errorf("Clone(nil) != nil")
	}
}

// TestRegistryIntegrity is the registry's structural invariant, also run by
// scripts/check.sh: every registered family parses and builds its smoke
// spec into a nonempty connected graph, and no two families collide on
// name or produce fingerprint-identical smoke topologies.
func TestRegistryIntegrity(t *testing.T) {
	fams := Families()
	if len(fams) < 8 {
		t.Fatalf("only %d families registered, want the 8 built-ins", len(fams))
	}
	seenNames := map[string]bool{}
	seenPrints := map[uint64]string{}
	for _, f := range fams {
		if seenNames[f.Name] {
			t.Errorf("duplicate family name %q", f.Name)
		}
		seenNames[f.Name] = true
		if f.Smoke == "" || f.Usage == "" {
			t.Errorf("family %q missing smoke spec or usage", f.Name)
			continue
		}
		a, err := Parse(f.Smoke)
		if err != nil {
			t.Errorf("family %q smoke spec does not parse: %v", f.Name, err)
			continue
		}
		if a.Family != f.Name {
			t.Errorf("family %q smoke spec names family %q", f.Name, a.Family)
		}
		g, err := a.Build()
		if err != nil {
			t.Errorf("family %q smoke build: %v", f.Name, err)
			continue
		}
		if g.N() < 2 || !g.IsConnected() {
			t.Errorf("family %q smoke graph: n=%d connected=%v, want a connected machine", f.Name, g.N(), g.IsConnected())
		}
		if prev, dup := seenPrints[g.Fingerprint()]; dup {
			t.Errorf("families %q and %q build fingerprint-identical smoke graphs", prev, f.Name)
		}
		seenPrints[g.Fingerprint()] = f.Name
	}
}

func TestRegistryBuildsConnectedAtRepresentativeParams(t *testing.T) {
	// Beyond the smoke points: paper-scale and off-nominal parameters per
	// family, all of which must produce connected graphs.
	specs := []string{
		"grid:rows=7,cols=12",
		"hex:rows=7,cols=12",
		"altdiag:rows=7,cols=12",
		"heavyhex:rows=5,cols=14",
		"tree:levels=3",
		"tree:levels=2,radix=6",
		"tree-rr:levels=3",
		"tree-rr:levels=2,radix=3",
		"corral:posts=11,strides=1+4",
		"corral:posts=5,strides=2",
		"hypercube:dim=7,trim=84",
		"hypercube:dim=3",
	}
	for _, s := range specs {
		g, err := mustParse(t, s).Build()
		if err != nil {
			t.Errorf("Build(%q): %v", s, err)
			continue
		}
		if !g.IsConnected() {
			t.Errorf("Build(%q) is disconnected", s)
		}
	}
}

func TestRegisterRejectsDuplicatesAndMalformed(t *testing.T) {
	build := Families()[0].Build
	if err := Register(Family{Name: "grid", Build: build}); err == nil {
		t.Errorf("duplicate family name accepted")
	}
	for _, bad := range []string{"", "has space", "has:colon", "has,comma", "k=v"} {
		if err := Register(Family{Name: bad, Build: build}); err == nil {
			t.Errorf("malformed family name %q accepted", bad)
		}
	}
	if err := Register(Family{Name: "buildless"}); err == nil {
		t.Errorf("family without Build accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ spec, wantFrag string }{
		{"grid:rows=4", "missing required parameter"},
		{"grid:rows=four,cols=4", "not an integer"},
		{"grid:rows=0,cols=4", "out of range"},
		{"tree:levels=9", "out of range"},
		{"tree:levels=2,radix=1", "out of range"},
		{"tree-rr:levels=4", "out of range"},
		{"corral:posts=2,strides=1", "out of range"},
		{"corral:posts=8,strides=1+9", "stride 9 out of range"},
		{"corral:posts=8,strides=1+x", "integer list"},
		{"hypercube:dim=0", "out of range"},
		{"hypercube:dim=3,trim=9", "out of range"},
		{"heavyhex:fragment=21", "unknown fragment"},
		{"heavyhex:fragment=20,rows=5", "fragment excludes"},
		{"heavyhex:rows=1,cols=14", "≥ 2"},
	}
	for _, c := range cases {
		a, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q) failed early: %v (want Build-time error)", c.spec, err)
			continue
		}
		if _, err := a.Build(); err == nil || !strings.Contains(err.Error(), c.wantFrag) {
			t.Errorf("Build(%q) err = %v, want fragment %q", c.spec, err, c.wantFrag)
		}
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"grid:rows=4,cols=4", []string{"grid:rows=4,cols=4"}},
		{
			"grid:rows=4,cols=4,hypercube:dim=4,tree:levels=2",
			[]string{"grid:rows=4,cols=4", "hypercube:dim=4", "tree:levels=2"},
		},
		{
			"grid:rows=4,cols=4;hypercube:dim=4",
			[]string{"grid:rows=4,cols=4", "hypercube:dim=4"},
		},
		{
			"corral:posts=8,strides=1+1,basis=sqrtiswap,corral:posts=8,strides=1+3",
			[]string{"corral:posts=8,strides=1+1,basis=sqrtiswap", "corral:posts=8,strides=1+3"},
		},
		{" grid:rows=2,cols=2 ; ", []string{"grid:rows=2,cols=2"}},
		{
			// Parenthesized labels keep their commas through both list and
			// parameter splitting.
			"corral:posts=8,strides=1+1,name=Corral(1,1),corral:posts=8,strides=1+3,name=Corral(1,2)",
			[]string{"corral:posts=8,strides=1+1,name=Corral(1,1)", "corral:posts=8,strides=1+3,name=Corral(1,2)"},
		},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if strings.TrimSpace(got[i]) != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseList(t *testing.T) {
	as, err := ParseList("grid:rows=4,cols=4,basis=syc,hypercube:dim=4,basis=sqrtiswap")
	if err != nil {
		t.Fatalf("ParseList: %v", err)
	}
	if len(as) != 2 || as[0].Family != "grid" || as[1].Family != "hypercube" {
		t.Fatalf("ParseList = %+v", as)
	}
	if as[0].Basis != weyl.BasisSYC || as[1].Basis != weyl.BasisSqrtISwap {
		t.Errorf("bases lost in list split: %v, %v", as[0].Basis, as[1].Basis)
	}
	if _, err := ParseList(" "); err == nil {
		t.Errorf("empty list accepted")
	}
	if _, err := ParseList("grid:rows=4,cols=4,bogus=1"); err == nil {
		t.Errorf("bad trailing spec accepted")
	}
}
