// Package arch makes machines data: a declarative architecture spec — a
// registered topology family, its parameters, a native basis, and a
// per-gate-type timing table — that can be built from a CLI flag, a sweep
// configuration, a search candidate, or a network request, instead of a
// hand-enumerated Go constructor per design point.
//
// The spec grammar is one line:
//
//	family:key=value,key=value,...
//
// e.g. "corral:posts=8,strides=1+1,basis=sqrtiswap". The family must be
// registered (see Register; the built-in families cover every topology in
// the paper's comparison), parameter keys are family-specific, and several
// keys are reserved across all families:
//
//   - basis=cx|sqrtiswap|syc|iswap — the native two-qubit gate (default cx,
//     matching the paper's basis-independent SWAP-count sweeps);
//   - name=... — an optional display name (sweep label); defaults to the
//     canonical spec string;
//   - t-<gate>=<duration> — a per-gate-type timing override, e.g.
//     t-siswap=0.4 (gates not overridden keep DefaultTiming);
//   - e2q=<p>, tdec=<rate>, e2q-<a>-<b>=<p> — the architecture's noise
//     profile (§3.1 error regimes): per-application two-qubit control-error
//     probability, decoherence rate per unit pulse duration, and per-edge
//     control-error overrides for heterogeneous hardware (see NoiseProfile).
//
// List-valued parameters separate elements with '+' (strides=1+3), since
// ',' separates parameters; commas inside balanced parentheses do not split
// (name=Corral(1,1) is one parameter). Parse and Arch.String round-trip:
// Parse(a.String()) reproduces a exactly, with String emitting parameters
// in sorted order so the canonical form is unique.
package arch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/weyl"
)

// Timing maps gate names to relative pulse durations, normalized so a full
// iSWAP exchange pulse is 1.0 (the paper's §4.2 unit). It is the
// per-architecture generalization of the old basis-global constants: the
// transpiler's pulse-duration metrics and the noise model's decoherence
// charges both read from a machine's table, and DefaultTiming reproduces
// the paper's normalization exactly.
type Timing map[string]float64

// DefaultTiming returns the paper's pulse-length normalization: CR and SYC
// pulses are one full pulse, the SNAIL's √iSWAP is half an iSWAP (§4.1), a
// logical SWAP is three half-pulses (only present pre-translation), and the
// Haar-random su4 placeholder counts one pulse. This is the single source
// of truth behind noise.StandardDurations and every machine built without
// an explicit table.
func DefaultTiming() Timing {
	return Timing{
		"cx": 1.0, "syc": 1.0, "iswap": 1.0, "siswap": 0.5,
		"swap": 1.5,
		"su4":  1.0,
	}
}

// Duration returns the pulse length of one gate application (0 for gates
// not in the table — 1Q gates are free in the paper's model).
func (t Timing) Duration(gate string) float64 { return t[gate] }

// Equal reports whether two tables assign identical durations (nil equals
// only nil-or-empty).
func (t Timing) Equal(o Timing) bool {
	if len(t) != len(o) {
		return false
	}
	for k, v := range t {
		ov, ok := o[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (nil stays nil).
func (t Timing) Clone() Timing {
	if t == nil {
		return nil
	}
	out := make(Timing, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// NoiseProfile is an architecture's §3.1 error model as plain data, so the
// error regime travels with the spec the same way the timing table does:
// E2Q is the per-application depolarizing probability of any two-qubit gate
// (control-error regime), TDec converts pulse duration into per-qubit Pauli
// error probability p = 1−exp(−d·TDec) (decoherence regime), and EdgeE2Q
// overrides E2Q on individual couplings — the heterogeneous-hardware case
// where some links are better or worse than the fleet average, keyed by the
// (low, high) physical qubit pair.
type NoiseProfile struct {
	E2Q     float64
	TDec    float64
	EdgeE2Q map[[2]int]float64
}

// IsZero reports whether the profile describes noiseless hardware (a nil
// profile does).
func (p *NoiseProfile) IsZero() bool {
	return p == nil || (p.E2Q == 0 && p.TDec == 0 && len(p.EdgeE2Q) == 0)
}

// EdgeError returns the control-error probability of a two-qubit gate on
// the physical coupling (a, b): the per-edge override when one exists
// (order-insensitive), else the uniform E2Q. Safe on a nil profile (0).
func (p *NoiseProfile) EdgeError(a, b int) float64 {
	if p == nil {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if e, ok := p.EdgeE2Q[[2]int{a, b}]; ok {
		return e
	}
	return p.E2Q
}

// Equal reports whether two profiles describe the same error model; nil
// equals any all-zero profile.
func (p *NoiseProfile) Equal(o *NoiseProfile) bool {
	if p.IsZero() || o.IsZero() {
		return p.IsZero() && o.IsZero()
	}
	if p.E2Q != o.E2Q || p.TDec != o.TDec || len(p.EdgeE2Q) != len(o.EdgeE2Q) {
		return false
	}
	for e, v := range p.EdgeE2Q {
		ov, ok := o.EdgeE2Q[e]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (nil stays nil).
func (p *NoiseProfile) Clone() *NoiseProfile {
	if p == nil {
		return nil
	}
	out := &NoiseProfile{E2Q: p.E2Q, TDec: p.TDec}
	if p.EdgeE2Q != nil {
		out.EdgeE2Q = make(map[[2]int]float64, len(p.EdgeE2Q))
		for e, v := range p.EdgeE2Q {
			out.EdgeE2Q[e] = v
		}
	}
	return out
}

// Edges returns the override pairs in sorted order, so cache keys and spec
// strings derived from the profile are canonical.
func (p *NoiseProfile) Edges() [][2]int {
	if p == nil || len(p.EdgeE2Q) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(p.EdgeE2Q))
	for e := range p.EdgeE2Q {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Arch is one declarative architecture: everything needed to realize a
// machine, as plain data. Params holds the family-specific parameters as
// raw grammar values (validated when the topology is built); Timing nil
// means DefaultTiming; Noise nil means noiseless hardware.
type Arch struct {
	Family string
	Params map[string]string
	Name   string
	Basis  weyl.Basis
	Timing Timing
	Noise  *NoiseProfile
}

// Equal reports spec identity: same family, parameters, name, basis,
// timing overrides, and noise profile. It is the relation String/Parse
// round-trips preserve.
func (a Arch) Equal(b Arch) bool {
	if a.Family != b.Family || a.Name != b.Name || a.Basis != b.Basis {
		return false
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if bv, ok := b.Params[k]; !ok || bv != v {
			return false
		}
	}
	return a.Timing.Equal(b.Timing) && a.Noise.Equal(b.Noise)
}

// EffectiveTiming resolves the spec's timing table: explicit overrides are
// laid over DefaultTiming, nil means the default exactly.
func (a Arch) EffectiveTiming() Timing {
	if a.Timing == nil {
		return DefaultTiming()
	}
	t := DefaultTiming()
	for k, v := range a.Timing {
		t[k] = v
	}
	return t
}

// basisTokens maps grammar tokens to bases, in both directions.
var basisTokens = map[string]weyl.Basis{
	"cx":        weyl.BasisCX,
	"sqrtiswap": weyl.BasisSqrtISwap,
	"syc":       weyl.BasisSYC,
	"iswap":     weyl.BasisISwap,
}

// BasisToken returns the grammar spelling of a basis.
func BasisToken(b weyl.Basis) string {
	for tok, bb := range basisTokens {
		if bb == b {
			return tok
		}
	}
	return fmt.Sprintf("basis%d", int(b))
}

// ParseBasis resolves a grammar basis token.
func ParseBasis(tok string) (weyl.Basis, error) {
	if b, ok := basisTokens[strings.ToLower(strings.TrimSpace(tok))]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("arch: unknown basis %q (want cx, sqrtiswap, syc, or iswap)", tok)
}

// Parse decodes one spec string. The family must be registered, parameter
// keys must be ones the family declares (plus the reserved basis/name/t-*
// keys), and duplicate keys are rejected. Parameter *values* are validated
// later, when Build realizes the topology.
func Parse(s string) (Arch, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Arch{}, fmt.Errorf("arch: empty spec")
	}
	famName, rest, hasParams := strings.Cut(s, ":")
	famName = strings.TrimSpace(famName)
	fam, ok := Lookup(famName)
	if !ok {
		return Arch{}, fmt.Errorf("arch: unknown family %q (known: %s)", famName, strings.Join(FamilyNames(), ", "))
	}
	a := Arch{Family: fam.Name, Params: map[string]string{}, Basis: weyl.BasisCX}
	if !hasParams || strings.TrimSpace(rest) == "" {
		return a, nil
	}
	seen := map[string]bool{}
	for _, part := range splitOutsideParens(rest, ',') {
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Arch{}, fmt.Errorf("arch: %s: malformed parameter %q (want key=value)", fam.Name, strings.TrimSpace(part))
		}
		if seen[key] {
			return Arch{}, fmt.Errorf("arch: %s: duplicate parameter %q", fam.Name, key)
		}
		seen[key] = true
		switch {
		case key == "basis":
			b, err := ParseBasis(val)
			if err != nil {
				return Arch{}, err
			}
			a.Basis = b
		case key == "name":
			a.Name = val
		case strings.HasPrefix(key, "t-"):
			gate := strings.TrimPrefix(key, "t-")
			d, err := strconv.ParseFloat(val, 64)
			if err != nil || d < 0 || gate == "" {
				return Arch{}, fmt.Errorf("arch: %s: bad timing override %q=%q (want t-<gate>=<duration ≥ 0>)", fam.Name, key, val)
			}
			if a.Timing == nil {
				a.Timing = Timing{}
			}
			a.Timing[gate] = d
		case key == "e2q" || key == "tdec" || strings.HasPrefix(key, "e2q-"):
			if a.Noise == nil {
				a.Noise = &NoiseProfile{}
			}
			if err := a.Noise.setKey(key, val); err != nil {
				return Arch{}, fmt.Errorf("arch: %s: %w", fam.Name, err)
			}
		default:
			if !fam.hasKey(key) {
				return Arch{}, fmt.Errorf("arch: %s: unknown parameter %q (usage: %s)", fam.Name, key, fam.Usage)
			}
			a.Params[key] = val
		}
	}
	// An explicitly all-zero noise profile means the same noiseless hardware
	// a noise-free spec does; normalizing to nil keeps String/Parse
	// round-trips exact and Equal transitive.
	if a.Noise.IsZero() {
		a.Noise = nil
	}
	return a, nil
}

// setKey decodes one noise grammar key (e2q=, tdec=, e2q-<a>-<b>=) into the
// profile, validating ranges: error probabilities live in [0,1), rates are
// ≥ 0, and edge endpoints are distinct non-negative qubit indices.
func (p *NoiseProfile) setKey(key, val string) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad noise parameter %q=%q (not a number)", key, val)
	}
	switch {
	case key == "e2q":
		if v < 0 || v >= 1 {
			return fmt.Errorf("bad noise parameter %q=%q (want an error probability in [0,1))", key, val)
		}
		p.E2Q = v
	case key == "tdec":
		if v < 0 {
			return fmt.Errorf("bad noise parameter %q=%q (want a decoherence rate ≥ 0)", key, val)
		}
		p.TDec = v
	default:
		ab := strings.Split(strings.TrimPrefix(key, "e2q-"), "-")
		if len(ab) != 2 {
			return fmt.Errorf("bad per-edge override %q (want e2q-<a>-<b>=<p>)", key)
		}
		a, errA := strconv.Atoi(ab[0])
		b, errB := strconv.Atoi(ab[1])
		if errA != nil || errB != nil || a < 0 || b < 0 || a == b {
			return fmt.Errorf("bad per-edge override %q (want two distinct qubit indices ≥ 0)", key)
		}
		if v < 0 || v >= 1 {
			return fmt.Errorf("bad per-edge override %q=%q (want an error probability in [0,1))", key, val)
		}
		if a > b {
			a, b = b, a
		}
		if p.EdgeE2Q == nil {
			p.EdgeE2Q = map[[2]int]float64{}
		}
		p.EdgeE2Q[[2]int{a, b}] = v
	}
	return nil
}

// ParseNoise decodes a standalone comma-separated noise profile — the same
// e2q=/tdec=/e2q-<a>-<b>= keys the spec grammar reserves, without a family
// head — for CLI flags like qcbench -noise. An all-zero profile normalizes
// to nil, mirroring Parse.
func ParseNoise(s string) (*NoiseProfile, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("arch: empty noise profile")
	}
	p := &NoiseProfile{}
	seen := map[string]bool{}
	for _, part := range splitOutsideParens(s, ',') {
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("arch: malformed noise parameter %q (want key=value)", strings.TrimSpace(part))
		}
		if seen[key] {
			return nil, fmt.Errorf("arch: duplicate noise parameter %q", key)
		}
		seen[key] = true
		if key != "e2q" && key != "tdec" && !strings.HasPrefix(key, "e2q-") {
			return nil, fmt.Errorf("arch: unknown noise parameter %q (want e2q=, tdec=, or e2q-<a>-<b>=)", key)
		}
		if err := p.setKey(key, val); err != nil {
			return nil, fmt.Errorf("arch: %w", err)
		}
	}
	if p.IsZero() {
		return nil, nil
	}
	return p, nil
}

// noiseParts renders the profile's grammar parameters (unsorted; String
// sorts them among the other spec parts).
func (p *NoiseProfile) noiseParts() []string {
	if p.IsZero() {
		return nil
	}
	var parts []string
	if p.E2Q != 0 {
		parts = append(parts, "e2q="+strconv.FormatFloat(p.E2Q, 'g', -1, 64))
	}
	if p.TDec != 0 {
		parts = append(parts, "tdec="+strconv.FormatFloat(p.TDec, 'g', -1, 64))
	}
	for e, v := range p.EdgeE2Q {
		parts = append(parts, fmt.Sprintf("e2q-%d-%d=%s", e[0], e[1], strconv.FormatFloat(v, 'g', -1, 64)))
	}
	return parts
}

// String renders the profile in the canonical grammar form (sorted keys),
// so a profile prints the way a spec or -noise flag would spell it.
func (p *NoiseProfile) String() string {
	parts := p.noiseParts()
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// String renders the canonical spec: family, then every parameter —
// family-specific keys, basis, optional name, t-* overrides, noise keys —
// in sorted key order, so equal specs print identically and
// Parse(a.String()) reproduces a.
func (a Arch) String() string {
	parts := make([]string, 0, len(a.Params)+len(a.Timing)+2)
	for k, v := range a.Params {
		parts = append(parts, k+"="+v)
	}
	parts = append(parts, "basis="+BasisToken(a.Basis))
	if a.Name != "" {
		parts = append(parts, "name="+a.Name)
	}
	for g, d := range a.Timing {
		parts = append(parts, "t-"+g+"="+strconv.FormatFloat(d, 'g', -1, 64))
	}
	parts = append(parts, a.Noise.noiseParts()...)
	sort.Strings(parts)
	return a.Family + ":" + strings.Join(parts, ",")
}

// splitOutsideParens splits s on every sep not enclosed in parentheses, so
// display labels like "Corral(1,1)" survive parameter and list splitting.
func splitOutsideParens(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// SplitList cuts a list of specs into individual spec strings. Semicolons
// always separate specs; within a semicolon-free run, a comma-separated
// token that names a registered family (bare or with a ':' parameter head)
// starts a new spec — so the natural "spec,spec,..." form works even
// though ',' also separates parameters inside each spec.
func SplitList(s string) []string {
	var out []string
	for _, chunk := range strings.Split(s, ";") {
		var cur []string
		flush := func() {
			if len(cur) > 0 {
				out = append(out, strings.Join(cur, ","))
				cur = nil
			}
		}
		for _, tok := range splitOutsideParens(chunk, ',') {
			trimmed := strings.TrimSpace(tok)
			head := trimmed
			if i := strings.IndexByte(trimmed, ':'); i >= 0 {
				head = strings.TrimSpace(trimmed[:i])
			}
			if _, isFamily := Lookup(head); isFamily {
				flush()
			}
			if trimmed != "" || len(cur) > 0 {
				cur = append(cur, trimmed)
			}
		}
		flush()
	}
	return out
}

// ParseList decodes a comma- or semicolon-separated list of specs (see
// SplitList for how commas disambiguate).
func ParseList(s string) ([]Arch, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("arch: empty spec list")
	}
	specs := SplitList(s)
	out := make([]Arch, 0, len(specs))
	for _, spec := range specs {
		a, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
