// Package arch makes machines data: a declarative architecture spec — a
// registered topology family, its parameters, a native basis, and a
// per-gate-type timing table — that can be built from a CLI flag, a sweep
// configuration, a search candidate, or a network request, instead of a
// hand-enumerated Go constructor per design point.
//
// The spec grammar is one line:
//
//	family:key=value,key=value,...
//
// e.g. "corral:posts=8,strides=1+1,basis=sqrtiswap". The family must be
// registered (see Register; the built-in families cover every topology in
// the paper's comparison), parameter keys are family-specific, and three
// keys are reserved across all families:
//
//   - basis=cx|sqrtiswap|syc|iswap — the native two-qubit gate (default cx,
//     matching the paper's basis-independent SWAP-count sweeps);
//   - name=... — an optional display name (sweep label); defaults to the
//     canonical spec string;
//   - t-<gate>=<duration> — a per-gate-type timing override, e.g.
//     t-siswap=0.4 (gates not overridden keep DefaultTiming).
//
// List-valued parameters separate elements with '+' (strides=1+3), since
// ',' separates parameters; commas inside balanced parentheses do not split
// (name=Corral(1,1) is one parameter). Parse and Arch.String round-trip:
// Parse(a.String()) reproduces a exactly, with String emitting parameters
// in sorted order so the canonical form is unique.
package arch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/weyl"
)

// Timing maps gate names to relative pulse durations, normalized so a full
// iSWAP exchange pulse is 1.0 (the paper's §4.2 unit). It is the
// per-architecture generalization of the old basis-global constants: the
// transpiler's pulse-duration metrics and the noise model's decoherence
// charges both read from a machine's table, and DefaultTiming reproduces
// the paper's normalization exactly.
type Timing map[string]float64

// DefaultTiming returns the paper's pulse-length normalization: CR and SYC
// pulses are one full pulse, the SNAIL's √iSWAP is half an iSWAP (§4.1), a
// logical SWAP is three half-pulses (only present pre-translation), and the
// Haar-random su4 placeholder counts one pulse. This is the single source
// of truth behind noise.StandardDurations and every machine built without
// an explicit table.
func DefaultTiming() Timing {
	return Timing{
		"cx": 1.0, "syc": 1.0, "iswap": 1.0, "siswap": 0.5,
		"swap": 1.5,
		"su4":  1.0,
	}
}

// Duration returns the pulse length of one gate application (0 for gates
// not in the table — 1Q gates are free in the paper's model).
func (t Timing) Duration(gate string) float64 { return t[gate] }

// Equal reports whether two tables assign identical durations (nil equals
// only nil-or-empty).
func (t Timing) Equal(o Timing) bool {
	if len(t) != len(o) {
		return false
	}
	for k, v := range t {
		ov, ok := o[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (nil stays nil).
func (t Timing) Clone() Timing {
	if t == nil {
		return nil
	}
	out := make(Timing, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Arch is one declarative architecture: everything needed to realize a
// machine, as plain data. Params holds the family-specific parameters as
// raw grammar values (validated when the topology is built); Timing nil
// means DefaultTiming.
type Arch struct {
	Family string
	Params map[string]string
	Name   string
	Basis  weyl.Basis
	Timing Timing
}

// Equal reports spec identity: same family, parameters, name, basis, and
// timing overrides. It is the relation String/Parse round-trips preserve.
func (a Arch) Equal(b Arch) bool {
	if a.Family != b.Family || a.Name != b.Name || a.Basis != b.Basis {
		return false
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		if bv, ok := b.Params[k]; !ok || bv != v {
			return false
		}
	}
	return a.Timing.Equal(b.Timing)
}

// EffectiveTiming resolves the spec's timing table: explicit overrides are
// laid over DefaultTiming, nil means the default exactly.
func (a Arch) EffectiveTiming() Timing {
	if a.Timing == nil {
		return DefaultTiming()
	}
	t := DefaultTiming()
	for k, v := range a.Timing {
		t[k] = v
	}
	return t
}

// basisTokens maps grammar tokens to bases, in both directions.
var basisTokens = map[string]weyl.Basis{
	"cx":        weyl.BasisCX,
	"sqrtiswap": weyl.BasisSqrtISwap,
	"syc":       weyl.BasisSYC,
	"iswap":     weyl.BasisISwap,
}

// BasisToken returns the grammar spelling of a basis.
func BasisToken(b weyl.Basis) string {
	for tok, bb := range basisTokens {
		if bb == b {
			return tok
		}
	}
	return fmt.Sprintf("basis%d", int(b))
}

// ParseBasis resolves a grammar basis token.
func ParseBasis(tok string) (weyl.Basis, error) {
	if b, ok := basisTokens[strings.ToLower(strings.TrimSpace(tok))]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("arch: unknown basis %q (want cx, sqrtiswap, syc, or iswap)", tok)
}

// Parse decodes one spec string. The family must be registered, parameter
// keys must be ones the family declares (plus the reserved basis/name/t-*
// keys), and duplicate keys are rejected. Parameter *values* are validated
// later, when Build realizes the topology.
func Parse(s string) (Arch, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Arch{}, fmt.Errorf("arch: empty spec")
	}
	famName, rest, hasParams := strings.Cut(s, ":")
	famName = strings.TrimSpace(famName)
	fam, ok := Lookup(famName)
	if !ok {
		return Arch{}, fmt.Errorf("arch: unknown family %q (known: %s)", famName, strings.Join(FamilyNames(), ", "))
	}
	a := Arch{Family: fam.Name, Params: map[string]string{}, Basis: weyl.BasisCX}
	if !hasParams || strings.TrimSpace(rest) == "" {
		return a, nil
	}
	seen := map[string]bool{}
	for _, part := range splitOutsideParens(rest, ',') {
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Arch{}, fmt.Errorf("arch: %s: malformed parameter %q (want key=value)", fam.Name, strings.TrimSpace(part))
		}
		if seen[key] {
			return Arch{}, fmt.Errorf("arch: %s: duplicate parameter %q", fam.Name, key)
		}
		seen[key] = true
		switch {
		case key == "basis":
			b, err := ParseBasis(val)
			if err != nil {
				return Arch{}, err
			}
			a.Basis = b
		case key == "name":
			a.Name = val
		case strings.HasPrefix(key, "t-"):
			gate := strings.TrimPrefix(key, "t-")
			d, err := strconv.ParseFloat(val, 64)
			if err != nil || d < 0 || gate == "" {
				return Arch{}, fmt.Errorf("arch: %s: bad timing override %q=%q (want t-<gate>=<duration ≥ 0>)", fam.Name, key, val)
			}
			if a.Timing == nil {
				a.Timing = Timing{}
			}
			a.Timing[gate] = d
		default:
			if !fam.hasKey(key) {
				return Arch{}, fmt.Errorf("arch: %s: unknown parameter %q (usage: %s)", fam.Name, key, fam.Usage)
			}
			a.Params[key] = val
		}
	}
	return a, nil
}

// String renders the canonical spec: family, then every parameter —
// family-specific keys, basis, optional name, t-* overrides — in sorted
// key order, so equal specs print identically and Parse(a.String())
// reproduces a.
func (a Arch) String() string {
	parts := make([]string, 0, len(a.Params)+len(a.Timing)+2)
	for k, v := range a.Params {
		parts = append(parts, k+"="+v)
	}
	parts = append(parts, "basis="+BasisToken(a.Basis))
	if a.Name != "" {
		parts = append(parts, "name="+a.Name)
	}
	for g, d := range a.Timing {
		parts = append(parts, "t-"+g+"="+strconv.FormatFloat(d, 'g', -1, 64))
	}
	sort.Strings(parts)
	return a.Family + ":" + strings.Join(parts, ",")
}

// splitOutsideParens splits s on every sep not enclosed in parentheses, so
// display labels like "Corral(1,1)" survive parameter and list splitting.
func splitOutsideParens(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// SplitList cuts a list of specs into individual spec strings. Semicolons
// always separate specs; within a semicolon-free run, a comma-separated
// token that names a registered family (bare or with a ':' parameter head)
// starts a new spec — so the natural "spec,spec,..." form works even
// though ',' also separates parameters inside each spec.
func SplitList(s string) []string {
	var out []string
	for _, chunk := range strings.Split(s, ";") {
		var cur []string
		flush := func() {
			if len(cur) > 0 {
				out = append(out, strings.Join(cur, ","))
				cur = nil
			}
		}
		for _, tok := range splitOutsideParens(chunk, ',') {
			trimmed := strings.TrimSpace(tok)
			head := trimmed
			if i := strings.IndexByte(trimmed, ':'); i >= 0 {
				head = strings.TrimSpace(trimmed[:i])
			}
			if _, isFamily := Lookup(head); isFamily {
				flush()
			}
			if trimmed != "" || len(cur) > 0 {
				cur = append(cur, trimmed)
			}
		}
		flush()
	}
	return out
}

// ParseList decodes a comma- or semicolon-separated list of specs (see
// SplitList for how commas disambiguate).
func ParseList(s string) ([]Arch, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("arch: empty spec list")
	}
	specs := SplitList(s)
	out := make([]Arch, 0, len(specs))
	for _, spec := range specs {
		a, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
