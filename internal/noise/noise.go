// Package noise estimates circuit fidelity under the paper's two error
// regimes (§3.1): control imperfections, which charge a fixed error
// probability per two-qubit gate application (so total gate count is the
// figure of merit), and decoherence, which charges errors proportional to
// pulse duration (so the duration-weighted critical path is the figure of
// merit). A Monte-Carlo Pauli-twirl simulation propagates both through the
// actual circuit, capturing error spreading that closed-form count models
// miss.
//
// The model attaches noise to gates (as in standard device-noise models):
// each two-qubit gate applies a depolarizing channel with probability
// GateError, and each gate's pulse duration d applies independent Pauli
// noise with probability 1−exp(−d·DecoherenceRate) on the touched qubits.
// Idle-qubit decoherence is not modeled (documented simplification).
package noise

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/sim"
)

// Model is a gate-attached noise model.
type Model struct {
	// GateError is the per-application depolarizing probability of any
	// two-qubit gate (control-error regime).
	GateError float64
	// DecoherenceRate converts pulse duration into per-qubit Pauli error
	// probability: p = 1 − exp(−d·rate) (decoherence regime).
	DecoherenceRate float64
	// Durations maps gate names to pulse lengths (missing → 0). Use the
	// same durations as the transpiler's metrics (√iSWAP 0.5, CX/SYC 1.0).
	Durations map[string]float64
}

// StandardDurations returns the paper's pulse-length normalization — the
// architecture registry's default timing table (arch.DefaultTiming), so
// gate timing has one source of truth. Machines with custom tables should
// charge noise with Machine.GateDurations() instead.
func StandardDurations() map[string]float64 {
	return map[string]float64(arch.DefaultTiming())
}

var paulis = []*linalg.Matrix{gates.X(), gates.Y(), gates.Z()}

// MonteCarloFidelity estimates the state fidelity |⟨ideal|noisy⟩|² of a
// circuit run from |0..0⟩ under the model, averaged over `shots`
// trajectories. The circuit is compacted to its touched qubits first, so
// physical circuits on large machines stay simulable.
func MonteCarloFidelity(c *circuit.Circuit, m Model, shots int, rng *rand.Rand) (float64, error) {
	if shots < 1 {
		return 0, fmt.Errorf("noise: need at least one shot")
	}
	compact, _ := c.CompactQubits()
	if compact.N > sim.MaxQubits {
		return 0, fmt.Errorf("noise: circuit touches %d qubits (max %d)", compact.N, sim.MaxQubits)
	}
	ideal, err := sim.RunCircuit(compact)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for s := 0; s < shots; s++ {
		st, err := sim.NewState(compact.N)
		if err != nil {
			return 0, err
		}
		for _, op := range compact.Ops {
			u, err := circuit.Unitary(op)
			if err != nil {
				return 0, err
			}
			switch len(op.Qubits) {
			case 1:
				err = st.Apply1Q(op.Qubits[0], u)
			case 2:
				err = st.Apply2Q(op.Qubits[0], op.Qubits[1], u)
			}
			if err != nil {
				return 0, err
			}
			if err := m.injectErrors(st, op, rng); err != nil {
				return 0, err
			}
		}
		f, err := ideal.Fidelity(st)
		if err != nil {
			return 0, err
		}
		total += f
	}
	return total / float64(shots), nil
}

// injectErrors applies the model's stochastic channels after one gate.
func (m Model) injectErrors(st *sim.State, op circuit.Op, rng *rand.Rand) error {
	// Control error: two-qubit depolarizing (uniform non-identity Pauli
	// pair on the two qubits).
	if op.Is2Q() && m.GateError > 0 && rng.Float64() < m.GateError {
		// Pick a uniformly random non-identity two-qubit Pauli.
		k := 1 + rng.Intn(15)
		pa, pb := k%4, k/4
		if pa > 0 {
			if err := st.Apply1Q(op.Qubits[0], paulis[pa-1]); err != nil {
				return err
			}
		}
		if pb > 0 {
			if err := st.Apply1Q(op.Qubits[1], paulis[pb-1]); err != nil {
				return err
			}
		}
	}
	// Decoherence: duration-proportional per-qubit Pauli noise.
	if m.DecoherenceRate > 0 {
		d := m.Durations[op.Name]
		if d > 0 {
			p := 1 - math.Exp(-d*m.DecoherenceRate)
			for _, q := range op.Qubits {
				if rng.Float64() < p {
					if err := st.Apply1Q(q, paulis[rng.Intn(3)]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// CountModelFidelity is the closed-form approximation the paper reasons
// with: F ≈ (1−GateError)^(#2Q) · exp(−DecoherenceRate·Σ qubit-seconds).
// Used as a sanity bound for the Monte-Carlo estimate.
func CountModelFidelity(c *circuit.Circuit, m Model) float64 {
	n2q := 0
	qubitTime := 0.0
	for _, op := range c.Ops {
		if op.Is2Q() {
			n2q++
		}
		qubitTime += m.Durations[op.Name] * float64(len(op.Qubits))
	}
	return math.Pow(1-m.GateError, float64(n2q)) * math.Exp(-m.DecoherenceRate*qubitTime)
}
