// Package noise estimates circuit fidelity under the paper's two error
// regimes (§3.1): control imperfections, which charge a fixed error
// probability per two-qubit gate application (so total gate count is the
// figure of merit), and decoherence, which charges errors proportional to
// pulse duration (so the duration-weighted critical path is the figure of
// merit). A Monte-Carlo Pauli-twirl simulation propagates both through the
// actual circuit, capturing error spreading that closed-form count models
// miss.
//
// The model attaches noise to gates (as in standard device-noise models):
// each two-qubit gate applies a depolarizing channel with probability
// GateError (or a per-coupling override for heterogeneous hardware), and
// each gate's pulse duration d applies independent Pauli noise with
// probability 1−exp(−d·DecoherenceRate) on the touched qubits. Idle-qubit
// decoherence is not modeled (documented simplification).
//
// Two pluggable estimators (Estimator) serve the evaluation pipeline:
// CountEstimator is the closed-form count model, MonteCarloEstimator fans
// deterministic trajectories over internal/par. Both read gate durations
// from an arch.Timing table — the same source core.Machine.GateDurations
// and the transpiler's pulse metrics use — so timing has one source of
// truth.
package noise

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/sim"
)

// Model is a gate-attached noise model.
type Model struct {
	// GateError is the per-application depolarizing probability of any
	// two-qubit gate (control-error regime).
	GateError float64
	// DecoherenceRate converts pulse duration into per-qubit Pauli error
	// probability: p = 1 − exp(−d·rate) (decoherence regime).
	DecoherenceRate float64
	// Timing is the per-gate-type pulse-duration table the decoherence
	// regime charges from (gates not in the table are free, like 1Q gates
	// in the paper's model). nil means arch.DefaultTiming() — the same
	// resolution core.Machine.GateDurations uses, so the transpiler's
	// duration metrics and the noise charges share one timing source of
	// truth instead of the old parallel Durations map.
	Timing arch.Timing
	// EdgeE2Q overrides GateError on individual physical couplings, keyed
	// by the (low, high) qubit pair of the *original* circuit the model is
	// applied to (heterogeneous hardware; see arch.NoiseProfile.EdgeE2Q).
	// Ops on unlisted pairs charge GateError.
	EdgeE2Q map[[2]int]float64
}

// FromProfile builds the gate-attached model an architecture's declarative
// noise profile describes, charging decoherence with the given timing table
// (typically core.Machine.GateDurations()). A nil profile yields the
// noiseless model.
func FromProfile(p *arch.NoiseProfile, timing arch.Timing) Model {
	m := Model{Timing: timing}
	if p != nil {
		m.GateError = p.E2Q
		m.DecoherenceRate = p.TDec
		m.EdgeE2Q = p.EdgeE2Q
	}
	return m
}

// durations resolves the model's timing table (nil → the paper's default).
func (m Model) durations() arch.Timing {
	if m.Timing != nil {
		return m.Timing
	}
	return arch.DefaultTiming()
}

// opGateError returns the control-error probability of one op: the
// per-edge override when the op's qubit pair has one, else GateError.
// Non-2Q ops charge nothing.
func (m Model) opGateError(op circuit.Op) float64 {
	if !op.Is2Q() {
		return 0
	}
	if len(m.EdgeE2Q) > 0 {
		a, b := op.Qubits[0], op.Qubits[1]
		if a > b {
			a, b = b, a
		}
		if e, ok := m.EdgeE2Q[[2]int{a, b}]; ok {
			return e
		}
	}
	return m.GateError
}

// StandardDurations returns the paper's pulse-length normalization — the
// architecture registry's default timing table (arch.DefaultTiming), so
// gate timing has one source of truth. Machines with custom tables should
// charge noise with Machine.GateDurations() instead.
func StandardDurations() map[string]float64 {
	return map[string]float64(arch.DefaultTiming())
}

var paulis = []*linalg.Matrix{gates.X(), gates.Y(), gates.Z()}

// ValidateForSim checks that a circuit is trajectory-simulable, with
// descriptive errors instead of the silent misbehavior unchecked inputs
// used to cause (an op on three qubits was skipped without a word; a
// repeated-qubit op surfaced as a bare simulator error mid-shot): every op
// must touch one or two distinct qubits inside [0, c.N), and the circuit
// must compact to at most sim.MaxQubits qubits. Exported so callers can
// reject a circuit before paying for an ideal-state run.
func ValidateForSim(c *circuit.Circuit) error {
	for i, op := range c.Ops {
		switch len(op.Qubits) {
		case 1:
		case 2:
			if op.Qubits[0] == op.Qubits[1] {
				return fmt.Errorf("noise: op %d (%s) repeats qubit %d", i, op.Name, op.Qubits[0])
			}
		default:
			return fmt.Errorf("noise: op %d (%s) touches %d qubits (want 1 or 2)", i, op.Name, len(op.Qubits))
		}
		for _, q := range op.Qubits {
			if q < 0 || q >= c.N {
				return fmt.Errorf("noise: op %d (%s) touches qubit %d outside [0,%d)", i, op.Name, q, c.N)
			}
		}
	}
	touched := 0
	seen := make(map[int]bool, c.N)
	for _, op := range c.Ops {
		for _, q := range op.Qubits {
			if !seen[q] {
				seen[q] = true
				touched++
			}
		}
	}
	if touched > sim.MaxQubits {
		return fmt.Errorf("noise: circuit touches %d qubits (max %d simulable)", touched, sim.MaxQubits)
	}
	return nil
}

// MonteCarloFidelity estimates the state fidelity |⟨ideal|noisy⟩|² of a
// circuit run from |0..0⟩ under the model, averaged over `shots`
// trajectories drawn from the caller's rng (one shared serial stream; for
// the parallel, per-trajectory-seeded estimator see MonteCarloEstimator).
// The circuit is compacted to its touched qubits first, so physical
// circuits on large machines stay simulable; per-edge error overrides are
// resolved against the original (pre-compaction) qubit indices.
func MonteCarloFidelity(c *circuit.Circuit, m Model, shots int, rng *rand.Rand) (float64, error) {
	if shots < 1 {
		return 0, fmt.Errorf("noise: need at least one shot")
	}
	if err := ValidateForSim(c); err != nil {
		return 0, err
	}
	compact, _ := c.CompactQubits()
	ideal, err := sim.RunCircuit(compact)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for s := 0; s < shots; s++ {
		st, err := sim.NewState(compact.N)
		if err != nil {
			return 0, err
		}
		for i, op := range compact.Ops {
			u, err := circuit.Unitary(op)
			if err != nil {
				return 0, err
			}
			switch len(op.Qubits) {
			case 1:
				err = st.Apply1Q(op.Qubits[0], u)
			case 2:
				err = st.Apply2Q(op.Qubits[0], op.Qubits[1], u)
			}
			if err != nil {
				return 0, err
			}
			// The compact op places the errors; the original op names the
			// physical coupling the per-edge override table speaks about.
			if err := m.injectErrors(st, op, m.opGateError(c.Ops[i]), rng); err != nil {
				return 0, err
			}
		}
		f, err := ideal.Fidelity(st)
		if err != nil {
			return 0, err
		}
		total += f
	}
	return total / float64(shots), nil
}

// injectErrors applies the model's stochastic channels after one gate.
func (m Model) injectErrors(st *sim.State, op circuit.Op, gateErr float64, rng *rand.Rand) error {
	// Control error: two-qubit depolarizing (uniform non-identity Pauli
	// pair on the two qubits).
	if op.Is2Q() && gateErr > 0 && rng.Float64() < gateErr {
		// Pick a uniformly random non-identity two-qubit Pauli.
		k := 1 + rng.Intn(15)
		pa, pb := k%4, k/4
		if pa > 0 {
			if err := st.Apply1Q(op.Qubits[0], paulis[pa-1]); err != nil {
				return err
			}
		}
		if pb > 0 {
			if err := st.Apply1Q(op.Qubits[1], paulis[pb-1]); err != nil {
				return err
			}
		}
	}
	// Decoherence: duration-proportional per-qubit Pauli noise.
	if m.DecoherenceRate > 0 {
		d := m.durations().Duration(op.Name)
		if d > 0 {
			p := 1 - math.Exp(-d*m.DecoherenceRate)
			for _, q := range op.Qubits {
				if rng.Float64() < p {
					if err := st.Apply1Q(q, paulis[rng.Intn(3)]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// CountComponents returns the two closed-form factors of the count model:
// the control component Π(1−p_g) over the circuit's two-qubit gates (with
// per-edge overrides applied) and the decoherence component
// exp(−rate·Σ d·|qubits|). Their product is CountModelFidelity; the
// evaluation pipeline reports them separately so the dominant error regime
// of an architecture is visible per cell.
func (m Model) CountComponents(c *circuit.Circuit) (control, decoherence float64) {
	control = 1.0
	qubitTime := 0.0
	durs := m.durations()
	for _, op := range c.Ops {
		if op.Is2Q() {
			if p := m.opGateError(op); p > 0 {
				control *= 1 - p
			}
		}
		qubitTime += durs.Duration(op.Name) * float64(len(op.Qubits))
	}
	return control, math.Exp(-m.DecoherenceRate * qubitTime)
}

// CountModelFidelity is the closed-form approximation the paper reasons
// with: F ≈ Π(1−p_gate) · exp(−DecoherenceRate·Σ qubit-seconds). Used as a
// sanity bound for the Monte-Carlo estimate.
func CountModelFidelity(c *circuit.Circuit, m Model) float64 {
	control, decoherence := m.CountComponents(c)
	return control * decoherence
}
