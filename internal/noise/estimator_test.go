package noise_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestCountEstimatorMatchesClosedForm(t *testing.T) {
	c := workloads.GHZ(6)
	m := noise.Model{GateError: 0.01, DecoherenceRate: 0.02}
	est, err := noise.CountEstimator{}.Estimate(context.Background(), c, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := noise.CountModelFidelity(c, m); est.Fidelity != want {
		t.Fatalf("count estimator %g != CountModelFidelity %g", est.Fidelity, want)
	}
	if math.Abs(est.Control*est.Decoherence-est.Fidelity) > 1e-15 {
		t.Fatalf("components %g·%g don't multiply to %g", est.Control, est.Decoherence, est.Fidelity)
	}
}

// TestNoiseEquivalence: on small circuits the Monte-Carlo estimate must
// agree with the closed-form count model within sampling tolerance — the
// count model is the exact expectation of the sampled channels when every
// error event zeroes the overlap, and an upper-bias beyond tolerance (or
// any divergence) means one of the two models drifted. This is the
// scripts/check.sh noise-equivalence arm.
func TestNoiseEquivalence(t *testing.T) {
	cases := []struct {
		name string
		c    *circuit.Circuit
		m    noise.Model
	}{
		{"ghz-control", workloads.GHZ(6), noise.Model{GateError: 0.02}},
		{"ghz-decoherence", workloads.GHZ(6), noise.Model{DecoherenceRate: 0.02}},
		{"qft-mixed", workloads.QFT(5, true), noise.Model{GateError: 0.01, DecoherenceRate: 0.01}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			count, err := noise.CountEstimator{}.Estimate(context.Background(), tc.c, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := noise.MonteCarloEstimator{Shots: 4000, Seed: 7}.Estimate(context.Background(), tc.c, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			// MC sits at or above the count model (an injected Pauli rarely
			// zeroes the overlap exactly, never increases the gap), within a
			// deterministic-fixed-seed tolerance.
			if mc.Fidelity < count.Fidelity-0.03 || mc.Fidelity > count.Fidelity+0.08 {
				t.Fatalf("MC %g vs count %g outside tolerance", mc.Fidelity, count.Fidelity)
			}
		})
	}
}

// TestTrajectoryDeterminism pins the parallel-fan-out contract: the mean
// over trajectories is byte-identical at every Parallelism setting because
// each trajectory derives its own seed from its index and the slots are
// summed in index order.
func TestTrajectoryDeterminism(t *testing.T) {
	c := workloads.QFT(5, true)
	m := noise.Model{GateError: 0.02, DecoherenceRate: 0.01}
	base := noise.MonteCarloEstimator{Shots: 200, Seed: 11, Parallelism: 1}
	serial, err := base.Estimate(context.Background(), c, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 7} {
		e := base
		e.Parallelism = par
		got, err := e.Estimate(context.Background(), c, m)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Fatalf("parallelism %d diverged: %+v vs serial %+v", par, got, serial)
		}
	}
}

// TestTrajectorySeedsDecorrelated guards against the arithmetic-progression
// seeding bug: per-trajectory states stepping by the generator's own
// increment put every trajectory on one shared stream, collapsing cells to
// fidelity exactly 1 (no trajectory saw an event) or near 0 (all saw the
// same one). At these rates the per-trajectory no-event probability is
// ~0.5, so 256 independent trajectories land strictly between the extremes.
func TestTrajectorySeedsDecorrelated(t *testing.T) {
	c := workloads.QFT(5, true)
	m := noise.Model{GateError: 0.02}
	for _, seed := range []int64{0, 1, 777, -99887766} {
		est, err := noise.MonteCarloEstimator{Shots: 256, Seed: seed}.Estimate(context.Background(), c, m)
		if err != nil {
			t.Fatal(err)
		}
		if est.Fidelity == 1 || est.Fidelity < 0.1 {
			t.Fatalf("seed %d: degenerate fidelity %g suggests correlated trajectories", seed, est.Fidelity)
		}
	}
}

func TestValidateForSimRejections(t *testing.T) {
	// Invalid ops are splice-built: Append validates eagerly, but circuits
	// assembled field-by-field (or decoded) reach the estimators unchecked.
	repeat := circuit.New(3)
	repeat.Ops = append(repeat.Ops, circuit.Op{Name: "cx", Qubits: []int{1, 1}})

	arity := circuit.New(3)
	arity.Ops = append(arity.Ops, circuit.Op{Name: "ccx", Qubits: []int{0, 1, 2}})

	outOfRange := circuit.New(2)
	outOfRange.Ops = append(outOfRange.Ops, circuit.Op{Name: "cx", Qubits: []int{0, 5}})

	negative := circuit.New(2)
	negative.Ops = append(negative.Ops, circuit.Op{Name: "x", Qubits: []int{-1}})

	wide := circuit.New(sim.MaxQubits + 2)
	for q := 0; q < sim.MaxQubits+1; q++ {
		wide.H(q)
	}

	for name, c := range map[string]*circuit.Circuit{
		"repeated-qubit": repeat,
		"three-qubit-op": arity,
		"out-of-range":   outOfRange,
		"negative-qubit": negative,
		"too-wide":       wide,
	} {
		if err := noise.ValidateForSim(c); err == nil {
			t.Errorf("%s: circuit accepted", name)
		}
		// Both estimators must refuse the same inputs up front.
		if _, err := (noise.MonteCarloEstimator{Shots: 2}).Estimate(context.Background(), c, noise.Model{}); err == nil {
			t.Errorf("%s: estimator accepted", name)
		}
	}

	// A wide machine circuit that *compacts* under the limit is fine.
	sparse := circuit.New(100)
	sparse.CX(10, 90)
	if err := noise.ValidateForSim(sparse); err != nil {
		t.Fatalf("compactable circuit rejected: %v", err)
	}
}

func TestMonteCarloFidelityRejectsInvalid(t *testing.T) {
	bad := circuit.New(3)
	bad.Ops = append(bad.Ops, circuit.Op{Name: "cx", Qubits: []int{2, 2}})
	if _, err := noise.MonteCarloFidelity(bad, noise.Model{}, 4, nil); err == nil {
		t.Fatal("repeated-qubit circuit accepted by MonteCarloFidelity")
	}
}

func TestMonteCarloEstimatorHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := workloads.QFT(6, true)
	_, err := noise.MonteCarloEstimator{Shots: 500}.Estimate(ctx, c, noise.Model{GateError: 0.5})
	if err == nil {
		t.Fatal("cancelled estimate succeeded")
	}
}
