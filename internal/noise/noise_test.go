package noise_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/workloads"
)

func TestNoiselessIsPerfect(t *testing.T) {
	c := workloads.GHZ(6)
	f, err := noise.MonteCarloFidelity(c, noise.Model{}, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Fatalf("noiseless fidelity = %g", f)
	}
}

func TestGateErrorDegradesWithCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := noise.Model{GateError: 0.02}
	short := workloads.GHZ(6) // 5 CX
	long := circuit.New(6)
	for i := 0; i < 4; i++ {
		long.AppendCircuit(workloads.GHZ(6))
	}
	fShort, err := noise.MonteCarloFidelity(short, m, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	fLong, err := noise.MonteCarloFidelity(long, m, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fLong >= fShort {
		t.Fatalf("more gates should mean lower fidelity: %g vs %g", fLong, fShort)
	}
	// Closed-form count model is a reasonable predictor for small p.
	pred := noise.CountModelFidelity(short, m)
	if math.Abs(fShort-pred) > 0.08 {
		t.Errorf("MC %g vs count model %g diverge too far", fShort, pred)
	}
}

func TestDecoherenceChargesDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Same gate count, different durations: 4 CX vs 4 √iSWAP.
	cx := circuit.New(2)
	si := circuit.New(2)
	for i := 0; i < 4; i++ {
		cx.CX(0, 1)
		si.SqrtISwap(0, 1)
	}
	m := noise.Model{DecoherenceRate: 0.05}
	fCX, err := noise.MonteCarloFidelity(cx, m, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	fSI, err := noise.MonteCarloFidelity(si, m, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fSI <= fCX {
		t.Fatalf("half-length pulses should decohere less: √iSWAP %g vs CX %g", fSI, fCX)
	}
}

func TestCompactionAllowsWideMachines(t *testing.T) {
	// A physical circuit on an 84-qubit machine that touches ~12 qubits
	// must simulate fine after compaction.
	m := core.Tree84SqrtISwap()
	tr, err := m.Transpile(workloads.GHZ(8), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := noise.MonteCarloFidelity(tr.Translated, noise.Model{}, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Fatalf("noiseless physical circuit fidelity = %g", f)
	}
}

// TestCodesignFidelityAdvantage is the paper's bottom line as a simulation:
// the same workload transpiled to the SNAIL tree survives noise better than
// on Heavy-Hex, in BOTH error regimes.
func TestCodesignFidelityAdvantage(t *testing.T) {
	ghz := workloads.GHZ(8)
	hh, err := core.HeavyHex20CX().Transpile(ghz, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.Tree20SqrtISwap().Transpile(ghz, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]noise.Model{
		"control":     {GateError: 0.01},
		"decoherence": {DecoherenceRate: 0.01},
	} {
		rng := rand.New(rand.NewSource(5))
		fHH, err := noise.MonteCarloFidelity(hh.Translated, m, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		fTree, err := noise.MonteCarloFidelity(tree.Translated, m, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		if fTree <= fHH {
			t.Errorf("%s regime: tree fidelity %g should beat heavy-hex %g", name, fTree, fHH)
		}
	}
}

func TestShotValidation(t *testing.T) {
	if _, err := noise.MonteCarloFidelity(workloads.GHZ(3), noise.Model{}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero shots accepted")
	}
}

func TestStandardDurationsPinned(t *testing.T) {
	// The historical hardcoded values, now sourced from the architecture
	// registry's default table: both the exact numbers and the single-source
	// derivation are contracts.
	want := map[string]float64{
		"cx": 1.0, "syc": 1.0, "iswap": 1.0, "siswap": 0.5,
		"swap": 1.5, "su4": 1.0,
	}
	got := noise.StandardDurations()
	if len(got) != len(want) {
		t.Fatalf("StandardDurations has %d entries, want %d: %v", len(got), len(want), got)
	}
	for g, d := range want {
		if got[g] != d {
			t.Errorf("StandardDurations[%q] = %v, want %v", g, got[g], d)
		}
	}
	if !arch.DefaultTiming().Equal(arch.Timing(got)) {
		t.Errorf("StandardDurations diverged from arch.DefaultTiming: %v vs %v", got, arch.DefaultTiming())
	}
}
