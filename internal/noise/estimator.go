package noise

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/par"
	"repro/internal/sim"
)

// Estimate is one fidelity prediction, decomposed: Fidelity is the
// selected estimator's number, and Control/Decoherence are the closed-form
// count-model factors (CountComponents) reported alongside it so the
// dominant error regime is visible even when Fidelity came from trajectory
// sampling. For CountEstimator, Fidelity == Control·Decoherence exactly.
type Estimate struct {
	Fidelity    float64
	Control     float64
	Decoherence float64
}

// Estimator predicts the fidelity of running a circuit under a model. The
// two implementations trade accuracy for cost: CountEstimator is O(ops)
// arithmetic, MonteCarloEstimator simulates error trajectories through the
// actual circuit, capturing the error spreading and cancellation the count
// model ignores. Estimators must be deterministic: the same (circuit,
// model, estimator configuration) always yields the same Estimate.
type Estimator interface {
	Name() string
	Estimate(ctx context.Context, c *circuit.Circuit, m Model) (Estimate, error)
}

// CountEstimator is the closed-form count model (CountModelFidelity) as an
// Estimator: gate counts and duration-weighted qubit time, no simulation,
// no width limit.
type CountEstimator struct{}

// Name implements Estimator.
func (CountEstimator) Name() string { return "count" }

// Estimate implements Estimator.
func (CountEstimator) Estimate(_ context.Context, c *circuit.Circuit, m Model) (Estimate, error) {
	control, decoherence := m.CountComponents(c)
	return Estimate{Fidelity: control * decoherence, Control: control, Decoherence: decoherence}, nil
}

// DefaultShots is the trajectory count MonteCarloEstimator uses when Shots
// is unset: enough for the sampling error to sit well under the
// architecture gaps the sweeps compare (σ ≤ 1/(2·√256) ≈ 3%), small
// enough that a noisy sweep cell stays interactive.
const DefaultShots = 256

// MonteCarloEstimator estimates fidelity by Pauli-twirl trajectory
// sampling. It compiles the circuit once — one fused, layer-batched
// sim.Program shared read-only by the ideal reference and every noisy
// trajectory, error probabilities resolved up front — then fans Shots
// trajectories over the internal/par worker pool. A noisy trajectory runs
// the compiled program in segments (sim.RunProgramSteps), injecting its
// sampled Pauli errors at the fused-step boundaries sim.StepForOp names,
// so trajectories get the full benefit of fusion and layer batching
// instead of re-walking the circuit op by op. Each trajectory derives its
// own RNG from Seed via double-scrambled splitmix64 (see the derivation
// comment in Estimate), and the per-trajectory fidelities are summed in
// index order, so the estimate is byte-identical at every Parallelism
// setting (serial == parallel, pinned under -race).
//
// Trajectories first sample their error events without touching a
// statevector; the common error-free trajectory (probability Π(1−p) over
// all channels) contributes fidelity 1 and skips simulation entirely, so
// at realistic error rates most shots cost only their random draws.
type MonteCarloEstimator struct {
	Shots       int   // trajectories (0 → DefaultShots)
	Seed        int64 // base seed; trajectory t draws from splitmix64(Seed, t)
	Parallelism int   // worker pool bound (0 = auto, 1 = serial)
}

// Name implements Estimator.
func (MonteCarloEstimator) Name() string { return "montecarlo" }

// pauliEvent is one sampled error injection: Pauli pi (index into paulis)
// on compact qubit q, immediately after op opIdx.
type pauliEvent struct {
	opIdx int
	q     int
	pi    int
}

// Estimate implements Estimator.
func (e MonteCarloEstimator) Estimate(ctx context.Context, c *circuit.Circuit, m Model) (Estimate, error) {
	shots := e.Shots
	if shots <= 0 {
		shots = DefaultShots
	}
	if err := ValidateForSim(c); err != nil {
		return Estimate{}, err
	}
	compact, _ := c.CompactQubits()
	// One compiled program serves every trajectory's ideal reference.
	prog := sim.Schedule(compact)
	ideal, err := sim.NewState(compact.N)
	if err != nil {
		return Estimate{}, err
	}
	if err := ideal.RunProgramCtx(ctx, prog); err != nil {
		return Estimate{}, err
	}
	// Resolve per-op error probabilities and injection steps once, shared
	// read-only by all trajectories. Error probabilities come from the
	// original ops (physical qubit indices, where EdgeE2Q speaks); the
	// injection sites from the compact ones, mapped to the compiled
	// program's fused-step boundaries — an error "after op i" lands after
	// the schedule step that executes op i (the ops fused alongside it
	// commute with or are disjoint from it, so the placement is exact up
	// to the Pauli-twirl approximation already being sampled).
	ops := compact.Ops
	gateErr := make([]float64, len(ops))
	decoErr := make([]float64, len(ops))
	injStep := make([]int, len(ops))
	durs := m.durations()
	for i, op := range ops {
		injStep[i] = prog.StepForOp(i)
		gateErr[i] = m.opGateError(c.Ops[i])
		if m.DecoherenceRate > 0 {
			if d := durs.Duration(op.Name); d > 0 {
				decoErr[i] = 1 - math.Exp(-d*m.DecoherenceRate)
			}
		}
	}
	fids := make([]float64, shots)
	err = par.ForEachCtx(ctx, shots, e.Parallelism, func(t int) error {
		// The derived state is scrambled ONCE MORE before use: the generator
		// itself steps by smGamma per draw, so unscrambled states of the form
		// base + t·smGamma would put every trajectory on the same arithmetic
		// progression, merely offset — trajectory t+1 would replay trajectory
		// t's draws shifted by one, making all shots near-copies of each
		// other (observed as whole cells reporting fidelity exactly 1). The
		// extra scramble scatters the starting points across the full 2⁶⁴
		// state space, where stream overlap is a birthday-bound improbability.
		rng := rand.New(&splitmix64{state: smScramble(smScramble(uint64(e.Seed)) + uint64(t+1)*smGamma)})
		// Sample the trajectory's error events first: no events means the
		// noisy run is the ideal run, fidelity exactly 1, no simulation.
		var events []pauliEvent
		for i, op := range ops {
			if p := gateErr[i]; p > 0 && rng.Float64() < p {
				k := 1 + rng.Intn(15)
				if pa := k % 4; pa > 0 {
					events = append(events, pauliEvent{opIdx: i, q: op.Qubits[0], pi: pa - 1})
				}
				if pb := k / 4; pb > 0 {
					events = append(events, pauliEvent{opIdx: i, q: op.Qubits[1], pi: pb - 1})
				}
			}
			if p := decoErr[i]; p > 0 {
				for _, q := range op.Qubits {
					if rng.Float64() < p {
						events = append(events, pauliEvent{opIdx: i, q: q, pi: rng.Intn(3)})
					}
				}
			}
		}
		if len(events) == 0 {
			fids[t] = 1
			return nil
		}
		st, err := sim.NewState(compact.N)
		if err != nil {
			return err
		}
		// Run the shared compiled program in segments, stopping after each
		// step that an event is attached to. Fusion and layering may place
		// a later op in an earlier step, so order events by step (stable:
		// ties keep sampling order).
		sort.SliceStable(events, func(a, b int) bool {
			return injStep[events[a].opIdx] < injStep[events[b].opIdx]
		})
		cur := 0
		for next := 0; next < len(events); {
			step := injStep[events[next].opIdx]
			if err := st.RunProgramSteps(prog, cur, step+1); err != nil {
				return err
			}
			cur = step + 1
			for next < len(events) && injStep[events[next].opIdx] == step {
				if err := st.Apply1Q(events[next].q, paulis[events[next].pi]); err != nil {
					return err
				}
				next++
			}
		}
		if err := st.RunProgramSteps(prog, cur, prog.Steps()); err != nil {
			return err
		}
		f, err := ideal.Fidelity(st)
		if err != nil {
			return err
		}
		fids[t] = f
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	// Fixed-order summation over the index-addressed slots keeps the mean
	// bit-identical regardless of worker scheduling.
	total := 0.0
	for _, f := range fids {
		total += f
	}
	control, decoherence := m.CountComponents(c)
	return Estimate{Fidelity: total / float64(shots), Control: control, Decoherence: decoherence}, nil
}

// splitmix64 is a tiny rand.Source64 with O(1) construction — the same
// generator the router's per-trial RNGs use (transpile keeps its own
// unexported copy) — so per-trajectory seed derivation costs two integer
// ops instead of math/rand's 607-step seeding procedure.
type splitmix64 struct{ state uint64 }

// smGamma is the splitmix64 state increment (Weyl sequence constant).
const smGamma = 0x9E3779B97F4A7C15

// smScramble is the splitmix64 output function over a raw state value.
func smScramble(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix64) Uint64() uint64 {
	s.state += smGamma
	return smScramble(s.state)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
