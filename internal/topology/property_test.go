package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allGraphs returns the full topology catalog for property checks.
func allGraphs() []*Graph {
	return []*Graph{
		SquareLattice16(), SquareLattice84(), HexLattice20(), HexLattice84(),
		HeavyHex20(), HeavyHex84(), LatticeAltDiag84(), Hypercube16(),
		Hypercube84(), Tree20(), TreeRR20(), Tree84(), TreeRR84(),
		Corral11(), Corral12(),
	}
}

// TestPropertyDistanceMetricAxioms: BFS distances are a metric — symmetric,
// zero on the diagonal, and satisfying the triangle inequality.
func TestPropertyDistanceMetricAxioms(t *testing.T) {
	graphs := allGraphs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphs[int(uint64(seed)%uint64(len(graphs)))]
		d := g.Distances()
		n := g.N()
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if d[a][a] != 0 {
			return false
		}
		if d[a][b] != d[b][a] {
			return false
		}
		return d[a][c] <= d[a][b]+d[b][c]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEdgesAreDistanceOne: edges and distance-1 pairs coincide.
func TestPropertyEdgesAreDistanceOne(t *testing.T) {
	for _, g := range allGraphs() {
		d := g.Distances()
		for _, e := range g.Edges() {
			if d[e[0]][e[1]] != 1 {
				t.Fatalf("%s: edge %v has distance %d", g.Name, e, d[e[0]][e[1]])
			}
		}
		// Sample some non-edges.
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			a, b := rng.Intn(g.N()), rng.Intn(g.N())
			if a != b && !g.HasEdge(a, b) && d[a][b] == 1 {
				t.Fatalf("%s: non-edge (%d,%d) has distance 1", g.Name, a, b)
			}
		}
	}
}

// TestPropertyDegreeSumIsTwiceEdges: handshake lemma on every generator.
func TestPropertyDegreeSumIsTwiceEdges(t *testing.T) {
	for _, g := range allGraphs() {
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("%s: degree sum %d != 2x%d edges", g.Name, sum, g.NumEdges())
		}
	}
}

// TestPropertyDiameterBoundsAvgDistance: avg ≤ diameter, and avg > 0 for
// any graph with at least one edge.
func TestPropertyDiameterBoundsAvgDistance(t *testing.T) {
	for _, g := range allGraphs() {
		avg, dia := g.AvgDistance(), g.Diameter()
		if avg > float64(dia) {
			t.Fatalf("%s: avg distance %g exceeds diameter %d", g.Name, avg, dia)
		}
		if avg <= 0 {
			t.Fatalf("%s: degenerate avg distance %g", g.Name, avg)
		}
	}
}

// TestPropertySNAILDegreeCap: the SNAIL-realizable topologies never ask a
// qubit for more couplings than two shared six-element SNAIL scopes allow.
func TestPropertySNAILDegreeCap(t *testing.T) {
	for _, g := range []*Graph{Tree20(), TreeRR20(), Tree84(), TreeRR84(), Corral11(), Corral12()} {
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 10 { // two scopes × (6-1) partners
				t.Fatalf("%s: vertex %d degree %d exceeds two-SNAIL capacity", g.Name, v, g.Degree(v))
			}
		}
	}
}

// TestCorralRingGeneric checks the parameterized generator at several sizes.
func TestCorralRingGeneric(t *testing.T) {
	for _, posts := range []int{5, 8, 12, 16} {
		for _, strides := range [][]int{{1, 1}, {1, 2}, {1, 3}} {
			if strides[1] >= posts {
				continue
			}
			g := CorralRing(posts, strides)
			if g.N() != 2*posts {
				t.Fatalf("corral(%d,%v): %d qubits", posts, strides, g.N())
			}
			if !g.IsConnected() {
				t.Fatalf("corral(%d,%v) disconnected", posts, strides)
			}
		}
	}
}
