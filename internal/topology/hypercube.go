package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube returns the n-dimensional binary hypercube Q_n: 2^n vertices,
// edges between words at Hamming distance one. Both the per-vertex degree
// and the diameter equal n (paper §2.4.4, Fig. 3).
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range", dim))
	}
	n := 1 << dim
	g := NewGraph(fmt.Sprintf("Hypercube(%d)", dim), n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if w > v {
				g.AddEdge(v, w)
			}
		}
	}
	g.Name = "Hypercube"
	return g
}

// Hypercube16 is the 4-cube of Table 1 (16 qubits, diameter 4, average
// distance 2.0, 4 couplings per qubit).
func Hypercube16() *Graph { return Hypercube(4) }

// HypercubeTrimmed returns the induced subgraph of Q_dim on the first n
// binary words {0, 1, ..., n-1}. By the edge-isoperimetric inequality
// (Harper's theorem) initial segments of the binary order maximize the
// number of retained edges, keeping the trimmed cube as dense and regular
// as possible.
func HypercubeTrimmed(dim, n int) *Graph {
	full := 1 << dim
	if n < 1 || n > full {
		panic(fmt.Sprintf("topology: trimmed size %d outside (0, 2^%d]", n, dim))
	}
	g := NewGraph("Hypercube", n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if w > v && w < n {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// Hypercube84 is the 84-qubit trimmed 7-cube of Table 2. The Harper segment
// {0..83} retains exactly 252 edges, reproducing the paper's average
// connectivity of 6.0 and diameter 7.
func Hypercube84() *Graph { return HypercubeTrimmed(7, 84) }

// HammingDistance counts differing bits — exported for tests and for
// hypercube-aware routing heuristics.
func HammingDistance(a, b int) int { return bits.OnesCount(uint(a ^ b)) }
