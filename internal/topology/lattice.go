package topology

import "fmt"

// SquareLattice returns the rows x cols grid graph (paper Fig. 2a), the
// coupling pattern of Google's Sycamore-class machines.
func SquareLattice(rows, cols int) *Graph {
	g := NewGraph(fmt.Sprintf("Square-Lattice(%dx%d)", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.Name = "Square-Lattice"
	return g
}

// SquareLattice16 is the 16-qubit 4x4 lattice of Table 1.
func SquareLattice16() *Graph { return SquareLattice(4, 4) }

// SquareLattice84 is the 84-qubit 7x12 lattice of Table 2 (its diameter 17,
// average distance 6.26 and average connectivity 3.55 match the paper
// exactly).
func SquareLattice84() *Graph { return SquareLattice(7, 12) }

// HexLattice returns a brick-wall honeycomb on a rows x cols grid
// (paper Fig. 2d): all horizontal edges, plus vertical edges where the cell
// parity (r+c) is even — giving every vertex degree ≤ 3.
func HexLattice(rows, cols int) *Graph {
	g := NewGraph("Hex-Lattice", rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows && (r+c)%2 == 0 {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// HexLattice20 is the 20-qubit hex lattice of Table 1 (4x5 brick-wall).
func HexLattice20() *Graph { return HexLattice(4, 5) }

// HexLattice84 is the 84-qubit hex lattice of Table 2 (7x12 brick-wall).
func HexLattice84() *Graph { return HexLattice(7, 12) }

// LatticeAltDiag returns the square lattice with both diagonals added on
// alternating (checkerboard) tiles — IBM's early "Penguin" connectivity
// (paper Fig. 2c).
func LatticeAltDiag(rows, cols int) *Graph {
	g := SquareLattice(rows, cols)
	g.Name = "Lattice+AltDiag"
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r+1 < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			if (r+c)%2 == 0 {
				g.AddEdge(id(r, c), id(r+1, c+1))
				g.AddEdge(id(r, c+1), id(r+1, c))
			}
		}
	}
	return g
}

// LatticeAltDiag84 is the 84-qubit alternating-diagonal lattice of Table 2
// (7x12 + 66 diagonal couplings; average connectivity 5.12 as in the paper).
func LatticeAltDiag84() *Graph { return LatticeAltDiag(7, 12) }

// HeavyHexRows builds a heavy-hex lattice in IBM's row form: `rows`
// horizontal chains of `cols` qubits, with bridge qubits linking vertical
// neighbors every 4 columns, offset alternating by 2 between gaps (the
// Falcon/Eagle pattern, paper Fig. 2b). Bridge qubits are appended after the
// row qubits.
func HeavyHexRows(rows, cols int) *Graph {
	type bridge struct{ gap, col int }
	var bridges []bridge
	for gap := 0; gap+1 < rows; gap++ {
		offset := 0
		if gap%2 == 1 {
			offset = 2
		}
		for c := offset; c < cols; c += 4 {
			bridges = append(bridges, bridge{gap, c})
		}
	}
	n := rows*cols + len(bridges)
	g := NewGraph("Heavy-Hex", n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			g.AddEdge(id(r, c), id(r, c+1))
		}
	}
	for i, b := range bridges {
		v := rows*cols + i
		g.AddEdge(id(b.gap, b.col), v)
		g.AddEdge(v, id(b.gap+1, b.col))
	}
	return g
}

// HeavyHex20 is a 20-qubit heavy-hex fragment used for Table 1: two fused
// heavy hexagons — a pair of 13-cycles sharing a five-edge path. This is the
// densest 20-qubit/21-coupling heavy-hex-style fragment (cyclomatic number
// 2, max degree 3) and matches the paper's diameter 8 and AvgC 2.1; its
// average distance measures 3.94 vs the paper's 3.77 (see EXPERIMENTS.md).
func HeavyHex20() *Graph {
	const la, lb, share = 13, 13, 5
	g := NewGraph("Heavy-Hex", la+lb-(share+1))
	for i := 0; i < la; i++ {
		g.AddEdge(i, (i+1)%la)
	}
	prev, next := share, la
	for k := 0; k < lb-(share+1); k++ {
		g.AddEdge(prev, next)
		prev = next
		next++
	}
	g.AddEdge(prev, 0)
	return g
}

// HeavyHex84 is the 84-qubit heavy-hex lattice of Table 2: 5 rows of 14
// qubits plus 14 bridge qubits (the Eagle pattern cut to 84 qubits).
func HeavyHex84() *Graph { return HeavyHexRows(5, 14) }
