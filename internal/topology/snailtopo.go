package topology

import "fmt"

// The SNAIL-enabled modular topologies of paper §4.3. A "module" is a SNAIL
// coupler plus the qubits attached to it; a SNAIL makes every pair of its
// attached elements a usable coupling, so a module with k attached qubits
// contributes a K_k clique to the coupling graph.

// addClique couples every pair among the vertices.
func addClique(g *Graph, vs []int) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
}

// Tree builds the modular radix-ary router tree (paper Fig. 7a/8,
// generalized beyond radix 4): a central router SNAIL couples the `radix`
// level-1 router qubits all-to-all, and every level-l qubit (l < levels)
// joins a module SNAIL coupling {itself, its radix children} all-to-all (a
// K_{radix+1}). Level l occupies radix + radix² + ... + radix^(l-1) onward,
// children of vertex i within a level sit contiguously — so Tree(4,2)
// reproduces Tree20's exact edge set and Tree(4,3) reproduces Tree84's.
func Tree(radix, levels int) *Graph {
	if radix < 2 || radix > 8 {
		panic(fmt.Sprintf("topology: tree radix %d out of range [2,8]", radix))
	}
	if levels < 2 || levels > 6 {
		panic(fmt.Sprintf("topology: tree levels %d out of range [2,6]", levels))
	}
	// Count qubits: radix + radix^2 + ... + radix^levels, and record where
	// each level starts.
	start := make([]int, levels+1)
	total, pow := 0, 1
	for l := 1; l <= levels; l++ {
		pow *= radix
		start[l] = total
		total += pow
	}
	g := NewGraph("Tree", total)
	w := make([]int, radix)
	for j := range w {
		w[j] = j
	}
	addClique(g, w)
	pow = radix
	for l := 1; l < levels; l++ {
		for i := 0; i < pow; i++ {
			parent := start[l] + i
			module := []int{parent}
			for j := 0; j < radix; j++ {
				module = append(module, start[l+1]+radix*i+j)
			}
			addClique(g, module)
		}
		pow *= radix
	}
	return g
}

// Tree20 is the two-level modular 4-ary tree (paper Fig. 7a): a central
// router SNAIL couples four router qubits W0..W3 (a K4), and each Wk joins a
// module SNAIL coupling {Wk, 4 module qubits} all-to-all (a K5).
// Qubit layout: W qubits are 0..3; module k's leaves are 4+4k .. 7+4k.
func Tree20() *Graph { return Tree(4, 2) }

// Tree84 is the three-router-level 4-ary tree of Table 2 (paper Fig. 8):
// central K4 over four level-1 router qubits; each level-1 qubit in a K5
// router module with four level-2 qubits; each level-2 qubit in a K5 leaf
// module with four leaf qubits. 4 + 16 + 64 = 84 qubits.
//
// Layout: level-1 routers 0..3; level-2 qubits 4..19 (level-1 router k owns
// 4+4k..7+4k); leaves 20..83 (level-2 qubit m owns 20+4m..23+4m with
// m = vertex-20 ... i.e. level-2 vertex v owns 20+4*(v-4)..).
func Tree84() *Graph { return Tree(4, 3) }

// TreeRR builds the Round-Robin variant of the radix-ary tree (paper
// Fig. 7b, §4.3): module qubits still form per-module cliques, but qubit j
// of each module couples to router qubit j of the level above — spreading
// inter-module traffic over all routers instead of funneling through the
// parent. The paper instantiates two and three router levels; those are the
// supported depths. TreeRR(4,2) reproduces TreeRR20's exact edge set and
// TreeRR(4,3) reproduces TreeRR84's.
func TreeRR(radix, levels int) *Graph {
	if radix < 2 || radix > 8 {
		panic(fmt.Sprintf("topology: tree-rr radix %d out of range [2,8]", radix))
	}
	if levels < 2 || levels > 3 {
		panic(fmt.Sprintf("topology: tree-rr levels %d out of range [2,3]", levels))
	}
	total := 0
	pow := 1
	for l := 1; l <= levels; l++ {
		pow *= radix
		total += pow
	}
	g := NewGraph("Tree-RR", total)
	w := make([]int, radix)
	for j := range w {
		w[j] = j
	}
	addClique(g, w)
	if levels == 2 {
		for k := 0; k < radix; k++ {
			var module []int
			for j := 0; j < radix; j++ {
				q := radix + radix*k + j
				module = append(module, q)
				g.AddEdge(q, w[j]) // round-robin link to router qubit j
			}
			addClique(g, module)
		}
		return g
	}
	leafBase := radix + radix*radix
	for grp := 0; grp < radix; grp++ {
		var routers []int
		for j := 0; j < radix; j++ {
			r := radix + radix*grp + j
			routers = append(routers, r)
			g.AddEdge(r, w[j])
		}
		addClique(g, routers)
		for i := 0; i < radix; i++ {
			var module []int
			for j := 0; j < radix; j++ {
				q := leafBase + radix*radix*grp + radix*i + j
				module = append(module, q)
				g.AddEdge(q, routers[j])
			}
			addClique(g, module)
		}
	}
	return g
}

// TreeRR20 is the Round-Robin tree (paper Fig. 7b): module qubits couple
// all-to-all within their module (K4 via the module SNAIL), and qubit j of
// every module couples to router qubit Wj (via Wj's SNAIL), eliminating the
// per-module router bottleneck. W qubits are 0..3; module k's qubits are
// 4+4k .. 7+4k.
func TreeRR20() *Graph { return TreeRR(4, 2) }

// TreeRR84 is the 84-qubit Round-Robin tree of Table 2: 16 leaf modules
// (K4), four level-2 router modules (K4), and the central level-1 K4. Each
// leaf-module qubit j couples to its group's level-2 router qubit j, and
// level-2 router qubit j of every group couples to level-1 router qubit j
// (paper §4.3: "each module couples to a different second-level router
// qubit, and each second-level router qubit is coupled to a different
// first-level router qubit").
//
// Layout: level-1 routers 0..3; level-2 routers 4..19 (group g at
// 4+4g..7+4g); leaves 20..83 (leaf module m = (g,i) at 20+16g+4i..).
func TreeRR84() *Graph { return TreeRR(4, 3) }

// CorralRing builds a Corral (paper §4.3, Fig. 9): a ring of `posts` SNAILs
// with one qubit per fence level spanning from post i to post i+stride.
// Qubit (level l, post i) is vertex l*posts+i; the SNAIL at each post
// couples all qubits touching it pairwise.
func CorralRing(posts int, strides []int) *Graph {
	if posts < 3 {
		panic("topology: corral needs at least 3 posts")
	}
	for _, s := range strides {
		if s < 1 || s >= posts {
			panic(fmt.Sprintf("topology: corral stride %d out of range", s))
		}
	}
	n := posts * len(strides)
	g := NewGraph("Corral", n)
	// Qubits attached to each post.
	attached := make([][]int, posts)
	for l, s := range strides {
		for i := 0; i < posts; i++ {
			q := l*posts + i
			a := i
			b := (i + s) % posts
			attached[a] = append(attached[a], q)
			attached[b] = append(attached[b], q)
		}
	}
	for p := 0; p < posts; p++ {
		addClique(g, attached[p])
	}
	return g
}

// Corral11 is the 16-qubit Corral with both fences at stride 1 (paper
// Fig. 9a/9b): eight posts, two levels, nearest-neighbor spans. Each post's
// SNAIL couples 4 qubits all-to-all, matching Table 1 (Dia 4, AvgD 2.06,
// AvgC 5).
func Corral11() *Graph {
	g := CorralRing(8, []int{1, 1})
	g.Name = "Corral(1,1)"
	return g
}

// Corral12 is the 16-qubit long-stride Corral (paper Fig. 9c/9d): the
// second fence skips posts to cut the ring's diameter. The paper's Table 1
// row (Dia 2, AvgD 1.5, AvgC 6) is realized by the stride set {1,3}; the
// literal "second-nearest neighbor" stride {1,2} yields diameter 3 (see
// DESIGN.md; both variants are available through CorralRing).
func Corral12() *Graph {
	g := CorralRing(8, []int{1, 3})
	g.Name = "Corral(1,2)"
	return g
}

// MakeTree builds a generalized 4-ary tree with the given number of router
// levels (levels=2 gives Tree20, levels=3 gives Tree84). Exposed for
// scaling studies beyond the paper's sizes.
func MakeTree(levels int) *Graph {
	g := Tree(4, levels)
	g.Name = fmt.Sprintf("Tree-%dL", levels)
	return g
}
