package topology

import "fmt"

// The SNAIL-enabled modular topologies of paper §4.3. A "module" is a SNAIL
// coupler plus the qubits attached to it; a SNAIL makes every pair of its
// attached elements a usable coupling, so a module with k attached qubits
// contributes a K_k clique to the coupling graph.

// addClique couples every pair among the vertices.
func addClique(g *Graph, vs []int) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
}

// Tree20 is the two-level modular 4-ary tree (paper Fig. 7a): a central
// router SNAIL couples four router qubits W0..W3 (a K4), and each Wk joins a
// module SNAIL coupling {Wk, 4 module qubits} all-to-all (a K5).
// Qubit layout: W qubits are 0..3; module k's leaves are 4+4k .. 7+4k.
func Tree20() *Graph {
	g := NewGraph("Tree", 20)
	w := []int{0, 1, 2, 3}
	addClique(g, w)
	for k := 0; k < 4; k++ {
		module := []int{w[k]}
		for j := 0; j < 4; j++ {
			module = append(module, 4+4*k+j)
		}
		addClique(g, module)
	}
	return g
}

// TreeRR20 is the Round-Robin tree (paper Fig. 7b): module qubits couple
// all-to-all within their module (K4 via the module SNAIL), and qubit j of
// every module couples to router qubit Wj (via Wj's SNAIL), eliminating the
// per-module router bottleneck. W qubits are 0..3; module k's qubits are
// 4+4k .. 7+4k.
func TreeRR20() *Graph {
	g := NewGraph("Tree-RR", 20)
	w := []int{0, 1, 2, 3}
	addClique(g, w)
	for k := 0; k < 4; k++ {
		var module []int
		for j := 0; j < 4; j++ {
			q := 4 + 4*k + j
			module = append(module, q)
			g.AddEdge(q, w[j]) // round-robin link to router qubit j
		}
		addClique(g, module)
	}
	return g
}

// Tree84 is the three-router-level 4-ary tree of Table 2 (paper Fig. 8):
// central K4 over four level-1 router qubits; each level-1 qubit in a K5
// router module with four level-2 qubits; each level-2 qubit in a K5 leaf
// module with four leaf qubits. 4 + 16 + 64 = 84 qubits.
//
// Layout: level-1 routers 0..3; level-2 qubits 4..19 (level-1 router k owns
// 4+4k..7+4k); leaves 20..83 (level-2 qubit m owns 20+4m..23+4m with
// m = vertex-20 ... i.e. level-2 vertex v owns 20+4*(v-4)..).
func Tree84() *Graph {
	g := NewGraph("Tree", 84)
	w := []int{0, 1, 2, 3}
	addClique(g, w)
	for k := 0; k < 4; k++ {
		module := []int{w[k]}
		for j := 0; j < 4; j++ {
			module = append(module, 4+4*k+j)
		}
		addClique(g, module)
	}
	for m := 0; m < 16; m++ {
		parent := 4 + m
		module := []int{parent}
		for j := 0; j < 4; j++ {
			module = append(module, 20+4*m+j)
		}
		addClique(g, module)
	}
	return g
}

// TreeRR84 is the 84-qubit Round-Robin tree of Table 2: 16 leaf modules
// (K4), four level-2 router modules (K4), and the central level-1 K4. Each
// leaf-module qubit j couples to its group's level-2 router qubit j, and
// level-2 router qubit j of every group couples to level-1 router qubit j
// (paper §4.3: "each module couples to a different second-level router
// qubit, and each second-level router qubit is coupled to a different
// first-level router qubit").
//
// Layout: level-1 routers 0..3; level-2 routers 4..19 (group g at
// 4+4g..7+4g); leaves 20..83 (leaf module m = (g,i) at 20+16g+4i..).
func TreeRR84() *Graph {
	g := NewGraph("Tree-RR", 84)
	w := []int{0, 1, 2, 3}
	addClique(g, w)
	for grp := 0; grp < 4; grp++ {
		var routers []int
		for j := 0; j < 4; j++ {
			r := 4 + 4*grp + j
			routers = append(routers, r)
			g.AddEdge(r, w[j])
		}
		addClique(g, routers)
		for i := 0; i < 4; i++ {
			var module []int
			for j := 0; j < 4; j++ {
				q := 20 + 16*grp + 4*i + j
				module = append(module, q)
				g.AddEdge(q, routers[j])
			}
			addClique(g, module)
		}
	}
	return g
}

// CorralRing builds a Corral (paper §4.3, Fig. 9): a ring of `posts` SNAILs
// with one qubit per fence level spanning from post i to post i+stride.
// Qubit (level l, post i) is vertex l*posts+i; the SNAIL at each post
// couples all qubits touching it pairwise.
func CorralRing(posts int, strides []int) *Graph {
	if posts < 3 {
		panic("topology: corral needs at least 3 posts")
	}
	for _, s := range strides {
		if s < 1 || s >= posts {
			panic(fmt.Sprintf("topology: corral stride %d out of range", s))
		}
	}
	n := posts * len(strides)
	g := NewGraph("Corral", n)
	// Qubits attached to each post.
	attached := make([][]int, posts)
	for l, s := range strides {
		for i := 0; i < posts; i++ {
			q := l*posts + i
			a := i
			b := (i + s) % posts
			attached[a] = append(attached[a], q)
			attached[b] = append(attached[b], q)
		}
	}
	for p := 0; p < posts; p++ {
		addClique(g, attached[p])
	}
	return g
}

// Corral11 is the 16-qubit Corral with both fences at stride 1 (paper
// Fig. 9a/9b): eight posts, two levels, nearest-neighbor spans. Each post's
// SNAIL couples 4 qubits all-to-all, matching Table 1 (Dia 4, AvgD 2.06,
// AvgC 5).
func Corral11() *Graph {
	g := CorralRing(8, []int{1, 1})
	g.Name = "Corral(1,1)"
	return g
}

// Corral12 is the 16-qubit long-stride Corral (paper Fig. 9c/9d): the
// second fence skips posts to cut the ring's diameter. The paper's Table 1
// row (Dia 2, AvgD 1.5, AvgC 6) is realized by the stride set {1,3}; the
// literal "second-nearest neighbor" stride {1,2} yields diameter 3 (see
// DESIGN.md; both variants are available through CorralRing).
func Corral12() *Graph {
	g := CorralRing(8, []int{1, 3})
	g.Name = "Corral(1,2)"
	return g
}

// MakeTree builds a generalized tree with the given number of router levels
// (levels=2 gives Tree20, levels=3 gives Tree84). Exposed for scaling
// studies beyond the paper's sizes.
func MakeTree(levels int) *Graph {
	if levels < 2 || levels > 6 {
		panic("topology: MakeTree supports 2..6 levels")
	}
	// Count qubits: 4 + 4^2 + ... + 4^levels.
	total := 0
	pow := 1
	for l := 1; l <= levels; l++ {
		pow *= 4
		total += pow
	}
	g := NewGraph(fmt.Sprintf("Tree-%dL", levels), total)
	// Level l occupies [start[l], start[l]+4^l); level 1 starts at 0.
	start := make([]int, levels+1)
	pow = 4
	for l := 2; l <= levels; l++ {
		start[l] = start[l-1] + pow
		pow *= 4
	}
	// Central router couples the 4 level-1 qubits.
	addClique(g, []int{0, 1, 2, 3})
	// Each level-l qubit (l < levels) owns a K5 module with its 4 children.
	pow = 4
	for l := 1; l < levels; l++ {
		for i := 0; i < pow; i++ {
			parent := start[l] + i
			module := []int{parent}
			for j := 0; j < 4; j++ {
				module = append(module, start[l+1]+4*i+j)
			}
			addClique(g, module)
		}
		pow *= 4
	}
	return g
}
