package topology

import (
	"fmt"
	"math"
	"testing"
)

func TestUniformWeightsReproduceHops(t *testing.T) {
	for _, g := range []*Graph{SquareLattice16(), Corral11(), Tree20(), Hypercube16()} {
		d, err := g.WeightedDistances(g.UniformWeights())
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		hops := g.Distances()
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if d[i][j] != float64(hops[i][j]) {
					t.Fatalf("%s: weighted[%d][%d] = %g, hops = %d", g.Name, i, j, d[i][j], hops[i][j])
				}
			}
		}
	}
}

func TestWeightedDistancesDetour(t *testing.T) {
	// Triangle 0-1-2 plus a path 0-3-2: direct edge (0,2) weighted heavy
	// should reroute the 0→2 shortest path around it.
	g := NewGraph("tri", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	w := g.UniformWeights()
	for i, e := range g.Edges() {
		if e == [2]int{0, 2} {
			w[i] = 10
		}
	}
	d, err := g.WeightedDistances(w)
	if err != nil {
		t.Fatal(err)
	}
	if d[0][2] != 2 {
		t.Errorf("d[0][2] = %g, want 2 (detour via 1 or 3, not the weight-10 edge)", d[0][2])
	}
	if d[0][2] != d[2][0] {
		t.Errorf("asymmetric weighted distances: %g vs %g", d[0][2], d[2][0])
	}
}

func TestWeightedDistancesDisconnected(t *testing.T) {
	g := NewGraph("split", 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	d, err := g.WeightedDistances(g.UniformWeights())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d[0][2], 1) {
		t.Errorf("unreachable pair distance = %g, want +Inf", d[0][2])
	}
	if d[0][1] != 1 || d[2][3] != 1 {
		t.Errorf("in-component distances wrong: %g, %g", d[0][1], d[2][3])
	}
}

func TestWeightedDistancesValidation(t *testing.T) {
	g := SquareLattice16()
	if _, err := g.WeightedDistances(make(EdgeWeights, 3)); err == nil {
		t.Error("wrong-length weights accepted")
	}
	w := g.UniformWeights()
	w[0] = 0
	if _, err := g.WeightedDistances(w); err == nil {
		t.Error("zero weight accepted")
	}
	w[0] = -1
	if _, err := g.WeightedDistances(w); err == nil {
		t.Error("negative weight accepted")
	}
	w[0] = math.Inf(1)
	if _, err := g.WeightedDistances(w); err == nil {
		t.Error("infinite weight accepted")
	}
}

func TestWeightedDistancesCached(t *testing.T) {
	g := Corral11()
	w := g.UniformWeights()
	a, err := g.WeightedDistances(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.WeightedDistances(append(EdgeWeights(nil), w...))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%p", a) != fmt.Sprintf("%p", b) {
		t.Error("identical weight vectors did not hit the cache")
	}
	w2 := g.UniformWeights()
	w2[0] = 2
	c, err := g.WeightedDistances(w2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%p", a) == fmt.Sprintf("%p", c) {
		t.Error("distinct weight vectors shared a cache entry")
	}
}

func TestWeightedDistancesInvalidatedByAddEdge(t *testing.T) {
	g := NewGraph("grow", 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d, err := g.WeightedDistances(g.UniformWeights())
	if err != nil {
		t.Fatal(err)
	}
	if d[0][2] != 2 {
		t.Fatalf("d[0][2] = %g, want 2", d[0][2])
	}
	g.AddEdge(0, 2)
	d2, err := g.WeightedDistances(g.UniformWeights())
	if err != nil {
		t.Fatal(err)
	}
	if d2[0][2] != 1 {
		t.Errorf("after AddEdge d[0][2] = %g, want 1 (stale weighted cache?)", d2[0][2])
	}
}

func TestWeightedDistancesConcurrent(t *testing.T) {
	g := Tree20()
	w := g.UniformWeights()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := g.WeightedDistances(w)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestErrorWeightsUniformErrorIsUniform(t *testing.T) {
	g := SquareLattice16()
	// Uniform error rates normalize to uniform weights: every edge's cost
	// equals the max, so w = 1 + alpha for all edges — the same routing as
	// hop counts.
	w, err := g.ErrorWeights(func(a, b int) float64 { return 0.01 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("edge %d weight %g, want 3 (1 + alpha)", i, v)
		}
	}
	// Noiseless and alpha <= 0 both collapse to uniform ones.
	zero, err := g.ErrorWeights(func(a, b int) float64 { return 0 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	off, err := g.ErrorWeights(func(a, b int) float64 { return 0.5 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range zero {
		if zero[i] != 1 || off[i] != 1 {
			t.Fatalf("edge %d: zero-error %g / alpha-off %g, want 1", i, zero[i], off[i])
		}
	}
}

func TestErrorWeightsPriceBadEdges(t *testing.T) {
	g := SquareLattice16()
	edges := g.Edges()
	bad := edges[3]
	w, err := g.ErrorWeights(func(a, b int) float64 {
		if (a == bad[0] && b == bad[1]) || (a == bad[1] && b == bad[0]) {
			return 0.2
		}
		return 0.001
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The bad edge carries the max cost, so w = 1 + alpha; clean edges are
	// barely above 1.
	if math.Abs(w[3]-3) > 1e-12 {
		t.Fatalf("bad edge weight %g, want 3", w[3])
	}
	for i := range w {
		if i == 3 {
			continue
		}
		if w[i] >= 1.1 || w[i] <= 1 {
			t.Fatalf("clean edge %d weight %g, want barely above 1", i, w[i])
		}
	}
	// The weighted matrix must route around the bad edge: its two endpoints
	// are farther apart than one hop now.
	d, err := g.WeightedDistances(w)
	if err != nil {
		t.Fatal(err)
	}
	if d[bad[0]][bad[1]] <= 1.1 {
		t.Fatalf("distance across bad edge %g: still routed through it", d[bad[0]][bad[1]])
	}
}

func TestErrorWeightsRejectBadRates(t *testing.T) {
	g := SquareLattice16()
	for _, p := range []float64{-0.1, 1.0, 1.5, math.NaN()} {
		if _, err := g.ErrorWeights(func(a, b int) float64 { return p }, 1); err == nil {
			t.Errorf("error rate %g accepted", p)
		}
	}
}
