package topology

import (
	"fmt"
	"strings"
)

// DOT renders the coupling graph in Graphviz format for visual inspection
// of the paper's topologies (e.g. `go run ./cmd/topostat -dot tree20 | dot
// -Tpng`). Vertices are labeled with their index; the graph name becomes
// the Graphviz graph ID.
func (g *Graph) DOT() string {
	var sb strings.Builder
	id := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, g.Name)
	fmt.Fprintf(&sb, "graph %s {\n", id)
	sb.WriteString("  layout=neato;\n  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&sb, "  %d;\n", v)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}
