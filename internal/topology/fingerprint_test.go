package topology

import "testing"

// TestFingerprintStructural: the fingerprint depends on structure only —
// edge insertion order and the display name must not matter, while any
// structural difference must (with overwhelming probability) change it.
func TestFingerprintStructural(t *testing.T) {
	a := NewGraph("a", 4)
	a.AddEdge(0, 1)
	a.AddEdge(2, 3)
	a.AddEdge(1, 2)

	b := NewGraph("a different name", 4)
	b.AddEdge(1, 2)
	b.AddEdge(3, 2) // reversed endpoint order too
	b.AddEdge(0, 1)

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on construction order or name")
	}

	c := NewGraph("a", 4)
	c.AddEdge(0, 1)
	c.AddEdge(2, 3)
	c.AddEdge(0, 2) // one different edge
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different edge sets share a fingerprint")
	}

	d := NewGraph("a", 5) // same edges, extra isolated vertex
	d.AddEdge(0, 1)
	d.AddEdge(2, 3)
	d.AddEdge(1, 2)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different vertex counts share a fingerprint")
	}
}

// TestFingerprintInvalidatedByAddEdge: mutating the graph after a
// fingerprint was computed must refresh the cached value.
func TestFingerprintInvalidatedByAddEdge(t *testing.T) {
	g := NewGraph("g", 3)
	g.AddEdge(0, 1)
	before := g.Fingerprint()
	g.AddEdge(1, 2)
	if g.Fingerprint() == before {
		t.Fatal("stale fingerprint served after AddEdge")
	}
}

// TestFingerprintCatalogDistinct: every distinct paper topology hashes
// differently (spot check across the Table 1/2 generators).
func TestFingerprintCatalogDistinct(t *testing.T) {
	gs := []*Graph{
		HeavyHex20(), HexLattice20(), SquareLattice16(), Tree20(),
		TreeRR20(), Corral11(), Corral12(), Hypercube16(),
		HeavyHex84(), SquareLattice84(), Tree84(), Hypercube84(),
	}
	seen := map[uint64]string{}
	for _, g := range gs {
		fp := g.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s vs %s", g.Name, prev)
		}
		seen[fp] = g.Name
	}
}
