package topology

import "testing"

// The generalized Tree/TreeRR generators must reproduce the paper's fixed
// instantiations edge-for-edge: the named constructors are now thin aliases
// (Tree20 = Tree(4,2), ...), so these tests rebuild the original layouts by
// hand and compare structural fingerprints.

func handTree20() *Graph {
	g := NewGraph("Tree", 20)
	addClique(g, []int{0, 1, 2, 3})
	for k := 0; k < 4; k++ {
		module := []int{k}
		for j := 0; j < 4; j++ {
			module = append(module, 4+4*k+j)
		}
		addClique(g, module)
	}
	return g
}

func handTreeRR20() *Graph {
	g := NewGraph("Tree-RR", 20)
	addClique(g, []int{0, 1, 2, 3})
	for k := 0; k < 4; k++ {
		var module []int
		for j := 0; j < 4; j++ {
			q := 4 + 4*k + j
			module = append(module, q)
			g.AddEdge(q, j)
		}
		addClique(g, module)
	}
	return g
}

func handTree84() *Graph {
	g := handTree20()
	h := NewGraph("Tree", 84)
	for _, e := range g.Edges() {
		h.AddEdge(e[0], e[1])
	}
	for m := 0; m < 16; m++ {
		module := []int{4 + m}
		for j := 0; j < 4; j++ {
			module = append(module, 20+4*m+j)
		}
		addClique(h, module)
	}
	return h
}

func handTreeRR84() *Graph {
	g := NewGraph("Tree-RR", 84)
	addClique(g, []int{0, 1, 2, 3})
	for grp := 0; grp < 4; grp++ {
		var routers []int
		for j := 0; j < 4; j++ {
			r := 4 + 4*grp + j
			routers = append(routers, r)
			g.AddEdge(r, j)
		}
		addClique(g, routers)
		for i := 0; i < 4; i++ {
			var module []int
			for j := 0; j < 4; j++ {
				q := 20 + 16*grp + 4*i + j
				module = append(module, q)
				g.AddEdge(q, routers[j])
			}
			addClique(g, module)
		}
	}
	return g
}

func TestGenericTreeFingerprintsPinned(t *testing.T) {
	cases := []struct {
		name string
		got  *Graph
		want *Graph
	}{
		{"Tree(4,2) vs hand-built Tree20", Tree(4, 2), handTree20()},
		{"Tree(4,3) vs hand-built Tree84", Tree(4, 3), handTree84()},
		{"TreeRR(4,2) vs hand-built TreeRR20", TreeRR(4, 2), handTreeRR20()},
		{"TreeRR(4,3) vs hand-built TreeRR84", TreeRR(4, 3), handTreeRR84()},
		{"Tree20 alias", Tree20(), handTree20()},
		{"Tree84 alias", Tree84(), handTree84()},
		{"TreeRR20 alias", TreeRR20(), handTreeRR20()},
		{"TreeRR84 alias", TreeRR84(), handTreeRR84()},
	}
	for _, c := range cases {
		if c.got.N() != c.want.N() {
			t.Errorf("%s: n=%d want %d", c.name, c.got.N(), c.want.N())
		}
		if c.got.Fingerprint() != c.want.Fingerprint() {
			t.Errorf("%s: fingerprint %#x want %#x", c.name, c.got.Fingerprint(), c.want.Fingerprint())
		}
		if c.got.Name != c.want.Name {
			t.Errorf("%s: name %q want %q", c.name, c.got.Name, c.want.Name)
		}
	}
}

func TestGenericTreeProperties(t *testing.T) {
	for radix := 2; radix <= 8; radix++ {
		for levels := 2; levels <= 4; levels++ {
			want := 0
			pow := 1
			for l := 1; l <= levels; l++ {
				pow *= radix
				want += pow
			}
			g := Tree(radix, levels)
			if g.N() != want {
				t.Errorf("Tree(%d,%d): n=%d want %d", radix, levels, g.N(), want)
			}
			if !g.IsConnected() {
				t.Errorf("Tree(%d,%d) disconnected", radix, levels)
			}
			if levels <= 3 {
				rr := TreeRR(radix, levels)
				if rr.N() != want || !rr.IsConnected() {
					t.Errorf("TreeRR(%d,%d): n=%d connected=%v", radix, levels, rr.N(), rr.IsConnected())
				}
				// Round-robin rewiring preserves qubit count but changes
				// the edge set for every radix.
				if rr.Fingerprint() == g.Fingerprint() {
					t.Errorf("TreeRR(%d,%d) fingerprint collides with Tree", radix, levels)
				}
			}
		}
	}
}

func TestGenericTreePanics(t *testing.T) {
	cases := []func(){
		func() { Tree(1, 2) },
		func() { Tree(4, 1) },
		func() { Tree(4, 7) },
		func() { TreeRR(9, 2) },
		func() { TreeRR(4, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: out-of-range tree parameters did not panic", i)
				}
			}()
			f()
		}()
	}
}
