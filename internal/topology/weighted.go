package topology

import (
	"fmt"
	"hash/fnv"
	"math"
)

// EdgeWeights assigns a positive cost to every edge of a Graph, parallel to
// the Edges() slice: weights[i] is the cost of traversing Edges()[i] in
// either direction. The profile-guided router derives these from measured
// per-edge SWAP pressure so congested links read as longer than idle ones.
type EdgeWeights []float64

// UniformWeights returns the all-ones weighting, under which
// WeightedDistances reproduces Distances() exactly (hops as floats).
func (g *Graph) UniformWeights() EdgeWeights {
	w := make(EdgeWeights, len(g.edges))
	for i := range w {
		w[i] = 1
	}
	return w
}

// ErrorWeights converts per-edge two-qubit error rates into routing edge
// weights, the noise analogue of EdgeProfile.Weights: each edge's raw cost
// is c(e) = −ln(1−p(e)) — the additive log-fidelity charge of one gate on
// that coupling, so a shortest path under these weights is (up to the hop
// term) a maximum-fidelity path — and weights take the normalized form
// w(e) = 1 + alpha·c(e)/max(c), which keeps hop count as the tie-break and
// never produces the zero/negative weights WeightedDistances rejects.
// errAt(a, b) reports the error rate of edge (a, b); rates must lie in
// [0,1). A noiseless or uniform-error graph yields uniform weights (every
// c(e) equals the max), as does alpha ≤ 0.
func (g *Graph) ErrorWeights(errAt func(a, b int) float64, alpha float64) (EdgeWeights, error) {
	w := g.UniformWeights()
	if alpha <= 0 {
		return w, nil
	}
	costs := make([]float64, len(g.edges))
	cmax := 0.0
	for i, e := range g.edges {
		p := errAt(e[0], e[1])
		if p < 0 || p >= 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("topology: edge %v error rate %g outside [0,1)", e, p)
		}
		costs[i] = -math.Log1p(-p)
		if costs[i] > cmax {
			cmax = costs[i]
		}
	}
	if cmax == 0 {
		return w, nil
	}
	for i, c := range costs {
		w[i] = 1 + alpha*c/cmax
	}
	return w, nil
}

// weightedDistCacheMax bounds the per-graph weighted-distance cache. Unlike
// the single hop-distance matrix, weight vectors vary per profiled circuit,
// so the cache is a bounded map keyed by weight fingerprint; when full it is
// cleared wholesale (entries are cheap to recompute and sweeps rarely churn
// more than a few distinct weightings per graph at once).
const weightedDistCacheMax = 64

// WeightedDistances returns the all-pairs shortest-path cost matrix under
// the given edge weights (Dijkstra from every source), caching results per
// weight vector the way Distances() caches the hop matrix. Unreachable
// pairs are +Inf (never the -1 sentinel of the hop matrix, which reads as
// the cheapest possible cost if it leaks into a router's arithmetic).
// Weights must be positive and parallel to Edges(). Safe for concurrent
// callers sharing one Graph.
func (g *Graph) WeightedDistances(w EdgeWeights) ([][]float64, error) {
	if len(w) != len(g.edges) {
		return nil, fmt.Errorf("topology: %d edge weights for %d edges", len(w), len(g.edges))
	}
	for i, wt := range w {
		if !(wt > 0) || math.IsInf(wt, 1) {
			return nil, fmt.Errorf("topology: edge %v weight %g must be positive and finite", g.edges[i], wt)
		}
	}
	key := w.Fingerprint()
	g.wdistMu.Lock()
	if d, ok := g.wdist[key]; ok {
		g.wdistMu.Unlock()
		return d, nil
	}
	g.wdistMu.Unlock()

	d := g.dijkstraAll(w)

	g.wdistMu.Lock()
	if g.wdist == nil || len(g.wdist) >= weightedDistCacheMax {
		g.wdist = make(map[uint64][][]float64)
	}
	g.wdist[key] = d
	g.wdistMu.Unlock()
	return d, nil
}

// Fingerprint hashes the weight vector by exact bit patterns. Two weight
// vectors with equal fingerprints drive WeightedDistances — and everything
// downstream of it (layout, routing) — identically, which is what lets the
// profile-guided fixed-point iteration detect convergence: a repeated
// fingerprint means the next candidate routing would be a deterministic
// replay of one already tried.
func (w EdgeWeights) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range w {
		bits := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// dijkstraAll runs Dijkstra from every source. n is small (≤ ~170 across
// the paper's machines), so the O(n²) selection loop beats a heap and is
// trivially deterministic (lowest-index tie-break).
func (g *Graph) dijkstraAll(w EdgeWeights) [][]float64 {
	n := g.n
	// Per-vertex neighbor weights, mirroring the adjacency lists.
	adjW := make([][]float64, n)
	for v := range adjW {
		adjW[v] = make([]float64, len(g.adj[v]))
	}
	for i, e := range g.edges {
		a, b := e[0], e[1]
		for j, nb := range g.adj[a] {
			if nb == b {
				adjW[a][j] = w[i]
			}
		}
		for j, nb := range g.adj[b] {
			if nb == a {
				adjW[b][j] = w[i]
			}
		}
	}
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		row := make([]float64, n)
		visited := make([]bool, n)
		for i := range row {
			row[i] = math.Inf(1)
		}
		row[s] = 0
		for {
			u, best := -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if !visited[v] && row[v] < best {
					u, best = v, row[v]
				}
			}
			if u < 0 {
				break
			}
			visited[u] = true
			for j, v := range g.adj[u] {
				if nd := row[u] + adjW[u][j]; nd < row[v] {
					row[v] = nd
				}
			}
		}
		out[s] = row
	}
	return out
}
