package topology

import (
	"math"
	"testing"
)

func TestSquareLattice16Table1(t *testing.T) {
	s := SquareLattice16().Stats()
	if s.Qubits != 16 || s.Diameter != 6 {
		t.Errorf("4x4 lattice: qubits=%d dia=%d, want 16/6", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgDist-2.5) > 1e-9 {
		t.Errorf("4x4 AvgD = %g, want 2.5 (paper Table 1)", s.AvgDist)
	}
	if math.Abs(s.AvgConn-3.0) > 1e-9 {
		t.Errorf("4x4 AvgC = %g, want 3.0", s.AvgConn)
	}
}

func TestSquareLattice84Table2(t *testing.T) {
	s := SquareLattice84().Stats()
	if s.Qubits != 84 || s.Diameter != 17 {
		t.Errorf("7x12 lattice: qubits=%d dia=%d, want 84/17", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgDist-6.26) > 0.005 {
		t.Errorf("7x12 AvgD = %g, want 6.26", s.AvgDist)
	}
	if math.Abs(s.AvgConn-3.55) > 0.005 {
		t.Errorf("7x12 AvgC = %g, want 3.55", s.AvgConn)
	}
}

func TestLatticeAltDiag84Table2(t *testing.T) {
	s := LatticeAltDiag84().Stats()
	if s.Qubits != 84 {
		t.Fatalf("altdiag qubits = %d", s.Qubits)
	}
	if math.Abs(s.AvgConn-5.12) > 0.01 {
		t.Errorf("altdiag AvgC = %g, want 5.12", s.AvgConn)
	}
	if s.Diameter != 11 {
		t.Errorf("altdiag diameter = %d, want 11", s.Diameter)
	}
	if math.Abs(s.AvgDist-4.62) > 0.05 {
		t.Errorf("altdiag AvgD = %g, want ≈4.62", s.AvgDist)
	}
}

func TestHypercube16Table1(t *testing.T) {
	s := Hypercube16().Stats()
	if s.Diameter != 4 || s.Qubits != 16 {
		t.Errorf("Q4: qubits=%d dia=%d", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgDist-2.0) > 1e-9 {
		t.Errorf("Q4 AvgD = %g, want 2.0", s.AvgDist)
	}
	if math.Abs(s.AvgConn-4.0) > 1e-9 {
		t.Errorf("Q4 AvgC = %g, want 4.0", s.AvgConn)
	}
}

func TestHypercube84Table2(t *testing.T) {
	s := Hypercube84().Stats()
	if s.Qubits != 84 {
		t.Fatalf("trimmed cube qubits = %d", s.Qubits)
	}
	if math.Abs(s.AvgConn-6.0) > 1e-9 {
		t.Errorf("trimmed cube AvgC = %g, want exactly 6.0 (252 edges)", s.AvgConn)
	}
	if s.Diameter != 7 {
		t.Errorf("trimmed cube diameter = %d, want 7", s.Diameter)
	}
	if math.Abs(s.AvgDist-3.32) > 0.1 {
		t.Errorf("trimmed cube AvgD = %g, want ≈3.32", s.AvgDist)
	}
}

func TestHypercubeDistancesAreHamming(t *testing.T) {
	g := Hypercube(5)
	for a := 0; a < 32; a += 3 {
		for b := 0; b < 32; b += 5 {
			if g.Dist(a, b) != HammingDistance(a, b) {
				t.Fatalf("dist(%d,%d) = %d, Hamming %d", a, b, g.Dist(a, b), HammingDistance(a, b))
			}
		}
	}
}

func TestTree20Table1(t *testing.T) {
	s := Tree20().Stats()
	if s.Qubits != 20 || s.Diameter != 3 {
		t.Errorf("Tree20: qubits=%d dia=%d, want 20/3", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgConn-4.6) > 1e-9 {
		t.Errorf("Tree20 AvgC = %g, want 4.6 (46 couplings)", s.AvgConn)
	}
	if math.Abs(s.AvgDist-2.15) > 0.05 {
		t.Errorf("Tree20 AvgD = %g, want ≈2.15", s.AvgDist)
	}
}

func TestTreeRR20Table1(t *testing.T) {
	s := TreeRR20().Stats()
	if s.Qubits != 20 || s.Diameter != 3 {
		t.Errorf("TreeRR20: qubits=%d dia=%d, want 20/3", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgConn-4.6) > 1e-9 {
		t.Errorf("TreeRR20 AvgC = %g, want 4.6", s.AvgConn)
	}
	if math.Abs(s.AvgDist-2.03) > 0.05 {
		t.Errorf("TreeRR20 AvgD = %g, want ≈2.03", s.AvgDist)
	}
	// Round robin should strictly improve average distance over Tree.
	if s.AvgDist >= Tree20().AvgDistance() {
		t.Error("Tree-RR should have lower average distance than Tree")
	}
}

func TestTree84Table2(t *testing.T) {
	s := Tree84().Stats()
	if s.Qubits != 84 || s.Diameter != 5 {
		t.Errorf("Tree84: qubits=%d dia=%d, want 84/5", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgDist-3.91) > 0.15 {
		t.Errorf("Tree84 AvgD = %g, want ≈3.91", s.AvgDist)
	}
}

func TestTreeRR84Table2(t *testing.T) {
	s := TreeRR84().Stats()
	if s.Qubits != 84 || s.Diameter != 5 {
		t.Errorf("TreeRR84: qubits=%d dia=%d, want 84/5", s.Qubits, s.Diameter)
	}
	if s.AvgDist >= Tree84().AvgDistance() {
		t.Error("Tree-RR 84 should have lower average distance than Tree 84")
	}
}

func TestMakeTreeMatchesHandBuilt(t *testing.T) {
	for _, tc := range []struct {
		levels int
		want   *Graph
	}{
		{2, Tree20()},
		{3, Tree84()},
	} {
		g := MakeTree(tc.levels)
		if g.N() != tc.want.N() || g.NumEdges() != tc.want.NumEdges() {
			t.Errorf("MakeTree(%d): %d nodes %d edges, want %d/%d",
				tc.levels, g.N(), g.NumEdges(), tc.want.N(), tc.want.NumEdges())
		}
		for _, e := range tc.want.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Errorf("MakeTree(%d) missing edge %v", tc.levels, e)
			}
		}
	}
}

func TestCorral11Table1(t *testing.T) {
	s := Corral11().Stats()
	if s.Qubits != 16 || s.Diameter != 4 {
		t.Errorf("Corral11: qubits=%d dia=%d, want 16/4", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgConn-5.0) > 1e-9 {
		t.Errorf("Corral11 AvgC = %g, want 5.0", s.AvgConn)
	}
	if math.Abs(s.AvgDist-2.0625) > 1e-9 {
		t.Errorf("Corral11 AvgD = %g, want 2.0625 (paper: 2.06)", s.AvgDist)
	}
}

func TestCorral12Table1(t *testing.T) {
	s := Corral12().Stats()
	if s.Qubits != 16 || s.Diameter != 2 {
		t.Errorf("Corral12: qubits=%d dia=%d, want 16/2", s.Qubits, s.Diameter)
	}
	if math.Abs(s.AvgConn-6.0) > 1e-9 {
		t.Errorf("Corral12 AvgC = %g, want 6.0", s.AvgConn)
	}
	if math.Abs(s.AvgDist-1.5) > 1e-9 {
		t.Errorf("Corral12 AvgD = %g, want 1.5", s.AvgDist)
	}
}

func TestCorralLiteralStride2(t *testing.T) {
	// The literal "second-nearest neighbor" Corral(1,2) has diameter 3,
	// which is why Corral12() uses stride 3 (documented in DESIGN.md).
	g := CorralRing(8, []int{1, 2})
	if d := g.Diameter(); d != 3 {
		t.Errorf("stride-{1,2} corral diameter = %d, expected 3", d)
	}
}

func TestHeavyHex20Metrics(t *testing.T) {
	s := HeavyHex20().Stats()
	if s.Qubits != 20 {
		t.Fatalf("HeavyHex20 qubits = %d", s.Qubits)
	}
	if math.Abs(s.AvgConn-2.1) > 1e-9 {
		t.Errorf("HeavyHex20 AvgC = %g, want 2.1 (21 couplings)", s.AvgConn)
	}
	if !HeavyHex20().IsConnected() {
		t.Error("HeavyHex20 disconnected")
	}
	// Sparsest topology of the 16-20q set: diameter must exceed all others.
	for _, other := range []*Graph{Tree20(), TreeRR20(), Corral11(), Corral12(), Hypercube16(), SquareLattice16()} {
		if s.Diameter <= other.Diameter() {
			t.Errorf("HeavyHex20 diameter %d not worse than %s (%d)", s.Diameter, other.Name, other.Diameter())
		}
	}
}

func TestHeavyHex84Metrics(t *testing.T) {
	g := HeavyHex84()
	s := g.Stats()
	if s.Qubits != 84 {
		t.Fatalf("HeavyHex84 qubits = %d", s.Qubits)
	}
	if !g.IsConnected() {
		t.Fatal("HeavyHex84 disconnected")
	}
	if s.AvgConn < 2.1 || s.AvgConn > 2.35 {
		t.Errorf("HeavyHex84 AvgC = %g, want ≈2.26", s.AvgConn)
	}
	if s.Diameter < 17 || s.Diameter > 25 {
		t.Errorf("HeavyHex84 diameter = %d, want ≈21", s.Diameter)
	}
	// Max degree 3 (heavy-hex property).
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 3 {
			t.Fatalf("HeavyHex84 vertex %d has degree %d > 3", v, g.Degree(v))
		}
	}
}

func TestHexLattice20Metrics(t *testing.T) {
	s := HexLattice20().Stats()
	if s.Qubits != 20 {
		t.Fatalf("HexLattice20 qubits = %d", s.Qubits)
	}
	if s.AvgConn < 2.3 || s.AvgConn > 2.55 {
		t.Errorf("HexLattice20 AvgC = %g, want ≈2.45", s.AvgConn)
	}
	if s.Diameter < 6 || s.Diameter > 8 {
		t.Errorf("HexLattice20 diameter = %d, want ≈7", s.Diameter)
	}
}

func TestHexLattice84Metrics(t *testing.T) {
	s := HexLattice84().Stats()
	if s.Qubits != 84 {
		t.Fatalf("HexLattice84 qubits = %d", s.Qubits)
	}
	if s.AvgConn < 2.6 || s.AvgConn > 2.8 {
		t.Errorf("HexLattice84 AvgC = %g, want ≈2.71", s.AvgConn)
	}
	if s.Diameter < 16 || s.Diameter > 19 {
		t.Errorf("HexLattice84 diameter = %d, want ≈17", s.Diameter)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph("test", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	if g.NumEdges() != 2 {
		t.Errorf("duplicate edge not ignored: %d edges", g.NumEdges())
	}
	if !g.HasEdge(1, 0) {
		t.Error("undirected edge lookup failed")
	}
	if g.IsConnected() {
		t.Error("graph with isolated vertex reported connected")
	}
	if g.Diameter() != -1 || g.AvgDistance() != -1 {
		t.Error("disconnected metrics should be -1")
	}
	g.AddEdge(2, 3)
	if !g.IsConnected() || g.Diameter() != 3 {
		t.Errorf("path graph diameter = %d, want 3", g.Diameter())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := SquareLattice(3, 3)
	sub := g.InducedSubgraph("corner", []int{0, 1, 3, 4})
	if sub.N() != 4 || sub.NumEdges() != 4 {
		t.Errorf("2x2 corner: %d nodes %d edges, want 4/4", sub.N(), sub.NumEdges())
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph("p", 2)
	for name, f := range map[string]func(){
		"self edge":    func() { g.AddEdge(0, 0) },
		"out of range": func() { g.AddEdge(0, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllTopologiesConnected(t *testing.T) {
	all := []*Graph{
		SquareLattice16(), SquareLattice84(), HexLattice20(), HexLattice84(),
		HeavyHex20(), HeavyHex84(), LatticeAltDiag84(), Hypercube16(),
		Hypercube84(), Tree20(), TreeRR20(), Tree84(), TreeRR84(),
		Corral11(), Corral12(), MakeTree(4),
	}
	for _, g := range all {
		if !g.IsConnected() {
			t.Errorf("%s is disconnected", g)
		}
	}
}
