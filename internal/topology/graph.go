// Package topology models qubit-coupling graphs G={V,E} (paper §2.4) and
// provides generators for every topology in the paper's comparison: the
// commercial baselines (Square-Lattice, Hex-Lattice, Heavy-Hex,
// Lattice+AltDiagonals), the aspirational Hypercube, and the SNAIL-enabled
// modular designs (4-ary Tree, Round-Robin Tree, and the Corral family).
// Structural metrics (diameter, average distance, average connectivity)
// reproduce Tables 1 and 2.
package topology

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is an undirected simple graph over vertices 0..n-1.
//
// Construction (AddEdge) is single-threaded; once built, a Graph is safe
// for concurrent readers — the parallel sweep engine shares one Graph per
// machine across workers, so the lazy distance cache is guarded below.
type Graph struct {
	Name string

	n     int
	adj   [][]int
	edges [][2]int

	dist   atomic.Pointer[[][]int] // all-pairs BFS distances, computed lazily
	distMu sync.Mutex              // serializes the one-time computation

	wdistMu sync.Mutex             // guards wdist
	wdist   map[uint64][][]float64 // weighted all-pairs distances per weight fingerprint

	fp atomic.Pointer[uint64] // structural fingerprint, computed lazily
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(name string, n int) *Graph {
	if n < 1 {
		panic("topology: graph needs at least one vertex")
	}
	return &Graph{Name: name, n: n, adj: make([][]int, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge; duplicate and self edges are rejected.
func (g *Graph) AddEdge(a, b int) {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("topology: edge (%d,%d) out of range [0,%d)", a, b, g.n))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self edge at %d", a))
	}
	if g.HasEdge(a, b) {
		return
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	if a > b {
		a, b = b, a
	}
	g.edges = append(g.edges, [2]int{a, b})
	g.dist.Store(nil)
	g.fp.Store(nil)
	g.wdistMu.Lock()
	g.wdist = nil
	g.wdistMu.Unlock()
}

// Fingerprint returns a structural hash of the graph: vertex count plus the
// sorted edge set, independent of construction order. Two graphs with equal
// fingerprints have identical couplings (up to 64-bit FNV collisions), which
// is what content-addressed caching of routing results keys on; the Name is
// deliberately excluded so renamed but identical topologies share entries.
func (g *Graph) Fingerprint() uint64 {
	if p := g.fp.Load(); p != nil {
		return *p
	}
	es := append([][2]int(nil), g.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	h := fnv.New64a()
	var buf [8]byte
	writeU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU(uint64(g.n))
	for _, e := range es {
		writeU(uint64(e[0])<<32 | uint64(e[1]))
	}
	v := h.Sum64()
	g.fp.Store(&v)
	return v
}

// HasEdge reports whether (a,b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	for _, v := range g.adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v (shared slice; do not modify).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns all edges as (low, high) pairs (shared; do not modify).
func (g *Graph) Edges() [][2]int { return g.edges }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Distances returns the all-pairs shortest-path matrix (hops), computing and
// caching it on first use. Unreachable pairs are -1. Safe for concurrent
// callers: the cache hit is a lock-free load, the one-time computation is
// mutex-serialized.
func (g *Graph) Distances() [][]int {
	if p := g.dist.Load(); p != nil {
		return *p
	}
	g.distMu.Lock()
	defer g.distMu.Unlock()
	if p := g.dist.Load(); p != nil {
		return *p
	}
	d := make([][]int, g.n)
	for s := 0; s < g.n; s++ {
		row := make([]int, g.n)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if row[w] < 0 {
					row[w] = row[v] + 1
					queue = append(queue, w)
				}
			}
		}
		d[s] = row
	}
	g.dist.Store(&d)
	return d
}

// Dist returns the hop distance between a and b (-1 if disconnected).
func (g *Graph) Dist(a, b int) int { return g.Distances()[a][b] }

// IsConnected reports whether every vertex is reachable from vertex 0.
func (g *Graph) IsConnected() bool {
	row := g.Distances()[0]
	for _, d := range row {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum finite pairwise distance. Disconnected
// graphs return -1.
func (g *Graph) Diameter() int {
	if !g.IsConnected() {
		return -1
	}
	d := g.Distances()
	worst := 0
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if d[i][j] > worst {
				worst = d[i][j]
			}
		}
	}
	return worst
}

// AvgDistance returns the mean distance over all ordered vertex pairs
// including self-pairs (the normalization that reproduces the paper's
// Table 1/2 values, e.g. 2.5 for the 4x4 lattice and 2.0 for the 4-cube).
func (g *Graph) AvgDistance() float64 {
	if !g.IsConnected() {
		return -1
	}
	d := g.Distances()
	sum := 0
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			sum += d[i][j]
		}
	}
	return float64(sum) / float64(g.n*g.n)
}

// AvgDegree returns the mean vertex degree (the paper's "AvgC").
func (g *Graph) AvgDegree() float64 {
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// InducedSubgraph returns the subgraph on the kept vertices, relabeled
// 0..len(keep)-1 in the order given.
func (g *Graph) InducedSubgraph(name string, keep []int) *Graph {
	idx := make(map[int]int, len(keep))
	for i, v := range keep {
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("topology: keep vertex %d out of range", v))
		}
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("topology: keep vertex %d repeated", v))
		}
		idx[v] = i
	}
	out := NewGraph(name, len(keep))
	for _, e := range g.edges {
		a, oka := idx[e[0]]
		b, okb := idx[e[1]]
		if oka && okb {
			out.AddEdge(a, b)
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d, e=%d}", g.Name, g.n, len(g.edges))
}

// Stats bundles the Table 1/2 row for a topology.
type Stats struct {
	Name     string
	Qubits   int
	Diameter int
	AvgDist  float64
	AvgConn  float64
}

// Stats computes the paper's per-topology properties.
func (g *Graph) Stats() Stats {
	return Stats{
		Name:     g.Name,
		Qubits:   g.n,
		Diameter: g.Diameter(),
		AvgDist:  g.AvgDistance(),
		AvgConn:  g.AvgDegree(),
	}
}
