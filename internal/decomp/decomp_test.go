package decomp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/optimize"
)

func fastCfg() Config {
	return Config{Restarts: 3, Adam: optimize.AdamConfig{MaxIter: 300, LearningRate: 0.08}}
}

func TestHSFidelity(t *testing.T) {
	u := gates.CX()
	if f := HSFidelity(u, u); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity = %g", f)
	}
	// Global phase invariance.
	if f := HSFidelity(u, u.Scale(1i)); math.Abs(f-1) > 1e-12 {
		t.Fatalf("phase-shifted fidelity = %g", f)
	}
	if f := HSFidelity(gates.CX(), gates.SWAP()); f > 0.99 {
		t.Fatalf("CX vs SWAP fidelity = %g, should be < 1", f)
	}
}

func TestBaseFidelityModel(t *testing.T) {
	// Paper's example: a 90%-fidelity iSWAP pulse gives a 95% √iSWAP pulse.
	if f := BaseFidelity(0.90, 2); math.Abs(f-0.95) > 1e-12 {
		t.Fatalf("BaseFidelity(0.9, 2) = %g, want 0.95", f)
	}
	if f := BaseFidelity(0.99, 4); math.Abs(f-0.9975) > 1e-12 {
		t.Fatalf("BaseFidelity(0.99, 4) = %g, want 0.9975", f)
	}
}

func TestTemplateUnitaryShape(t *testing.T) {
	params := make([]float64, ParamsPerTemplate(3))
	u, err := TemplateUnitary(2, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsUnitary(1e-10) {
		t.Fatal("template not unitary")
	}
	if _, err := TemplateUnitary(2, 3, params[:5]); err == nil {
		t.Fatal("wrong param count accepted")
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := gates.RandomSU4(rng)
	obj := newObjective(target, 3, 2)
	x := make([]float64, ParamsPerTemplate(2))
	for i := range x {
		x[i] = rng.Float64() * 2 * math.Pi
	}
	f0, g := obj.fg(x)
	plain := func(y []float64) float64 {
		f, _ := obj.fg(y)
		return f
	}
	_, gFD := optimize.FiniteDiffGrad(plain, 1e-6)(x)
	_ = f0
	for i := range g {
		if math.Abs(g[i]-gFD[i]) > 1e-5 {
			t.Fatalf("gradient mismatch at %d: analytic %g vs FD %g", i, g[i], gFD[i])
		}
	}
}

func TestDecomposeSelf(t *testing.T) {
	// One √iSWAP template reproduces √iSWAP exactly.
	rng := rand.New(rand.NewSource(2))
	res, err := Decompose(gates.SqrtISwap(), 2, 1, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infidelity > 1e-7 {
		t.Fatalf("√iSWAP self-decomposition infidelity %g", res.Infidelity)
	}
	// And the optimized parameters really reconstruct it.
	u, err := TemplateUnitary(2, 1, res.Params)
	if err != nil {
		t.Fatal(err)
	}
	if f := HSFidelity(u, gates.SqrtISwap()); f < 1-1e-6 {
		t.Fatalf("reconstructed fidelity %g", f)
	}
}

func TestDecomposeCNOTWithTwoSqrtISwaps(t *testing.T) {
	// Analytic theory (paper §2.3): CNOT = 2 √iSWAP + locals.
	rng := rand.New(rand.NewSource(3))
	res, err := Decompose(gates.CX(), 2, 2, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infidelity > 1e-6 {
		t.Fatalf("CNOT with 2 √iSWAP: infidelity %g, want ≈0", res.Infidelity)
	}
	// One √iSWAP is not enough for CNOT.
	res1, err := Decompose(gates.CX(), 2, 1, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Infidelity < 1e-3 {
		t.Fatalf("CNOT with 1 √iSWAP reached infidelity %g — impossible", res1.Infidelity)
	}
}

func TestDecomposeHaarWithThreeSqrtISwaps(t *testing.T) {
	// Any 2Q unitary needs at most 3 √iSWAPs (paper [6]).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3; trial++ {
		target := gates.RandomSU4(rng)
		res, err := Decompose(target, 2, 3, rng, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.Infidelity > 1e-5 {
			t.Fatalf("trial %d: Haar with 3 √iSWAP infidelity %g", trial, res.Infidelity)
		}
	}
}

func TestSmallerFractionsNeedMoreGates(t *testing.T) {
	// Fig. 15 (top left): at fixed k=3, 4√iSWAP reaches worse fidelity than
	// √iSWAP on a generic target; at larger k it catches up.
	rng := rand.New(rand.NewSource(5))
	target := gates.RandomSU4(rng)
	r2, err := Decompose(target, 2, 3, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Decompose(target, 4, 3, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r4.Infidelity < r2.Infidelity {
		t.Fatalf("4√iSWAP (k=3) infidelity %g should exceed √iSWAP's %g", r4.Infidelity, r2.Infidelity)
	}
	r4b, err := Decompose(target, 4, 6, rng, Config{Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r4b.Infidelity > 1e-3 {
		t.Fatalf("4√iSWAP with k=6 infidelity %g, expected near-exact", r4b.Infidelity)
	}
}

func TestSwapNeedsThreeSqrtISwap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	res2, err := Decompose(gates.SWAP(), 2, 2, rng, Config{Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Infidelity < 1e-3 {
		t.Fatalf("SWAP with 2 √iSWAP infidelity %g — impossible per theory", res2.Infidelity)
	}
	res3, err := Decompose(gates.SWAP(), 2, 3, rng,
		Config{Restarts: 5, Adam: optimize.AdamConfig{MaxIter: 800, LearningRate: 0.08}})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Infidelity > 1e-5 {
		t.Fatalf("SWAP with 3 √iSWAP infidelity %g", res3.Infidelity)
	}
}

func TestBestTemplateTradesFidelity(t *testing.T) {
	// With a perfect base gate (Fb=1) the best template is the exact one;
	// with a noisy base, smaller k can win despite decomposition error.
	rng := rand.New(rand.NewSource(7))
	target := gates.RandomSU4(rng)
	_, ftPerfect, err := BestTemplate(target, 2, 4, 1.0, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ftPerfect < 1-1e-5 {
		t.Fatalf("perfect base total fidelity %g, want ≈1", ftPerfect)
	}
	best, ftNoisy, err := BestTemplate(target, 2, 4, 0.9, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ftNoisy >= ftPerfect {
		t.Fatal("noisy base cannot beat perfect base")
	}
	if best.K > 3 {
		t.Errorf("best K = %d with 10%% iSWAP infidelity; expected ≤ 3", best.K)
	}
}

func TestDecomposeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := Decompose(linalg.Identity(3), 2, 2, rng, Config{}); err == nil {
		t.Fatal("3x3 target accepted")
	}
	if _, err := Decompose(gates.CX(), 0, 2, rng, Config{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestK0TemplateIsLocalOnly(t *testing.T) {
	// k=0 can match local gates but not CNOT.
	rng := rand.New(rand.NewSource(9))
	local := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
	res, err := Decompose(local, 2, 0, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infidelity > 1e-6 {
		t.Fatalf("local target with k=0: infidelity %g", res.Infidelity)
	}
	resCX, err := Decompose(gates.CX(), 2, 0, rng, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if resCX.Infidelity < 0.1 {
		t.Fatalf("CNOT with k=0 infidelity %g — impossible", resCX.Infidelity)
	}
}
