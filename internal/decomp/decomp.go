// Package decomp is the numerical gate-decomposition engine used for the
// paper's pulse-duration sensitivity study (§6.3, Fig. 15): a NuOp-style
// template of k applications of the n-th-root-of-iSWAP interleaved with
// parameterized single-qubit layers (Eq. 10), optimized to maximize the
// normalized Hilbert–Schmidt fidelity (Eq. 11) against a target unitary.
// The fidelity model of Eqs. 12–13 combines the achieved decomposition
// fidelity with linearly-scaling decoherence to find the best template size.
package decomp

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/optimize"
)

// HSFidelity is the paper's Eq. 11: |Tr(Ud† Ut)| / dim, the phase-invariant
// overlap of two unitaries (1.0 = equal up to global phase).
func HSFidelity(a, b *linalg.Matrix) float64 {
	return cmplx.Abs(a.HSInner(b)) / float64(a.Rows)
}

// BaseFidelity is Eq. 12: decoherence-limited fidelity of one n√iSWAP pulse
// given the fidelity of a full iSWAP pulse, assuming infidelity scales
// linearly with pulse duration: Fb(n√iSWAP) = 1 − (1 − Fb(iSWAP))/n.
func BaseFidelity(fbISwap float64, n int) float64 {
	return 1 - (1-fbISwap)/float64(n)
}

// TotalFidelity is Eq. 13's inner expression: Fd · Fb^k for a k-gate
// template with per-gate base fidelity fb and decomposition fidelity fd.
func TotalFidelity(fd, fb float64, k int) float64 {
	return fd * math.Pow(fb, float64(k))
}

// Config controls the optimizer.
type Config struct {
	Restarts int                 // random restarts (default 4)
	Adam     optimize.AdamConfig // inner optimizer settings
}

func (c Config) withDefaults() Config {
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	if c.Adam.MaxIter == 0 {
		c.Adam.MaxIter = 250
	}
	if c.Adam.LearningRate == 0 {
		c.Adam.LearningRate = 0.08
	}
	return c
}

// Result is one optimized template.
type Result struct {
	Root       int       // n of the n√iSWAP basis
	K          int       // number of basis-gate applications
	Infidelity float64   // 1 − Fd at the optimum
	Params     []float64 // 6(k+1) single-qubit parameters
}

// ParamsPerTemplate returns the parameter count of a k-gate template.
func ParamsPerTemplate(k int) int { return 6 * (k + 1) }

// TemplateUnitary materializes the Eq. 10 template: (U3⊗U3) layers
// interleaved with k applications of n√iSWAP.
func TemplateUnitary(n, k int, params []float64) (*linalg.Matrix, error) {
	if len(params) != ParamsPerTemplate(k) {
		return nil, fmt.Errorf("decomp: need %d params for k=%d, got %d", ParamsPerTemplate(k), k, len(params))
	}
	basis := gates.NRootISwap(n)
	layer := func(i int) *linalg.Matrix {
		p := params[6*i : 6*i+6]
		return gates.U3(p[0], p[1], p[2]).Kron(gates.U3(p[3], p[4], p[5]))
	}
	t := layer(0)
	for i := 1; i <= k; i++ {
		t = layer(i).Mul(basis.Mul(t))
	}
	return t, nil
}

// TemplateCircuit materializes the Eq. 10 template as a two-qubit circuit —
// the same gate sequence TemplateUnitary multiplies out, kept as individual
// ops so the noise estimators can thread error trajectories through it: u3
// pairs for each single-qubit layer, and k explicit-unitary n√iSWAP ops
// (named "siswap" so duration-charging timing tables recognize the n=2
// case; other roots carry their matrix in Op.U regardless of name).
func TemplateCircuit(n, k int, params []float64) (*circuit.Circuit, error) {
	if len(params) != ParamsPerTemplate(k) {
		return nil, fmt.Errorf("decomp: need %d params for k=%d, got %d", ParamsPerTemplate(k), k, len(params))
	}
	if n < 1 {
		return nil, fmt.Errorf("decomp: invalid root n=%d", n)
	}
	basis := gates.NRootISwap(n)
	name := fmt.Sprintf("n%dsiswap", n)
	if n == 2 {
		name = "siswap"
	}
	c := circuit.New(2)
	layer := func(i int) {
		p := params[6*i : 6*i+6]
		c.U3(0, p[0], p[1], p[2])
		c.U3(1, p[3], p[4], p[5])
	}
	layer(0)
	for i := 1; i <= k; i++ {
		c.Append(circuit.Op{Name: name, Qubits: []int{0, 1}, U: basis})
		layer(i)
	}
	return c, nil
}

// Decompose optimizes a k-application n√iSWAP template against the target
// and returns the best result over Config.Restarts random restarts.
// The objective 1 − |Tr(T†U)|/4 is minimized with Adam using analytic
// gradients backpropagated through the template's matrix chain.
func Decompose(target *linalg.Matrix, n, k int, rng *rand.Rand, cfg Config) (Result, error) {
	if target.Rows != 4 || target.Cols != 4 {
		return Result{}, fmt.Errorf("decomp: target must be 4x4")
	}
	if n < 1 || k < 0 {
		return Result{}, fmt.Errorf("decomp: invalid template n=%d k=%d", n, k)
	}
	cfg = cfg.withDefaults()
	obj := newObjective(target, n, k)
	np := ParamsPerTemplate(k)
	best := Result{Root: n, K: k, Infidelity: math.Inf(1)}
	for r := 0; r < cfg.Restarts; r++ {
		x0 := make([]float64, np)
		for i := range x0 {
			x0[i] = rng.Float64() * 2 * math.Pi
		}
		x, f := optimize.Adam(x0, obj.fg, cfg.Adam)
		if f < best.Infidelity {
			best.Infidelity = f
			best.Params = x
		}
		if best.Infidelity < 1e-10 {
			break
		}
	}
	if best.Infidelity < 0 {
		best.Infidelity = 0 // numerical floor
	}
	return best, nil
}

// objective carries the preallocated state for gradient evaluation. All
// scratch matrices are reused across fg calls (Adam never retains the
// gradient between iterations), so one objective must not be shared by
// concurrent optimizations.
type objective struct {
	udg   *linalg.Matrix // U†
	basis *linalg.Matrix // n√iSWAP
	n, k  int

	// Reused across fg calls: the layer Krons, the op chain, its running
	// prefix/suffix products, the per-layer U3 factor slots, and the
	// gradient scratch.
	layers         []*linalg.Matrix
	mats           []*linalg.Matrix
	suffix, prefix []*linalg.Matrix
	gmat, gtmp, dm *linalg.Matrix
	left, right    []*linalg.Matrix
	dLeft, dRight  [][3]*linalg.Matrix
	grad           []float64
}

func newObjective(target *linalg.Matrix, n, k int) *objective {
	total := 2*k + 1
	o := &objective{
		udg:    target.Dagger(),
		basis:  gates.NRootISwap(n),
		n:      n,
		k:      k,
		layers: make([]*linalg.Matrix, k+1),
		mats:   make([]*linalg.Matrix, total),
		suffix: make([]*linalg.Matrix, total+1),
		prefix: make([]*linalg.Matrix, total+1),
		gmat:   linalg.New(4, 4),
		gtmp:   linalg.New(4, 4),
		dm:     linalg.New(4, 4),
		left:   make([]*linalg.Matrix, k+1),
		right:  make([]*linalg.Matrix, k+1),
		dLeft:  make([][3]*linalg.Matrix, k+1),
		dRight: make([][3]*linalg.Matrix, k+1),
		grad:   make([]float64, 6*(k+1)),
	}
	for i := range o.layers {
		o.layers[i] = linalg.New(4, 4)
		o.mats[2*i] = o.layers[i]
		if i < k {
			o.mats[2*i+1] = o.basis
		}
	}
	o.suffix[0] = linalg.Identity(4)
	o.prefix[total] = linalg.Identity(4)
	for j := 0; j < total; j++ {
		o.suffix[j+1] = linalg.New(4, 4)
		o.prefix[j] = linalg.New(4, 4)
	}
	return o
}

// u3WithGrads returns U3(θ,φ,λ) and its three parameter derivatives.
func u3WithGrads(th, ph, lm float64) (u *linalg.Matrix, d [3]*linalg.Matrix) {
	c, s := math.Cos(th/2), math.Sin(th/2)
	eip := cmplx.Exp(complex(0, ph))
	eil := cmplx.Exp(complex(0, lm))
	eipl := cmplx.Exp(complex(0, ph+lm))
	u = linalg.FromRows([][]complex128{
		{complex(c, 0), -eil * complex(s, 0)},
		{eip * complex(s, 0), eipl * complex(c, 0)},
	})
	d[0] = linalg.FromRows([][]complex128{ // ∂θ
		{complex(-s/2, 0), -eil * complex(c/2, 0)},
		{eip * complex(c/2, 0), eipl * complex(-s/2, 0)},
	})
	d[1] = linalg.FromRows([][]complex128{ // ∂φ
		{0, 0},
		{1i * eip * complex(s, 0), 1i * eipl * complex(c, 0)},
	})
	d[2] = linalg.FromRows([][]complex128{ // ∂λ
		{0, -1i * eil * complex(s, 0)},
		{0, 1i * eipl * complex(c, 0)},
	})
	return u, d
}

// fg computes the infidelity and its analytic gradient. The 4x4 chain
// products run through the preallocated scratch via linalg.MulInto and
// linalg.KronInto, so an fg call allocates only the small per-layer U3
// derivative blocks.
func (o *objective) fg(x []float64) (float64, []float64) {
	k := o.k
	nLayers := k + 1
	// Build the 1Q layers with per-parameter derivative blocks.
	left, right := o.left, o.right
	dLeft, dRight := o.dLeft, o.dRight
	for i := 0; i < nLayers; i++ {
		p := x[6*i : 6*i+6]
		l, dl := u3WithGrads(p[0], p[1], p[2])
		r, dr := u3WithGrads(p[3], p[4], p[5])
		left[i], right[i] = l, r
		dLeft[i], dRight[i] = dl, dr
		linalg.KronInto(o.layers[i], l, r)
	}
	// Matrix chain (prebuilt in o.mats): mats[0]=layers[0], mats[1]=B, ...
	// suffix[j] = mats[j-1]···mats[0] (identity at j=0);
	// prefix[j] = mats[total-1]···mats[j+1] (identity at j=total-1).
	total := 2*k + 1
	for j := 0; j < total; j++ {
		linalg.MulInto(o.suffix[j+1], o.mats[j], o.suffix[j])
	}
	for j := total - 1; j >= 0; j-- {
		linalg.MulInto(o.prefix[j], o.prefix[j+1], o.mats[j])
	}
	t := o.suffix[total] // the full template
	sTr := traceProduct(o.udg, t)
	sAbs := cmplx.Abs(sTr)
	f := 1 - sAbs/4
	grad := o.grad
	for i := range grad {
		grad[i] = 0
	}
	if sAbs < 1e-15 {
		return f, grad // gradient undefined at |s|=0; flat response
	}
	coeff := cmplx.Conj(sTr) / complex(sAbs, 0)
	for i := 0; i < nLayers; i++ {
		j := 2 * i // position of layer i in the chain
		// G = S_j · U† · P_j; ∂s/∂p = tr(G · ∂M_j/∂p).
		linalg.MulInto(o.gtmp, o.suffix[j], o.udg)
		g := linalg.MulInto(o.gmat, o.gtmp, o.prefix[j+1])
		for pi := 0; pi < 3; pi++ {
			linalg.KronInto(o.dm, dLeft[i][pi], right[i])
			ds := traceProduct(g, o.dm)
			grad[6*i+pi] = -real(coeff*ds) / 4
			linalg.KronInto(o.dm, left[i], dRight[i][pi])
			ds = traceProduct(g, o.dm)
			grad[6*i+3+pi] = -real(coeff*ds) / 4
		}
	}
	return f, grad
}

// traceProduct computes tr(a·b) without materializing the product.
func traceProduct(a, b *linalg.Matrix) complex128 {
	var s complex128
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += a.At(i, j) * b.At(j, i)
		}
	}
	return s
}

// BestTemplate sweeps k = 0..kMax and returns the template maximizing the
// Eq. 13 total fidelity Ft = Fd(k)·Fb^k for the given iSWAP base fidelity.
func BestTemplate(target *linalg.Matrix, n, kMax int, fbISwap float64, rng *rand.Rand, cfg Config) (Result, float64, error) {
	fb := BaseFidelity(fbISwap, n)
	bestFt := -1.0
	var best Result
	for k := 0; k <= kMax; k++ {
		res, err := Decompose(target, n, k, rng, cfg)
		if err != nil {
			return Result{}, 0, err
		}
		ft := TotalFidelity(1-res.Infidelity, fb, k)
		if ft > bestFt {
			bestFt = ft
			best = res
		}
	}
	return best, bestFt, nil
}
