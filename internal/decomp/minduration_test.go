package decomp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/optimize"
	"repro/internal/weyl"
)

func minDurCfg() Config {
	return Config{Restarts: 4, Adam: optimize.AdamConfig{MaxIter: 700, LearningRate: 0.08}}
}

func TestMinDurationSqrtISwapClass(t *testing.T) {
	// √iSWAP itself: one half pulse (n=2, k=1, duration 0.5).
	rng := rand.New(rand.NewSource(1))
	res, err := MinDurationExact(gates.SqrtISwap(), 4, 1e-6, rng, minDurCfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Duration-0.5) > 1e-12 {
		t.Errorf("√iSWAP min duration = %g (n=%d k=%d), want 0.5", res.Duration, res.Root, res.K)
	}
}

func TestMinDurationISwapClass(t *testing.T) {
	// iSWAP: one full pulse (n=1, k=1) — duration 1.0.
	rng := rand.New(rand.NewSource(2))
	res, err := MinDurationExact(gates.ISwap(), 4, 1e-6, rng, minDurCfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Duration-1.0) > 1e-12 {
		t.Errorf("iSWAP min duration = %g (n=%d k=%d), want 1.0", res.Duration, res.Root, res.K)
	}
}

func TestMinDurationLocalIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	local := gates.RandomSU2(rng).Kron(gates.RandomSU2(rng))
	res, err := MinDurationExact(local, 3, 1e-6, rng, minDurCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 0 {
		t.Errorf("local gate min duration = %g, want 0", res.Duration)
	}
}

func TestMinDurationThreeSqrtTargetBeats1p5(t *testing.T) {
	// A class outside the 2-√iSWAP region costs 1.5 iSWAP pulses at n=2,
	// but fractional pulses do better — discrete n√iSWAP sequences approach
	// the continuous-control interaction-cost bound t = (x+y+|z|)/(π/2)
	// (Vidal–Hammerer–Cirac), which for this target is ≈ 0.57. The search
	// finds three quarter-pulses (duration 0.75), strengthening the paper's
	// §6.3 argument beyond its own 4/3 example.
	rng := rand.New(rand.NewSource(4))
	target := gates.Canonical(0.35, 0.3, 0.25) // X < Y + |Z| → 3 √iSWAPs
	coord, err := weyl.Coordinates(target)
	if err != nil {
		t.Fatal(err)
	}
	if weyl.BasisSqrtISwap.NumGates(coord) != 3 {
		t.Fatalf("test target should need 3 √iSWAPs, got %d", weyl.BasisSqrtISwap.NumGates(coord))
	}
	res, err := MinDurationExact(target, 4, 1e-6, rng, minDurCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > 4.0/3.0+1e-9 {
		t.Errorf("min duration = %g (n=%d k=%d), want ≤ 4/3", res.Duration, res.Root, res.K)
	}
	bound := (coord.X + coord.Y + math.Abs(coord.Z)) / (math.Pi / 2)
	if res.Duration < bound-1e-9 {
		t.Errorf("min duration %g beats the continuous interaction-cost bound %g — impossible", res.Duration, bound)
	}
	// Independently verify the returned template really is exact.
	u, err := TemplateUnitary(res.Root, res.K, res.Params)
	if err != nil {
		t.Fatal(err)
	}
	if f := HSFidelity(u, target); f < 1-1e-6 {
		t.Errorf("claimed-exact template has fidelity %g", f)
	}
}

func TestMinDurationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := MinDurationExact(gates.CX(), 0, 1e-7, rng, minDurCfg()); err == nil {
		t.Fatal("maxN=0 accepted")
	}
}
