package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/gates"
	"repro/internal/optimize"
	"repro/internal/weyl"
)

// TestAnalyticCountMatchesNumericReachability cross-validates the two
// decomposition systems in this repository: for Haar-random targets, the
// analytic Weyl-chamber counting rule for √iSWAP (package weyl, Huang et
// al.'s region) must agree with what the numerical optimizer can actually
// achieve — k = rule reaches ≈0 infidelity and k = rule−1 cannot.
func TestAnalyticCountMatchesNumericReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := Config{Restarts: 5, Adam: optimize.AdamConfig{MaxIter: 500, LearningRate: 0.08}}
	checked2, checked3 := false, false
	for trial := 0; trial < 12 && !(checked2 && checked3); trial++ {
		target := gates.RandomSU4(rng)
		coord, err := weyl.Coordinates(target)
		if err != nil {
			t.Fatal(err)
		}
		k := weyl.BasisSqrtISwap.NumGates(coord)
		switch k {
		case 2:
			if checked2 {
				continue
			}
			checked2 = true
		case 3:
			if checked3 {
				continue
			}
			checked3 = true
		default:
			t.Fatalf("Haar target claims %d √iSWAPs", k)
		}
		// k applications must reach the target...
		res, err := Decompose(target, 2, k, rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Infidelity > 1e-5 {
			t.Errorf("trial %d: rule says %d √iSWAPs but optimizer reached only %g infidelity",
				trial, k, res.Infidelity)
		}
		// ... and k−1 must fall measurably short.
		resLess, err := Decompose(target, 2, k-1, rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resLess.Infidelity < 1e-4 {
			t.Errorf("trial %d: rule says %d √iSWAPs needed but k=%d reached %g — rule too pessimistic",
				trial, k, k-1, resLess.Infidelity)
		}
	}
	if !checked2 || !checked3 {
		t.Skip("sampling did not produce both count classes (unlucky seed)")
	}
}

// TestSYCFourIsEnough: the numerical engine confirms Observation 1's SYC
// count — 4 applications of FSIM(π/2, π/6) with 1Q dressing reach a
// Haar-random target. (We verify reachability with a SYC-basis template
// built from the same machinery by composing the fixed SYC between layers.)
func TestSYCFourIsEnough(t *testing.T) {
	// Reuse the objective machinery with a custom basis by building the
	// template manually: layers of U3⊗U3 around four SYC applications, and
	// optimizing the interleaved 1Q parameters with finite differences.
	rng := rand.New(rand.NewSource(32))
	target := gates.RandomSU4(rng)
	syc := gates.SYC()
	build := func(x []float64) float64 {
		u := gates.U3(x[0], x[1], x[2]).Kron(gates.U3(x[3], x[4], x[5]))
		for i := 1; i <= 4; i++ {
			p := x[6*i : 6*i+6]
			layer := gates.U3(p[0], p[1], p[2]).Kron(gates.U3(p[3], p[4], p[5]))
			u = layer.Mul(syc.Mul(u))
		}
		return 1 - HSFidelity(u, target)
	}
	best := 1.0
	for restart := 0; restart < 4 && best > 1e-4; restart++ {
		x0 := make([]float64, 30)
		for i := range x0 {
			x0[i] = rng.Float64() * 6.28
		}
		_, f := optimize.Adam(x0, optimize.FiniteDiffGrad(build, 1e-6),
			optimize.AdamConfig{MaxIter: 600, LearningRate: 0.1})
		if f < best {
			best = f
		}
	}
	if best > 1e-3 {
		t.Errorf("4 SYC applications reached only %g infidelity on a Haar target", best)
	}
}
