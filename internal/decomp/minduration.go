package decomp

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
)

// MinDurationResult is the shortest-duration exact template found for a
// target unitary across the n√iSWAP family.
type MinDurationResult struct {
	Result
	// Duration is k/n in iSWAP pulse units.
	Duration float64
}

// MinDurationExact searches roots n = 1..maxN and template sizes
// k = 0..k_exact(n) for the exact decomposition (infidelity ≤ tol) with the
// shortest total pulse duration k/n — the §6.3 observation made
// operational: a generic 3-√iSWAP unitary costs 1.5 iSWAP pulses at n=2 but
// only 4/3 at n=3, because each extra fractional gate adds less duration
// than it saves in expressiveness.
//
// The search exploits monotonicity: for each n it finds the smallest exact
// k by increasing k until tol is met (bounded by kCap), then compares
// durations across n.
func MinDurationExact(target *linalg.Matrix, maxN int, tol float64, rng *rand.Rand, cfg Config) (MinDurationResult, error) {
	if maxN < 1 {
		return MinDurationResult{}, fmt.Errorf("decomp: maxN must be ≥ 1")
	}
	if tol <= 0 {
		tol = 1e-8
	}
	const kCap = 10
	best := MinDurationResult{Duration: -1}
	for n := 1; n <= maxN; n++ {
		for k := 0; k <= kCap; k++ {
			d := float64(k) / float64(n)
			// Prune: cannot beat the incumbent.
			if best.Duration >= 0 && d >= best.Duration {
				break
			}
			res, err := Decompose(target, n, k, rng, cfg)
			if err != nil {
				return MinDurationResult{}, err
			}
			if res.Infidelity <= tol {
				best = MinDurationResult{Result: res, Duration: d}
				break // larger k for this n only costs more
			}
		}
	}
	if best.Duration < 0 {
		return MinDurationResult{}, fmt.Errorf("decomp: no exact template within n ≤ %d, k ≤ %d", maxN, kCap)
	}
	return best, nil
}
