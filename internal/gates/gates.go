// Package gates defines the quantum gate library used across the repository:
// exact unitaries for the standard 1Q and 2Q gates, the SNAIL-native
// n-th-root-of-iSWAP family (paper Eq. 2), the FSIM/Sycamore family (Eq. 6),
// the cross-resonance ZX gate (Eq. 4), and Haar-random unitary sampling.
//
// Conventions: two-qubit unitaries act on basis |q0 q1⟩ ordered
// |00⟩,|01⟩,|10⟩,|11⟩ with the first qubit as the most significant bit; in
// controlled gates the first qubit is the control.
//
// The parameterless constructors (X, H, CX, SWAP, …) return shared,
// memoized matrices built once at package init — the transpiler and
// simulator resolve gate unitaries on every op of every run, and
// reallocating fixed 2x2/4x4 matrices dominated those hot paths. Callers
// must treat every returned matrix as immutable (the convention package
// circuit already documents); Copy() before mutating.
package gates

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/linalg"
)

// ---- 1Q constant gates (memoized; treat results as immutable) ----

var (
	i2Mat = linalg.Identity(2)
	xMat  = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	yMat  = linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
	zMat  = linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	hMat  = func() *linalg.Matrix {
		s := complex(1/math.Sqrt2, 0)
		return linalg.FromRows([][]complex128{{s, s}, {s, -s}})
	}()
	sMat   = linalg.FromRows([][]complex128{{1, 0}, {0, 1i}})
	sdgMat = linalg.FromRows([][]complex128{{1, 0}, {0, -1i}})
	tMat   = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}})
	tdgMat = linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}})
	sxMat  = linalg.FromRows([][]complex128{{complex(0.5, 0.5), complex(0.5, -0.5)}, {complex(0.5, -0.5), complex(0.5, 0.5)}})
)

// I2 returns the 2x2 identity.
func I2() *linalg.Matrix { return i2Mat }

// X returns the Pauli-X gate.
func X() *linalg.Matrix { return xMat }

// Y returns the Pauli-Y gate.
func Y() *linalg.Matrix { return yMat }

// Z returns the Pauli-Z gate.
func Z() *linalg.Matrix { return zMat }

// H returns the Hadamard gate.
func H() *linalg.Matrix { return hMat }

// S returns the phase gate diag(1, i).
func S() *linalg.Matrix { return sMat }

// Sdg returns S†.
func Sdg() *linalg.Matrix { return sdgMat }

// T returns the π/8 gate diag(1, e^{iπ/4}).
func T() *linalg.Matrix { return tMat }

// Tdg returns T†.
func Tdg() *linalg.Matrix { return tdgMat }

// SX returns √X (up to the usual global phase convention e^{iπ/4}).
func SX() *linalg.Matrix { return sxMat }

// ---- 1Q parameterized gates ----

// RX returns exp(-iθX/2).
func RX(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return linalg.FromRows([][]complex128{{c, s}, {s, c}})
}

// RY returns exp(-iθY/2).
func RY(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return linalg.FromRows([][]complex128{{c, -s}, {s, c}})
}

// RZ returns exp(-iθZ/2).
func RZ(theta float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// Phase returns diag(1, e^{iλ}).
func Phase(lambda float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{{1, 0}, {0, cmplx.Exp(complex(0, lambda))}})
}

// U3 returns the generic single-qubit rotation
//
//	U3(θ,φ,λ) = [[cos(θ/2), -e^{iλ}sin(θ/2)], [e^{iφ}sin(θ/2), e^{i(φ+λ)}cos(θ/2)]].
func U3(theta, phi, lambda float64) *linalg.Matrix {
	c := math.Cos(theta / 2)
	s := math.Sin(theta / 2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(s, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	})
}

// ---- 2Q gates (constant ones memoized; treat results as immutable) ----

var (
	cxMat = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	czMat   = linalg.Diag(1, 1, 1, -1)
	swapMat = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
)

// Memoized members of the parameterized families; initialized below their
// constructors to keep the formulas in one place.
var (
	iswapMat  = nRootISwapFresh(1)
	siswapMat = nRootISwapFresh(2)
	sycMat    = FSIM(math.Pi/2, math.Pi/6)
)

// CX returns the controlled-NOT with the first qubit as control (paper Eq. 1).
func CX() *linalg.Matrix { return cxMat }

// CZ returns the controlled-Z gate.
func CZ() *linalg.Matrix { return czMat }

// CPhase returns the controlled-phase gate diag(1,1,1,e^{iθ}).
func CPhase(theta float64) *linalg.Matrix {
	return linalg.Diag(1, 1, 1, cmplx.Exp(complex(0, theta)))
}

// SWAP returns the qubit-exchange gate.
func SWAP() *linalg.Matrix { return swapMat }

// ISwap returns the iSWAP gate.
func ISwap() *linalg.Matrix { return iswapMat }

// SqrtISwap returns √iSWAP, the SNAIL-native basis gate studied in the paper.
func SqrtISwap() *linalg.Matrix { return siswapMat }

// NRootISwap returns the n-th root of iSWAP (paper Eq. 2):
//
//	[[1,0,0,0],
//	 [0,cos(π/2n), i·sin(π/2n),0],
//	 [0,i·sin(π/2n), cos(π/2n),0],
//	 [0,0,0,1]].
//
// The n=1 and n=2 members are memoized (they are the iSWAP/√iSWAP basis
// gates resolved on every translated op); other roots are built fresh.
func NRootISwap(n int) *linalg.Matrix {
	switch n {
	case 1:
		return iswapMat
	case 2:
		return siswapMat
	}
	return nRootISwapFresh(n)
}

func nRootISwapFresh(n int) *linalg.Matrix {
	if n < 1 {
		panic("gates: NRootISwap requires n >= 1")
	}
	a := math.Pi / (2 * float64(n))
	c := complex(math.Cos(a), 0)
	s := complex(0, math.Sin(a))
	return linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, c, s, 0},
		{0, s, c, 0},
		{0, 0, 0, 1},
	})
}

// FSIM returns the fermionic-simulation gate (paper Eq. 6):
//
//	[[1,0,0,0],
//	 [0,cosθ, -i·sinθ,0],
//	 [0,-i·sinθ, cosθ,0],
//	 [0,0,0,e^{-iφ}]].
func FSIM(theta, phi float64) *linalg.Matrix {
	c := complex(math.Cos(theta), 0)
	s := complex(0, -math.Sin(theta))
	return linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, c, s, 0},
		{0, s, c, 0},
		{0, 0, 0, cmplx.Exp(complex(0, -phi))},
	})
}

// SYC returns Google's Sycamore gate, FSIM(π/2, π/6).
func SYC() *linalg.Matrix { return sycMat }

// ZX returns the cross-resonance interaction unitary (paper Eq. 4),
// exp(-iθ/2 · Z⊗X):
//
//	[[cos θ/2, -i·sin θ/2, 0, 0], ...
//
// with the block structure of Eq. 4. ZX(π/2) is the CR pulse that IBM
// machines convert to CNOT with 1Q dressing (Eq. 5).
func ZX(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, math.Sin(theta/2))
	return linalg.FromRows([][]complex128{
		{c, -s, 0, 0},
		{-s, c, 0, 0},
		{0, 0, c, s},
		{0, 0, s, c},
	})
}

// RXX returns exp(-iθ/2 · X⊗X).
func RXX(theta float64) *linalg.Matrix { return twoPauliRotation(theta, X()) }

// RYY returns exp(-iθ/2 · Y⊗Y).
func RYY(theta float64) *linalg.Matrix { return twoPauliRotation(theta, Y()) }

// RZZ returns exp(-iθ/2 · Z⊗Z).
func RZZ(theta float64) *linalg.Matrix {
	e := cmplx.Exp(complex(0, -theta/2))
	ec := cmplx.Exp(complex(0, theta/2))
	return linalg.Diag(e, ec, ec, e)
}

func twoPauliRotation(theta float64, p *linalg.Matrix) *linalg.Matrix {
	pp := p.Kron(p)
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return linalg.Identity(4).Scale(c).Add(pp.Scale(s))
}

// Canonical returns the canonical (Cartan) two-qubit gate
//
//	CAN(a,b,c) = exp(i(a·XX + b·YY + c·ZZ)),
//
// the representative of the local-equivalence class with Weyl-chamber
// coordinates (a,b,c). Every two-qubit unitary is K1·CAN(a,b,c)·K2 for some
// single-qubit K1, K2.
func Canonical(a, b, c float64) *linalg.Matrix {
	// XX, YY, ZZ commute, so the exponential factorizes exactly.
	ga := twoPauliRotation(-2*a, X()) // exp(i a XX)
	gb := twoPauliRotation(-2*b, Y())
	gc := RZZ(-2 * c)
	return ga.Mul(gb).Mul(gc)
}

// ---- Haar-random sampling ----

// RandomUnitary returns an n x n Haar-distributed unitary drawn from rng,
// via QR of a complex Ginibre matrix with phase-fixed R diagonal.
func RandomUnitary(rng *rand.Rand, n int) *linalg.Matrix {
	g := linalg.New(n, n)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	q, r, err := g.QR()
	if err != nil {
		// A Ginibre matrix is full rank with probability 1; retry on the
		// measure-zero failure rather than surfacing an error to callers.
		return RandomUnitary(rng, n)
	}
	for j := 0; j < n; j++ {
		d := r.At(j, j)
		ph := d / complex(cmplx.Abs(d), 0)
		for i := 0; i < n; i++ {
			q.Set(i, j, q.At(i, j)*ph)
		}
	}
	return q
}

// RandomSU4 returns a Haar-random two-qubit unitary normalized to det = 1.
func RandomSU4(rng *rand.Rand) *linalg.Matrix {
	u := RandomUnitary(rng, 4)
	det := u.Det()
	// Divide by det^(1/4) to land in SU(4).
	phase := cmplx.Exp(complex(0, -cmplx.Phase(det)/4))
	return u.Scale(phase)
}

// RandomSU2 returns a Haar-random single-qubit unitary with det = 1.
func RandomSU2(rng *rand.Rand) *linalg.Matrix {
	u := RandomUnitary(rng, 2)
	det := u.Det()
	phase := cmplx.Exp(complex(0, -cmplx.Phase(det)/2))
	return u.Scale(phase)
}
