package gates

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestAllConstantGatesUnitary(t *testing.T) {
	cases := map[string]*linalg.Matrix{
		"I": I2(), "X": X(), "Y": Y(), "Z": Z(), "H": H(),
		"S": S(), "Sdg": Sdg(), "T": T(), "Tdg": Tdg(), "SX": SX(),
		"CX": CX(), "CZ": CZ(), "SWAP": SWAP(), "iSWAP": ISwap(),
		"sqrtISWAP": SqrtISwap(), "SYC": SYC(),
	}
	for name, g := range cases {
		if !g.IsUnitary(1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestParameterizedGatesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		th := rng.Float64()*4*math.Pi - 2*math.Pi
		ph := rng.Float64()*4*math.Pi - 2*math.Pi
		lm := rng.Float64()*4*math.Pi - 2*math.Pi
		for name, g := range map[string]*linalg.Matrix{
			"RX": RX(th), "RY": RY(th), "RZ": RZ(th), "Phase": Phase(th),
			"U3": U3(th, ph, lm), "CPhase": CPhase(th), "FSIM": FSIM(th, ph),
			"ZX": ZX(th), "RXX": RXX(th), "RYY": RYY(th), "RZZ": RZZ(th),
			"CAN": Canonical(th, ph, lm),
		} {
			if !g.IsUnitary(1e-10) {
				t.Fatalf("%s(%g,...) not unitary", name, th)
			}
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X² = Y² = Z² = I; XY = iZ.
	for name, g := range map[string]*linalg.Matrix{"X": X(), "Y": Y(), "Z": Z(), "H": H()} {
		if !g.Mul(g).EqualWithin(I2(), 1e-14) {
			t.Errorf("%s² != I", name)
		}
	}
	if !X().Mul(Y()).EqualWithin(Z().Scale(1i), 1e-14) {
		t.Error("XY != iZ")
	}
	if !S().Mul(S()).EqualWithin(Z(), 1e-14) {
		t.Error("S² != Z")
	}
	if !T().Mul(T()).EqualWithin(S(), 1e-14) {
		t.Error("T² != S")
	}
	if !SX().Mul(SX()).EqualWithin(X(), 1e-14) {
		t.Error("SX² != X")
	}
}

func TestRotationComposition(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, math.Pi)
		b = math.Mod(b, math.Pi)
		return RZ(a).Mul(RZ(b)).EqualWithin(RZ(a+b), 1e-10) &&
			RX(a).Mul(RX(b)).EqualWithin(RX(a+b), 1e-10) &&
			RY(a).Mul(RY(b)).EqualWithin(RY(a+b), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestU3SpecialCases(t *testing.T) {
	if !U3(0, 0, 0).EqualWithin(I2(), 1e-14) {
		t.Error("U3(0,0,0) != I")
	}
	if !U3(math.Pi, 0, math.Pi).EqualWithin(X(), 1e-14) {
		t.Error("U3(π,0,π) != X")
	}
	if !U3(math.Pi/2, 0, math.Pi).EqualWithin(H(), 1e-14) {
		t.Error("U3(π/2,0,π) != H")
	}
	// U3(θ,φ,λ) equals RZ(φ)RY(θ)RZ(λ) up to global phase.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		th, ph, lm := rng.Float64()*6, rng.Float64()*6, rng.Float64()*6
		a := U3(th, ph, lm)
		b := RZ(ph).Mul(RY(th)).Mul(RZ(lm))
		if !a.EqualUpToPhase(b, 1e-10) {
			t.Fatalf("U3 != RZ·RY·RZ at (%g,%g,%g)", th, ph, lm)
		}
	}
}

func TestCXTruthTable(t *testing.T) {
	cx := CX()
	// |10⟩ → |11⟩ and |11⟩ → |10⟩; |00⟩,|01⟩ unchanged.
	basis := []int{0, 1, 3, 2}
	for in, out := range basis {
		v := make([]complex128, 4)
		v[in] = 1
		got := cx.MulVec(v)
		for k := range got {
			want := complex128(0)
			if k == out {
				want = 1
			}
			if cmplx.Abs(got[k]-want) > 1e-14 {
				t.Fatalf("CX|%02b⟩: amp[%d]=%v want %v", in, k, got[k], want)
			}
		}
	}
}

func TestSwapConjugation(t *testing.T) {
	// SWAP (A⊗B) SWAP = B⊗A.
	rng := rand.New(rand.NewSource(3))
	a, b := RandomSU2(rng), RandomSU2(rng)
	lhs := SWAP().Mul(a.Kron(b)).Mul(SWAP())
	if !lhs.EqualWithin(b.Kron(a), 1e-12) {
		t.Fatal("SWAP(A⊗B)SWAP != B⊗A")
	}
}

func TestNRootISwapFamily(t *testing.T) {
	// n applications of n√iSWAP give iSWAP (paper: pulse scaling).
	for n := 1; n <= 8; n++ {
		g := NRootISwap(n)
		acc := linalg.Identity(4)
		for k := 0; k < n; k++ {
			acc = acc.Mul(g)
		}
		if !acc.EqualWithin(ISwap(), 1e-10) {
			t.Fatalf("(%d√iSWAP)^%d != iSWAP", n, n)
		}
	}
	// √iSWAP² = iSWAP explicitly.
	if !SqrtISwap().Mul(SqrtISwap()).EqualWithin(ISwap(), 1e-12) {
		t.Fatal("√iSWAP² != iSWAP")
	}
}

func TestFSIMFamilyRelations(t *testing.T) {
	// FSIM(-π/4, 0) = √iSWAP (paper §2.4.2).
	if !FSIM(-math.Pi/4, 0).EqualWithin(SqrtISwap(), 1e-12) {
		t.Fatal("FSIM(-π/4,0) != √iSWAP")
	}
	// FSIM(-π/2, 0) = iSWAP.
	if !FSIM(-math.Pi/2, 0).EqualWithin(ISwap(), 1e-12) {
		t.Fatal("FSIM(-π/2,0) != iSWAP")
	}
	// SYC parameters: θ=π/2, φ=π/6.
	if !SYC().EqualWithin(FSIM(math.Pi/2, math.Pi/6), 0) {
		t.Fatal("SYC != FSIM(π/2, π/6)")
	}
}

func TestZXToCNOT(t *testing.T) {
	// Paper Eq. 5: CNOT = (I⊗√X†) · ZX(π/2) · (S†⊗I) up to global phase,
	// with the CR pulse dressed by 1Q gates.
	zx := ZX(math.Pi / 2)
	dressed := Sdg().Kron(SX().Dagger()).Mul(zx)
	// Validate local equivalence by checking the unitary maps computational
	// products to the right entangled structure: CX† · dressed must be a
	// tensor product of 1Q unitaries up to phase. Here we verify directly
	// that dressed equals CX up to global phase after fixing 1Q frames.
	if !dressed.EqualUpToPhase(CX(), 1e-10) {
		t.Fatalf("ZX(π/2) with 1Q dressing != CNOT:\n%v", dressed)
	}
}

func TestRZZDiagonal(t *testing.T) {
	g := RZZ(0.7)
	want := linalg.Diag(
		cmplx.Exp(complex(0, -0.35)),
		cmplx.Exp(complex(0, 0.35)),
		cmplx.Exp(complex(0, 0.35)),
		cmplx.Exp(complex(0, -0.35)),
	)
	if !g.EqualWithin(want, 1e-14) {
		t.Fatal("RZZ values wrong")
	}
}

func TestCanonicalKnownPoints(t *testing.T) {
	// CAN(0,0,0) = I.
	if !Canonical(0, 0, 0).EqualWithin(linalg.Identity(4), 1e-14) {
		t.Fatal("CAN(0,0,0) != I")
	}
	// CAN(π/4,0,0) is locally equivalent to CNOT: check it is a perfect
	// entangler by verifying it maps |00⟩ to an entangled state after local
	// pre-rotation. Simpler invariant: CAN(π/4,0,0) = exp(iπ/4 XX), whose
	// square is iXX (local).
	c := Canonical(math.Pi/4, 0, 0)
	sq := c.Mul(c)
	if !sq.EqualUpToPhase(X().Kron(X()), 1e-12) {
		t.Fatal("CAN(π/4,0,0)² != XX up to phase")
	}
	// CAN(π/4,π/4,π/4) is the SWAP class.
	sw := Canonical(math.Pi/4, math.Pi/4, math.Pi/4)
	if !sw.EqualUpToPhase(SWAP(), 1e-12) {
		t.Fatal("CAN(π/4,π/4,π/4) != SWAP up to phase")
	}
	// CAN(π/4,π/4,0) is the iSWAP class: equal to iSWAP up to phase & locals.
	isw := Canonical(math.Pi/4, math.Pi/4, 0)
	if !isw.EqualUpToPhase(ISwap(), 1e-12) {
		t.Fatal("CAN(π/4,π/4,0) != iSWAP up to phase")
	}
}

func TestRandomUnitaryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		u := RandomUnitary(rng, 4)
		if !u.IsUnitary(1e-9) {
			t.Fatal("RandomUnitary not unitary")
		}
	}
	su4 := RandomSU4(rng)
	if d := su4.Det(); cmplx.Abs(d-1) > 1e-9 {
		t.Fatalf("RandomSU4 det = %v", d)
	}
	su2 := RandomSU2(rng)
	if d := su2.Det(); cmplx.Abs(d-1) > 1e-9 {
		t.Fatalf("RandomSU2 det = %v", d)
	}
}

func TestRandomUnitaryDeterministicWithSeed(t *testing.T) {
	a := RandomSU4(rand.New(rand.NewSource(99)))
	b := RandomSU4(rand.New(rand.NewSource(99)))
	if !a.EqualWithin(b, 0) {
		t.Fatal("same seed produced different unitaries")
	}
}
