package main

import "testing"

// TestNoiseFidelitySmoke runs the example end-to-end (transpile + two
// Monte-Carlo fidelity estimates per machine) so tier-1 exercises the
// noise-model entry point; a panic or log.Fatal fails the suite.
func TestNoiseFidelitySmoke(t *testing.T) {
	main()
}
