// noise_fidelity turns the paper's §3.1 argument into a simulation: the
// same GHZ workload is transpiled onto Heavy-Hex+CNOT and the SNAIL
// tree+√iSWAP, then Monte-Carlo Pauli noise estimates the output-state
// fidelity in the two regimes the paper distinguishes — control error
// (charged per gate, so total 2Q count matters) and decoherence (charged
// per pulse length, so duration matters). The co-designed machine wins
// both.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/noise"
)

func main() {
	const width = 8
	const shots = 400
	c := repro.GHZ(width)

	type result struct {
		name             string
		total2Q          int
		duration         float64
		fControl, fDecoh float64
	}
	var rows []result
	for _, m := range []repro.Machine{repro.HeavyHex20CX(), repro.Tree20SqrtISwap()} {
		tr, err := m.Transpile(c, repro.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		control := noise.Model{GateError: 0.005, Timing: m.GateDurations()}
		decoh := noise.Model{DecoherenceRate: 0.005, Timing: m.GateDurations()}
		fc, err := noise.MonteCarloFidelity(tr.Translated, control, shots, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		fd, err := noise.MonteCarloFidelity(tr.Translated, decoh, shots, rand.New(rand.NewSource(2)))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, result{m.Name, tr.Metrics.Total2Q, tr.Metrics.PulseDuration, fc, fd})
	}
	fmt.Printf("GHZ(%d), %d Monte-Carlo shots; gate error 0.5%%, decoherence 0.5%%/pulse\n\n", width, shots)
	fmt.Printf("%-22s %8s %9s %14s %14s\n", "machine", "total2Q", "duration", "F(control)", "F(decoherence)")
	for _, r := range rows {
		fmt.Printf("%-22s %8d %9.1f %14.3f %14.3f\n", r.name, r.total2Q, r.duration, r.fControl, r.fDecoh)
	}
	fmt.Println("\nFewer gates help in the control regime; shorter pulses help in the")
	fmt.Println("decoherence regime — the SNAIL machine wins both (paper §3.1, Fig. 13).")
}
