// ghz_router walks the full hardware story of the paper's demonstrated
// system (Fig. 5): a GHZ state is transpiled onto the 20-qubit SNAIL tree,
// translated to an exact gate-level circuit, simulated to verify the
// physical circuit still produces a GHZ state, scheduled on the modular
// hardware under both parallelism assumptions, and given a valid parametric
// frequency allocation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 10
	c := repro.GHZ(n)
	machine := repro.Tree20SqrtISwap()

	tr, err := machine.Transpile(c, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GHZ(%d) on %s: %d swaps, %d sqrtISWAP pulses, duration %.1f\n",
		n, machine.Name, tr.Metrics.TotalSwaps, tr.Metrics.Total2Q, tr.Metrics.PulseDuration)

	// Semantic check: exact-translate the routed circuit to the CX basis and
	// simulate. A GHZ state puts all weight on two physical basis states.
	exact, err := repro.TranslateExactCX(tr.Routed)
	if err != nil {
		log.Fatal(err)
	}
	st, err := repro.RunCircuit(exact)
	if err != nil {
		log.Fatal(err)
	}
	idx, p := st.DominantBasisState()
	fmt.Printf("physical circuit: dominant basis state %020b with p=%.3f (want 0.5)\n", idx, p)

	// Hardware: the tree is four 5-element SNAIL modules plus a router.
	hw, err := repro.TreeHardware()
	if err != nil {
		log.Fatal(err)
	}
	dur := map[string]float64{"siswap": 0.5, "swap": 1.5, "cx": 1.0, "su4": 1.0}
	par, err := hw.Schedule(tr.Routed, dur, false)
	if err != nil {
		log.Fatal(err)
	}
	ser, err := hw.Schedule(tr.Routed, dur, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule makespan: %.1f with SNAIL neighborhood parallelism, %.1f serialized\n", par, ser)

	// Parametric addressing: every coupling needs a unique pump frequency.
	freqs, err := hw.AllocateFrequencies(4.0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	if err := hw.VerifyFrequencies(freqs, 1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequency allocation: %d qubits, all SNAIL-scope difference frequencies unique\n", len(freqs))
}
