// qaoa_compare runs the paper's most routing-hostile workload — the
// SuperMarQ vanilla-QAOA proxy on the complete Sherrington-Kirkpatrick
// interaction graph — across all six 16-20 qubit co-designed machines
// (Fig. 13's comparison set) and prints the four metrics the paper reports.
//
// QAOA's all-to-all couplings are exactly the workload the SNAIL topologies
// were designed for: rich local cliques (Corral) and low diameter (Tree)
// minimize SWAP insertion, and the √iSWAP basis halves the pulse length.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const width = 14
	c := repro.QAOAVanilla(width, rand.New(rand.NewSource(2022)))
	fmt.Printf("QAOA-Vanilla (SK model), %d qubits, %d ZZ interactions\n\n",
		width, c.CountByName("rzz"))
	fmt.Printf("%-24s %10s %10s %10s %12s\n", "machine", "swaps", "total2Q", "crit2Q", "pulseDur")
	for _, m := range repro.Machines16() {
		met, err := m.Evaluate(c, repro.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10d %10d %10d %12.1f\n",
			m.Name, met.TotalSwaps, met.Total2Q, met.Critical2Q, met.PulseDuration)
	}
	fmt.Println("\nLower is better everywhere; the Corral+sqrtISWAP rows show the")
	fmt.Println("co-design advantage the paper reports in Fig. 13.")
}
