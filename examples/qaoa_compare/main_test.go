package main

import "testing"

// TestQAOACompareSmoke runs the example end-to-end (the SK-model QAOA
// workload across all six Fig. 13 machines) so tier-1 exercises the
// comparison entry point; a panic or log.Fatal fails the suite.
func TestQAOACompareSmoke(t *testing.T) {
	main()
}
