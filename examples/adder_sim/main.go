// adder_sim demonstrates that the transpilation pipeline preserves the
// semantics of a classical-reversible workload: the CDKM ripple-carry adder
// is simulated on concrete inputs before and after placement + routing +
// exact CX translation onto the Corral, and the sums must agree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

const m = 3 // 3-bit operands → 8 qubits

// encode builds |cin, a, b, 0⟩ as a basis index (qubit 0 = MSB).
func encode(n, cin, a, b int) int {
	idx := 0
	set := func(q int) { idx |= 1 << (n - 1 - q) }
	if cin != 0 {
		set(0)
	}
	for i := 0; i < m; i++ {
		if a&(1<<i) != 0 {
			set(1 + i)
		}
		if b&(1<<i) != 0 {
			set(1 + m + i)
		}
	}
	return idx
}

func main() {
	adder := repro.Adder(m)
	fmt.Printf("CDKM adder: %d qubits, %d CX after Toffoli expansion\n",
		adder.N, adder.CountByName("cx"))

	// Transpile onto the Corral and translate to an exact CX circuit.
	g := repro.Corral11()
	layout, err := repro.DenseLayout(g, adder)
	if err != nil {
		log.Fatal(err)
	}
	routed, err := repro.StochasticSwap(g, adder, layout, rand.New(rand.NewSource(1)), 10)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := repro.TranslateExactCX(routed.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on %s: %d routing swaps, %d physical CX\n\n",
		g.Name, routed.SwapCount, exact.CountByName("cx"))

	for _, tc := range [][3]int{{0, 5, 2}, {1, 7, 7}, {0, 3, 6}} {
		cin, a, b := tc[0], tc[1], tc[2]
		// Logical run.
		st, err := repro.NewBasisState(adder.N, encode(adder.N, cin, a, b))
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Run(adder); err != nil {
			log.Fatal(err)
		}
		logical, _ := st.DominantBasisState()

		// Physical run: prepare the same input on the mapped qubits.
		phys, err := repro.NewState(g.N())
		if err != nil {
			log.Fatal(err)
		}
		in := encode(adder.N, cin, a, b)
		pidx := 0
		for q := 0; q < adder.N; q++ {
			if (in>>(adder.N-1-q))&1 == 1 {
				pidx |= 1 << (g.N() - 1 - layout[q])
			}
		}
		phys.Amp[0] = 0
		phys.Amp[pidx] = 1
		if err := phys.Run(exact); err != nil {
			log.Fatal(err)
		}
		physIdx, p := phys.DominantBasisState()

		// Map the physical result back through the final layout.
		back := 0
		for q := 0; q < adder.N; q++ {
			bit := (physIdx >> (g.N() - 1 - routed.FinalLayout[q])) & 1
			back |= bit << (adder.N - 1 - q)
		}
		match := back == logical
		sum := a + b + cin
		fmt.Printf("%d + %d + %d = %d (mod %d), carry %d: logical==physical %v (p=%.3f)\n",
			a, b, cin, sum%(1<<m), 1<<m, sum>>m, match, p)
		if !match {
			log.Fatal("semantic mismatch between logical and physical adder")
		}
	}
}
