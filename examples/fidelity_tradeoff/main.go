// fidelity_tradeoff is a miniature of the paper's §6.3 study: decompose one
// Haar-random two-qubit unitary into templates of k applications of
// n√iSWAP, and show how a noisy base gate (Fb(iSWAP)=0.99) makes smaller
// pulse fractions win despite needing more gates — the SNAIL's co-design
// lever on decoherence.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Seed 1 yields a class outside the 2-√iSWAP region (X < Y + |Z|), the
	// ~21% of Haar where fractional pulses buy the most (paper §6.3).
	rng := rand.New(rand.NewSource(1))
	target := repro.QuantumVolume(2, rng).Ops[0].U
	coord, err := repro.WeylCoordinates(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target class %v: needs %d sqrtISWAPs\n\n",
		coord, repro.BasisSqrtISwap.NumGates(coord))

	fmt.Println("decomposition infidelity 1-Fd by template size k:")
	fmt.Printf("%-10s", "n\\k")
	ks := []int{2, 3, 4, 5, 6}
	for _, k := range ks {
		fmt.Printf("%12d", k)
	}
	fmt.Println()
	for _, n := range []int{2, 3, 4, 5} {
		fmt.Printf("%d>iSWAP   ", n)
		for _, k := range ks {
			res, err := repro.Decompose(target, n, k, rng, repro.DecompConfig{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.2e", res.Infidelity)
		}
		fmt.Println()
	}

	const fbISwap = 0.99
	fmt.Printf("\nbest templates at Fb(iSWAP)=%.2f (Eq. 13: Ft = Fd*Fb^k):\n", fbISwap)
	for _, n := range []int{2, 3, 4, 5} {
		best, ft, err := repro.BestTemplate(target, n, 6, fbISwap, rng, repro.DecompConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d>iSWAP: k=%d, duration %.2f pulses, Ft=%.5f (infidelity %.5f)\n",
			n, best.K, float64(best.K)/float64(n), ft, 1-ft)
	}
	fmt.Println("\nThe 3rd/4th roots beat sqrtISWAP on total fidelity — the paper's 25% claim.")
}
