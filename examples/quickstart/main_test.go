package main

import "testing"

// TestQuickstartSmoke runs the example end-to-end so tier-1 exercises the
// public-API tour: a panic, a log.Fatal (process exit 1), or an API drift
// that breaks compilation all fail the suite.
func TestQuickstartSmoke(t *testing.T) {
	main()
}
