// Quickstart: build a circuit, evaluate it on two co-designed machines, and
// inspect the Weyl-chamber machinery — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A 12-qubit GHZ preparation (H + CNOT chain).
	c := repro.GHZ(12)

	// Compare IBM-style Heavy-Hex+CNOT against the SNAIL tree+√iSWAP.
	for _, machine := range []repro.Machine{
		repro.HeavyHex20CX(),
		repro.Tree20SqrtISwap(),
	} {
		met, err := machine.Evaluate(c, repro.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s swaps=%-3d total2Q=%-4d critical2Q=%-4d pulse=%.1f\n",
			machine.Name, met.TotalSwaps, met.Total2Q, met.Critical2Q, met.PulseDuration)
	}

	// Weyl coordinates classify any two-qubit unitary...
	u := repro.QuantumVolume(2, rand.New(rand.NewSource(7))).Ops[0].U
	coord, err := repro.WeylCoordinates(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHaar-random SU(4) class: %v\n", coord)
	fmt.Printf("  needs %d CNOTs / %d sqrtISWAPs / %d SYCs\n",
		repro.BasisCX.NumGates(coord),
		repro.BasisSqrtISwap.NumGates(coord),
		repro.BasisSYC.NumGates(coord))

	// ... and SynthesizeCX produces an exact minimal-CNOT circuit for it.
	syn, err := repro.SynthesizeCX(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exact synthesis uses %d CX gates; reconstruction matches: %v\n",
		syn.NumCX, syn.Unitary().EqualUpToPhase(u, 1e-6))
}
