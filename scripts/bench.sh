#!/usr/bin/env bash
# bench.sh — run the repository micro/figure benchmarks and write a
# machine-readable JSON snapshot so successive PRs can track the perf
# trajectory.
#
# Usage:
#   scripts/bench.sh                  # all benchmarks -> BENCH.json
#   BENCH_OUT=BENCH_PR1.json scripts/bench.sh
#   BENCH_FILTER='Statevector|KAK' BENCH_TIME=500ms scripts/bench.sh
#   BENCH_SKIP_CHECK=1 scripts/bench.sh   # skip the vet/race preflight
#
# Output schema:
#   { "goos": ..., "goarch": ..., "cpu": ..., "gomaxprocs": N,
#     "benchmarks": [ { "name": ..., "iterations": N, "ns_per_op": ...,
#                       "b_per_op": ..., "allocs_per_op": ...,
#                       "cache_hits_per_op": ..., "cache_misses_per_op": ... }, ... ] }
#
# cache_hits_per_op / cache_misses_per_op are emitted by the warm-cache
# benchmarks (b.ReportMetric) and stay null elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH.json}"
FILTER="${BENCH_FILTER:-.}"
TIME="${BENCH_TIME:-1s}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
export GOMAXPROCS_REPORT="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

if [[ "${BENCH_SKIP_CHECK:-0}" != "1" ]]; then
    scripts/check.sh
fi

go test -bench="$FILTER" -benchmem -benchtime="$TIME" -count=1 -run='^$' . | tee "$RAW"

awk -v out="$OUT" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # Benchmark lines: Name[-P] iters ns/op [B/op] [allocs/op] [custom metrics]
    name = $1; iters = $2; ns = $3
    b = "null"; allocs = "null"; chits = "null"; cmisses = "null"
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")           ns = $(i - 1)
        if ($(i) == "B/op")            b = $(i - 1)
        if ($(i) == "allocs/op")       allocs = $(i - 1)
        if ($(i) == "cache_hits/op")   chits = $(i - 1)
        if ($(i) == "cache_misses/op") cmisses = $(i - 1)
    }
    n++
    lines[n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"cache_hits_per_op\": %s, \"cache_misses_per_op\": %s}",
                       name, iters, ns, b, allocs, chits, cmisses)
}
END {
    printf "{\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [\n", \
           goos, goarch, cpu, ENVIRON["GOMAXPROCS_REPORT"] > out
    for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "") >> out
    print "  ]\n}" >> out
}
' "$RAW"

echo "wrote $OUT"
